// phls — command-line front-end to the library.
//
//   phls list                                    built-in benchmarks
//   phls show <bench|file.cdfg> [--dot out.dot]  graph structure
//   phls synth <bench|file.cdfg> -T 17 [-P 7] [--library lib.txt]
//         [--netlist] [--verilog out.v] [--dot out.dot] [--exact]
//   phls sweep <bench|file.cdfg> -T 17 [--points 20] [--csv out.csv]
//   phls schedule <bench|file.cdfg> -T 17 -P 7 [--alg asap|pasap|fds]
//   phls lifetime <bench|file.cdfg> -T 17 [--beta 0.1]
//
// A positional that names a file ending in .cdfg is parsed from disk;
// anything else must be a built-in benchmark name.
#include <fstream>
#include <iostream>

#include "battery/lifetime.h"
#include "cdfg/analysis.h"
#include "cdfg/benchmarks.h"
#include "cdfg/dot.h"
#include "cdfg/textio.h"
#include "rtl/netlist.h"
#include "sched/asap_alap.h"
#include "sched/force_directed.h"
#include "sched/pasap.h"
#include "support/argparse.h"
#include "support/errors.h"
#include "support/csv.h"
#include "support/strings.h"
#include "support/table.h"
#include "synth/exact.h"
#include "synth/explore.h"
#include "synth/synthesizer.h"

namespace phls {
namespace {

graph load_graph(const std::string& spec)
{
    if (spec.size() > 5 && spec.substr(spec.size() - 5) == ".cdfg") {
        std::ifstream is(spec);
        check(static_cast<bool>(is), "cannot open '" + spec + "'");
        return parse_cdfg(is);
    }
    return benchmark_by_name(spec);
}

module_library load_library(const arg_parser& args)
{
    if (args.has("--library")) {
        std::ifstream is(args.get("--library"));
        check(static_cast<bool>(is), "cannot open '" + args.get("--library") + "'");
        return parse_library(is);
    }
    return table1_library();
}

int cmd_list()
{
    ascii_table t({"benchmark", "nodes", "ops", "inputs", "outputs", "mults",
                   "CP (par mult)", "CP (ser mult)"});
    t.set_align(0, align::left);
    for (const std::string& name : benchmark_names()) {
        const graph g = benchmark_by_name(name);
        const auto cp = [&](int mult_delay) {
            return critical_path_length(g, [&](node_id v) {
                return g.kind(v) == op_kind::mult ? mult_delay : 1;
            });
        };
        t.add_row({name, std::to_string(g.node_count()),
                   std::to_string(g.node_count() - g.count_of_kind(op_kind::input) -
                                  g.count_of_kind(op_kind::output)),
                   std::to_string(g.count_of_kind(op_kind::input)),
                   std::to_string(g.count_of_kind(op_kind::output)),
                   std::to_string(g.count_of_kind(op_kind::mult)),
                   std::to_string(cp(2)), std::to_string(cp(4))});
    }
    t.print(std::cout);
    return 0;
}

int cmd_show(const arg_parser& args)
{
    const graph g = load_graph(args.positionals().at(1));
    std::cout << "cdfg " << g.name() << ": " << g.node_count() << " nodes, "
              << g.edge_count() << " edges\n";
    for (const auto& [kind, count] : op_histogram(g))
        std::cout << "  " << op_kind_name(kind) << ": " << count << '\n';
    if (args.has("--dot")) {
        std::ofstream os(args.get("--dot"));
        os << to_dot(g);
        std::cout << "wrote " << args.get("--dot") << '\n';
    } else {
        write_cdfg(g, std::cout);
    }
    return 0;
}

int cmd_synth(const arg_parser& args)
{
    const graph g = load_graph(args.positionals().at(1));
    const module_library lib = load_library(args);
    const synthesis_constraints constraints{
        args.get_int("--latency"),
        args.has("--power") ? args.get_double("--power") : unbounded_power};

    datapath dp;
    if (args.has("--exact")) {
        const exact_result r = exact_synthesize(g, lib, constraints);
        if (!r.feasible) {
            std::cerr << "infeasible: " << r.reason << '\n';
            return 1;
        }
        if (!r.solved) std::cerr << "warning: " << r.reason << '\n';
        dp = r.dp;
    } else {
        const synthesis_result r = synthesize(g, lib, constraints);
        if (!r.feasible) {
            std::cerr << "infeasible: " << r.reason << '\n';
            return 1;
        }
        dp = r.dp;
    }
    std::cout << dp.report(g, lib);
    std::cout << "\nper-cycle power:\n"
              << dp.sched.profile(lib).ascii_chart(constraints.max_power);

    if (args.has("--netlist") || args.has("--verilog")) {
        const netlist nl =
            build_netlist(dp.name, g, lib, dp.sched, dp.instance_of, dp.instance_modules());
        if (args.has("--netlist")) std::cout << '\n' << netlist_to_text(nl, g, lib);
        if (args.has("--verilog")) {
            std::ofstream os(args.get("--verilog"));
            os << netlist_to_verilog(nl, g, lib);
            std::cout << "wrote " << args.get("--verilog") << '\n';
        }
    }
    if (args.has("--dot")) {
        dot_options opts;
        opts.start_times = dp.sched.starts();
        for (node_id v : g.nodes())
            opts.clusters.push_back(strf("u%d", dp.instance_of[v.index()]));
        std::ofstream os(args.get("--dot"));
        os << to_dot(g, opts);
        std::cout << "wrote " << args.get("--dot") << '\n';
    }
    return 0;
}

int cmd_sweep(const arg_parser& args)
{
    const graph g = load_graph(args.positionals().at(1));
    const module_library lib = load_library(args);
    const int T = args.get_int("--latency");
    const int points = args.get_int("--points");
    const std::vector<sweep_point> raw =
        sweep_power(g, lib, T, default_power_grid(g, lib, T, points));
    const std::vector<sweep_point> env = monotone_envelope(raw);

    ascii_table t({"Pmax", "feasible", "peak", "area"});
    csv_writer csv({"cap", "feasible", "peak", "area"});
    for (const sweep_point& p : env) {
        t.add_row({strf("%.2f", p.cap), p.feasible ? "yes" : "no",
                   p.feasible ? strf("%.2f", p.peak) : "-",
                   p.feasible ? strf("%.0f", p.area) : "-"});
        csv.add_row({strf("%.4f", p.cap), p.feasible ? "1" : "0",
                     p.feasible ? strf("%.4f", p.peak) : "",
                     p.feasible ? strf("%.2f", p.area) : ""});
    }
    t.print(std::cout);
    if (args.has("--csv")) {
        csv.save(args.get("--csv"));
        std::cout << "wrote " << args.get("--csv") << '\n';
    }
    return 0;
}

int cmd_schedule(const arg_parser& args)
{
    const graph g = load_graph(args.positionals().at(1));
    const module_library lib = load_library(args);
    const double cap =
        args.has("--power") ? args.get_double("--power") : unbounded_power;
    const std::string alg = args.get("--alg");
    const module_assignment a = fastest_assignment(g, lib, cap);
    check(!a.empty(), "no module fits under the power cap");

    schedule s;
    if (alg == "asap") {
        s = asap_schedule(g, lib, a);
    } else if (alg == "pasap") {
        const pasap_result r = pasap(g, lib, a, cap);
        check(r.feasible, "pasap: " + r.reason);
        s = r.sched;
    } else if (alg == "fds") {
        const fds_result r = force_directed_schedule(g, lib, a, args.get_int("--latency"));
        check(r.feasible, "fds: " + r.reason);
        s = r.sched;
    } else {
        throw error("unknown --alg '" + alg + "' (asap|pasap|fds)");
    }

    ascii_table t({"op", "kind", "module", "start", "finish"});
    t.set_align(0, align::left);
    for (node_id v : g.nodes())
        t.add_row({g.label(v), std::string(op_kind_name(g.kind(v))),
                   lib.module(s.module_of(v)).name, std::to_string(s.start(v)),
                   std::to_string(s.finish(v, lib))});
    t.print(std::cout);
    std::cout << strf("\nlatency %d, peak power %.2f\n", s.latency(lib),
                      s.profile(lib).peak());
    std::cout << s.profile(lib).ascii_chart(cap);
    return 0;
}

int cmd_lifetime(const arg_parser& args)
{
    const graph g = load_graph(args.positionals().at(1));
    const module_library lib = load_library(args);
    const int T = args.get_int("--latency");

    synthesis_options speed_first;
    speed_first.try_both_prospects = false;
    speed_first.policy = prospect_policy::fastest_fit;
    const synthesis_result fast = synthesize(g, lib, {T, unbounded_power}, speed_first);
    check(fast.feasible, "unconstrained synthesis failed: " + fast.reason);
    const double cap = args.has("--power") ? args.get_double("--power")
                                           : 0.5 * fast.dp.peak_power(lib);
    const synthesis_result capped = synthesize(g, lib, {T, cap});
    check(capped.feasible, "capped synthesis failed: " + capped.reason);

    const double beta = args.get_double("--beta");
    const double dt = 0.5;
    const load_profile spiky = to_load(fast.dp.sched.profile(lib), 1.0, dt);
    const load_profile flat = to_load(capped.dp.sched.profile(lib), 1.0, dt);
    const double alpha = fast.dp.sched.profile(lib).energy() * dt * 100.0;
    const auto cell = make_rakhmatov_battery(alpha, beta);
    const double lu = cell->lifetime(spiky).seconds;
    const double lc = cell->lifetime(flat).seconds;

    std::cout << strf("speed-first: peak %.2f area %.0f -> lifetime %.0f s\n",
                      fast.dp.peak_power(lib), fast.dp.area.total(), lu);
    std::cout << strf("capped (P=%.2f): peak %.2f area %.0f -> lifetime %.0f s\n", cap,
                      capped.dp.peak_power(lib), capped.dp.area.total(), lc);
    std::cout << strf("lifetime gain: %+.1f%% (Rakhmatov beta=%.2f)\n",
                      100.0 * (lc - lu) / lu, beta);
    return 0;
}

int run(const std::vector<std::string>& argv)
{
    arg_parser args("phls <list|show|synth|sweep|schedule|lifetime> [graph]");
    args.add_option("--latency", "-T", "latency constraint in cycles");
    args.add_option("--power", "-P", "max power per clock cycle");
    args.add_option("--library", "-L", "module library file (default: Table 1)");
    args.add_option("--points", "", "sweep grid size", "20");
    args.add_option("--alg", "", "scheduler for 'schedule'", "pasap");
    args.add_option("--beta", "", "Rakhmatov diffusion parameter", "0.1");
    args.add_option("--csv", "", "write sweep results to a CSV file");
    args.add_option("--dot", "", "write a Graphviz file");
    args.add_option("--verilog", "", "write a structural Verilog skeleton");
    args.add_flag("--netlist", "", "print the datapath netlist");
    args.add_flag("--exact", "", "use the exact (branch-and-bound) synthesiser");
    args.add_flag("--help", "-h", "show usage");

    if (!args.parse(argv)) {
        std::cerr << args.error() << '\n' << args.usage();
        return 2;
    }
    if (args.has("--help") || args.positionals().empty()) {
        std::cout << args.usage();
        return args.positionals().empty() && !args.has("--help") ? 2 : 0;
    }

    const std::string& command = args.positionals().front();
    if (command == "list") return cmd_list();
    check(args.positionals().size() >= 2, "command '" + command + "' needs a graph");
    if (command == "show") return cmd_show(args);
    if (command == "synth") return cmd_synth(args);
    if (command == "sweep") return cmd_sweep(args);
    if (command == "schedule") return cmd_schedule(args);
    if (command == "lifetime") return cmd_lifetime(args);
    throw error("unknown command '" + command + "'");
}

} // namespace
} // namespace phls

int main(int argc, char** argv)
{
    try {
        return phls::run(std::vector<std::string>(argv + 1, argv + argc));
    } catch (const phls::error& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
