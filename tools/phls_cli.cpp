// phls — command-line front-end to the library, built on the flow engine.
//
//   phls list                                    built-in benchmarks
//   phls strategies                              registered flow backends
//   phls show <bench|file.cdfg> [--dot out.dot]  graph structure
//   phls synth <bench|file.cdfg> -T 17 [-P 7] [--library lib.txt]
//         [--netlist] [--verilog out.v] [--dot out.dot] [--synth greedy|exact|...]
//   phls sweep <bench|file.cdfg> -T 17 [--points 20] [--threads N] [--csv out.csv]
//         [--intra-threads N]
//         [--cache-file sweep.phlscache] [--memo-limit N] [--refine]
//         [--guided [--prune-margin M] [--eval-budget N]]
//         [--out front.csv|front.json]
//         [--server unix:PATH|HOST:PORT [--server-retries N]]
//         [--shards N [--shard-procs [--shard-retries N]]
//          [--shard-cache-dir DIR [--checkpoint manifest]]]
//         [--resume manifest]
//   phls schedule <bench|file.cdfg> -T 17 -P 7 [--alg asap|alap|pasap|palap|fds]
//   phls lifetime <bench|file.cdfg> -T 17 [--beta 0.1]
//   phls serve --socket PATH | --port N | --stdio
//         [--threads N] [--memo-limit N] [--timeout-ms N] [--max-clients N]
//         [--allow-cache-save]
//   phls cache merge <out.phlscache> <in.phlscache...> [--skip-bad]
//   phls tasks <taskset-file> [--policy edf|battery] [--threads N]
//         [--memo-limit N] [--out tasks.json|tasks.csv] [--progress]
//   phls tasks --list-policies
//
// The distributed modes produce byte-identical sweep output: a --server
// or --shards sweep prints the same table, front and exports as the
// local session (see docs/SERVE.md).
//
// A positional that names a file ending in .cdfg is parsed from disk;
// anything else must be a built-in benchmark name.  Output options
// dispatch on extension: --csv wants .csv, --dot wants .dot, --verilog
// wants .v, --out wants .csv or .json.
#include <algorithm>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <system_error>

#include "cdfg/analysis.h"
#include "cdfg/benchmarks.h"
#include "cdfg/dot.h"
#include "cdfg/textio.h"
#include "dse/session.h"
#include "flow/flow.h"
#include "flow/pareto_stream.h"
#include "serve/client.h"
#include "serve/manifest.h"
#include "serve/server.h"
#include "serve/shard.h"
#include "support/argparse.h"
#include "support/errors.h"
#include "support/csv.h"
#include "support/kernels.h"
#include "support/strings.h"
#include "support/table.h"
#include "synth/explore.h"
#include "task/engine.h"

namespace phls {
namespace {

graph load_graph(const std::string& spec)
{
    if (ends_with(spec, ".cdfg")) {
        std::ifstream is(spec);
        check(static_cast<bool>(is), "cannot open '" + spec + "'");
        return parse_cdfg(is);
    }
    return benchmark_by_name(spec);
}

module_library load_library(const arg_parser& args)
{
    if (args.has("--library")) {
        std::ifstream is(args.get("--library"));
        check(static_cast<bool>(is), "cannot open '" + args.get("--library") + "'");
        return parse_library(is);
    }
    return table1_library();
}

/// Checks an output path carries the extension its writer expects.
std::string output_path(const arg_parser& args, const std::string& option,
                        std::string_view extension)
{
    const std::string path = args.get(option);
    check(ends_with(path, extension),
          option + " expects a file ending in '" + std::string(extension) + "', got '" +
              path + "'");
    return path;
}

int cmd_list()
{
    ascii_table t({"benchmark", "nodes", "ops", "inputs", "outputs", "mults",
                   "CP (par mult)", "CP (ser mult)"});
    t.set_align(0, align::left);
    for (const std::string& name : benchmark_names()) {
        const graph g = benchmark_by_name(name);
        const auto cp = [&](int mult_delay) {
            return critical_path_length(g, [&](node_id v) {
                return g.kind(v) == op_kind::mult ? mult_delay : 1;
            });
        };
        t.add_row({name, std::to_string(g.node_count()),
                   std::to_string(g.node_count() - g.count_of_kind(op_kind::input) -
                                  g.count_of_kind(op_kind::output)),
                   std::to_string(g.count_of_kind(op_kind::input)),
                   std::to_string(g.count_of_kind(op_kind::output)),
                   std::to_string(g.count_of_kind(op_kind::mult)),
                   std::to_string(cp(2)), std::to_string(cp(4))});
    }
    t.print(std::cout);
    return 0;
}

int cmd_strategies()
{
    const strategy_registry& registry = strategy_registry::instance();
    ascii_table t({"kind", "name", "description"});
    t.set_align(0, align::left);
    t.set_align(1, align::left);
    t.set_align(2, align::left);
    for (const std::string& name : registry.scheduler_names())
        t.add_row({"scheduler", name, registry.scheduler(name)->description()});
    for (const std::string& name : registry.synthesizer_names())
        t.add_row({"synthesizer", name, registry.synthesizer(name)->description()});
    t.print(std::cout);
    return 0;
}

int cmd_show(const arg_parser& args)
{
    const graph g = load_graph(args.positionals().at(1));
    std::cout << "cdfg " << g.name() << ": " << g.node_count() << " nodes, "
              << g.edge_count() << " edges\n";
    for (const auto& [kind, count] : op_histogram(g))
        std::cout << "  " << op_kind_name(kind) << ": " << count << '\n';
    if (args.has("--dot")) {
        const std::string path = output_path(args, "--dot", ".dot");
        std::ofstream os(path);
        os << to_dot(g);
        std::cout << "wrote " << path << '\n';
    } else {
        write_cdfg(g, std::cout);
    }
    return 0;
}

int cmd_synth(const arg_parser& args)
{
    const graph g = load_graph(args.positionals().at(1));
    const module_library lib = load_library(args);

    const std::string synth_name = args.has("--exact") ? "exact" : args.get("--synth");
    flow f = flow::on(g)
                 .with_library(lib)
                 .latency(args.get_int("--latency"))
                 .synthesizer(synth_name)
                 .emit_netlist(args.has("--netlist") || args.has("--verilog"));
    if (args.has("--power")) f.power_cap(args.get_double("--power"));

    const flow_report r = f.run();
    if (!r.st.ok()) {
        std::cerr << r.st.to_string() << '\n';
        return 1;
    }
    // Only an unproven exact search warrants a warning; other strategies
    // use the note for routine information.
    if (synth_name == "exact" && !r.optimal) std::cerr << "warning: " << r.note << '\n';
    std::cout << r.dp.report(g, lib);
    std::cout << "\nper-cycle power:\n"
              << r.dp.sched.profile(lib).ascii_chart(f.point().max_power);

    if (args.has("--netlist")) std::cout << '\n' << netlist_to_text(r.nl, g, lib);
    if (args.has("--verilog")) {
        const std::string path = output_path(args, "--verilog", ".v");
        std::ofstream os(path);
        os << netlist_to_verilog(r.nl, g, lib);
        std::cout << "wrote " << path << '\n';
    }
    if (args.has("--dot")) {
        dot_options opts;
        opts.start_times = r.dp.sched.starts();
        for (node_id v : g.nodes())
            opts.clusters.push_back(strf("u%d", r.dp.instance_of[v.index()]));
        const std::string path = output_path(args, "--dot", ".dot");
        std::ofstream os(path);
        os << to_dot(g, opts);
        std::cout << "wrote " << path << '\n';
    }
    return 0;
}

/// Minimal JSON string escaping for the --out export.
std::string json_escape(const std::string& s)
{
    std::string out;
    for (const char c : s) {
        if (c == '"' || c == '\\') (out += '\\') += c;
        else if (c == '\n') out += "\\n";
        else if (static_cast<unsigned char>(c) < 0x20)
            out += strf("\\u%04x", static_cast<unsigned>(c));
        else out += c;
    }
    return out;
}

/// One evaluated sweep point: the metric projection the table and the
/// --out export read.  Deliberately NOT the full flow_report — a sweep
/// accumulates one of these per point, and keeping datapaths/netlists
/// alive would grow O(points x design) however tight --memo-limit is.
struct export_row {
    std::size_t index = 0;
    sweep_point pt;                      ///< cap, T, feasible, peak, area, latency
    status_code code = status_code::ok;  ///< exact outcome class for the export
    bool has_lifetime = false;
    double lifetime_seconds = 0.0;
};

export_row to_export_row(std::size_t index, const flow_report& r)
{
    export_row e;
    e.index = index;
    e.pt = to_sweep_point(r);
    e.code = r.st.code;
    e.has_lifetime = r.has_lifetime;
    e.lifetime_seconds = r.lifetime_seconds;
    return e;
}

/// Counters of a --guided sweep, exported so downstream tooling can
/// audit what fraction of the space was evaluated exactly.
struct guided_export {
    std::size_t space = 0;       ///< points the space describes
    std::size_t computed = 0;    ///< exact evaluations
    std::size_t memo_served = 0; ///< memo answers during the scan
    std::size_t skipped = 0;     ///< surrogate-pruned, never delivered
    std::size_t verified = 0;    ///< exact evaluations ordered by a ready model
};

/// Writes the final front + every evaluated per-point report to `path`,
/// dispatching on the extension (.csv or .json) like every other output
/// option.  A --guided sweep additionally exports its counters in the
/// JSON form (the CSV form is rows-only by design).
void write_front_export(const std::string& path, const std::vector<export_row>& rows,
                        const std::vector<front_point>& front,
                        const guided_export* guided = nullptr)
{
    std::set<std::size_t> on_front;
    for (const front_point& p : front) on_front.insert(p.index);

    if (ends_with(path, ".csv")) {
        csv_writer csv({"index", "latency_bound", "cap", "status", "peak", "area",
                        "latency", "lifetime_s", "on_front"});
        for (const export_row& e : rows) {
            csv.add_row({std::to_string(e.index),
                         std::to_string(e.pt.latency_bound),
                         strf("%.6f", e.pt.cap),
                         std::string(status_code_name(e.code)),
                         e.pt.feasible ? strf("%.6f", e.pt.peak) : "",
                         e.pt.feasible ? strf("%.6f", e.pt.area) : "",
                         e.pt.feasible ? std::to_string(e.pt.latency) : "",
                         e.has_lifetime ? strf("%.6f", e.lifetime_seconds) : "",
                         on_front.count(e.index) ? "1" : "0"});
        }
        csv.save(path);
        return;
    }

    std::ofstream os(path);
    check(static_cast<bool>(os), "cannot write '" + path + "'");
    os << "{\n  \"points\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const export_row& e = rows[i];
        os << strf("    {\"index\": %zu, \"latency_bound\": %d, \"cap\": %.17g, "
                   "\"status\": \"%s\"",
                   e.index, e.pt.latency_bound, e.pt.cap,
                   json_escape(status_code_name(e.code)).c_str());
        if (e.pt.feasible)
            os << strf(", \"peak\": %.17g, \"area\": %.17g, \"latency\": %d", e.pt.peak,
                       e.pt.area, e.pt.latency);
        if (e.has_lifetime) os << strf(", \"lifetime_s\": %.17g", e.lifetime_seconds);
        os << (i + 1 < rows.size() ? "},\n" : "}\n");
    }
    os << "  ],\n";
    if (guided) {
        const double fraction =
            guided->space > 0
                ? static_cast<double>(guided->computed + guided->memo_served) /
                      static_cast<double>(guided->space)
                : 0.0;
        os << strf("  \"guided\": {\"space\": %zu, \"computed\": %zu, "
                   "\"memo_served\": %zu, \"skipped\": %zu, \"verified\": %zu, "
                   "\"evaluated_fraction\": %.17g},\n",
                   guided->space, guided->computed, guided->memo_served,
                   guided->skipped, guided->verified, fraction);
    }
    os << "  \"front\": [\n";
    for (std::size_t i = 0; i < front.size(); ++i) {
        const front_point& p = front[i];
        os << strf("    {\"index\": %zu, \"latency_bound\": %d, \"cap\": %.17g, "
                   "\"peak\": %.17g, \"area\": %.17g, \"latency\": %d",
                   p.index, p.latency_bound, p.cap, p.peak, p.area, p.latency);
        if (p.has_lifetime) os << strf(", \"lifetime_s\": %.17g", p.lifetime_seconds);
        os << (i + 1 < front.size() ? "},\n" : "}\n");
    }
    os << "  ]\n}\n";
    check(static_cast<bool>(os), "failed writing '" + path + "'");
}

/// Opens a client channel from a --server spec: "unix:PATH" or
/// "HOST:PORT".
serve::channel connect_server(const std::string& spec)
{
    if (spec.rfind("unix:", 0) == 0) return serve::connect_unix(spec.substr(5));
    const std::size_t colon = spec.rfind(':');
    check(colon != std::string::npos && colon + 1 < spec.size(),
          "--server expects unix:PATH or HOST:PORT, got '" + spec + "'");
    char* end = nullptr;
    const long port = std::strtol(spec.c_str() + colon + 1, &end, 10);
    check(end && *end == '\0' && port > 0 && port < 65536,
          "--server has a malformed port in '" + spec + "'");
    return serve::connect_tcp(spec.substr(0, colon), static_cast<int>(port));
}

int cmd_sweep(const arg_parser& args)
{
    const graph g = load_graph(args.positionals().at(1));
    const module_library lib = load_library(args);
    const int T = args.get_int("--latency");
    const int points = args.get_int("--points");
    const int threads = args.get_int("--threads");
    check(threads >= 0, "--threads must be >= 0 (0 = all cores)");
    // Validate every output path before spending minutes on the sweep.
    const std::string csv_path =
        args.has("--csv") ? output_path(args, "--csv", ".csv") : "";
    std::string out_path;
    if (args.has("--out")) {
        out_path = args.get("--out");
        check(ends_with(out_path, ".csv") || ends_with(out_path, ".json"),
              "--out expects a file ending in '.csv' or '.json', got '" + out_path +
                  "'");
    }

    // Distribution modes.  All of them produce byte-identical stdout to
    // the local session sweep: the table, envelope, front and exports
    // only read metric projections, which survive the wire exactly.
    const std::string server_spec = args.has("--server") ? args.get("--server") : "";
    const int shards = args.get_int("--shards");
    check(shards >= 1, "--shards must be >= 1");
    const bool shard_procs = args.has("--shard-procs");
    const std::string shard_dir =
        args.has("--shard-cache-dir") ? args.get("--shard-cache-dir") : "";
    const bool sharded = shards != 1 || shard_procs || !shard_dir.empty();
    check(server_spec.empty() || !sharded,
          "--server and --shards are different distribution modes; pick one");

    // Fault-tolerance knobs.  Each one is rejected loudly when it cannot
    // apply, instead of being silently ignored.
    const int shard_retries = args.get_int("--shard-retries");
    check(shard_retries >= 0, "--shard-retries must be >= 0 (0 = fail fast)");
    check(!args.has("--shard-retries") || (sharded && shard_procs),
          "--shard-retries supervises forked shard workers; add --shards N "
          "--shard-procs");
    const int server_retries = args.get_int("--server-retries");
    check(server_retries >= 0, "--server-retries must be >= 0 (0 = fail fast)");
    check(!args.has("--server-retries") || !server_spec.empty(),
          "--server-retries only applies to --server sweeps");
    const std::string checkpoint_path =
        args.has("--checkpoint") ? args.get("--checkpoint") : "";
    check(checkpoint_path.empty() || sharded,
          "--checkpoint records shard completion; add --shards N");
    check(checkpoint_path.empty() || !shard_dir.empty(),
          "--checkpoint needs --shard-cache-dir: a resume replays the finished "
          "ranges from the per-shard cache files");
    const std::string resume_path = args.has("--resume") ? args.get("--resume") : "";
    check(resume_path.empty() || (server_spec.empty() && !sharded),
          "--resume replays the checkpointed caches into a local session; drop "
          "--server/--shards");
    check(resume_path.empty() || !args.has("--refine"),
          "--resume resumes an eager (sharded) sweep; --refine sweeps cannot "
          "be checkpointed");
    const bool guided = args.has("--guided");
    const double prune_margin = args.get_double("--prune-margin");
    const int eval_budget = args.get_int("--eval-budget");
    check(guided || (!args.has("--prune-margin") && !args.has("--eval-budget")),
          "--prune-margin and --eval-budget only apply to --guided sweeps");
    if (guided) {
        check(prune_margin >= 0.0, "--prune-margin must be >= 0");
        check(eval_budget >= 0, "--eval-budget must be >= 0 (0 = unbounded)");
        check(server_spec.empty(),
              "--guided is a session-side walk; a phls serve runs eager jobs");
        check(!shard_procs,
              "--guided sweeps cannot use forked shard workers: wire jobs are "
              "eager -- drop --shard-procs");
    }
    if (!server_spec.empty())
        check(!args.has("--cache-file"),
              "--cache-file is a local option; a phls serve owns its own caches");
    if (sharded) {
        check(!args.has("--refine"),
              "--refine (adaptive) sweeps cannot be sharded; drop one of the two");
        check(!args.has("--cache-file"),
              "--cache-file is for single-session sweeps; use --shard-cache-dir "
              "and 'phls cache merge'");
    }

    // The sweep runs as a dse::session: one bounded two-level cache owns
    // every memo, --cache-file persists it across processes (a repeated
    // sweep warm-starts and serves metric answers instead of
    // resynthesising), and --refine evaluates the cap axis adaptively.
    const flow proto = flow::on(g).with_library(lib).latency(T);
    dse::session_options opts;
    if (args.has("--memo-limit")) {
        const int limit = args.get_int("--memo-limit");
        check(limit >= 0, "--memo-limit must be >= 0 (0 = unbounded)");
        opts.memo_limit = static_cast<std::size_t>(limit);
    }
    const bool local = server_spec.empty() && !sharded;
    std::unique_ptr<dse::session> session;
    if (local) session = std::make_unique<dse::session>(proto, opts);

    // A missing cache file is the normal first (cold) run; anything else
    // that prevents loading — unreadable file, a directory, corruption —
    // must fail loudly before the sweep spends minutes computing.
    const std::string cache_path =
        args.has("--cache-file") ? args.get("--cache-file") : "";
    if (!cache_path.empty()) {
        std::error_code probe_ec;
        const bool present = std::filesystem::exists(cache_path, probe_ec);
        check(!probe_ec, "cannot probe cache file '" + cache_path +
                             "': " + probe_ec.message());
        if (present) {
            const std::size_t loaded = session->load(cache_path);
            std::cerr << "loaded " << loaded << " memo records from " << cache_path
                      << '\n';
        }
    }

    // The grid probe shares the session cache when there is one (warm
    // runs serve its committed windows instead of re-deriving the
    // problem from cold); distributed sweeps probe cold — the grid is a
    // pure function of the problem, so the caps are identical.
    flow probe = proto;
    if (session) probe.reuse(session->cache());
    const std::vector<double> caps = probe.power_grid(points);

    const dse::space sp = args.has("--refine") ? dse::refine({T}, caps)
                                               : dse::cross({T}, caps);

    // Resume: replay the checkpointed per-shard caches into the local
    // session, then run the sweep normally — finished points are served
    // from the warm memo, unfinished ones are computed, and stdout stays
    // byte-identical to the fault-free run.  A manifest written for a
    // different problem or grid is rejected loudly: warm answers for the
    // wrong problem would be silently wrong.
    if (!resume_path.empty()) {
        const serve::sweep_manifest man = serve::load_manifest(resume_path);
        check(man.problem_hash == serve::manifest_problem_hash(proto, sp),
              "--resume manifest '" + resume_path +
                  "' was checkpointed from a different problem (graph, library, "
                  "latency or strategies changed)");
        check(man.space_size == sp.size(),
              strf("--resume manifest covers a %zu-point space but this sweep "
                   "describes %zu points; rerun with the checkpointed run's "
                   "--points",
                   man.space_size, sp.size()));
        std::size_t merged = 0;
        for (const std::string& path : man.cache_files) merged += session->merge(path);
        std::cerr << strf("resuming: %zu of %zu points already complete "
                          "(%zu memo records from %zu cache file(s))\n",
                          man.done_points(), sp.size(), merged,
                          man.cache_files.size());
    }

    // Stream per-point progress and the front *deltas* to stderr as
    // workers finish; stdout stays a deterministic, input-ordered table
    // either way.
    std::vector<export_row> rows;
    dse::sink sink;
    std::size_t done = 0;
    std::size_t front_size = 0;
    const bool progress = args.has("--progress");
    // Under --refine the evaluated count is not known upfront, so the
    // progress denominator shows the lattice size as an upper bound.
    const std::string total =
        strf(args.has("--refine") ? "<=%zu" : "%zu", sp.size());
    sink.on_result = [&](std::size_t index, const flow_report& r) {
        rows.push_back(to_export_row(index, r));
        if (progress)
            std::cerr << strf("[%zu/%s] T=%d Pmax=%.2f -> %s\n", ++done,
                              total.c_str(), r.constraints.latency,
                              r.constraints.max_power, r.st.to_string().c_str());
    };
    sink.on_front = [&](const front_delta& d) {
        front_size += d.entered.size();
        front_size -= d.left.size();
        if (progress)
            std::cerr << strf("  front: +%zu -%zu (now %zu point%s)\n",
                              d.entered.size(), d.left.size(), front_size,
                              front_size == 1 ? "" : "s");
    };
    std::vector<front_point> front;
    std::size_t evaluated = 0;
    guided_export gx;
    gx.space = sp.size();
    if (!server_spec.empty()) {
        serve::job_request job = serve::make_job(proto, sp);
        job.threads = threads;
        serve::done_frame df;
        if (server_retries > 0) {
            // Survives a restarted/dropped server: redial with backoff,
            // resubmit, deduplicate the replayed points (docs/SERVE.md,
            // "Fault tolerance").
            serve::reconnect_options ro;
            ro.max_retries = server_retries;
            serve::resilient_client client(
                [&server_spec] { return connect_server(server_spec); }, ro);
            df = client.explore(job, sink);
            client.bye();
            if (client.reconnects() > 0)
                std::cerr << strf("reconnected to %s %zu time(s) mid-sweep\n",
                                  server_spec.c_str(), client.reconnects());
        } else {
            serve::client client(connect_server(server_spec));
            df = client.explore(job, sink);
            client.bye();
        }
        front = df.front;
        evaluated = static_cast<std::size_t>(df.evaluated);
    } else if (sharded) {
        serve::shard_options so;
        so.shards = shards;
        so.processes = shard_procs;
        so.threads_per_shard = threads;
        so.memo_limit = opts.memo_limit;
        so.cache_dir = shard_dir;
        so.guided = guided;
        so.prune_margin = prune_margin;
        so.eval_budget = static_cast<std::size_t>(eval_budget);
        so.max_retries = shard_retries;
        so.manifest_path = checkpoint_path;
        const serve::shard_summary sum = serve::explore_sharded(proto, sp, so, sink);
        front = sum.front;
        evaluated = sum.evaluated;
        gx.computed = sum.computed;
        gx.memo_served = sum.evaluated - sum.computed;
        gx.skipped = sum.skipped;
        gx.verified = sum.verified;
        if (sum.worker_retries > 0)
            std::cerr << strf("respawned %zu shard worker(s) mid-sweep\n",
                              sum.worker_retries);
        for (const std::string& path : sum.cache_files)
            std::cerr << "saved shard cache " << path << '\n';
        if (!checkpoint_path.empty())
            std::cerr << "saved checkpoint manifest " << checkpoint_path << '\n';
    } else if (guided) {
        dse::guided_options go;
        go.margin = prune_margin;
        go.eval_budget = static_cast<std::size_t>(eval_budget);
        const dse::guided_summary sum = session->explore_guided(sp, go, sink, threads);
        front = sum.front;
        evaluated = sum.evaluated;
        gx.computed = sum.computed;
        gx.memo_served = sum.memo_served;
        gx.skipped = sum.skipped;
        gx.verified = sum.verified;
    } else {
        const dse::explore_summary sum = session->explore(sp, sink, threads);
        front = sum.front;
        evaluated = sum.evaluated;
    }
    // Guided counters go to stderr so a no-prune guided sweep's stdout
    // stays byte-identical to the eager sweep's.
    if (guided)
        std::cerr << strf("guided: %zu computed + %zu memo + %zu skipped of %zu "
                          "points (%zu verified)\n",
                          gx.computed, gx.memo_served, gx.skipped, gx.space,
                          gx.verified);

    // Input-ordered rows whatever the completion order; with --refine
    // only the evaluated subset exists, which is exactly what the
    // envelope should be built from.
    std::sort(rows.begin(), rows.end(),
              [](const export_row& a, const export_row& b) { return a.index < b.index; });
    std::vector<sweep_point> raw;
    raw.reserve(rows.size());
    for (const export_row& e : rows) raw.push_back(e.pt);
    const std::vector<sweep_point> env = monotone_envelope(raw);

    ascii_table t({"Pmax", "feasible", "peak", "area"});
    csv_writer csv({"cap", "feasible", "peak", "area"});
    for (const sweep_point& p : env) {
        t.add_row({strf("%.2f", p.cap), p.feasible ? "yes" : "no",
                   p.feasible ? strf("%.2f", p.peak) : "-",
                   p.feasible ? strf("%.0f", p.area) : "-"});
        csv.add_row({strf("%.4f", p.cap), p.feasible ? "1" : "0",
                     p.feasible ? strf("%.4f", p.peak) : "",
                     p.feasible ? strf("%.2f", p.area) : ""});
    }
    t.print(std::cout);
    if (args.has("--refine"))
        std::cout << strf("refined: %zu of %zu lattice points evaluated\n", evaluated,
                          sp.size());
    if (!csv_path.empty()) {
        csv.save(csv_path);
        std::cout << "wrote " << csv_path << '\n';
    }
    if (!out_path.empty()) {
        write_front_export(out_path, rows, front, guided ? &gx : nullptr);
        std::cout << "wrote " << out_path << '\n';
    }
    if (!cache_path.empty()) {
        const std::size_t saved = session->save(cache_path);
        std::cerr << "saved " << saved << " memo records to " << cache_path << '\n';
    }
    return 0;
}

int cmd_schedule(const arg_parser& args)
{
    const graph g = load_graph(args.positionals().at(1));
    const module_library lib = load_library(args);
    const std::string alg = args.get("--alg");

    flow f = flow::on(g).with_library(lib).scheduler(alg);
    if (args.has("--latency")) f.latency(args.get_int("--latency"));
    const double cap =
        args.has("--power") ? args.get_double("--power") : unbounded_power;
    f.power_cap(cap);

    const sched_outcome out = f.run_schedule();
    if (!out.st.ok()) {
        if (out.st.code == status_code::unsupported) {
            std::string known;
            for (const std::string& n : strategy_registry::instance().scheduler_names())
                known += (known.empty() ? "" : "|") + n;
            throw error("unknown --alg '" + alg + "' (" + known + ")");
        }
        std::cerr << out.st.to_string() << '\n';
        return 1;
    }
    const schedule& s = out.sched;

    ascii_table t({"op", "kind", "module", "start", "finish"});
    t.set_align(0, align::left);
    for (node_id v : g.nodes())
        t.add_row({g.label(v), std::string(op_kind_name(g.kind(v))),
                   lib.module(s.module_of(v)).name, std::to_string(s.start(v)),
                   std::to_string(s.finish(v, lib))});
    t.print(std::cout);
    std::cout << strf("\nlatency %d, peak power %.2f\n", s.latency(lib),
                      s.profile(lib).peak());
    std::cout << s.profile(lib).ascii_chart(cap);
    return 0;
}

int cmd_lifetime(const arg_parser& args)
{
    const graph g = load_graph(args.positionals().at(1));
    const module_library lib = load_library(args);
    const int T = args.get_int("--latency");
    const double beta = args.get_double("--beta");

    // Speed-first baseline: fastest modules, no power awareness.
    synthesis_options speed_first;
    speed_first.try_both_prospects = false;
    speed_first.policy = prospect_policy::fastest_fit;
    lifetime_spec cell;
    cell.beta = beta;
    const flow_report fast = flow::on(g)
                                 .with_library(lib)
                                 .latency(T)
                                 .options(speed_first)
                                 .estimate_lifetime(cell)
                                 .run();
    check(fast.st.ok(), "unconstrained synthesis failed: " + fast.st.to_string());

    // Power-capped design, judged on the same battery (same alpha).
    const double cap = args.has("--power") ? args.get_double("--power") : 0.5 * fast.peak;
    cell.alpha = fast.battery_alpha;
    const flow_report capped = flow::on(g)
                                   .with_library(lib)
                                   .latency(T)
                                   .power_cap(cap)
                                   .estimate_lifetime(cell)
                                   .run();
    check(capped.st.ok(), "capped synthesis failed: " + capped.st.to_string());

    std::cout << strf("speed-first: peak %.2f area %.0f -> lifetime %.0f s\n", fast.peak,
                      fast.area, fast.lifetime_seconds);
    std::cout << strf("capped (P=%.2f): peak %.2f area %.0f -> lifetime %.0f s\n", cap,
                      capped.peak, capped.area, capped.lifetime_seconds);
    std::cout << strf("lifetime gain: %+.1f%% (Rakhmatov beta=%.2f)\n",
                      100.0 * (capped.lifetime_seconds - fast.lifetime_seconds) /
                          fast.lifetime_seconds,
                      beta);
    return 0;
}

/// The running server, for the SIGTERM/SIGINT handler.  A plain pointer
/// store/load: the handler only calls request_stop(), which is one
/// lock-free atomic store.
serve::server* g_server = nullptr;

void handle_stop_signal(int)
{
    if (g_server) g_server->request_stop();
}

int cmd_serve(const arg_parser& args)
{
    serve::serve_limits limits;
    limits.threads = args.get_int("--threads");
    check(limits.threads >= 0, "--threads must be >= 0 (0 = all cores)");
    if (args.has("--memo-limit")) {
        const int limit = args.get_int("--memo-limit");
        check(limit >= 0, "--memo-limit must be >= 0 (0 = unbounded)");
        limits.memo_limit = static_cast<std::size_t>(limit);
    }
    limits.allow_cache_save = args.has("--allow-cache-save");

    if (args.has("--stdio")) {
        // Protocol over stdin/stdout (logs keep to stderr): the shape a
        // pipe supervisor or an ssh-launched worker wants.
        serve::channel ch(0, 1);
        serve::session_pool pool;
        serve::serve_connection(ch, pool, limits);
        return 0;
    }

    check(args.has("--socket") || args.has("--port"),
          "serve needs --socket PATH, --port N or --stdio");
    serve::server_options opts;
    if (args.has("--socket")) opts.socket_path = args.get("--socket");
    else opts.port = args.get_int("--port");
    opts.client_timeout_ms = args.get_int("--timeout-ms");
    check(opts.client_timeout_ms >= 0, "--timeout-ms must be >= 0 (0 = no timeout)");
    opts.max_clients = args.get_int("--max-clients");
    check(opts.max_clients >= 1, "--max-clients must be >= 1");
    opts.limits = limits;

    serve::server srv(opts);
    g_server = &srv;
    std::signal(SIGTERM, handle_stop_signal);
    std::signal(SIGINT, handle_stop_signal);
    // The "serving on" line is the readiness signal scripts wait for.
    if (!opts.socket_path.empty())
        std::cout << "serving on unix:" << opts.socket_path << std::endl;
    else
        std::cout << "serving on 127.0.0.1:" << srv.port() << std::endl;
    srv.run();
    srv.stop();
    g_server = nullptr;
    const serve::server::stats_snapshot st = srv.stats();
    std::cout << strf("served %zu client(s): %zu job(s), %zu rejected, "
                      "%zu protocol error(s), %zu over capacity, %zu session(s)\n",
                      st.clients, st.jobs, st.rejects, st.protocol_errors,
                      st.overloaded, st.sessions);
    return 0;
}

int cmd_cache(const arg_parser& args)
{
    const std::vector<std::string>& pos = args.positionals();
    check(pos.size() >= 2 && pos[1] == "merge",
          "usage: phls cache merge <out.phlscache> <in.phlscache...>");
    check(pos.size() >= 4, "cache merge needs an output file and at least one input");
    const std::string out = pos[2];
    const std::vector<std::string> inputs(pos.begin() + 3, pos.end());

    const cache_merge_stats stats =
        explore_cache::merge_files(out, inputs, args.has("--skip-bad"));
    ascii_table t({"input", "committed", "metrics", "new committed", "new metrics",
                   "skipped"});
    t.set_align(0, align::left);
    t.set_align(5, align::left);
    for (const cache_merge_stats::input& in : stats.inputs)
        t.add_row({in.path, std::to_string(in.committed), std::to_string(in.metrics),
                   std::to_string(in.new_committed), std::to_string(in.new_metrics),
                   in.skipped ? in.skip_reason : "-"});
    t.add_row({"= " + out, std::to_string(stats.committed_total),
               std::to_string(stats.metric_total), "", "",
               stats.skipped_inputs > 0
                   ? strf("%zu input(s)", stats.skipped_inputs)
                   : "-"});
    t.print(std::cout);
    return 0;
}

/// Writes the task schedule to `path`, dispatching on the extension
/// (.csv or .json) like the sweep's --out.
void write_tasks_export(const std::string& path, const task::task_schedule& s)
{
    if (ends_with(path, ".csv")) {
        csv_writer csv({"index", "name", "latency_bound", "cap", "latency", "peak",
                        "area", "release", "deadline", "iterations", "completion",
                        "slack", "met"});
        for (const task::task_result& t : s.tasks)
            csv.add_row({std::to_string(t.index), t.name,
                         std::to_string(t.impl.point.latency),
                         std::isfinite(t.impl.point.max_power)
                             ? strf("%.6f", t.impl.point.max_power)
                             : "inf",
                         std::to_string(t.impl.latency), strf("%.6f", t.impl.peak),
                         strf("%.4f", t.impl.area), std::to_string(t.release),
                         std::to_string(t.deadline), std::to_string(t.iterations),
                         std::to_string(t.completion), std::to_string(t.slack),
                         t.met ? "1" : "0"});
        csv.save(path);
        return;
    }

    // JSON has no infinity literal; unbounded powers export as null.
    const auto json_power = [](double p) {
        return std::isfinite(p) ? strf("%.17g", p) : std::string("null");
    };
    std::ofstream os(path);
    check(static_cast<bool>(os), "cannot write '" + path + "'");
    os << strf("{\n  \"taskset\": \"%s\", \"policy\": \"%s\", \"envelope\": %s,\n",
               json_escape(s.set_name).c_str(), json_escape(s.policy).c_str(),
               json_power(s.envelope).c_str());
    os << strf("  \"met\": %d, \"makespan\": %d, \"gaps\": %d,\n", s.met, s.makespan,
               s.preemption_gaps);
    os << strf("  \"peak\": %.17g, \"energy\": %.17g, \"lifetime_s\": %.17g, "
               "\"alpha\": %.17g,\n",
               s.peak, s.energy, s.lifetime_seconds, s.battery_alpha);
    os << "  \"tasks\": [\n";
    for (std::size_t i = 0; i < s.tasks.size(); ++i) {
        const task::task_result& t = s.tasks[i];
        os << strf("    {\"index\": %d, \"name\": \"%s\", \"latency_bound\": %d, "
                   "\"cap\": %s, \"latency\": %d, \"peak\": %.17g, \"area\": %.17g, "
                   "\"release\": %d, \"deadline\": %d, \"iterations\": %d, "
                   "\"completion\": %d, \"slack\": %d, \"met\": %s, \"runs\": [",
                   t.index, json_escape(t.name).c_str(), t.impl.point.latency,
                   json_power(t.impl.point.max_power).c_str(), t.impl.latency,
                   t.impl.peak, t.impl.area, t.release, t.deadline, t.iterations,
                   t.completion, t.slack, t.met ? "true" : "false");
        for (std::size_t r = 0; r < t.runs.size(); ++r)
            os << strf("[%d, %d]%s", t.runs[r].start, t.runs[r].finish,
                       r + 1 < t.runs.size() ? ", " : "");
        os << (i + 1 < s.tasks.size() ? "]},\n" : "]}\n");
    }
    os << "  ]\n}\n";
    check(static_cast<bool>(os), "failed writing '" + path + "'");
}

int cmd_tasks(const arg_parser& args)
{
    if (args.has("--list-policies")) {
        ascii_table t({"policy", "description"});
        t.set_align(0, align::left);
        t.set_align(1, align::left);
        for (const std::string& name : task::policy_names())
            t.add_row({name, task::policy_description(task::policy_by_name(name))});
        t.print(std::cout);
        return 0;
    }
    check(args.positionals().size() >= 2,
          "tasks needs a task-set file (or --list-policies)");
    const std::string path = args.positionals().at(1);
    std::ifstream is(path);
    check(static_cast<bool>(is), "cannot open '" + path + "'");
    const task::task_set set = task::parse_task_set(is);
    const task::policy p = task::policy_by_name(args.get("--policy"));

    task::schedule_options opts;
    opts.threads = args.get_int("--threads");
    check(opts.threads >= 0, "--threads must be >= 0 (0 = all cores)");
    if (args.has("--memo-limit")) {
        const int limit = args.get_int("--memo-limit");
        check(limit >= 0, "--memo-limit must be >= 0 (0 = unbounded)");
        opts.memo_limit = static_cast<std::size_t>(limit);
    }
    std::string out_path;
    if (args.has("--out")) {
        out_path = args.get("--out");
        check(ends_with(out_path, ".csv") || ends_with(out_path, ".json"),
              "--out expects a file ending in '.csv' or '.json', got '" + out_path +
                  "'");
    }

    // Per-task streaming goes to stderr; stdout is the canonical
    // schedule rendering (byte-identical across thread counts, which the
    // CI smoke compares).
    task::sink sk;
    if (args.has("--progress"))
        sk.on_task = [](const task::task_result& t) {
            std::cerr << strf("task %s: %s completion %d deadline %d (%zu runs)\n",
                              t.name.c_str(), t.met ? "met" : "MISSED", t.completion,
                              t.deadline, t.runs.size());
        };

    const task::task_schedule s = task::schedule(set, p, opts, sk);
    std::cout << s.to_string();
    if (!out_path.empty()) {
        write_tasks_export(out_path, s);
        std::cout << "wrote " << out_path << '\n';
    }
    return 0;
}

int run(const std::vector<std::string>& argv)
{
    arg_parser args(
        "phls <list|strategies|show|synth|sweep|schedule|lifetime|serve|cache|tasks> "
        "[graph|taskset-file]");
    args.add_option("--latency", "-T", "latency constraint in cycles");
    args.add_option("--power", "-P", "max power per clock cycle");
    args.add_option("--library", "-L", "module library file (default: Table 1)");
    args.add_option("--points", "", "sweep grid size", "20");
    args.add_option("--threads", "", "sweep worker threads (0 = all cores)", "0");
    args.add_option("--intra-threads", "",
                    "threads for intra-point candidate scoring (>= 1)", "1");
    args.add_option("--alg", "", "scheduler for 'schedule'", "pasap");
    args.add_option("--synth", "", "synthesizer strategy for 'synth'", "greedy");
    args.add_option("--beta", "", "Rakhmatov diffusion parameter", "0.1");
    args.add_option("--csv", "", "write sweep results to a CSV file");
    args.add_option("--dot", "", "write a Graphviz file");
    args.add_option("--verilog", "", "write a structural Verilog skeleton");
    args.add_option("--out", "",
                    "export the sweep's Pareto front + per-point reports "
                    "(.csv or .json)");
    args.add_option("--cache-file", "",
                    "persist the sweep's memo tables: load before, save after "
                    "(warm-starts repeated sweeps)");
    args.add_option("--memo-limit", "",
                    "max full reports held by the level-2 memo (0 = unbounded)");
    args.add_option("--server", "",
                    "run the sweep on a phls serve (unix:PATH or HOST:PORT)");
    args.add_option("--shards", "",
                    "split the sweep into N contiguous shards, merge the fronts", "1");
    args.add_option("--shard-cache-dir", "",
                    "save each shard's cache to DIR/shard<i>.phlscache");
    args.add_option("--socket", "", "unix socket path for 'serve'");
    args.add_option("--port", "", "loopback TCP port for 'serve' (0 = ephemeral)");
    args.add_option("--timeout-ms", "",
                    "per-client receive/send timeout for 'serve' (0 = none)",
                    "30000");
    args.add_option("--max-clients", "",
                    "concurrent connections a 'serve' accepts before rejecting "
                    "with a loud reason",
                    "64");
    args.add_flag("--shard-procs", "",
                  "run each shard in a forked subprocess over the wire protocol");
    args.add_option("--shard-retries", "",
                    "respawns allowed per shard after a forked worker dies "
                    "mid-job (0 = fail fast)",
                    "2");
    args.add_option("--server-retries", "",
                    "reconnect attempts after the --server connection breaks "
                    "mid-sweep (0 = fail fast)",
                    "0");
    args.add_option("--checkpoint", "",
                    "atomically rewrite a sweep manifest as each shard "
                    "completes (needs --shard-cache-dir)");
    args.add_option("--resume", "",
                    "resume a killed sweep from its --checkpoint manifest: "
                    "replay the finished ranges' caches, compute the rest");
    args.add_flag("--skip-bad", "",
                  "cache merge: skip (and report) corrupt or truncated inputs "
                  "instead of aborting the merge");
    args.add_flag("--stdio", "", "serve the wire protocol on stdin/stdout");
    args.add_flag("--allow-cache-save", "",
                  "let jobs ask the server to save session caches to disk");
    args.add_flag("--refine", "",
                  "evaluate the sweep grid adaptively (subdivide only where "
                  "the front changes)");
    args.add_flag("--guided", "",
                  "steer the sweep with an incremental surrogate: order by "
                  "prediction, prune margin-dominated points, verify the front "
                  "exactly");
    args.add_option("--prune-margin", "",
                    "guided prune margin in prediction-sigma units (>= 0)", "3");
    args.add_option("--eval-budget", "",
                    "guided hard cap on exact evaluations (0 = unbounded)", "0");
    args.add_option("--policy", "",
                    "task scheduling policy for 'tasks' (see --list-policies)",
                    "battery");
    args.add_flag("--list-policies", "", "list the task scheduling policies");
    args.add_flag("--netlist", "", "print the datapath netlist");
    args.add_flag("--progress", "",
                  "stream sweep progress + incremental Pareto-front deltas to stderr");
    args.add_flag("--exact", "", "use the exact synthesiser (same as --synth exact)");
    args.add_flag("--help", "-h", "show usage");

    if (!args.parse(argv)) {
        std::cerr << args.error() << '\n' << args.usage();
        return 2;
    }
    if (args.has("--help") || args.positionals().empty()) {
        std::cout << args.usage();
        return args.positionals().empty() && !args.has("--help") ? 2 : 0;
    }

    // Intra-point parallelism is a process-global kernel knob: one huge
    // graph fans its candidate scoring out even when the sweep itself is
    // single-threaded.  Results are byte-identical at any value.
    const int intra_threads = args.get_int("--intra-threads");
    check(intra_threads >= 1, "--intra-threads must be >= 1");
    kernel_knobs().intra_threads = intra_threads;

    const std::string& command = args.positionals().front();
    if (command == "list") return cmd_list();
    if (command == "strategies") return cmd_strategies();
    if (command == "serve") return cmd_serve(args);
    if (command == "cache") return cmd_cache(args);
    if (command == "tasks") return cmd_tasks(args);
    check(args.positionals().size() >= 2, "command '" + command + "' needs a graph");
    if (command == "show") return cmd_show(args);
    if (command == "synth") return cmd_synth(args);
    if (command == "sweep") return cmd_sweep(args);
    if (command == "schedule") return cmd_schedule(args);
    if (command == "lifetime") return cmd_lifetime(args);
    throw error("unknown command '" + command + "'");
}

} // namespace
} // namespace phls

int main(int argc, char** argv)
{
    try {
        return phls::run(std::vector<std::string>(argv + 1, argv + argc));
    } catch (const phls::error& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
