// Multi-task power scheduling: packing several kernels into one shared
// power envelope and battery.
//
// A battery-powered device rarely runs one kernel: here a radio
// pipeline runs the HAL controller and an 8-point DCT with deadlines
// on shared hardware under a 9 W per-cycle envelope.  The example
// schedules the set twice — with the non-preemptive EDF baseline and
// with the preemptive battery-aware portfolio — and shows what the
// preemption buys: a flatter composed profile and a longer lifetime,
// never at the cost of a deadline (the engine keeps the baseline in
// its portfolio, so the battery policy dominates by construction).
#include <iostream>

#include "support/strings.h"
#include "support/table.h"
#include "task/engine.h"

int main()
{
    using namespace phls;

    // The workload, in the same text format `phls tasks` reads from a
    // file (docs/TASKS.md documents every directive).
    const task::task_set set = task::parse_task_set_string(
        "taskset radio\n"
        "envelope 9.0\n"
        "battery beta 0.1 cycle 0.5 idle 4\n"
        "task ctl hal    deadline 60\n"
        "task dct cosine deadline 200 release 10 iterations 2\n");

    // One pool: the second schedule() reuses the first one's warm
    // per-task exploration sessions.
    serve::session_pool pool;
    const task::task_schedule edf =
        task::schedule(set, task::policy::edf, pool);
    const task::task_schedule bat =
        task::schedule(set, task::policy::battery, pool);

    ascii_table table({"policy", "met", "makespan", "peak", "lifetime (s)"});
    for (const task::task_schedule* s : {&edf, &bat})
        table.add_row({s->policy, strf("%d/%zu", s->met, s->tasks.size()),
                       strf("%d", s->makespan), strf("%.3f", s->peak),
                       strf("%.3f", s->lifetime_seconds)});
    std::cout << table.to_string() << '\n';

    std::cout << "battery policy placement:\n";
    for (const task::task_result& r : bat.tasks) {
        std::cout << "  " << r.name << " on T=" << r.impl.latency
                  << " peak=" << strf("%.2f", r.impl.peak) << ":";
        for (const task::activation& a : r.runs)
            std::cout << " [" << a.start << "," << a.finish << ")";
        std::cout << (r.met ? "  met" : "  MISSED") << '\n';
    }

    // The structural guarantee the bench gates.
    const bool dominated = bat.met >= edf.met &&
                           bat.lifetime_seconds >= edf.lifetime_seconds;
    std::cout << "\nbattery >= edf on met deadlines and lifetime: "
              << (dominated ? "yes" : "NO") << '\n';
    return dominated ? 0 : 1;
}
