// Custom module libraries: the synthesis is generic over the FU library,
// so a vendor library can be swapped in -- either built in code or parsed
// from the text format.  This example extends Table 1 with a pipelined
// multiplier and a low-power ALU, then shows how the tool's module-mix
// choice changes on the AR lattice filter.
#include <iostream>
#include <map>

#include "cdfg/benchmarks.h"
#include "flow/flow.h"
#include "library/library.h"
#include "support/strings.h"
#include "support/table.h"

int main()
{
    using namespace phls;
    const graph g = make_ar_lattice();

    // The paper's library, written in the text exchange format.
    const std::string custom_text = R"(library extended
# Table 1 modules
module add      add              area  87 cycles 1 power 2.5
module sub      sub              area  87 cycles 1 power 2.5
module comp     comp             area   8 cycles 1 power 2.5
module ALU      add sub comp     area  97 cycles 1 power 2.5
module mult_ser mult             area 103 cycles 4 power 2.7
module mult_par mult             area 339 cycles 2 power 8.1
module input    input            area  16 cycles 1 power 0.2
module output   output           area  16 cycles 1 power 1.7
# vendor extensions
module mult_mid mult             area 180 cycles 3 power 4.0
module lp_alu   add sub comp     area 120 cycles 2 power 1.1
)";
    const module_library extended = parse_library_string(custom_text);
    const module_library baseline = table1_library();

    std::cout << "=== AR lattice filter (16 mult, 12 add), T=34 ===\n\n";
    ascii_table t({"library", "Pmax", "feasible", "area", "peak", "module mix"});
    t.set_align(0, align::left);
    t.set_align(5, align::left);
    for (const auto& [name, lib] : {std::pair<const char*, const module_library*>{
                                        "table1", &baseline},
                                    {"extended", &extended}}) {
        for (double cap : {8.0, 12.0, 18.0}) {
            const flow_report r =
                flow::on(g).with_library(*lib).latency(34).power_cap(cap).run();
            if (!r.st.ok()) {
                t.add_row({name, strf("%.1f", cap), "no", "-", "-",
                           r.st.message.substr(0, 40)});
                continue;
            }
            std::map<std::string, int> mix;
            for (const fu_instance& inst : r.dp.instances)
                ++mix[lib->module(inst.module).name];
            std::string mix_text;
            for (const auto& [mod, count] : mix)
                mix_text += strf("%s%s x%d", mix_text.empty() ? "" : ", ", mod.c_str(), count);
            t.add_row({name, strf("%.1f", cap), "yes", strf("%.0f", r.area),
                       strf("%.2f", r.peak), mix_text});
        }
    }
    t.print(std::cout);
    std::cout << "\nThe 3-cycle mid multiplier and the slow low-power ALU give the\n"
                 "synthesiser intermediate speed/power points to exploit under caps\n"
                 "where Table 1 had to jump between extremes.\n";
    return 0;
}
