// Quickstart: build a CDFG, pick the paper's FU library, run the flow
// engine under a latency and a power constraint, inspect the result.
//
//   $ ./examples/quickstart
//
// The CDFG here is the HAL differential-equation benchmark, built through
// the graph_builder API exactly as a user would encode their own kernel
// (make_hal() in the library does the same thing).
#include <iostream>

#include "cdfg/builder.h"
#include "flow/flow.h"
#include "library/library.h"
#include "synth/verify.h"

int main()
{
    using namespace phls;

    // 1. Describe the computation: one Euler step of y'' + 3xy' + 3y = 0.
    graph_builder b("diffeq");
    const node_id x = b.input("x");
    const node_id dx = b.input("dx");
    const node_id u = b.input("u");
    const node_id y = b.input("y");
    const node_id a = b.input("a");
    const node_id t1 = b.mul("3x", x);        // 3*x   (constant folded into the op)
    const node_id t2 = b.mul("u_dx", u, dx);  // u*dx
    const node_id t3 = b.mul("3y", y);        // 3*y
    const node_id t4 = b.mul("t4", t1, t2);   // 3x*u*dx
    const node_id t5 = b.mul("t5", t3, dx);   // 3y*dx
    const node_id t6 = b.mul("u_dx2", u, dx); // u*dx again (no CSE in the benchmark)
    const node_id s1 = b.sub("s1", u, t4);
    const node_id ul = b.sub("ul", s1, t5);
    const node_id xl = b.add("xl", x, dx);
    const node_id yl = b.add("yl", y, t6);
    const node_id c = b.cmp("c", xl, a);
    b.output("xl_out", xl);
    b.output("ul_out", ul);
    b.output("yl_out", yl);
    b.output("c_out", c);
    const graph g = b.build(); // validates the CDFG

    // 2. Pick a module library: the paper's Table 1.
    const module_library lib = table1_library();

    // 3. Synthesise through the flow engine: minimise area subject to 17
    //    cycles and at most 7 power units in any clock cycle.  Every
    //    outcome -- success, infeasible constraints, bad input -- comes
    //    back as a phls::status inside the report; nothing throws.
    const flow_report result = flow::on(g).with_library(lib).latency(17).power_cap(7.0).run();
    if (!result.st.ok()) {
        std::cerr << result.st.to_string() << '\n';
        return 1;
    }

    // 4. Inspect the datapath: instances, binding, schedule, area.
    std::cout << result.dp.report(g, lib);

    // 5. Results are verified internally; you can re-check any time.
    const auto violations =
        verify_datapath(g, lib, result.dp, result.constraints, synthesis_options{}.costs);
    std::cout << "\nindependent verification: "
              << (violations.empty() ? "clean" : "VIOLATIONS") << '\n';

    // 6. The per-cycle power profile shows the cap is honoured.
    std::cout << "\nper-cycle power (cap 7.0):\n"
              << result.dp.sched.profile(lib).ascii_chart(7.0);
    return violations.empty() ? 0 : 1;
}
