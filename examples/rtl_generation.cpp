// RTL generation: from constraints to a structural netlist.
//
// Synthesises the elliptic wave filter under (T=22, Pmax=12), then emits
// the downstream artefacts: a datapath netlist listing (FUs, shared
// registers, mux connections), a structural Verilog skeleton, and a
// Graphviz DOT of the scheduled/bound CDFG.  Files are written to the
// current directory.
#include <fstream>
#include <iostream>

#include "cdfg/benchmarks.h"
#include "cdfg/dot.h"
#include "rtl/netlist.h"
#include "support/strings.h"
#include "synth/synthesizer.h"

int main()
{
    using namespace phls;
    const graph g = make_elliptic();
    const module_library lib = table1_library();

    const synthesis_result r = synthesize(g, lib, {22, 12.0});
    if (!r.feasible) {
        std::cerr << "infeasible: " << r.reason << '\n';
        return 1;
    }
    std::cout << r.dp.report(g, lib) << '\n';

    const netlist nl =
        build_netlist(r.dp.name, g, lib, r.dp.sched, r.dp.instance_of, r.dp.instance_modules());

    std::cout << "=== netlist ===\n" << netlist_to_text(nl, g, lib) << '\n';

    {
        std::ofstream vf("elliptic_datapath.v");
        vf << netlist_to_verilog(nl, g, lib);
    }
    {
        dot_options opts;
        opts.start_times = r.dp.sched.starts();
        for (node_id v : g.nodes())
            opts.clusters.push_back(strf("u%d", r.dp.instance_of[v.index()]));
        std::ofstream df("elliptic_schedule.dot");
        df << to_dot(g, opts);
    }
    std::cout << strf("registers: %zu shared across %d values; connections: %zu\n",
                      nl.registers.size(), g.node_count(),
                      nl.connections.size());
    std::cout << "wrote elliptic_datapath.v and elliptic_schedule.dot\n";
    return 0;
}
