// RTL generation: from constraints to a structural netlist.
//
// Synthesises the elliptic wave filter under (T=22, Pmax=12), then emits
// the downstream artefacts: a datapath netlist listing (FUs, shared
// registers, mux connections), a structural Verilog skeleton, and a
// Graphviz DOT of the scheduled/bound CDFG.  Files are written to the
// current directory.
#include <fstream>
#include <iostream>

#include "cdfg/benchmarks.h"
#include "cdfg/dot.h"
#include "flow/flow.h"
#include "support/strings.h"

int main()
{
    using namespace phls;
    const graph g = make_elliptic();
    const module_library lib = table1_library();

    // The netlist stage is part of the flow: emit_netlist() fills
    // flow_report::nl from the synthesised schedule and binding.
    const flow_report r =
        flow::on(g).with_library(lib).latency(22).power_cap(12.0).emit_netlist().run();
    if (!r.st.ok()) {
        std::cerr << r.st.to_string() << '\n';
        return 1;
    }
    std::cout << r.dp.report(g, lib) << '\n';

    const netlist& nl = r.nl;

    std::cout << "=== netlist ===\n" << netlist_to_text(nl, g, lib) << '\n';

    {
        std::ofstream vf("elliptic_datapath.v");
        vf << netlist_to_verilog(nl, g, lib);
    }
    {
        dot_options opts;
        opts.start_times = r.dp.sched.starts();
        for (node_id v : g.nodes())
            opts.clusters.push_back(strf("u%d", r.dp.instance_of[v.index()]));
        std::ofstream df("elliptic_schedule.dot");
        df << to_dot(g, opts);
    }
    std::cout << strf("registers: %zu shared across %d values; connections: %zu\n",
                      nl.registers.size(), g.node_count(),
                      nl.connections.size());
    std::cout << "wrote elliptic_datapath.v and elliptic_schedule.dot\n";
    return 0;
}
