// Design-space exploration: sweep the (T, Pmax) constraint plane for the
// cosine (8-point DCT) benchmark and print an area map plus the Pareto
// front at one latency.  This is how a system designer would pick the
// constraint point before committing to a datapath.
//
// The whole 7x10 constraint plane is evaluated in ONE flow::run_batch
// call: the engine spreads the points over a worker pool and returns
// them in input order, so the map below fills multicore machines for
// free while staying bit-identical to a sequential run.  One
// explore_cache is shared across the plane AND the later Pareto sweep,
// so the (graph, lib) invariants -- reachability, prospect tables,
// initial windows -- are computed once for the whole program, and the
// Pareto sweep streams per-point progress as workers finish.
#include <iostream>
#include <vector>

#include "cdfg/benchmarks.h"
#include "flow/explore_cache.h"
#include "flow/flow.h"
#include "flow/pareto_stream.h"
#include "support/strings.h"
#include "support/table.h"
#include "synth/explore.h"

int main()
{
    using namespace phls;
    const graph g = make_cosine();
    const module_library lib = table1_library();

    // Latency axis: from the all-parallel critical path (12) upwards.
    const std::vector<int> latencies = {12, 13, 15, 17, 19, 22, 26};
    // Power axis: shared grid so columns align across rows.
    const std::vector<double> caps = {8, 12, 16, 20, 26, 32, 40, 50, 65, 80};

    // One batch over the full plane, on one shared cache.
    const std::shared_ptr<explore_cache> cache =
        flow::on(g).with_library(lib).build_cache();
    const flow f = flow::on(g).with_library(lib).reuse(cache);
    std::vector<synthesis_constraints> plane;
    for (int T : latencies)
        for (double c : caps) plane.push_back({T, c});
    const std::vector<flow_report> reports = f.run_batch(plane);

    std::cout << "=== cosine: area as a function of (T, Pmax) ===\n\n";
    std::vector<std::string> headers = {"T \\ Pmax"};
    for (double c : caps) headers.push_back(strf("%.0f", c));
    ascii_table t(std::move(headers));
    for (std::size_t row = 0; row < latencies.size(); ++row) {
        std::vector<sweep_point> raw;
        for (std::size_t col = 0; col < caps.size(); ++col)
            raw.push_back(to_sweep_point(reports[row * caps.size() + col]));
        const std::vector<sweep_point> env = monotone_envelope(raw);
        std::vector<std::string> cells = {strf("T=%d", latencies[row])};
        for (const sweep_point& p : env)
            cells.push_back(p.feasible ? strf("%.0f", p.area) : ".");
        t.add_row(std::move(cells));
    }
    t.print(std::cout);
    std::cout << "('.' = infeasible: no schedule fits both constraints)\n";

    // Pareto front at T=15: the designs worth considering.  The same
    // cache keeps serving this second exploration (the 2-D plane above
    // already filled its window and report memos), and the Pareto
    // channel folds each report into the incremental front the moment
    // its worker finishes -- the stderr trace shows the front growing
    // while the sweep is still running.
    const int T = 15;
    const flow at15 = flow::on(g).with_library(lib).latency(T).reuse(cache);
    std::vector<synthesis_constraints> grid;
    for (double cap : at15.power_grid(24)) grid.push_back({T, cap});
    std::size_t done = 0;
    std::vector<front_point> front;
    const std::vector<flow_report> pareto_reports = at15.run_batch_pareto(
        grid, [&](std::size_t, const flow_report& r, const pareto_stream& stream,
                  bool changed) {
            std::cerr << strf("pareto sweep %zu/%zu: Pmax=%.2f %s (front: %zu%s)\n",
                              ++done, grid.size(), r.constraints.max_power,
                              r.st.ok() ? "ok" : "infeasible",
                              stream.front().size(), changed ? ", updated" : "");
            front = stream.front(); // snapshot; complete after the last point
        });
    std::cout << "\n=== Pareto front at T=" << T << " (peak power vs area) ===\n\n";
    ascii_table pf({"peak power", "area", "synthesised at cap"});
    for (const front_point& p : front)
        pf.add_row({strf("%.2f", p.peak), strf("%.0f", p.area), strf("%.2f", p.cap)});
    pf.print(std::cout);

    std::cout << "\nReading guide: moving up-left on the front trades peak power for\n"
                 "area; everything off the front is dominated.\n";
    const explore_cache::counters c = cache->stats();
    std::cout << strf("\nexplore_cache: %ld hits, %ld misses across %zu points\n"
                      "  committed windows: %ld hits, %ld misses; report memo: %ld "
                      "hits, %ld misses\n",
                      c.hits, c.misses, plane.size() + grid.size(), c.committed_hits,
                      c.committed_misses, c.report_hits, c.report_misses);
    return 0;
}
