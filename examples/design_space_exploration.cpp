// Design-space exploration: sweep the (T, Pmax) constraint plane for the
// cosine (8-point DCT) benchmark and print an area map plus the Pareto
// front at one latency.  This is how a system designer would pick the
// constraint point before committing to a datapath.
//
// The exploration runs as a dse::session: the 7x10 constraint plane is a
// declarative dse::cross space (lazy — the session walks it in chunks,
// nothing is materialised eagerly), one bounded two-level explore_cache
// owns every memo across BOTH explorations, and the Pareto channel
// streams *front deltas* (the designs entering and leaving the front)
// the moment each worker finishes.  The final summary carries the front
// and the per-level cache counters.
#include <iostream>
#include <vector>

#include "cdfg/benchmarks.h"
#include "dse/session.h"
#include "flow/explore_cache.h"
#include "flow/flow.h"
#include "support/strings.h"
#include "support/table.h"
#include "synth/explore.h"

int main()
{
    using namespace phls;
    const graph g = make_cosine();
    const module_library lib = table1_library();

    // Latency axis: from the all-parallel critical path (12) upwards.
    const std::vector<int> latencies = {12, 13, 15, 17, 19, 22, 26};
    // Power axis: shared grid so columns align across rows.
    const std::vector<double> caps = {8, 12, 16, 20, 26, 32, 40, 50, 65, 80};

    // One session owns the cache for the whole program.
    dse::session session(flow::on(g).with_library(lib));

    // Exploration 1: the full plane, delivered through the result
    // channel into an index-addressed map (indices are row-major lattice
    // positions, whatever order the workers finish in).
    const dse::space plane = dse::cross(latencies, caps);
    std::vector<sweep_point> cells(plane.size());
    dse::sink plane_sink;
    plane_sink.on_result = [&](std::size_t index, const flow_report& r) {
        cells[index] = to_sweep_point(r);
    };
    session.explore(plane, plane_sink);

    std::cout << "=== cosine: area as a function of (T, Pmax) ===\n\n";
    std::vector<std::string> headers = {"T \\ Pmax"};
    for (double c : caps) headers.push_back(strf("%.0f", c));
    ascii_table t(std::move(headers));
    for (std::size_t row = 0; row < latencies.size(); ++row) {
        const std::vector<sweep_point> raw(cells.begin() + row * caps.size(),
                                           cells.begin() + (row + 1) * caps.size());
        const std::vector<sweep_point> env = monotone_envelope(raw);
        std::vector<std::string> cells_text = {strf("T=%d", latencies[row])};
        for (const sweep_point& p : env)
            cells_text.push_back(p.feasible ? strf("%.0f", p.area) : ".");
        t.add_row(std::move(cells_text));
    }
    t.print(std::cout);
    std::cout << "('.' = infeasible: no schedule fits both constraints)\n";

    // Exploration 2: the Pareto front at T=15 on a finer cap grid.  The
    // same session cache keeps serving (the plane above already filled
    // its window and report memos), and the front channel delivers only
    // the *changes* — watch designs displace each other on stderr while
    // the sweep runs.
    const int T = 15;
    const flow at15 =
        flow::on(g).with_library(lib).latency(T).reuse(session.cache());
    const dse::space grid15 = dse::cross({T}, at15.power_grid(24));
    dse::sink front_sink;
    front_sink.on_front = [&](const front_delta& d) {
        for (const front_point& p : d.entered)
            std::cerr << strf("front + peak %.2f area %.0f (cap %.2f)\n", p.peak,
                              p.area, p.cap);
        for (const front_point& p : d.left)
            std::cerr << strf("front - peak %.2f area %.0f (displaced)\n", p.peak,
                              p.area);
    };
    const dse::explore_summary sum = session.explore(grid15, front_sink);

    std::cout << "\n=== Pareto front at T=" << T << " (peak power vs area) ===\n\n";
    ascii_table pf({"peak power", "area", "synthesised at cap"});
    for (const front_point& p : sum.front)
        pf.add_row({strf("%.2f", p.peak), strf("%.0f", p.area), strf("%.2f", p.cap)});
    pf.print(std::cout);

    std::cout << "\nReading guide: moving up-left on the front trades peak power for\n"
                 "area; everything off the front is dominated.\n";
    const explore_cache::counters c = session.cache()->stats();
    std::cout << strf("\nexplore_cache: %ld hits, %ld misses across %zu points\n"
                      "  committed windows: %ld hits, %ld misses; report memo: %ld "
                      "hits, %ld misses\n",
                      c.hits, c.misses, plane.size() + grid15.size(), c.committed_hits,
                      c.committed_misses, c.report_hits, c.report_misses);
    return 0;
}
