// Battery-aware design: the end-to-end story of the paper.
//
// An engineer has a DSP kernel (the 5th-order elliptic wave filter), a
// 22-cycle deadline, and a cheap battery.  This example synthesises a
// conventional speed-first design and a power-capped design, then asks
// the battery substrate how long each survives on progressively worse
// cells.  Run it to see why the cap is worth a little area.
#include <iostream>

#include "battery/lifetime.h"
#include "cdfg/benchmarks.h"
#include "flow/flow.h"
#include "support/strings.h"
#include "support/table.h"

int main()
{
    using namespace phls;
    const graph g = make_elliptic();
    const module_library lib = table1_library();
    const int deadline = 22;

    // Conventional flow: fastest modules, no power awareness.
    synthesis_options speed_first;
    speed_first.try_both_prospects = false;
    speed_first.policy = prospect_policy::fastest_fit;
    const flow_report fast =
        flow::on(g).with_library(lib).latency(deadline).options(speed_first).run();
    if (!fast.st.ok()) {
        std::cerr << "speed-first synthesis failed: " << fast.st.to_string() << '\n';
        return 1;
    }

    // Battery-aware flow: cap the per-cycle power at 40 % of the
    // conventional design's peak.
    const double cap = 0.4 * fast.peak;
    const flow_report aware =
        flow::on(g).with_library(lib).latency(deadline).power_cap(cap).run();
    if (!aware.st.ok()) {
        std::cerr << "capped synthesis failed: " << aware.st.to_string() << '\n';
        return 1;
    }

    std::cout << strf("conventional: area %.0f, peak %.2f, latency %d\n", fast.area,
                      fast.peak, fast.latency);
    std::cout << strf("battery-aware (Pmax=%.2f): area %.0f, peak %.2f, latency %d\n\n", cap,
                      aware.area, aware.peak, aware.latency);

    // Run both kernels periodically at the task timescale (0.5 s steps)
    // against diffusion cells of decreasing quality.
    const double dt = 0.5;
    const load_profile spiky = to_load(fast.dp.sched.profile(lib), 1.0, dt);
    const load_profile flat = to_load(aware.dp.sched.profile(lib), 1.0, dt);
    const double alpha = fast.dp.sched.profile(lib).energy() * dt * 100.0;

    ascii_table t({"cell", "conventional (s)", "battery-aware (s)", "gain"});
    t.set_align(0, align::left);
    const auto ideal = make_ideal_battery(alpha);
    const double iu = ideal->lifetime(spiky).seconds;
    const double ic = ideal->lifetime(flat).seconds;
    t.add_row({"ideal (energy only)", strf("%.0f", iu), strf("%.0f", ic),
               strf("%+.1f%%", 100.0 * (ic - iu) / iu)});
    for (double beta : {1.0, 0.3, 0.1}) {
        const auto cell = make_rakhmatov_battery(alpha, beta);
        const double su = cell->lifetime(spiky).seconds;
        const double sc = cell->lifetime(flat).seconds;
        t.add_row({strf("diffusion beta=%.1f", beta), strf("%.0f", su), strf("%.0f", sc),
                   strf("%+.1f%%", 100.0 * (sc - su) / su)});
    }
    t.print(std::cout);

    std::cout << strf("\narea cost of the cap: %+.0f (%.1f%%); lifetime gain grows as the "
                      "cell gets worse.\n",
                      aware.dp.area.total() - fast.dp.area.total(),
                      100.0 * (aware.dp.area.total() - fast.dp.area.total()) /
                          fast.dp.area.total());
    return 0;
}
