// Tests for the power-aware time-extended compatibility graph (V1):
// candidate enumeration, saving estimates, dependency ordering, power
// filtering and the best-candidate selection rule.
#include <gtest/gtest.h>

#include "cdfg/benchmarks.h"
#include "cdfg/builder.h"
#include "sched/mobility.h"
#include "synth/compat.h"
#include "synth/prospect.h"

namespace phls {
namespace {

const module_library& lib()
{
    static const module_library l = table1_library();
    return l;
}

// Owns all the state compat_inputs points to.
struct harness {
    graph g;
    module_assignment assignment;
    cost_model costs;
    reachability reach;
    time_windows windows;
    std::vector<int> fixed;
    std::vector<char> committed;
    std::vector<fu_instance> instances;
    power_tracker committed_power;
    double cap;

    harness(graph graph_in, double cap_in, int latency)
        : g(std::move(graph_in)), reach(g), committed_power(cap_in), cap(cap_in)
    {
        const prospect_result p =
            make_prospect(g, lib(), prospect_policy::fastest_fit, cap);
        assignment = p.assignment;
        windows = power_windows(g, lib(), assignment, cap, latency);
        fixed.assign(static_cast<std::size_t>(g.node_count()), -1);
        committed.assign(static_cast<std::size_t>(g.node_count()), 0);
    }

    compat_inputs inputs()
    {
        compat_inputs in;
        in.g = &g;
        in.lib = &lib();
        in.costs = &costs;
        in.reach = &reach;
        in.max_power = cap;
        in.windows = &windows;
        in.fixed = &fixed;
        in.committed = &committed;
        in.instances = &instances;
        in.committed_power = &committed_power;
        in.assignment = &assignment;
        return in;
    }
};

TEST(compat, mux_penalty_by_port_count)
{
    cost_model cm;
    EXPECT_DOUBLE_EQ(mux_penalty(lib().module(*lib().find("ALU")), cm),
                     2 * cm.mux_area_per_extra_input);
    EXPECT_DOUBLE_EQ(mux_penalty(lib().module(*lib().find("output")), cm),
                     cm.mux_area_per_extra_input);
    EXPECT_DOUBLE_EQ(mux_penalty(lib().module(*lib().find("input")), cm), 0.0);
    cm.include_interconnect = false;
    EXPECT_DOUBLE_EQ(mux_penalty(lib().module(*lib().find("ALU")), cm), 0.0);
}

TEST(compat, standalone_area_accounts_for_time_feasibility)
{
    // hal at T=8 (the exact all-parallel critical path): critical
    // multiplies have zero mobility, so the 4-cycle serial multiplier
    // cannot stand in and the realistic standalone cost is the parallel
    // multiplier's area.
    harness h(make_hal(), unbounded_power, 8);
    ASSERT_TRUE(h.windows.feasible);
    const compat_inputs in = h.inputs();
    const node_id m2 = *h.g.find("m2"); // on the critical chain
    EXPECT_DOUBLE_EQ(standalone_area(in, m2), 339.0);

    // At T=17 every multiply has enough slack: serial qualifies.
    harness loose(make_hal(), unbounded_power, 17);
    const compat_inputs in2 = loose.inputs();
    EXPECT_DOUBLE_EQ(standalone_area(in2, *loose.g.find("m2")), 103.0);
}

TEST(compat, enumerates_pairs_with_common_modules_only)
{
    harness h(make_hal(), unbounded_power, 17);
    ASSERT_TRUE(h.windows.feasible);
    const std::vector<merge_candidate> cands = enumerate_candidates(h.inputs());
    EXPECT_FALSE(cands.empty());
    for (const merge_candidate& c : cands) {
        ASSERT_EQ(c.type, merge_candidate::merge_type::pair); // no instances yet
        const fu_module& m = lib().module(c.module);
        EXPECT_TRUE(m.supports(h.g.kind(c.a)));
        EXPECT_TRUE(m.supports(h.g.kind(c.b)));
        EXPECT_LE(m.power, unbounded_power);
        // Committed times are sequential on the shared unit.
        EXPECT_GE(c.t_b, c.t_a + m.latency);
    }
}

TEST(compat, respects_dependency_order_in_pair_times)
{
    harness h(make_hal(), unbounded_power, 17);
    const std::vector<merge_candidate> cands = enumerate_candidates(h.inputs());
    const reachability& reach = h.reach;
    for (const merge_candidate& c : cands) {
        if (reach.reaches(c.b, c.a))
            FAIL() << "pair ordered against a dependency: " << c.key();
    }
}

TEST(compat, power_cap_excludes_parallel_multiplier_pairs)
{
    harness h(make_hal(), 6.0, 20); // cap below 8.1
    ASSERT_TRUE(h.windows.feasible) << h.windows.reason;
    for (const merge_candidate& c : enumerate_candidates(h.inputs()))
        EXPECT_NE(lib().module(c.module).name, "mult_par") << c.key();
}

TEST(compat, add_pairs_prefer_the_adder_over_the_alu)
{
    // Two independent adds: sharing one adder saves 87 - mux; sharing an
    // ALU saves 87+87-97-mux.  Both appear; adder saving is higher.
    graph_builder b("adds");
    const node_id x = b.input("x");
    const node_id y = b.input("y");
    b.output("o1", b.add("a1", x, y));
    b.output("o2", b.add("a2", x, y));
    harness h(b.build(), unbounded_power, 8);
    double adder_saving = -1, alu_saving = -1;
    for (const merge_candidate& c : enumerate_candidates(h.inputs())) {
        if (h.g.kind(c.a) != op_kind::add || h.g.kind(c.b) != op_kind::add) continue;
        if (lib().module(c.module).name == "add") adder_saving = c.saving;
        if (lib().module(c.module).name == "ALU") alu_saving = c.saving;
    }
    ASSERT_GT(adder_saving, 0.0);
    ASSERT_GT(alu_saving, 0.0);
    EXPECT_GT(adder_saving, alu_saving);
    EXPECT_DOUBLE_EQ(adder_saving, 87.0 - 2 * cost_model{}.mux_area_per_extra_input);
}

TEST(compat, join_candidates_target_existing_instances)
{
    harness h(make_hal(), unbounded_power, 17);
    // Commit m1 and m3 on a shared serial multiplier by hand.
    fu_instance inst;
    inst.index = 0;
    inst.module = *lib().find("mult_ser");
    const node_id m1 = *h.g.find("m1");
    const node_id m3 = *h.g.find("m3");
    inst.ops = {m1, m3};
    h.instances.push_back(inst);
    h.fixed[m1.index()] = 1;
    h.fixed[m3.index()] = 5;
    h.committed[m1.index()] = 1;
    h.committed[m3.index()] = 1;
    h.committed_power.reserve(1, 4, 2.7);
    h.committed_power.reserve(5, 4, 2.7);
    h.assignment[m1.index()] = inst.module;
    h.assignment[m3.index()] = inst.module;
    // Refresh windows around the commitments.
    pasap_options opts;
    opts.fixed_starts = h.fixed;
    h.windows = power_windows(h.g, lib(), h.assignment, h.cap, 17, opts);
    ASSERT_TRUE(h.windows.feasible) << h.windows.reason;

    bool saw_join = false;
    for (const merge_candidate& c : enumerate_candidates(h.inputs())) {
        if (c.type != merge_candidate::merge_type::join) continue;
        saw_join = true;
        EXPECT_EQ(c.instance, 0);
        EXPECT_EQ(h.g.kind(c.a), op_kind::mult);
        // The slot avoids the committed executions [1,5) and [5,9).
        EXPECT_TRUE(c.t_a + 4 <= 1 || c.t_a >= 9) << c.t_a;
    }
    EXPECT_TRUE(saw_join);
}

TEST(compat, best_candidate_prefers_saving_then_joins)
{
    std::vector<merge_candidate> cands(3);
    cands[0].type = merge_candidate::merge_type::pair;
    cands[0].a = node_id(1);
    cands[0].saving = 50;
    cands[1].type = merge_candidate::merge_type::join;
    cands[1].a = node_id(2);
    cands[1].saving = 80;
    cands[2].type = merge_candidate::merge_type::pair;
    cands[2].a = node_id(0);
    cands[2].saving = 80;
    EXPECT_EQ(best_candidate(cands), 1); // highest saving, join wins ties
    EXPECT_EQ(best_candidate({}), -1);
}

TEST(compat, candidate_keys_are_stable_identities)
{
    merge_candidate a;
    a.type = merge_candidate::merge_type::pair;
    a.a = node_id(1);
    a.b = node_id(2);
    a.module = module_id(4);
    merge_candidate b = a;
    EXPECT_EQ(a.key(), b.key());
    b.module = module_id(5);
    EXPECT_NE(a.key(), b.key());
    merge_candidate j;
    j.type = merge_candidate::merge_type::join;
    j.a = node_id(1);
    j.instance = 0;
    j.module = module_id(4);
    EXPECT_NE(j.key(), a.key());
}

} // namespace
} // namespace phls
