// Tests for the incremental Pareto front (flow/pareto_stream.h) and the
// flow::run_batch_pareto progress channel: the streamed front must equal
// the post-hoc front whatever the completion order, and must agree with
// the legacy 2-D post-processing helpers on lifetime-free sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cdfg/benchmarks.h"
#include "flow/flow.h"
#include "flow/pareto_stream.h"
#include "synth/explore.h"

namespace phls {
namespace {

const module_library& lib()
{
    static const module_library l = table1_library();
    return l;
}

flow_report fake_report(std::size_t, double peak, double area, double cap,
                        bool feasible = true, double lifetime = -1.0)
{
    flow_report r;
    r.constraints = {17, cap};
    if (feasible) {
        r.st = status::success();
        r.has_design = true;
        r.peak = peak;
        r.area = area;
        r.latency = 17;
    } else {
        r.st = status::infeasible("fake");
    }
    if (lifetime >= 0.0) {
        r.has_lifetime = true;
        r.lifetime_seconds = lifetime;
    }
    return r;
}

std::vector<flow_report> hal_sweep(int points)
{
    const flow f = flow::on(make_hal()).with_library(lib()).latency(17);
    std::vector<synthesis_constraints> grid;
    for (double cap : f.power_grid(points)) grid.push_back({17, cap});
    return f.run_batch(grid, 1);
}

// -------------------------------------------------------------- dominance

TEST(pareto_stream, dominance_is_componentwise_with_index_tiebreak)
{
    const front_point a{0, 17, 9.0, 100.0, 5.0, 17, false, 0.0};
    const front_point better_area{1, 17, 9.0, 90.0, 5.0, 17, false, 0.0};
    const front_point better_peak{2, 17, 9.0, 100.0, 4.0, 17, false, 0.0};
    const front_point trade_off{3, 17, 9.0, 90.0, 6.0, 17, false, 0.0};
    const front_point duplicate{4, 17, 12.0, 100.0, 5.0, 17, false, 0.0};

    EXPECT_TRUE(front_dominates(better_area, a));
    EXPECT_FALSE(front_dominates(a, better_area));
    EXPECT_TRUE(front_dominates(better_peak, a));
    EXPECT_FALSE(front_dominates(trade_off, a)); // worse peak, better area
    EXPECT_FALSE(front_dominates(a, trade_off));
    // Exact objective tie: the lower input index wins, asymmetrically.
    EXPECT_TRUE(front_dominates(a, duplicate));
    EXPECT_FALSE(front_dominates(duplicate, a));
    EXPECT_FALSE(front_dominates(a, a));
}

TEST(pareto_stream, lifetime_is_a_third_objective_when_present)
{
    const front_point short_lived{0, 17, 9.0, 100.0, 5.0, 17, true, 40.0};
    const front_point long_lived{1, 17, 9.0, 100.0, 5.0, 17, true, 70.0};
    // Same peak/area: the longer-lived design dominates despite the
    // higher index...
    EXPECT_TRUE(front_dominates(long_lived, short_lived));
    EXPECT_FALSE(front_dominates(short_lived, long_lived));

    // ...and a lifetime advantage keeps an otherwise-dominated design on
    // the front.
    pareto_stream s;
    (void)s.add(0, fake_report(0, 5.0, 100.0, 9.0, true, 70.0));
    (void)s.add(1, fake_report(1, 5.0, 90.0, 9.0, true, 40.0)); // cheaper, dies sooner
    EXPECT_EQ(s.front().size(), 2u);

    pareto_stream flat; // without lifetime the cheaper one wins outright
    (void)flat.add(0, fake_report(0, 5.0, 100.0, 9.0));
    (void)flat.add(1, fake_report(1, 5.0, 90.0, 9.0));
    EXPECT_EQ(flat.front().size(), 1u);
    EXPECT_EQ(flat.front()[0].index, 1u);
}

// ------------------------------------------------- incremental == post-hoc

TEST(pareto_stream, incremental_front_is_completion_order_independent)
{
    const std::vector<flow_report> reports = hal_sweep(12);
    const std::vector<front_point> reference = pareto_points(reports);
    ASSERT_FALSE(reference.empty());

    std::vector<std::size_t> order(reports.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

    for (int permutation = 0; permutation < 4; ++permutation) {
        pareto_stream s;
        bool any_change = false;
        for (const std::size_t i : order) any_change |= s.add(i, reports[i]);
        EXPECT_TRUE(any_change);
        EXPECT_EQ(s.seen(), reports.size());
        ASSERT_EQ(s.front().size(), reference.size()) << "permutation " << permutation;
        for (std::size_t i = 0; i < reference.size(); ++i)
            EXPECT_TRUE(s.front()[i] == reference[i])
                << "permutation " << permutation << ", front point " << i;
        // reverse, then rotate for the next rounds: four distinct orders.
        if (permutation == 0) std::reverse(order.begin(), order.end());
        std::rotate(order.begin(), order.begin() + 3, order.end());
    }
}

TEST(pareto_stream, duplicate_points_keep_one_representative)
{
    const std::vector<flow_report> once = hal_sweep(8);
    const std::size_t n = once.size();
    std::vector<flow_report> reports = once;
    reports.insert(reports.end(), once.begin(), once.end());

    const std::vector<front_point> front = pareto_points(reports);
    pareto_stream s;
    for (std::size_t i = reports.size(); i-- > 0;) (void)s.add(i, reports[i]);
    ASSERT_EQ(s.front().size(), front.size());
    for (std::size_t i = 0; i < front.size(); ++i) {
        EXPECT_TRUE(s.front()[i] == front[i]) << i;
        EXPECT_LT(front[i].index, n) << "duplicate shadowed its original";
    }
}

// --------------------------------------- agreement with the legacy helpers

TEST(pareto_stream, matches_legacy_pareto_front_on_2d_sweeps)
{
    const std::vector<flow_report> reports = hal_sweep(16);
    std::vector<sweep_point> pts;
    for (const flow_report& r : reports) pts.push_back(to_sweep_point(r));
    const std::vector<sweep_point> legacy = pareto_front(pts);
    const std::vector<front_point> front = pareto_points(reports);

    ASSERT_EQ(front.size(), legacy.size());
    for (std::size_t i = 0; i < front.size(); ++i) {
        EXPECT_DOUBLE_EQ(front[i].peak, legacy[i].peak) << i;
        EXPECT_DOUBLE_EQ(front[i].area, legacy[i].area) << i;
        EXPECT_DOUBLE_EQ(front[i].cap, legacy[i].cap) << i;
    }
}

TEST(pareto_stream, best_under_matches_the_monotone_envelope)
{
    const std::vector<flow_report> reports = hal_sweep(16);
    std::vector<sweep_point> pts;
    for (const flow_report& r : reports) pts.push_back(to_sweep_point(r));
    const std::vector<sweep_point> envelope = monotone_envelope(pts);

    pareto_stream s;
    for (std::size_t i = 0; i < reports.size(); ++i) (void)s.add(i, reports[i]);
    for (std::size_t i = 0; i < pts.size(); ++i) {
        const front_point* best = s.best_under(pts[i].cap);
        ASSERT_EQ(best != nullptr, envelope[i].feasible) << "cap " << pts[i].cap;
        if (best == nullptr) continue;
        EXPECT_DOUBLE_EQ(best->area, envelope[i].area) << "cap " << pts[i].cap;
        EXPECT_DOUBLE_EQ(best->peak, envelope[i].peak) << "cap " << pts[i].cap;
    }
}

// -------------------------------------------------------- run_batch_pareto

TEST(run_batch_pareto, streams_the_front_and_matches_the_final_vector)
{
    const flow f = flow::on(make_cosine()).with_library(lib()).latency(15);
    std::vector<synthesis_constraints> grid;
    for (double cap : f.power_grid(10)) grid.push_back({15, cap});
    grid.push_back(grid[grid.size() / 2]); // one duplicate for good measure

    std::set<std::size_t> seen;
    std::vector<front_point> last_front;
    std::size_t changes = 0;
    const std::vector<flow_report> reports = f.run_batch_pareto(
        grid,
        [&](std::size_t i, const flow_report& r, const pareto_stream& front,
            bool changed) {
            EXPECT_TRUE(seen.insert(i).second) << "index " << i << " delivered twice";
            EXPECT_EQ(front.seen(), seen.size());
            EXPECT_DOUBLE_EQ(r.constraints.max_power, grid[i].max_power);
            if (changed)
                ++changes;
            else
                EXPECT_EQ(front.front().size(), last_front.size());
            last_front = front.front();
        },
        3);
    EXPECT_EQ(seen.size(), grid.size());
    EXPECT_GT(changes, 0u);

    // The front delivered with the last point is the post-hoc front of
    // the returned vector, and the vector itself is byte-identical to a
    // plain batch run.
    const std::vector<front_point> posthoc = pareto_points(reports);
    ASSERT_EQ(last_front.size(), posthoc.size());
    for (std::size_t i = 0; i < posthoc.size(); ++i)
        EXPECT_TRUE(last_front[i] == posthoc[i]) << i;
    const std::vector<flow_report> plain = f.run_batch(grid, 1);
    ASSERT_EQ(reports.size(), plain.size());
    for (std::size_t i = 0; i < reports.size(); ++i)
        EXPECT_EQ(reports[i].to_string(), plain[i].to_string()) << i;
}

TEST(run_batch_pareto, empty_callback_degrades_to_run_batch)
{
    const flow f = flow::on(make_hal()).with_library(lib()).latency(17);
    const std::vector<synthesis_constraints> grid = {{17, 9.0}, {17, 1.0}};
    const std::vector<flow_report> a = f.run_batch_pareto(grid, {}, 2);
    const std::vector<flow_report> b = f.run_batch(grid, 2);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].to_string(), b[i].to_string());
}

TEST(pareto_stream, add_reports_exact_deltas)
{
    pareto_stream s;
    front_delta d;

    // First feasible point enters, displacing nothing.
    EXPECT_TRUE(s.add(0, fake_report(0, 5.0, 100.0, 9.0), &d));
    EXPECT_TRUE(d.changed());
    ASSERT_EQ(d.entered.size(), 1u);
    EXPECT_EQ(d.entered[0].index, 0u);
    EXPECT_TRUE(d.left.empty());

    // A dominated point changes nothing and says so.
    EXPECT_FALSE(s.add(1, fake_report(1, 6.0, 110.0, 9.0), &d));
    EXPECT_FALSE(d.changed());
    EXPECT_EQ(d.index, 1u);
    EXPECT_TRUE(d.entered.empty() && d.left.empty());

    // An infeasible point likewise.
    EXPECT_FALSE(s.add(2, fake_report(2, 0.0, 0.0, 9.0, false), &d));
    EXPECT_FALSE(d.changed());

    // A trade-off point enters without displacing.
    EXPECT_TRUE(s.add(3, fake_report(3, 4.0, 120.0, 9.0), &d));
    ASSERT_EQ(d.entered.size(), 1u);
    EXPECT_TRUE(d.left.empty());
    EXPECT_EQ(s.front().size(), 2u);

    // A dominating point displaces both: the delta names exactly them.
    EXPECT_TRUE(s.add(4, fake_report(4, 4.0, 90.0, 9.0), &d));
    ASSERT_EQ(d.entered.size(), 1u);
    EXPECT_EQ(d.entered[0].index, 4u);
    ASSERT_EQ(d.left.size(), 2u);
    EXPECT_EQ(s.front().size(), 1u);

    EXPECT_EQ(s.front()[0].index, 4u);
    // (full delta-replay reconstruction is asserted in test_dse_session)
}

TEST(run_batch_pareto, lifetime_front_equals_posthoc_when_lifetime_streams)
{
    lifetime_spec cell;
    cell.beta = 0.15;
    const flow f =
        flow::on(make_hal()).with_library(lib()).latency(17).estimate_lifetime(cell);
    std::vector<synthesis_constraints> grid;
    for (double cap : f.power_grid(8)) grid.push_back({17, cap});

    std::vector<front_point> last_front;
    const std::vector<flow_report> reports = f.run_batch_pareto(
        grid,
        [&](std::size_t, const flow_report&, const pareto_stream& front, bool) {
            last_front = front.front();
        },
        2);
    const std::vector<front_point> posthoc = pareto_points(reports);
    ASSERT_EQ(last_front.size(), posthoc.size());
    for (std::size_t i = 0; i < posthoc.size(); ++i) {
        EXPECT_TRUE(last_front[i] == posthoc[i]) << i;
        EXPECT_TRUE(posthoc[i].has_lifetime) << i;
    }
}

} // namespace
} // namespace phls
