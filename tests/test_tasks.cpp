// Tests for the multi-task scheduling subsystem: the task-set text
// format, the candidate stage and its infeasibility taxonomy, the two
// packing policies, determinism across thread counts, session-pool
// reuse and the streaming sink.
#include <gtest/gtest.h>

#include <fstream>
#include <vector>

#include "cdfg/benchmarks.h"
#include "cdfg/textio.h"
#include "power/tracker.h"
#include "task/engine.h"

namespace phls::task {
namespace {

/// A scratch file path unique to the test, cleaned up by the caller.
std::string scratch(const char* name)
{
    return std::string(::testing::TempDir()) + name;
}

task_spec hal_task(const std::string& name, int deadline)
{
    task_spec t;
    t.name = name;
    t.g = make_hal();
    t.lib = table1_library();
    t.deadline = deadline;
    return t;
}

task_set small_set()
{
    task_set s;
    s.name = "small";
    s.envelope = 9.0;
    s.tasks.push_back(hal_task("rx", 60));
    s.tasks.push_back(hal_task("dsp", 200));
    s.tasks.back().release = 10;
    s.tasks.back().iterations = 2;
    return s;
}

// ------------------------------------------------------------ text I/O

TEST(taskset_io, parses_the_documented_format)
{
    const task_set s = parse_task_set_string(R"(# a comment
taskset radio
envelope 9.5
battery beta 0.2 cycle 0.25 idle 4 voltage 1.5 alpha 500

task rx  hal    deadline 60
task dsp cosine deadline 200 release 10 iterations 2 caps 8
task ctl hal    deadline 90  latency 10..17..3 synth greedy sched pasap
)");
    EXPECT_EQ(s.name, "radio");
    EXPECT_DOUBLE_EQ(s.envelope, 9.5);
    EXPECT_DOUBLE_EQ(s.battery.beta, 0.2);
    EXPECT_DOUBLE_EQ(s.battery.cycle_seconds, 0.25);
    EXPECT_DOUBLE_EQ(s.battery.voltage, 1.5);
    EXPECT_DOUBLE_EQ(s.battery.alpha, 500.0);
    EXPECT_EQ(s.battery.idle_cycles, 4);
    ASSERT_EQ(s.tasks.size(), 3u);
    EXPECT_EQ(s.tasks[0].name, "rx");
    EXPECT_EQ(s.tasks[0].g.name(), "hal");
    EXPECT_EQ(s.tasks[0].deadline, 60);
    EXPECT_EQ(s.tasks[0].iterations, 1);
    EXPECT_EQ(s.tasks[1].g.name(), "cosine");
    EXPECT_EQ(s.tasks[1].release, 10);
    EXPECT_EQ(s.tasks[1].iterations, 2);
    EXPECT_EQ(s.tasks[1].caps, 8);
    EXPECT_EQ(s.tasks[2].latencies, (std::vector<int>{10, 13, 16}));
}

TEST(taskset_io, envelope_defaults_to_unbounded)
{
    const task_set s = parse_task_set_string("taskset t\ntask a hal deadline 40\n");
    EXPECT_EQ(s.envelope, unbounded_power);
}

TEST(taskset_io, round_trips_through_the_writer)
{
    task_set s = small_set();
    s.tasks[1].latencies = {12, 15, 18};
    s.tasks[1].caps = 3;
    const std::string text = write_task_set_string(s);
    const task_set back = parse_task_set_string(text);
    EXPECT_EQ(write_task_set_string(back), text);
    EXPECT_EQ(back.tasks[1].latencies, s.tasks[1].latencies);
    EXPECT_EQ(back.tasks[1].caps, 3);
}

TEST(taskset_io, parse_errors_carry_line_numbers)
{
    try {
        parse_task_set_string("taskset t\nbogus directive\n");
        FAIL() << "expected parse_error";
    } catch (const parse_error& e) {
        EXPECT_EQ(e.line(), 2);
    }
    EXPECT_THROW(parse_task_set_string("task a hal deadline 40\n"), error);
    EXPECT_THROW(parse_task_set_string("taskset t\ntask a hal\n"), parse_error);
    EXPECT_THROW(parse_task_set_string("taskset t\ntask a hal deadline\n"),
                 parse_error);
    EXPECT_THROW(
        parse_task_set_string("taskset t\ntask a hal deadline 40 shiny yes\n"),
        parse_error);
    EXPECT_THROW(
        parse_task_set_string("taskset t\ntask a no_such_bench deadline 40\n"),
        parse_error);
    EXPECT_THROW(parse_task_set_string("taskset t\nbattery beta zero\n"),
                 parse_error);
}

TEST(taskset_io, validation_rejects_broken_sets)
{
    // Duplicate names.
    EXPECT_THROW(parse_task_set_string(
                     "taskset t\ntask a hal deadline 40\ntask a hal deadline 50\n"),
                 error);
    // Deadline not after release.
    EXPECT_THROW(
        parse_task_set_string("taskset t\ntask a hal deadline 10 release 10\n"),
        error);
    // No tasks at all.
    EXPECT_THROW(parse_task_set_string("taskset t\n"), error);
    // Programmatic validation: same checks without the parser.
    task_set s = small_set();
    s.tasks[0].iterations = 0;
    EXPECT_THROW(check_task_set(s), error);
    s = small_set();
    s.tasks[0].name = "two words";
    EXPECT_THROW(check_task_set(s), error);
    s = small_set();
    s.envelope = 0.0;
    EXPECT_THROW(check_task_set(s), error);
}

TEST(taskset_io, loads_cdfg_graphs_from_disk)
{
    const std::string path = scratch("taskset_graph.cdfg");
    {
        std::ofstream os(path);
        os << write_cdfg_string(make_hal());
    }
    task_set s = parse_task_set_string("taskset t\ntask a " + path +
                                       " deadline 40\n");
    EXPECT_EQ(s.tasks[0].g.node_count(), make_hal().node_count());
    // The file kept the benchmark name, so it still writes by name; a
    // graph whose name is no benchmark has no stable token to emit.
    EXPECT_NO_THROW(write_task_set_string(s));
    s.tasks[0].g.set_name("custom_kernel");
    EXPECT_THROW(write_task_set_string(s), error);
    std::remove(path.c_str());
}

// --------------------------------------------------------- candidates

TEST(candidates, derived_latency_axis_spans_cp_to_deadline_budget)
{
    task_spec t = hal_task("a", 60);
    const std::vector<int> axis = candidate_latencies(t);
    ASSERT_FALSE(axis.empty());
    EXPECT_EQ(axis.front(), 8); // hal's critical path, parallel multipliers
    EXPECT_EQ(axis.back(), 60);
    EXPECT_LE(axis.size(), 4u);

    t.iterations = 3; // budget per iteration shrinks to 20
    EXPECT_EQ(candidate_latencies(t).back(), 20);

    t.latencies = {11, 9, 11}; // explicit axis: sorted, deduplicated
    EXPECT_EQ(candidate_latencies(t), (std::vector<int>{9, 11}));
}

TEST(candidates, impossible_deadline_throws_deadline_unmeetable)
{
    const task_spec t = hal_task("tight", 5); // below the critical path
    try {
        candidate_latencies(t);
        FAIL() << "expected task_error";
    } catch (const task_error& e) {
        EXPECT_EQ(e.kind(), task_error_kind::deadline_unmeetable);
        EXPECT_EQ(e.task(), "tight");
        EXPECT_NE(std::string(e.what()).find("deadline_unmeetable"),
                  std::string::npos);
    }
}

TEST(candidates, caps_axis_respects_the_envelope)
{
    task_spec t = hal_task("a", 60);
    const std::vector<double> caps = candidate_caps(t, 9.0);
    ASSERT_FALSE(caps.empty());
    for (double c : caps) EXPECT_LE(c, 9.0);
    EXPECT_DOUBLE_EQ(caps.back(), 9.0); // envelope itself is explored

    t.caps = 1; // no probe: the envelope alone
    EXPECT_EQ(candidate_caps(t, 9.0), std::vector<double>{9.0});
    EXPECT_EQ(candidate_caps(t, unbounded_power),
              std::vector<double>{unbounded_power});
}

TEST(candidates, envelope_below_the_power_floor_throws_envelope_exceeded)
{
    task_set s;
    s.name = "t";
    s.envelope = 1.0; // below the multiplier's minimum power (2.7)
    s.tasks.push_back(hal_task("a", 200));
    serve::session_pool pool;
    try {
        explore_candidates(s, pool, 0, 1);
        FAIL() << "expected task_error";
    } catch (const task_error& e) {
        EXPECT_EQ(e.kind(), task_error_kind::envelope_exceeded);
        EXPECT_EQ(e.task(), "a");
    }
}

TEST(candidates, latency_too_small_everywhere_throws_no_feasible_impl)
{
    task_set s;
    s.name = "t";
    s.tasks.push_back(hal_task("a", 200));
    s.tasks[0].latencies = {5}; // below hal's critical path: nothing feasible
    serve::session_pool pool;
    try {
        explore_candidates(s, pool, 0, 1);
        FAIL() << "expected task_error";
    } catch (const task_error& e) {
        EXPECT_EQ(e.kind(), task_error_kind::no_feasible_impl);
    }
}

TEST(candidates, viable_impls_fit_envelope_and_deadline)
{
    const task_set s = small_set();
    serve::session_pool pool;
    const std::vector<task_candidates> cands = explore_candidates(s, pool, 0, 1);
    ASSERT_EQ(cands.size(), 2u);
    for (std::size_t i = 0; i < cands.size(); ++i) {
        const task_spec& t = s.tasks[i];
        ASSERT_FALSE(cands[i].viable.empty());
        int prev_latency = 0;
        for (const task_impl& impl : cands[i].viable) {
            EXPECT_LE(impl.peak, s.envelope + power_tracker::tolerance);
            EXPECT_LE(t.release + impl.latency * t.iterations, t.deadline);
            EXPECT_GE(impl.latency, prev_latency); // sorted fastest-first
            prev_latency = impl.latency;
        }
        const task_impl& flat = flattest_impl(cands[i]);
        for (const task_impl& impl : cands[i].viable)
            EXPECT_LE(flat.peak, impl.peak);
    }
}

TEST(candidates, duplicate_tasks_share_one_pooled_session)
{
    task_set s;
    s.name = "twins";
    s.envelope = 9.0;
    s.tasks.push_back(hal_task("a", 60));
    s.tasks.push_back(hal_task("b", 60)); // same problem, different name
    s.tasks.push_back(hal_task("c", 90)); // same problem, different space
    serve::session_pool pool;
    explore_candidates(s, pool, 0, 2);
    // The pool keys by the serve job encoding minus the space, so all
    // three hal tasks (deadlines only change the space) share a session.
    EXPECT_EQ(pool.sessions_created(), 1u);

    task_set mixed = s;
    mixed.tasks.push_back(hal_task("d", 60));
    mixed.tasks.back().g = make_fir16();
    serve::session_pool pool2;
    explore_candidates(mixed, pool2, 0, 2);
    EXPECT_EQ(pool2.sessions_created(), 2u); // one per distinct problem
}

// ------------------------------------------------------------- engine

TEST(engine, policy_registry_round_trips)
{
    EXPECT_EQ(policy_names(), (std::vector<std::string>{"edf", "battery"}));
    for (const std::string& name : policy_names()) {
        const policy p = policy_by_name(name);
        EXPECT_EQ(policy_name(p), name);
        EXPECT_NE(std::string(policy_description(p)), "");
    }
    EXPECT_THROW(policy_by_name("rate-monotonic"), error);
}

TEST(engine, edf_schedules_the_small_set)
{
    const task_schedule s = schedule(small_set(), policy::edf);
    EXPECT_EQ(s.policy, "edf");
    EXPECT_EQ(s.set_name, "small");
    ASSERT_EQ(s.tasks.size(), 2u);
    EXPECT_EQ(s.met, 2);
    for (const task_result& r : s.tasks) {
        EXPECT_TRUE(r.met);
        ASSERT_EQ(r.runs.size(), static_cast<std::size_t>(r.iterations));
        // Runs are contiguous (non-preemptive), in order, within the window.
        EXPECT_GE(r.runs.front().start, r.release);
        for (std::size_t i = 0; i < r.runs.size(); ++i) {
            EXPECT_EQ(r.runs[i].finish - r.runs[i].start, r.impl.latency);
            if (i > 0) {
                EXPECT_EQ(r.runs[i].start, r.runs[i - 1].finish);
            }
        }
        EXPECT_EQ(r.completion, r.runs.back().finish);
        EXPECT_EQ(r.slack, r.deadline - r.completion);
    }
    // The composed profile respects the envelope and drives the battery.
    EXPECT_LE(s.peak, s.envelope + power_tracker::tolerance);
    EXPECT_GT(s.energy, 0.0);
    EXPECT_GT(s.lifetime_seconds, 0.0);
    EXPECT_GT(s.battery_alpha, 0.0);
    EXPECT_EQ(s.profile.cycle_count(), s.makespan);
}

TEST(engine, battery_policy_dominates_edf_baseline)
{
    const task_set s = small_set();
    const task_schedule edf = schedule(s, policy::edf);
    const task_schedule bat = schedule(s, policy::battery);
    EXPECT_GE(bat.met, edf.met);
    EXPECT_GE(bat.lifetime_seconds, edf.lifetime_seconds);
    // Both policies are scored on the same derived battery capacity.
    EXPECT_DOUBLE_EQ(bat.battery_alpha, edf.battery_alpha);
}

TEST(engine, schedules_are_byte_identical_across_thread_counts)
{
    const task_set s = small_set();
    for (const policy p : {policy::edf, policy::battery}) {
        schedule_options o1;
        o1.threads = 1;
        const std::string base = schedule(s, p, o1).to_string();
        for (const int threads : {2, 8}) {
            schedule_options on;
            on.threads = threads;
            EXPECT_EQ(schedule(s, p, on).to_string(), base)
                << policy_name(p) << " with " << threads << " threads";
        }
    }
}

TEST(engine, sink_streams_winning_tasks_in_set_order)
{
    std::vector<std::string> seen;
    sink sk;
    sk.on_task = [&](const task_result& r) { seen.push_back(r.name); };
    const task_schedule s = schedule(small_set(), policy::battery, {}, sk);
    EXPECT_EQ(seen, (std::vector<std::string>{"rx", "dsp"}));
    EXPECT_EQ(s.tasks[0].name, "rx");
}

TEST(engine, reuses_a_caller_provided_pool_across_calls)
{
    serve::session_pool pool;
    const task_set s = small_set();
    const std::string first = schedule(s, policy::battery, pool).to_string();
    const std::size_t created = pool.sessions_created();
    EXPECT_GE(created, 1u);
    // A repeated schedule on the same pool warm-starts: no new sessions,
    // identical result.
    EXPECT_EQ(schedule(s, policy::battery, pool).to_string(), first);
    EXPECT_EQ(pool.sessions_created(), created);
}

TEST(engine, overloaded_envelope_reports_missed_deadlines)
{
    // Two identical tasks whose windows only fit one at a time: under
    // an 8.0 envelope hal's fastest viable implementation is T=16 at
    // peak 7.5, so two cannot overlap -- EDF serialises them and the
    // second finishes at cycle 32, past its deadline of 20.
    task_set s;
    s.name = "contended";
    s.envelope = 8.0;
    s.tasks.push_back(hal_task("a", 20));
    s.tasks.push_back(hal_task("b", 20));
    const task_schedule r = schedule(s, policy::edf);
    EXPECT_EQ(r.met, 1);
    EXPECT_EQ(r.tasks[0].met + r.tasks[1].met, 1);
    // The battery policy may never do worse on met deadlines.
    EXPECT_GE(schedule(s, policy::battery).met, 1);
}

TEST(engine, rejects_bad_options)
{
    schedule_options o;
    o.burst_fraction = 0.0;
    EXPECT_THROW(schedule(small_set(), policy::battery, o), error);
    o.burst_fraction = 1.5;
    EXPECT_THROW(schedule(small_set(), policy::battery, o), error);
}

TEST(engine, recovery_gaps_appear_on_bursty_sets_with_slack)
{
    // One task, many iterations, generous deadline, tight envelope: the
    // flattest implementation still peaks above half the envelope, so
    // the gap variant inserts recovery idle between iterations -- and
    // must only win if that does not cost lifetime or deadlines.
    task_set s;
    s.name = "bursty";
    s.envelope = 3.0;
    s.tasks.push_back(hal_task("burst", 400));
    s.tasks[0].iterations = 4;
    const task_schedule edf = schedule(s, policy::edf);
    const task_schedule bat = schedule(s, policy::battery);
    EXPECT_GE(bat.met, edf.met);
    EXPECT_GE(bat.lifetime_seconds, edf.lifetime_seconds);
    if (bat.preemption_gaps > 0) {
        // Gaps really show up as idle between consecutive runs.
        const task_result& r = bat.tasks[0];
        bool idle_between_runs = false;
        for (std::size_t i = 1; i < r.runs.size(); ++i)
            idle_between_runs |= r.runs[i].start > r.runs[i - 1].finish;
        EXPECT_TRUE(idle_between_runs);
    }
}

} // namespace
} // namespace phls::task
