// Unit tests for the CDFG substrate: op kinds, graph container, builder,
// structural validation.
#include <gtest/gtest.h>

#include "cdfg/builder.h"
#include "cdfg/graph.h"
#include "support/errors.h"

namespace phls {
namespace {

TEST(op_kind, names_and_symbols_match_the_paper)
{
    EXPECT_EQ(op_kind_symbol(op_kind::add), "+");
    EXPECT_EQ(op_kind_symbol(op_kind::sub), "-");
    EXPECT_EQ(op_kind_symbol(op_kind::mult), "*");
    EXPECT_EQ(op_kind_symbol(op_kind::comp), ">");
    EXPECT_EQ(op_kind_symbol(op_kind::input), "imp");
    EXPECT_EQ(op_kind_symbol(op_kind::output), "xpt");
    EXPECT_EQ(op_kind_name(op_kind::mult), "mult");
}

TEST(op_kind, parse_accepts_names_symbols_and_aliases)
{
    EXPECT_EQ(parse_op_kind("add"), op_kind::add);
    EXPECT_EQ(parse_op_kind("+"), op_kind::add);
    EXPECT_EQ(parse_op_kind("MULT"), op_kind::mult);
    EXPECT_EQ(parse_op_kind("mul"), op_kind::mult);
    EXPECT_EQ(parse_op_kind("imp"), op_kind::input);
    EXPECT_EQ(parse_op_kind(" xpt "), op_kind::output);
    EXPECT_EQ(parse_op_kind("cmp"), op_kind::comp);
    EXPECT_THROW(parse_op_kind("bogus"), error);
}

TEST(op_kind, classification_helpers)
{
    EXPECT_TRUE(is_io(op_kind::input));
    EXPECT_TRUE(is_io(op_kind::output));
    EXPECT_FALSE(is_io(op_kind::add));
    EXPECT_TRUE(is_binary(op_kind::mult));
    EXPECT_FALSE(is_binary(op_kind::output));
    EXPECT_EQ(all_op_kinds().size(), static_cast<std::size_t>(op_kind_count));
}

TEST(graph, nodes_and_edges_are_recorded)
{
    graph g("t");
    const node_id a = g.add_node(op_kind::input, "a");
    const node_id b = g.add_node(op_kind::add, "b");
    g.add_edge(a, b);
    EXPECT_EQ(g.node_count(), 2);
    EXPECT_EQ(g.edge_count(), 1);
    ASSERT_EQ(g.succs(a).size(), 1u);
    EXPECT_EQ(g.succs(a)[0], b);
    ASSERT_EQ(g.preds(b).size(), 1u);
    EXPECT_EQ(g.preds(b)[0], a);
    EXPECT_EQ(g.kind(b), op_kind::add);
    EXPECT_EQ(g.label(a), "a");
}

TEST(graph, duplicate_labels_rejected)
{
    graph g("t");
    g.add_node(op_kind::input, "a");
    EXPECT_THROW(g.add_node(op_kind::add, "a"), error);
}

TEST(graph, empty_label_rejected)
{
    graph g("t");
    EXPECT_THROW(g.add_node(op_kind::add, ""), error);
}

TEST(graph, self_loop_rejected)
{
    graph g("t");
    const node_id a = g.add_node(op_kind::add, "a");
    EXPECT_THROW(g.add_edge(a, a), error);
}

TEST(graph, parallel_edges_model_repeated_operands)
{
    // x * x: same producer on both ports.
    graph g("t");
    const node_id x = g.add_node(op_kind::input, "x");
    const node_id m = g.add_node(op_kind::mult, "m");
    g.add_edge(x, m);
    g.add_edge(x, m);
    EXPECT_EQ(g.preds(m).size(), 2u);
    EXPECT_EQ(g.edge_count(), 2);
}

TEST(graph, find_by_label)
{
    graph g("t");
    g.add_node(op_kind::input, "x");
    const node_id y = g.add_node(op_kind::input, "y");
    EXPECT_EQ(g.find("y"), y);
    EXPECT_FALSE(g.find("zz").has_value());
}

TEST(graph, kind_queries)
{
    graph g("t");
    g.add_node(op_kind::input, "a");
    g.add_node(op_kind::mult, "m1");
    g.add_node(op_kind::mult, "m2");
    EXPECT_EQ(g.count_of_kind(op_kind::mult), 2);
    EXPECT_EQ(g.count_of_kind(op_kind::output), 0);
    EXPECT_EQ(g.nodes_of_kind(op_kind::mult).size(), 2u);
}

TEST(graph, topo_order_is_deterministic_and_respects_edges)
{
    graph g("t");
    const node_id a = g.add_node(op_kind::input, "a");
    const node_id b = g.add_node(op_kind::add, "b");
    const node_id c = g.add_node(op_kind::add, "c");
    g.add_edge(a, b);
    g.add_edge(b, c);
    g.add_edge(a, c);
    const std::vector<node_id> order = g.topo_order();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], a);
    EXPECT_EQ(order[1], b);
    EXPECT_EQ(order[2], c);
    EXPECT_TRUE(g.is_acyclic());
}

TEST(graph, cycle_detected)
{
    graph g("t");
    const node_id a = g.add_node(op_kind::add, "a");
    const node_id b = g.add_node(op_kind::add, "b");
    g.add_edge(a, b);
    g.add_edge(b, a);
    EXPECT_FALSE(g.is_acyclic());
    EXPECT_THROW(g.topo_order(), error);
    EXPECT_THROW(g.validate(), error);
}

TEST(graph, validate_rejects_input_with_predecessor)
{
    graph g("t");
    const node_id a = g.add_node(op_kind::input, "a");
    const node_id i = g.add_node(op_kind::input, "i");
    g.add_edge(a, i);
    EXPECT_THROW(g.validate(), error);
}

TEST(graph, validate_rejects_output_without_exactly_one_pred)
{
    graph g("t");
    g.add_node(op_kind::output, "o");
    EXPECT_THROW(g.validate(), error);
}

TEST(graph, validate_rejects_output_with_successor)
{
    graph g("t");
    const node_id x = g.add_node(op_kind::input, "x");
    const node_id o = g.add_node(op_kind::output, "o");
    const node_id p = g.add_node(op_kind::add, "p");
    const node_id o2 = g.add_node(op_kind::output, "o2");
    g.add_edge(x, o);
    g.add_edge(o, p);
    g.add_edge(p, o2);
    EXPECT_THROW(g.validate(), error);
}

TEST(graph, validate_rejects_ternary_operation)
{
    graph g("t");
    const node_id a = g.add_node(op_kind::input, "a");
    const node_id b = g.add_node(op_kind::input, "b");
    const node_id c = g.add_node(op_kind::input, "c");
    const node_id s = g.add_node(op_kind::add, "s");
    const node_id o = g.add_node(op_kind::output, "o");
    g.add_edge(a, s);
    g.add_edge(b, s);
    g.add_edge(c, s);
    g.add_edge(s, o);
    EXPECT_THROW(g.validate(), error);
}

TEST(graph, validate_rejects_dead_operation)
{
    graph g("t");
    const node_id a = g.add_node(op_kind::input, "a");
    const node_id s = g.add_node(op_kind::add, "dead");
    g.add_edge(a, s); // result never consumed
    EXPECT_THROW(g.validate(), error);
}

TEST(graph, invalid_node_id_rejected)
{
    graph g("t");
    EXPECT_THROW(g.kind(node_id(0)), error);
    EXPECT_THROW(g.preds(node_id()), error);
}

TEST(builder, builds_a_valid_graph)
{
    graph_builder b("t");
    const node_id x = b.input("x");
    const node_id y = b.input("y");
    const node_id s = b.add("s", x, y);
    const node_id m = b.mul("m", s); // constant second operand
    b.output("o", m);
    const graph g = b.build();
    EXPECT_EQ(g.node_count(), 5);
    EXPECT_EQ(g.name(), "t");
    EXPECT_NO_THROW(g.validate());
}

TEST(builder, all_arithmetic_kinds)
{
    graph_builder b("t");
    const node_id x = b.input("x");
    const node_id y = b.input("y");
    b.output("o1", b.add("a", x, y));
    b.output("o2", b.sub("s", x, y));
    b.output("o3", b.mul("m", x, y));
    b.output("o4", b.cmp("c", x, y));
    const graph g = b.build();
    EXPECT_EQ(g.count_of_kind(op_kind::add), 1);
    EXPECT_EQ(g.count_of_kind(op_kind::sub), 1);
    EXPECT_EQ(g.count_of_kind(op_kind::mult), 1);
    EXPECT_EQ(g.count_of_kind(op_kind::comp), 1);
}

TEST(builder, generic_op_rejects_io_kinds_and_bad_arity)
{
    graph_builder b("t");
    const node_id x = b.input("x");
    EXPECT_THROW(b.op(op_kind::input, "i", {x}), error);
    EXPECT_THROW(b.op(op_kind::add, "a", {}), error);
    EXPECT_THROW(b.op(op_kind::add, "a", {x, x, x}), error);
}

TEST(builder, build_validates)
{
    graph_builder b("t");
    b.input("x");
    const node_id dangling = b.add("dead", b.input("y"), b.input("z"));
    (void)dangling; // never consumed -> invalid
    EXPECT_THROW(b.build(), error);
}

} // namespace
} // namespace phls
