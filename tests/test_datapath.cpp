// Unit tests for the datapath container and the prospect policy.
#include <gtest/gtest.h>

#include "cdfg/benchmarks.h"
#include "power/tracker.h"
#include "support/errors.h"
#include "synth/datapath.h"
#include "synth/prospect.h"

namespace phls {
namespace {

const module_library& lib()
{
    static const module_library l = table1_library();
    return l;
}

TEST(datapath, bind_records_instance_schedule_and_module)
{
    datapath dp("d", 3);
    const int u0 = dp.add_instance(*lib().find("ALU"));
    const int u1 = dp.add_instance(*lib().find("mult_ser"));
    EXPECT_EQ(u0, 0);
    EXPECT_EQ(u1, 1);
    dp.bind(node_id(0), u0, 2);
    dp.bind(node_id(1), u1, 0);
    EXPECT_EQ(dp.instance_of[0], u0);
    EXPECT_EQ(dp.sched.start(node_id(0)), 2);
    EXPECT_EQ(lib().module(dp.sched.module_of(node_id(1))).name, "mult_ser");
    ASSERT_EQ(dp.instances[0].ops.size(), 1u);
    EXPECT_EQ(dp.instances[0].ops[0], node_id(0));
}

TEST(datapath, double_bind_and_bad_instance_throw)
{
    datapath dp("d", 2);
    const int u0 = dp.add_instance(*lib().find("add"));
    dp.bind(node_id(0), u0, 0);
    EXPECT_THROW(dp.bind(node_id(0), u0, 1), error);
    EXPECT_THROW(dp.bind(node_id(1), 7, 0), error);
}

TEST(datapath, instance_modules_align_with_indices)
{
    datapath dp("d", 1);
    dp.add_instance(*lib().find("add"));
    dp.add_instance(*lib().find("output"));
    const std::vector<module_id> mods = dp.instance_modules();
    ASSERT_EQ(mods.size(), 2u);
    EXPECT_EQ(lib().module(mods[0]).name, "add");
    EXPECT_EQ(lib().module(mods[1]).name, "output");
}

TEST(datapath, peak_power_and_latency_derive_from_the_schedule)
{
    datapath dp("d", 2);
    const int u0 = dp.add_instance(*lib().find("mult_par"));
    const int u1 = dp.add_instance(*lib().find("mult_par"));
    dp.bind(node_id(0), u0, 0);
    dp.bind(node_id(1), u1, 1); // overlap in cycle 1
    EXPECT_DOUBLE_EQ(dp.peak_power(lib()), 16.2);
    EXPECT_EQ(dp.latency(lib()), 3);
}

TEST(prospect, fastest_fit_tracks_the_cap)
{
    const graph g = make_hal();
    const prospect_result hi =
        make_prospect(g, lib(), prospect_policy::fastest_fit, unbounded_power);
    ASSERT_TRUE(hi.ok);
    const prospect_result lo = make_prospect(g, lib(), prospect_policy::fastest_fit, 5.0);
    ASSERT_TRUE(lo.ok);
    for (node_id v : g.nodes()) {
        if (g.kind(v) != op_kind::mult) continue;
        EXPECT_EQ(lib().module(hi.assignment[v.index()]).name, "mult_par");
        EXPECT_EQ(lib().module(lo.assignment[v.index()]).name, "mult_ser");
    }
}

TEST(prospect, cheapest_fit_minimises_area_per_kind)
{
    const graph g = make_hal();
    const prospect_result r =
        make_prospect(g, lib(), prospect_policy::cheapest_fit, unbounded_power);
    ASSERT_TRUE(r.ok);
    for (node_id v : g.nodes()) {
        if (g.kind(v) == op_kind::comp) {
            EXPECT_EQ(lib().module(r.assignment[v.index()]).name, "comp");
        }
    }
}

TEST(prospect, reports_kinds_that_cannot_fit)
{
    const graph g = make_hal();
    const prospect_result r = make_prospect(g, lib(), prospect_policy::fastest_fit, 1.0);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.reason.find("mult"), std::string::npos);
}

TEST(prospect, policy_names)
{
    EXPECT_EQ(to_string(prospect_policy::fastest_fit), "fastest_fit");
    EXPECT_EQ(to_string(prospect_policy::cheapest_fit), "cheapest_fit");
}

} // namespace
} // namespace phls
