// Tests pinning down the reconstructed benchmark CDFGs: operation
// counts, interface widths, and the critical-path table from DESIGN.md
// that makes the paper's latency constraints meaningful.
#include <gtest/gtest.h>

#include "cdfg/analysis.h"
#include "cdfg/benchmarks.h"
#include "cdfg/random_dag.h"
#include "cdfg/textio.h"
#include "library/library.h"
#include "support/errors.h"

namespace phls {
namespace {

int histogram_value(const graph& g, op_kind k)
{
    const auto h = op_histogram(g);
    const auto it = h.find(k);
    return it == h.end() ? 0 : it->second;
}

// Critical path under Table 1 delays with the given multiplier choice.
int cp_with_mult(const graph& g, int mult_delay)
{
    return critical_path_length(g, [&](node_id v) {
        switch (g.kind(v)) {
        case op_kind::mult: return mult_delay;
        default: return 1;
        }
    });
}

TEST(benchmarks, all_registered_benchmarks_validate)
{
    for (const std::string& name : benchmark_names()) {
        const graph g = benchmark_by_name(name);
        EXPECT_NO_THROW(g.validate()) << name;
        EXPECT_EQ(g.name(), name);
    }
    EXPECT_THROW(benchmark_by_name("nonesuch"), error);
}

TEST(benchmarks, paper_benchmarks_subset)
{
    const auto names = paper_benchmark_names();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "hal");
    EXPECT_EQ(names[1], "cosine");
    EXPECT_EQ(names[2], "elliptic");
}

TEST(benchmarks, hal_matches_the_classic_diffeq_structure)
{
    const graph g = make_hal();
    EXPECT_EQ(histogram_value(g, op_kind::mult), 6);
    EXPECT_EQ(histogram_value(g, op_kind::add), 2);
    EXPECT_EQ(histogram_value(g, op_kind::sub), 2);
    EXPECT_EQ(histogram_value(g, op_kind::comp), 1);
    EXPECT_EQ(histogram_value(g, op_kind::input), 5);
    EXPECT_EQ(histogram_value(g, op_kind::output), 4);
    EXPECT_EQ(g.node_count(), 20);
}

TEST(benchmarks, cosine_is_a_loeffler_style_dct)
{
    const graph g = make_cosine();
    EXPECT_EQ(histogram_value(g, op_kind::mult), 13);
    EXPECT_EQ(histogram_value(g, op_kind::add) + histogram_value(g, op_kind::sub), 31);
    EXPECT_EQ(histogram_value(g, op_kind::input), 8);
    EXPECT_EQ(histogram_value(g, op_kind::output), 8);
}

TEST(benchmarks, elliptic_has_the_classic_26_adds_8_mults)
{
    const graph g = make_elliptic();
    EXPECT_EQ(histogram_value(g, op_kind::add), 26);
    EXPECT_EQ(histogram_value(g, op_kind::mult), 8);
    EXPECT_EQ(histogram_value(g, op_kind::sub), 0);
    EXPECT_EQ(histogram_value(g, op_kind::input), 8);
    EXPECT_EQ(histogram_value(g, op_kind::output), 8);
    EXPECT_EQ(g.node_count(), 50);
}

// The DESIGN.md critical-path table: the paper's T values are exactly
// achievable, and the tightest one per benchmark forces parallel
// multipliers on the critical path.
TEST(benchmarks, hal_critical_paths_bracket_the_paper_constraints)
{
    const graph g = make_hal();
    EXPECT_EQ(cp_with_mult(g, 2), 8);  // all-parallel  <= T=10
    EXPECT_EQ(cp_with_mult(g, 4), 12); // all-serial    <= T=17, > T=10
}

TEST(benchmarks, cosine_critical_paths_bracket_the_paper_constraints)
{
    const graph g = make_cosine();
    EXPECT_EQ(cp_with_mult(g, 2), 11); // <= T=12 (parallel fits with 1 slack)
    EXPECT_EQ(cp_with_mult(g, 4), 15); // == T=15 exactly, > T=12
}

TEST(benchmarks, elliptic_critical_paths_bracket_the_paper_constraints)
{
    const graph g = make_elliptic();
    EXPECT_EQ(cp_with_mult(g, 2), 16);
    EXPECT_EQ(cp_with_mult(g, 4), 22); // == T=22 exactly
}

TEST(benchmarks, fir16_structure)
{
    const graph g = make_fir16();
    EXPECT_EQ(histogram_value(g, op_kind::mult), 16);
    EXPECT_EQ(histogram_value(g, op_kind::add), 15);
    EXPECT_EQ(histogram_value(g, op_kind::input), 16);
    EXPECT_EQ(histogram_value(g, op_kind::output), 1);
    // Balanced tree: depth log2(16)=4 adds + mult + io.
    EXPECT_EQ(cp_with_mult(g, 2), 1 + 2 + 4 + 1);
}

TEST(benchmarks, ar_lattice_structure)
{
    const graph g = make_ar_lattice();
    EXPECT_EQ(histogram_value(g, op_kind::mult), 16);
    EXPECT_EQ(histogram_value(g, op_kind::add), 12);
}

TEST(benchmarks, iir_biquad_structure)
{
    const graph g = make_iir_biquad();
    EXPECT_EQ(histogram_value(g, op_kind::mult), 10);
    EXPECT_EQ(histogram_value(g, op_kind::add), 8);
    EXPECT_EQ(histogram_value(g, op_kind::input), 5);
    EXPECT_EQ(histogram_value(g, op_kind::output), 5);
}

TEST(benchmarks, fft8_structure)
{
    const graph g = make_fft8();
    EXPECT_EQ(histogram_value(g, op_kind::mult), 12); // one twiddle per butterfly
    EXPECT_EQ(histogram_value(g, op_kind::add), 12);
    EXPECT_EQ(histogram_value(g, op_kind::sub), 12);
    EXPECT_EQ(histogram_value(g, op_kind::input), 8);
    EXPECT_EQ(histogram_value(g, op_kind::output), 8);
    // 3 butterfly stages of (mult then add/sub) plus io.
    EXPECT_EQ(cp_with_mult(g, 2), 1 + 3 * 3 + 1);
    EXPECT_EQ(cp_with_mult(g, 4), 1 + 3 * 5 + 1);
}

TEST(benchmarks, table1_covers_every_benchmark)
{
    const module_library lib = table1_library();
    for (const std::string& name : benchmark_names())
        EXPECT_NO_THROW(lib.check_covers(benchmark_by_name(name))) << name;
}

class random_dag_suite : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(random_dag_suite, generated_graphs_are_valid_and_deterministic)
{
    random_dag_params params;
    params.operations = 30;
    params.inputs = 5;
    const graph g = random_dag(params, GetParam());
    EXPECT_NO_THROW(g.validate());
    const graph g2 = random_dag(params, GetParam());
    EXPECT_EQ(write_cdfg_string(g), write_cdfg_string(g2));
}

INSTANTIATE_TEST_SUITE_P(seeds, random_dag_suite,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(random_dag_params, operation_count_is_respected)
{
    for (int ops : {1, 5, 17, 64}) {
        random_dag_params params;
        params.operations = ops;
        const graph g = random_dag(params, 3);
        int arith = 0;
        for (node_id v : g.nodes())
            if (!is_io(g.kind(v))) ++arith;
        EXPECT_GE(arith, ops); // padding ops may be added for unused inputs
    }
}

TEST(random_dag_params, invalid_parameters_throw)
{
    random_dag_params params;
    params.operations = 0;
    EXPECT_THROW(random_dag(params, 1), error);
    params.operations = 5;
    params.inputs = 0;
    EXPECT_THROW(random_dag(params, 1), error);
}

TEST(random_dag_params, mult_fraction_shifts_the_mix)
{
    random_dag_params heavy;
    heavy.operations = 200;
    heavy.mult_fraction = 0.9;
    random_dag_params light = heavy;
    light.mult_fraction = 0.05;
    const graph gh = random_dag(heavy, 9);
    const graph gl = random_dag(light, 9);
    EXPECT_GT(gh.count_of_kind(op_kind::mult), gl.count_of_kind(op_kind::mult));
}

} // namespace
} // namespace phls
