// Tests for CDFG analyses (longest paths, reachability) and the DOT and
// text front-ends.
#include <gtest/gtest.h>

#include "cdfg/analysis.h"
#include "cdfg/benchmarks.h"
#include "cdfg/dot.h"
#include "cdfg/random_dag.h"
#include "cdfg/textio.h"
#include "support/errors.h"

namespace phls {
namespace {

graph chain()
{
    // in -> a -> b -> out
    graph g("chain");
    const node_id in = g.add_node(op_kind::input, "in");
    const node_id a = g.add_node(op_kind::add, "a");
    const node_id b = g.add_node(op_kind::mult, "b");
    const node_id out = g.add_node(op_kind::output, "out");
    g.add_edge(in, a);
    g.add_edge(a, b);
    g.add_edge(b, out);
    return g;
}

int unit_delay(node_id) { return 1; }

TEST(analysis, earliest_starts_accumulate_delays)
{
    const graph g = chain();
    const std::vector<int> s = earliest_starts(g, unit_delay);
    EXPECT_EQ(s[0], 0);
    EXPECT_EQ(s[1], 1);
    EXPECT_EQ(s[2], 2);
    EXPECT_EQ(s[3], 3);
}

TEST(analysis, earliest_starts_with_non_unit_delays)
{
    const graph g = chain();
    const auto delay = [&](node_id v) { return g.kind(v) == op_kind::mult ? 4 : 1; };
    const std::vector<int> s = earliest_starts(g, delay);
    EXPECT_EQ(s[3], 6); // 1 + 1 + 4
    EXPECT_EQ(critical_path_length(g, delay), 7);
}

TEST(analysis, critical_path_of_chain_is_sum_of_delays)
{
    EXPECT_EQ(critical_path_length(chain(), unit_delay), 4);
}

TEST(analysis, latest_starts_anchor_at_latency)
{
    const graph g = chain();
    const std::vector<int> s = latest_starts(g, unit_delay, 6);
    ASSERT_FALSE(s.empty());
    EXPECT_EQ(s[3], 5);
    EXPECT_EQ(s[2], 4);
    EXPECT_EQ(s[0], 2);
}

TEST(analysis, latest_starts_infeasible_below_critical_path)
{
    EXPECT_TRUE(latest_starts(chain(), unit_delay, 3).empty());
}

TEST(analysis, asap_is_never_after_alap)
{
    const graph g = make_elliptic();
    const std::vector<int> lo = earliest_starts(g, unit_delay);
    const std::vector<int> hi = latest_starts(g, unit_delay, 30);
    ASSERT_FALSE(hi.empty());
    for (node_id v : g.nodes()) EXPECT_LE(lo[v.index()], hi[v.index()]);
}

TEST(analysis, op_histogram_counts_kinds)
{
    const std::map<op_kind, int> h = op_histogram(make_hal());
    EXPECT_EQ(h.at(op_kind::mult), 6);
    EXPECT_EQ(h.at(op_kind::add), 2);
    EXPECT_EQ(h.at(op_kind::sub), 2);
    EXPECT_EQ(h.at(op_kind::comp), 1);
    EXPECT_EQ(h.at(op_kind::input), 5);
    EXPECT_EQ(h.at(op_kind::output), 4);
}

TEST(analysis, reachability_follows_paths_only_forward)
{
    const graph g = chain();
    const reachability r(g);
    EXPECT_TRUE(r.reaches(node_id(0), node_id(3)));
    EXPECT_TRUE(r.reaches(node_id(1), node_id(2)));
    EXPECT_FALSE(r.reaches(node_id(3), node_id(0)));
    EXPECT_FALSE(r.reaches(node_id(2), node_id(1)));
    EXPECT_FALSE(r.reaches(node_id(1), node_id(1)));
}

TEST(analysis, independence_is_symmetric_absence_of_paths)
{
    graph g("t");
    const node_id x = g.add_node(op_kind::input, "x");
    const node_id a = g.add_node(op_kind::add, "a");
    const node_id b = g.add_node(op_kind::add, "b");
    g.add_edge(x, a);
    g.add_edge(x, b);
    const reachability r(g);
    EXPECT_TRUE(r.independent(a, b));
    EXPECT_FALSE(r.independent(x, a));
}

TEST(analysis, reachability_matches_bruteforce_on_random_dags)
{
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        const graph g = random_dag({}, seed);
        const reachability r(g);
        // Brute force: DFS from each node.
        for (node_id s : g.nodes()) {
            std::vector<char> seen(static_cast<std::size_t>(g.node_count()), 0);
            std::vector<node_id> stack{s};
            while (!stack.empty()) {
                const node_id v = stack.back();
                stack.pop_back();
                for (node_id n : g.succs(v)) {
                    if (!seen[n.index()]) {
                        seen[n.index()] = 1;
                        stack.push_back(n);
                    }
                }
            }
            for (node_id t : g.nodes())
                EXPECT_EQ(r.reaches(s, t), static_cast<bool>(seen[t.index()]))
                    << "seed " << seed << " " << g.label(s) << "->" << g.label(t);
        }
    }
}

TEST(dot, contains_every_node_and_edge)
{
    const graph g = chain();
    const std::string dot = to_dot(g);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("\"in"), std::string::npos);
    EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
    EXPECT_NE(dot.find("n2 -> n3"), std::string::npos);
}

TEST(dot, annotations_appear_when_provided)
{
    const graph g = chain();
    dot_options opts;
    opts.start_times = {0, 1, 2, 3};
    opts.clusters = {"u0", "u0", "u1", "u2"};
    const std::string dot = to_dot(g, opts);
    EXPECT_NE(dot.find("t=2"), std::string::npos);
    EXPECT_NE(dot.find("u1"), std::string::npos);
}

TEST(textio, roundtrip_preserves_structure)
{
    const graph g = make_hal();
    const graph g2 = parse_cdfg_string(write_cdfg_string(g));
    EXPECT_EQ(g2.name(), g.name());
    EXPECT_EQ(g2.node_count(), g.node_count());
    EXPECT_EQ(g2.edge_count(), g.edge_count());
    for (node_id v : g.nodes()) {
        const auto v2 = g2.find(g.label(v));
        ASSERT_TRUE(v2.has_value());
        EXPECT_EQ(g2.kind(*v2), g.kind(v));
        EXPECT_EQ(g2.preds(*v2).size(), g.preds(v).size());
    }
}

TEST(textio, parses_comments_and_blanks)
{
    const graph g = parse_cdfg_string("# header\n\ncdfg tiny\nnode x input\n"
                                      "node o output\n  # mid comment\nedge x o\n");
    EXPECT_EQ(g.name(), "tiny");
    EXPECT_EQ(g.node_count(), 2);
}

TEST(textio, missing_header_is_an_error)
{
    EXPECT_THROW(parse_cdfg_string("node x input\n"), error);
}

TEST(textio, unknown_directive_reports_line)
{
    try {
        parse_cdfg_string("cdfg t\nfrobnicate x\n");
        FAIL();
    } catch (const parse_error& e) {
        EXPECT_EQ(e.line(), 2);
    }
}

TEST(textio, edge_to_unknown_node_reports_line)
{
    try {
        parse_cdfg_string("cdfg t\nnode x input\nedge x ghost\n");
        FAIL();
    } catch (const parse_error& e) {
        EXPECT_EQ(e.line(), 3);
    }
}

TEST(textio, bad_node_kind_is_an_error)
{
    EXPECT_THROW(parse_cdfg_string("cdfg t\nnode x wizard\n"), parse_error);
}

TEST(textio, parsed_graph_is_validated)
{
    // output with no predecessor
    EXPECT_THROW(parse_cdfg_string("cdfg t\nnode o output\n"), error);
}

} // namespace
} // namespace phls
