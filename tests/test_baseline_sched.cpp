// Tests for the baseline schedulers: resource-constrained list
// scheduling and force-directed scheduling.
#include <gtest/gtest.h>

#include "cdfg/analysis.h"
#include "cdfg/benchmarks.h"
#include "cdfg/random_dag.h"
#include "power/tracker.h"
#include "sched/asap_alap.h"
#include "sched/force_directed.h"
#include "sched/list_sched.h"
#include "support/errors.h"

namespace phls {
namespace {

const module_library& lib()
{
    static const module_library l = table1_library();
    return l;
}

TEST(list_sched, minimal_allocation_has_one_instance_per_used_module)
{
    const graph g = make_hal();
    const module_assignment a = fastest_assignment(g, lib(), unbounded_power);
    const allocation alloc = minimal_allocation(lib(), a);
    ASSERT_EQ(alloc.size(), static_cast<std::size_t>(lib().size()));
    EXPECT_EQ(alloc[lib().find("mult_par")->index()], 1);
    EXPECT_EQ(alloc[lib().find("mult_ser")->index()], 0);
    EXPECT_EQ(alloc[lib().find("input")->index()], 1);
}

TEST(list_sched, produces_valid_schedules_and_bindings)
{
    const graph g = make_hal();
    const module_assignment a = fastest_assignment(g, lib(), unbounded_power);
    allocation alloc = minimal_allocation(lib(), a);
    const list_sched_result r = list_schedule(g, lib(), a, alloc);
    ASSERT_TRUE(r.feasible) << r.reason;
    EXPECT_NO_THROW(validate_schedule(g, lib(), r.sched));
    // Exclusive instances: no two ops on the same instance overlap.
    for (node_id v : g.nodes())
        for (node_id u : g.nodes()) {
            if (v >= u || r.instance_of[v.index()] != r.instance_of[u.index()]) continue;
            const bool overlap = r.sched.start(v) < r.sched.finish(u, lib()) &&
                                 r.sched.start(u) < r.sched.finish(v, lib());
            EXPECT_FALSE(overlap) << g.label(v) << " vs " << g.label(u);
        }
}

TEST(list_sched, more_instances_never_hurt_latency)
{
    const graph g = make_cosine();
    const module_assignment a = fastest_assignment(g, lib(), unbounded_power);
    allocation one = minimal_allocation(lib(), a);
    allocation many = one;
    for (int& c : many) c = c > 0 ? 4 : 0;
    const list_sched_result r1 = list_schedule(g, lib(), a, one);
    const list_sched_result r4 = list_schedule(g, lib(), a, many);
    ASSERT_TRUE(r1.feasible && r4.feasible);
    EXPECT_LE(r4.sched.latency(lib()), r1.sched.latency(lib()));
}

TEST(list_sched, missing_instances_are_reported)
{
    const graph g = make_hal();
    const module_assignment a = fastest_assignment(g, lib(), unbounded_power);
    allocation alloc(static_cast<std::size_t>(lib().size()), 0);
    const list_sched_result r = list_schedule(g, lib(), a, alloc);
    EXPECT_FALSE(r.feasible);
    EXPECT_FALSE(r.reason.empty());
}

TEST(list_sched, serial_multiplier_latency_reflects_contention)
{
    // 6 mults on one serial multiplier: at least 24 cycles of mult time.
    const graph g = make_hal();
    const module_assignment a = cheapest_assignment(g, lib(), unbounded_power);
    const list_sched_result r = list_schedule(g, lib(), a, minimal_allocation(lib(), a));
    ASSERT_TRUE(r.feasible);
    EXPECT_GE(r.sched.latency(lib()), 24);
}

TEST(fds, schedules_within_the_bound_and_validates)
{
    const graph g = make_hal();
    const module_assignment a = fastest_assignment(g, lib(), unbounded_power);
    for (int T : {8, 10, 17}) {
        const fds_result r = force_directed_schedule(g, lib(), a, T);
        ASSERT_TRUE(r.feasible) << "T=" << T << ": " << r.reason;
        EXPECT_NO_THROW(validate_schedule(g, lib(), r.sched, T));
    }
}

TEST(fds, infeasible_below_the_critical_path)
{
    const graph g = make_hal();
    const module_assignment a = fastest_assignment(g, lib(), unbounded_power);
    const fds_result r = force_directed_schedule(g, lib(), a, 7);
    EXPECT_FALSE(r.feasible);
    EXPECT_FALSE(r.reason.empty());
}

TEST(fds, slack_reduces_peak_concurrency_vs_asap)
{
    // With slack, FDS spreads ops; its peak multiplier concurrency should
    // not exceed ASAP's (that is its objective).
    const graph g = make_cosine();
    const module_assignment a = fastest_assignment(g, lib(), unbounded_power);
    const fds_result r = force_directed_schedule(g, lib(), a, 18);
    ASSERT_TRUE(r.feasible);

    const auto peak_mults = [&](const schedule& s) {
        int peak = 0;
        for (int c = 0; c < s.latency(lib()); ++c) {
            int busy = 0;
            for (node_id v : g.nodes())
                if (g.kind(v) == op_kind::mult && s.start(v) <= c &&
                    c < s.finish(v, lib()))
                    ++busy;
            peak = std::max(peak, busy);
        }
        return peak;
    };
    const schedule asap = asap_schedule(g, lib(), a);
    EXPECT_LE(peak_mults(r.sched), peak_mults(asap));
}

TEST(fds, works_on_random_dags)
{
    for (std::uint64_t seed : {11u, 12u, 13u}) {
        random_dag_params params;
        params.operations = 16;
        const graph g = random_dag(params, seed);
        const module_assignment a = fastest_assignment(g, lib(), unbounded_power);
        const int cp = critical_path_length(
            g, [&](node_id v) { return lib().module(a[v.index()]).latency; });
        const fds_result r = force_directed_schedule(g, lib(), a, cp + 4);
        ASSERT_TRUE(r.feasible) << seed;
        EXPECT_NO_THROW(validate_schedule(g, lib(), r.sched, cp + 4));
    }
}

} // namespace
} // namespace phls
