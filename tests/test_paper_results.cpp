// Regression tests pinning the reproduced paper results (EXPERIMENTS.md):
// the Figure 1 shape, the Figure 2 curve properties, and the battery
// motivation, so refactoring cannot silently change the reproduction.
#include <gtest/gtest.h>

#include "battery/lifetime.h"
#include "cdfg/benchmarks.h"
#include "flow/flow.h"
#include "support/errors.h"
#include "sched/asap_alap.h"
#include "sched/pasap.h"
#include "synth/explore.h"
#include "synth/synthesizer.h"

namespace phls {
namespace {

const module_library& lib()
{
    static const module_library l = table1_library();
    return l;
}

/// A power sweep through the flow engine, mapped to sweep points.
std::vector<sweep_point> sweep(const graph& g, int T, int grid_points)
{
    const flow f = flow::on(g).with_library(lib()).latency(T);
    std::vector<synthesis_constraints> grid;
    for (double cap : f.power_grid(grid_points)) grid.push_back({T, cap});
    std::vector<sweep_point> out;
    for (const flow_report& r : f.run_batch(grid)) out.push_back(to_sweep_point(r));
    return out;
}

TEST(figure1, pasap_eliminates_the_spike_at_bounded_latency_cost)
{
    const graph g = make_hal();
    const module_assignment a = fastest_assignment(g, lib(), unbounded_power);
    const schedule asap = asap_schedule(g, lib(), a);
    const power_profile undesired = asap.profile(lib());
    const double cap = 0.55 * undesired.peak();
    ASSERT_GT(undesired.peak(), cap);

    const pasap_result r = pasap(g, lib(), a, cap);
    ASSERT_TRUE(r.feasible);
    const power_profile desired = r.sched.profile(lib());
    EXPECT_LE(desired.peak(), cap + power_tracker::tolerance);
    // Same work: energy is preserved by stretching.
    EXPECT_NEAR(desired.energy(), undesired.energy(), 1e-9);
    // The stretch is modest (the paper's sketch shows a slightly longer
    // tail, not a blow-up).
    EXPECT_LE(r.sched.latency(lib()), asap.latency(lib()) + 4);
}

struct curve_case {
    const char* bench;
    int latency;
};

class figure2 : public ::testing::TestWithParam<curve_case> {};

TEST_P(figure2, curve_has_cliff_plateau_and_cap_compliance)
{
    const graph g = benchmark_by_name(GetParam().bench);
    const int T = GetParam().latency;
    const std::vector<sweep_point> raw = sweep(g, T, 14);
    const std::vector<sweep_point> env = monotone_envelope(raw);

    // (i) a feasibility cliff exists,
    ASSERT_FALSE(env.front().feasible);
    ASSERT_TRUE(env.back().feasible);
    // (ii) every feasible point obeys its cap,
    for (const sweep_point& p : env) {
        if (p.feasible) {
            EXPECT_LE(p.peak, p.cap + power_tracker::tolerance);
        }
    }
    // (iii) area near the cliff >= area on the plateau (the paper's
    // "trade a small amount of area to fit the power requirement").
    double cliff_area = -1, plateau_area = -1;
    for (const sweep_point& p : env)
        if (p.feasible) {
            if (cliff_area < 0) cliff_area = p.area;
            plateau_area = p.area;
        }
    EXPECT_GE(cliff_area, plateau_area - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(curves, figure2,
                         ::testing::Values(curve_case{"hal", 10}, curve_case{"hal", 17},
                                           curve_case{"cosine", 12},
                                           curve_case{"cosine", 15},
                                           curve_case{"cosine", 19},
                                           curve_case{"elliptic", 22}),
                         [](const ::testing::TestParamInfo<curve_case>& info) {
                             return std::string(info.param.bench) + "_T" +
                                    std::to_string(info.param.latency);
                         });

TEST(figure2_ordering, tighter_latency_needs_more_power_and_area)
{
    const graph g = make_hal();
    const auto front10 = monotone_envelope(sweep(g, 10, 14));
    const auto front17 = monotone_envelope(sweep(g, 17, 14));
    const auto min_feasible = [](const std::vector<sweep_point>& pts) {
        for (const sweep_point& p : pts)
            if (p.feasible) return p;
        throw error("no feasible point");
    };
    const sweep_point tight = min_feasible(front10);
    const sweep_point loose = min_feasible(front17);
    EXPECT_GT(tight.cap, loose.cap);   // T=10 needs more power headroom
    EXPECT_GT(tight.area, loose.area); // and costs more area
}

TEST(battery_motivation, rate_sensitive_cells_reward_the_power_cap)
{
    const graph g = make_hal();
    synthesis_options speed_first;
    speed_first.try_both_prospects = false;
    speed_first.policy = prospect_policy::fastest_fit;
    const synthesis_result spiky = synthesize(g, lib(), {17, unbounded_power}, speed_first);
    ASSERT_TRUE(spiky.feasible);
    const synthesis_result flat = synthesize(g, lib(), {17, 6.0});
    ASSERT_TRUE(flat.feasible);

    const load_profile lspiky = to_load(spiky.dp.sched.profile(lib()), 1.0, 0.5);
    const load_profile lflat = to_load(flat.dp.sched.profile(lib()), 1.0, 0.5);
    const double alpha = spiky.dp.sched.profile(lib()).energy() * 0.5 * 100.0;

    const double ideal_gain =
        lifetime_gain(*make_ideal_battery(alpha), lspiky, lflat);
    const double diffusion_gain =
        lifetime_gain(*make_rakhmatov_battery(alpha, 0.1), lspiky, lflat);
    EXPECT_GT(diffusion_gain, 0.0);
    EXPECT_GT(diffusion_gain, ideal_gain); // beyond the pure energy effect
}

} // namespace
} // namespace phls
