// Tests for the power substrate: profiles and the availability tracker.
#include <gtest/gtest.h>

#include "power/profile.h"
#include "power/tracker.h"
#include "support/errors.h"

namespace phls {
namespace {

TEST(profile, starts_empty)
{
    const power_profile p;
    EXPECT_EQ(p.cycle_count(), 0);
    EXPECT_DOUBLE_EQ(p.peak(), 0.0);
    EXPECT_DOUBLE_EQ(p.energy(), 0.0);
    EXPECT_DOUBLE_EQ(p.average(), 0.0);
}

TEST(profile, deposit_accumulates_and_grows)
{
    power_profile p;
    p.deposit(0, 2, 2.5);
    p.deposit(1, 2, 2.7);
    EXPECT_EQ(p.cycle_count(), 3);
    EXPECT_DOUBLE_EQ(p.at(0), 2.5);
    EXPECT_DOUBLE_EQ(p.at(1), 5.2);
    EXPECT_DOUBLE_EQ(p.at(2), 2.7);
    EXPECT_DOUBLE_EQ(p.peak(), 5.2);
    EXPECT_NEAR(p.energy(), 10.4, 1e-12);
}

TEST(profile, reading_past_the_horizon_is_zero)
{
    power_profile p(3);
    EXPECT_DOUBLE_EQ(p.at(100), 0.0);
    EXPECT_THROW(p.at(-1), error);
}

TEST(profile, withdraw_reverses_deposit)
{
    power_profile p;
    p.deposit(2, 3, 4.0);
    p.withdraw(2, 3, 4.0);
    for (int c = 0; c < p.cycle_count(); ++c) EXPECT_DOUBLE_EQ(p.at(c), 0.0);
}

TEST(profile, withdraw_beyond_deposits_throws)
{
    power_profile p;
    p.deposit(0, 1, 1.0);
    EXPECT_THROW(p.withdraw(0, 1, 2.0), error);
    EXPECT_THROW(p.withdraw(5, 1, 1.0), error);
}

TEST(profile, average_over_cycles)
{
    power_profile p;
    p.deposit(0, 4, 3.0);
    EXPECT_DOUBLE_EQ(p.average(), 3.0);
    p.deposit(0, 2, 3.0);
    EXPECT_DOUBLE_EQ(p.average(), 4.5);
}

TEST(profile, ascii_chart_marks_the_cap)
{
    power_profile p;
    p.deposit(0, 1, 10.0);
    p.deposit(1, 1, 2.0);
    const std::string chart = p.ascii_chart(6.0, 20);
    EXPECT_NE(chart.find('#'), std::string::npos);
    EXPECT_NE(chart.find('!'), std::string::npos);
    EXPECT_NE(chart.find("10.00"), std::string::npos);
}

TEST(tracker, fits_respects_cap_per_cycle)
{
    power_tracker t(10.0);
    EXPECT_TRUE(t.fits(0, 3, 6.0));
    t.reserve(0, 3, 6.0);
    EXPECT_TRUE(t.fits(0, 3, 4.0));
    EXPECT_FALSE(t.fits(0, 1, 4.1));
    EXPECT_TRUE(t.fits(3, 5, 10.0)); // free cycles
}

TEST(tracker, single_op_above_cap_never_fits)
{
    power_tracker t(5.0);
    EXPECT_FALSE(t.fits(0, 1, 5.5));
}

TEST(tracker, exact_decimal_sums_fit_at_the_cap)
{
    // 2.5 + 2.5 + 2.7 == 7.7 must fit a 7.7 cap despite floating point.
    power_tracker t(7.7);
    t.reserve(0, 1, 2.5);
    t.reserve(0, 1, 2.5);
    EXPECT_TRUE(t.fits(0, 1, 2.7));
}

TEST(tracker, reserve_checks_and_release_restores)
{
    power_tracker t(8.0);
    t.reserve(0, 2, 8.0);
    EXPECT_THROW(t.reserve(1, 1, 0.5), error);
    t.release(0, 2, 8.0);
    EXPECT_TRUE(t.fits(0, 2, 8.0));
    EXPECT_DOUBLE_EQ(t.used(0), 0.0);
}

TEST(tracker, unbounded_cap_accepts_everything)
{
    power_tracker t(unbounded_power);
    EXPECT_TRUE(t.fits(0, 1, 1e12));
    t.reserve(0, 1, 1e12);
    EXPECT_TRUE(t.fits(0, 1, 1e12));
}

TEST(tracker, overlapping_reservations_stack)
{
    power_tracker t(10.0);
    t.reserve(0, 4, 3.0);
    t.reserve(2, 4, 3.0);
    EXPECT_DOUBLE_EQ(t.used(2), 6.0);
    EXPECT_FALSE(t.fits(2, 1, 4.5));
    EXPECT_TRUE(t.fits(4, 1, 7.0));
}

} // namespace
} // namespace phls
