// Tests for the power substrate: profiles and the availability tracker.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <tuple>
#include <vector>

#include "power/profile.h"
#include "power/tracker.h"
#include "support/errors.h"

namespace phls {
namespace {

TEST(profile, starts_empty)
{
    const power_profile p;
    EXPECT_EQ(p.cycle_count(), 0);
    EXPECT_DOUBLE_EQ(p.peak(), 0.0);
    EXPECT_DOUBLE_EQ(p.energy(), 0.0);
    EXPECT_DOUBLE_EQ(p.average(), 0.0);
}

TEST(profile, deposit_accumulates_and_grows)
{
    power_profile p;
    p.deposit(0, 2, 2.5);
    p.deposit(1, 2, 2.7);
    EXPECT_EQ(p.cycle_count(), 3);
    EXPECT_DOUBLE_EQ(p.at(0), 2.5);
    EXPECT_DOUBLE_EQ(p.at(1), 5.2);
    EXPECT_DOUBLE_EQ(p.at(2), 2.7);
    EXPECT_DOUBLE_EQ(p.peak(), 5.2);
    EXPECT_NEAR(p.energy(), 10.4, 1e-12);
}

TEST(profile, reading_past_the_horizon_is_zero)
{
    power_profile p(3);
    EXPECT_DOUBLE_EQ(p.at(100), 0.0);
    EXPECT_THROW(p.at(-1), error);
}

TEST(profile, withdraw_reverses_deposit)
{
    power_profile p;
    p.deposit(2, 3, 4.0);
    p.withdraw(2, 3, 4.0);
    for (int c = 0; c < p.cycle_count(); ++c) EXPECT_DOUBLE_EQ(p.at(c), 0.0);
}

TEST(profile, withdraw_beyond_deposits_throws)
{
    power_profile p;
    p.deposit(0, 1, 1.0);
    EXPECT_THROW(p.withdraw(0, 1, 2.0), error);
    EXPECT_THROW(p.withdraw(5, 1, 1.0), error);
}

TEST(profile, average_over_cycles)
{
    power_profile p;
    p.deposit(0, 4, 3.0);
    EXPECT_DOUBLE_EQ(p.average(), 3.0);
    p.deposit(0, 2, 3.0);
    EXPECT_DOUBLE_EQ(p.average(), 4.5);
}

TEST(profile, ascii_chart_marks_the_cap)
{
    power_profile p;
    p.deposit(0, 1, 10.0);
    p.deposit(1, 1, 2.0);
    const std::string chart = p.ascii_chart(6.0, 20);
    EXPECT_NE(chart.find('#'), std::string::npos);
    EXPECT_NE(chart.find('!'), std::string::npos);
    EXPECT_NE(chart.find("10.00"), std::string::npos);
}

TEST(tracker, fits_respects_cap_per_cycle)
{
    power_tracker t(10.0);
    EXPECT_TRUE(t.fits(0, 3, 6.0));
    t.reserve(0, 3, 6.0);
    EXPECT_TRUE(t.fits(0, 3, 4.0));
    EXPECT_FALSE(t.fits(0, 1, 4.1));
    EXPECT_TRUE(t.fits(3, 5, 10.0)); // free cycles
}

TEST(tracker, single_op_above_cap_never_fits)
{
    power_tracker t(5.0);
    EXPECT_FALSE(t.fits(0, 1, 5.5));
}

TEST(tracker, exact_decimal_sums_fit_at_the_cap)
{
    // 2.5 + 2.5 + 2.7 == 7.7 must fit a 7.7 cap despite floating point.
    power_tracker t(7.7);
    t.reserve(0, 1, 2.5);
    t.reserve(0, 1, 2.5);
    EXPECT_TRUE(t.fits(0, 1, 2.7));
}

TEST(tracker, reserve_checks_and_release_restores)
{
    power_tracker t(8.0);
    t.reserve(0, 2, 8.0);
    EXPECT_THROW(t.reserve(1, 1, 0.5), error);
    t.release(0, 2, 8.0);
    EXPECT_TRUE(t.fits(0, 2, 8.0));
    EXPECT_DOUBLE_EQ(t.used(0), 0.0);
}

TEST(tracker, unbounded_cap_accepts_everything)
{
    power_tracker t(unbounded_power);
    EXPECT_TRUE(t.fits(0, 1, 1e12));
    t.reserve(0, 1, 1e12);
    EXPECT_TRUE(t.fits(0, 1, 1e12));
}

TEST(tracker, overlapping_reservations_stack)
{
    power_tracker t(10.0);
    t.reserve(0, 4, 3.0);
    t.reserve(2, 4, 3.0);
    EXPECT_DOUBLE_EQ(t.used(2), 6.0);
    EXPECT_FALSE(t.fits(2, 1, 4.5));
    EXPECT_TRUE(t.fits(4, 1, 7.0));
}

// --------------------------------------------------- next_fit (skip-ahead)

/// The seed-era linear probe: the definition next_fit must reproduce.
int linear_next_fit(const power_tracker& t, int start, int duration, double power)
{
    int s = start;
    while (!t.fits(s, duration, power)) ++s;
    return s;
}

TEST(tracker, next_fit_skips_past_violations)
{
    power_tracker t(10.0);
    t.reserve(0, 5, 8.0);
    t.reserve(7, 2, 8.0);
    // 3 units fit nowhere before cycle 9 for a 3-cycle op.
    EXPECT_EQ(t.next_fit(0, 3, 3.0), linear_next_fit(t, 0, 3, 3.0));
    EXPECT_EQ(t.next_fit(0, 3, 3.0), 9);
    // 3 units fit only in the gap [5, 7).
    EXPECT_EQ(t.next_fit(0, 2, 3.0), 5);
    EXPECT_EQ(t.next_fit(6, 2, 3.0), linear_next_fit(t, 6, 2, 3.0));
}

TEST(tracker, next_fit_edge_cases)
{
    power_tracker t(5.0);
    t.reserve(0, 3, 5.0);
    // Zero duration always fits in place (like fits()).
    EXPECT_EQ(t.next_fit(1, 0, 4.0), 1);
    // Power above the cap never fits anywhere.
    EXPECT_EQ(t.next_fit(0, 1, 5.5), -1);
    EXPECT_EQ(t.next_fit(0, 0, 5.5), -1);
    // A start past the horizon is free.
    EXPECT_EQ(t.next_fit(100, 4, 5.0), 100);

    power_tracker unbounded(unbounded_power);
    unbounded.reserve(0, 2, 1e12);
    EXPECT_EQ(unbounded.next_fit(0, 2, 1e12), 0);
}

TEST(tracker, next_fit_tolerance_boundary_sums)
{
    // Table-1-style decimals: sums that land exactly on the cap must fit
    // (within the tracker tolerance), one ulp-scale step above must not,
    // in both probe implementations.
    power_tracker t(7.7);
    t.reserve(0, 2, 2.5);
    t.reserve(0, 2, 2.5);
    EXPECT_EQ(t.next_fit(0, 2, 2.7), linear_next_fit(t, 0, 2, 2.7));
    EXPECT_EQ(t.next_fit(0, 2, 2.7), 0);
    EXPECT_EQ(t.next_fit(0, 2, 2.7000001), linear_next_fit(t, 0, 2, 2.7000001));
    EXPECT_EQ(t.next_fit(0, 2, 2.7000001), 2);
}

TEST(tracker, next_fit_release_then_refit)
{
    power_tracker t(6.0);
    t.reserve(0, 10, 4.0);
    EXPECT_EQ(t.next_fit(0, 2, 3.0), 10);
    t.release(2, 3, 4.0); // punch a hole
    EXPECT_EQ(t.next_fit(0, 2, 3.0), linear_next_fit(t, 0, 2, 3.0));
    EXPECT_EQ(t.next_fit(0, 2, 3.0), 2);
    t.reserve(2, 3, 4.0); // and close it again
    EXPECT_EQ(t.next_fit(0, 2, 3.0), 10);
}

TEST(tracker, next_fit_matches_linear_probe_on_random_ledgers)
{
    std::mt19937_64 rng(20260730);
    for (int trial = 0; trial < 20; ++trial) {
        const double cap = 4.0 + 0.5 * static_cast<double>(trial % 9);
        power_tracker t(cap);
        std::vector<std::tuple<int, int, double>> held;

        std::uniform_int_distribution<int> start_d(0, 60);
        std::uniform_int_distribution<int> dur_d(0, 5);
        std::uniform_real_distribution<double> pow_d(0.1, cap);
        for (int step = 0; step < 120; ++step) {
            const int duration = dur_d(rng);
            const double power = pow_d(rng);
            if (!held.empty() && step % 5 == 4) {
                // Release a random reservation, then refit into the hole.
                std::uniform_int_distribution<std::size_t> pick(0, held.size() - 1);
                const std::size_t i = pick(rng);
                const auto [s, d, p] = held[i];
                t.release(s, d, p);
                held.erase(held.begin() + static_cast<std::ptrdiff_t>(i));
            }
            const int from = start_d(rng);
            const int slot = t.next_fit(from, duration, power);
            ASSERT_EQ(slot, linear_next_fit(t, from, duration, power))
                << "trial " << trial << " step " << step;
            if (duration > 0 && step % 2 == 0) {
                t.reserve(slot, duration, power);
                held.emplace_back(slot, duration, power);
            }
        }
    }
}

TEST(tracker, restore_interval_unwinds_reserve_bit_exactly)
{
    power_tracker t(9.0);
    t.reserve(0, 4, 1.1);
    t.reserve(2, 3, 2.3);
    const std::vector<double> before = t.profile().values();

    const std::vector<double> saved = t.interval_values(1, 6);
    t.reserve(1, 6, 3.7);
    ASSERT_NE(t.profile().values(), before);
    t.restore_interval(1, saved);
    EXPECT_EQ(t.profile().values().size(), 7u); // horizon never shrinks
    for (int c = 0; c < t.profile().cycle_count(); ++c)
        EXPECT_EQ(t.used(c), c < static_cast<int>(before.size()) ? before[c] : 0.0);
    // The skip-ahead structure must see the restored values too.
    EXPECT_EQ(t.next_fit(0, 3, 6.0), linear_next_fit(t, 0, 3, 6.0));
}

/// Reference implementation of headroom(): cap minus the linear-scan
/// max usage of the window.
double linear_headroom(const power_tracker& t, int start, int duration)
{
    double used = 0.0;
    for (int c = start; c < start + duration; ++c) used = std::max(used, t.used(c));
    return t.cap() - used;
}

TEST(tracker, headroom_on_empty_ledger_is_the_cap)
{
    const power_tracker t(9.0);
    EXPECT_DOUBLE_EQ(t.headroom(0, 10), 9.0);
    EXPECT_DOUBLE_EQ(t.headroom(5, 0), 9.0); // empty window
}

TEST(tracker, headroom_reads_the_window_max)
{
    power_tracker t(9.0);
    t.reserve(2, 3, 2.5); // cycles 2..4
    t.reserve(3, 1, 4.0); // cycle 3 now 6.5
    EXPECT_DOUBLE_EQ(t.headroom(0, 2), 9.0);       // before the block
    EXPECT_DOUBLE_EQ(t.headroom(2, 1), 6.5);       // only cycle 2
    EXPECT_DOUBLE_EQ(t.headroom(0, 10), 2.5);      // covers cycle 3
    EXPECT_DOUBLE_EQ(t.headroom(4, 100), 6.5);     // cycle 4 + free tail
    EXPECT_DOUBLE_EQ(t.headroom(50, 10), 9.0);     // wholly past the horizon
}

TEST(tracker, headroom_is_the_largest_fitting_power)
{
    power_tracker t(9.0);
    t.reserve(0, 4, 2.7);
    t.reserve(1, 2, 3.3);
    for (int start = 0; start < 8; ++start)
        for (int duration = 0; duration <= 6; ++duration) {
            const double h = t.headroom(start, duration);
            EXPECT_TRUE(t.fits(start, duration, h))
                << "start " << start << " duration " << duration;
            // Anything meaningfully above the headroom must not fit.
            if (duration > 0 && start < t.profile().cycle_count() &&
                t.used(start) > 0.0) {
                EXPECT_FALSE(
                    t.fits(start, duration, h + 3 * power_tracker::tolerance));
            }
        }
}

TEST(tracker, headroom_with_unbounded_cap_is_infinite)
{
    power_tracker t(unbounded_power);
    t.reserve(0, 3, 100.0);
    EXPECT_EQ(t.headroom(0, 3), unbounded_power);
}

TEST(tracker, headroom_rejects_bad_intervals)
{
    const power_tracker t(9.0);
    EXPECT_THROW(t.headroom(-1, 2), error);
    EXPECT_THROW(t.headroom(0, -2), error);
}

TEST(tracker, headroom_matches_linear_scan_on_random_ledgers)
{
    std::mt19937_64 rng(20260808);
    for (int trial = 0; trial < 10; ++trial) {
        const double cap = 5.0 + 0.5 * static_cast<double>(trial);
        power_tracker t(cap);
        std::uniform_int_distribution<int> start_d(0, 50);
        std::uniform_int_distribution<int> dur_d(1, 6);
        std::uniform_real_distribution<double> pow_d(0.1, cap / 3.0);
        for (int step = 0; step < 60; ++step) {
            const int s = start_d(rng);
            const int d = dur_d(rng);
            const double p = pow_d(rng);
            if (t.fits(s, d, p)) t.reserve(s, d, p);
            const int qs = start_d(rng);
            const int qd = dur_d(rng) - 1;
            ASSERT_DOUBLE_EQ(t.headroom(qs, qd), linear_headroom(t, qs, qd))
                << "trial " << trial << " step " << step;
        }
    }
}

TEST(tracker, restore_interval_tolerates_captured_cycles_past_horizon)
{
    power_tracker t(5.0);
    t.reserve(0, 2, 2.0);
    // Capture reaches past the horizon; those cycles read as zero and
    // restoring them (without any intervening growth) is a no-op.
    const std::vector<double> saved = t.interval_values(1, 5);
    t.restore_interval(1, saved);
    EXPECT_DOUBLE_EQ(t.used(1), 2.0);
    EXPECT_EQ(t.profile().cycle_count(), 2);
}

} // namespace
} // namespace phls
