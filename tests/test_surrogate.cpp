// Property and fuzz tests for the surrogate-guided exploration stack.
//
// Two layers:
//
//   * linear_model — a differential oracle: the incremental updater must
//     match an independently coded closed-form least-squares solve on
//     the frozen design matrix to 1e-9, across randomised row streams,
//     row orders and feature scalings; non-finite rows are rejected
//     loudly.
//
//   * session::explore_guided — the identity contract ("surrogate
//     steers, never decides"): on deterministic grids and on randomised
//     spaces (grids, lists, cross, concat, 1-cell, duplicate-heavy) at
//     randomised margins and thread counts, the guided front must EQUAL
//     the eager front and the counters must partition the space
//     (computed + memo_served + skipped == size).  Plus the composition
//     and contract corners: refine+guided == refine+eager, binding eval
//     budgets, warm-start pretraining, sink exceptions, malformed
//     thread counts, option validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <stdexcept>
#include <vector>

#include "cdfg/benchmarks.h"
#include "cdfg/random_dag.h"
#include "dse/session.h"
#include "dse/surrogate.h"
#include "flow/flow.h"
#include "support/errors.h"

namespace phls {
namespace {

const module_library& lib()
{
    static const module_library l = table1_library();
    return l;
}

flow hal17() { return flow::on(make_hal()).with_library(lib()).latency(17); }

constexpr double nan_v = std::numeric_limits<double>::quiet_NaN();
constexpr double inf_v = std::numeric_limits<double>::infinity();

// ------------------------------------------------- differential oracle

/// Independently coded batch fit of the SAME standardised ridge
/// formulation linear_model implements: centre/scale from population
/// statistics of the frozen design matrix, solve
/// (C_ij / (s_i s_j) + lambda n I) w = b by Gauss-Jordan with partial
/// pivoting (deliberately not Cholesky).
struct batch_fit {
    std::vector<double> mean, scale, w;
    double ybar = 0.0;
};

batch_fit closed_form_ridge(const std::vector<std::vector<double>>& X,
                            const std::vector<double>& y, double lambda)
{
    const std::size_t n = X.size();
    const std::size_t d = X.front().size();
    batch_fit f;
    f.mean.assign(d, 0.0);
    f.scale.assign(d, 1.0);
    f.w.assign(d, 0.0);
    for (const std::vector<double>& row : X)
        for (std::size_t i = 0; i < d; ++i) f.mean[i] += row[i];
    for (std::size_t i = 0; i < d; ++i) f.mean[i] /= static_cast<double>(n);
    for (const double v : y) f.ybar += v;
    f.ybar /= static_cast<double>(n);

    // Centred Gram and cross-moments computed the direct (two-pass)
    // way, not from raw moments.
    std::vector<double> cov(d * d, 0.0);
    std::vector<double> b(d, 0.0);
    for (std::size_t k = 0; k < n; ++k)
        for (std::size_t i = 0; i < d; ++i) {
            const double xi = X[k][i] - f.mean[i];
            b[i] += xi * (y[k] - f.ybar);
            for (std::size_t j = 0; j < d; ++j)
                cov[i * d + j] += xi * (X[k][j] - f.mean[j]);
        }
    for (std::size_t i = 0; i < d; ++i) {
        const double var = std::max(0.0, cov[i * d + i] / static_cast<double>(n));
        const double s = std::sqrt(var);
        f.scale[i] = s > 1e-12 ? s : 1.0;
    }

    std::vector<double> a(d * (d + 1), 0.0); // augmented [A | b]
    for (std::size_t i = 0; i < d; ++i) {
        for (std::size_t j = 0; j < d; ++j)
            a[i * (d + 1) + j] = cov[i * d + j] / (f.scale[i] * f.scale[j]);
        a[i * (d + 1) + i] += lambda * static_cast<double>(n);
        a[i * (d + 1) + d] = b[i] / f.scale[i];
    }
    for (std::size_t col = 0; col < d; ++col) {
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < d; ++r)
            if (std::abs(a[r * (d + 1) + col]) > std::abs(a[pivot * (d + 1) + col]))
                pivot = r;
        for (std::size_t j = 0; j <= d; ++j)
            std::swap(a[col * (d + 1) + j], a[pivot * (d + 1) + j]);
        const double diag = a[col * (d + 1) + col];
        for (std::size_t r = 0; r < d; ++r) {
            if (r == col) continue;
            const double factor = a[r * (d + 1) + col] / diag;
            for (std::size_t j = col; j <= d; ++j)
                a[r * (d + 1) + j] -= factor * a[col * (d + 1) + j];
        }
    }
    for (std::size_t i = 0; i < d; ++i) f.w[i] = a[i * (d + 1) + d] / a[i * (d + 1) + i];
    return f;
}

double batch_predict(const batch_fit& f, const std::vector<double>& x)
{
    double mean = f.ybar;
    for (std::size_t i = 0; i < x.size(); ++i)
        mean += f.w[i] * (x[i] - f.mean[i]) / f.scale[i];
    return mean;
}

TEST(linear_model, matches_closed_form_least_squares_to_1e9)
{
    std::mt19937 rng(12345);
    std::uniform_real_distribution<double> unit(-1.0, 1.0);
    for (const std::size_t d : {2u, 5u, 8u}) {
        for (const std::size_t n : {5u, 37u, 200u}) {
            // Random design with wildly different column scales, random
            // true weights, small noise.
            std::vector<double> col_scale(d);
            for (double& s : col_scale)
                s = std::pow(10.0, std::floor(unit(rng) * 3.0));
            std::vector<double> truth(d);
            for (double& w : truth) w = unit(rng) * 2.0;
            std::vector<std::vector<double>> X;
            std::vector<double> y;
            for (std::size_t k = 0; k < n; ++k) {
                std::vector<double> x(d);
                double t = 0.5;
                for (std::size_t i = 0; i < d; ++i) {
                    x[i] = unit(rng) * col_scale[i];
                    t += truth[i] * x[i] / col_scale[i];
                }
                X.push_back(x);
                y.push_back(t + unit(rng) * 0.01);
            }

            const double lambda = 1e-6;
            dse::linear_model model(d, lambda);
            for (std::size_t k = 0; k < n; ++k) model.observe(X[k], y[k]);
            const batch_fit ref = closed_form_ridge(X, y, lambda);

            const std::vector<double> w = model.weights();
            ASSERT_EQ(w.size(), d);
            for (std::size_t i = 0; i < d; ++i)
                EXPECT_NEAR(w[i], ref.w[i], 1e-9 * (1.0 + std::abs(ref.w[i])))
                    << "d=" << d << " n=" << n << " i=" << i;
            for (std::size_t k = 0; k < std::min<std::size_t>(n, 16); ++k) {
                const double want = batch_predict(ref, X[k]);
                EXPECT_NEAR(model.predict(X[k]).mean, want,
                            1e-9 * (1.0 + std::abs(want)));
            }
        }
    }
}

TEST(linear_model, fit_is_invariant_to_row_order)
{
    std::mt19937 rng(99);
    std::uniform_real_distribution<double> unit(-1.0, 1.0);
    std::vector<std::vector<double>> X;
    std::vector<double> y;
    for (int k = 0; k < 64; ++k) {
        std::vector<double> x = {unit(rng), unit(rng) * 100.0, unit(rng) * 0.01};
        y.push_back(3.0 * x[0] - x[1] * 0.01 + unit(rng) * 0.1);
        X.push_back(std::move(x));
    }
    dse::linear_model in_order(3);
    for (std::size_t k = 0; k < X.size(); ++k) in_order.observe(X[k], y[k]);

    std::vector<std::size_t> perm(X.size());
    for (std::size_t k = 0; k < perm.size(); ++k) perm[k] = k;
    std::shuffle(perm.begin(), perm.end(), rng);
    dse::linear_model shuffled(3);
    for (const std::size_t k : perm) shuffled.observe(X[k], y[k]);

    const std::vector<double> a = in_order.weights();
    const std::vector<double> b = shuffled.weights();
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(a[i], b[i], 1e-9 * (1.0 + std::abs(a[i])));
    EXPECT_NEAR(in_order.residual_rms(), shuffled.residual_rms(),
                1e-9 * (1.0 + in_order.residual_rms()));
}

TEST(linear_model, column_rescaling_leaves_predictions_unchanged)
{
    // z-scoring makes the fit invariant to positive column rescaling:
    // scaling column j scales its mean and sd together, so the
    // standardised design is bit-for-bit the same maths.
    std::mt19937 rng(7);
    std::uniform_real_distribution<double> unit(-1.0, 1.0);
    std::vector<std::vector<double>> X;
    std::vector<double> y;
    for (int k = 0; k < 48; ++k) {
        std::vector<double> x = {unit(rng), unit(rng), unit(rng)};
        y.push_back(x[0] - 2.0 * x[1] + 0.5 * x[2] + unit(rng) * 0.05);
        X.push_back(std::move(x));
    }
    dse::linear_model plain(3);
    dse::linear_model scaled(3);
    const std::vector<double> factor = {1e3, 1.0, 1e-4};
    for (std::size_t k = 0; k < X.size(); ++k) {
        plain.observe(X[k], y[k]);
        std::vector<double> xs = X[k];
        for (std::size_t i = 0; i < xs.size(); ++i) xs[i] *= factor[i];
        scaled.observe(xs, y[k]);
    }
    for (std::size_t k = 0; k < X.size(); ++k) {
        std::vector<double> xs = X[k];
        for (std::size_t i = 0; i < xs.size(); ++i) xs[i] *= factor[i];
        const dse::prediction a = plain.predict(X[k]);
        const dse::prediction b = scaled.predict(xs);
        EXPECT_NEAR(a.mean, b.mean, 1e-9 * (1.0 + std::abs(a.mean)));
        EXPECT_NEAR(a.sigma, b.sigma, 1e-9 * (1.0 + a.sigma));
    }
}

TEST(linear_model, rejects_non_finite_rows_and_queries)
{
    dse::linear_model model(2);
    EXPECT_THROW(model.observe({nan_v, 1.0}, 0.0), error);
    EXPECT_THROW(model.observe({1.0, inf_v}, 0.0), error);
    EXPECT_THROW(model.observe({1.0, 1.0}, nan_v), error);
    EXPECT_THROW(model.observe({1.0, 1.0}, -inf_v), error);
    EXPECT_THROW(model.observe({1.0}, 0.0), error); // wrong arity
    model.observe({1.0, 2.0}, 3.0);
    EXPECT_EQ(model.rows(), 1u); // rejected rows were not folded in
    EXPECT_THROW(model.predict({nan_v, 1.0}), error);
    EXPECT_THROW(model.predict({1.0}), error);
}

TEST(linear_model, empty_and_degenerate_fits_keep_honest_sigma)
{
    dse::linear_model empty(2);
    EXPECT_TRUE(std::isinf(empty.predict({0.0, 0.0}).sigma));

    // Every target identical: RSS is 0 but the band must not collapse
    // below the prior floor.
    dse::linear_model flat(2, 1e-6, 0.5);
    for (int k = 0; k < 30; ++k)
        flat.observe({static_cast<double>(k), static_cast<double>(k % 5)}, 1.0);
    const dse::prediction p = flat.predict({3.0, 2.0});
    EXPECT_NEAR(p.mean, 1.0, 1e-6);
    EXPECT_GE(p.sigma, 0.5 / std::sqrt(30.0) * 0.99);

    // Extrapolating far off the training cloud must widen the band.
    const dse::prediction near = flat.predict({3.0, 2.0});
    const dse::prediction far = flat.predict({3000.0, 2000.0});
    EXPECT_GT(far.sigma, near.sigma);
}

TEST(surrogate, rejects_poisoned_training_rows)
{
    dse::surrogate s(lib(), false, {});
    metric_record ok_row;
    ok_row.constraints = {17, 8.0};
    ok_row.has_design = true;
    ok_row.peak = 5.0;
    ok_row.area = 400.0;
    s.train(ok_row);
    EXPECT_EQ(s.rows(), 1u);
    EXPECT_EQ(s.ok_rows(), 1u);

    metric_record bad = ok_row;
    bad.peak = nan_v;
    EXPECT_THROW(s.train(bad), error);
    bad = ok_row;
    bad.area = inf_v;
    EXPECT_THROW(s.train(bad), error);
    bad = ok_row;
    bad.has_lifetime = true;
    bad.lifetime_seconds = nan_v;
    EXPECT_THROW(dse::surrogate(lib(), true, {}).train(bad), error);

    // A *failed* row's metrics are never read, so garbage there is fine.
    metric_record failed;
    failed.st.code = status_code::infeasible;
    failed.constraints = {17, 0.5};
    s.train(failed);
    EXPECT_EQ(s.rows(), 2u);
    EXPECT_EQ(s.ok_rows(), 1u);
}

TEST(surrogate, readiness_needs_min_rows)
{
    dse::surrogate s(lib(), false, {1e-6, 4});
    metric_record row;
    row.constraints = {17, 8.0};
    row.has_design = true;
    row.peak = 5.0;
    row.area = 400.0;
    for (int k = 0; k < 3; ++k) {
        EXPECT_FALSE(s.ready());
        row.constraints.max_power = 4.0 + k;
        s.train(row);
    }
    EXPECT_FALSE(s.ready());
    row.constraints.max_power = 9.0;
    s.train(row);
    EXPECT_TRUE(s.ready());
    EXPECT_TRUE(s.predict({17, 6.0}).ready);

    EXPECT_THROW(dse::surrogate(lib(), false, {1e-6, 1}), error);  // min_rows < 2
    EXPECT_THROW(dse::surrogate(lib(), false, {0.0, 24}), error);  // ridge <= 0
}

TEST(surrogate, unbounded_caps_produce_finite_features)
{
    const dse::surrogate s(lib(), false, {});
    const std::vector<double> x = s.features({17, unbounded_power});
    for (const double v : x) EXPECT_TRUE(std::isfinite(v));
    // The ceiling keeps "no cap" ordered above every reachable cap.
    EXPECT_GT(x[1], s.features({17, 20.0})[1]);
}

// --------------------------------------------- guided == eager identity

/// Runs eager and guided sessions over `s` from the same prototype and
/// asserts the identity contract and the counter partition.
void expect_guided_identity(const flow& proto, const dse::space& s,
                            const dse::guided_options& go, int threads,
                            const char* what)
{
    dse::session eager(proto);
    const dse::explore_summary ref = eager.explore(s, {}, threads);

    dse::session guided(proto);
    const dse::guided_summary sum = guided.explore_guided(s, go, {}, threads);

    EXPECT_EQ(sum.front, ref.front) << what;
    EXPECT_EQ(sum.computed + sum.memo_served + sum.skipped, sum.space_size) << what;
    EXPECT_EQ(sum.evaluated, sum.computed + sum.memo_served) << what;
    EXPECT_EQ(sum.space_size, s.size()) << what;
}

TEST(guided, small_grid_below_min_train_is_byte_identical)
{
    // 12 points < min_train: the model never becomes ready, nothing is
    // pruned, and the walk degenerates to the eager one — at every
    // margin and thread count.
    const dse::space s = dse::grid({17, 19, 2}, {2.0, 9.0, 6});
    ASSERT_EQ(s.size(), 12u);
    for (const double margin : {0.0, 1.0, 3.0})
        for (const int threads : {1, 2}) {
            dse::guided_options go;
            go.margin = margin;
            expect_guided_identity(hal17(), s, go, threads, "small grid");
        }
}

TEST(guided, plane_fronts_identical_across_thread_counts)
{
    const dse::space s =
        dse::cross({17, 19, 21}, dse::power_range{2.0, 16.0, 40}.values());
    dse::guided_options go;
    go.batch = 32; // let pruning engage within 120 points
    for (const int threads : {1, 2, 8})
        expect_guided_identity(hal17(), s, go, threads, "hal plane");
}

TEST(guided, pruning_engages_and_preserves_the_front)
{
    // A single-T cap sweep long enough that the surrogate actually
    // skips most of it; the gate is that it skipped a lot AND changed
    // nothing.
    const dse::space s = dse::cross({17}, dse::power_range{2.0, 20.0, 400}.values());
    dse::session eager(hal17());
    const dse::explore_summary ref = eager.explore(s, {}, 2);

    dse::session guided(hal17());
    dse::guided_options go;
    go.batch = 64;
    const dse::guided_summary sum = guided.explore_guided(s, go, {}, 2);
    EXPECT_EQ(sum.front, ref.front);
    EXPECT_EQ(sum.computed + sum.memo_served + sum.skipped, sum.space_size);
    EXPECT_GT(sum.skipped, s.size() / 4) << "pruning never engaged";
    EXPECT_GT(sum.verified, 0u);
    EXPECT_GE(sum.rounds, 2u);
}

TEST(guided, property_fuzz_random_spaces_margins_threads)
{
    // Randomised spaces over random DAGs: grids, crosses,
    // duplicate-heavy lists, concatenations and 1-cell spaces, at
    // random margins in the gated regime (>= default) and 1/2/8
    // threads.  Everything is seeded: a failure reproduces exactly.
    std::mt19937 rng(20260808);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    const int threads_of[3] = {1, 2, 8};
    for (int draw = 0; draw < 6; ++draw) {
        random_dag_params params;
        params.operations = 8 + static_cast<int>(rng() % 8);
        params.inputs = 2 + static_cast<int>(rng() % 3);
        params.layers = 3 + static_cast<int>(rng() % 3);
        const graph g = random_dag(params, 1000 + draw);
        const int T = 6 + static_cast<int>(rng() % 12);
        const flow proto = flow::on(g).with_library(lib()).latency(T);

        dse::space s = dse::list({{T, 8.0}});
        const int kind = static_cast<int>(rng() % 5);
        if (kind == 0) {
            s = dse::grid({T, T + 3, 1}, {1.0 + unit(rng), 14.0, 10});
        } else if (kind == 1) {
            s = dse::cross({T, T + 2},
                           dse::power_range{2.0, 10.0 + 6.0 * unit(rng), 25}.values());
        } else if (kind == 2) {
            // Duplicate-heavy list: every point appears twice, plus an
            // unbounded-cap point.
            std::vector<synthesis_constraints> pts;
            for (int k = 0; k < 20; ++k)
                pts.push_back({T + static_cast<int>(rng() % 3),
                               1.0 + 12.0 * unit(rng)});
            pts.push_back({T, unbounded_power});
            const std::vector<synthesis_constraints> once = pts;
            pts.insert(pts.end(), once.begin(), once.end());
            s = dse::list(std::move(pts));
        } else if (kind == 3) {
            s = dse::concat(
                dse::cross({T}, dse::power_range{2.0, 9.0, 12}.values()),
                dse::grid({T + 1, T + 2, 1}, {3.0, 11.0, 8}));
        } // kind == 4: the 1-cell space above

        dse::guided_options go;
        go.margin = 3.0 + 3.0 * unit(rng);
        go.batch = 16 + rng() % 48;
        const int threads = threads_of[rng() % 3];
        const std::string what = "draw " + std::to_string(draw) + " kind " +
                                 std::to_string(kind) + " T " + std::to_string(T);
        SCOPED_TRACE(what);
        expect_guided_identity(proto, s, go, threads, what.c_str());
    }
}

TEST(guided, duplicate_points_are_served_from_the_memo)
{
    // Exact duplicates must not cost a second synthesis: the copy is
    // served whole by the report memo — in the evaluate() scan when its
    // round comes later, or inside run_point when twin and copy share a
    // batch — or pruned with its twin.  Front tie-breaking (lowest
    // index wins) must match the eager walk's exactly.
    std::vector<synthesis_constraints> pts;
    for (double cap : hal17().power_grid(30)) pts.push_back({17, cap});
    const std::vector<synthesis_constraints> once = pts;
    pts.insert(pts.end(), once.begin(), once.end());
    const dse::space s = dse::list(std::move(pts));

    dse::session eager(hal17());
    const dse::explore_summary ref = eager.explore(s, {}, 1);
    dse::session guided(hal17());
    dse::guided_options go;
    go.batch = 16;
    const dse::guided_summary sum = guided.explore_guided(s, go, {}, 1);
    EXPECT_EQ(sum.front, ref.front);
    EXPECT_EQ(sum.computed + sum.memo_served + sum.skipped, sum.space_size);
    EXPECT_GT(guided.cache()->stats().report_hits, 0)
        << "no duplicate was served from the report memo";
}

TEST(guided, refine_composes_with_guided_training)
{
    // refine+guided == refine+eager: the surrogate trains from every
    // corner refine evaluates but never overrides refine's own skip
    // decisions.
    const dse::space s =
        dse::refine({17, 19, 21}, dse::power_range{2.0, 16.0, 17}.values());
    dse::session eager(hal17());
    const dse::explore_summary ref = eager.explore(s, {}, 2);

    dse::session guided(hal17());
    const dse::guided_summary sum = guided.explore_guided(s, {}, {}, 2);
    EXPECT_EQ(sum.front, ref.front);
    EXPECT_EQ(sum.evaluated, ref.evaluated);
    EXPECT_EQ(sum.computed + sum.memo_served + sum.skipped, sum.space_size);
    EXPECT_GT(sum.trained_rows, 0u);
}

TEST(guided, binding_eval_budget_caps_exact_work)
{
    const dse::space s = dse::cross({17, 19}, dse::power_range{2.0, 18.0, 100}.values());
    dse::session session(hal17());
    dse::guided_options go;
    go.eval_budget = 30;
    go.batch = 16;
    const dse::guided_summary sum = session.explore_guided(s, go, {}, 1);
    EXPECT_LE(sum.computed, 30u);
    EXPECT_EQ(sum.computed + sum.memo_served + sum.skipped, sum.space_size);
    // The front over the evaluated subset is still a real front: every
    // point on it was exactly evaluated.
    for (const front_point& p : sum.front) EXPECT_LT(p.index, s.size());
}

TEST(guided, warm_session_serves_everything_from_the_memo)
{
    const dse::space s = dse::cross({17, 19}, dse::power_range{2.0, 14.0, 30}.values());
    dse::session session(hal17());
    const dse::explore_summary first = session.explore(s, {}, 2);

    // Same session, same space: the scan serves every point before the
    // guided loop starts, and pretraining sees the warm records.
    const dse::guided_summary sum = session.explore_guided(s, {}, {}, 2);
    EXPECT_EQ(sum.front, first.front);
    EXPECT_EQ(sum.memo_served, s.size());
    EXPECT_EQ(sum.computed, 0u);
    EXPECT_EQ(sum.skipped, 0u);
    EXPECT_GE(sum.trained_rows, s.size()); // pretraining folded the cache in
    EXPECT_EQ(sum.rounds, 0u);
}

TEST(guided, pretraining_can_be_disabled)
{
    const dse::space s = dse::cross({17}, dse::power_range{2.0, 14.0, 30}.values());
    dse::session session(hal17());
    session.explore(s, {}, 1);
    dse::guided_options go;
    go.pretrain_from_cache = false;
    const dse::guided_summary sum = session.explore_guided(s, go, {}, 1);
    EXPECT_EQ(sum.memo_served, s.size());
    // Without pretraining the scan's memo hits ARE the training rows.
    EXPECT_EQ(sum.trained_rows, s.size());
}

TEST(guided, malformed_thread_count_fails_every_point)
{
    // The run_batch contract: threads < 0 fails every point with
    // invalid_argument — guided must not prune or memo-serve around it.
    const dse::space s = dse::cross({17}, dse::power_range{2.0, 9.0, 8}.values());
    dse::session session(hal17());
    std::size_t failed = 0;
    dse::sink sk;
    sk.on_result = [&](std::size_t, const flow_report& r) {
        failed += r.st.code == status_code::invalid_argument ? 1 : 0;
    };
    const dse::guided_summary sum = session.explore_guided(s, {}, sk, -1);
    EXPECT_EQ(failed, s.size());
    EXPECT_EQ(sum.computed, s.size());
    EXPECT_EQ(sum.skipped, 0u);
}

TEST(guided, rejects_invalid_options)
{
    const dse::space s = dse::cross({17}, {8.0});
    dse::session session(hal17());
    dse::guided_options bad;
    bad.margin = -1.0;
    EXPECT_THROW(session.explore_guided(s, bad), error);
    bad = {};
    bad.batch = 0;
    EXPECT_THROW(session.explore_guided(s, bad), error);
    bad = {};
    bad.ridge = 0.0;
    EXPECT_THROW(session.explore_guided(s, bad), error);
    bad = {};
    bad.min_train = 1;
    EXPECT_THROW(session.explore_guided(s, bad), error);
}

TEST(guided, sink_exception_propagates_once_and_session_stays_usable)
{
    const dse::space s = dse::cross({17}, dse::power_range{2.0, 12.0, 20}.values());
    dse::session session(hal17());
    std::size_t delivered = 0;
    dse::sink sk;
    sk.on_result = [&](std::size_t, const flow_report&) {
        if (++delivered == 3) throw std::runtime_error("sink says no");
    };
    EXPECT_THROW(session.explore_guided(s, {}, sk, 1), std::runtime_error);
    EXPECT_EQ(delivered, 3u);

    // The session (and its cache) must stay consistent: a clean rerun
    // delivers the full space and the true front.
    dse::session fresh(hal17());
    const dse::explore_summary ref = fresh.explore(s, {}, 1);
    const dse::guided_summary sum = session.explore_guided(s, {}, {}, 1);
    EXPECT_EQ(sum.front, ref.front);
    EXPECT_EQ(sum.computed + sum.memo_served + sum.skipped, sum.space_size);
}

TEST(guided, front_throw_also_propagates)
{
    const dse::space s = dse::cross({17}, dse::power_range{2.0, 12.0, 20}.values());
    dse::session session(hal17());
    dse::sink sk;
    sk.on_front = [](const front_delta&) { throw std::runtime_error("front says no"); };
    EXPECT_THROW(session.explore_guided(s, {}, sk, 1), std::runtime_error);
}

} // namespace
} // namespace phls
