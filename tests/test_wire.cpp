// Tests for the serve wire format: golden frame bytes, primitive and
// payload round trips, the channel transport over pipes, and a
// malformed-frame fuzz loop asserting every mutation is rejected with a
// clean wire_error (never a crash, never silently-wrong data).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include <unistd.h>

#include "cdfg/benchmarks.h"
#include "dse/space.h"
#include "flow/flow.h"
#include "serve/wire.h"
#include "support/errors.h"

namespace phls {
namespace {

using namespace serve;

const module_library& lib()
{
    static const module_library l = table1_library();
    return l;
}

flow hal17() { return flow::on(make_hal()).with_library(lib()).latency(17); }

std::string bytes_of(std::initializer_list<unsigned> raw)
{
    std::string s;
    for (unsigned b : raw) s.push_back(static_cast<char>(b));
    return s;
}

/// Two connected channels over a pair of pipes: what `first` sends,
/// `second` receives and vice versa.
struct pipe_pair {
    channel first;
    channel second;
};

pipe_pair make_pipes()
{
    int ab[2];
    int ba[2];
    if (::pipe(ab) != 0 || ::pipe(ba) != 0) throw error("cannot create test pipes");
    return {channel(ba[0], ab[1]), channel(ab[0], ba[1])};
}

// ------------------------------------------------------- golden frames

// The on-wire byte layouts below are load-bearing: a server and client
// built from different checkouts must agree on them, so any layout
// drift has to show up as a failing golden test plus a version bump.

TEST(wire, golden_hello_frame)
{
    const std::string expected = bytes_of({
        0x50, 0x48, 0x4c, 0x53,       // magic "PHLS", little-endian u32
        0x01,                         // frame_type::hello
        0x04, 0x00, 0x00, 0x00,       // payload length 4
        0x01, 0x00, 0x00, 0x00,       // protocol version 1
        0xa2, 0x74, 0x6c, 0x30, 0x98, 0x9a, 0x59, 0x91, // fnv1a(payload)
    });
    EXPECT_EQ(encode_frame(frame_type::hello, encode_hello(1)), expected);
    EXPECT_EQ(wire_protocol_version, 1u);
}

TEST(wire, golden_reject_frame)
{
    const std::string expected = bytes_of({
        0x50, 0x48, 0x4c, 0x53,       // magic
        0x06,                         // frame_type::reject
        0x08, 0x00, 0x00, 0x00,       // payload length 8
        0x04, 0x00, 0x00, 0x00,       // string length 4
        0x6e, 0x6f, 0x70, 0x65,       // "nope"
        0x33, 0xbc, 0xf4, 0x38, 0x91, 0x7e, 0x30, 0x88, // fnv1a(payload)
    });
    EXPECT_EQ(encode_frame(frame_type::reject, encode_reject("nope")), expected);
    EXPECT_EQ(decode_reject(encode_reject("nope")).message, "nope");
}

TEST(wire, golden_bye_frame_is_empty_payload)
{
    const std::string expected = bytes_of({
        0x50, 0x48, 0x4c, 0x53,       // magic
        0x07,                         // frame_type::bye
        0x00, 0x00, 0x00, 0x00,       // payload length 0
        0x83, 0x03, 0x9d, 0x73, 0xb0, 0x0f, 0x65, 0x14, // fnv1a("")
    });
    EXPECT_EQ(encode_frame(frame_type::bye, ""), expected);
}

// -------------------------------------------------- primitive encoding

TEST(wire, writer_reader_round_trip_all_primitives)
{
    wire_writer w;
    w.u8(0xAB);
    w.u32(0xDEADBEEFu);
    w.u64(0x0123456789ABCDEFull);
    w.i32(-7);
    w.i64(-5'000'000'000ll);
    w.f64(2.75);
    w.str("hello wire");
    w.str("");
    const std::string payload = w.bytes();

    wire_reader r(payload);
    EXPECT_EQ(r.u8(), 0xAB);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.i32(), -7);
    EXPECT_EQ(r.i64(), -5'000'000'000ll);
    EXPECT_EQ(r.f64(), 2.75);
    EXPECT_EQ(r.str(), "hello wire");
    EXPECT_EQ(r.str(), "");
    EXPECT_EQ(r.remaining(), 0u);
    EXPECT_NO_THROW(r.expect_end());
    EXPECT_THROW(r.u8(), wire_error);
}

TEST(wire, doubles_travel_as_canonical_cache_key_bits)
{
    // The wire reuses the memo-key normalisation: -0.0 folds into +0.0
    // and every NaN becomes the one canonical NaN, so a round-tripped
    // point hits exactly the cache entry its local twin would.
    const double specials[] = {0.0, -0.0, 1e-300, -1e300,
                               std::numeric_limits<double>::infinity(),
                               -std::numeric_limits<double>::infinity(),
                               std::numeric_limits<double>::quiet_NaN(),
                               unbounded_power};
    for (const double v : specials) {
        wire_writer w;
        w.f64(v);
        wire_reader r(w.bytes());
        const double back = r.f64();
        if (std::isnan(v)) {
            EXPECT_TRUE(std::isnan(back));
        } else if (v == 0.0) {
            EXPECT_FALSE(std::signbit(back)); // -0.0 normalised
        } else {
            EXPECT_EQ(back, v);
        }
        // Stability: re-encoding the decoded value is byte-identical.
        wire_writer w2;
        w2.f64(back);
        EXPECT_EQ(w2.bytes(), w.bytes());
    }
}

TEST(wire, reader_rejects_leftover_and_overrun)
{
    wire_writer w;
    w.u32(5);
    const std::string payload = w.bytes();
    {
        wire_reader r(payload);
        EXPECT_THROW(r.expect_end(), wire_error); // unconsumed bytes
    }
    {
        wire_reader r(payload);
        (void)r.u32();
        EXPECT_THROW(r.u32(), wire_error); // read past the end
    }
    {
        // A string whose length prefix points past the payload.
        wire_writer bad;
        bad.u32(1000);
        const std::string bp = bad.bytes();
        wire_reader r(bp);
        EXPECT_THROW(r.str(), wire_error);
    }
}

// ------------------------------------------------- payload round trips

metric_record sample_metrics()
{
    metric_record m;
    m.st = status::infeasible("power cap too tight");
    m.strategy = "greedy";
    m.constraints = {19, 6.5};
    m.has_design = true;
    m.optimal = false;
    m.note = "locked after 3 merges";
    m.area = 331.0;
    m.peak = 5.9;
    m.latency = 18;
    m.has_lifetime = true;
    m.lifetime_seconds = 1234.5;
    m.battery_alpha = 42.0;
    return m;
}

TEST(wire, report_frame_round_trip)
{
    const metric_record m = sample_metrics();
    const std::string payload = encode_report(77, m);
    const report_frame f = decode_report(payload);
    EXPECT_EQ(f.index, 77u);
    EXPECT_EQ(f.metrics.st.code, m.st.code);
    EXPECT_EQ(f.metrics.st.message, m.st.message);
    EXPECT_EQ(f.metrics.strategy, m.strategy);
    EXPECT_EQ(f.metrics.constraints.latency, m.constraints.latency);
    EXPECT_EQ(f.metrics.constraints.max_power, m.constraints.max_power);
    EXPECT_EQ(f.metrics.has_design, m.has_design);
    EXPECT_EQ(f.metrics.optimal, m.optimal);
    EXPECT_EQ(f.metrics.note, m.note);
    EXPECT_EQ(f.metrics.area, m.area);
    EXPECT_EQ(f.metrics.peak, m.peak);
    EXPECT_EQ(f.metrics.latency, m.latency);
    EXPECT_EQ(f.metrics.has_lifetime, m.has_lifetime);
    EXPECT_EQ(f.metrics.lifetime_seconds, m.lifetime_seconds);
    EXPECT_EQ(f.metrics.battery_alpha, m.battery_alpha);
    // Canonical: re-encoding the decoded frame is byte-identical.
    EXPECT_EQ(encode_report(f.index, f.metrics), payload);
}

TEST(wire, front_delta_round_trip)
{
    front_delta d;
    d.index = 12;
    d.entered.push_back({12, 17, 7.5, 230.0, 6.4, 17, false, 0.0});
    d.left.push_back({3, 17, 7.5, 260.0, 6.4, 17, true, 99.5});
    d.left.push_back({5, 19, 8.0, 231.0, 7.9, 19, false, 0.0});
    const std::string payload = encode_front(d);
    const front_delta back = decode_front(payload);
    EXPECT_EQ(back.index, d.index);
    ASSERT_EQ(back.entered.size(), 1u);
    ASSERT_EQ(back.left.size(), 2u);
    EXPECT_TRUE(back.entered[0] == d.entered[0]);
    EXPECT_TRUE(back.left[0] == d.left[0]);
    EXPECT_TRUE(back.left[1] == d.left[1]);
    EXPECT_EQ(encode_front(back), payload);
}

TEST(wire, done_frame_round_trip)
{
    done_frame d;
    d.space_size = 120;
    d.evaluated = 120;
    d.feasible = 88;
    d.metric_served = 60;
    d.counters = {10, 2, 30, 4, 50, 6, 7};
    d.front.push_back({0, 17, 5.5, 200.0, 5.4, 17, false, 0.0});
    d.front.push_back({7, 17, 9.5, 150.0, 9.0, 17, false, 0.0});
    const std::string payload = encode_done(d);
    const done_frame back = decode_done(payload);
    EXPECT_EQ(back.space_size, d.space_size);
    EXPECT_EQ(back.evaluated, d.evaluated);
    EXPECT_EQ(back.feasible, d.feasible);
    EXPECT_EQ(back.metric_served, d.metric_served);
    EXPECT_EQ(back.counters.hits, 10);
    EXPECT_EQ(back.counters.misses, 2);
    EXPECT_EQ(back.counters.committed_hits, 30);
    EXPECT_EQ(back.counters.committed_misses, 4);
    EXPECT_EQ(back.counters.report_hits, 50);
    EXPECT_EQ(back.counters.report_misses, 6);
    EXPECT_EQ(back.counters.metric_hits, 7);
    ASSERT_EQ(back.front.size(), 2u);
    EXPECT_TRUE(back.front[0] == d.front[0]);
    EXPECT_TRUE(back.front[1] == d.front[1]);
    EXPECT_EQ(encode_done(back), payload);
}

TEST(wire, job_round_trip_preserves_the_whole_problem)
{
    flow proto = hal17().power_cap(7.5).emit_netlist().estimate_lifetime({});
    const dse::space sp = dse::cross({17, 19, 21}, {5.5, 7.5, 9.5});
    job_request job = make_job(proto, sp);
    job.threads = 3;
    job.save_cache_path = "/tmp/some.phlscache";

    const std::string payload = encode_job(job);
    const job_request back = decode_job(payload);

    EXPECT_EQ(back.graph_text, job.graph_text);
    EXPECT_EQ(back.library_text, job.library_text);
    EXPECT_EQ(back.synthesizer, job.synthesizer);
    EXPECT_EQ(back.scheduler, job.scheduler);
    EXPECT_EQ(back.want_netlist, true);
    EXPECT_EQ(back.want_lifetime, true);
    EXPECT_EQ(back.threads, 3);
    EXPECT_EQ(back.save_cache_path, job.save_cache_path);
    // The space survives point-for-point with its indices.
    ASSERT_EQ(back.space.size(), sp.size());
    for (std::size_t i = 0; i < sp.size(); ++i) {
        EXPECT_EQ(back.space.at(i).latency, sp.at(i).latency) << i;
        EXPECT_EQ(back.space.at(i).max_power, sp.at(i).max_power) << i;
    }
    // Canonical encoding: decode-then-encode is byte-identical.
    EXPECT_EQ(encode_job(back), payload);
    // The rebuilt flow runs the same problem: same fingerprint per point.
    const flow rebuilt = job_flow(back);
    EXPECT_EQ(rebuilt.fingerprint({17, 7.5}), proto.fingerprint({17, 7.5}));
}

TEST(wire, job_round_trip_with_list_space_and_nondefault_options)
{
    flow proto = hal17();
    synthesis_options so;
    so.policy = prospect_policy::cheapest_fit;
    so.try_both_prospects = false;
    so.enable_backtrack_lock = false;
    so.allow_cheapest_rebind = false;
    so.max_merge_attempts = 12;
    proto.options(so);
    const std::vector<synthesis_constraints> points = {
        {17, 5.5}, {17, unbounded_power}, {21, 9.25}};
    job_request job = make_job(proto, dse::list(points));

    const job_request back = decode_job(encode_job(job));
    EXPECT_EQ(back.options.policy, prospect_policy::cheapest_fit);
    EXPECT_FALSE(back.options.try_both_prospects);
    EXPECT_FALSE(back.options.enable_backtrack_lock);
    EXPECT_FALSE(back.options.allow_cheapest_rebind);
    EXPECT_EQ(back.options.max_merge_attempts, 12);
    ASSERT_EQ(back.space.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(back.space.at(i).latency, points[i].latency) << i;
        EXPECT_EQ(back.space.at(i).max_power, points[i].max_power) << i;
    }
}

TEST(wire, random_metric_records_round_trip_canonically)
{
    std::mt19937 rng(20260808u);
    std::uniform_real_distribution<double> dbl(-1e6, 1e6);
    std::uniform_int_distribution<int> small(0, 40);
    for (int iter = 0; iter < 200; ++iter) {
        metric_record m;
        m.st = (iter % 3 == 0) ? status::success()
                               : status::infeasible(std::to_string(small(rng)) + " over");
        m.strategy = (iter % 2) ? "greedy" : "exact";
        m.constraints = {small(rng), dbl(rng)};
        m.has_design = (iter % 2) != 0;
        m.optimal = (iter % 5) == 0;
        m.note = std::string(static_cast<std::size_t>(small(rng)), 'x');
        m.area = dbl(rng);
        m.peak = dbl(rng);
        m.latency = small(rng);
        m.has_lifetime = (iter % 4) == 0;
        m.lifetime_seconds = dbl(rng);
        m.battery_alpha = dbl(rng);
        const std::string payload = encode_report(static_cast<std::uint64_t>(iter), m);
        const report_frame back = decode_report(payload);
        EXPECT_EQ(encode_report(back.index, back.metrics), payload) << iter;
    }
}

// ------------------------------------------------------------ channel

TEST(wire, channel_frames_round_trip_over_pipes)
{
    pipe_pair p = make_pipes();
    p.first.send(frame_type::report, encode_report(5, sample_metrics()));
    p.first.send(frame_type::bye, "");
    const std::optional<channel::frame> f1 = p.second.recv();
    ASSERT_TRUE(f1.has_value());
    EXPECT_EQ(f1->type, frame_type::report);
    EXPECT_EQ(decode_report(f1->payload).index, 5u);
    const std::optional<channel::frame> f2 = p.second.recv();
    ASSERT_TRUE(f2.has_value());
    EXPECT_EQ(f2->type, frame_type::bye);
    EXPECT_TRUE(f2->payload.empty());
}

TEST(wire, clean_eof_at_frame_boundary_is_nullopt)
{
    pipe_pair p = make_pipes();
    p.first.send(frame_type::bye, "");
    p.first.close();
    EXPECT_TRUE(p.second.recv().has_value());  // the bye
    EXPECT_FALSE(p.second.recv().has_value()); // then clean EOF
}

TEST(wire, hello_handshake_and_version_mismatch)
{
    {
        pipe_pair p = make_pipes();
        send_hello(p.first);
        EXPECT_EQ(expect_hello(p.second), wire_protocol_version);
    }
    {
        pipe_pair p = make_pipes();
        p.first.send(frame_type::hello, encode_hello(99));
        EXPECT_THROW(expect_hello(p.second), wire_error);
    }
    {
        // A non-hello opening frame is a handshake failure too.
        pipe_pair p = make_pipes();
        p.first.send(frame_type::bye, "");
        EXPECT_THROW(expect_hello(p.second), wire_error);
    }
}

void expect_recv_rejects(const std::string& raw)
{
    pipe_pair p = make_pipes();
    p.first.send_raw(raw);
    p.first.close(); // no more bytes: a short read becomes EOF, not a hang
    EXPECT_THROW(p.second.recv(), wire_error) << "raw bytes accepted";
}

TEST(wire, malformed_frames_are_rejected_cleanly)
{
    const std::string good = encode_frame(frame_type::hello, encode_hello(1));

    expect_recv_rejects(good.substr(0, 3));  // header cut mid-magic
    expect_recv_rejects(good.substr(0, 10)); // payload cut short
    expect_recv_rejects(good.substr(0, good.size() - 2)); // checksum cut short

    std::string bad_magic = good;
    bad_magic[0] = 'X';
    expect_recv_rejects(bad_magic);

    std::string bad_type = good;
    bad_type[4] = 0;
    expect_recv_rejects(bad_type);
    bad_type[4] = 99;
    expect_recv_rejects(bad_type);

    std::string oversized = good;
    // Length field of 0x7FFFFFFF: rejected before any allocation.
    oversized[5] = '\xff';
    oversized[6] = '\xff';
    oversized[7] = '\xff';
    oversized[8] = '\x7f';
    expect_recv_rejects(oversized);

    std::string bad_payload = good;
    bad_payload[9] ^= 0x01; // checksum no longer matches
    expect_recv_rejects(bad_payload);

    std::string bad_checksum = good;
    bad_checksum.back() = static_cast<char>(bad_checksum.back() ^ 0x40);
    expect_recv_rejects(bad_checksum);
}

TEST(wire, fuzzed_frame_mutations_never_crash_the_receiver)
{
    // Every single-byte mutation of a real job frame must either be
    // caught by the transport (bad magic / type / length / checksum) or
    // decode to *something* without undefined behaviour.  With a
    // checksummed payload the transport catches all payload flips, so
    // the decoder only ever sees intact payloads here.
    const job_request job = make_job(hal17(), dse::cross({17, 19}, {5.5, 7.5}));
    const std::string good = encode_frame(frame_type::job, encode_job(job));

    for (std::size_t i = 0; i < good.size(); i += (i < 64 ? 1 : 17)) {
        std::string mutated = good;
        mutated[i] = static_cast<char>(mutated[i] ^ 0x5A);
        pipe_pair p = make_pipes();
        p.first.send_raw(mutated);
        p.first.close();
        try {
            const std::optional<channel::frame> f = p.second.recv();
            if (f && f->type == frame_type::job) (void)decode_job(f->payload);
        } catch (const error&) {
            // rejected cleanly -- the expected outcome for most flips
        }
    }
}

TEST(wire, fuzzed_payload_truncations_never_crash_the_decoder)
{
    // Truncation slips past the framing when the length and checksum
    // are recomputed (a buggy or hostile peer): every decoder must then
    // fail its bounds checks, not read stale memory.
    const job_request job = make_job(hal17(), dse::list({{17, 5.5}, {19, 7.5}}));
    const std::string payload = encode_job(job);
    for (std::size_t n = 0; n < payload.size(); n += (n < 64 ? 1 : 13)) {
        const std::string cut = payload.substr(0, n);
        EXPECT_THROW((void)decode_job(cut), error) << "length " << n;
    }
    const std::string report = encode_report(3, sample_metrics());
    for (std::size_t n = 0; n < report.size(); ++n)
        EXPECT_THROW((void)decode_report(report.substr(0, n)), error) << n;
    // Trailing garbage after a complete payload is rejected too.
    EXPECT_THROW((void)decode_report(report + "x"), error);
    EXPECT_THROW((void)decode_job(payload + std::string(1, '\0')), error);
}

} // namespace
} // namespace phls
