// Tests for the paper's core algorithm: pasap (power-constrained ASAP)
// and its time-reversed dual palap, including property sweeps over
// random DAGs and the committed-operator (fixed-start) machinery the
// clique partitioner relies on.
#include <gtest/gtest.h>

#include "cdfg/benchmarks.h"
#include "cdfg/random_dag.h"
#include "power/tracker.h"
#include "sched/asap_alap.h"
#include "sched/mobility.h"
#include "sched/pasap.h"
#include "support/errors.h"

namespace phls {
namespace {

const module_library& lib()
{
    static const module_library l = table1_library();
    return l;
}

TEST(pasap, unconstrained_cap_reproduces_classic_asap)
{
    const graph g = make_hal();
    const module_assignment a = fastest_assignment(g, lib(), unbounded_power);
    const pasap_result r = pasap(g, lib(), a, unbounded_power);
    ASSERT_TRUE(r.feasible);
    const schedule classic = asap_schedule(g, lib(), a);
    for (node_id v : g.nodes()) EXPECT_EQ(r.sched.start(v), classic.start(v)) << g.label(v);
}

TEST(pasap, respects_the_cap_and_stays_valid)
{
    const graph g = make_hal();
    const module_assignment a = fastest_assignment(g, lib(), unbounded_power);
    for (double cap : {30.0, 20.0, 12.0, 9.0}) {
        const pasap_result r = pasap(g, lib(), a, cap);
        ASSERT_TRUE(r.feasible) << cap;
        EXPECT_NO_THROW(validate_schedule(g, lib(), r.sched, -1, cap)) << cap;
    }
}

TEST(pasap, latency_grows_monotonically_as_the_cap_tightens)
{
    const graph g = make_cosine();
    const module_assignment a = fastest_assignment(g, lib(), unbounded_power);
    int last = 0;
    for (double cap : {80.0, 40.0, 25.0, 18.0, 12.0}) {
        const pasap_result r = pasap(g, lib(), a, cap);
        ASSERT_TRUE(r.feasible) << cap;
        const int latency = r.sched.latency(lib());
        EXPECT_GE(latency, last) << cap;
        last = latency;
    }
}

TEST(pasap, infeasible_when_an_operator_exceeds_the_cap)
{
    const graph g = make_hal();
    const module_assignment a = fastest_assignment(g, lib(), unbounded_power);
    const pasap_result r = pasap(g, lib(), a, 5.0); // parallel mult needs 8.1
    EXPECT_FALSE(r.feasible);
    EXPECT_NE(r.reason.find("power"), std::string::npos);
}

TEST(pasap, both_pick_orders_produce_valid_schedules)
{
    const graph g = make_elliptic();
    const module_assignment a = fastest_assignment(g, lib(), 6.0);
    for (pasap_order order : {pasap_order::topological, pasap_order::critical_path}) {
        pasap_options opts;
        opts.order = order;
        const pasap_result r = pasap(g, lib(), a, 6.0, opts);
        ASSERT_TRUE(r.feasible);
        EXPECT_NO_THROW(validate_schedule(g, lib(), r.sched, -1, 6.0));
    }
}

TEST(pasap, fixed_operators_are_honoured)
{
    const graph g = make_hal();
    const module_assignment a = fastest_assignment(g, lib(), unbounded_power);
    pasap_options opts;
    opts.fixed_starts.assign(static_cast<std::size_t>(g.node_count()), -1);
    const node_id m1 = *g.find("m1");
    opts.fixed_starts[m1.index()] = 5; // delay 3*x beyond its ASAP slot
    const pasap_result r = pasap(g, lib(), a, unbounded_power, opts);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.sched.start(m1), 5);
    EXPECT_NO_THROW(validate_schedule(g, lib(), r.sched));
    // Its consumer m4 must wait for it.
    EXPECT_GE(r.sched.start(*g.find("m4")), 7);
}

TEST(pasap, fixed_reservations_count_against_the_cap)
{
    // Two independent multiplies, cap admits one at a time; fixing one at
    // cycle 1 forces the other out of [1,3).
    graph g("two_mults");
    const node_id x = g.add_node(op_kind::input, "x");
    const node_id m1 = g.add_node(op_kind::mult, "m1");
    const node_id m2 = g.add_node(op_kind::mult, "m2");
    const node_id o1 = g.add_node(op_kind::output, "o1");
    const node_id o2 = g.add_node(op_kind::output, "o2");
    g.add_edge(x, m1);
    g.add_edge(x, m2);
    g.add_edge(m1, o1);
    g.add_edge(m2, o2);
    const module_assignment a = fastest_assignment(g, lib(), unbounded_power);

    pasap_options opts;
    opts.fixed_starts.assign(5, -1);
    opts.fixed_starts[m1.index()] = 1;
    const pasap_result r = pasap(g, lib(), a, 9.0, opts); // one 8.1 mult max
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.sched.start(m1), 1);
    EXPECT_GE(r.sched.start(m2), 3);
}

TEST(pasap, detects_commitments_that_delete_a_free_operator)
{
    // Fixing the consumer so early that its producer cannot finish first
    // must be reported, not silently scheduled.
    const graph g = make_hal();
    const module_assignment a = fastest_assignment(g, lib(), unbounded_power);
    pasap_options opts;
    opts.fixed_starts.assign(static_cast<std::size_t>(g.node_count()), -1);
    opts.fixed_starts[g.find("m4")->index()] = 1; // m4 needs m1,m2 done first
    const pasap_result r = pasap(g, lib(), a, unbounded_power, opts);
    EXPECT_FALSE(r.feasible);
    EXPECT_FALSE(r.reason.empty());
}

TEST(pasap, detects_fixed_fixed_precedence_violations)
{
    const graph g = make_hal();
    const module_assignment a = fastest_assignment(g, lib(), unbounded_power);
    pasap_options opts;
    opts.fixed_starts.assign(static_cast<std::size_t>(g.node_count()), -1);
    opts.fixed_starts[g.find("m1")->index()] = 1;
    opts.fixed_starts[g.find("m4")->index()] = 2; // overlaps m1's execution
    const pasap_result r = pasap(g, lib(), a, unbounded_power, opts);
    EXPECT_FALSE(r.feasible);
    EXPECT_NE(r.reason.find("committed"), std::string::npos);
}

TEST(palap, anchors_the_schedule_at_the_latency_bound)
{
    const graph g = make_hal();
    const module_assignment a = fastest_assignment(g, lib(), unbounded_power);
    const pasap_result r = palap(g, lib(), a, unbounded_power, 17);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.sched.latency(lib()), 17); // some sink touches the bound
    EXPECT_NO_THROW(validate_schedule(g, lib(), r.sched, 17));
}

TEST(palap, unconstrained_matches_classic_alap)
{
    const graph g = make_elliptic();
    const module_assignment a = fastest_assignment(g, lib(), unbounded_power);
    const pasap_result r = palap(g, lib(), a, unbounded_power, 25);
    ASSERT_TRUE(r.feasible);
    const schedule classic = alap_schedule(g, lib(), a, 25);
    ASSERT_TRUE(classic.complete());
    for (node_id v : g.nodes()) EXPECT_EQ(r.sched.start(v), classic.start(v)) << g.label(v);
}

TEST(palap, infeasible_when_the_bound_is_below_the_power_stretched_length)
{
    const graph g = make_hal();
    const module_assignment a = fastest_assignment(g, lib(), 9.0);
    // Under a 9.0 cap only one parallel mult runs at a time; 8 cycles
    // cannot hold the serialised schedule.
    const pasap_result r = palap(g, lib(), a, 9.0, 8);
    EXPECT_FALSE(r.feasible);
}

TEST(palap, rejects_commitments_beyond_the_bound)
{
    const graph g = make_hal();
    const module_assignment a = fastest_assignment(g, lib(), unbounded_power);
    pasap_options opts;
    opts.fixed_starts.assign(static_cast<std::size_t>(g.node_count()), -1);
    opts.fixed_starts[g.find("m1")->index()] = 16; // finish 18 > 17
    const pasap_result r = palap(g, lib(), a, unbounded_power, 17, opts);
    EXPECT_FALSE(r.feasible);
    EXPECT_NE(r.reason.find("latency"), std::string::npos);
}

TEST(power_windows, pasap_times_are_a_complete_witness)
{
    const graph g = make_cosine();
    const module_assignment a = fastest_assignment(g, lib(), 20.0);
    const time_windows w = power_windows(g, lib(), a, 20.0, 18);
    ASSERT_TRUE(w.feasible) << w.reason;
    schedule s(g.node_count());
    for (node_id v : g.nodes()) {
        s.set_module(v, a[v.index()]);
        s.set_start(v, w.s_min[v.index()]);
        EXPECT_LE(w.s_min[v.index()], w.s_max[v.index()]);
    }
    EXPECT_NO_THROW(validate_schedule(g, lib(), s, 18, 20.0));
}

TEST(power_windows, infeasible_when_pasap_overruns_the_bound)
{
    const graph g = make_hal();
    const module_assignment a = fastest_assignment(g, lib(), 9.0);
    const time_windows w = power_windows(g, lib(), a, 9.0, 9);
    EXPECT_FALSE(w.feasible);
    EXPECT_NE(w.reason.find("latency"), std::string::npos);
}

TEST(classic_windows, pins_collapse_and_propagate)
{
    const graph g = make_hal();
    const module_assignment a = fastest_assignment(g, lib(), unbounded_power);
    std::vector<int> fixed(static_cast<std::size_t>(g.node_count()), -1);
    fixed[g.find("m4")->index()] = 5;
    const time_windows w = classic_windows(g, lib(), a, 17, fixed);
    ASSERT_TRUE(w.feasible) << w.reason;
    EXPECT_EQ(w.s_min[g.find("m4")->index()], 5);
    EXPECT_EQ(w.s_max[g.find("m4")->index()], 5);
    // s1 consumes m4: cannot start before 7.
    EXPECT_GE(w.s_min[g.find("s1")->index()], 7);
}

TEST(classic_windows, inconsistent_pins_are_reported)
{
    const graph g = make_hal();
    const module_assignment a = fastest_assignment(g, lib(), unbounded_power);
    std::vector<int> fixed(static_cast<std::size_t>(g.node_count()), -1);
    fixed[g.find("m4")->index()] = 0; // before its producers can finish
    const time_windows w = classic_windows(g, lib(), a, 17, fixed);
    EXPECT_FALSE(w.feasible);
}

// ---- Property sweep: pasap/palap on random DAGs across caps. ----

struct pasap_property_case {
    std::uint64_t seed;
    double cap;
};

class pasap_property : public ::testing::TestWithParam<pasap_property_case> {};

TEST_P(pasap_property, produces_valid_capped_schedules_or_honest_failures)
{
    random_dag_params params;
    params.operations = 24;
    params.inputs = 4;
    const graph g = random_dag(params, GetParam().seed);
    const module_assignment a = fastest_assignment(g, lib(), GetParam().cap);
    if (a.empty()) return; // cap below the kind minimum: nothing to test

    const pasap_result lo = pasap(g, lib(), a, GetParam().cap);
    ASSERT_TRUE(lo.feasible) << lo.reason;
    EXPECT_NO_THROW(validate_schedule(g, lib(), lo.sched, -1, GetParam().cap));

    // palap with a 2x margin over pasap's length must also succeed and
    // give each op at least its pasap freedom.
    const int bound = 2 * lo.sched.latency(lib());
    const pasap_result hi = palap(g, lib(), a, GetParam().cap, bound);
    ASSERT_TRUE(hi.feasible) << hi.reason;
    EXPECT_NO_THROW(validate_schedule(g, lib(), hi.sched, bound, GetParam().cap));
}

INSTANTIATE_TEST_SUITE_P(
    sweeps, pasap_property,
    ::testing::Values(pasap_property_case{1, 9.0}, pasap_property_case{1, 15.0},
                      pasap_property_case{2, 6.0}, pasap_property_case{2, 30.0},
                      pasap_property_case{3, 9.0}, pasap_property_case{4, 12.0},
                      pasap_property_case{5, 6.0}, pasap_property_case{6, 20.0},
                      pasap_property_case{7, 9.0}, pasap_property_case{8, 8.1},
                      pasap_property_case{9, 5.2}, pasap_property_case{10, 11.0},
                      pasap_property_case{11, 7.5}, pasap_property_case{12, 25.0},
                      pasap_property_case{13, 9.0}, pasap_property_case{14, 6.0},
                      pasap_property_case{15, 16.2}, pasap_property_case{16, 10.0}),
    [](const ::testing::TestParamInfo<pasap_property_case>& info) {
        return "seed" + std::to_string(info.param.seed) + "_cap" +
               std::to_string(static_cast<int>(info.param.cap * 10));
    });

} // namespace
} // namespace phls
