// End-to-end tests: the full synthesis pipeline on the paper benchmarks
// at the paper's latency constraints, across power caps, with every
// result checked by the independent verifier.
#include <gtest/gtest.h>

#include "cdfg/analysis.h"
#include "cdfg/benchmarks.h"
#include "flow/flow.h"
#include "synth/explore.h"
#include "synth/synthesizer.h"
#include "synth/two_step.h"
#include "synth/verify.h"

namespace phls {
namespace {

struct bench_case {
    const char* name;
    int latency;
};

class integration : public ::testing::TestWithParam<bench_case> {};

TEST_P(integration, unconstrained_power_synthesis_is_feasible_and_valid)
{
    const graph g = benchmark_by_name(GetParam().name);
    const module_library lib = table1_library();
    const synthesis_result r = synthesize(g, lib, {GetParam().latency, unbounded_power});
    ASSERT_TRUE(r.feasible) << r.reason;
    EXPECT_TRUE(verify_datapath(g, lib, r.dp, {GetParam().latency, unbounded_power},
                                synthesis_options{}.costs)
                    .empty());
    EXPECT_LE(r.dp.latency(lib), GetParam().latency);
    EXPECT_GT(r.dp.area.total(), 0.0);
}

TEST_P(integration, power_caps_are_respected_and_area_grows_as_cap_tightens)
{
    const graph g = benchmark_by_name(GetParam().name);
    const module_library lib = table1_library();
    const int T = GetParam().latency;

    const synthesis_result unconstrained = synthesize(g, lib, {T, unbounded_power});
    ASSERT_TRUE(unconstrained.feasible) << unconstrained.reason;
    const double peak0 = unconstrained.dp.peak_power(lib);

    // Sweep caps downward from the unconstrained peak; every feasible
    // design must respect its cap.
    double last_feasible_cap = -1.0;
    for (double cap : {peak0, peak0 * 0.8, peak0 * 0.6, peak0 * 0.4, peak0 * 0.25}) {
        const synthesis_result r = synthesize(g, lib, {T, cap});
        if (!r.feasible) continue;
        EXPECT_LE(r.dp.peak_power(lib), cap + power_tracker::tolerance)
            << GetParam().name << " cap " << cap;
        EXPECT_LE(r.dp.latency(lib), T);
        last_feasible_cap = cap;
    }
    // At least the peak-of-unconstrained cap must be feasible.
    EXPECT_GE(last_feasible_cap, 0.0);
}

TEST_P(integration, infeasible_below_minimum_operator_power)
{
    const graph g = benchmark_by_name(GetParam().name);
    const module_library lib = table1_library();
    // Below the cheapest module power of some used kind nothing schedules.
    const synthesis_result r = synthesize(g, lib, {GetParam().latency, 0.1});
    EXPECT_FALSE(r.feasible);
    EXPECT_FALSE(r.reason.empty());
}

INSTANTIATE_TEST_SUITE_P(paper_benchmarks, integration,
                         ::testing::Values(bench_case{"hal", 10}, bench_case{"hal", 17},
                                           bench_case{"cosine", 12}, bench_case{"cosine", 15},
                                           bench_case{"cosine", 19},
                                           bench_case{"elliptic", 22}),
                         [](const ::testing::TestParamInfo<bench_case>& info) {
                             return std::string(info.param.name) + "_T" +
                                    std::to_string(info.param.latency);
                         });

TEST(integration_extra, extension_benchmarks_synthesise_and_verify)
{
    const module_library lib = table1_library();
    for (const std::string& name : {std::string("fir16"), std::string("ar_lattice"),
                                    std::string("iir_biquad"), std::string("fft8")}) {
        const graph g = benchmark_by_name(name);
        const module_assignment fast = fastest_assignment(g, lib, unbounded_power);
        const int cp = critical_path_length(
            g, [&](node_id v) { return lib.module(fast[v.index()]).latency; });
        const int T = cp + cp / 2;
        const synthesis_result probe = synthesize(g, lib, {T, unbounded_power});
        ASSERT_TRUE(probe.feasible) << name << ": " << probe.reason;
        const double cap = 0.7 * probe.dp.peak_power(lib);
        const synthesis_result r = synthesize(g, lib, {T, cap});
        if (!r.feasible) continue; // tight cap may be genuinely infeasible
        const auto violations =
            verify_datapath(g, lib, r.dp, {T, cap}, synthesis_options{}.costs);
        EXPECT_TRUE(violations.empty()) << name << ": " << violations.front();
    }
}

TEST(integration_extra, two_step_baseline_runs_on_hal)
{
    const graph g = make_hal();
    const module_library lib = table1_library();
    const two_step_result r = two_step_synthesize(g, lib, {17, 12.0});
    ASSERT_TRUE(r.feasible) << r.reason;
    EXPECT_LE(r.peak_after, r.peak_before + power_tracker::tolerance);
}

TEST(integration_extra, power_sweep_areas_are_monotone_in_cap_on_hal)
{
    const graph g = make_hal();
    const module_library lib = table1_library();
    const flow f = flow::on(g).with_library(lib).latency(17);
    std::vector<synthesis_constraints> grid;
    for (double cap : f.power_grid(8)) grid.push_back({17, cap});
    std::vector<sweep_point> pts;
    for (const flow_report& r : f.run_batch(grid)) pts.push_back(to_sweep_point(r));
    ASSERT_EQ(pts.size(), grid.size());
    // Not strictly monotone (heuristic), but the loosest cap should not
    // be more expensive than the tightest feasible one.
    double tight_area = -1.0, loose_area = -1.0;
    for (const sweep_point& p : pts)
        if (p.feasible) {
            if (tight_area < 0.0) tight_area = p.area;
            loose_area = p.area;
        }
    ASSERT_GE(tight_area, 0.0);
    EXPECT_LE(loose_area, tight_area + 1e-9);
}

} // namespace
} // namespace phls
