// Tests for the independent verifier: every class of violation must be
// detected when a valid datapath is corrupted.
#include <gtest/gtest.h>

#include "cdfg/benchmarks.h"
#include "support/errors.h"
#include "synth/synthesizer.h"
#include "synth/verify.h"

namespace phls {
namespace {

struct fixture {
    graph g = make_hal();
    module_library lib = table1_library();
    synthesis_constraints constraints{17, 7.0};
    cost_model costs;
    datapath dp;

    fixture()
    {
        const synthesis_result r = synthesize(g, lib, constraints);
        if (!r.feasible) throw error("fixture synthesis failed: " + r.reason);
        dp = r.dp;
    }

    bool mentions(const std::string& needle) const
    {
        for (const std::string& v : verify_datapath(g, lib, dp, constraints, costs))
            if (v.find(needle) != std::string::npos) return true;
        return false;
    }
};

TEST(verify, clean_on_a_valid_design)
{
    fixture f;
    EXPECT_TRUE(verify_datapath(f.g, f.lib, f.dp, f.constraints, f.costs).empty());
    EXPECT_NO_THROW(check_datapath(f.g, f.lib, f.dp, f.constraints, f.costs));
}

TEST(verify, detects_unbound_operations)
{
    fixture f;
    f.dp.instance_of[f.g.find("m1")->index()] = -1;
    EXPECT_TRUE(f.mentions("unbound"));
}

TEST(verify, detects_dependency_violations)
{
    fixture f;
    f.dp.sched.set_start(*f.g.find("s2"), 0);
    EXPECT_TRUE(f.mentions("dependency violated"));
}

TEST(verify, detects_latency_violations)
{
    fixture f;
    f.constraints.latency = f.dp.latency(f.lib) - 1;
    EXPECT_TRUE(f.mentions("latency"));
}

TEST(verify, detects_power_violations)
{
    fixture f;
    f.constraints.max_power = f.dp.peak_power(f.lib) - 0.1;
    EXPECT_TRUE(f.mentions("peak power"));
}

TEST(verify, detects_instance_overlap)
{
    fixture f;
    // Find an instance with two ops and collide them.
    for (const fu_instance& inst : f.dp.instances) {
        if (inst.ops.size() < 2) continue;
        // Move the second op onto the first (both times equal) while
        // keeping dependencies plausible by picking independent ops:
        f.dp.sched.set_start(inst.ops[1], f.dp.sched.start(inst.ops[0]));
        break;
    }
    const auto violations = verify_datapath(f.g, f.lib, f.dp, f.constraints, f.costs);
    EXPECT_FALSE(violations.empty());
}

TEST(verify, detects_module_mismatch)
{
    fixture f;
    // Flip one instance's module to something that cannot run its ops.
    for (fu_instance& inst : f.dp.instances) {
        if (f.g.kind(inst.ops.front()) == op_kind::mult) {
            inst.module = *f.lib.find("add");
            break;
        }
    }
    const auto violations = verify_datapath(f.g, f.lib, f.dp, f.constraints, f.costs);
    EXPECT_FALSE(violations.empty());
}

TEST(verify, detects_stale_area_bookkeeping)
{
    fixture f;
    f.dp.area.fu += 100.0;
    EXPECT_TRUE(f.mentions("area"));
}

TEST(verify, detects_cross_linked_instance_lists)
{
    fixture f;
    // Duplicate an op into another instance's list.
    ASSERT_GE(f.dp.instances.size(), 2u);
    f.dp.instances[0].ops.push_back(f.dp.instances[1].ops.front());
    const auto violations = verify_datapath(f.g, f.lib, f.dp, f.constraints, f.costs);
    EXPECT_FALSE(violations.empty());
}

TEST(verify, check_datapath_throws_with_all_violations)
{
    fixture f;
    f.dp.area.fu += 100.0;
    f.constraints.latency = 1;
    try {
        check_datapath(f.g, f.lib, f.dp, f.constraints, f.costs);
        FAIL();
    } catch (const error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("area"), std::string::npos);
        EXPECT_NE(what.find("latency"), std::string::npos);
    }
}

} // namespace
} // namespace phls
