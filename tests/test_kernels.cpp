// Byte-identity of the optimised synthesis kernels against the
// retained reference implementations, across the kernel_knobs()
// ablation matrix: skip-ahead power probing, incremental candidate
// maintenance, undo-log rollback, the SoA synthesis arena, dense
// power probing and intra-point parallel scoring must change wall
// time only -- never a schedule, a datapath, a counter or a
// diagnostic.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cdfg/analysis.h"
#include "cdfg/benchmarks.h"
#include "cdfg/random_dag.h"
#include "flow/flow.h"
#include "support/kernels.h"
#include "support/strings.h"
#include "synth/synthesizer.h"

namespace phls {
namespace {

const module_library& lib()
{
    static const module_library l = table1_library();
    return l;
}

/// Restores the global knobs on scope exit so tests cannot leak state.
struct knob_guard {
    kernel_tuning saved = kernel_knobs();
    ~knob_guard() { kernel_knobs() = saved; }
};

kernel_tuning all_reference()
{
    kernel_tuning k;
    k.skip_probe = false;
    k.incremental_candidates = false;
    k.undo_log = false;
    k.soa_arena = false;
    k.dense_power = false;
    k.intra_threads = 1;
    return k;
}

/// Canonical rendering of a synthesis result: the full datapath report
/// (instances, binding, times, area) plus every heuristic counter.
std::string render(const graph& g, const synthesis_result& r)
{
    std::string out = r.feasible ? "feasible\n" : "infeasible: " + r.reason + '\n';
    if (r.feasible) out += r.dp.report(g, lib());
    out += strf("merges=%d pair=%d join=%d rejected=%d recomputes=%d locked=%d "
                "lock_at=%d rebinds=%d fallbacks=%d\n",
                r.stats.merges, r.stats.pair_merges, r.stats.join_merges,
                r.stats.rejected, r.stats.window_recomputes, r.stats.locked ? 1 : 0,
                r.stats.merges_before_lock, r.stats.finalize_rebinds,
                r.stats.finalize_fallbacks);
    return out;
}

std::string run_with(const kernel_tuning& knobs, const graph& g,
                     const synthesis_constraints& c, const synthesis_options& o = {})
{
    const knob_guard guard;
    kernel_knobs() = knobs;
    return render(g, synthesize(g, lib(), c, o));
}

TEST(kernels, paper_benchmarks_identical_across_every_knob)
{
    for (const auto& [name, T] : {std::pair<const char*, int>{"hal", 17},
                                  {"cosine", 15}, {"elliptic", 22}}) {
        const graph g = benchmark_by_name(name);
        // From generous to infeasibly tight, crossing the backtrack-lock
        // and rejection regimes.
        for (const double cap : {unbounded_power, 40.0, 12.0, 7.1, 5.0, 2.3}) {
            const synthesis_constraints c{T, cap};
            const std::string reference = run_with(all_reference(), g, c);
            EXPECT_EQ(run_with(kernel_tuning{}, g, c), reference)
                << name << " cap " << cap << ": all-optimised diverges";
            for (int knob = 0; knob < 6; ++knob) {
                kernel_tuning k; // one optimisation toggled at a time
                if (knob == 0) k.skip_probe = false;
                if (knob == 1) k.incremental_candidates = false;
                if (knob == 2) k.undo_log = false;
                if (knob == 3) k.soa_arena = false;
                if (knob == 4) k.dense_power = false;
                if (knob == 5) k.intra_threads = 8;
                EXPECT_EQ(run_with(k, g, c), reference)
                    << name << " cap " << cap << ": knob " << knob << " diverges";
            }
        }
    }
}

TEST(kernels, option_variants_identical_across_knobs)
{
    const graph g = make_cosine();
    std::vector<synthesis_options> variants(4);
    variants[1].lock_from_start = true;
    variants[2].enable_backtrack_lock = false;
    variants[3].allow_cheapest_rebind = false;
    variants[3].order = pasap_order::topological;
    for (std::size_t i = 0; i < variants.size(); ++i) {
        for (const double cap : {9.0, 5.5, 3.0}) {
            const synthesis_constraints c{16, cap};
            EXPECT_EQ(run_with(kernel_tuning{}, g, c, variants[i]),
                      run_with(all_reference(), g, c, variants[i]))
                << "variant " << i << " cap " << cap;
        }
    }
}

TEST(kernels, cross_check_validates_incremental_store_on_random_dags)
{
    // cross_check makes the merge loop run BOTH candidate paths and
    // throw on any divergence, decision for decision -- a much finer
    // probe than comparing final outputs.
    const knob_guard guard;
    kernel_knobs() = kernel_tuning{};
    kernel_knobs().cross_check = true;

    for (const std::uint64_t seed : {1ull, 7ull, 23ull, 101ull}) {
        random_dag_params params;
        params.operations = 26;
        params.inputs = 4;
        const graph g = random_dag(params, seed);
        const module_assignment fast = fastest_assignment(g, lib(), unbounded_power);
        const int cp = critical_path_length(
            g, [&](node_id v) { return lib().module(fast[v.index()]).latency; });

        const synthesis_result probe = synthesize(g, lib(), {cp + 6, unbounded_power});
        ASSERT_TRUE(probe.feasible) << probe.reason;
        for (const double scale : {1.0, 0.7, 0.45}) {
            const double cap = scale * probe.dp.peak_power(lib());
            const synthesis_result r = synthesize(g, lib(), {cp + 6, cap});
            if (r.feasible) {
                EXPECT_GE(r.stats.merges, 0);
            }
        }
    }
}

TEST(kernels, random_dags_identical_across_knobs)
{
    for (const std::uint64_t seed : {3ull, 12ull, 64ull}) {
        random_dag_params params;
        params.operations = 32;
        params.inputs = 5;
        params.layers = 6;
        const graph g = random_dag(params, seed);
        const module_assignment fast = fastest_assignment(g, lib(), unbounded_power);
        const int cp = critical_path_length(
            g, [&](node_id v) { return lib().module(fast[v.index()]).latency; });
        for (const double cap : {30.0, 11.0, 6.0}) {
            const synthesis_constraints c{cp + 5, cap};
            EXPECT_EQ(run_with(kernel_tuning{}, g, c), run_with(all_reference(), g, c))
                << "seed " << seed << " cap " << cap;
        }
    }
}

TEST(kernels, truncated_merge_loop_identical_across_knobs)
{
    // bench_kernels compares the kernels over an attempt-bounded prefix;
    // that prefix must itself be byte-identical between the paths.
    const graph g = make_elliptic();
    synthesis_options o;
    o.verify_result = false; // a truncated loop may miss the area target
    for (const int attempts : {0, 1, 4, 9}) {
        o.max_merge_attempts = attempts;
        EXPECT_EQ(run_with(kernel_tuning{}, g, {22, 20.0}, o),
                  run_with(all_reference(), g, {22, 20.0}, o))
            << "attempt cap " << attempts;
    }
}

TEST(kernels, thousand_op_dag_identical_across_every_knob)
{
    // Mid-scale anchor for the large-graph path: a 1000-op DAG from the
    // bench_kernels synthetic family, attempt-bounded, compared against
    // the seed-era reference for the all-optimised default, each
    // optimisation toggled alone, and the PR-5 kernel set (incremental
    // store without the SoA arena).
    random_dag_params params;
    params.operations = 1000;
    params.inputs = 83; // the bench family's n/12 input ratio
    params.layers = 10;
    params.mult_fraction = 0.0;
    const graph g = random_dag(params, 777 + 1000);
    const module_assignment fast = fastest_assignment(g, lib(), unbounded_power);
    const int cp = critical_path_length(
        g, [&](node_id v) { return lib().module(fast[v.index()]).latency; });

    synthesis_options o;
    o.lock_from_start = true;
    o.try_both_prospects = false;
    o.verify_result = false; // a truncated loop may miss the area target
    o.max_merge_attempts = 2;
    const synthesis_constraints c{cp + 4, unbounded_power};

    const std::string reference = run_with(all_reference(), g, c, o);
    EXPECT_EQ(run_with(kernel_tuning{}, g, c, o), reference) << "all-optimised";
    for (int knob = 0; knob < 6; ++knob) {
        kernel_tuning k;
        if (knob == 0) k.skip_probe = false;
        if (knob == 1) k.incremental_candidates = false;
        if (knob == 2) k.undo_log = false;
        if (knob == 3) { // the PR-5 kernel set
            k.soa_arena = false;
            k.dense_power = false;
        }
        if (knob == 4) k.dense_power = false;
        if (knob == 5) k.intra_threads = 8;
        EXPECT_EQ(run_with(k, g, c, o), reference) << "knob " << knob;
    }
}

TEST(kernels, ten_k_op_dag_identical_across_threads)
{
    // The data-oriented rewrite targets graphs two orders of magnitude
    // beyond the paper benchmarks.  Run an attempt-bounded prefix of the
    // merge loop on a 10k-operation DAG and demand byte-identity between
    // the seed-era reference kernels and the SoA arena path at 1, 2 and
    // 8 intra-point threads.  (The PR-5 kernel set is compared against
    // the arena path at this scale by bench_kernels' 10k-op row; the
    // mid-scale anchor above covers it in-suite.)
    random_dag_params params;
    params.operations = 10000;
    params.inputs = 833; // the bench family's n/12 input ratio
    params.layers = 10;
    params.mult_fraction = 0.0;
    const graph g = random_dag(params, 777 + 10000);
    const module_assignment fast = fastest_assignment(g, lib(), unbounded_power);
    const int cp = critical_path_length(
        g, [&](node_id v) { return lib().module(fast[v.index()]).latency; });

    synthesis_options o;
    o.lock_from_start = true;
    o.try_both_prospects = false;
    o.verify_result = false; // a truncated loop may miss the area target
    o.max_merge_attempts = 2;
    const synthesis_constraints c{cp + 4, unbounded_power};

    const std::string reference = run_with(all_reference(), g, c, o);
    for (const int threads : {1, 2, 8}) {
        kernel_tuning k;
        k.intra_threads = threads;
        EXPECT_EQ(run_with(k, g, c, o), reference)
            << threads << " intra-point threads diverge on the 10k-op DAG";
    }
}

TEST(kernels, cross_check_validates_arena_scoring_on_random_dags)
{
    // Like the incremental-store fuzz above, but aimed at the SoA arena
    // and the parallel scorer: cross_check re-runs the reference
    // enumeration (arena detached) after every rebuild and accept, so a
    // single mis-scored combo anywhere in a run aborts the synthesis.
    const knob_guard guard;
    for (const int threads : {1, 8}) {
        kernel_knobs() = kernel_tuning{};
        kernel_knobs().cross_check = true;
        kernel_knobs().intra_threads = threads;
        for (const std::uint64_t seed : {5ull, 41ull, 97ull}) {
            random_dag_params params;
            params.operations = 30;
            params.inputs = 5;
            params.mult_fraction = seed % 2 == 0 ? 0.3 : 0.0;
            const graph g = random_dag(params, seed);
            const module_assignment fast =
                fastest_assignment(g, lib(), unbounded_power);
            const int cp = critical_path_length(
                g, [&](node_id v) { return lib().module(fast[v.index()]).latency; });

            const synthesis_result probe =
                synthesize(g, lib(), {cp + 5, unbounded_power});
            ASSERT_TRUE(probe.feasible) << probe.reason;
            for (const double scale : {1.0, 0.55}) {
                const double cap = scale * probe.dp.peak_power(lib());
                const synthesis_result r = synthesize(g, lib(), {cp + 5, cap});
                if (r.feasible) {
                    EXPECT_GE(r.stats.merges, 0);
                }
            }
        }
    }
}

TEST(kernels, eight_thread_batch_identical_across_knobs)
{
    const graph g = make_hal();
    const flow f = flow::on(g).with_library(lib()).latency(17);
    std::vector<synthesis_constraints> grid;
    for (const double cap : f.power_grid(16)) grid.push_back({17, cap});

    const knob_guard guard;
    kernel_knobs() = all_reference();
    const std::vector<flow_report> reference = f.run_batch(grid, 1);

    for (const bool cached : {true, false}) {
        for (const int threads : {1, 8}) {
            kernel_knobs() = kernel_tuning{};
            const flow fo =
                flow::on(g).with_library(lib()).latency(17).caching(cached);
            const std::vector<flow_report> reports = fo.run_batch(grid, threads);
            ASSERT_EQ(reports.size(), reference.size());
            for (std::size_t i = 0; i < reports.size(); ++i)
                EXPECT_EQ(reports[i].to_string(), reference[i].to_string())
                    << "cached " << cached << " threads " << threads << " point " << i;
        }
    }
}

TEST(kernels, two_step_strategy_identical_across_knobs)
{
    const graph g = make_cosine();
    const knob_guard guard;
    std::vector<std::string> outputs;
    for (const bool optimised : {false, true}) {
        kernel_knobs() = optimised ? kernel_tuning{} : all_reference();
        outputs.push_back(flow::on(g)
                              .with_library(lib())
                              .latency(15)
                              .power_cap(20.0)
                              .synthesizer("two_step")
                              .run()
                              .to_string());
    }
    EXPECT_EQ(outputs[0], outputs[1]);
}

} // namespace
} // namespace phls
