// Tests for serve::explore_sharded — the hard gate of the distributed
// service: however a space is cut (shard counts, threads vs forked
// subprocess workers), the merged global front is IDENTICAL to what a
// single-process dse::session::explore produces, and the per-shard
// cache files union into a cache whose replay behaviour matches the
// single warm cache.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include <sys/stat.h>

#include "cdfg/benchmarks.h"
#include "dse/session.h"
#include "flow/explore_cache.h"
#include "flow/flow.h"
#include "serve/shard.h"
#include "support/errors.h"

namespace phls {
namespace {

const module_library& lib()
{
    static const module_library l = table1_library();
    return l;
}

flow hal17() { return flow::on(make_hal()).with_library(lib()).latency(17); }

/// A duplicate-heavy point list: every grid point appears twice.
std::vector<synthesis_constraints> duplicated_grid(int points)
{
    std::vector<synthesis_constraints> grid;
    for (double cap : hal17().power_grid(points)) grid.push_back({17, cap});
    const std::vector<synthesis_constraints> once = grid;
    grid.insert(grid.end(), once.begin(), once.end());
    return grid;
}

/// A fresh scratch directory under the test temp root.
std::string scratch_dir(const char* name)
{
    const std::string dir = std::string(::testing::TempDir()) + name;
    ::mkdir(dir.c_str(), 0755);
    return dir;
}

std::vector<front_point> reference_front(const std::vector<synthesis_constraints>& grid)
{
    dse::session session(hal17());
    return session.explore(dse::list(grid), {}, 1).front;
}

void expect_same_front(const std::vector<front_point>& got,
                       const std::vector<front_point>& want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_TRUE(got[i] == want[i]) << "front point " << i;
}

// ------------------------------------------------------- front identity

TEST(shard, every_shard_count_lands_on_the_single_process_front)
{
    const std::vector<synthesis_constraints> grid = duplicated_grid(5);
    const std::vector<front_point> want = reference_front(grid);

    for (const int shards : {1, 2, 8}) {
        serve::shard_options opts;
        opts.shards = shards;
        const serve::shard_summary sum =
            serve::explore_sharded(hal17(), dse::list(grid), opts);
        EXPECT_EQ(sum.space_size, grid.size()) << shards << " shards";
        EXPECT_EQ(sum.evaluated, grid.size()) << shards << " shards";
        expect_same_front(sum.front, want);
    }
}

TEST(shard, threads_mode_delivers_byte_identical_reports_at_global_indices)
{
    const std::vector<synthesis_constraints> grid = duplicated_grid(4);
    const std::vector<flow_report> reference = hal17().run_batch(grid, 1);

    std::vector<flow_report> got(grid.size());
    std::set<std::size_t> seen;
    dse::sink sk;
    sk.on_result = [&](std::size_t i, const flow_report& r) {
        ASSERT_LT(i, got.size());
        EXPECT_TRUE(seen.insert(i).second) << "index " << i << " delivered twice";
        got[i] = r;
    };
    serve::shard_options opts;
    opts.shards = 3;
    serve::explore_sharded(hal17(), dse::list(grid), opts, sk);

    ASSERT_EQ(seen.size(), grid.size());
    // Cold shard sessions compute full reports; at its global index each
    // one is byte-identical to the sequential single-process sweep.
    for (std::size_t i = 0; i < grid.size(); ++i)
        EXPECT_EQ(got[i].to_string(), reference[i].to_string()) << i;
}

TEST(shard, forked_subprocess_workers_produce_the_same_front)
{
    const std::vector<synthesis_constraints> grid = duplicated_grid(4);
    const std::vector<flow_report> reference = hal17().run_batch(grid, 1);
    const std::vector<front_point> want = reference_front(grid);

    std::vector<flow_report> got(grid.size());
    dse::sink sk;
    sk.on_result = [&](std::size_t i, const flow_report& r) {
        ASSERT_LT(i, got.size());
        got[i] = r;
    };
    serve::shard_options opts;
    opts.shards = 3;
    opts.processes = true;
    const serve::shard_summary sum =
        serve::explore_sharded(hal17(), dse::list(grid), opts, sk);

    EXPECT_EQ(sum.evaluated, grid.size());
    expect_same_front(sum.front, want);
    // Subprocess reports crossed the wire, so they are metric-only — but
    // the metrics themselves are exact.
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_EQ(got[i].st.code, reference[i].st.code) << i;
        if (!reference[i].st.ok()) continue;
        EXPECT_EQ(got[i].area, reference[i].area) << i;
        EXPECT_EQ(got[i].peak, reference[i].peak) << i;
        EXPECT_EQ(got[i].latency, reference[i].latency) << i;
    }
}

TEST(shard, more_shards_than_points_still_works)
{
    const std::vector<synthesis_constraints> grid = {{17, 5.5}, {17, 7.5}, {17, 9.5}};
    const std::vector<front_point> want = reference_front(grid);
    serve::shard_options opts;
    opts.shards = 8;
    const serve::shard_summary sum =
        serve::explore_sharded(hal17(), dse::list(grid), opts);
    EXPECT_EQ(sum.evaluated, grid.size());
    expect_same_front(sum.front, want);
}

TEST(shard, adaptive_spaces_are_rejected)
{
    serve::shard_options opts;
    opts.shards = 2;
    EXPECT_THROW(serve::explore_sharded(
                     hal17(), dse::refine({17, 19, 21}, {5.5, 7.5, 9.5}), opts),
                 error);
    opts.shards = 0;
    EXPECT_THROW(serve::explore_sharded(hal17(), dse::list({{17, 5.5}}), opts), error);
}

// --------------------------------------------------- mergeable caches

TEST(shard, per_shard_cache_files_union_into_the_single_warm_cache)
{
    const std::vector<synthesis_constraints> grid = duplicated_grid(4);

    // Reference warm behaviour: one session computes everything, saves,
    // and a fresh session loaded from that file serves every point at
    // the metric level.
    const std::string single_path =
        std::string(::testing::TempDir()) + "shard_single.phlscache";
    std::vector<flow_report> reference(grid.size());
    {
        dse::session session(hal17());
        dse::sink sk;
        sk.on_result = [&](std::size_t i, const flow_report& r) { reference[i] = r; };
        session.explore(dse::list(grid), sk, 1);
        session.save(single_path);
    }
    dse::session single_warm(hal17());
    single_warm.load(single_path);
    const dse::explore_summary single_replay = single_warm.explore(dse::list(grid), {}, 1);
    EXPECT_EQ(single_replay.metric_served, grid.size());

    // Sharded sweep persisting one cache file per shard.
    const std::string dir = scratch_dir("shard_caches");
    serve::shard_options opts;
    opts.shards = 3;
    opts.cache_dir = dir;
    const serve::shard_summary sum =
        serve::explore_sharded(hal17(), dse::list(grid), opts);
    ASSERT_EQ(sum.cache_files.size(), 3u);

    // session::merge unions the shard files; replaying the whole grid
    // then behaves exactly like the single warm cache: every point is
    // served from metrics, none recomputed, same answers, same front.
    dse::session merged(hal17());
    std::size_t merged_records = 0;
    for (const std::string& path : sum.cache_files) merged_records += merged.merge(path);
    EXPECT_GT(merged_records, 0u);

    std::vector<flow_report> replay(grid.size());
    dse::sink sk;
    sk.on_result = [&](std::size_t i, const flow_report& r) { replay[i] = r; };
    const dse::explore_summary warm = merged.explore(dse::list(grid), sk, 1);
    EXPECT_EQ(warm.metric_served, single_replay.metric_served);
    EXPECT_EQ(warm.evaluated, grid.size());
    expect_same_front(warm.front, single_replay.front);
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_EQ(replay[i].st.code, reference[i].st.code) << i;
        if (!reference[i].st.ok()) continue;
        EXPECT_EQ(replay[i].area, reference[i].area) << i;
        EXPECT_EQ(replay[i].peak, reference[i].peak) << i;
    }

    // Merging a file twice adds nothing new.
    EXPECT_EQ(merged.merge(sum.cache_files[0]), 0u);

    std::remove(single_path.c_str());
    for (const std::string& path : sum.cache_files) std::remove(path.c_str());
}

// ------------------------------------------------------- guided shards

TEST(shard, guided_shards_land_on_the_single_process_front)
{
    // Per-shard surrogates prune locally; the merged front must still
    // equal the single-process eager front, and the summed counters
    // must partition the space (memo serves are evaluated - computed).
    std::vector<synthesis_constraints> grid;
    for (int T : {17, 19, 21})
        for (double cap : hal17().power_grid(40)) grid.push_back({T, cap});
    const std::vector<front_point> want = reference_front(grid);

    for (const int shards : {1, 3}) {
        serve::shard_options opts;
        opts.shards = shards;
        opts.threads_per_shard = 2;
        opts.guided = true;
        const serve::shard_summary sum =
            serve::explore_sharded(hal17(), dse::list(grid), opts);
        expect_same_front(sum.front, want);
        EXPECT_EQ(sum.evaluated + sum.skipped, grid.size()) << shards << " shards";
        EXPECT_LE(sum.computed, sum.evaluated) << shards << " shards";
    }
}

TEST(shard, guided_rejects_forked_workers)
{
    serve::shard_options opts;
    opts.shards = 2;
    opts.processes = true;
    opts.guided = true;
    EXPECT_THROW(
        serve::explore_sharded(hal17(), dse::list(duplicated_grid(4)), opts), error);
}

TEST(shard, guided_per_shard_budget_caps_each_shard)
{
    std::vector<synthesis_constraints> grid;
    for (double cap : hal17().power_grid(60)) grid.push_back({17, cap});
    serve::shard_options opts;
    opts.shards = 2;
    opts.guided = true;
    opts.eval_budget = 10; // per shard
    const serve::shard_summary sum =
        serve::explore_sharded(hal17(), dse::list(grid), opts);
    EXPECT_LE(sum.computed, 2u * 10u);
    EXPECT_EQ(sum.evaluated + sum.skipped, grid.size());
}

TEST(shard, merge_files_combines_shard_caches_into_one_loadable_file)
{
    // Six DISTINCT caps: the two shards see disjoint point sets, so
    // every record each shard file contributes is novel at merge time.
    std::vector<synthesis_constraints> grid;
    for (double cap : hal17().power_grid(6)) grid.push_back({17, cap});
    const std::string dir = scratch_dir("shard_merge_files");
    serve::shard_options opts;
    opts.shards = 2;
    opts.cache_dir = dir;
    const serve::shard_summary sum =
        serve::explore_sharded(hal17(), dse::list(grid), opts);
    ASSERT_EQ(sum.cache_files.size(), 2u);

    const std::string out = dir + "/merged.phlscache";
    const cache_merge_stats stats = explore_cache::merge_files(out, sum.cache_files);
    ASSERT_EQ(stats.inputs.size(), 2u);
    EXPECT_GT(stats.committed_total, 0u);
    EXPECT_GT(stats.metric_total, 0u);
    // Disjoint shards: every input record is novel at merge time.
    for (const cache_merge_stats::input& in : stats.inputs) {
        EXPECT_EQ(in.new_committed, in.committed) << in.path;
        EXPECT_EQ(in.new_metrics, in.metrics) << in.path;
    }

    dse::session warm(hal17());
    EXPECT_GT(warm.load(out), 0u);
    const dse::explore_summary replay = warm.explore(dse::list(grid), {}, 1);
    EXPECT_EQ(replay.metric_served, grid.size());
    expect_same_front(replay.front, sum.front);

    std::remove(out.c_str());
    for (const std::string& path : sum.cache_files) std::remove(path.c_str());
}

} // namespace
} // namespace phls
