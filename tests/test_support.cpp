// Unit tests for the support module: strings, tables, csv, ids, rng.
#include <gtest/gtest.h>

#include "support/csv.h"
#include "support/errors.h"
#include "support/ids.h"
#include "support/rng.h"
#include "support/strings.h"
#include "support/table.h"

namespace phls {
namespace {

TEST(strings, strf_formats_like_printf)
{
    EXPECT_EQ(strf("a%db", 7), "a7b");
    EXPECT_EQ(strf("%.2f", 1.5), "1.50");
    EXPECT_EQ(strf("%s-%s", "x", "y"), "x-y");
    EXPECT_EQ(strf("plain"), "plain");
}

TEST(strings, trim_removes_surrounding_whitespace)
{
    EXPECT_EQ(trim("  a b  "), "a b");
    EXPECT_EQ(trim("\t\nx\r "), "x");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(strings, split_on_separator_keeps_empty_pieces)
{
    const std::vector<std::string> parts = split("a, b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
}

TEST(strings, split_ws_drops_empty_pieces)
{
    const std::vector<std::string> parts = split_ws("  a \t b\nc  ");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
}

TEST(strings, split_ws_of_blank_is_empty)
{
    EXPECT_TRUE(split_ws("   ").empty());
    EXPECT_TRUE(split_ws("").empty());
}

TEST(strings, blank_and_comment_detection)
{
    EXPECT_TRUE(is_blank_or_comment(""));
    EXPECT_TRUE(is_blank_or_comment("   "));
    EXPECT_TRUE(is_blank_or_comment("# note"));
    EXPECT_TRUE(is_blank_or_comment("   # indented"));
    EXPECT_FALSE(is_blank_or_comment("node a add"));
}

TEST(strings, parse_int_accepts_valid_and_rejects_garbage)
{
    EXPECT_EQ(parse_int("42", "x"), 42);
    EXPECT_EQ(parse_int(" -7 ", "x"), -7);
    EXPECT_THROW(parse_int("4x", "x"), error);
    EXPECT_THROW(parse_int("", "x"), error);
    EXPECT_THROW(parse_int("1.5", "x"), error);
}

TEST(strings, parse_double_accepts_valid_and_rejects_garbage)
{
    EXPECT_DOUBLE_EQ(parse_double("2.5", "p"), 2.5);
    EXPECT_DOUBLE_EQ(parse_double(" 8.1 ", "p"), 8.1);
    EXPECT_THROW(parse_double("abc", "p"), error);
    EXPECT_THROW(parse_double("", "p"), error);
}

TEST(strings, to_lower_only_touches_ascii_letters)
{
    EXPECT_EQ(to_lower("AbC-12"), "abc-12");
}

TEST(strings, ends_with_matches_suffixes_only)
{
    EXPECT_TRUE(ends_with("design.cdfg", ".cdfg"));
    EXPECT_TRUE(ends_with("out.csv", ".csv"));
    EXPECT_TRUE(ends_with("a.v", ".v"));
    EXPECT_TRUE(ends_with("anything", ""));
    EXPECT_FALSE(ends_with("design.cdfg.bak", ".cdfg"));
    EXPECT_FALSE(ends_with(".cdf", ".cdfg")); // shorter than the suffix
    EXPECT_FALSE(ends_with("", ".v"));
    EXPECT_FALSE(ends_with("graph.dot.png", ".dot"));
}

TEST(ids, typed_ids_are_distinct_and_comparable)
{
    const node_id a(1), b(2);
    EXPECT_TRUE(a < b);
    EXPECT_TRUE(a != b);
    EXPECT_EQ(node_id(1), a);
    EXPECT_TRUE(a.valid());
    EXPECT_FALSE(node_id().valid());
    EXPECT_EQ(a.index(), 1u);
}

TEST(ids, hashable_in_unordered_containers)
{
    std::hash<node_id> h;
    EXPECT_EQ(h(node_id(3)), h(node_id(3)));
}

TEST(errors, check_throws_with_message)
{
    EXPECT_NO_THROW(check(true, "ok"));
    try {
        check(false, "broken thing");
        FAIL() << "expected throw";
    } catch (const error& e) {
        EXPECT_STREQ(e.what(), "broken thing");
    }
}

TEST(errors, parse_error_carries_line_number)
{
    const parse_error e("bad token", 12);
    EXPECT_EQ(e.line(), 12);
    EXPECT_NE(std::string(e.what()).find("line 12"), std::string::npos);
}

TEST(table, renders_headers_rule_and_rows)
{
    ascii_table t({"name", "value"});
    t.add_row({"a", "1"});
    t.add_row({"long-name", "22"});
    const std::string out = t.to_string();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("long-name"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
    EXPECT_EQ(t.row_count(), 2u);
}

TEST(table, rejects_wrong_cell_count)
{
    ascii_table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), error);
}

TEST(table, right_alignment_pads_left)
{
    ascii_table t({"h", "v"});
    t.add_row({"x", "9"});
    t.add_row({"y", "1000"});
    const std::string out = t.to_string();
    EXPECT_NE(out.find("   9"), std::string::npos);
}

TEST(table, needs_at_least_one_column)
{
    EXPECT_THROW(ascii_table({}), error);
}

TEST(csv, writes_header_and_rows)
{
    csv_writer w({"a", "b"});
    w.add_row({"1", "2"});
    std::ostringstream os;
    w.print(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(csv, escapes_commas_and_quotes)
{
    csv_writer w({"x"});
    w.add_row({"a,b"});
    w.add_row({"say \"hi\""});
    std::ostringstream os;
    w.print(os);
    EXPECT_NE(os.str().find("\"a,b\""), std::string::npos);
    EXPECT_NE(os.str().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(csv, rejects_wrong_cell_count)
{
    csv_writer w({"a", "b"});
    EXPECT_THROW(w.add_row({"1"}), error);
}

TEST(rng, deterministic_for_same_seed)
{
    rng a(123), b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(rng, different_seeds_diverge)
{
    rng a(1), b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(rng, uniform_int_stays_in_range)
{
    rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const int v = r.uniform_int(3, 9);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 9);
    }
}

TEST(rng, uniform_stays_in_unit_interval)
{
    rng r(9);
    for (int i = 0; i < 1000; ++i) {
        const double v = r.uniform();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

} // namespace
} // namespace phls
