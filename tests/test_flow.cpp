// Tests for the flow engine: status type, strategy registry, the fluent
// pipeline, strategy/implementation equivalence, and the batch
// executor's determinism and per-point isolation.
#include <gtest/gtest.h>

#include "cdfg/analysis.h"
#include "cdfg/benchmarks.h"
#include "cdfg/random_dag.h"
#include "flow/flow.h"
#include "rtl/netlist.h"
#include "support/errors.h"
#include "synth/explore.h"
#include "synth/two_step.h"
#include "synth/verify.h"

namespace phls {
namespace {

const module_library& lib()
{
    static const module_library l = table1_library();
    return l;
}

// ------------------------------------------------------------------ status

TEST(flow_status, default_is_ok_and_codes_render)
{
    const status ok;
    EXPECT_TRUE(ok.ok());
    EXPECT_TRUE(static_cast<bool>(ok));
    EXPECT_EQ(ok.to_string(), "ok");

    const status bad = status::infeasible("no power");
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.code, status_code::infeasible);
    EXPECT_EQ(bad.to_string(), "infeasible: no power");
    EXPECT_STREQ(status_code_name(status_code::unsupported), "unsupported");
    EXPECT_EQ(status::success(), status{});
}

// ---------------------------------------------------------------- registry

TEST(flow_registry, builtin_strategies_are_registered)
{
    const strategy_registry& r = strategy_registry::instance();
    for (const char* name : {"asap", "alap", "pasap", "palap", "fds"}) {
        ASSERT_NE(r.scheduler(name), nullptr) << name;
        EXPECT_EQ(r.scheduler(name)->name(), name);
    }
    for (const char* name : {"greedy", "two_step", "fds_bind", "exact"}) {
        ASSERT_NE(r.synthesizer(name), nullptr) << name;
        EXPECT_EQ(r.synthesizer(name)->name(), name);
    }
    EXPECT_EQ(r.scheduler("nope"), nullptr);
    EXPECT_EQ(r.synthesizer("nope"), nullptr);
    EXPECT_GE(r.scheduler_names().size(), 5u);
    EXPECT_GE(r.synthesizer_names().size(), 4u);
}

TEST(flow_registry, custom_strategies_plug_in_without_touching_callers)
{
    class fixed_synth final : public synth_strategy {
    public:
        std::string name() const override { return "test_fixed"; }
        std::string description() const override { return "unit-test stub"; }
        synth_outcome run(const synth_request& r) const override
        {
            synth_outcome out;
            out.st = status::infeasible("stub always declines T=" +
                                        std::to_string(r.constraints.latency));
            return out;
        }
    };
    strategy_registry::instance().add(std::make_shared<fixed_synth>());

    // An existing caller (the flow) picks it up purely by name.
    const flow_report r =
        flow::on(make_hal()).with_library(lib()).latency(17).synthesizer("test_fixed").run();
    EXPECT_EQ(r.st.code, status_code::infeasible);
    EXPECT_EQ(r.st.message, "stub always declines T=17");
}

// -------------------------------------------------------------------- runs

TEST(flow_run, produces_a_verified_design_with_uniform_status)
{
    const flow_report r =
        flow::on(make_hal()).with_library(lib()).latency(17).power_cap(7.0).run();
    ASSERT_TRUE(r.st.ok()) << r.st.to_string();
    EXPECT_TRUE(r.feasible());
    EXPECT_TRUE(r.has_design);
    EXPECT_GT(r.area, 0.0);
    EXPECT_LE(r.peak, 7.0 + 1e-9);
    EXPECT_LE(r.latency, 17);
    EXPECT_EQ(r.strategy, "greedy");
    EXPECT_TRUE(
        verify_datapath(make_hal(), lib(), r.dp, r.constraints, synthesis_options{}.costs)
            .empty());
}

TEST(flow_run, expected_infeasibility_is_a_status_not_an_exception)
{
    const flow_report r =
        flow::on(make_hal()).with_library(lib()).latency(17).power_cap(1.0).run();
    EXPECT_EQ(r.st.code, status_code::infeasible);
    EXPECT_FALSE(r.has_design);
}

TEST(flow_run, invalid_requests_come_back_as_invalid_argument)
{
    // Missing latency.
    const flow_report no_latency = flow::on(make_hal()).with_library(lib()).run();
    EXPECT_EQ(no_latency.st.code, status_code::invalid_argument);

    // Library that does not cover the graph.
    const module_library empty = parse_library_string("library empty\n");
    const flow_report bad_lib =
        flow::on(make_hal()).with_library(empty).latency(17).run();
    EXPECT_EQ(bad_lib.st.code, status_code::invalid_argument);
}

TEST(flow_run, unknown_strategy_is_unsupported)
{
    const flow_report r =
        flow::on(make_hal()).with_library(lib()).latency(17).synthesizer("quantum").run();
    EXPECT_EQ(r.st.code, status_code::unsupported);
    const sched_outcome s =
        flow::on(make_hal()).with_library(lib()).scheduler("quantum").run_schedule();
    EXPECT_EQ(s.st.code, status_code::unsupported);
}

TEST(flow_run, netlist_stage_matches_direct_construction)
{
    const flow_report r = flow::on(make_hal())
                              .with_library(lib())
                              .latency(17)
                              .power_cap(7.0)
                              .emit_netlist()
                              .run();
    ASSERT_TRUE(r.st.ok());
    ASSERT_TRUE(r.has_netlist);
    const netlist direct = build_netlist(r.dp.name, make_hal(), lib(), r.dp.sched,
                                         r.dp.instance_of, r.dp.instance_modules());
    EXPECT_EQ(netlist_to_text(r.nl, make_hal(), lib()),
              netlist_to_text(direct, make_hal(), lib()));
}

TEST(flow_run, lifetime_stage_reports_a_positive_lifetime)
{
    lifetime_spec spec;
    spec.beta = 0.1;
    const flow_report r = flow::on(make_hal())
                              .with_library(lib())
                              .latency(17)
                              .power_cap(7.0)
                              .estimate_lifetime(spec)
                              .run();
    ASSERT_TRUE(r.st.ok());
    ASSERT_TRUE(r.has_lifetime);
    EXPECT_GT(r.lifetime_seconds, 0.0);
    EXPECT_GT(r.battery_alpha, 0.0);
}

TEST(flow_run, scheduler_stage_honours_the_cap)
{
    const sched_outcome out = flow::on(make_hal())
                                  .with_library(lib())
                                  .power_cap(8.0)
                                  .scheduler("pasap")
                                  .run_schedule();
    ASSERT_TRUE(out.st.ok()) << out.st.to_string();
    EXPECT_TRUE(out.sched.complete());
    EXPECT_LE(out.sched.profile(lib()).peak(), 8.0 + 1e-9);
}

TEST(flow_run, exact_strategy_marks_proven_optima)
{
    // Small graph so the branch-and-bound completes within its budget.
    random_dag_params params;
    params.operations = 6;
    params.inputs = 2;
    params.layers = 3;
    const graph g = random_dag(params, 1);
    const module_assignment fast = fastest_assignment(g, lib(), unbounded_power);
    const int cp = critical_path_length(
        g, [&](node_id v) { return lib().module(fast[v.index()]).latency; });
    const flow_report r = flow::on(g)
                              .with_library(lib())
                              .latency(cp + 4)
                              .power_cap(20.0)
                              .synthesizer("exact")
                              .run();
    ASSERT_TRUE(r.st.ok()) << r.st.to_string();
    EXPECT_TRUE(r.optimal);
    EXPECT_NE(r.note.find("explored"), std::string::npos);

    // The greedy result for the same problem can never beat the optimum.
    const flow_report greedy =
        flow::on(g).with_library(lib()).latency(cp + 4).power_cap(20.0).run();
    if (greedy.st.ok()) {
        EXPECT_GE(greedy.area, r.area - 1e-9);
    }
}

// ------------------------------------------- strategy == implementation

TEST(flow_strategies, greedy_strategy_equals_direct_synthesize)
{
    const graph g = make_cosine();
    for (double cap : {10.0, 16.0, 26.0, unbounded_power}) {
        const synthesis_result legacy = synthesize(g, lib(), {15, cap});
        const flow_report modern =
            flow::on(g).with_library(lib()).latency(15).power_cap(cap).run();
        ASSERT_EQ(legacy.feasible, modern.st.ok()) << "cap " << cap;
        if (!legacy.feasible) continue;
        EXPECT_DOUBLE_EQ(legacy.dp.area.total(), modern.area);
        EXPECT_DOUBLE_EQ(legacy.dp.peak_power(lib()), modern.peak);
        EXPECT_EQ(legacy.dp.latency(lib()), modern.latency);
        EXPECT_EQ(legacy.dp.sched.starts(), modern.dp.sched.starts());
        EXPECT_EQ(legacy.dp.instance_of, modern.dp.instance_of);
        EXPECT_EQ(legacy.stats.merges, modern.stats.merges);
    }
}

TEST(flow_strategies, two_step_strategy_equals_direct_two_step)
{
    const graph g = make_hal();
    const two_step_result legacy = two_step_synthesize(g, lib(), {17, 9.0});
    const flow_report modern =
        flow::on(g).with_library(lib()).latency(17).power_cap(9.0).synthesizer("two_step").run();
    ASSERT_TRUE(legacy.feasible);
    ASSERT_TRUE(modern.has_design);
    EXPECT_EQ(legacy.meets_power, modern.st.ok());
    EXPECT_DOUBLE_EQ(legacy.dp.area.total(), modern.area);
    EXPECT_EQ(legacy.dp.sched.starts(), modern.dp.sched.starts());
}

// ----------------------------------------------------------------- batch

TEST(flow_batch, reports_are_byte_identical_across_thread_counts)
{
    const graph g = make_cosine();
    const flow f = flow::on(g).with_library(lib()).latency(15);
    std::vector<synthesis_constraints> grid;
    for (double cap : f.power_grid(12)) grid.push_back({15, cap});

    const std::vector<flow_report> reference = f.run_batch(grid, 1);
    ASSERT_EQ(reference.size(), grid.size());
    for (int threads : {2, 4, 7}) {
        const std::vector<flow_report> reports = f.run_batch(grid, threads);
        ASSERT_EQ(reports.size(), reference.size()) << threads << " threads";
        for (std::size_t i = 0; i < reports.size(); ++i)
            EXPECT_EQ(reports[i].to_string(), reference[i].to_string())
                << threads << " threads, point " << i;
    }
}

TEST(flow_batch, results_follow_input_order_not_completion_order)
{
    const graph g = make_hal();
    const flow f = flow::on(g).with_library(lib()).latency(17);
    // Mixed workloads: cheap infeasible points interleaved with real ones.
    const std::vector<synthesis_constraints> grid = {
        {17, 9.0}, {17, 1.0}, {17, 12.0}, {17, 2.0}, {17, 7.0}};
    const std::vector<flow_report> reports = f.run_batch(grid, 3);
    ASSERT_EQ(reports.size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_EQ(reports[i].constraints.latency, grid[i].latency);
        EXPECT_DOUBLE_EQ(reports[i].constraints.max_power, grid[i].max_power);
    }
    EXPECT_TRUE(reports[0].st.ok());
    EXPECT_FALSE(reports[1].st.ok());
}

TEST(flow_batch, a_bad_point_is_isolated_from_the_rest)
{
    const graph g = make_hal();
    const flow f = flow::on(g).with_library(lib()).latency(17);
    // Point 1 is malformed (latency 0 overrides the configured 17).
    const std::vector<synthesis_constraints> grid = {
        {17, 9.0}, {0, 9.0}, {17, unbounded_power}};
    const std::vector<flow_report> reports = f.run_batch(grid, 2);
    ASSERT_EQ(reports.size(), 3u);
    EXPECT_TRUE(reports[0].st.ok());
    EXPECT_EQ(reports[1].st.code, status_code::invalid_argument);
    EXPECT_TRUE(reports[2].st.ok());
}

TEST(flow_batch, empty_batch_returns_empty)
{
    EXPECT_TRUE(
        flow::on(make_hal()).with_library(lib()).latency(17).run_batch({}, 4).empty());
}

// ------------------------------------------------------------- power grid

TEST(flow_power_grid, infeasible_probe_propagates_its_diagnostic)
{
    // Latency 2 is far below hal's critical path, so even the
    // unconstrained probe is infeasible; the grid must not be fabricated
    // from magic constants — the error carries the probe's diagnostic.
    try {
        flow::on(make_hal()).with_library(lib()).latency(2).power_grid(8);
        FAIL() << "expected phls::error";
    } catch (const error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("unconstrained probe failed"), std::string::npos) << what;
        EXPECT_NE(what.find("infeasible"), std::string::npos) << what;
    }
}

TEST(flow_power_grid, uncovered_library_is_reported_at_the_lower_edge)
{
    const module_library empty = parse_library_string("library empty\n");
    try {
        flow::on(make_hal()).with_library(empty).latency(17).power_grid(8);
        FAIL() << "expected phls::error";
    } catch (const error& e) {
        EXPECT_NE(std::string(e.what()).find("does not cover"), std::string::npos)
            << e.what();
    }
}

TEST(flow_power_grid, feasible_problems_still_get_a_monotone_grid)
{
    const std::vector<double> caps =
        flow::on(make_hal()).with_library(lib()).latency(17).power_grid(12);
    ASSERT_EQ(caps.size(), 12u);
    for (std::size_t i = 1; i < caps.size(); ++i) EXPECT_GT(caps[i], caps[i - 1]);
}

} // namespace
} // namespace phls
