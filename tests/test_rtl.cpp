// Tests for the RTL back-end: value lifetimes, left-edge register
// allocation, interconnect estimation, netlist construction.
#include <gtest/gtest.h>

#include "cdfg/benchmarks.h"
#include "rtl/interconnect.h"
#include "rtl/netlist.h"
#include "sched/asap_alap.h"
#include "support/errors.h"
#include "synth/synthesizer.h"

namespace phls {
namespace {

const module_library& lib()
{
    static const module_library l = table1_library();
    return l;
}

// in -> a(add) -> m(mult_par) -> out, plus a second consumer of `a`
// late in the schedule, to force a long-lived value.
struct tiny_design {
    graph g{"tiny"};
    schedule s;
    std::vector<int> instance_of;
    std::vector<module_id> instance_modules;

    tiny_design()
    {
        const node_id in = g.add_node(op_kind::input, "in");
        const node_id a = g.add_node(op_kind::add, "a");
        const node_id m = g.add_node(op_kind::mult, "m");
        const node_id b = g.add_node(op_kind::add, "b");
        const node_id o1 = g.add_node(op_kind::output, "o1");
        const node_id o2 = g.add_node(op_kind::output, "o2");
        g.add_edge(in, a);
        g.add_edge(a, m);
        g.add_edge(a, b);
        g.add_edge(m, b);
        g.add_edge(m, o1);
        g.add_edge(b, o2);

        s = schedule(g.node_count());
        const auto set = [&](node_id v, const char* module, int t) {
            s.set_module(v, *lib().find(module));
            s.set_start(v, t);
        };
        set(in, "input", 0);
        set(a, "add", 1);
        set(m, "mult_par", 2);
        set(b, "add", 4);
        set(o1, "output", 4);
        set(o2, "output", 5);
        instance_of = {0, 1, 2, 1, 3, 3};
        instance_modules = {*lib().find("input"), *lib().find("add"),
                            *lib().find("mult_par"), *lib().find("output")};
    }
};

TEST(value_lifetime, births_at_finish_deaths_at_last_consumer)
{
    const tiny_design d;
    const std::vector<value_lifetime> lts = compute_value_lifetimes(d.g, lib(), d.s);
    ASSERT_EQ(lts.size(), 4u); // in, a, m, b produce consumed values
    const auto find = [&](const char* label) {
        for (const value_lifetime& lt : lts)
            if (d.g.label(lt.producer) == label) return lt;
        throw error("missing lifetime");
    };
    EXPECT_EQ(find("in").birth, 1);
    EXPECT_EQ(find("in").death, 1);
    EXPECT_FALSE(find("in").needs_register());
    EXPECT_EQ(find("a").birth, 2);
    EXPECT_EQ(find("a").death, 4); // consumed by m@2 and b@4
    EXPECT_TRUE(find("a").needs_register());
    EXPECT_EQ(find("m").birth, 4);
    EXPECT_EQ(find("m").death, 4);
    EXPECT_EQ(find("b").birth, 5);
    EXPECT_EQ(find("b").death, 5);
}

TEST(value_lifetime, requires_a_complete_schedule)
{
    tiny_design d;
    d.s.clear_start(node_id(2));
    EXPECT_THROW(compute_value_lifetimes(d.g, lib(), d.s), error);
}

TEST(regalloc, non_overlapping_values_share_a_register)
{
    std::vector<value_lifetime> lts = {{node_id(0), 0, 3}, {node_id(1), 3, 5},
                                       {node_id(2), 1, 4}};
    const regalloc_result r = left_edge_allocate(lts);
    EXPECT_EQ(r.register_count, 2);
    EXPECT_EQ(r.register_of[0], 0);
    EXPECT_EQ(r.register_of[1], 0); // reuses after death at 3
    EXPECT_EQ(r.register_of[2], 1);
}

TEST(regalloc, forwarded_values_get_no_register)
{
    std::vector<value_lifetime> lts = {{node_id(0), 2, 2}};
    const regalloc_result r = left_edge_allocate(lts);
    EXPECT_EQ(r.register_count, 0);
    EXPECT_EQ(r.register_of[0], -1);
}

TEST(regalloc, allocation_is_conflict_free_on_benchmarks)
{
    const graph g = make_elliptic();
    const module_assignment a = fastest_assignment(g, lib(), unbounded_power);
    const schedule s = asap_schedule(g, lib(), a);
    const std::vector<value_lifetime> lts = compute_value_lifetimes(g, lib(), s);
    const regalloc_result r = left_edge_allocate(lts);
    for (std::size_t i = 0; i < lts.size(); ++i)
        for (std::size_t j = i + 1; j < lts.size(); ++j) {
            if (r.register_of[i] < 0 || r.register_of[i] != r.register_of[j]) continue;
            const bool overlap =
                lts[i].birth < lts[j].death && lts[j].birth < lts[i].death;
            EXPECT_FALSE(overlap) << i << " vs " << j;
        }
    EXPECT_GT(r.register_count, 0);
}

TEST(interconnect, counts_registers_and_mux_inputs)
{
    const tiny_design d;
    const interconnect_stats stats =
        estimate_interconnect(d.g, lib(), d.s, d.instance_of, cost_model{});
    EXPECT_EQ(stats.register_count, 1); // only 'a' lives past its birth
    // Instance 1 (add) executes a (ports: in) and b (ports: a-reg, m-fwd):
    // port0 sees {in-instance, a-register} = 1 extra input; port1 sees
    // {m} only after a... count must be >= 1.
    EXPECT_GE(stats.mux_extra_inputs, 1);
    EXPECT_DOUBLE_EQ(stats.register_area, stats.register_count * cost_model{}.register_area);
    EXPECT_DOUBLE_EQ(stats.mux_area,
                     stats.mux_extra_inputs * cost_model{}.mux_area_per_extra_input);
}

TEST(interconnect, disabled_cost_model_zeroes_area_but_keeps_counts)
{
    const tiny_design d;
    cost_model off;
    off.include_interconnect = false;
    const interconnect_stats stats =
        estimate_interconnect(d.g, lib(), d.s, d.instance_of, off);
    EXPECT_DOUBLE_EQ(stats.total(), 0.0);
    EXPECT_EQ(stats.register_count, 1);
}

TEST(netlist, lists_fus_registers_and_connections)
{
    const tiny_design d;
    const netlist nl =
        build_netlist("tiny", d.g, lib(), d.s, d.instance_of, d.instance_modules);
    ASSERT_EQ(nl.fus.size(), 4u);
    EXPECT_EQ(nl.fus[1].ops.size(), 2u); // a and b share the adder
    EXPECT_EQ(nl.registers.size(), 1u);
    EXPECT_FALSE(nl.connections.empty());
    const std::string text = netlist_to_text(nl, d.g, lib());
    EXPECT_NE(text.find("fu u1 add"), std::string::npos);
    EXPECT_NE(text.find("reg r0"), std::string::npos);
    EXPECT_NE(text.find("connect"), std::string::npos);
}

TEST(netlist, verilog_skeleton_mentions_every_instance)
{
    const tiny_design d;
    const netlist nl =
        build_netlist("tiny", d.g, lib(), d.s, d.instance_of, d.instance_modules);
    const std::string v = netlist_to_verilog(nl, d.g, lib());
    EXPECT_NE(v.find("module tiny"), std::string::npos);
    EXPECT_NE(v.find("u1_out"), std::string::npos);
    EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(netlist, rejects_inconsistent_bindings)
{
    tiny_design d;
    d.instance_of[1] = 2; // add op on the multiplier instance
    EXPECT_THROW(
        build_netlist("bad", d.g, lib(), d.s, d.instance_of, d.instance_modules), error);
}

TEST(netlist, full_pipeline_on_a_synthesised_design)
{
    const graph g = make_hal();
    const synthesis_result r = synthesize(g, lib(), {17, 7.0});
    ASSERT_TRUE(r.feasible);
    const netlist nl = build_netlist(r.dp.name, g, lib(), r.dp.sched, r.dp.instance_of,
                                     r.dp.instance_modules());
    EXPECT_EQ(nl.fus.size(), r.dp.instances.size());
    // Every op appears exactly once across FU op lists.
    int total_ops = 0;
    for (const netlist::fu& f : nl.fus) total_ops += static_cast<int>(f.ops.size());
    EXPECT_EQ(total_ops, g.node_count());
}

} // namespace
} // namespace phls
