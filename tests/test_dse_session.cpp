// Tests for dse::session: the unified explore() sink, byte-identity
// with the run_batch wrappers, front-delta streaming, the bounded
// level-2 memo, cache-file persistence and the adaptive refine driver.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "cdfg/benchmarks.h"
#include "dse/session.h"
#include "flow/explore_cache.h"
#include "flow/flow.h"
#include "flow/pareto_stream.h"
#include "support/errors.h"

namespace phls {
namespace {

const module_library& lib()
{
    static const module_library l = table1_library();
    return l;
}

flow hal17() { return flow::on(make_hal()).with_library(lib()).latency(17); }

/// A duplicate-heavy point list: every grid point appears twice.
std::vector<synthesis_constraints> duplicated_grid(int points)
{
    std::vector<synthesis_constraints> grid;
    for (double cap : hal17().power_grid(points)) grid.push_back({17, cap});
    const std::vector<synthesis_constraints> once = grid;
    grid.insert(grid.end(), once.begin(), once.end());
    return grid;
}

/// Collects every delivered report, index-addressed.
dse::sink collector(std::vector<flow_report>& out)
{
    dse::sink sk;
    sk.on_result = [&out](std::size_t i, const flow_report& r) {
        if (i >= out.size()) out.resize(i + 1);
        out[i] = r;
    };
    return sk;
}

/// A scratch file path unique to the test, cleaned up by the caller.
std::string scratch(const char* name)
{
    return std::string(::testing::TempDir()) + name;
}

// -------------------------------------------------------- explore basics

TEST(dse_session, cold_explore_is_byte_identical_to_run_batch)
{
    const std::vector<synthesis_constraints> grid = duplicated_grid(8);
    const std::vector<flow_report> reference = hal17().run_batch(grid, 1);

    dse::session session(hal17());
    std::vector<flow_report> got;
    const dse::explore_summary sum = session.explore(dse::list(grid), collector(got), 1);

    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i].to_string(), reference[i].to_string()) << i;
    EXPECT_EQ(sum.evaluated, grid.size());
    EXPECT_EQ(sum.space_size, grid.size());
    EXPECT_EQ(sum.metric_served, 0u);
    EXPECT_EQ(sum.front, pareto_points(reference));
}

TEST(dse_session, chunked_walk_is_byte_identical_too)
{
    const std::vector<synthesis_constraints> grid = duplicated_grid(8);
    const std::vector<flow_report> reference = hal17().run_batch(grid, 1);

    // chunk = 3 forces duplicates into later chunks than their
    // originals: they must be served from the *full* report memo at scan
    // time, keeping every byte identical.
    dse::session session(hal17(), {.chunk = 3});
    std::vector<flow_report> got;
    session.explore(dse::list(grid), collector(got), 1);
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i].to_string(), reference[i].to_string()) << i;
    EXPECT_GT(session.cache()->stats().report_hits, 0);
}

TEST(dse_session, front_deltas_replay_to_the_final_front)
{
    dse::session session(hal17());
    std::vector<front_delta> deltas;
    dse::sink sk;
    sk.on_front = [&](const front_delta& d) {
        EXPECT_TRUE(d.changed()); // only changes are delivered
        deltas.push_back(d);
    };
    std::vector<synthesis_constraints> grid;
    for (double cap : hal17().power_grid(12)) grid.push_back({17, cap});
    const dse::explore_summary sum = session.explore(dse::list(grid), sk, 2);

    std::vector<front_point> replay;
    for (const front_delta& d : deltas) {
        for (const front_point& p : d.left) std::erase(replay, p);
        for (const front_point& p : d.entered) replay.push_back(p);
    }
    std::sort(replay.begin(), replay.end(),
              [](const front_point& a, const front_point& b) {
                  if (a.peak != b.peak) return a.peak < b.peak;
                  if (a.area != b.area) return a.area < b.area;
                  return a.index < b.index;
              });
    EXPECT_EQ(replay, sum.front);
    EXPECT_FALSE(sum.front.empty());
}

TEST(dse_session, negative_threads_fail_every_point_even_when_warm)
{
    // The run_batch contract: a malformed worker count reports
    // invalid_argument on every point.  A warm memo must not leak ok
    // answers past the validation.
    std::vector<synthesis_constraints> grid;
    for (double cap : hal17().power_grid(4)) grid.push_back({17, cap});

    dse::session session(hal17());
    session.explore(dse::list(grid), {}, 1); // warm the memo

    std::vector<flow_report> got;
    const dse::explore_summary sum =
        session.explore(dse::list(grid), collector(got), -2);
    ASSERT_EQ(got.size(), grid.size());
    for (const flow_report& r : got)
        EXPECT_EQ(r.st.code, status_code::invalid_argument);
    EXPECT_EQ(sum.feasible, 0u);
    EXPECT_TRUE(sum.front.empty());
}

TEST(dse_session, sink_exception_aborts_and_rethrows)
{
    dse::session session(hal17());
    dse::sink sk;
    sk.on_result = [](std::size_t, const flow_report&) {
        throw std::runtime_error("consumer failed");
    };
    std::vector<synthesis_constraints> grid;
    for (double cap : hal17().power_grid(4)) grid.push_back({17, cap});
    EXPECT_THROW(session.explore(dse::list(grid), sk, 1), std::runtime_error);
}

// ------------------------------------------------------------ bounded memo

TEST(dse_session, bounded_memo_never_exceeds_capacity_and_serves_metrics)
{
    const std::vector<synthesis_constraints> grid = duplicated_grid(10);
    const std::vector<flow_report> reference = hal17().run_batch(grid, 1);

    dse::session session(hal17(), {.memo_limit = 4, .chunk = 5});
    std::size_t max_full = 0;
    std::vector<flow_report> got(grid.size());
    dse::sink sk;
    sk.on_result = [&](std::size_t i, const flow_report& r) {
        got[i] = r;
        max_full = std::max(max_full, session.cache()->report_full_size());
    };
    const dse::explore_summary sum = session.explore(dse::list(grid), sk, 1);

    EXPECT_LE(max_full, 4u);
    EXPECT_LE(session.cache()->report_full_size(), 4u);
    EXPECT_GT(session.cache()->report_metric_size(), 0u);
    EXPECT_GT(sum.metric_served, 0u);
    // Metric answers carry the exact outcome and metrics of the
    // reference run, and the front is unchanged.
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_EQ(got[i].st.code, reference[i].st.code) << i;
        EXPECT_EQ(got[i].area, reference[i].area) << i;
        EXPECT_EQ(got[i].peak, reference[i].peak) << i;
        EXPECT_EQ(got[i].latency, reference[i].latency) << i;
    }
    EXPECT_EQ(sum.front, pareto_points(reference));
}

TEST(dse_session, metric_answers_can_be_disabled)
{
    const std::vector<synthesis_constraints> grid = duplicated_grid(6);
    const std::vector<flow_report> reference = hal17().run_batch(grid, 1);

    dse::session session(hal17(),
                         {.memo_limit = 2, .chunk = 4, .metric_answers = false});
    std::vector<flow_report> got;
    const dse::explore_summary sum = session.explore(dse::list(grid), collector(got), 1);
    EXPECT_EQ(sum.metric_served, 0u);
    // Everything was genuinely recomputed: full byte identity holds even
    // with a tiny memo.
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i].to_string(), reference[i].to_string()) << i;
}

// ------------------------------------------------------------- persistence

TEST(dse_session, save_load_round_trip_preserves_answers_and_counters)
{
    const std::vector<synthesis_constraints> grid = duplicated_grid(8);
    const std::vector<flow_report> reference = hal17().run_batch(grid, 1);
    const std::string path = scratch("session_round_trip.phlscache");

    dse::session cold(hal17());
    std::vector<flow_report> cold_reports;
    cold.explore(dse::list(grid), collector(cold_reports), 1);
    cold.save(path);

    // Two fresh warm sessions over the same file behave identically:
    // same loaded-record count, same served answers, same counters.
    explore_cache::counters counters[2];
    for (int run = 0; run < 2; ++run) {
        dse::session warm(hal17());
        const std::size_t loaded = warm.load(path);
        EXPECT_GT(loaded, 0u) << run;
        std::vector<flow_report> warm_reports;
        const dse::explore_summary sum =
            warm.explore(dse::list(grid), collector(warm_reports), 1);
        EXPECT_EQ(sum.metric_served, grid.size()) << run;
        ASSERT_EQ(warm_reports.size(), reference.size());
        for (std::size_t i = 0; i < warm_reports.size(); ++i) {
            EXPECT_EQ(warm_reports[i].st.code, reference[i].st.code) << run << ' ' << i;
            EXPECT_EQ(warm_reports[i].st.message, reference[i].st.message);
            EXPECT_EQ(warm_reports[i].area, reference[i].area) << run << ' ' << i;
            EXPECT_EQ(warm_reports[i].peak, reference[i].peak) << run << ' ' << i;
        }
        EXPECT_EQ(sum.front, pareto_points(reference)) << run;
        counters[run] = warm.cache()->stats();
    }
    EXPECT_EQ(counters[0].metric_hits, counters[1].metric_hits);
    EXPECT_EQ(counters[0].hits, counters[1].hits);
    EXPECT_EQ(counters[0].misses, counters[1].misses);
    EXPECT_EQ(counters[0].committed_hits, counters[1].committed_hits);
    EXPECT_EQ(counters[0].report_hits, counters[1].report_hits);

    // Saving a loaded cache reproduces the file byte-for-byte.
    dse::session again(hal17());
    again.load(path);
    const std::string path2 = scratch("session_round_trip2.phlscache");
    again.save(path2);
    std::ifstream a(path, std::ios::binary), b(path2, std::ios::binary);
    const std::string bytes_a((std::istreambuf_iterator<char>(a)), {});
    const std::string bytes_b((std::istreambuf_iterator<char>(b)), {});
    EXPECT_EQ(bytes_a, bytes_b);

    std::remove(path.c_str());
    std::remove(path2.c_str());
}

TEST(dse_session, corrupt_and_truncated_cache_files_fail_loudly)
{
    const std::string path = scratch("session_corrupt.phlscache");
    dse::session cold(hal17());
    std::vector<synthesis_constraints> grid;
    for (double cap : hal17().power_grid(4)) grid.push_back({17, cap});
    cold.explore(dse::list(grid), {}, 1);
    cold.save(path);

    std::ifstream is(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(is)), {});
    is.close();

    // Truncated: cut the tail off.
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
    }
    dse::session victim(hal17());
    EXPECT_THROW(victim.load(path), error);

    // Corrupt: flip one payload byte (checksum must catch it).
    {
        std::string evil = bytes;
        evil[evil.size() / 2] = static_cast<char>(evil[evil.size() / 2] ^ 0x5a);
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os.write(evil.data(), static_cast<std::streamsize>(evil.size()));
    }
    EXPECT_THROW(victim.load(path), error);

    // Not a cache file at all.
    {
        std::ofstream os(path, std::ios::trunc);
        os << "just some text\n";
    }
    EXPECT_THROW(victim.load(path), error);

    // Missing file.
    std::remove(path.c_str());
    EXPECT_THROW(victim.load(path), error);
}

TEST(dse_session, cache_file_for_a_different_problem_is_rejected)
{
    const std::string path = scratch("session_mismatch.phlscache");
    dse::session hal_session(hal17());
    std::vector<synthesis_constraints> grid;
    for (double cap : hal17().power_grid(4)) grid.push_back({17, cap});
    hal_session.explore(dse::list(grid), {}, 1);
    hal_session.save(path);

    dse::session cosine_session(flow::on(make_cosine()).with_library(lib()).latency(15));
    EXPECT_THROW(cosine_session.load(path), error);
    std::remove(path.c_str());
}

// ------------------------------------------------------------------ refine

TEST(dse_session, refine_matches_the_eager_grid_front_with_fewer_points)
{
    const std::vector<int> lats = {17, 19, 21};
    const std::vector<double> caps = hal17().power_grid(12);

    dse::session eager(hal17());
    const dse::explore_summary eager_sum =
        eager.explore(dse::cross(lats, caps), {}, 1);

    dse::session adaptive(hal17());
    std::vector<std::size_t> seen;
    dse::sink sk;
    sk.on_result = [&](std::size_t i, const flow_report&) { seen.push_back(i); };
    const dse::explore_summary refine_sum =
        adaptive.explore(dse::refine(lats, caps), sk, 2);

    EXPECT_EQ(refine_sum.front, eager_sum.front);
    EXPECT_LE(refine_sum.evaluated, eager_sum.evaluated);
    EXPECT_EQ(refine_sum.evaluated, seen.size());
    // No point is delivered twice.
    std::sort(seen.begin(), seen.end());
    EXPECT_TRUE(std::adjacent_find(seen.begin(), seen.end()) == seen.end());
    // Indices live on the lattice of the equivalent cross space.
    EXPECT_LT(seen.back(), dse::cross(lats, caps).size());
}

TEST(dse_session, session_cache_is_shareable_with_plain_flows)
{
    // The session's cache is a normal explore_cache: a flow::reuse()
    // caller sees the session's memo state.
    dse::session session(hal17());
    std::vector<synthesis_constraints> grid;
    for (double cap : hal17().power_grid(6)) grid.push_back({17, cap});
    session.explore(dse::list(grid), {}, 1);

    const flow f = hal17().reuse(session.cache());
    const std::vector<flow_report> direct = f.run_batch(grid, 1);
    const std::vector<flow_report> reference = hal17().run_batch(grid, 1);
    ASSERT_EQ(direct.size(), reference.size());
    for (std::size_t i = 0; i < direct.size(); ++i)
        EXPECT_EQ(direct[i].to_string(), reference[i].to_string()) << i;
    EXPECT_GT(session.cache()->stats().report_hits, 0);
}

// ------------------------------------------------- typed cache errors

/// Saves a small warm cache to `path` and returns its raw bytes.
std::string saved_cache_bytes(const std::string& path)
{
    dse::session cold(hal17());
    std::vector<synthesis_constraints> grid;
    for (double cap : hal17().power_grid(3)) grid.push_back({17, cap});
    cold.explore(dse::list(grid), {}, 1);
    cold.save(path);
    std::ifstream is(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(is)), {});
}

void overwrite(const std::string& path, const std::string& bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Loads `path` into a fresh session and returns the typed error it
/// must throw.
cache_file_error expect_load_failure(const std::string& path)
{
    dse::session victim(hal17());
    try {
        victim.load(path);
    } catch (const cache_file_error& e) {
        return e;
    }
    ADD_FAILURE() << "load('" << path << "') did not throw cache_file_error";
    return cache_file_error(cache_file_error::failure::io, path, "did not throw");
}

TEST(dse_session, load_error_reports_a_missing_file)
{
    const std::string path = scratch("session_err_missing.phlscache");
    std::remove(path.c_str());
    const cache_file_error e = expect_load_failure(path);
    EXPECT_EQ(e.kind(), cache_file_error::failure::missing);
    EXPECT_EQ(e.path(), path);
    // The message names the file, so a failed warm start is actionable.
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
}

TEST(dse_session, load_error_reports_truncation)
{
    const std::string path = scratch("session_err_trunc.phlscache");
    const std::string bytes = saved_cache_bytes(path);

    overwrite(path, bytes.substr(0, bytes.size() / 2)); // body cut short
    EXPECT_EQ(expect_load_failure(path).kind(), cache_file_error::failure::truncated);

    overwrite(path, bytes.substr(0, 10)); // even the header is incomplete
    EXPECT_EQ(expect_load_failure(path).kind(), cache_file_error::failure::truncated);

    overwrite(path, bytes.substr(0, bytes.size() - 3)); // checksum cut short
    EXPECT_EQ(expect_load_failure(path).kind(), cache_file_error::failure::truncated);
    std::remove(path.c_str());
}

TEST(dse_session, load_error_reports_corruption)
{
    const std::string path = scratch("session_err_corrupt.phlscache");
    const std::string bytes = saved_cache_bytes(path);

    // A flipped body byte fails the checksum.
    std::string evil = bytes;
    evil[evil.size() / 2] = static_cast<char>(evil[evil.size() / 2] ^ 0x5a);
    overwrite(path, evil);
    EXPECT_EQ(expect_load_failure(path).kind(), cache_file_error::failure::corrupt);

    // Trailing garbage after a checksum-clean file is corruption too.
    overwrite(path, bytes + "x");
    EXPECT_EQ(expect_load_failure(path).kind(), cache_file_error::failure::corrupt);

    // A wrong magic string is not a cache file at all.
    evil = bytes;
    evil[sizeof(long)] = 'X'; // first magic character, after its length
    overwrite(path, evil);
    EXPECT_EQ(expect_load_failure(path).kind(), cache_file_error::failure::corrupt);
    std::remove(path.c_str());
}

TEST(dse_session, load_error_reports_a_version_mismatch)
{
    const std::string path = scratch("session_err_version.phlscache");
    std::string bytes = saved_cache_bytes(path);

    // The format version lives right after the length-prefixed magic
    // string, outside the checksummed body — bump its low byte and the
    // file reads as a valid cache from a different format generation.
    const std::size_t version_at = sizeof(long) + std::string("phls-explore-cache").size();
    ASSERT_LT(version_at, bytes.size());
    bytes[version_at] = static_cast<char>(bytes[version_at] + 1);
    overwrite(path, bytes);

    const cache_file_error e = expect_load_failure(path);
    EXPECT_EQ(e.kind(), cache_file_error::failure::version_mismatch);
    EXPECT_EQ(e.path(), path);
    std::remove(path.c_str());
}

TEST(dse_session, load_error_reports_a_problem_mismatch)
{
    const std::string path = scratch("session_err_problem.phlscache");
    saved_cache_bytes(path); // a valid hal cache

    dse::session cosine_session(flow::on(make_cosine()).with_library(lib()).latency(15));
    try {
        cosine_session.load(path);
        ADD_FAILURE() << "cosine session accepted a hal cache file";
    } catch (const cache_file_error& e) {
        EXPECT_EQ(e.kind(), cache_file_error::failure::problem_mismatch);
        EXPECT_EQ(e.path(), path);
    }
    std::remove(path.c_str());
}

TEST(dse_session, save_is_atomic_and_leaves_no_temp_file)
{
    const std::string path = scratch("session_atomic.phlscache");
    const std::string bytes = saved_cache_bytes(path);
    // The write goes through `<path>.tmp` + rename, so a reader never
    // observes a half-written cache and no temp file survives success.
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());

    // Re-saving over an existing file replaces it atomically too.
    dse::session again(hal17());
    again.load(path);
    again.save(path);
    std::ifstream is(path, std::ios::binary);
    const std::string rewritten((std::istreambuf_iterator<char>(is)), {});
    EXPECT_EQ(rewritten, bytes);
    std::ifstream tmp2(path + ".tmp");
    EXPECT_FALSE(tmp2.good());
    std::remove(path.c_str());
}

TEST(dse_session, save_into_a_missing_directory_fails_loudly)
{
    const std::string path =
        std::string(::testing::TempDir()) + "no_such_dir/never.phlscache";
    dse::session session(hal17());
    session.explore(dse::list({{17, 7.5}}), {}, 1);
    try {
        session.save(path);
        ADD_FAILURE() << "save into a missing directory succeeded";
    } catch (const cache_file_error& e) {
        EXPECT_EQ(e.kind(), cache_file_error::failure::io);
        EXPECT_EQ(e.path(), path);
    }
}

// -------------------------------------------------------- cache merge

TEST(dse_session, merge_unions_disjoint_cache_files)
{
    // Two sessions each compute one half of the grid and save; a fresh
    // session that merges both files replays the WHOLE grid at the
    // metric level, like one cache that had computed everything.
    std::vector<synthesis_constraints> grid;
    for (double cap : hal17().power_grid(6)) grid.push_back({17, cap});
    const std::vector<synthesis_constraints> lo(grid.begin(), grid.begin() + 3);
    const std::vector<synthesis_constraints> hi(grid.begin() + 3, grid.end());

    const std::string lo_path = scratch("session_merge_lo.phlscache");
    const std::string hi_path = scratch("session_merge_hi.phlscache");
    {
        dse::session a(hal17());
        a.explore(dse::list(lo), {}, 1);
        a.save(lo_path);
        dse::session b(hal17());
        b.explore(dse::list(hi), {}, 1);
        b.save(hi_path);
    }

    dse::session merged(hal17());
    const std::size_t from_lo = merged.merge(lo_path);
    const std::size_t from_hi = merged.merge(hi_path);
    EXPECT_GT(from_lo, 0u);
    EXPECT_GT(from_hi, 0u);
    // Merging the same file again contributes nothing.
    EXPECT_EQ(merged.merge(lo_path), 0u);

    const dse::explore_summary replay = merged.explore(dse::list(grid), {}, 1);
    EXPECT_EQ(replay.metric_served, grid.size());

    // And the replayed metrics match a cold evaluation exactly.
    const std::vector<flow_report> reference = hal17().run_batch(grid, 1);
    std::vector<flow_report> got;
    dse::session check(hal17());
    check.merge(lo_path);
    check.merge(hi_path);
    check.explore(dse::list(grid), collector(got), 1);
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].st.code, reference[i].st.code) << i;
        EXPECT_EQ(got[i].area, reference[i].area) << i;
        EXPECT_EQ(got[i].peak, reference[i].peak) << i;
        EXPECT_EQ(got[i].latency, reference[i].latency) << i;
    }
    std::remove(lo_path.c_str());
    std::remove(hi_path.c_str());
}

TEST(dse_session, merge_rejects_a_foreign_problem)
{
    const std::string path = scratch("session_merge_foreign.phlscache");
    saved_cache_bytes(path);
    dse::session cosine_session(flow::on(make_cosine()).with_library(lib()).latency(15));
    try {
        cosine_session.merge(path);
        ADD_FAILURE() << "merge accepted a cache for a different problem";
    } catch (const cache_file_error& e) {
        EXPECT_EQ(e.kind(), cache_file_error::failure::problem_mismatch);
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace phls
