// Tests for the exact branch-and-bound synthesiser, including
// cross-checks against the greedy heuristic (the optimality-gap anchor).
#include <gtest/gtest.h>

#include "cdfg/analysis.h"
#include "cdfg/builder.h"
#include "cdfg/random_dag.h"
#include "library/library.h"
#include "support/errors.h"
#include "synth/exact.h"
#include "synth/verify.h"

namespace phls {
namespace {

const module_library& lib()
{
    static const module_library l = table1_library();
    return l;
}

graph two_adds_two_mults()
{
    graph_builder b("tiny");
    const node_id x = b.input("x");
    const node_id y = b.input("y");
    const node_id a1 = b.add("a1", x, y);
    const node_id a2 = b.add("a2", x, y);
    const node_id m1 = b.mul("m1", a1);
    const node_id m2 = b.mul("m2", a2);
    b.output("o1", m1);
    b.output("o2", m2);
    return b.build();
}

TEST(exact, solves_a_tiny_graph_optimally)
{
    const graph g = two_adds_two_mults();
    const exact_result r = exact_synthesize(g, lib(), {14, unbounded_power});
    ASSERT_TRUE(r.solved);
    ASSERT_TRUE(r.feasible) << r.reason;
    EXPECT_TRUE(verify_datapath(g, lib(), r.dp, {14, unbounded_power}, cost_model{})
                    .empty());
    // With 14 cycles everything can share: one adder, one serial
    // multiplier, one input, one output + registers/muxes.
    double fu = 0;
    for (const fu_instance& inst : r.dp.instances) fu += lib().module(inst.module).area;
    EXPECT_DOUBLE_EQ(fu, 87 + 103 + 16 + 16);
}

TEST(exact, respects_the_power_cap)
{
    const graph g = two_adds_two_mults();
    // Cap below two concurrent serial multipliers.
    const exact_result r = exact_synthesize(g, lib(), {16, 5.0});
    ASSERT_TRUE(r.solved);
    ASSERT_TRUE(r.feasible) << r.reason;
    EXPECT_LE(r.dp.peak_power(lib()), 5.0 + power_tracker::tolerance);
}

TEST(exact, detects_infeasibility)
{
    const graph g = two_adds_two_mults();
    const exact_result tight_power = exact_synthesize(g, lib(), {16, 1.0});
    EXPECT_TRUE(tight_power.solved);
    EXPECT_FALSE(tight_power.feasible);
    const exact_result tight_time = exact_synthesize(g, lib(), {3, unbounded_power});
    EXPECT_TRUE(tight_time.solved);
    EXPECT_FALSE(tight_time.feasible);
}

TEST(exact, tight_latency_forces_the_parallel_multiplier)
{
    graph_builder b("chainmul");
    const node_id x = b.input("x");
    const node_id m1 = b.mul("m1", x);
    const node_id m2 = b.mul("m2", m1);
    b.output("o", m2);
    const graph g = b.build();
    // input(1) + 2 mults + output(1) in 6 cycles: only 2-cycle mults fit.
    const exact_result r = exact_synthesize(g, lib(), {6, unbounded_power});
    ASSERT_TRUE(r.feasible) << r.reason;
    for (const fu_instance& inst : r.dp.instances) {
        if (lib().module(inst.module).supports(op_kind::mult)) {
            EXPECT_EQ(lib().module(inst.module).name, "mult_par");
        }
    }
}

TEST(exact, refuses_oversized_graphs)
{
    random_dag_params params;
    params.operations = 40;
    const graph g = random_dag(params, 1);
    EXPECT_THROW(exact_synthesize(g, lib(), {40, unbounded_power}), error);
}

TEST(exact, node_limit_is_reported_honestly)
{
    random_dag_params params;
    params.operations = 10;
    const graph g = random_dag(params, 2);
    exact_options opts;
    opts.node_limit = 50; // absurdly small
    const exact_result r = exact_synthesize(g, lib(), {30, unbounded_power}, opts);
    EXPECT_FALSE(r.solved);
    EXPECT_FALSE(r.reason.empty());
}

class exact_vs_greedy : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(exact_vs_greedy, greedy_is_never_better_than_the_optimum)
{
    random_dag_params params;
    params.operations = 6;
    params.inputs = 2;
    params.layers = 3;
    const graph g = random_dag(params, GetParam());
    const module_assignment fast = fastest_assignment(g, lib(), unbounded_power);
    const int cp = critical_path_length(
        g, [&](node_id v) { return lib().module(fast[v.index()]).latency; });
    const synthesis_constraints constraints{cp + 4, 12.0};

    const exact_result exact = exact_synthesize(g, lib(), constraints);
    const synthesis_result greedy = synthesize(g, lib(), constraints);
    if (!exact.solved) return; // budget exhausted: nothing to assert
    ASSERT_EQ(exact.feasible, greedy.feasible || exact.feasible);
    if (!exact.feasible) {
        EXPECT_FALSE(greedy.feasible);
        return;
    }
    if (greedy.feasible) {
        EXPECT_LE(exact.dp.area.total(), greedy.dp.area.total() + 1e-9) << g.name();
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, exact_vs_greedy,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

} // namespace
} // namespace phls
