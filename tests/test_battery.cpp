// Tests for the battery substrate: ideal, Peukert and
// Rakhmatov-Vrudhula models, load conversion, lifetime comparisons.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "battery/lifetime.h"
#include "support/errors.h"

namespace phls {
namespace {

load_profile constant_load(double current, double dt = 1.0)
{
    return load_profile{{current}, dt, true};
}

TEST(load, validation_rejects_bad_profiles)
{
    EXPECT_THROW(check_load(load_profile{{}, 1.0, true}), error);
    EXPECT_THROW(check_load(load_profile{{1.0}, 0.0, true}), error);
    EXPECT_THROW(check_load(load_profile{{-0.1}, 1.0, true}), error);
    EXPECT_NO_THROW(check_load(constant_load(1.0)));
}

TEST(ideal, constant_current_lifetime_is_capacity_over_current)
{
    const auto b = make_ideal_battery(100.0);
    EXPECT_NEAR(b->lifetime(constant_load(2.0)).seconds, 50.0, 1e-9);
    EXPECT_NEAR(b->lifetime(constant_load(4.0)).seconds, 25.0, 1e-9);
}

TEST(ideal, interpolates_inside_a_step)
{
    const auto b = make_ideal_battery(1.5);
    // 1 A steps of 1 s: dies halfway through the second step.
    EXPECT_NEAR(b->lifetime(constant_load(1.0)).seconds, 1.5, 1e-9);
}

TEST(ideal, non_periodic_load_ends_at_horizon)
{
    const auto b = make_ideal_battery(100.0);
    load_profile load{{1.0, 1.0}, 1.0, false};
    const lifetime_result r = b->lifetime(load);
    EXPECT_FALSE(r.exhausted);
    EXPECT_NEAR(r.seconds, 2.0, 1e-9);
    EXPECT_NEAR(r.charge_delivered, 2.0, 1e-9);
}

TEST(ideal, profile_shape_is_irrelevant_at_equal_energy)
{
    const auto b = make_ideal_battery(100.0);
    load_profile flat{{2.0, 2.0}, 1.0, true};
    load_profile spiky{{4.0, 0.0}, 1.0, true};
    EXPECT_NEAR(b->lifetime(flat).seconds, b->lifetime(spiky).seconds, 1.0);
}

TEST(ideal, invalid_capacity_throws)
{
    EXPECT_THROW(make_ideal_battery(0.0), error);
    EXPECT_THROW(make_ideal_battery(-1.0), error);
}

TEST(peukert, constant_current_matches_the_classic_law)
{
    // t = C / I^k for constant current.
    const double C = 100.0, k = 1.3;
    const auto b = make_peukert_battery(C, k);
    for (double i : {1.0, 2.0, 3.0})
        EXPECT_NEAR(b->lifetime(constant_load(i)).seconds, C / std::pow(i, k), 1e-6);
}

TEST(peukert, exponent_one_reduces_to_ideal)
{
    const auto p = make_peukert_battery(50.0, 1.0);
    const auto i = make_ideal_battery(50.0);
    load_profile load{{1.0, 3.0, 0.5}, 1.0, true};
    EXPECT_NEAR(p->lifetime(load).seconds, i->lifetime(load).seconds, 1e-9);
}

TEST(peukert, spiky_profile_dies_earlier_at_equal_energy)
{
    const auto b = make_peukert_battery(100.0, 1.25);
    load_profile flat{{2.0, 2.0}, 1.0, true};
    load_profile spiky{{4.0, 0.0}, 1.0, true};
    EXPECT_GT(b->lifetime(flat).seconds, b->lifetime(spiky).seconds);
}

TEST(peukert, invalid_exponent_throws)
{
    EXPECT_THROW(make_peukert_battery(10.0, 0.9), error);
}

TEST(rakhmatov, large_beta_approaches_the_ideal_bucket)
{
    const auto r = make_rakhmatov_battery(60.0, 50.0);
    const auto i = make_ideal_battery(60.0);
    const load_profile load = constant_load(2.0, 0.1);
    EXPECT_NEAR(r->lifetime(load).seconds, i->lifetime(load).seconds, 0.5);
}

TEST(rakhmatov, smaller_beta_means_shorter_life)
{
    const load_profile load = constant_load(2.0, 0.1);
    double last = 1e18;
    for (double beta : {2.0, 0.5, 0.2, 0.1}) {
        const auto r = make_rakhmatov_battery(60.0, beta);
        const double life = r->lifetime(load).seconds;
        EXPECT_LT(life, last) << "beta " << beta;
        last = life;
    }
}

TEST(rakhmatov, recovery_rewards_idle_slack)
{
    // Same charge per period: 2 A continuous vs 4 A half the time.  The
    // pulsed load lets the cell recover during idle steps, but pays a
    // higher unavailable-charge penalty while drawing -- with period
    // comparable to the diffusion time constant the spiky load dies
    // first.
    const auto r = make_rakhmatov_battery(100.0, 0.15);
    load_profile flat{{2.0}, 1.0, true};
    load_profile pulsed{{4.0, 0.0}, 1.0, true};
    EXPECT_GT(r->lifetime(flat).seconds, r->lifetime(pulsed).seconds);
}

TEST(rakhmatov, charge_delivered_is_below_the_nominal_alpha)
{
    // The diffusion penalty strands charge: delivered < alpha.
    const auto r = make_rakhmatov_battery(50.0, 0.2);
    const lifetime_result res = r->lifetime(constant_load(2.0, 0.1));
    EXPECT_TRUE(res.exhausted);
    EXPECT_LT(res.charge_delivered, 50.0);
    EXPECT_GT(res.charge_delivered, 0.0);
}

TEST(rakhmatov, invalid_parameters_throw)
{
    EXPECT_THROW(make_rakhmatov_battery(0.0, 1.0), error);
    EXPECT_THROW(make_rakhmatov_battery(1.0, 0.0), error);
    EXPECT_THROW(make_rakhmatov_battery(1.0, 1.0, 0), error);
}

TEST(to_load, converts_power_to_current_and_appends_idle)
{
    power_profile p;
    p.deposit(0, 1, 6.0);
    p.deposit(1, 1, 3.0);
    const load_profile load = to_load(p, 2.0, 0.5, 2);
    ASSERT_EQ(load.current.size(), 4u);
    EXPECT_DOUBLE_EQ(load.current[0], 3.0);
    EXPECT_DOUBLE_EQ(load.current[1], 1.5);
    EXPECT_DOUBLE_EQ(load.current[2], 0.0);
    EXPECT_DOUBLE_EQ(load.current[3], 0.0);
    EXPECT_DOUBLE_EQ(load.dt, 0.5);
    EXPECT_TRUE(load.periodic);
}

TEST(to_load, rejects_bad_arguments)
{
    power_profile p;
    p.deposit(0, 1, 1.0);
    EXPECT_THROW(to_load(p, 0.0, 1.0), error);
    EXPECT_THROW(to_load(p, 1.0, 0.0), error);
    EXPECT_THROW(to_load(p, 1.0, 1.0, -1), error);
    EXPECT_THROW(to_load(power_profile{}, 1.0, 1.0), error);
}

/// Two bursts separated by `gap` idle cycles — the shape the preemptive
/// task policy produces when it inserts a recovery gap.
power_profile two_burst_profile(int len1, double h1, int gap, int len2, double h2)
{
    power_profile p;
    p.deposit(0, len1, h1);
    p.deposit(len1 + gap, len2, h2);
    return p;
}

// The invariant the task engine's recovery-gap policy exploits: under
// the Rakhmatov diffusion model, widening the idle gap between two
// bursts never shortens the lifetime (the cell recovers during idle).
// Property-tested on randomized burst shapes, periodic and one-shot.
TEST(rakhmatov, longer_idle_gap_between_bursts_never_hurts_periodic)
{
    std::mt19937_64 rng(20260808);
    std::uniform_int_distribution<int> len_d(2, 6);
    std::uniform_real_distribution<double> height_d(2.0, 8.0);
    for (int trial = 0; trial < 12; ++trial) {
        const int len1 = len_d(rng);
        const int len2 = len_d(rng);
        const double h1 = height_d(rng);
        const double h2 = height_d(rng);
        const double energy = len1 * h1 + len2 * h2;
        const auto b = make_rakhmatov_battery(/*alpha=*/energy * 0.5 * 30.0,
                                              /*beta=*/0.1);
        double prev = -1.0;
        for (const int gap : {0, 1, 2, 4, 8, 16}) {
            const power_profile p = two_burst_profile(len1, h1, gap, len2, h2);
            const double life =
                b->lifetime(to_load(p, 1.0, 0.5), /*max_seconds=*/1e6).seconds;
            EXPECT_GE(life, prev - 1e-9)
                << "trial " << trial << " gap " << gap;
            prev = life;
        }
    }
}

TEST(rakhmatov, longer_idle_gap_between_bursts_never_hurts_one_shot)
{
    std::mt19937_64 rng(20260809);
    std::uniform_int_distribution<int> len_d(3, 8);
    std::uniform_real_distribution<double> height_d(3.0, 9.0);
    for (int trial = 0; trial < 12; ++trial) {
        const int len1 = len_d(rng);
        const int len2 = len_d(rng);
        const double h1 = height_d(rng);
        const double h2 = height_d(rng);
        // Capacity that dies inside the second burst at gap 0, so the
        // recovery effect is visible rather than saturated at the horizon.
        const double charge = (len1 * h1 + len2 * h2) * 0.5;
        const auto b = make_rakhmatov_battery(/*alpha=*/charge * 0.8,
                                              /*beta=*/0.1);
        double prev = -1.0;
        for (const int gap : {0, 1, 2, 4, 8, 16, 32}) {
            load_profile load =
                to_load(two_burst_profile(len1, h1, gap, len2, h2), 1.0, 0.5);
            load.periodic = false;
            const double life = b->lifetime(load, /*max_seconds=*/1e6).seconds;
            EXPECT_GE(life, prev - 1e-9)
                << "trial " << trial << " gap " << gap;
            prev = life;
        }
    }
}

TEST(lifetime_gain, positive_when_candidate_outlives_baseline)
{
    const auto b = make_peukert_battery(100.0, 1.3);
    load_profile flat{{2.0, 2.0}, 1.0, true};
    load_profile spiky{{4.0, 0.0}, 1.0, true};
    EXPECT_GT(lifetime_gain(*b, spiky, flat), 0.0);
    EXPECT_LT(lifetime_gain(*b, flat, spiky), 0.0);
    EXPECT_NEAR(lifetime_gain(*b, flat, flat), 0.0, 1e-12);
}

} // namespace
} // namespace phls
