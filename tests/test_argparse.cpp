// Tests for the CLI argument parser.
#include <gtest/gtest.h>

#include "support/argparse.h"
#include "support/errors.h"

namespace phls {
namespace {

arg_parser make_parser()
{
    arg_parser p("tool");
    p.add_option("--latency", "-T", "latency bound");
    p.add_option("--points", "", "grid size", "20");
    p.add_flag("--verify", "-v", "run checks");
    return p;
}

TEST(argparse, parses_long_and_short_options)
{
    arg_parser p = make_parser();
    ASSERT_TRUE(p.parse({"synth", "hal", "-T", "17", "--verify"}));
    EXPECT_TRUE(p.has("--latency"));
    EXPECT_EQ(p.get_int("--latency"), 17);
    EXPECT_TRUE(p.has("--verify"));
    ASSERT_EQ(p.positionals().size(), 2u);
    EXPECT_EQ(p.positionals()[0], "synth");
    EXPECT_EQ(p.positionals()[1], "hal");
}

TEST(argparse, equals_syntax)
{
    arg_parser p = make_parser();
    ASSERT_TRUE(p.parse({"--latency=22"}));
    EXPECT_EQ(p.get_int("--latency"), 22);
}

TEST(argparse, short_alias_resolves_to_the_same_option)
{
    arg_parser p = make_parser();
    ASSERT_TRUE(p.parse({"-v"}));
    EXPECT_TRUE(p.has("--verify"));
    EXPECT_TRUE(p.has("-v"));
}

TEST(argparse, defaults_apply_when_absent)
{
    arg_parser p = make_parser();
    ASSERT_TRUE(p.parse({}));
    EXPECT_FALSE(p.has("--points"));
    EXPECT_EQ(p.get_int("--points"), 20);
    EXPECT_FALSE(p.has("--verify"));
}

TEST(argparse, unknown_option_is_an_error)
{
    arg_parser p = make_parser();
    EXPECT_FALSE(p.parse({"--bogus"}));
    EXPECT_NE(p.error().find("--bogus"), std::string::npos);
}

TEST(argparse, missing_value_is_an_error)
{
    arg_parser p = make_parser();
    EXPECT_FALSE(p.parse({"--latency"}));
    EXPECT_NE(p.error().find("needs a value"), std::string::npos);
}

TEST(argparse, flag_with_value_is_an_error)
{
    arg_parser p = make_parser();
    EXPECT_FALSE(p.parse({"--verify=yes"}));
}

TEST(argparse, get_on_flag_or_unregistered_name_throws)
{
    arg_parser p = make_parser();
    ASSERT_TRUE(p.parse({"-v"}));
    EXPECT_THROW(p.get("--verify"), error);
    EXPECT_THROW(p.get("--nope"), error);
    EXPECT_THROW(p.has("--nope"), error);
}

TEST(argparse, non_numeric_value_throws_on_typed_get)
{
    arg_parser p = make_parser();
    ASSERT_TRUE(p.parse({"--latency", "abc"}));
    EXPECT_THROW(p.get_int("--latency"), error);
}

TEST(argparse, usage_lists_options_and_defaults)
{
    const arg_parser p = make_parser();
    const std::string u = p.usage();
    EXPECT_NE(u.find("--latency"), std::string::npos);
    EXPECT_NE(u.find("-T"), std::string::npos);
    EXPECT_NE(u.find("default: 20"), std::string::npos);
}

} // namespace
} // namespace phls
