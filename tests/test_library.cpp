// Tests for the FU library substrate: module validation, Table 1
// contents (pinned against the paper), selection queries, text format.
#include <gtest/gtest.h>

#include "cdfg/benchmarks.h"
#include "library/cost_model.h"
#include "library/library.h"
#include "support/errors.h"

namespace phls {
namespace {

TEST(fu_module, make_module_populates_and_validates)
{
    const fu_module m = make_module("alu", {op_kind::add, op_kind::sub}, 97, 1, 2.5);
    EXPECT_TRUE(m.supports(op_kind::add));
    EXPECT_TRUE(m.supports(op_kind::sub));
    EXPECT_FALSE(m.supports(op_kind::mult));
    EXPECT_DOUBLE_EQ(m.energy(), 2.5);
    EXPECT_EQ(m.ops_string(), "{+,-}");
}

TEST(fu_module, validation_rejects_nonsense)
{
    EXPECT_THROW(make_module("", {op_kind::add}, 1, 1, 1), error);
    EXPECT_THROW(make_module("m", {}, 1, 1, 1), error);
    EXPECT_THROW(make_module("m", {op_kind::add}, -1, 1, 1), error);
    EXPECT_THROW(make_module("m", {op_kind::add}, 1, 0, 1), error);
    EXPECT_THROW(make_module("m", {op_kind::add}, 1, 1, -0.5), error);
    // io kinds cannot mix with arithmetic or each other
    EXPECT_THROW(make_module("m", {op_kind::input, op_kind::add}, 1, 1, 1), error);
    EXPECT_THROW(make_module("m", {op_kind::input, op_kind::output}, 1, 1, 1), error);
}

TEST(fu_module, energy_is_latency_times_power)
{
    const fu_module ser = make_module("ms", {op_kind::mult}, 103, 4, 2.7);
    const fu_module par = make_module("mp", {op_kind::mult}, 339, 2, 8.1);
    EXPECT_DOUBLE_EQ(ser.energy(), 10.8);
    EXPECT_DOUBLE_EQ(par.energy(), 16.2);
    EXPECT_LT(ser.energy(), par.energy()); // the paper's trade
}

TEST(table1, matches_the_paper_exactly)
{
    const module_library lib = table1_library();
    ASSERT_EQ(lib.size(), 8);
    const auto row = [&](const char* name, double area, int cycles, double power) {
        const auto id = lib.find(name);
        ASSERT_TRUE(id.has_value()) << name;
        const fu_module& m = lib.module(*id);
        EXPECT_DOUBLE_EQ(m.area, area) << name;
        EXPECT_EQ(m.latency, cycles) << name;
        EXPECT_DOUBLE_EQ(m.power, power) << name;
    };
    row("add", 87, 1, 2.5);
    row("sub", 87, 1, 2.5);
    row("comp", 8, 1, 2.5);
    row("ALU", 97, 1, 2.5);
    row("mult_ser", 103, 4, 2.7);
    row("mult_par", 339, 2, 8.1);
    row("input", 16, 1, 0.2);
    row("output", 16, 1, 1.7);
}

TEST(table1, alu_implements_the_three_kinds)
{
    const module_library lib = table1_library();
    const fu_module& alu = lib.module(*lib.find("ALU"));
    EXPECT_TRUE(alu.supports(op_kind::add));
    EXPECT_TRUE(alu.supports(op_kind::sub));
    EXPECT_TRUE(alu.supports(op_kind::comp));
    EXPECT_FALSE(alu.supports(op_kind::mult));
}

TEST(library, duplicate_names_rejected)
{
    module_library lib("l");
    lib.add(make_module("a", {op_kind::add}, 1, 1, 1));
    EXPECT_THROW(lib.add(make_module("a", {op_kind::sub}, 1, 1, 1)), error);
}

TEST(library, candidates_in_library_order)
{
    const module_library lib = table1_library();
    const std::vector<module_id> mults = lib.candidates_for(op_kind::mult);
    ASSERT_EQ(mults.size(), 2u);
    EXPECT_EQ(lib.module(mults[0]).name, "mult_ser");
    EXPECT_EQ(lib.module(mults[1]).name, "mult_par");
    const std::vector<module_id> adds = lib.candidates_for(op_kind::add);
    ASSERT_EQ(adds.size(), 2u); // add + ALU
}

TEST(library, fastest_for_respects_the_power_cap)
{
    const module_library lib = table1_library();
    // Unconstrained: parallel multiplier wins on latency.
    EXPECT_EQ(lib.module(*lib.fastest_for(op_kind::mult, 100.0)).name, "mult_par");
    // Below 8.1 the serial multiplier is the only choice.
    EXPECT_EQ(lib.module(*lib.fastest_for(op_kind::mult, 5.0)).name, "mult_ser");
    // Below 2.7 nothing multiplies.
    EXPECT_FALSE(lib.fastest_for(op_kind::mult, 2.0).has_value());
}

TEST(library, fastest_ties_break_on_power_then_area)
{
    const module_library lib = table1_library();
    // add and ALU both take 1 cycle at 2.5 power; add wins on area.
    EXPECT_EQ(lib.module(*lib.fastest_for(op_kind::add, 100.0)).name, "add");
    // comp: comp (8) beats ALU (97).
    EXPECT_EQ(lib.module(*lib.fastest_for(op_kind::comp, 100.0)).name, "comp");
}

TEST(library, cheapest_for_minimises_area)
{
    const module_library lib = table1_library();
    EXPECT_EQ(lib.module(*lib.cheapest_for(op_kind::mult, 100.0)).name, "mult_ser");
    EXPECT_EQ(lib.module(*lib.cheapest_for(op_kind::comp, 100.0)).name, "comp");
    EXPECT_FALSE(lib.cheapest_for(op_kind::mult, 1.0).has_value());
}

TEST(library, min_power_for_kind)
{
    const module_library lib = table1_library();
    EXPECT_DOUBLE_EQ(*lib.min_power_for(op_kind::mult), 2.7);
    EXPECT_DOUBLE_EQ(*lib.min_power_for(op_kind::input), 0.2);
    module_library empty("e");
    EXPECT_FALSE(empty.min_power_for(op_kind::add).has_value());
}

TEST(library, check_covers_flags_missing_kinds)
{
    module_library lib("partial");
    lib.add(make_module("add", {op_kind::add}, 87, 1, 2.5));
    lib.add(make_module("in", {op_kind::input}, 16, 1, 0.2));
    lib.add(make_module("out", {op_kind::output}, 16, 1, 1.7));
    EXPECT_THROW(lib.check_covers(make_hal()), error); // no mult/sub/comp
    EXPECT_NO_THROW(table1_library().check_covers(make_hal()));
}

TEST(library_text, roundtrip_preserves_modules)
{
    const module_library lib = table1_library();
    const module_library lib2 = parse_library_string(write_library_string(lib));
    ASSERT_EQ(lib2.size(), lib.size());
    EXPECT_EQ(lib2.name(), lib.name());
    for (const fu_module& m : lib.modules()) {
        const auto id = lib2.find(m.name);
        ASSERT_TRUE(id.has_value());
        EXPECT_EQ(lib2.module(*id).ops, m.ops);
        EXPECT_DOUBLE_EQ(lib2.module(*id).area, m.area);
        EXPECT_EQ(lib2.module(*id).latency, m.latency);
        EXPECT_DOUBLE_EQ(lib2.module(*id).power, m.power);
    }
}

TEST(library_text, accepts_symbols_as_op_names)
{
    const module_library lib =
        parse_library_string("library l\nmodule alu + - > area 97 cycles 1 power 2.5\n");
    const fu_module& alu = lib.module(module_id(0));
    EXPECT_TRUE(alu.supports(op_kind::add));
    EXPECT_TRUE(alu.supports(op_kind::comp));
}

TEST(library_text, errors_carry_line_numbers)
{
    try {
        parse_library_string("library l\nmodule bad add area x cycles 1 power 1\n");
        FAIL();
    } catch (const parse_error& e) {
        EXPECT_EQ(e.line(), 2);
    }
    EXPECT_THROW(parse_library_string("module a add area 1 cycles 1 power 1\n"), error);
    EXPECT_THROW(parse_library_string("library l\nmodule a add area 1\n"), parse_error);
}

TEST(cost_model, mux_cost_charges_extra_inputs_only)
{
    const cost_model cm;
    EXPECT_DOUBLE_EQ(cm.mux_cost(0), 0.0);
    EXPECT_DOUBLE_EQ(cm.mux_cost(1), 0.0);
    EXPECT_DOUBLE_EQ(cm.mux_cost(3), 2 * cm.mux_area_per_extra_input);
    cost_model off;
    off.include_interconnect = false;
    EXPECT_DOUBLE_EQ(off.mux_cost(5), 0.0);
}

TEST(cost_model, describe_mentions_the_mode)
{
    cost_model cm;
    EXPECT_NE(describe(cm).find("register"), std::string::npos);
    cm.include_interconnect = false;
    EXPECT_NE(describe(cm).find("FU area only"), std::string::npos);
}

} // namespace
} // namespace phls
