// Tests for the batch explore_cache (shared per-(graph, lib) sub-results)
// and the streaming batch report channel.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "cdfg/benchmarks.h"
#include "flow/explore_cache.h"
#include "flow/flow.h"
#include "support/errors.h"
#include "synth/prospect.h"

namespace phls {
namespace {

const module_library& lib()
{
    static const module_library l = table1_library();
    return l;
}

std::vector<synthesis_constraints> hal_grid(int points)
{
    const flow f = flow::on(make_hal()).with_library(lib()).latency(17);
    std::vector<synthesis_constraints> grid;
    for (double cap : f.power_grid(points)) grid.push_back({17, cap});
    return grid;
}

// ------------------------------------------------------------------ cache

TEST(explore_cache, cached_batches_are_byte_identical_to_uncached_across_threads)
{
    const graph g = make_cosine();
    const flow base = flow::on(g).with_library(lib()).latency(15);
    std::vector<synthesis_constraints> grid;
    for (double cap : base.power_grid(16)) grid.push_back({15, cap});

    // The uncached sequential run is the pre-cache engine behaviour.
    const std::vector<flow_report> reference =
        flow::on(g).with_library(lib()).latency(15).caching(false).run_batch(grid, 1);
    ASSERT_EQ(reference.size(), grid.size());

    const auto cache = base.build_cache();
    const flow cached = flow::on(g).with_library(lib()).latency(15).reuse(cache);
    for (int threads : {1, 2, 8}) {
        const std::vector<flow_report> reports = cached.run_batch(grid, threads);
        ASSERT_EQ(reports.size(), reference.size()) << threads << " threads";
        for (std::size_t i = 0; i < reports.size(); ++i)
            EXPECT_EQ(reports[i].to_string(), reference[i].to_string())
                << threads << " threads, point " << i;
    }
}

TEST(explore_cache, hits_are_taken_on_a_16_point_sweep)
{
    const auto cache = std::make_shared<explore_cache>(make_hal(), lib());
    const flow f = flow::on(make_hal()).with_library(lib()).latency(17).reuse(cache);
    const std::vector<flow_report> reports = f.run_batch(hal_grid(16), 2);
    ASSERT_EQ(reports.size(), 16u);

    const explore_cache::counters c = cache->stats();
    EXPECT_GT(c.hits, 0);
    // Every feasible point takes several hits (prospect tables from both
    // policies, the initial windows' table, reachability), so a 16-point
    // sweep lands well past one hit per point.
    EXPECT_GE(c.hits, 16);
    // Far fewer distinct computations than lookups: the sweep shares them.
    EXPECT_LT(c.misses, c.hits);
}

TEST(explore_cache, prospect_lookup_matches_direct_computation)
{
    const graph g = make_cosine();
    const explore_cache cache(g, lib());
    for (double cap : {2.0, 2.5, 2.8, 7.0, 8.1, 9.0, 40.0, unbounded_power}) {
        for (prospect_policy policy :
             {prospect_policy::fastest_fit, prospect_policy::cheapest_fit}) {
            const prospect_result direct = make_prospect(g, lib(), policy, cap);
            const prospect_result via_cache = cache.prospect(policy, cap);
            ASSERT_EQ(direct.ok, via_cache.ok) << "cap " << cap;
            EXPECT_EQ(direct.assignment, via_cache.assignment) << "cap " << cap;
            EXPECT_EQ(direct.reason, via_cache.reason) << "cap " << cap;
        }
    }
    EXPECT_GT(cache.stats().hits, 0); // buckets repeat across those caps
}

TEST(explore_cache, auto_cache_keeps_run_batch_output_stable)
{
    // run_batch builds a per-batch cache by default; disabling it must
    // not change a single byte.
    const graph g = make_hal();
    const std::vector<synthesis_constraints> grid = hal_grid(12);
    const std::vector<flow_report> with_cache =
        flow::on(g).with_library(lib()).latency(17).run_batch(grid, 2);
    const std::vector<flow_report> without_cache =
        flow::on(g).with_library(lib()).latency(17).caching(false).run_batch(grid, 2);
    ASSERT_EQ(with_cache.size(), without_cache.size());
    for (std::size_t i = 0; i < with_cache.size(); ++i)
        EXPECT_EQ(with_cache[i].to_string(), without_cache[i].to_string()) << i;
}

TEST(explore_cache, stale_cache_is_reported_not_silently_recomputed)
{
    const auto cache = std::make_shared<explore_cache>(make_hal(), lib());
    // Same library, different graph: every run must refuse loudly.
    const flow f = flow::on(make_cosine()).with_library(lib()).latency(15).reuse(cache);
    const flow_report single = f.run();
    EXPECT_EQ(single.st.code, status_code::invalid_argument);
    const std::vector<flow_report> batch = f.run_batch({{15, 9.0}, {15, 20.0}}, 2);
    ASSERT_EQ(batch.size(), 2u);
    for (const flow_report& r : batch)
        EXPECT_EQ(r.st.code, status_code::invalid_argument);
    const sched_outcome sched = f.run_schedule();
    EXPECT_EQ(sched.st.code, status_code::invalid_argument);
}

TEST(explore_cache, rejects_malformed_problems_at_construction)
{
    const module_library empty = parse_library_string("library empty\n");
    EXPECT_THROW(explore_cache(make_hal(), empty), error);
}

TEST(explore_cache, fastest_lookup_matches_direct_computation)
{
    const graph g = make_hal();
    const explore_cache cache(g, lib());
    for (double cap : {2.0, 3.0, 8.1, 20.0, unbounded_power})
        EXPECT_EQ(cache.fastest(cap), fastest_assignment(g, lib(), cap)) << cap;
}

// -------------------------------------------------------------- streaming

TEST(flow_stream, callback_sees_every_point_exactly_once)
{
    const graph g = make_hal();
    const flow f = flow::on(g).with_library(lib()).latency(17);
    const std::vector<synthesis_constraints> grid = hal_grid(10);

    std::set<std::size_t> seen;
    std::atomic<int> calls{0};
    const std::vector<flow_report> reports = f.run_batch_stream(
        grid,
        [&](std::size_t i, const flow_report& r) {
            ++calls;
            EXPECT_TRUE(seen.insert(i).second) << "index " << i << " delivered twice";
            ASSERT_LT(i, grid.size());
            EXPECT_EQ(r.constraints.latency, grid[i].latency);
            EXPECT_DOUBLE_EQ(r.constraints.max_power, grid[i].max_power);
        },
        4);
    EXPECT_EQ(calls.load(), static_cast<int>(grid.size()));
    EXPECT_EQ(seen.size(), grid.size());
    ASSERT_EQ(reports.size(), grid.size());
}

TEST(flow_stream, streamed_reports_match_the_final_vector)
{
    const graph g = make_cosine();
    const flow f = flow::on(g).with_library(lib()).latency(15);
    std::vector<synthesis_constraints> grid;
    for (double cap : f.power_grid(8)) grid.push_back({15, cap});

    std::vector<std::string> streamed(grid.size());
    const std::vector<flow_report> reports = f.run_batch_stream(
        grid,
        [&](std::size_t i, const flow_report& r) { streamed[i] = r.to_string(); }, 3);
    ASSERT_EQ(reports.size(), grid.size());
    for (std::size_t i = 0; i < reports.size(); ++i)
        EXPECT_EQ(streamed[i], reports[i].to_string()) << i;

    // And the final vector is byte-identical to the non-streaming run.
    const std::vector<flow_report> plain = f.run_batch(grid, 1);
    for (std::size_t i = 0; i < reports.size(); ++i)
        EXPECT_EQ(reports[i].to_string(), plain[i].to_string()) << i;
}

TEST(flow_stream, empty_callback_degrades_to_run_batch)
{
    const flow f = flow::on(make_hal()).with_library(lib()).latency(17);
    const std::vector<synthesis_constraints> grid = {{17, 9.0}, {17, 1.0}};
    const std::vector<flow_report> a = f.run_batch_stream(grid, {}, 2);
    const std::vector<flow_report> b = f.run_batch(grid, 2);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].to_string(), b[i].to_string());
}

TEST(flow_stream, callback_exception_is_rethrown_after_the_batch_drains)
{
    const flow f = flow::on(make_hal()).with_library(lib()).latency(17);
    const std::vector<synthesis_constraints> grid = hal_grid(6);
    std::atomic<int> calls{0};
    EXPECT_THROW(f.run_batch_stream(
                     grid,
                     [&](std::size_t, const flow_report&) {
                         ++calls;
                         throw std::runtime_error("consumer failed");
                     },
                     3),
                 std::runtime_error);
    // The first throw cancels the remaining deliveries.
    EXPECT_EQ(calls.load(), 1);
}

} // namespace
} // namespace phls
