// Tests for the batch explore_cache (shared per-(graph, lib) sub-results)
// and the streaming batch report channel.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <set>
#include <thread>

#include "cdfg/benchmarks.h"
#include "flow/explore_cache.h"
#include "flow/flow.h"
#include "sched/mobility.h"
#include "support/errors.h"
#include "synth/prospect.h"
#include "synth/two_step.h"

namespace phls {
namespace {

const module_library& lib()
{
    static const module_library l = table1_library();
    return l;
}

std::vector<synthesis_constraints> hal_grid(int points)
{
    const flow f = flow::on(make_hal()).with_library(lib()).latency(17);
    std::vector<synthesis_constraints> grid;
    for (double cap : f.power_grid(points)) grid.push_back({17, cap});
    return grid;
}

// ------------------------------------------------------------------ cache

TEST(explore_cache, cached_batches_are_byte_identical_to_uncached_across_threads)
{
    const graph g = make_cosine();
    const flow base = flow::on(g).with_library(lib()).latency(15);
    std::vector<synthesis_constraints> grid;
    for (double cap : base.power_grid(16)) grid.push_back({15, cap});

    // The uncached sequential run is the pre-cache engine behaviour.
    const std::vector<flow_report> reference =
        flow::on(g).with_library(lib()).latency(15).caching(false).run_batch(grid, 1);
    ASSERT_EQ(reference.size(), grid.size());

    const auto cache = base.build_cache();
    const flow cached = flow::on(g).with_library(lib()).latency(15).reuse(cache);
    for (int threads : {1, 2, 8}) {
        const std::vector<flow_report> reports = cached.run_batch(grid, threads);
        ASSERT_EQ(reports.size(), reference.size()) << threads << " threads";
        for (std::size_t i = 0; i < reports.size(); ++i)
            EXPECT_EQ(reports[i].to_string(), reference[i].to_string())
                << threads << " threads, point " << i;
    }
}

TEST(explore_cache, hits_are_taken_on_a_16_point_sweep)
{
    const auto cache = std::make_shared<explore_cache>(make_hal(), lib());
    const flow f = flow::on(make_hal()).with_library(lib()).latency(17).reuse(cache);
    const std::vector<flow_report> reports = f.run_batch(hal_grid(16), 2);
    ASSERT_EQ(reports.size(), 16u);

    const explore_cache::counters c = cache->stats();
    EXPECT_GT(c.hits, 0);
    // Every feasible point takes several hits (prospect tables from both
    // policies, the initial windows' table, reachability), so a 16-point
    // sweep lands well past one hit per point.
    EXPECT_GE(c.hits, 16);
    // Far fewer distinct computations than lookups: the sweep shares them.
    EXPECT_LT(c.misses, c.hits);
}

TEST(explore_cache, prospect_lookup_matches_direct_computation)
{
    const graph g = make_cosine();
    const explore_cache cache(g, lib());
    for (double cap : {2.0, 2.5, 2.8, 7.0, 8.1, 9.0, 40.0, unbounded_power}) {
        for (prospect_policy policy :
             {prospect_policy::fastest_fit, prospect_policy::cheapest_fit}) {
            const prospect_result direct = make_prospect(g, lib(), policy, cap);
            const prospect_result via_cache = cache.prospect(policy, cap);
            ASSERT_EQ(direct.ok, via_cache.ok) << "cap " << cap;
            EXPECT_EQ(direct.assignment, via_cache.assignment) << "cap " << cap;
            EXPECT_EQ(direct.reason, via_cache.reason) << "cap " << cap;
        }
    }
    EXPECT_GT(cache.stats().hits, 0); // buckets repeat across those caps
}

TEST(explore_cache, auto_cache_keeps_run_batch_output_stable)
{
    // run_batch builds a per-batch cache by default; disabling it must
    // not change a single byte.
    const graph g = make_hal();
    const std::vector<synthesis_constraints> grid = hal_grid(12);
    const std::vector<flow_report> with_cache =
        flow::on(g).with_library(lib()).latency(17).run_batch(grid, 2);
    const std::vector<flow_report> without_cache =
        flow::on(g).with_library(lib()).latency(17).caching(false).run_batch(grid, 2);
    ASSERT_EQ(with_cache.size(), without_cache.size());
    for (std::size_t i = 0; i < with_cache.size(); ++i)
        EXPECT_EQ(with_cache[i].to_string(), without_cache[i].to_string()) << i;
}

TEST(explore_cache, stale_cache_is_reported_not_silently_recomputed)
{
    const auto cache = std::make_shared<explore_cache>(make_hal(), lib());
    // Same library, different graph: every run must refuse loudly.
    const flow f = flow::on(make_cosine()).with_library(lib()).latency(15).reuse(cache);
    const flow_report single = f.run();
    EXPECT_EQ(single.st.code, status_code::invalid_argument);
    const std::vector<flow_report> batch = f.run_batch({{15, 9.0}, {15, 20.0}}, 2);
    ASSERT_EQ(batch.size(), 2u);
    for (const flow_report& r : batch)
        EXPECT_EQ(r.st.code, status_code::invalid_argument);
    const sched_outcome sched = f.run_schedule();
    EXPECT_EQ(sched.st.code, status_code::invalid_argument);
}

TEST(explore_cache, rejects_malformed_problems_at_construction)
{
    const module_library empty = parse_library_string("library empty\n");
    EXPECT_THROW(explore_cache(make_hal(), empty), error);
}

TEST(explore_cache, fastest_lookup_matches_direct_computation)
{
    const graph g = make_hal();
    const explore_cache cache(g, lib());
    for (double cap : {2.0, 3.0, 8.1, 20.0, unbounded_power})
        EXPECT_EQ(cache.fastest(cap), fastest_assignment(g, lib(), cap)) << cap;
}

// Many threads race misses of ONE key: exactly one thread must count the
// miss (the one whose insert wins) and every other lookup must count a
// hit, so hits + misses equals the number of lookups on any machine.
// Before the re-check-under-the-lock fix, every racing thread counted a
// miss and the totals drifted on multicore.
TEST(explore_cache, counters_are_exact_under_concurrent_misses_of_one_key)
{
    const graph g = make_hal();
    const explore_cache cache(g, lib());
    constexpr int threads = 8;
    constexpr int lookups_per_thread = 4;

    std::atomic<bool> go{false};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t)
        pool.emplace_back([&] {
            while (!go.load()) std::this_thread::yield();
            for (int i = 0; i < lookups_per_thread; ++i) (void)cache.fastest(9.0);
        });
    go.store(true);
    for (std::thread& t : pool) t.join();

    const explore_cache::counters c = cache.stats();
    // One counted miss for the key + the eager reachability build.
    EXPECT_EQ(c.misses, 2);
    EXPECT_EQ(c.hits, threads * lookups_per_thread - 1);
}

TEST(explore_cache, committed_counters_are_exact_under_concurrent_misses)
{
    const graph g = make_hal();
    const explore_cache cache(g, lib());
    const module_assignment a = fastest_assignment(g, lib(), 9.0);
    const std::vector<int> all_free(static_cast<std::size_t>(g.node_count()), -1);
    constexpr int threads = 8;
    constexpr int lookups_per_thread = 4;

    std::atomic<bool> go{false};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t)
        pool.emplace_back([&] {
            while (!go.load()) std::this_thread::yield();
            for (int i = 0; i < lookups_per_thread; ++i)
                (void)cache.committed_windows(a, 9.0, 17, pasap_order::critical_path,
                                              all_free);
        });
    go.store(true);
    for (std::thread& t : pool) t.join();

    const explore_cache::counters c = cache.stats();
    EXPECT_EQ(c.committed_misses, 1);
    EXPECT_EQ(c.committed_hits, threads * lookups_per_thread - 1);
}

// ------------------------------------------------- level 1: committed windows

TEST(explore_cache, committed_windows_match_direct_computation)
{
    const graph g = make_hal();
    const explore_cache cache(g, lib());
    const module_assignment a = fastest_assignment(g, lib(), 9.0);

    std::vector<int> fixed(static_cast<std::size_t>(g.node_count()), -1);
    for (int variant = 0; variant < 3; ++variant) {
        if (variant == 1) fixed[0] = 0;    // pin the source
        if (variant == 2) fixed[3] = 2;    // plus an interior operator
        for (const int latency : {17, 20, 5 /* infeasible bound */}) {
            pasap_options opts;
            opts.order = pasap_order::critical_path;
            opts.fixed_starts = fixed;
            const time_windows direct = power_windows(g, lib(), a, 9.0, latency, opts);
            const time_windows cached = cache.committed_windows(
                a, 9.0, latency, pasap_order::critical_path, fixed);
            ASSERT_EQ(direct.feasible, cached.feasible) << variant << " T=" << latency;
            EXPECT_EQ(direct.reason, cached.reason) << variant << " T=" << latency;
            EXPECT_EQ(direct.s_min, cached.s_min) << variant << " T=" << latency;
            EXPECT_EQ(direct.s_max, cached.s_max) << variant << " T=" << latency;
        }
    }
    // Repeating one state is a hit, not a recompute.
    EXPECT_GT(cache.stats().committed_misses, 0);
    const long misses_before = cache.stats().committed_misses;
    (void)cache.committed_windows(a, 9.0, 17, pasap_order::critical_path, fixed);
    EXPECT_EQ(cache.stats().committed_misses, misses_before);
    EXPECT_GT(cache.stats().committed_hits, 0);
}

TEST(explore_cache, two_step_shares_step_one_windows_across_a_cap_sweep)
{
    // two_step's first step relaxes the cap away, so every point of a
    // power sweep solves the same scheduling problem; the batch cache
    // must serve it after the first point, byte-identically.
    const graph g = make_hal();
    const std::vector<synthesis_constraints> grid = hal_grid(8);
    const std::vector<flow_report> reference = flow::on(g)
                                                   .with_library(lib())
                                                   .latency(17)
                                                   .synthesizer("two_step")
                                                   .caching(false)
                                                   .run_batch(grid, 1);
    const auto cache = std::make_shared<explore_cache>(g, lib());
    const std::vector<flow_report> cached = flow::on(g)
                                                .with_library(lib())
                                                .latency(17)
                                                .synthesizer("two_step")
                                                .reuse(cache)
                                                .run_batch(grid, 1);
    ASSERT_EQ(cached.size(), reference.size());
    for (std::size_t i = 0; i < cached.size(); ++i)
        EXPECT_EQ(cached[i].to_string(), reference[i].to_string()) << i;
    EXPECT_GT(cache->stats().committed_hits, 0);

    // The free function accepts the cache directly too.
    const two_step_result with = two_step_synthesize(g, lib(), {17, 9.0}, {}, cache.get());
    const two_step_result without = two_step_synthesize(g, lib(), {17, 9.0});
    ASSERT_EQ(with.feasible, without.feasible);
    EXPECT_EQ(with.dp.sched.starts(), without.dp.sched.starts());
    EXPECT_DOUBLE_EQ(with.peak_after, without.peak_after);
}

// ----------------------------------------------------- level 2: report memo

TEST(explore_cache, report_memo_serves_exact_duplicates_byte_identically)
{
    const graph g = make_hal();
    const std::vector<synthesis_constraints> grid = {
        {17, 9.0}, {17, 7.0}, {17, 9.0}, {17, 7.0}, {17, 9.0}};
    const std::vector<flow_report> reference =
        flow::on(g).with_library(lib()).caching(false).run_batch(grid, 1);

    const auto cache = std::make_shared<explore_cache>(g, lib());
    const flow f = flow::on(g).with_library(lib()).reuse(cache);
    const std::vector<flow_report> cached = f.run_batch(grid, 1);
    ASSERT_EQ(cached.size(), reference.size());
    for (std::size_t i = 0; i < cached.size(); ++i)
        EXPECT_EQ(cached[i].to_string(), reference[i].to_string()) << i;

    // 2 distinct points -> 2 stored reports, 3 duplicate hits (exact at
    // one thread).
    EXPECT_EQ(cache->stats().report_misses, 2);
    EXPECT_EQ(cache->stats().report_hits, 3);

    // A repeated sweep over the shared cache is served whole.
    const std::vector<flow_report> again = f.run_batch(grid, 1);
    for (std::size_t i = 0; i < again.size(); ++i)
        EXPECT_EQ(again[i].to_string(), reference[i].to_string()) << i;
    EXPECT_EQ(cache->stats().report_hits, 8);
    EXPECT_EQ(cache->stats().report_misses, 2);
}

TEST(explore_cache, report_memo_fingerprint_separates_configurations)
{
    // One shared cache, one constraint point, several configurations:
    // every cached run must match its own uncached reference, proving
    // the fingerprints never collide across strategies or options.
    const graph g = make_hal();
    const auto cache = std::make_shared<explore_cache>(g, lib());
    const synthesis_constraints point{17, 9.0};

    synthesis_options locked;
    locked.lock_from_start = true;
    lifetime_spec cell;
    cell.beta = 0.2;

    const std::vector<std::function<flow(void)>> configs = {
        [&] { return flow::on(g).with_library(lib()).constraints(point); },
        [&] {
            return flow::on(g).with_library(lib()).constraints(point).synthesizer(
                "two_step");
        },
        [&] { return flow::on(g).with_library(lib()).constraints(point).options(locked); },
        [&] {
            return flow::on(g).with_library(lib()).constraints(point).estimate_lifetime(
                cell);
        },
    };
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const flow_report uncached = configs[i]().run();
        const flow_report cached = configs[i]().reuse(cache).run();
        EXPECT_EQ(cached.to_string(), uncached.to_string()) << "config " << i;
    }
    // Four distinct fingerprints were stored, none served another config.
    EXPECT_EQ(cache->stats().report_misses, 4);
    EXPECT_EQ(cache->stats().report_hits, 0);

    // Re-running any of them is now a pure hit.
    const flow_report repeat = configs[1]().reuse(cache).run();
    EXPECT_EQ(repeat.to_string(), configs[1]().run().to_string());
    EXPECT_EQ(cache->stats().report_hits, 1);
}

TEST(explore_cache, memo_levels_can_be_disabled_without_changing_results)
{
    const graph g = make_hal();
    const std::vector<synthesis_constraints> grid = {
        {17, 9.0}, {17, 7.0}, {17, 9.0}};
    const std::vector<flow_report> reference =
        flow::on(g).with_library(lib()).caching(false).run_batch(grid, 1);

    const auto cache = std::make_shared<explore_cache>(g, lib());
    cache->set_committed_memo(false);
    cache->set_report_memo(false);
    const std::vector<flow_report> reports =
        flow::on(g).with_library(lib()).reuse(cache).run_batch(grid, 1);
    for (std::size_t i = 0; i < reports.size(); ++i)
        EXPECT_EQ(reports[i].to_string(), reference[i].to_string()) << i;
    EXPECT_EQ(cache->stats().committed_hits, 0);
    EXPECT_EQ(cache->stats().committed_misses, 0);
    EXPECT_EQ(cache->stats().report_hits, 0);
    EXPECT_EQ(cache->stats().report_misses, 0);
    EXPECT_GT(cache->stats().hits, 0); // level 0 invariants still serve
}

TEST(explore_cache, each_metric_snapshots_every_stored_record)
{
    // each_metric is the surrogate's pretraining feed: it must visit
    // every stored metric record exactly once, with its fingerprint,
    // and tolerate re-entrant cache use from inside the callback.
    const graph g = make_hal();
    const flow f = flow::on(g).with_library(lib()).latency(17);
    const std::vector<synthesis_constraints> grid = hal_grid(8);
    const auto cache = f.build_cache();
    flow::on(g).with_library(lib()).latency(17).reuse(cache).run_batch(grid, 1);

    std::size_t visited = 0;
    std::set<std::string> fingerprints;
    std::set<double> caps;
    cache->each_metric([&](const std::string& fp, const metric_record& m) {
        ++visited;
        EXPECT_FALSE(fp.empty());
        fingerprints.insert(fp);
        caps.insert(m.constraints.max_power);
        EXPECT_EQ(m.constraints.latency, 17);
        // Re-entrant lookups must not deadlock (fn runs outside the lock).
        flow_report probe;
        EXPECT_TRUE(cache->report_lookup(fp, &probe));
    });
    EXPECT_EQ(visited, grid.size());
    EXPECT_EQ(fingerprints.size(), grid.size());
    EXPECT_EQ(caps.size(), grid.size());

    // An empty cache yields nothing.
    std::size_t empty_visits = 0;
    f.build_cache()->each_metric(
        [&](const std::string&, const metric_record&) { ++empty_visits; });
    EXPECT_EQ(empty_visits, 0u);
}

// -------------------------------------------------------------- streaming

TEST(flow_stream, callback_sees_every_point_exactly_once)
{
    const graph g = make_hal();
    const flow f = flow::on(g).with_library(lib()).latency(17);
    const std::vector<synthesis_constraints> grid = hal_grid(10);

    std::set<std::size_t> seen;
    std::atomic<int> calls{0};
    const std::vector<flow_report> reports = f.run_batch_stream(
        grid,
        [&](std::size_t i, const flow_report& r) {
            ++calls;
            EXPECT_TRUE(seen.insert(i).second) << "index " << i << " delivered twice";
            ASSERT_LT(i, grid.size());
            EXPECT_EQ(r.constraints.latency, grid[i].latency);
            EXPECT_DOUBLE_EQ(r.constraints.max_power, grid[i].max_power);
        },
        4);
    EXPECT_EQ(calls.load(), static_cast<int>(grid.size()));
    EXPECT_EQ(seen.size(), grid.size());
    ASSERT_EQ(reports.size(), grid.size());
}

TEST(flow_stream, streamed_reports_match_the_final_vector)
{
    const graph g = make_cosine();
    const flow f = flow::on(g).with_library(lib()).latency(15);
    std::vector<synthesis_constraints> grid;
    for (double cap : f.power_grid(8)) grid.push_back({15, cap});

    std::vector<std::string> streamed(grid.size());
    const std::vector<flow_report> reports = f.run_batch_stream(
        grid,
        [&](std::size_t i, const flow_report& r) { streamed[i] = r.to_string(); }, 3);
    ASSERT_EQ(reports.size(), grid.size());
    for (std::size_t i = 0; i < reports.size(); ++i)
        EXPECT_EQ(streamed[i], reports[i].to_string()) << i;

    // And the final vector is byte-identical to the non-streaming run.
    const std::vector<flow_report> plain = f.run_batch(grid, 1);
    for (std::size_t i = 0; i < reports.size(); ++i)
        EXPECT_EQ(reports[i].to_string(), plain[i].to_string()) << i;
}

TEST(flow_stream, empty_callback_degrades_to_run_batch)
{
    const flow f = flow::on(make_hal()).with_library(lib()).latency(17);
    const std::vector<synthesis_constraints> grid = {{17, 9.0}, {17, 1.0}};
    const std::vector<flow_report> a = f.run_batch_stream(grid, {}, 2);
    const std::vector<flow_report> b = f.run_batch(grid, 2);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].to_string(), b[i].to_string());
}

TEST(flow_stream, callback_exception_is_rethrown_after_the_batch_drains)
{
    const flow f = flow::on(make_hal()).with_library(lib()).latency(17);
    const std::vector<synthesis_constraints> grid = hal_grid(6);
    std::atomic<int> calls{0};
    EXPECT_THROW(f.run_batch_stream(
                     grid,
                     [&](std::size_t, const flow_report&) {
                         ++calls;
                         throw std::runtime_error("consumer failed");
                     },
                     3),
                 std::runtime_error);
    // The first throw cancels the remaining deliveries.
    EXPECT_EQ(calls.load(), 1);
}

TEST(flow_stream, single_worker_path_keeps_the_exception_contract)
{
    // workers == 1 bypasses the thread pool; the consumer contract must
    // not change: every point is still evaluated and delivered in input
    // order, the reports are filled, and the (first) exception is
    // rethrown after the batch drains.
    const flow f = flow::on(make_hal()).with_library(lib()).latency(17);
    const std::vector<synthesis_constraints> grid = hal_grid(5);

    std::vector<std::string> delivered;
    EXPECT_THROW(f.run_batch_stream(
                     grid,
                     [&](std::size_t i, const flow_report& r) {
                         EXPECT_EQ(i, delivered.size()); // input order at 1 worker
                         delivered.push_back(r.to_string());
                         if (delivered.size() == grid.size())
                             throw std::runtime_error("consumer failed on the last point");
                     },
                     1),
                 std::runtime_error);
    // Every report was computed and delivered filled before the throw.
    ASSERT_EQ(delivered.size(), grid.size());
    const std::vector<flow_report> reference = f.run_batch(grid, 1);
    for (std::size_t i = 0; i < grid.size(); ++i)
        EXPECT_EQ(delivered[i], reference[i].to_string()) << i;

    // An exception on the FIRST delivery cancels the remaining ones.
    int calls = 0;
    EXPECT_THROW(f.run_batch_stream(
                     grid,
                     [&](std::size_t, const flow_report&) {
                         ++calls;
                         throw std::runtime_error("consumer failed immediately");
                     },
                     1),
                 std::runtime_error);
    EXPECT_EQ(calls, 1);
}

TEST(flow_stream, stale_cache_path_keeps_the_exception_contract)
{
    // The stale-cache early return also bypasses the worker pool; it
    // must fill every report with the stale status, deliver them, and
    // rethrow the first consumer exception after the batch finishes.
    const auto cache = std::make_shared<explore_cache>(make_hal(), lib());
    const flow f = flow::on(make_cosine()).with_library(lib()).latency(15).reuse(cache);
    const std::vector<synthesis_constraints> grid = {{15, 9.0}, {15, 12.0}, {15, 20.0}};

    std::vector<status_code> codes;
    EXPECT_THROW(f.run_batch_stream(
                     grid,
                     [&](std::size_t, const flow_report& r) {
                         codes.push_back(r.st.code);
                         if (codes.size() == grid.size())
                             throw std::runtime_error("consumer failed on the last point");
                     },
                     2),
                 std::runtime_error);
    ASSERT_EQ(codes.size(), grid.size());
    for (const status_code c : codes) EXPECT_EQ(c, status_code::invalid_argument);

    int calls = 0;
    EXPECT_THROW(f.run_batch_stream(
                     grid,
                     [&](std::size_t, const flow_report&) {
                         ++calls;
                         throw std::runtime_error("consumer failed immediately");
                     },
                     2),
                 std::runtime_error);
    EXPECT_EQ(calls, 1);
}

TEST(flow_stream, negative_thread_count_is_invalid_on_every_point)
{
    const flow f = flow::on(make_hal()).with_library(lib()).latency(17);
    const std::vector<synthesis_constraints> grid = {{17, 9.0}, {17, 7.0}, {17, 1.0}};

    for (const int threads : {-1, -8}) {
        const std::vector<flow_report> reports = f.run_batch(grid, threads);
        ASSERT_EQ(reports.size(), grid.size()) << threads;
        for (std::size_t i = 0; i < reports.size(); ++i) {
            EXPECT_EQ(reports[i].st.code, status_code::invalid_argument) << i;
            EXPECT_NE(reports[i].st.message.find("thread count"), std::string::npos) << i;
            // The report still names its point and strategy.
            EXPECT_EQ(reports[i].constraints.latency, grid[i].latency) << i;
            EXPECT_EQ(reports[i].strategy, "greedy") << i;
        }
    }

    // The streaming variant delivers the failed reports like the
    // stale-cache path does.
    std::size_t delivered = 0;
    const std::vector<flow_report> streamed = f.run_batch_stream(
        grid,
        [&](std::size_t, const flow_report& r) {
            ++delivered;
            EXPECT_EQ(r.st.code, status_code::invalid_argument);
        },
        -2);
    EXPECT_EQ(delivered, grid.size());
    ASSERT_EQ(streamed.size(), grid.size());

    // 0 keeps meaning "hardware concurrency".
    const std::vector<flow_report> auto_threads = f.run_batch(grid, 0);
    EXPECT_TRUE(auto_threads[0].st.ok());
}

} // namespace
} // namespace phls
