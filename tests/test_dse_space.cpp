// Tests for the declarative point spaces (dse/space.h): lazy
// enumeration, deterministic order, composition and the adaptive flag.
#include <gtest/gtest.h>

#include <vector>

#include "dse/space.h"
#include "support/errors.h"

namespace phls {
namespace {

using dse::concat;
using dse::cross;
using dse::grid;
using dse::latency_range;
using dse::list;
using dse::power_range;
using dse::refine;
using dse::space;

TEST(dse_space, ranges_expand_to_their_axes)
{
    EXPECT_EQ((latency_range{17, 21, 2}.values()), (std::vector<int>{17, 19, 21}));
    EXPECT_EQ((latency_range{5, 5}.values()), (std::vector<int>{5}));
    EXPECT_THROW((latency_range{5, 4}.values()), error);
    EXPECT_THROW((latency_range{5, 9, 0}.values()), error);

    const std::vector<double> caps = power_range{2.0, 8.0, 4}.values();
    ASSERT_EQ(caps.size(), 4u);
    EXPECT_DOUBLE_EQ(caps.front(), 2.0);
    EXPECT_DOUBLE_EQ(caps.back(), 8.0);
    EXPECT_EQ((power_range{3.0, 9.0, 1}.values()), (std::vector<double>{3.0}));
    EXPECT_THROW((power_range{1.0, 2.0, 0}.values()), error);
}

TEST(dse_space, grid_enumerates_row_major_latency_outer)
{
    const space s = grid({17, 19, 2}, {2.0, 4.0, 3});
    EXPECT_EQ(s.size(), 6u);
    EXPECT_FALSE(s.adaptive());
    EXPECT_TRUE(s.is_lattice());

    const std::vector<synthesis_constraints> pts = s.materialize();
    ASSERT_EQ(pts.size(), 6u);
    EXPECT_EQ(pts[0].latency, 17);
    EXPECT_DOUBLE_EQ(pts[0].max_power, 2.0);
    EXPECT_EQ(pts[2].latency, 17);
    EXPECT_DOUBLE_EQ(pts[2].max_power, 4.0);
    EXPECT_EQ(pts[3].latency, 19);
    EXPECT_DOUBLE_EQ(pts[3].max_power, 2.0);
    // at() agrees with enumeration order.
    for (std::size_t i = 0; i < pts.size(); ++i) {
        EXPECT_EQ(s.at(i).latency, pts[i].latency) << i;
        EXPECT_EQ(s.at(i).max_power, pts[i].max_power) << i;
    }
    EXPECT_THROW(s.at(6), error);
}

TEST(dse_space, huge_grids_enumerate_lazily_without_materialising)
{
    // A 10^6-point plane: size() is O(1) on the axes and taking the
    // first 5 points costs 5 callbacks, not a million-element vector.
    const space s = grid({1, 1000}, {1.0, 100.0, 1000});
    EXPECT_EQ(s.size(), 1000000u);
    std::size_t calls = 0;
    s.enumerate([&](std::size_t index, const synthesis_constraints& c) {
        EXPECT_EQ(index, calls);
        EXPECT_EQ(c.latency, 1);
        ++calls;
        return calls < 5;
    });
    EXPECT_EQ(calls, 5u);
    EXPECT_EQ(s.materialize(3).size(), 3u);
}

TEST(dse_space, list_and_concat_compose_with_running_indices)
{
    const space a = list({{17, 5.0}, {17, 7.0}});
    const space b = cross({19}, {2.0, 3.0, 4.0});
    const space s = concat(a, b);
    EXPECT_EQ(s.size(), 5u);
    EXPECT_FALSE(s.is_lattice());

    std::vector<std::size_t> indices;
    std::vector<int> lats;
    s.enumerate([&](std::size_t index, const synthesis_constraints& c) {
        indices.push_back(index);
        lats.push_back(c.latency);
        return true;
    });
    EXPECT_EQ(indices, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
    EXPECT_EQ(lats, (std::vector<int>{17, 17, 19, 19, 19}));
    EXPECT_EQ(s.at(4).latency, 19);
    EXPECT_DOUBLE_EQ(s.at(4).max_power, 4.0);
}

TEST(dse_space, refine_is_the_same_lattice_marked_adaptive)
{
    const space r = refine({17, 19}, {2.0, 4.0, 6.0});
    EXPECT_TRUE(r.adaptive());
    EXPECT_TRUE(r.is_lattice());
    EXPECT_EQ(r.size(), 6u);
    EXPECT_EQ(r.latencies(), (std::vector<int>{17, 19}));
    EXPECT_EQ(r.caps(), (std::vector<double>{2.0, 4.0, 6.0}));
    // Point-for-point the same space as the eager cross.
    EXPECT_EQ(r.materialize().size(), cross({17, 19}, {2.0, 4.0, 6.0}).materialize().size());

    EXPECT_THROW(concat(r, list({{17, 5.0}})), error);
    EXPECT_THROW(cross({}, {1.0}), error);
    EXPECT_THROW(list({{17, 5.0}}).latencies(), error);
}

} // namespace
} // namespace phls
