// Tests for the full synthesiser: constraint handling, determinism,
// statistics, options, and a property sweep over random DAGs where every
// produced datapath must pass the independent verifier.
#include <gtest/gtest.h>

#include "cdfg/analysis.h"
#include "cdfg/benchmarks.h"
#include "cdfg/random_dag.h"
#include "support/errors.h"
#include "synth/explore.h"
#include "synth/synthesizer.h"
#include "synth/verify.h"

namespace phls {
namespace {

const module_library& lib()
{
    static const module_library l = table1_library();
    return l;
}

TEST(synthesizer, rejects_nonpositive_latency)
{
    EXPECT_THROW(synthesize(make_hal(), lib(), {0, 10.0}), error);
}

TEST(synthesizer, rejects_uncovered_graphs)
{
    module_library partial("p");
    partial.add(make_module("in", {op_kind::input}, 16, 1, 0.2));
    EXPECT_THROW(synthesize(make_hal(), partial, {17, 10.0}), error);
}

TEST(synthesizer, deterministic_across_runs)
{
    const graph g = make_cosine();
    const synthesis_result a = synthesize(g, lib(), {15, 25.0});
    const synthesis_result b = synthesize(g, lib(), {15, 25.0});
    ASSERT_TRUE(a.feasible && b.feasible);
    EXPECT_DOUBLE_EQ(a.dp.area.total(), b.dp.area.total());
    EXPECT_EQ(a.dp.instances.size(), b.dp.instances.size());
    for (node_id v : g.nodes()) {
        EXPECT_EQ(a.dp.sched.start(v), b.dp.sched.start(v));
        EXPECT_EQ(a.dp.instance_of[v.index()], b.dp.instance_of[v.index()]);
    }
}

TEST(synthesizer, binds_every_operation_exactly_once)
{
    const synthesis_result r = synthesize(make_elliptic(), lib(), {22, 12.0});
    ASSERT_TRUE(r.feasible) << r.reason;
    std::vector<int> seen(static_cast<std::size_t>(r.dp.sched.node_count()), 0);
    for (const fu_instance& inst : r.dp.instances)
        for (node_id v : inst.ops) ++seen[v.index()];
    for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(synthesizer, area_breakdown_adds_up)
{
    const synthesis_result r = synthesize(make_hal(), lib(), {17, 7.0});
    ASSERT_TRUE(r.feasible);
    double fu = 0;
    for (const fu_instance& inst : r.dp.instances) fu += lib().module(inst.module).area;
    EXPECT_DOUBLE_EQ(r.dp.area.fu, fu);
    EXPECT_DOUBLE_EQ(r.dp.area.total(),
                     r.dp.area.fu + r.dp.area.registers + r.dp.area.muxes);
    EXPECT_GT(r.dp.area.registers, 0.0);
}

TEST(synthesizer, stats_reflect_the_merge_history)
{
    const synthesis_result r = synthesize(make_elliptic(), lib(), {22, 12.0});
    ASSERT_TRUE(r.feasible);
    EXPECT_GT(r.stats.merges, 0);
    EXPECT_EQ(r.stats.merges, r.stats.pair_merges + r.stats.join_merges);
    EXPECT_GT(r.stats.window_recomputes, 0);
    // Sharing must beat one-instance-per-op.
    EXPECT_LT(r.dp.instances.size(), static_cast<std::size_t>(r.dp.sched.node_count()));
}

TEST(synthesizer, infeasibility_reasons_are_informative)
{
    const synthesis_result below_power = synthesize(make_hal(), lib(), {17, 1.0});
    EXPECT_FALSE(below_power.feasible);
    EXPECT_NE(below_power.reason.find("power"), std::string::npos);

    const synthesis_result below_latency = synthesize(make_hal(), lib(), {5, 50.0});
    EXPECT_FALSE(below_latency.feasible);
    EXPECT_NE(below_latency.reason.find("latency"), std::string::npos);
}

TEST(synthesizer, lock_from_start_still_produces_valid_designs)
{
    synthesis_options opts;
    opts.lock_from_start = true;
    const synthesis_result r = synthesize(make_cosine(), lib(), {15, 25.0}, opts);
    ASSERT_TRUE(r.feasible) << r.reason;
    EXPECT_TRUE(r.stats.locked);
    EXPECT_TRUE(
        verify_datapath(make_cosine(), lib(), r.dp, {15, 25.0}, opts.costs).empty());
}

TEST(synthesizer, both_prospects_never_worse_than_either_alone)
{
    const graph g = make_cosine();
    for (double cap : {20.0, 26.0, 40.0}) {
        synthesis_options fast;
        fast.try_both_prospects = false;
        fast.policy = prospect_policy::fastest_fit;
        synthesis_options cheap = fast;
        cheap.policy = prospect_policy::cheapest_fit;
        const synthesis_result both = synthesize(g, lib(), {15, cap});
        const synthesis_result f = synthesize(g, lib(), {15, cap}, fast);
        const synthesis_result c = synthesize(g, lib(), {15, cap}, cheap);
        if (!both.feasible) {
            EXPECT_FALSE(f.feasible);
            EXPECT_FALSE(c.feasible);
            continue;
        }
        if (f.feasible) {
            EXPECT_LE(both.dp.area.total(), f.dp.area.total() + 1e-9);
        }
        if (c.feasible) {
            EXPECT_LE(both.dp.area.total(), c.dp.area.total() + 1e-9);
        }
    }
}

TEST(synthesizer, tight_caps_switch_the_multiplier_type)
{
    const graph g = make_hal();
    const synthesis_result r = synthesize(g, lib(), {17, 6.0});
    ASSERT_TRUE(r.feasible);
    for (const fu_instance& inst : r.dp.instances)
        EXPECT_NE(lib().module(inst.module).name, "mult_par");
}

TEST(synthesizer, report_mentions_instances_and_area)
{
    const graph g = make_hal();
    const synthesis_result r = synthesize(g, lib(), {17, 7.0});
    ASSERT_TRUE(r.feasible);
    const std::string report = r.dp.report(g, lib());
    EXPECT_NE(report.find("u0"), std::string::npos);
    EXPECT_NE(report.find("area:"), std::string::npos);
    EXPECT_NE(report.find("peak power"), std::string::npos);
}

TEST(synthesizer, design_name_encodes_the_constraints)
{
    const synthesis_result r = synthesize(make_hal(), lib(), {17, 7.0});
    ASSERT_TRUE(r.feasible);
    EXPECT_NE(r.dp.name.find("hal"), std::string::npos);
    EXPECT_NE(r.dp.name.find("T17"), std::string::npos);
}

// ---- Property sweep: synthesis on random DAGs must verify cleanly. ----

struct synth_case {
    std::uint64_t seed;
    double cap_scale;   // cap = scale * unconstrained peak
    int latency_margin; // T = critical path + margin
};

class synth_property : public ::testing::TestWithParam<synth_case> {};

TEST_P(synth_property, produces_verified_datapaths_or_honest_infeasibility)
{
    random_dag_params params;
    params.operations = 20;
    params.inputs = 4;
    const graph g = random_dag(params, GetParam().seed);

    const module_assignment fast = fastest_assignment(g, lib(), unbounded_power);
    const int cp = critical_path_length(
        g, [&](node_id v) { return lib().module(fast[v.index()]).latency; });
    const int T = cp + GetParam().latency_margin;

    const synthesis_result probe = synthesize(g, lib(), {T, unbounded_power});
    ASSERT_TRUE(probe.feasible) << probe.reason;
    const double cap = GetParam().cap_scale * probe.dp.peak_power(lib());

    const synthesis_result r = synthesize(g, lib(), {T, cap});
    if (!r.feasible) {
        EXPECT_FALSE(r.reason.empty());
        return;
    }
    const std::vector<std::string> violations =
        verify_datapath(g, lib(), r.dp, {T, cap}, synthesis_options{}.costs);
    EXPECT_TRUE(violations.empty())
        << "seed " << GetParam().seed << ": " << violations.front();
    // Sharing should generally beat the trivial allocation.
    EXPECT_LE(r.dp.area.total(), probe.dp.area.total() * 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    sweeps, synth_property,
    ::testing::Values(synth_case{1, 1.0, 2}, synth_case{1, 0.6, 6}, synth_case{2, 0.8, 4},
                      synth_case{3, 0.5, 10}, synth_case{4, 0.7, 3}, synth_case{5, 0.9, 2},
                      synth_case{6, 0.4, 12}, synth_case{7, 0.6, 8}, synth_case{8, 1.2, 2},
                      synth_case{9, 0.5, 6}, synth_case{10, 0.75, 5},
                      synth_case{11, 0.65, 7}, synth_case{12, 0.55, 9},
                      synth_case{13, 0.85, 3}, synth_case{14, 0.45, 11},
                      synth_case{15, 0.7, 5}, synth_case{16, 0.95, 4},
                      synth_case{17, 0.6, 10}, synth_case{18, 0.5, 4},
                      synth_case{19, 0.8, 6}, synth_case{20, 0.35, 14}),
    [](const ::testing::TestParamInfo<synth_case>& info) {
        return "seed" + std::to_string(info.param.seed) + "_scale" +
               std::to_string(static_cast<int>(info.param.cap_scale * 100)) + "_margin" +
               std::to_string(info.param.latency_margin);
    });

} // namespace
} // namespace phls
