// Tests for the fault-tolerance layer: the deterministic fault-point
// harness itself, supervised forked shard workers (respawn + dedupe =>
// byte-identical fronts), torn/corrupt cache and manifest files being
// rejected loudly (and skipped on request), client reconnect-and-
// continue, checkpoint-resume accounting, and the server's back-
// pressure and bind-retry behaviour.  Every injected failure asserts
// fault_fired() so a refactor that stops hitting the site turns the
// test red instead of silently passing on the happy path.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include "cdfg/benchmarks.h"
#include "dse/session.h"
#include "flow/explore_cache.h"
#include "flow/flow.h"
#include "serve/client.h"
#include "serve/manifest.h"
#include "serve/server.h"
#include "serve/shard.h"
#include "support/errors.h"
#include "support/faultpoints.h"

namespace phls {
namespace {

using namespace serve;

const module_library& lib()
{
    static const module_library l = table1_library();
    return l;
}

flow hal17() { return flow::on(make_hal()).with_library(lib()).latency(17); }

/// A duplicate-heavy point list: every grid point appears twice.
std::vector<synthesis_constraints> duplicated_grid(int points)
{
    std::vector<synthesis_constraints> grid;
    for (double cap : hal17().power_grid(points)) grid.push_back({17, cap});
    const std::vector<synthesis_constraints> once = grid;
    grid.insert(grid.end(), once.begin(), once.end());
    return grid;
}

/// Distinct caps only — required wherever metric_served does point
/// accounting (duplicated points are memo-served even fault-free).
std::vector<synthesis_constraints> distinct_grid(int points)
{
    std::vector<synthesis_constraints> grid;
    for (double cap : hal17().power_grid(points)) grid.push_back({17, cap});
    return grid;
}

/// A fresh scratch directory under the test temp root.
std::string scratch_dir(const char* name)
{
    const std::string dir = std::string(::testing::TempDir()) + name;
    ::mkdir(dir.c_str(), 0755);
    return dir;
}

std::vector<front_point> reference_front(const std::vector<synthesis_constraints>& grid)
{
    dse::session session(hal17());
    return session.explore(dse::list(grid), {}, 1).front;
}

void expect_same_front(const std::vector<front_point>& got,
                       const std::vector<front_point>& want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_TRUE(got[i] == want[i]) << "front point " << i;
}

/// Disarms every fault on scope exit, so a failing ASSERT cannot leak
/// an armed site into the next test of the same process.
struct fault_guard {
    explicit fault_guard(const char* spec) { fault_arm(spec); }
    ~fault_guard() { fault_clear(); }
};

// ------------------------------------------------- fault-point harness

TEST(faultpoints, unarmed_sites_never_fire_and_count_nothing)
{
    fault_clear();
    EXPECT_FALSE(fault_fire("recovery.test.site"));
    EXPECT_FALSE(fault_fire("recovery.test.site"));
    EXPECT_EQ(fault_hits("recovery.test.site"), 0u);
    EXPECT_FALSE(fault_fired("recovery.test.site"));
}

TEST(faultpoints, armed_site_fires_exactly_on_the_nth_hit_and_once)
{
    fault_guard guard("recovery.test.site:2");
    EXPECT_FALSE(fault_fire("recovery.test.site"));
    EXPECT_TRUE(fault_fire("recovery.test.site"));
    EXPECT_FALSE(fault_fire("recovery.test.site"));
    EXPECT_EQ(fault_hits("recovery.test.site"), 3u);
    EXPECT_TRUE(fault_fired("recovery.test.site"));
    // Other sites are counted while armed but never fire.
    EXPECT_FALSE(fault_fire("recovery.other.site"));
    EXPECT_EQ(fault_hits("recovery.other.site"), 1u);
}

TEST(faultpoints, rearming_resets_counters_and_clear_disarms)
{
    fault_arm("recovery.test.site:1");
    EXPECT_TRUE(fault_fire("recovery.test.site"));
    fault_arm("recovery.test.site:1"); // re-arm: fired flag and counts reset
    EXPECT_TRUE(fault_fire("recovery.test.site"));
    fault_clear();
    EXPECT_FALSE(fault_fire("recovery.test.site"));
    EXPECT_EQ(fault_hits("recovery.test.site"), 0u);
}

TEST(faultpoints, malformed_specs_are_rejected_loudly)
{
    EXPECT_THROW(fault_arm("no-count"), error);
    EXPECT_THROW(fault_arm("site:0"), error);
    EXPECT_THROW(fault_arm("site:-3"), error);
    EXPECT_THROW(fault_arm("site:seven"), error);
    EXPECT_THROW(fault_arm(":4"), error);
    fault_clear();
}

// ---------------------------------------------------- wire-level faults

TEST(recovery, truncated_frame_mid_send_is_a_wire_error_for_the_peer)
{
    int a_to_b[2] = {-1, -1};
    int b_to_a[2] = {-1, -1};
    ASSERT_EQ(::pipe(a_to_b), 0);
    ASSERT_EQ(::pipe(b_to_a), 0);
    channel a(b_to_a[0], a_to_b[1]);
    channel b(a_to_b[0], b_to_a[1]);

    fault_guard guard("wire.send.truncate:1");
    EXPECT_THROW(a.send(frame_type::hello, "payload-that-gets-cut"), wire_error);
    EXPECT_TRUE(fault_fired("wire.send.truncate"));
    // The peer sees half a frame then EOF: mid-frame truncation, not a
    // clean connection end — recv must throw, never return nullopt.
    EXPECT_THROW(b.recv(), wire_error);
}

TEST(recovery, injected_send_and_recv_failures_surface_as_wire_errors)
{
    int a_to_b[2] = {-1, -1};
    int b_to_a[2] = {-1, -1};
    ASSERT_EQ(::pipe(a_to_b), 0);
    ASSERT_EQ(::pipe(b_to_a), 0);
    channel a(b_to_a[0], a_to_b[1]);
    channel b(a_to_b[0], b_to_a[1]);

    {
        fault_guard guard("wire.send.fail:1");
        EXPECT_THROW(a.send(frame_type::hello, "x"), wire_error);
    }
    a.send(frame_type::hello, "x"); // disarmed: the channel still works
    {
        fault_guard guard("wire.recv.fail:1");
        EXPECT_THROW(b.recv(), wire_error);
    }
    const std::optional<channel::frame> f = b.recv();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->type, frame_type::hello);
}

// --------------------------------------------------- cache-file faults

TEST(recovery, torn_cache_save_throws_and_preserves_the_old_file)
{
    const std::string dir = scratch_dir("recovery_tear");
    const std::string path = dir + "/cache.phlscache";
    const std::vector<synthesis_constraints> grid = distinct_grid(3);

    dse::session warm(hal17());
    warm.explore(dse::list(grid), {}, 1);
    const std::size_t saved = warm.save(path);
    ASSERT_GT(saved, 0u);

    {
        fault_guard guard("cache.save.tear:1");
        EXPECT_THROW(warm.save(path), cache_file_error);
        EXPECT_TRUE(fault_fired("cache.save.tear"));
    }
    // The torn write went to the temporary file; the original is intact.
    dse::session fresh(hal17());
    EXPECT_EQ(fresh.load(path), saved);
}

TEST(recovery, corrupted_cache_save_is_rejected_on_load)
{
    const std::string dir = scratch_dir("recovery_corrupt_save");
    const std::string path = dir + "/cache.phlscache";

    dse::session warm(hal17());
    warm.explore(dse::list(distinct_grid(3)), {}, 1);
    {
        fault_guard guard("cache.save.corrupt:1");
        warm.save(path); // save itself succeeds; the body is damaged
        EXPECT_TRUE(fault_fired("cache.save.corrupt"));
    }
    dse::session fresh(hal17());
    try {
        fresh.load(path);
        FAIL() << "a corrupted cache file must not load";
    } catch (const cache_file_error& e) {
        EXPECT_EQ(e.kind(), cache_file_error::failure::corrupt);
    }
}

TEST(recovery, corrupted_cache_load_site_flips_a_read_byte)
{
    const std::string dir = scratch_dir("recovery_corrupt_load");
    const std::string path = dir + "/cache.phlscache";

    dse::session warm(hal17());
    warm.explore(dse::list(distinct_grid(3)), {}, 1);
    warm.save(path);

    fault_guard guard("cache.load.corrupt:1");
    dse::session fresh(hal17());
    try {
        fresh.load(path);
        FAIL() << "the injected read corruption must be detected";
    } catch (const cache_file_error& e) {
        EXPECT_EQ(e.kind(), cache_file_error::failure::corrupt);
        EXPECT_TRUE(fault_fired("cache.load.corrupt"));
    }
}

TEST(recovery, cache_merge_skip_bad_skips_and_reports_damaged_inputs)
{
    const std::string dir = scratch_dir("recovery_skipbad");
    const std::vector<synthesis_constraints> grid = duplicated_grid(4);
    const std::vector<front_point> want = reference_front(grid);

    serve::shard_options opts;
    opts.shards = 3;
    opts.cache_dir = dir;
    const shard_summary sum = explore_sharded(hal17(), dse::list(grid), opts);
    ASSERT_EQ(sum.cache_files.size(), 3u);

    // Truncate the middle shard's cache to half the header.
    {
        std::ofstream os(sum.cache_files[1],
                         std::ios::binary | std::ios::in | std::ios::out);
        ASSERT_TRUE(os);
        os.close();
        ASSERT_EQ(::truncate(sum.cache_files[1].c_str(), 10), 0);
    }

    const std::string out = dir + "/merged.phlscache";
    // Without the flag the damaged input aborts the whole merge.
    EXPECT_THROW(explore_cache::merge_files(out, sum.cache_files),
                 cache_file_error);
    // With it the merge proceeds and names the skipped input.
    const cache_merge_stats stats =
        explore_cache::merge_files(out, sum.cache_files, true);
    ASSERT_EQ(stats.inputs.size(), 3u);
    EXPECT_FALSE(stats.inputs[0].skipped);
    EXPECT_TRUE(stats.inputs[1].skipped);
    EXPECT_EQ(stats.inputs[1].skip_reason, "truncated");
    EXPECT_FALSE(stats.inputs[2].skipped);
    EXPECT_EQ(stats.skipped_inputs, 1u);

    // The merged survivors still replay their shards' front points.
    dse::session session(hal17());
    session.load(out);
    expect_same_front(session.explore(dse::list(grid), {}, 1).front, want);
}

TEST(recovery, all_inputs_bad_still_aborts_even_with_skip_bad)
{
    const std::string dir = scratch_dir("recovery_allbad");
    const std::string bad = dir + "/bad.phlscache";
    std::ofstream(bad, std::ios::binary) << "not a cache";
    EXPECT_THROW(explore_cache::merge_files(dir + "/out.phlscache", {bad}, true),
                 error);
}

// ------------------------------------------------- supervised respawns

TEST(recovery, killed_forked_worker_is_respawned_and_the_front_is_identical)
{
    const std::vector<synthesis_constraints> grid = duplicated_grid(4);
    const std::vector<front_point> want = reference_front(grid);

    fault_guard guard("shard.worker.kill:1");
    std::set<std::size_t> seen;
    dse::sink sk;
    sk.on_result = [&](std::size_t i, const flow_report&) {
        EXPECT_TRUE(seen.insert(i).second) << "index " << i << " delivered twice";
    };
    serve::shard_options opts;
    opts.shards = 4;
    opts.processes = true;
    opts.retry_backoff_ms = 1; // keep the test fast
    const shard_summary sum = explore_sharded(hal17(), dse::list(grid), opts, sk);

    EXPECT_TRUE(fault_fired("shard.worker.kill"));
    EXPECT_EQ(seen.size(), grid.size());
    EXPECT_EQ(sum.evaluated, grid.size());
    expect_same_front(sum.front, want);
}

TEST(recovery, doomed_spawn_is_retried_and_counted)
{
    const std::vector<synthesis_constraints> grid = duplicated_grid(3);
    const std::vector<front_point> want = reference_front(grid);

    fault_guard guard("shard.spawn.doom:2");
    serve::shard_options opts;
    opts.shards = 3;
    opts.processes = true;
    opts.retry_backoff_ms = 1;
    const shard_summary sum = explore_sharded(hal17(), dse::list(grid), opts);

    EXPECT_TRUE(fault_fired("shard.spawn.doom"));
    EXPECT_GE(sum.worker_retries, 1u);
    EXPECT_EQ(sum.evaluated, grid.size());
    expect_same_front(sum.front, want);
}

TEST(recovery, zero_retries_restores_fail_fast)
{
    fault_guard guard("shard.spawn.doom:1");
    serve::shard_options opts;
    opts.shards = 2;
    opts.processes = true;
    opts.max_retries = 0;
    EXPECT_THROW(
        explore_sharded(hal17(), dse::list(duplicated_grid(3)), opts),
        wire_error);
    EXPECT_TRUE(fault_fired("shard.spawn.doom"));
}

TEST(recovery, retry_options_are_validated)
{
    serve::shard_options opts;
    opts.max_retries = -1;
    EXPECT_THROW(explore_sharded(hal17(), dse::list(duplicated_grid(2)), opts),
                 error);
    opts.max_retries = 2;
    opts.retry_backoff_ms = -5;
    EXPECT_THROW(explore_sharded(hal17(), dse::list(duplicated_grid(2)), opts),
                 error);
    opts.retry_backoff_ms = 100;
    opts.manifest_path = "somewhere.phlsman"; // manifest needs a cache dir
    EXPECT_THROW(explore_sharded(hal17(), dse::list(duplicated_grid(2)), opts),
                 error);
}

// ---------------------------------------------------------- manifests

TEST(recovery, manifest_round_trips_and_checks_its_ranges)
{
    const std::string dir = scratch_dir("recovery_manifest");
    const std::string path = dir + "/sweep.phlsman";

    sweep_manifest m;
    m.problem_hash = manifest_problem_hash(hal17(), dse::list(distinct_grid(3)));
    m.space_size = 40;
    m.done_ranges = {{0, 10}, {20, 40}};
    m.cache_files = {dir + "/shard0.phlscache", dir + "/shard2.phlscache"};
    save_manifest(path, m);

    const sweep_manifest back = load_manifest(path);
    EXPECT_EQ(back.problem_hash, m.problem_hash);
    EXPECT_EQ(back.space_size, 40u);
    ASSERT_EQ(back.done_ranges.size(), 2u);
    EXPECT_EQ(back.done_ranges[1].begin, 20u);
    EXPECT_EQ(back.done_ranges[1].end, 40u);
    EXPECT_EQ(back.cache_files, m.cache_files);
    EXPECT_EQ(back.done_points(), 30u);
}

TEST(recovery, problem_hash_distinguishes_problems_and_is_stable)
{
    const dse::space sp = dse::list(distinct_grid(4));
    EXPECT_EQ(manifest_problem_hash(hal17(), sp),
              manifest_problem_hash(hal17(), sp));
    // A different grid — even over the same prototype — is a different
    // sweep: resuming one from the other's caches must be rejected.
    EXPECT_NE(manifest_problem_hash(hal17(), sp),
              manifest_problem_hash(hal17(), dse::list(distinct_grid(5))));
    // And so is a different latency, which lives in the space's points.
    std::vector<synthesis_constraints> slower = distinct_grid(4);
    for (synthesis_constraints& p : slower) p.latency = 18;
    EXPECT_NE(manifest_problem_hash(hal17(), sp),
              manifest_problem_hash(hal17(), dse::list(slower)));
}

TEST(recovery, damaged_manifests_are_rejected_loudly)
{
    const std::string dir = scratch_dir("recovery_manifest_bad");
    const std::string path = dir + "/sweep.phlsman";
    sweep_manifest m;
    m.problem_hash = 7;
    m.space_size = 4;
    m.done_ranges = {{0, 4}};
    m.cache_files = {"a.phlscache"};
    save_manifest(path, m);

    // Injected read corruption => corrupt.
    {
        fault_guard guard("manifest.load.corrupt:1");
        try {
            load_manifest(path);
            FAIL() << "corrupt manifest must not load";
        } catch (const cache_file_error& e) {
            EXPECT_EQ(e.kind(), cache_file_error::failure::corrupt);
        }
    }
    // Physical truncation => truncated.
    ASSERT_EQ(::truncate(path.c_str(), 12), 0);
    try {
        load_manifest(path);
        FAIL() << "truncated manifest must not load";
    } catch (const cache_file_error& e) {
        EXPECT_EQ(e.kind(), cache_file_error::failure::truncated);
    }
    // Missing file => missing.
    try {
        load_manifest(dir + "/absent.phlsman");
        FAIL() << "missing manifest must not load";
    } catch (const cache_file_error& e) {
        EXPECT_EQ(e.kind(), cache_file_error::failure::missing);
    }
}

TEST(recovery, torn_manifest_save_preserves_the_old_manifest)
{
    const std::string dir = scratch_dir("recovery_manifest_tear");
    const std::string path = dir + "/sweep.phlsman";
    sweep_manifest m;
    m.problem_hash = 1;
    m.space_size = 8;
    m.done_ranges = {{0, 8}};
    save_manifest(path, m);

    m.space_size = 9; // the update that tears
    {
        fault_guard guard("manifest.save.tear:1");
        EXPECT_THROW(save_manifest(path, m), cache_file_error);
        EXPECT_TRUE(fault_fired("manifest.save.tear"));
    }
    EXPECT_EQ(load_manifest(path).space_size, 8u);
}

// ------------------------------------------------- checkpoint + resume

TEST(recovery, resume_after_mid_sweep_kill_recomputes_only_unfinished_ranges)
{
    const std::string dir = scratch_dir("recovery_resume");
    // Distinct caps: metric_served then counts exactly the points the
    // warm cache answers, with no duplicate-point serves mixed in.
    const std::vector<synthesis_constraints> grid = distinct_grid(6);
    const std::vector<front_point> want = reference_front(grid);

    serve::shard_options opts;
    opts.shards = 3;
    opts.processes = true;
    opts.max_retries = 0; // a completed shard's cache covers its whole range
    opts.cache_dir = dir;
    opts.manifest_path = dir + "/sweep.phlsman";
    {
        fault_guard guard("shard.spawn.doom:2");
        EXPECT_THROW(explore_sharded(hal17(), dse::list(grid), opts), wire_error);
    }

    // The manifest survived the failed sweep and records the shards
    // that did complete — strictly between nothing and everything.
    const sweep_manifest man = load_manifest(opts.manifest_path);
    EXPECT_EQ(man.problem_hash, manifest_problem_hash(hal17(), dse::list(grid)));
    EXPECT_EQ(man.space_size, grid.size());
    ASSERT_GT(man.done_points(), 0u);
    ASSERT_LT(man.done_points(), grid.size());
    ASSERT_EQ(man.cache_files.size(), man.done_ranges.size());

    // Resume: merge the finished shards' caches into a fresh session and
    // re-run the space.  Exactly the checkpointed points are served from
    // the warm metrics; only the doomed shard's range is recomputed.
    dse::session session(hal17());
    for (const std::string& path : man.cache_files)
        EXPECT_GT(session.merge(path), 0u) << path;
    const dse::explore_summary sum = session.explore(dse::list(grid), {}, 1);
    EXPECT_EQ(sum.evaluated, grid.size());
    EXPECT_EQ(sum.metric_served, man.done_points());
    expect_same_front(sum.front, want);
}

TEST(recovery, threads_mode_checkpoints_every_completed_shard)
{
    const std::string dir = scratch_dir("recovery_ckpt_threads");
    const std::vector<synthesis_constraints> grid = distinct_grid(4);

    serve::shard_options opts;
    opts.shards = 2;
    opts.cache_dir = dir;
    opts.manifest_path = dir + "/sweep.phlsman";
    explore_sharded(hal17(), dse::list(grid), opts);

    const sweep_manifest man = load_manifest(opts.manifest_path);
    EXPECT_EQ(man.space_size, grid.size());
    EXPECT_EQ(man.done_points(), grid.size());
    EXPECT_EQ(man.cache_files.size(), 2u);
}

// ------------------------------------------------------ client retries

TEST(recovery, resilient_client_reconnects_and_the_sweep_completes)
{
    const std::vector<synthesis_constraints> grid = duplicated_grid(4);
    const std::vector<front_point> want = reference_front(grid);

    server_options sopts;
    sopts.socket_path = std::string(::testing::TempDir()) + "recovery_drop.sock";
    std::remove(sopts.socket_path.c_str());
    server srv(sopts);
    srv.start();

    // The server mutes the stream after the first report and drops the
    // connection once the job finishes; the client must redial, resubmit
    // and deduplicate the replayed points.
    fault_guard guard("serve.conn.drop:1");
    reconnect_options ropts;
    ropts.max_retries = 2;
    ropts.backoff_ms = 1;
    resilient_client c([&] { return connect_unix(sopts.socket_path); }, ropts);

    std::set<std::size_t> seen;
    std::vector<front_delta> deltas;
    dse::sink sk;
    sk.on_result = [&](std::size_t i, const flow_report&) {
        EXPECT_TRUE(seen.insert(i).second) << "index " << i << " delivered twice";
    };
    sk.on_front = [&](const front_delta& d) { deltas.push_back(d); };
    const done_frame done = c.explore(make_job(hal17(), dse::list(grid)), sk);
    c.bye();
    srv.stop();

    EXPECT_TRUE(fault_fired("serve.conn.drop"));
    EXPECT_EQ(c.reconnects(), 1u);
    EXPECT_EQ(seen.size(), grid.size());
    expect_same_front(done.front, want);
    // Replaying the synthesised deltas reconstructs the same front.
    std::vector<front_point> replayed;
    for (const front_delta& d : deltas) {
        for (const front_point& left : d.left)
            std::erase(replayed, left);
        replayed.insert(replayed.end(), d.entered.begin(), d.entered.end());
    }
    expect_same_front(replayed, want);
}

TEST(recovery, resilient_client_gives_up_once_the_retry_budget_is_spent)
{
    // Every dial lands on nothing: connect_unix throws wire_error each
    // attempt, and the budget bounds the attempts.
    const std::string nowhere =
        std::string(::testing::TempDir()) + "recovery_absent.sock";
    std::size_t dials = 0;
    reconnect_options ropts;
    ropts.max_retries = 2;
    ropts.backoff_ms = 1;
    resilient_client c(
        [&] {
            ++dials;
            return connect_unix(nowhere);
        },
        ropts);
    EXPECT_THROW(c.explore(make_job(hal17(), dse::list({{17, 7.5}}))), wire_error);
    EXPECT_EQ(dials, 3u); // first attempt + two retries
}

TEST(recovery, rejected_jobs_are_not_retried)
{
    server_options sopts;
    sopts.socket_path = std::string(::testing::TempDir()) + "recovery_reject.sock";
    std::remove(sopts.socket_path.c_str());
    server srv(sopts);
    srv.start();

    std::size_t dials = 0;
    reconnect_options ropts;
    ropts.max_retries = 3;
    ropts.backoff_ms = 1;
    resilient_client c(
        [&] {
            ++dials;
            return connect_unix(sopts.socket_path);
        },
        ropts);
    job_request bad = make_job(hal17(), dse::list({{17, 7.5}}));
    bad.scheduler = "no-such-scheduler";
    EXPECT_THROW(c.explore(bad), error);
    c.bye();
    srv.stop();
    EXPECT_EQ(dials, 1u); // a resubmission would be rejected identically
}

// --------------------------------------------------- server hardening

TEST(recovery, clients_past_the_bound_get_a_loud_capacity_reject)
{
    server_options sopts;
    sopts.socket_path = std::string(::testing::TempDir()) + "recovery_cap.sock";
    std::remove(sopts.socket_path.c_str());
    sopts.max_clients = 1;
    server srv(sopts);
    srv.start();

    client first(connect_unix(sopts.socket_path)); // fills the only slot
    client second(connect_unix(sopts.socket_path));
    try {
        second.explore(make_job(hal17(), dse::list({{17, 7.5}})));
        FAIL() << "the second client must be rejected at capacity";
    } catch (const error& e) {
        EXPECT_NE(std::string(e.what()).find("capacity"), std::string::npos)
            << e.what();
    }
    // The admitted client is unaffected by its neighbour's rejection.
    const done_frame done = first.explore(make_job(hal17(), dse::list({{17, 7.5}})));
    EXPECT_EQ(done.evaluated, 1u);
    first.bye();
    srv.stop();
    EXPECT_EQ(srv.stats().overloaded, 1u);
}

TEST(recovery, max_clients_must_be_positive)
{
    server_options sopts;
    sopts.socket_path = std::string(::testing::TempDir()) + "recovery_mc.sock";
    sopts.max_clients = 0;
    EXPECT_THROW(server srv(sopts), error);
}

TEST(recovery, tcp_bind_retries_until_a_transient_conflict_clears)
{
    // Occupy an ephemeral port with a raw listener, release it shortly
    // after the server starts binding: the bind retry must pick it up.
    const int blocker = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(blocker, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ASSERT_EQ(::bind(blocker, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
    ASSERT_EQ(::listen(blocker, 1), 0);
    socklen_t len = sizeof addr;
    ASSERT_EQ(::getsockname(blocker, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    const int port = ntohs(addr.sin_port);

    std::thread releaser([blocker] {
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        ::close(blocker);
    });
    server_options sopts;
    sopts.port = port;
    server srv(sopts); // would throw without the EADDRINUSE retry
    releaser.join();
    EXPECT_EQ(srv.port(), port);
    srv.stop();
}

} // namespace
} // namespace phls
