// Tests for design-space exploration: sweeps, grids, the monotone
// envelope, and Pareto-front extraction.
#include <gtest/gtest.h>

#include "cdfg/benchmarks.h"
#include "flow/flow.h"
#include "support/errors.h"
#include "synth/explore.h"

namespace phls {
namespace {

const module_library& lib()
{
    static const module_library l = table1_library();
    return l;
}

/// Evaluates one cap grid through the flow engine and maps the reports
/// to sweep points (what the removed legacy sweep shim used to do).
std::vector<sweep_point> sweep(const graph& g, int T, const std::vector<double>& caps,
                               int threads = 0)
{
    std::vector<synthesis_constraints> grid;
    grid.reserve(caps.size());
    for (double cap : caps) grid.push_back({T, cap});
    std::vector<sweep_point> out;
    for (const flow_report& r :
         flow::on(g).with_library(lib()).latency(T).run_batch(grid, threads))
        out.push_back(to_sweep_point(r));
    return out;
}

std::vector<double> power_grid(const graph& g, int T, int points)
{
    return flow::on(g).with_library(lib()).latency(T).power_grid(points);
}

TEST(explore, sweep_reports_one_point_per_cap)
{
    const graph g = make_hal();
    const std::vector<double> caps = {2.0, 6.0, 9.0, 15.0};
    const std::vector<sweep_point> pts = sweep(g, 17, caps);
    ASSERT_EQ(pts.size(), caps.size());
    for (std::size_t i = 0; i < caps.size(); ++i) {
        EXPECT_DOUBLE_EQ(pts[i].cap, caps[i]);
        EXPECT_EQ(pts[i].latency_bound, 17);
        if (pts[i].feasible) {
            EXPECT_LE(pts[i].peak, caps[i] + 1e-9);
            EXPECT_GT(pts[i].area, 0.0);
        }
    }
    EXPECT_FALSE(pts[0].feasible); // 2.0 is below the mult minimum
}

TEST(explore, default_grid_spans_the_cliff_and_the_plateau)
{
    const graph g = make_hal();
    const std::vector<double> caps = power_grid(g, 17, 12);
    ASSERT_EQ(caps.size(), 12u);
    for (std::size_t i = 1; i < caps.size(); ++i) EXPECT_GT(caps[i], caps[i - 1]);
    const std::vector<sweep_point> pts = sweep(g, 17, caps);
    EXPECT_FALSE(pts.front().feasible); // starts below feasibility
    EXPECT_TRUE(pts.back().feasible);   // ends above the unconstrained peak
}

TEST(explore, default_grid_requires_two_points)
{
    EXPECT_THROW(power_grid(make_hal(), 17, 1), error);
}

TEST(explore, envelope_is_monotone_and_dominates_raw)
{
    const graph g = make_cosine();
    const std::vector<sweep_point> raw = sweep(g, 12, power_grid(g, 12, 12));
    const std::vector<sweep_point> env = monotone_envelope(raw);
    ASSERT_EQ(env.size(), raw.size());
    double last_area = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < env.size(); ++i) {
        if (raw[i].feasible) {
            ASSERT_TRUE(env[i].feasible);
            EXPECT_LE(env[i].area, raw[i].area + 1e-9);
            EXPECT_LE(env[i].peak, env[i].cap + 1e-9);
        }
        if (env[i].feasible) {
            EXPECT_LE(env[i].area, last_area + 1e-9);
            last_area = env[i].area;
        }
    }
}

TEST(explore, envelope_fills_gaps_with_tighter_designs)
{
    // A feasible design at cap 10 is also the answer for cap 12 if the
    // raw greedy failed there.
    std::vector<sweep_point> pts(2);
    pts[0].cap = 10;
    pts[0].feasible = true;
    pts[0].area = 500;
    pts[0].peak = 9.5;
    pts[1].cap = 12;
    pts[1].feasible = false;
    const std::vector<sweep_point> env = monotone_envelope(pts);
    EXPECT_TRUE(env[1].feasible);
    EXPECT_DOUBLE_EQ(env[1].area, 500);
    EXPECT_DOUBLE_EQ(env[1].peak, 9.5);
}

TEST(explore, envelope_ignores_designs_that_overshoot_the_cap)
{
    std::vector<sweep_point> pts(2);
    pts[0].cap = 20;
    pts[0].feasible = true;
    pts[0].area = 400;
    pts[0].peak = 18.0;
    pts[1].cap = 10; // the 18-peak design does not qualify here
    pts[1].feasible = false;
    const std::vector<sweep_point> env = monotone_envelope(pts);
    EXPECT_FALSE(env[1].feasible);
}

TEST(explore, pareto_front_is_strictly_improving)
{
    const graph g = make_hal();
    const std::vector<sweep_point> pts = sweep(g, 17, power_grid(g, 17, 16));
    const std::vector<sweep_point> front = pareto_front(pts);
    ASSERT_FALSE(front.empty());
    for (std::size_t i = 1; i < front.size(); ++i) {
        EXPECT_GT(front[i].peak, front[i - 1].peak);
        EXPECT_LT(front[i].area, front[i - 1].area);
    }
    // Every front point must be feasible and undominated by any other point.
    for (const sweep_point& f : front) {
        EXPECT_TRUE(f.feasible);
        for (const sweep_point& p : pts) {
            if (!p.feasible) continue;
            EXPECT_FALSE(p.peak <= f.peak && p.area < f.area - 1e-9);
        }
    }
}

TEST(explore, pareto_front_of_infeasible_sweep_is_empty)
{
    std::vector<sweep_point> pts(3);
    EXPECT_TRUE(pareto_front(pts).empty());
}

TEST(explore, envelope_and_front_of_empty_input_are_empty)
{
    EXPECT_TRUE(monotone_envelope({}).empty());
    EXPECT_TRUE(pareto_front({}).empty());
}

TEST(explore, envelope_of_all_infeasible_sweep_stays_infeasible)
{
    std::vector<sweep_point> pts(4);
    for (std::size_t i = 0; i < pts.size(); ++i) pts[i].cap = 2.0 + double(i);
    const std::vector<sweep_point> env = monotone_envelope(pts);
    ASSERT_EQ(env.size(), pts.size());
    for (const sweep_point& p : env) EXPECT_FALSE(p.feasible);
}

TEST(explore, pareto_front_keeps_one_of_duplicate_peak_points)
{
    // Three feasible designs share one peak; only the cheapest survives,
    // and a strictly dominated fourth point is dropped.
    std::vector<sweep_point> pts(4);
    for (sweep_point& p : pts) p.feasible = true;
    pts[0].peak = 8.0;
    pts[0].area = 500;
    pts[1].peak = 8.0;
    pts[1].area = 450;
    pts[2].peak = 8.0;
    pts[2].area = 480;
    pts[3].peak = 9.0; // higher peak AND higher area than pts[1]
    pts[3].area = 470;
    const std::vector<sweep_point> front = pareto_front(pts);
    ASSERT_EQ(front.size(), 1u);
    EXPECT_DOUBLE_EQ(front[0].peak, 8.0);
    EXPECT_DOUBLE_EQ(front[0].area, 450);
}

TEST(explore, envelope_breaks_area_ties_by_lower_peak)
{
    // Two designs with equal area qualify under cap 12; the envelope
    // must pick the lower-peak one (duplicate-area tie rule).
    std::vector<sweep_point> pts(3);
    pts[0].cap = 10;
    pts[0].feasible = true;
    pts[0].area = 400;
    pts[0].peak = 9.0;
    pts[1].cap = 11;
    pts[1].feasible = true;
    pts[1].area = 400;
    pts[1].peak = 10.5;
    pts[2].cap = 12;
    pts[2].feasible = false;
    const std::vector<sweep_point> env = monotone_envelope(pts);
    ASSERT_TRUE(env[2].feasible);
    EXPECT_DOUBLE_EQ(env[2].area, 400);
    EXPECT_DOUBLE_EQ(env[2].peak, 9.0);
}

TEST(explore, sweep_is_identical_across_thread_counts)
{
    const graph g = make_hal();
    const std::vector<double> caps = power_grid(g, 17, 10);
    const std::vector<sweep_point> seq = sweep(g, 17, caps, 1);
    for (int threads : {2, 4}) {
        const std::vector<sweep_point> par = sweep(g, 17, caps, threads);
        ASSERT_EQ(par.size(), seq.size());
        for (std::size_t i = 0; i < seq.size(); ++i) {
            EXPECT_EQ(par[i].feasible, seq[i].feasible);
            EXPECT_DOUBLE_EQ(par[i].cap, seq[i].cap);
            EXPECT_DOUBLE_EQ(par[i].area, seq[i].area);
            EXPECT_DOUBLE_EQ(par[i].peak, seq[i].peak);
            EXPECT_EQ(par[i].latency, seq[i].latency);
        }
    }
}

} // namespace
} // namespace phls
