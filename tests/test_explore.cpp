// Tests for design-space exploration: sweeps, grids, the monotone
// envelope, and Pareto-front extraction.
#include <gtest/gtest.h>

#include "cdfg/benchmarks.h"
#include "support/errors.h"
#include "synth/explore.h"

namespace phls {
namespace {

const module_library& lib()
{
    static const module_library l = table1_library();
    return l;
}

TEST(explore, sweep_reports_one_point_per_cap)
{
    const graph g = make_hal();
    const std::vector<double> caps = {2.0, 6.0, 9.0, 15.0};
    const std::vector<sweep_point> pts = sweep_power(g, lib(), 17, caps);
    ASSERT_EQ(pts.size(), caps.size());
    for (std::size_t i = 0; i < caps.size(); ++i) {
        EXPECT_DOUBLE_EQ(pts[i].cap, caps[i]);
        EXPECT_EQ(pts[i].latency_bound, 17);
        if (pts[i].feasible) {
            EXPECT_LE(pts[i].peak, caps[i] + 1e-9);
            EXPECT_GT(pts[i].area, 0.0);
        }
    }
    EXPECT_FALSE(pts[0].feasible); // 2.0 is below the mult minimum
}

TEST(explore, default_grid_spans_the_cliff_and_the_plateau)
{
    const graph g = make_hal();
    const std::vector<double> caps = default_power_grid(g, lib(), 17, 12);
    ASSERT_EQ(caps.size(), 12u);
    for (std::size_t i = 1; i < caps.size(); ++i) EXPECT_GT(caps[i], caps[i - 1]);
    const std::vector<sweep_point> pts = sweep_power(g, lib(), 17, caps);
    EXPECT_FALSE(pts.front().feasible); // starts below feasibility
    EXPECT_TRUE(pts.back().feasible);   // ends above the unconstrained peak
}

TEST(explore, default_grid_requires_two_points)
{
    EXPECT_THROW(default_power_grid(make_hal(), lib(), 17, 1), error);
}

TEST(explore, envelope_is_monotone_and_dominates_raw)
{
    const graph g = make_cosine();
    const std::vector<sweep_point> raw =
        sweep_power(g, lib(), 12, default_power_grid(g, lib(), 12, 12));
    const std::vector<sweep_point> env = monotone_envelope(raw);
    ASSERT_EQ(env.size(), raw.size());
    double last_area = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < env.size(); ++i) {
        if (raw[i].feasible) {
            ASSERT_TRUE(env[i].feasible);
            EXPECT_LE(env[i].area, raw[i].area + 1e-9);
            EXPECT_LE(env[i].peak, env[i].cap + 1e-9);
        }
        if (env[i].feasible) {
            EXPECT_LE(env[i].area, last_area + 1e-9);
            last_area = env[i].area;
        }
    }
}

TEST(explore, envelope_fills_gaps_with_tighter_designs)
{
    // A feasible design at cap 10 is also the answer for cap 12 if the
    // raw greedy failed there.
    std::vector<sweep_point> pts(2);
    pts[0].cap = 10;
    pts[0].feasible = true;
    pts[0].area = 500;
    pts[0].peak = 9.5;
    pts[1].cap = 12;
    pts[1].feasible = false;
    const std::vector<sweep_point> env = monotone_envelope(pts);
    EXPECT_TRUE(env[1].feasible);
    EXPECT_DOUBLE_EQ(env[1].area, 500);
    EXPECT_DOUBLE_EQ(env[1].peak, 9.5);
}

TEST(explore, envelope_ignores_designs_that_overshoot_the_cap)
{
    std::vector<sweep_point> pts(2);
    pts[0].cap = 20;
    pts[0].feasible = true;
    pts[0].area = 400;
    pts[0].peak = 18.0;
    pts[1].cap = 10; // the 18-peak design does not qualify here
    pts[1].feasible = false;
    const std::vector<sweep_point> env = monotone_envelope(pts);
    EXPECT_FALSE(env[1].feasible);
}

TEST(explore, pareto_front_is_strictly_improving)
{
    const graph g = make_hal();
    const std::vector<sweep_point> pts =
        sweep_power(g, lib(), 17, default_power_grid(g, lib(), 17, 16));
    const std::vector<sweep_point> front = pareto_front(pts);
    ASSERT_FALSE(front.empty());
    for (std::size_t i = 1; i < front.size(); ++i) {
        EXPECT_GT(front[i].peak, front[i - 1].peak);
        EXPECT_LT(front[i].area, front[i - 1].area);
    }
    // Every front point must be feasible and undominated by any other point.
    for (const sweep_point& f : front) {
        EXPECT_TRUE(f.feasible);
        for (const sweep_point& p : pts) {
            if (!p.feasible) continue;
            EXPECT_FALSE(p.peak <= f.peak && p.area < f.area - 1e-9);
        }
    }
}

TEST(explore, pareto_front_of_infeasible_sweep_is_empty)
{
    std::vector<sweep_point> pts(3);
    EXPECT_TRUE(pareto_front(pts).empty());
}

} // namespace
} // namespace phls
