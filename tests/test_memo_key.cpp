// Tests for the canonical memo-key byte encoding (support/memo_key.h):
// the double normalisation rules on degenerate inputs (NaN, -0.0, ±inf)
// that keep fingerprints well-defined, the length-prefixed string
// framing, and the key_reader decoders the cache file format relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "support/errors.h"
#include "support/memo_key.h"

namespace phls {
namespace {

std::string enc_double(double v)
{
    std::string key;
    key_double(key, v);
    return key;
}

// ------------------------------------------------------- normalisation

TEST(memo_key, negative_zero_collides_with_positive_zero)
{
    // -0.0 == 0.0 everywhere the library compares a cap or a cost, so
    // the two describe the same scheduling problem and must share a key.
    EXPECT_EQ(enc_double(-0.0), enc_double(0.0));
    EXPECT_EQ(key_double_bits(-0.0), key_double_bits(0.0));
}

TEST(memo_key, all_nan_payloads_collide)
{
    // Every NaN behaves identically in comparisons, so every NaN input
    // is the same (degenerate) problem: one canonical encoding.
    const double quiet = std::numeric_limits<double>::quiet_NaN();
    const double signalling = std::numeric_limits<double>::signaling_NaN();
    EXPECT_EQ(enc_double(quiet), enc_double(signalling));
    EXPECT_EQ(enc_double(quiet), enc_double(-quiet));
    EXPECT_EQ(enc_double(quiet), enc_double(std::nan("0x42")));
    // ...and it stays a NaN through the decoder.
    std::string key;
    key_double(key, signalling);
    key_reader r(key);
    EXPECT_TRUE(std::isnan(r.read_double()));
}

TEST(memo_key, infinities_are_distinct_from_each_other_and_from_finite)
{
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_NE(enc_double(inf), enc_double(-inf));
    EXPECT_NE(enc_double(inf), enc_double(std::numeric_limits<double>::max()));
    EXPECT_NE(enc_double(inf), enc_double(std::numeric_limits<double>::quiet_NaN()));
}

TEST(memo_key, distinct_finite_values_stay_distinct)
{
    EXPECT_NE(enc_double(7.0), enc_double(7.0000000000000009));
    EXPECT_NE(enc_double(0.0), enc_double(std::numeric_limits<double>::denorm_min()));
}

TEST(memo_key, strings_are_length_prefixed_so_fields_cannot_run_together)
{
    // ("ab", "c") and ("a", "bc") must encode differently.
    std::string k1, k2;
    key_str(k1, "ab");
    key_str(k1, "c");
    key_str(k2, "a");
    key_str(k2, "bc");
    EXPECT_NE(k1, k2);
}

// ------------------------------------------------------------ decoding

TEST(memo_key, reader_round_trips_every_encoder)
{
    std::string key;
    key_int(key, -42);
    key_double(key, 3.25);
    key_str(key, "hello\0world"); // embedded NUL survives
    key_double(key, std::numeric_limits<double>::infinity());

    key_reader r(key);
    EXPECT_EQ(r.read_int(), -42);
    EXPECT_EQ(r.read_double(), 3.25);
    EXPECT_EQ(r.read_str(), "hello"); // the literal stops at the NUL
    EXPECT_TRUE(std::isinf(r.read_double()));
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(memo_key, reader_throws_on_truncation_instead_of_returning_garbage)
{
    std::string key;
    key_int(key, 7);
    key_str(key, "abcdef");

    // Cut inside the string body.
    const std::string cut = key.substr(0, key.size() - 3);
    key_reader r(cut);
    EXPECT_EQ(r.read_int(), 7);
    EXPECT_THROW(r.read_str(), error);

    // Cut inside a fixed-width field.
    const std::string short_cut = key.substr(0, 4);
    key_reader r2(short_cut);
    EXPECT_THROW(r2.read_int(), error);

    // A negative length prefix is corruption, not a huge allocation.
    std::string evil;
    key_int(evil, -5);
    key_reader r3(evil);
    EXPECT_THROW(r3.read_str(), error);
}

} // namespace
} // namespace phls
