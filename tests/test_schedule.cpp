// Tests for the schedule container, module assignments, and the classic
// ASAP/ALAP schedulers under Table 1 delays.
#include <gtest/gtest.h>

#include "cdfg/benchmarks.h"
#include "power/tracker.h"
#include "sched/asap_alap.h"
#include "sched/schedule.h"
#include "support/errors.h"

namespace phls {
namespace {

TEST(assignment, fastest_picks_the_parallel_multiplier_unconstrained)
{
    const graph g = make_hal();
    const module_library lib = table1_library();
    const module_assignment a = fastest_assignment(g, lib, unbounded_power);
    ASSERT_EQ(a.size(), static_cast<std::size_t>(g.node_count()));
    for (node_id v : g.nodes()) {
        if (g.kind(v) == op_kind::mult) {
            EXPECT_EQ(lib.module(a[v.index()]).name, "mult_par");
        }
    }
}

TEST(assignment, fastest_falls_back_to_serial_under_a_tight_cap)
{
    const graph g = make_hal();
    const module_library lib = table1_library();
    const module_assignment a = fastest_assignment(g, lib, 5.0);
    for (node_id v : g.nodes()) {
        if (g.kind(v) == op_kind::mult) {
            EXPECT_EQ(lib.module(a[v.index()]).name, "mult_ser");
        }
    }
}

TEST(assignment, returns_empty_when_cap_excludes_a_kind)
{
    const graph g = make_hal();
    const module_library lib = table1_library();
    EXPECT_TRUE(fastest_assignment(g, lib, 1.0).empty()); // no mult under 2.7
    EXPECT_TRUE(cheapest_assignment(g, lib, 1.0).empty());
}

TEST(assignment, cheapest_prefers_small_modules)
{
    const graph g = make_hal();
    const module_library lib = table1_library();
    const module_assignment a = cheapest_assignment(g, lib, unbounded_power);
    for (node_id v : g.nodes()) {
        if (g.kind(v) == op_kind::mult) {
            EXPECT_EQ(lib.module(a[v.index()]).name, "mult_ser");
        }
        if (g.kind(v) == op_kind::comp) {
            EXPECT_EQ(lib.module(a[v.index()]).name, "comp");
        }
    }
}

TEST(schedule, accessors_and_completeness)
{
    schedule s(3);
    EXPECT_FALSE(s.complete());
    EXPECT_FALSE(s.scheduled(node_id(0)));
    s.set_start(node_id(0), 2);
    s.set_module(node_id(0), module_id(1));
    EXPECT_TRUE(s.scheduled(node_id(0)));
    EXPECT_EQ(s.start(node_id(0)), 2);
    EXPECT_EQ(s.module_of(node_id(0)), module_id(1));
    s.clear_start(node_id(0));
    EXPECT_FALSE(s.scheduled(node_id(0)));
}

TEST(schedule, latency_and_profile_from_modules)
{
    const module_library lib = table1_library();
    schedule s(2);
    s.set_module(node_id(0), *lib.find("mult_ser")); // 4 cycles @ 2.7
    s.set_module(node_id(1), *lib.find("add"));      // 1 cycle  @ 2.5
    s.set_start(node_id(0), 0);
    s.set_start(node_id(1), 1);
    EXPECT_EQ(s.latency(lib), 4);
    const power_profile p = s.profile(lib);
    EXPECT_DOUBLE_EQ(p.at(0), 2.7);
    EXPECT_DOUBLE_EQ(p.at(1), 5.2);
    EXPECT_DOUBLE_EQ(p.at(2), 2.7);
    EXPECT_DOUBLE_EQ(p.peak(), 5.2);
}

TEST(asap, hal_reaches_the_known_critical_path)
{
    const graph g = make_hal();
    const module_library lib = table1_library();
    const module_assignment fast = fastest_assignment(g, lib, unbounded_power);
    const schedule s = asap_schedule(g, lib, fast);
    EXPECT_TRUE(s.complete());
    EXPECT_EQ(s.latency(lib), 8); // DESIGN.md table: all-parallel hal
    EXPECT_NO_THROW(validate_schedule(g, lib, s));

    const module_assignment slow = cheapest_assignment(g, lib, unbounded_power);
    EXPECT_EQ(asap_schedule(g, lib, slow).latency(lib), 12); // all-serial
}

TEST(asap, inputs_start_at_zero)
{
    const graph g = make_hal();
    const module_library lib = table1_library();
    const schedule s = asap_schedule(g, lib, fastest_assignment(g, lib, unbounded_power));
    for (node_id v : g.nodes()) {
        if (g.kind(v) == op_kind::input) {
            EXPECT_EQ(s.start(v), 0);
        }
    }
}

TEST(alap, anchors_sinks_at_the_deadline)
{
    const graph g = make_hal();
    const module_library lib = table1_library();
    const module_assignment a = fastest_assignment(g, lib, unbounded_power);
    const schedule s = alap_schedule(g, lib, a, 10);
    ASSERT_TRUE(s.complete());
    EXPECT_EQ(s.latency(lib), 10);
    EXPECT_NO_THROW(validate_schedule(g, lib, s, 10));
}

TEST(alap, incomplete_below_critical_path)
{
    const graph g = make_hal();
    const module_library lib = table1_library();
    const module_assignment a = fastest_assignment(g, lib, unbounded_power);
    EXPECT_FALSE(alap_schedule(g, lib, a, 7).complete());
}

TEST(alap, never_earlier_than_asap)
{
    const graph g = make_elliptic();
    const module_library lib = table1_library();
    const module_assignment a = fastest_assignment(g, lib, unbounded_power);
    const schedule lo = asap_schedule(g, lib, a);
    const schedule hi = alap_schedule(g, lib, a, 25);
    ASSERT_TRUE(hi.complete());
    for (node_id v : g.nodes()) EXPECT_LE(lo.start(v), hi.start(v)) << g.label(v);
}

TEST(validate_schedule, rejects_violations)
{
    const graph g = make_hal();
    const module_library lib = table1_library();
    const module_assignment a = fastest_assignment(g, lib, unbounded_power);
    schedule s = asap_schedule(g, lib, a);

    // Latency bound violation.
    EXPECT_THROW(validate_schedule(g, lib, s, 5), error);
    // Power bound violation.
    EXPECT_THROW(validate_schedule(g, lib, s, -1, 1.0), error);
    // Dependency violation.
    schedule broken = s;
    const node_id m4 = *g.find("m4");
    broken.set_start(m4, 0);
    EXPECT_THROW(validate_schedule(g, lib, broken), error);
    // Unscheduled operation.
    schedule missing = s;
    missing.clear_start(m4);
    EXPECT_THROW(validate_schedule(g, lib, missing), error);
    // Module that cannot execute the kind.
    schedule wrong = s;
    wrong.set_module(m4, *lib.find("add"));
    EXPECT_THROW(validate_schedule(g, lib, wrong), error);
}

} // namespace
} // namespace phls
