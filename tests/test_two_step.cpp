// Tests for the two-step baseline and the peak-reduction retimer, plus
// schedule binding.
#include <gtest/gtest.h>

#include "cdfg/benchmarks.h"
#include "support/errors.h"
#include "sched/asap_alap.h"
#include "synth/schedule_bind.h"
#include "synth/synthesizer.h"
#include "synth/two_step.h"
#include "synth/verify.h"

namespace phls {
namespace {

const module_library& lib()
{
    static const module_library l = table1_library();
    return l;
}

TEST(two_step, never_increases_the_peak)
{
    for (const auto& [name, T] : {std::pair<const char*, int>{"hal", 17},
                                  {"cosine", 15},
                                  {"elliptic", 22}}) {
        const graph g = benchmark_by_name(name);
        const two_step_result r = two_step_synthesize(g, lib(), {T, 5.0});
        ASSERT_TRUE(r.feasible) << r.reason;
        EXPECT_LE(r.peak_after, r.peak_before + 1e-9) << name;
    }
}

TEST(two_step, keeps_the_design_valid_after_retiming)
{
    const graph g = make_cosine();
    const two_step_result r = two_step_synthesize(g, lib(), {19, 12.0});
    ASSERT_TRUE(r.feasible);
    // Constraints minus the power cap must still hold exactly.
    const auto violations =
        verify_datapath(g, lib(), r.dp, {19, unbounded_power}, synthesis_options{}.costs);
    EXPECT_TRUE(violations.empty()) << violations.front();
    EXPECT_EQ(r.meets_power, r.peak_after <= 12.0 + power_tracker::tolerance);
}

TEST(two_step, reports_step_one_failures)
{
    const two_step_result r = two_step_synthesize(make_hal(), lib(), {5, 10.0});
    EXPECT_FALSE(r.feasible);
    EXPECT_NE(r.reason.find("step one"), std::string::npos);
}

TEST(reduce_peak, flattens_an_asap_schedule_with_slack)
{
    const graph g = make_hal();
    const module_assignment a = fastest_assignment(g, lib(), unbounded_power);
    const schedule s = asap_schedule(g, lib(), a);
    datapath dp = bind_schedule("hal_asap", g, lib(), s, cost_model{});
    const double before = dp.peak_power(lib());
    const int moves = reduce_peak_power(g, lib(), dp, 17, cost_model{});
    EXPECT_GT(moves, 0);
    EXPECT_LT(dp.peak_power(lib()), before);
    EXPECT_TRUE(verify_datapath(g, lib(), dp, {17, unbounded_power}, cost_model{}).empty());
}

TEST(reduce_peak, no_moves_without_slack)
{
    const graph g = make_hal();
    const module_assignment a = fastest_assignment(g, lib(), unbounded_power);
    const schedule s = asap_schedule(g, lib(), a);
    datapath dp = bind_schedule("hal_tight", g, lib(), s, cost_model{});
    const int T = dp.latency(lib()); // zero global slack
    const double before = dp.peak_power(lib());
    reduce_peak_power(g, lib(), dp, T, cost_model{});
    // Peak can only improve via same-length reshuffles; never worsen.
    EXPECT_LE(dp.peak_power(lib()), before + 1e-9);
    EXPECT_LE(dp.latency(lib()), T);
}

TEST(bind_schedule, packs_non_overlapping_ops_onto_shared_instances)
{
    const graph g = make_hal();
    const module_assignment a = cheapest_assignment(g, lib(), unbounded_power);
    const schedule s = asap_schedule(g, lib(), a);
    const datapath dp = bind_schedule("hal_bound", g, lib(), s, cost_model{});
    // All constraints but sharing must hold.
    EXPECT_TRUE(verify_datapath(g, lib(), dp,
                                {dp.latency(lib()), unbounded_power}, cost_model{})
                    .empty());
    // The serial ASAP schedule spreads multiplies: fewer instances than ops.
    EXPECT_LT(dp.instances.size(), static_cast<std::size_t>(g.node_count()));
}

TEST(bind_schedule, rejects_incomplete_schedules)
{
    const graph g = make_hal();
    const module_assignment a = fastest_assignment(g, lib(), unbounded_power);
    schedule s = asap_schedule(g, lib(), a);
    s.clear_start(node_id(0));
    EXPECT_THROW(bind_schedule("bad", g, lib(), s, cost_model{}), error);
}

} // namespace
} // namespace phls
