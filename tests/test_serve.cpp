// Tests for the long-lived exploration server: handshake and job flow
// over unix and TCP listeners, warm session sharing across clients,
// concurrent clients, and graceful degradation — a malformed client or
// a rejected job must never take the server (or other clients) down.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cdfg/benchmarks.h"
#include "dse/session.h"
#include "flow/flow.h"
#include "serve/client.h"
#include "serve/server.h"
#include "support/errors.h"

namespace phls {
namespace {

using namespace serve;

const module_library& lib()
{
    static const module_library l = table1_library();
    return l;
}

flow hal17() { return flow::on(make_hal()).with_library(lib()).latency(17); }

/// A duplicate-heavy point list: every grid point appears twice.
std::vector<synthesis_constraints> duplicated_grid(int points)
{
    std::vector<synthesis_constraints> grid;
    for (double cap : hal17().power_grid(points)) grid.push_back({17, cap});
    const std::vector<synthesis_constraints> once = grid;
    grid.insert(grid.end(), once.begin(), once.end());
    return grid;
}

std::vector<front_point> reference_front(const std::vector<synthesis_constraints>& grid)
{
    dse::session session(hal17());
    return session.explore(dse::list(grid), {}, 1).front;
}

void expect_same_front(const std::vector<front_point>& got,
                       const std::vector<front_point>& want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_TRUE(got[i] == want[i]) << "front point " << i;
}

/// A unix-socket server running for the duration of one test.
struct test_server {
    explicit test_server(const char* name)
    {
        server_options opts;
        opts.socket_path = std::string(::testing::TempDir()) + name;
        std::remove(opts.socket_path.c_str());
        srv = std::make_unique<server>(opts);
        srv->start();
    }
    ~test_server()
    {
        srv->stop();
        std::remove(srv->socket_path().c_str());
    }
    client connect() { return client(connect_unix(srv->socket_path())); }
    std::unique_ptr<server> srv;
};

// ---------------------------------------------------------- happy path

TEST(serve, served_sweep_matches_local_explore)
{
    const std::vector<synthesis_constraints> grid = duplicated_grid(4);
    const std::vector<front_point> want = reference_front(grid);
    test_server ts("serve_basic.sock");

    client c = ts.connect();
    std::vector<std::size_t> indices;
    std::vector<front_delta> deltas;
    dse::sink sk;
    sk.on_result = [&](std::size_t i, const flow_report&) { indices.push_back(i); };
    sk.on_front = [&](const front_delta& d) { deltas.push_back(d); };
    const done_frame done = c.explore(make_job(hal17(), dse::list(grid)), sk);
    c.bye();

    EXPECT_EQ(done.space_size, grid.size());
    EXPECT_EQ(done.evaluated, grid.size());
    EXPECT_EQ(indices.size(), grid.size());
    expect_same_front(done.front, want);

    // Replaying the streamed deltas reconstructs the done frame's front.
    std::vector<front_point> rebuilt;
    for (const front_delta& d : deltas) {
        for (const front_point& p : d.left) {
            const auto it = std::find_if(rebuilt.begin(), rebuilt.end(),
                                         [&](const front_point& q) { return q == p; });
            ASSERT_NE(it, rebuilt.end());
            rebuilt.erase(it);
        }
        for (const front_point& p : d.entered) rebuilt.push_back(p);
    }
    std::sort(rebuilt.begin(), rebuilt.end(), [](const front_point& a, const front_point& b) {
        if (a.peak != b.peak) return a.peak < b.peak;
        if (a.area != b.area) return a.area < b.area;
        return a.index < b.index;
    });
    expect_same_front(rebuilt, done.front);

    const server::stats_snapshot st = ts.srv->stats();
    EXPECT_EQ(st.jobs, 1u);
    EXPECT_EQ(st.rejects, 0u);
    EXPECT_EQ(st.protocol_errors, 0u);
    EXPECT_EQ(st.sessions, 1u);
}

TEST(serve, duplicate_jobs_share_one_warm_session)
{
    const std::vector<synthesis_constraints> grid = duplicated_grid(3);
    test_server ts("serve_warm.sock");
    const job_request job = make_job(hal17(), dse::list(grid));

    client first = ts.connect();
    const done_frame cold = first.explore(job);
    first.bye();
    EXPECT_EQ(cold.evaluated, grid.size());

    client second = ts.connect();
    const done_frame warm = second.explore(job);
    second.bye();

    // Same problem, same pool slot: the whole second sweep is answered
    // from the warm session's report memo, and the fronts agree exactly.
    expect_same_front(warm.front, cold.front);
    EXPECT_GT(warm.counters.report_hits, cold.counters.report_hits);
    EXPECT_EQ(ts.srv->stats().sessions, 1u);
    EXPECT_EQ(ts.srv->stats().jobs, 2u);
}

TEST(serve, concurrent_clients_all_get_the_single_process_front)
{
    const std::vector<synthesis_constraints> grid = duplicated_grid(3);
    const std::vector<front_point> want = reference_front(grid);
    test_server ts("serve_concurrent.sock");
    const job_request job = make_job(hal17(), dse::list(grid));

    constexpr int clients = 4;
    std::vector<done_frame> done(clients);
    std::vector<std::string> failures(clients);
    std::vector<std::thread> threads;
    for (int i = 0; i < clients; ++i) {
        threads.emplace_back([&, i] {
            try {
                client c = ts.connect();
                done[static_cast<std::size_t>(i)] = c.explore(job);
                c.bye();
            } catch (const std::exception& e) {
                failures[static_cast<std::size_t>(i)] = e.what();
            }
        });
    }
    for (std::thread& t : threads) t.join();

    for (int i = 0; i < clients; ++i) {
        EXPECT_EQ(failures[static_cast<std::size_t>(i)], "") << "client " << i;
        expect_same_front(done[static_cast<std::size_t>(i)].front, want);
    }
    const server::stats_snapshot st = ts.srv->stats();
    EXPECT_EQ(st.jobs, static_cast<std::size_t>(clients));
    EXPECT_EQ(st.sessions, 1u); // all four shared one warm session
    EXPECT_EQ(st.clients, static_cast<std::size_t>(clients));
}

TEST(serve, tcp_loopback_with_ephemeral_port)
{
    const std::vector<synthesis_constraints> grid = duplicated_grid(2);
    const std::vector<front_point> want = reference_front(grid);

    server_options opts;
    opts.port = 0; // ephemeral
    server srv(opts);
    ASSERT_GT(srv.port(), 0);
    srv.start();

    client c{connect_tcp("127.0.0.1", srv.port())};
    const done_frame done = c.explore(make_job(hal17(), dse::list(grid)));
    c.bye();
    expect_same_front(done.front, want);
    srv.stop();
    srv.stop(); // idempotent
}

// ----------------------------------------------- graceful degradation

TEST(serve, malformed_client_is_dropped_but_the_server_keeps_serving)
{
    const std::vector<synthesis_constraints> grid = duplicated_grid(2);
    test_server ts("serve_malformed.sock");

    {
        // A hostile peer: valid transport, then garbage bytes.
        channel raw = connect_unix(ts.srv->socket_path());
        send_hello(raw);
        EXPECT_EQ(expect_hello(raw), wire_protocol_version);
        raw.send_raw("this is not a frame at all.....");
        // The server answers with a best-effort reject and closes only
        // this connection; reading to EOF must not hang or crash.
        try {
            while (raw.recv()) {
            }
        } catch (const wire_error&) {
        }
    }

    // The next well-formed client is served normally.
    client c = ts.connect();
    const done_frame done = c.explore(make_job(hal17(), dse::list(grid)));
    c.bye();
    EXPECT_EQ(done.evaluated, grid.size());
    EXPECT_GE(ts.srv->stats().protocol_errors, 1u);
    EXPECT_EQ(ts.srv->stats().jobs, 1u);
}

TEST(serve, version_mismatch_is_rejected_before_any_job_bytes)
{
    test_server ts("serve_version.sock");
    {
        channel raw = connect_unix(ts.srv->socket_path());
        EXPECT_EQ(expect_hello(raw), wire_protocol_version);
        raw.send(frame_type::hello, encode_hello(99));
        // The server drops the connection (after a best-effort reject).
        try {
            while (raw.recv()) {
            }
        } catch (const wire_error&) {
        }
    }
    EXPECT_GE(ts.srv->stats().protocol_errors, 1u);

    // And a current-version client still gets served.
    client c = ts.connect();
    const done_frame done =
        c.explore(make_job(hal17(), dse::list({{17, 7.5}})));
    c.bye();
    EXPECT_EQ(done.evaluated, 1u);
}

TEST(serve, bad_jobs_are_rejected_and_the_connection_survives)
{
    test_server ts("serve_reject.sock");
    client c = ts.connect();

    job_request bad = make_job(hal17(), dse::list({{17, 7.5}}));
    bad.graph_text = "this does not parse";
    EXPECT_THROW(c.explore(bad), error);

    // Same connection, next job: served normally.
    const done_frame done = c.explore(make_job(hal17(), dse::list({{17, 7.5}})));
    c.bye();
    EXPECT_EQ(done.evaluated, 1u);
    EXPECT_EQ(ts.srv->stats().rejects, 1u);
    EXPECT_EQ(ts.srv->stats().jobs, 1u);
    EXPECT_EQ(ts.srv->stats().protocol_errors, 0u);
}

TEST(serve, unknown_strategy_names_are_rejected_cleanly)
{
    test_server ts("serve_strategy.sock");
    client c = ts.connect();
    job_request bad = make_job(hal17(), dse::list({{17, 7.5}}));
    bad.synthesizer = "no-such-strategy";
    try {
        c.explore(bad);
        FAIL() << "job with an unknown strategy was accepted";
    } catch (const error& e) {
        EXPECT_NE(std::string(e.what()).find("rejected"), std::string::npos);
    }
    c.bye();
    EXPECT_EQ(ts.srv->stats().rejects, 1u);
}

TEST(serve, stop_disconnects_idle_clients_promptly)
{
    test_server ts("serve_stop.sock");
    channel idle = connect_unix(ts.srv->socket_path());
    send_hello(idle);
    EXPECT_EQ(expect_hello(idle), wire_protocol_version);

    // stop() shuts the client socket down; the pending read sees EOF (or
    // an error), never a hang.
    ts.srv->stop();
    try {
        while (idle.recv()) {
        }
    } catch (const wire_error&) {
    }
    SUCCEED();
}

} // namespace
} // namespace phls
