// Value lifetimes.
//
// Every non-output operation produces one value at its finish cycle; the
// value must be held until the start cycle of its last consumer.  A value
// whose last consumer starts exactly when it is produced is forwarded
// combinationally and needs no register.
#pragma once

#include <vector>

#include "sched/schedule.h"

namespace phls {

/// Lifetime [birth, death) of one produced value.
struct value_lifetime {
    node_id producer;
    int birth = 0; ///< finish cycle of the producer
    int death = 0; ///< start cycle of the last consumer (>= birth)

    bool needs_register() const { return death > birth; }
};

/// Lifetimes of all values with at least one consumer, in producer-id
/// order.  Requires a complete schedule.
std::vector<value_lifetime> compute_value_lifetimes(const graph& g,
                                                    const module_library& lib,
                                                    const schedule& s);

} // namespace phls
