#include "rtl/value_lifetime.h"

#include <algorithm>

#include "support/errors.h"

namespace phls {

std::vector<value_lifetime> compute_value_lifetimes(const graph& g,
                                                    const module_library& lib,
                                                    const schedule& s)
{
    check(s.complete(), "value lifetimes need a complete schedule");
    std::vector<value_lifetime> out;
    for (node_id v : g.nodes()) {
        if (g.kind(v) == op_kind::output) continue; // outputs produce nothing
        if (g.succs(v).empty()) continue;
        value_lifetime lt;
        lt.producer = v;
        lt.birth = s.finish(v, lib);
        lt.death = lt.birth;
        for (node_id c : g.succs(v)) lt.death = std::max(lt.death, s.start(c));
        out.push_back(lt);
    }
    return out;
}

} // namespace phls
