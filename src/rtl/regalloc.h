// Left-edge register allocation: values whose lifetimes do not overlap
// share a register.  Classic channel-routing-derived algorithm; optimal
// register count for interval sharing.
#pragma once

#include <vector>

#include "rtl/value_lifetime.h"

namespace phls {

/// Result of register allocation.
struct regalloc_result {
    int register_count = 0;
    /// Register index per lifetime (aligned with the input vector);
    /// -1 when the value is forwarded combinationally (no register).
    std::vector<int> register_of;
};

/// Allocates registers for `lifetimes` (any order; sorted internally).
regalloc_result left_edge_allocate(const std::vector<value_lifetime>& lifetimes);

} // namespace phls
