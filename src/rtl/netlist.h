// Structural netlist construction and export.
//
// Turns a scheduled + bound design into an explicit datapath netlist:
// FU instances, registers (left-edge shared), and source->port
// connections (the muxes).  Exports a human-readable text form and a
// skeleton structural Verilog module; both are meant for inspection and
// downstream tooling, not for tape-out.
#pragma once

#include <string>
#include <vector>

#include "library/cost_model.h"
#include "rtl/interconnect.h"
#include "sched/schedule.h"

namespace phls {

/// A datapath netlist.
struct netlist {
    struct fu {
        int index = 0;
        module_id module;
        std::vector<node_id> ops; ///< operations executed, by start time
    };
    struct storage {
        int index = 0;
        std::vector<node_id> values; ///< producers time-sharing the register
    };
    /// One driver of an FU input port.
    struct connection {
        int fu_index = 0;
        int port = 0;
        bool from_register = false;
        int source_index = 0; ///< register index or producing fu index
    };

    std::string design_name;
    std::vector<fu> fus;
    std::vector<storage> registers;
    std::vector<connection> connections; ///< unique (fu, port, source) triples
};

/// Builds the netlist for a complete schedule and binding.
/// `instance_modules[i]` is the module type of flat instance i.
netlist build_netlist(const std::string& design_name, const graph& g,
                      const module_library& lib, const schedule& s,
                      const std::vector<int>& instance_of,
                      const std::vector<module_id>& instance_modules);

/// Human-readable listing.
std::string netlist_to_text(const netlist& nl, const graph& g, const module_library& lib);

/// Skeleton structural Verilog (instances, registers, mux comments).
std::string netlist_to_verilog(const netlist& nl, const graph& g, const module_library& lib);

} // namespace phls
