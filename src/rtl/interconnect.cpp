#include "rtl/interconnect.h"

#include <map>
#include <set>

#include "support/errors.h"

namespace phls {

interconnect_stats estimate_interconnect(const graph& g, const module_library& lib,
                                         const schedule& s,
                                         const std::vector<int>& instance_of,
                                         const cost_model& costs)
{
    check(static_cast<int>(instance_of.size()) == g.node_count(),
          "instance_of size does not match graph");

    const std::vector<value_lifetime> lifetimes = compute_value_lifetimes(g, lib, s);
    const regalloc_result regs = left_edge_allocate(lifetimes);

    // Source of each produced value as seen by consumers: its register if
    // stored, otherwise the producing instance (combinational forward).
    // Encoded as (is_register, index) pairs.
    std::map<int, std::pair<bool, int>> source_of_producer;
    for (std::size_t i = 0; i < lifetimes.size(); ++i) {
        const int reg = regs.register_of[i];
        if (reg >= 0)
            source_of_producer[lifetimes[i].producer.value()] = {true, reg};
        else
            source_of_producer[lifetimes[i].producer.value()] = {
                false, instance_of[lifetimes[i].producer.index()]};
    }

    // Distinct sources per (instance, port).
    std::map<std::pair<int, int>, std::set<std::pair<bool, int>>> port_sources;
    for (node_id v : g.nodes()) {
        if (g.kind(v) == op_kind::input) continue; // inputs read from outside
        const int inst = instance_of[v.index()];
        const std::vector<node_id>& operands = g.preds(v);
        for (std::size_t port = 0; port < operands.size(); ++port) {
            const auto src = source_of_producer.find(operands[port].value());
            check(src != source_of_producer.end(),
                  "operand of '" + g.label(v) + "' has no recorded source");
            port_sources[{inst, static_cast<int>(port)}].insert(src->second);
        }
    }

    interconnect_stats stats;
    stats.register_count = regs.register_count;
    for (const auto& [port, sources] : port_sources)
        stats.mux_extra_inputs += static_cast<int>(sources.size()) - 1;
    if (costs.include_interconnect) {
        stats.register_area = costs.register_area * stats.register_count;
        stats.mux_area = costs.mux_area_per_extra_input * stats.mux_extra_inputs;
    }
    return stats;
}

} // namespace phls
