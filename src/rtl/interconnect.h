// Interconnect estimation: multiplexer inputs per FU port and register
// count, combined into the area model of DESIGN.md / cost_model.h.
//
// Port model: a binary operation reads operand 0 and operand 1 in the
// order its predecessors were attached; a single-predecessor arithmetic
// op has a constant on the free port (no mux contribution); outputs have
// one port; inputs none.  A port of an FU instance driven by k distinct
// sources (registers or forwarding producers) needs a k-input mux, which
// costs (k-1) * mux_area_per_extra_input.
#pragma once

#include <vector>

#include "library/cost_model.h"
#include "rtl/regalloc.h"
#include "rtl/value_lifetime.h"
#include "sched/schedule.h"

namespace phls {

/// Aggregate interconnect statistics for a bound design.
struct interconnect_stats {
    int register_count = 0;
    int mux_extra_inputs = 0; ///< sum over ports of (sources - 1)
    double register_area = 0.0;
    double mux_area = 0.0;

    double total() const { return register_area + mux_area; }
};

/// Estimates registers and muxes for a complete schedule + binding.
/// `instance_of[v]` is the flat FU instance executing node v.
interconnect_stats estimate_interconnect(const graph& g, const module_library& lib,
                                         const schedule& s,
                                         const std::vector<int>& instance_of,
                                         const cost_model& costs);

} // namespace phls
