#include "rtl/regalloc.h"

#include <algorithm>
#include <numeric>

namespace phls {

regalloc_result left_edge_allocate(const std::vector<value_lifetime>& lifetimes)
{
    regalloc_result result;
    result.register_of.assign(lifetimes.size(), -1);

    // Sort candidate intervals by birth (left edge), tie-broken by death
    // then producer id for determinism.
    std::vector<std::size_t> order(lifetimes.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::erase_if(order, [&](std::size_t i) { return !lifetimes[i].needs_register(); });
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        if (lifetimes[a].birth != lifetimes[b].birth)
            return lifetimes[a].birth < lifetimes[b].birth;
        if (lifetimes[a].death != lifetimes[b].death)
            return lifetimes[a].death < lifetimes[b].death;
        return lifetimes[a].producer < lifetimes[b].producer;
    });

    std::vector<int> register_free_at; // death of the last value in each register
    for (std::size_t i : order) {
        int chosen = -1;
        for (std::size_t r = 0; r < register_free_at.size(); ++r) {
            if (register_free_at[r] <= lifetimes[i].birth) {
                chosen = static_cast<int>(r);
                break;
            }
        }
        if (chosen < 0) {
            chosen = static_cast<int>(register_free_at.size());
            register_free_at.push_back(0);
        }
        register_free_at[static_cast<std::size_t>(chosen)] = lifetimes[i].death;
        result.register_of[i] = chosen;
    }
    result.register_count = static_cast<int>(register_free_at.size());
    return result;
}

} // namespace phls
