#include "synth/exact.h"

#include <algorithm>

#include "power/tracker.h"
#include "support/errors.h"
#include "synth/verify.h"

namespace phls {

namespace {

struct op_state {
    module_id module;
    int start = -1;
    int instance = -1;
};

struct instance_state {
    module_id module;
    std::vector<std::pair<int, int>> busy; // committed [start, end)
};

class searcher {
public:
    searcher(const graph& g, const module_library& lib,
             const synthesis_constraints& constraints, const exact_options& options)
        : g_(g), lib_(lib), constraints_(constraints), options_(options),
          order_(g.topo_order()), tracker_(constraints.max_power),
          states_(static_cast<std::size_t>(g.node_count()))
    {
    }

    exact_result run()
    {
        exact_result result;
        best_total_ = std::numeric_limits<double>::infinity();
        exhausted_ = false;
        explored_ = 0;
        descend(0, 0.0);
        result.explored = explored_;
        result.solved = !exhausted_;
        if (best_total_ < std::numeric_limits<double>::infinity()) {
            result.feasible = true;
            result.dp = best_dp_;
            if (exhausted_)
                result.reason = "node limit reached; incumbent may be suboptimal";
        } else {
            result.reason = exhausted_ ? "node limit reached before any design was found"
                                       : "no design satisfies the constraints";
        }
        return result;
    }

private:
    // Remaining-area lower bound: every still-unbound kind that has no
    // already-open instance able to execute it will need at least the
    // cheapest module for that kind.
    double remaining_bound(std::size_t depth) const
    {
        bool kind_needed[op_kind_count] = {};
        for (std::size_t i = depth; i < order_.size(); ++i)
            kind_needed[op_kind_index(g_.kind(order_[i]))] = true;
        double bound = 0.0;
        for (op_kind k : all_op_kinds()) {
            if (!kind_needed[op_kind_index(k)]) continue;
            const bool open = std::any_of(
                instances_.begin(), instances_.end(),
                [&](const instance_state& inst) { return lib_.module(inst.module).supports(k); });
            if (open) continue;
            const std::optional<module_id> cheapest =
                lib_.cheapest_for(k, constraints_.max_power);
            if (cheapest) bound += lib_.module(*cheapest).area;
        }
        return bound;
    }

    void record_leaf()
    {
        datapath dp("exact_" + g_.name(), g_.node_count());
        std::vector<int> inst_map(instances_.size(), -1);
        for (node_id v : order_) {
            const op_state& st = states_[v.index()];
            int& mapped = inst_map[static_cast<std::size_t>(st.instance)];
            if (mapped < 0) mapped = dp.add_instance(instances_[static_cast<std::size_t>(st.instance)].module);
            dp.bind(v, mapped, st.start);
        }
        dp.compute_area(g_, lib_, options_.costs);
        if (dp.area.total() < best_total_) {
            best_total_ = dp.area.total();
            best_dp_ = std::move(dp);
        }
    }

    void descend(std::size_t depth, double fu_area)
    {
        if (exhausted_) return;
        if (++explored_ > options_.node_limit) {
            exhausted_ = true;
            return;
        }
        if (depth == order_.size()) {
            record_leaf();
            return;
        }
        // Admissible prune: committed FU area + remaining bound cannot
        // already exceed the incumbent's *total* (interconnect >= 0).
        if (fu_area + remaining_bound(depth) >= best_total_) return;

        const node_id v = order_[depth];
        const op_kind kind = g_.kind(v);

        for (module_id m : lib_.candidates_for(kind)) {
            const fu_module& mod = lib_.module(m);
            if (mod.power > constraints_.max_power + power_tracker::tolerance) continue;
            const int d = mod.latency;

            int ready = 0;
            for (node_id p : g_.preds(v)) {
                const op_state& ps = states_[p.index()];
                ready = std::max(ready,
                                 ps.start + lib_.module(ps.module).latency);
            }
            // Latest start leaving room for the longest chain below v
            // (unit-delay lower bound on successors keeps this admissible).
            const int latest = constraints_.latency - d - depth_below(v);
            for (int t = ready; t <= latest; ++t) {
                if (!tracker_.fits(t, d, mod.power)) continue;

                // Instance choice: any open compatible instance, plus one
                // canonical "new instance" branch (symmetry broken: the
                // new instance is always appended at the back).
                for (int inst = 0; inst <= static_cast<int>(instances_.size()); ++inst) {
                    double added_area = 0.0;
                    if (inst < static_cast<int>(instances_.size())) {
                        instance_state& is = instances_[static_cast<std::size_t>(inst)];
                        if (!(is.module == m)) continue;
                        const bool clash = std::any_of(
                            is.busy.begin(), is.busy.end(),
                            [&](const auto& b) { return t < b.second && b.first < t + d; });
                        if (clash) continue;
                    } else {
                        added_area = mod.area;
                        if (fu_area + added_area + remaining_bound(depth + 1) >= best_total_)
                            continue;
                        instances_.push_back(instance_state{m, {}});
                    }

                    instances_[static_cast<std::size_t>(inst)].busy.emplace_back(t, t + d);
                    tracker_.reserve(t, d, mod.power);
                    states_[v.index()] = op_state{m, t, inst};

                    descend(depth + 1, fu_area + added_area);

                    states_[v.index()] = op_state{};
                    tracker_.release(t, d, mod.power);
                    instances_[static_cast<std::size_t>(inst)].busy.pop_back();
                    if (inst == static_cast<int>(instances_.size()) - 1 &&
                        instances_.back().busy.empty())
                        instances_.pop_back();
                    if (exhausted_) return;
                }
            }
        }
    }

    // Longest unit-delay chain strictly below v (cheap admissible slack
    // bound; memoised).
    int depth_below(node_id v)
    {
        if (depth_below_.empty()) {
            depth_below_.assign(static_cast<std::size_t>(g_.node_count()), 0);
            for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
                int below = 0;
                for (node_id s : g_.succs(*it))
                    below = std::max(below, depth_below_[s.index()] + 1);
                depth_below_[it->index()] = below;
            }
        }
        return depth_below_[v.index()];
    }

    const graph& g_;
    const module_library& lib_;
    synthesis_constraints constraints_;
    exact_options options_;
    std::vector<node_id> order_;
    power_tracker tracker_;
    std::vector<op_state> states_;
    std::vector<instance_state> instances_;
    std::vector<int> depth_below_;
    double best_total_ = 0.0;
    datapath best_dp_;
    long explored_ = 0;
    bool exhausted_ = false;
};

} // namespace

exact_result exact_synthesize(const graph& g, const module_library& lib,
                              const synthesis_constraints& constraints,
                              const exact_options& options)
{
    g.validate();
    lib.check_covers(g);
    check(constraints.latency >= 1, "latency constraint must be positive");
    check(g.node_count() <= options.max_operations,
          "graph too large for exact synthesis (raise exact_options::max_operations)");

    exact_result result = searcher(g, lib, constraints, options).run();
    if (result.feasible)
        check_datapath(g, lib, result.dp, constraints, options.costs);
    return result;
}

} // namespace phls
