// Binding for an externally produced schedule.
//
// Given a complete schedule (e.g. from force-directed scheduling or a
// locked pasap run), greedily packs operations onto FU instances of their
// assigned module types: an operation joins the first instance whose
// committed executions do not overlap, otherwise a new instance is
// allocated.  This is the classic schedule-then-bind flow the paper's
// integrated algorithm is compared against (E7).
#pragma once

#include "synth/datapath.h"

namespace phls {

/// Builds a datapath from `s` (must be complete); area is computed with
/// `costs`.  Throws phls::error on an invalid schedule.
datapath bind_schedule(const std::string& name, const graph& g, const module_library& lib,
                       const schedule& s, const cost_model& costs);

} // namespace phls
