#include "synth/prospect.h"

#include "support/strings.h"

namespace phls {

std::string to_string(prospect_policy policy)
{
    switch (policy) {
    case prospect_policy::fastest_fit: return "fastest_fit";
    case prospect_policy::cheapest_fit: return "cheapest_fit";
    }
    return "?";
}

prospect_result make_prospect(const graph& g, const module_library& lib,
                              prospect_policy policy, double max_power)
{
    prospect_result result;
    lib.check_covers(g);
    result.assignment.resize(static_cast<std::size_t>(g.node_count()));
    for (node_id v : g.node_ids()) {
        const op_kind k = g.kind(v);
        const std::optional<module_id> m = policy == prospect_policy::fastest_fit
                                               ? lib.fastest_for(k, max_power)
                                               : lib.cheapest_for(k, max_power);
        if (!m) {
            result.reason =
                strf("no module for kind '%s' fits under power cap %.3f",
                     std::string(op_kind_name(k)).c_str(), max_power);
            return result;
        }
        result.assignment[v.index()] = *m;
    }
    result.ok = true;
    return result;
}

} // namespace phls
