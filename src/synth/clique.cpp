#include "synth/clique.h"

#include <algorithm>
#include <optional>
#include <set>

#include "cdfg/analysis.h"
#include "flow/explore_cache.h"
#include "sched/mobility.h"
#include "support/errors.h"
#include "support/log.h"
#include "support/strings.h"
#include "synth/compat.h"

namespace phls {

namespace {

std::string design_name(const graph& g, const synthesis_constraints& c)
{
    if (c.max_power == unbounded_power) return strf("%s_T%d_Pinf", g.name().c_str(), c.latency);
    return strf("%s_T%d_P%.3g", g.name().c_str(), c.latency, c.max_power);
}

/// Everything the merge loop mutates, so a failed decision can roll back.
struct partition_state {
    std::vector<int> fixed;          // committed/locked start times, -1 free
    module_assignment assignment;    // current per-node module
    std::vector<char> committed;     // bound to an instance
    power_tracker committed_power;   // reservations of committed ops
    datapath dp;
    time_windows windows;

    explicit partition_state(double cap) : committed_power(cap) {}
};

} // namespace

synthesis_result run_clique_partitioning(const graph& g, const module_library& lib,
                                         const synthesis_constraints& constraints,
                                         const synthesis_options& options,
                                         const explore_cache* cache)
{
    const int n = g.node_count();
    const double cap = constraints.max_power;
    synthesis_result result;
    result.dp = datapath(design_name(g, constraints), n);
    check(constraints.latency >= 1, "latency constraint must be positive");

    // 1. Prospect modules under the power cap (one table per
    // admissible-module set when a batch cache is attached).
    const prospect_result prospect =
        cache ? cache->prospect(options.policy, cap)
              : make_prospect(g, lib, options.policy, cap);
    if (!prospect.ok) {
        result.reason = prospect.reason;
        return result;
    }

    partition_state st(cap);
    st.fixed.assign(static_cast<std::size_t>(n), -1);
    st.assignment = prospect.assignment;
    st.committed.assign(static_cast<std::size_t>(n), 0);
    st.dp = datapath(design_name(g, constraints), n);

    const pasap_options sched_opts_base{options.order, {}};

    // Committed-window recomputes are level-1 memoised when a batch cache
    // is attached: the key is the full scheduling state, so identical
    // states (joins after the backtrack lock, the shared time-only first
    // step of two_step, duplicate points) are served instead of re-run.
    // The recompute counter still advances either way, keeping reports
    // byte-identical with the uncached path.
    const auto recompute_windows = [&](partition_state& s) {
        ++result.stats.window_recomputes;
        if (cache != nullptr)
            return cache->committed_windows(s.assignment, cap, constraints.latency,
                                            options.order, s.fixed);
        pasap_options o = sched_opts_base;
        o.fixed_starts = s.fixed;
        return power_windows(g, lib, s.assignment, cap, constraints.latency, o);
    };

    // 2. Initial pasap/palap windows.  With no operator committed yet
    // they are a pure function of (graph, lib, policy, cap, T, order),
    // so a batch cache serves them across points; the counter still
    // advances to keep reports byte-identical with the uncached path.
    if (cache != nullptr) {
        ++result.stats.window_recomputes;
        st.windows = cache->initial_windows(options.policy, cap, constraints.latency,
                                            options.order);
    } else {
        st.windows = recompute_windows(st);
    }
    if (!st.windows.feasible) {
        result.reason = st.windows.reason;
        return result;
    }

    // 3. Reachability: a pure graph invariant, computed once per batch
    // when cached instead of once per (point, policy).
    std::optional<reachability> local_reach;
    if (cache == nullptr) local_reach.emplace(g);
    const reachability& reach = cache ? cache->reach() : *local_reach;
    bool locked = false;

    // Locks every free operator to its current pasap start time (the
    // paper's backtrack remedy); the pasap schedule itself witnesses
    // feasibility.
    const auto lock_all = [&](partition_state& s) {
        for (node_id v : g.nodes())
            if (s.fixed[v.index()] < 0) s.fixed[v.index()] = s.windows.s_min[v.index()];
        locked = true;
        result.stats.locked = true;
        if (result.stats.merges_before_lock < 0)
            result.stats.merges_before_lock = result.stats.merges;
        const time_windows w = recompute_windows(s);
        check(w.feasible, "internal: locking to the pasap schedule failed: " + w.reason);
        s.windows = w;
    };

    if (options.lock_from_start) lock_all(st);

    // Commits one operation onto an instance at time t.
    const auto commit_op = [&](partition_state& s, node_id v, int inst, int t) {
        const module_id m = s.dp.instances[static_cast<std::size_t>(inst)].module;
        s.assignment[v.index()] = m;
        s.fixed[v.index()] = t;
        s.committed[v.index()] = 1;
        s.committed_power.reserve(t, lib.module(m).latency, lib.module(m).power);
        s.dp.bind(v, inst, t);
    };

    // 4. Greedy merge loop.
    std::set<std::string> blacklist;
    while (true) {
        compat_inputs in;
        in.g = &g;
        in.lib = &lib;
        in.costs = &options.costs;
        in.reach = &reach;
        in.max_power = cap;
        in.windows = &st.windows;
        in.fixed = &st.fixed;
        in.committed = &st.committed;
        in.instances = &st.dp.instances;
        in.committed_power = &st.committed_power;
        in.assignment = &st.assignment;
        in.locked = locked;

        std::vector<merge_candidate> candidates = enumerate_candidates(in);
        std::erase_if(candidates, [&](const merge_candidate& c) {
            return c.saving < 0.0 || blacklist.count(c.key()) > 0;
        });
        const int bi = best_candidate(candidates);
        if (bi < 0) break;
        const merge_candidate chosen = candidates[static_cast<std::size_t>(bi)];

        partition_state snapshot = st;
        if (chosen.type == merge_candidate::merge_type::pair) {
            const int inst = st.dp.add_instance(chosen.module);
            commit_op(st, chosen.a, inst, chosen.t_a);
            commit_op(st, chosen.b, inst, chosen.t_b);
        } else {
            commit_op(st, chosen.a, chosen.instance, chosen.t_a);
        }

        const time_windows w2 = recompute_windows(st);
        if (w2.feasible) {
            st.windows = w2;
            ++result.stats.merges;
            if (chosen.type == merge_candidate::merge_type::pair)
                ++result.stats.pair_merges;
            else
                ++result.stats.join_merges;
            blacklist.clear();
            log_debug() << "accepted " << chosen.key() << " saving " << chosen.saving;
            continue;
        }

        // The decision deleted an unscheduled operator: backtrack one step
        // and (first time) lock the remaining operators to the last valid
        // pasap schedule.
        st = std::move(snapshot);
        ++result.stats.rejected;
        log_debug() << "rejected " << chosen.key() << ": " << w2.reason;
        if (!locked && options.enable_backtrack_lock)
            lock_all(st);
        else
            blacklist.insert(chosen.key());
    }

    // 5. Finalisation: leftover operators become singleton instances.
    // First give each a chance to move to the cheapest power-feasible
    // module (validated by a full window recompute), then batch-commit
    // the rest at their pasap times, which are feasible by construction.
    for (node_id v : g.nodes()) {
        if (st.committed[v.index()]) continue;
        if (!options.allow_cheapest_rebind) continue;
        const module_id cheap = *lib.cheapest_for(g.kind(v), cap);
        if (cheap == st.assignment[v.index()]) continue;
        partition_state snapshot = st;
        const int inst = st.dp.add_instance(cheap);
        st.assignment[v.index()] = cheap;
        const int t = st.windows.s_min[v.index()];
        if (!st.committed_power.fits(t, lib.module(cheap).latency, lib.module(cheap).power)) {
            st = std::move(snapshot);
            ++result.stats.finalize_fallbacks;
            continue;
        }
        st.fixed[v.index()] = t;
        st.committed[v.index()] = 1;
        st.committed_power.reserve(t, lib.module(cheap).latency, lib.module(cheap).power);
        st.dp.bind(v, inst, t);
        const time_windows w2 = recompute_windows(st);
        if (w2.feasible) {
            st.windows = w2;
            ++result.stats.finalize_rebinds;
        } else {
            st = std::move(snapshot);
            ++result.stats.finalize_fallbacks;
        }
    }
    for (node_id v : g.nodes()) {
        if (st.committed[v.index()]) continue;
        const int inst = st.dp.add_instance(st.assignment[v.index()]);
        st.dp.bind(v, inst, st.windows.s_min[v.index()]);
        st.committed[v.index()] = 1;
    }

    result.dp = std::move(st.dp);
    result.stats.merges_before_lock =
        result.stats.locked ? result.stats.merges_before_lock : result.stats.merges;
    result.feasible = true;
    return result;
}

} // namespace phls
