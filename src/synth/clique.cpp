#include "synth/clique.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <unordered_set>

#include "cdfg/analysis.h"
#include "flow/explore_cache.h"
#include "sched/mobility.h"
#include "support/errors.h"
#include "support/kernels.h"
#include "support/log.h"
#include "support/strings.h"
#include "synth/arena.h"
#include "synth/candidates.h"
#include "synth/compat.h"

namespace phls {

namespace {

std::string design_name(const graph& g, const synthesis_constraints& c)
{
    if (c.max_power == unbounded_power) return strf("%s_T%d_Pinf", g.name().c_str(), c.latency);
    return strf("%s_T%d_P%.3g", g.name().c_str(), c.latency, c.max_power);
}

/// Everything the merge loop mutates, so a failed decision can roll back.
struct partition_state {
    std::vector<int> fixed;          // committed/locked start times, -1 free
    module_assignment assignment;    // current per-node module
    std::vector<char> committed;     // bound to an instance
    power_tracker committed_power;   // reservations of committed ops
    datapath dp;
    time_windows windows;

    explicit partition_state(double cap) : committed_power(cap) {}
};

/// Accumulates wall time into a kernel_timers field; pass nullptr when
/// timing is off.  The caller samples kernel_timing().collect once per
/// synthesis run (not once per region entry), so the disabled path costs
/// one pointer test and a mid-run flip affects the next run only.
class scoped_ns {
public:
    explicit scoped_ns(long long* acc) : acc_(acc)
    {
        if (acc_) t0_ = std::chrono::steady_clock::now();
    }
    ~scoped_ns()
    {
        if (acc_)
            *acc_ += std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - t0_)
                         .count();
    }
    scoped_ns(const scoped_ns&) = delete;
    scoped_ns& operator=(const scoped_ns&) = delete;

private:
    long long* acc_;
    std::chrono::steady_clock::time_point t0_;
};

/// O(changes) rollback of one merge attempt: the exact pre-attempt value
/// of every field a commit touches, captured *before* the mutation.  The
/// power profile slice is captured by value (release() re-subtracts and
/// can drift in the last ulp; restoring the captured doubles is
/// bit-exact, so decisions after a rollback are identical to the
/// snapshot-copy reference path).
struct op_undo {
    node_id v;
    module_id assignment;
    int fixed = -1;
    char committed = 0;
    int instance_of = -1;
    int sched_start = -1;
    module_id sched_module;
    int res_start = -1;
    std::vector<double> res_values;
};

struct merge_undo {
    std::vector<op_undo> ops;
    bool added_instance = false;
};

op_undo capture_op(const partition_state& st, node_id v, int t, int duration)
{
    op_undo u;
    u.v = v;
    u.assignment = st.assignment[v.index()];
    u.fixed = st.fixed[v.index()];
    u.committed = st.committed[v.index()];
    u.instance_of = st.dp.instance_of[v.index()];
    u.sched_start = st.dp.sched.start(v);
    u.sched_module = st.dp.sched.module_of(v);
    u.res_start = t;
    u.res_values = st.committed_power.interval_values(t, duration);
    return u;
}

void unwind(partition_state& st, const merge_undo& undo)
{
    for (auto it = undo.ops.rbegin(); it != undo.ops.rend(); ++it) {
        const op_undo& u = *it;
        const int inst_now = st.dp.instance_of[u.v.index()];
        if (inst_now != u.instance_of) {
            // The op was bound during the attempt; it is the last one
            // appended to its instance.
            auto& ops = st.dp.instances[static_cast<std::size_t>(inst_now)].ops;
            check(!ops.empty() && ops.back() == u.v,
                  "undo: operation is not the last one bound to its instance");
            ops.pop_back();
            st.dp.instance_of[u.v.index()] = u.instance_of;
        }
        st.dp.sched.set_start(u.v, u.sched_start);
        st.dp.sched.set_module(u.v, u.sched_module);
        st.committed_power.restore_interval(u.res_start, u.res_values);
        st.fixed[u.v.index()] = u.fixed;
        st.assignment[u.v.index()] = u.assignment;
        st.committed[u.v.index()] = u.committed;
    }
    if (undo.added_instance) {
        check(!st.dp.instances.empty() && st.dp.instances.back().ops.empty(),
              "undo: the added instance still has bound operations");
        st.dp.instances.pop_back();
    }
}

} // namespace

synthesis_result run_clique_partitioning(const graph& g, const module_library& lib,
                                         const synthesis_constraints& constraints,
                                         const synthesis_options& options,
                                         const explore_cache* cache)
{
    const int n = g.node_count();
    const double cap = constraints.max_power;
    synthesis_result result;
    const std::string name = design_name(g, constraints);
    result.dp = datapath(name, n);
    check(constraints.latency >= 1, "latency constraint must be positive");
    // Candidate identities (blacklist + incremental store) pack node,
    // instance and module ids into fixed-width fields; oversized inputs
    // must fail loudly, never collide silently.
    check(n < (1 << packed_node_bits) && lib.size() < (1 << packed_module_bits),
          "graph or library too large for packed candidate keys");

    const kernel_tuning& knobs = kernel_knobs();
    kernel_timers& timers = kernel_timing();
    // Sampled once per run; scoped_ns takes the resolved pointer.
    long long* const candidates_acc = timers.collect ? &timers.candidates_ns : nullptr;
    long long* const rollback_acc = timers.collect ? &timers.rollback_ns : nullptr;

    // 1. Prospect modules under the power cap (one table per
    // admissible-module set when a batch cache is attached).
    const prospect_result prospect =
        cache ? cache->prospect(options.policy, cap)
              : make_prospect(g, lib, options.policy, cap);
    if (!prospect.ok) {
        result.reason = prospect.reason;
        return result;
    }

    partition_state st(cap);
    st.fixed.assign(static_cast<std::size_t>(n), -1);
    st.assignment = prospect.assignment;
    st.committed.assign(static_cast<std::size_t>(n), 0);
    st.dp = datapath(name, n);

    // The reversed graph palap schedules on is a pure invariant: the
    // cache serves its copy to every point; without a cache it is built
    // once per partitioning instead of once per window recompute.
    std::optional<graph> local_rev;
    if (cache == nullptr) local_rev.emplace(reversed_graph(g));
    pasap_options sched_opts_base{options.order, {}, cache ? nullptr : &*local_rev};

    // Committed-window recomputes are level-1 memoised when a batch cache
    // is attached: the key is the full scheduling state, so identical
    // states (joins after the backtrack lock, the shared time-only first
    // step of two_step, duplicate points) are served instead of re-run.
    // The recompute counter still advances either way, keeping reports
    // byte-identical with the uncached path.
    const auto recompute_windows = [&](partition_state& s) {
        ++result.stats.window_recomputes;
        if (cache != nullptr)
            return cache->committed_windows(s.assignment, cap, constraints.latency,
                                            options.order, s.fixed);
        pasap_options o = sched_opts_base;
        o.fixed_starts = s.fixed;
        return power_windows(g, lib, s.assignment, cap, constraints.latency, o);
    };

    // 2. Initial pasap/palap windows.  With no operator committed yet
    // they are a pure function of (graph, lib, policy, cap, T, order),
    // so a batch cache serves them across points; the counter still
    // advances to keep reports byte-identical with the uncached path.
    if (cache != nullptr) {
        ++result.stats.window_recomputes;
        st.windows = cache->initial_windows(options.policy, cap, constraints.latency,
                                            options.order);
    } else {
        st.windows = recompute_windows(st);
    }
    if (!st.windows.feasible) {
        result.reason = st.windows.reason;
        return result;
    }

    // 3. Reachability: a pure graph invariant, computed once per batch
    // when cached instead of once per (point, policy).
    std::optional<reachability> local_reach;
    if (cache == nullptr) local_reach.emplace(g);
    const reachability& reach = cache ? cache->reach() : *local_reach;
    bool locked = false;

    candidate_store store;

    // Struct-of-arrays scoring arena (knobs.soa_arena): an engine of the
    // incremental store, synced to the scheduling state before every
    // store rebuild and every apply_accept.  Left detached otherwise so
    // the reference paths run the reference scoring.
    std::optional<synth_arena> arena_store;
    if (knobs.soa_arena && knobs.incremental_candidates) {
        arena_store.emplace();
        arena_store->build(g, lib);
    }
    synth_arena* const arena = arena_store ? &*arena_store : nullptr;

    // Locks every free operator to its current pasap start time (the
    // paper's backtrack remedy); the pasap schedule itself witnesses
    // feasibility.  Every window and fixed time moves at once, so the
    // incremental store rebuilds from scratch afterwards.
    const auto lock_all = [&](partition_state& s) {
        for (node_id v : g.node_ids())
            if (s.fixed[v.index()] < 0) s.fixed[v.index()] = s.windows.s_min[v.index()];
        locked = true;
        result.stats.locked = true;
        if (result.stats.merges_before_lock < 0)
            result.stats.merges_before_lock = result.stats.merges;
        const time_windows w = recompute_windows(s);
        check(w.feasible, "internal: locking to the pasap schedule failed: " + w.reason);
        s.windows = w;
        store.invalidate();
    };

    if (options.lock_from_start) lock_all(st);

    // Commits one operation onto an instance at time t.
    const auto commit_op = [&](partition_state& s, node_id v, int inst, int t) {
        const module_id m = s.dp.instances[static_cast<std::size_t>(inst)].module;
        s.assignment[v.index()] = m;
        s.fixed[v.index()] = t;
        s.committed[v.index()] = 1;
        s.committed_power.reserve(t, lib.module(m).latency, lib.module(m).power);
        s.dp.bind(v, inst, t);
    };

    // One attempt's rollback state: an undo log of the fields the commit
    // touches (knobs.undo_log), or the reference full deep copy.  Both
    // the merge loop and the finalisation rebind go through this single
    // capture/rollback pair so the two paths cannot drift apart.
    struct rollback_point {
        merge_undo undo;
        std::optional<partition_state> snapshot;
    };
    const auto capture_state =
        [&](std::initializer_list<std::pair<node_id, int>> ops, int duration,
            bool adds_instance) {
            rollback_point rp;
            const scoped_ns timer(rollback_acc);
            if (knobs.undo_log) {
                rp.undo.ops.reserve(ops.size());
                for (const auto& [v, t] : ops)
                    rp.undo.ops.push_back(capture_op(st, v, t, duration));
                rp.undo.added_instance = adds_instance;
            } else {
                rp.snapshot.emplace(st);
            }
            return rp;
        };
    const auto rollback_state = [&](rollback_point& rp) {
        const scoped_ns timer(rollback_acc);
        if (knobs.undo_log)
            unwind(st, rp.undo);
        else
            st = std::move(*rp.snapshot);
    };

    // 4. Greedy merge loop.
    std::unordered_set<std::uint64_t> blacklist;
    while (true) {
        if (options.max_merge_attempts >= 0 &&
            result.stats.merges + result.stats.rejected >= options.max_merge_attempts)
            break;

        compat_inputs in;
        in.g = &g;
        in.lib = &lib;
        in.costs = &options.costs;
        in.reach = &reach;
        in.max_power = cap;
        in.windows = &st.windows;
        in.fixed = &st.fixed;
        in.committed = &st.committed;
        in.instances = &st.dp.instances;
        in.committed_power = &st.committed_power;
        in.assignment = &st.assignment;
        in.locked = locked;
        in.arena = arena;

        // Pick the best candidate: either incrementally maintained
        // across iterations, or the reference full re-enumeration.
        merge_candidate chosen;
        bool have = false;
        if (knobs.incremental_candidates) {
            const scoped_ns timer(candidates_acc);
            if (!store.built()) {
                if (arena != nullptr) arena->sync(in);
                store.rebuild(in);
            }
            const merge_candidate* c = store.best(blacklist);
            if (c != nullptr) {
                chosen = *c;
                have = true;
            }
        } else {
            const scoped_ns timer(candidates_acc);
            std::vector<merge_candidate> candidates = enumerate_candidates(in);
            std::erase_if(candidates, [&](const merge_candidate& c) {
                return c.saving < 0.0 || blacklist.count(c.packed_key()) > 0;
            });
            const int bi = best_candidate(candidates);
            if (bi >= 0) {
                chosen = candidates[static_cast<std::size_t>(bi)];
                have = true;
            }
        }
        if (knobs.incremental_candidates && knobs.cross_check) {
            // Testing aid: the reference pipeline must agree with the
            // store, decision for decision.  The reference enumeration
            // runs with the arena detached, so cross_check genuinely
            // compares arena scoring against reference scoring.
            compat_inputs ref_in = in;
            ref_in.arena = nullptr;
            std::vector<merge_candidate> candidates = enumerate_candidates(ref_in);
            std::erase_if(candidates, [&](const merge_candidate& c) {
                return c.saving < 0.0 || blacklist.count(c.packed_key()) > 0;
            });
            const int bi = best_candidate(candidates);
            check((bi >= 0) == have,
                  "incremental candidate store disagrees with the reference "
                  "enumeration about candidate existence");
            if (have) {
                const merge_candidate& ref = candidates[static_cast<std::size_t>(bi)];
                check(ref.packed_key() == chosen.packed_key() && ref.t_a == chosen.t_a &&
                          ref.t_b == chosen.t_b && ref.saving == chosen.saving,
                      "incremental candidate store disagrees with the reference "
                      "enumeration: " +
                          ref.key() + " vs " + chosen.key());
            }
        }
        if (!have) break;

        const int chosen_delay = lib.module(chosen.module).latency;
        const bool is_pair = chosen.type == merge_candidate::merge_type::pair;
        rollback_point rp =
            is_pair ? capture_state({{chosen.a, chosen.t_a}, {chosen.b, chosen.t_b}},
                                    chosen_delay, true)
                    : capture_state({{chosen.a, chosen.t_a}}, chosen_delay, false);

        if (is_pair) {
            const int inst = st.dp.add_instance(chosen.module);
            commit_op(st, chosen.a, inst, chosen.t_a);
            commit_op(st, chosen.b, inst, chosen.t_b);
        } else {
            commit_op(st, chosen.a, chosen.instance, chosen.t_a);
        }

        const time_windows w2 = recompute_windows(st);
        if (w2.feasible) {
            const time_windows previous = std::move(st.windows);
            st.windows = w2;
            ++result.stats.merges;
            if (is_pair)
                ++result.stats.pair_merges;
            else
                ++result.stats.join_merges;
            blacklist.clear();
            if (knobs.incremental_candidates && store.built()) {
                const scoped_ns timer(candidates_acc);
                if (arena != nullptr) arena->sync(in);
                store.apply_accept(in, chosen, previous);
            }
            log_debug() << "accepted " << chosen.key() << " saving " << chosen.saving;
            continue;
        }

        // The decision deleted an unscheduled operator: backtrack one step
        // and (first time) lock the remaining operators to the last valid
        // pasap schedule.
        rollback_state(rp);
        ++result.stats.rejected;
        log_debug() << "rejected " << chosen.key() << ": " << w2.reason;
        if (!locked && options.enable_backtrack_lock)
            lock_all(st);
        else
            blacklist.insert(chosen.packed_key());
    }

    // 5. Finalisation: leftover operators become singleton instances.
    // First give each a chance to move to the cheapest power-feasible
    // module (validated by a full window recompute), then batch-commit
    // the rest at their pasap times, which are feasible by construction.
    for (node_id v : g.node_ids()) {
        if (st.committed[v.index()]) continue;
        if (!options.allow_cheapest_rebind) continue;
        const module_id cheap = *lib.cheapest_for(g.kind(v), cap);
        if (cheap == st.assignment[v.index()]) continue;
        const int t = st.windows.s_min[v.index()];
        rollback_point rp = capture_state({{v, t}}, lib.module(cheap).latency, true);
        const int inst = st.dp.add_instance(cheap);
        st.assignment[v.index()] = cheap;
        if (!st.committed_power.fits(t, lib.module(cheap).latency, lib.module(cheap).power)) {
            rollback_state(rp);
            ++result.stats.finalize_fallbacks;
            continue;
        }
        st.fixed[v.index()] = t;
        st.committed[v.index()] = 1;
        st.committed_power.reserve(t, lib.module(cheap).latency, lib.module(cheap).power);
        st.dp.bind(v, inst, t);
        const time_windows w2 = recompute_windows(st);
        if (w2.feasible) {
            st.windows = w2;
            ++result.stats.finalize_rebinds;
        } else {
            rollback_state(rp);
            ++result.stats.finalize_fallbacks;
        }
    }
    for (node_id v : g.node_ids()) {
        if (st.committed[v.index()]) continue;
        const int inst = st.dp.add_instance(st.assignment[v.index()]);
        st.dp.bind(v, inst, st.windows.s_min[v.index()]);
        st.committed[v.index()] = 1;
    }

    result.dp = std::move(st.dp);
    result.stats.merges_before_lock =
        result.stats.locked ? result.stats.merges_before_lock : result.stats.merges;
    result.feasible = true;
    return result;
}

} // namespace phls
