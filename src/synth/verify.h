// Independent result checker.
//
// Re-derives every constraint from scratch (no shared code with the
// heuristics beyond the data structures) and reports all violations.
// Tests, benches and synthesize() itself run it on every produced design.
#pragma once

#include <string>
#include <vector>

#include "synth/synthesizer.h"

namespace phls {

/// Returns human-readable violations; empty means the datapath is a valid
/// solution of (g, lib, constraints).
std::vector<std::string> verify_datapath(const graph& g, const module_library& lib,
                                         const datapath& dp,
                                         const synthesis_constraints& constraints,
                                         const cost_model& costs);

/// Convenience: throws phls::error listing all violations if any.
void check_datapath(const graph& g, const module_library& lib, const datapath& dp,
                    const synthesis_constraints& constraints, const cost_model& costs);

} // namespace phls
