#include "synth/compat.h"

#include <algorithm>
#include <tuple>

#include "support/errors.h"
#include "support/kernels.h"
#include "support/strings.h"
#include "synth/arena.h"

namespace phls {

std::string merge_candidate::key() const
{
    if (type == merge_type::pair)
        return strf("p:%d:%d:%d", a.value(), b.value(), module.value());
    return strf("j:%d:%d:%d", a.value(), instance, module.value());
}

std::uint64_t merge_candidate::packed_key() const
{
    const bool pair = type == merge_type::pair;
    return pack_candidate_key(pair, a.value(), pair ? b.value() : instance,
                              module.value());
}

double standalone_area(const compat_inputs& in, node_id v)
{
    // Arena fast path: the identical fold, cached per node at the last
    // sync (the inputs it reads only change between syncs).
    if (in.arena != nullptr) return in.arena->standalone(v);

    const int prospect_delay = in.lib->module((*in.assignment)[v.index()]).latency;
    const int f = (*in.fixed)[v.index()];
    const int mobility =
        f >= 0 ? 0 : in.windows->s_max[v.index()] - in.windows->s_min[v.index()];
    const int latency_budget = prospect_delay + mobility;

    double best = -1.0;
    for (const fu_module& m : in.lib->modules()) {
        if (!m.supports(in.g->kind(v))) continue;
        if (m.power > in.max_power + power_tracker::tolerance) continue;
        if (m.latency > latency_budget) continue;
        if (best < 0.0 || m.area < best) best = m.area;
    }
    if (best < 0.0) {
        // The prospect module always qualifies; keep a safe fallback for
        // exotic custom libraries.
        best = in.lib->module((*in.assignment)[v.index()]).area;
    }
    return best;
}

double mux_penalty(const fu_module& m, const cost_model& costs)
{
    if (!costs.include_interconnect) return 0.0;
    int ports = 0;
    if (m.supports(op_kind::add) || m.supports(op_kind::sub) || m.supports(op_kind::mult) ||
        m.supports(op_kind::comp))
        ports = 2;
    else if (m.supports(op_kind::output))
        ports = 1;
    return costs.mux_area_per_extra_input * ports;
}

std::vector<std::pair<int, int>> busy_intervals(const compat_inputs& in,
                                                const fu_instance& inst)
{
    std::vector<std::pair<int, int>> busy;
    const int d = in.lib->module(inst.module).latency;
    busy.reserve(inst.ops.size());
    for (node_id v : inst.ops) {
        const int t = (*in.fixed)[v.index()];
        check(t >= 0, "committed operation has no fixed time");
        busy.emplace_back(t, t + d);
    }
    std::sort(busy.begin(), busy.end());
    return busy;
}

namespace {

bool overlaps(int s1, int e1, int s2, int e2) { return s1 < e2 && s2 < e1; }

/// Reference probe: smallest t in [lo, hi] such that [t, t+d) avoids
/// `busy` and fits the committed power reservations; -1 if none.  The
/// seed-era linear scan, retained for the skip_probe ablation.
int find_slot_linear(const compat_inputs& in, int lo, int hi, int d, double power,
                     const std::vector<std::pair<int, int>>& busy)
{
    for (int t = lo; t <= hi; ++t) {
        bool clash = false;
        for (const auto& [bs, be] : busy) {
            if (overlaps(t, t + d, bs, be)) {
                clash = true;
                // Skip directly past this busy interval.
                t = std::max(t, be - 1);
                break;
            }
        }
        if (clash) continue;
        if (!in.committed_power->fits(t, d, power)) continue;
        return t;
    }
    return -1;
}

/// Skip-ahead probe: alternates between jumping past committed busy
/// intervals (sorted, two-pointer) and power_tracker::next_fit, which
/// jumps past the last violating power cycle.  Every skipped start
/// provably clashes or violates, so the returned slot is the same
/// minimal t the linear scan finds.
int find_slot_skip(const compat_inputs& in, int lo, int hi, int d, double power,
                   const std::vector<std::pair<int, int>>& busy)
{
    int t = lo;
    std::size_t bi = 0;
    while (t <= hi) {
        while (bi < busy.size() && busy[bi].second <= t) ++bi;
        if (bi < busy.size() && busy[bi].first < t + d) {
            // [t, t+d) overlaps busy[bi]; no start before its end can
            // clear it (starts are only probed forward).
            t = busy[bi].second;
            continue;
        }
        const int p = in.committed_power->next_fit(t, d, power);
        if (p < 0) return -1; // power alone exceeds the cap: no t ever fits
        if (p != t) {
            t = p; // skipped past power violations; re-check busy intervals
            continue;
        }
        return t;
    }
    return -1;
}

int find_slot(const compat_inputs& in, int lo, int hi, int d, double power,
              const std::vector<std::pair<int, int>>& busy)
{
    if (kernel_knobs().skip_probe) return find_slot_skip(in, lo, hi, d, power, busy);
    return find_slot_linear(in, lo, hi, d, power, busy);
}

/// Window of `v`: its pasap/palap range, or its pinned time when fixed.
std::pair<int, int> window_of(const compat_inputs& in, node_id v)
{
    const int f = (*in.fixed)[v.index()];
    if (f >= 0) return {f, f};
    return {in.windows->s_min[v.index()], in.windows->s_max[v.index()]};
}

/// Tightens [lo, hi] for running `v` with delay `d` against its
/// neighbours' windows: committed neighbours contribute their fixed
/// times; free neighbours contribute their pasap/palap window edges.
/// This matters whenever the candidate module is slower than the
/// prospect the windows assumed (e.g. pairing onto the serial
/// multiplier): committing such a time would delete a successor, forcing
/// the paper's backtrack-and-lock -- bounding by the windows up front is
/// exactly the time-extended compatibility idea of V1.
std::pair<int, int> clamp_by_neighbors(const compat_inputs& in, node_id v, int d, int lo,
                                       int hi)
{
    // Arena fast path: both folds are precomputed per node.  The lo side
    // is module-independent; the hi side commutes the constant -d out of
    // the integer min, so both are exact.
    if (in.arena != nullptr)
        return {std::max(lo, in.arena->pred_bound(v)),
                std::min(hi, in.arena->succ_latest(v) - d)};

    for (node_id p : in.g->preds(v)) {
        const int f = (*in.fixed)[p.index()];
        const int earliest = f >= 0 ? f : in.windows->s_min[p.index()];
        lo = std::max(lo, earliest + in.lib->module((*in.assignment)[p.index()]).latency);
    }
    for (node_id s : in.g->succs(v)) {
        const int f = (*in.fixed)[s.index()];
        const int latest = f >= 0 ? f : in.windows->s_max[s.index()];
        hi = std::min(hi, latest - d);
    }
    return {lo, hi};
}

/// Attempts to time (first, second) sequentially on a module of delay
/// `d` and power `power`, given each op's already clamped start bounds.
/// Returns {t_first, t_second} or {-1, -1}.
std::pair<int, int> time_pair(const compat_inputs& in, int lo1, int hi1, int lo2raw,
                              int hi2, int d, double power)
{
    if (lo1 > hi1 || lo2raw > hi2) return {-1, -1};
    const int t1 = find_slot(in, lo1, hi1, d, power, {});
    if (t1 < 0) return {-1, -1};
    const int lo2 = std::max(lo2raw, t1 + d);
    if (lo2 > hi2) return {-1, -1};
    const int t2 = find_slot(in, lo2, hi2, d, power, {{t1, t1 + d}});
    if (t2 < 0) return {-1, -1};
    return {t1, t2};
}

} // namespace

candidate_score score_pair(const compat_inputs& in, node_id a, node_id b, module_id mid)
{
    candidate_score out;
    const fu_module& m = in.lib->module(mid);
    if (!m.supports(in.g->kind(a)) || !m.supports(in.g->kind(b))) return out;
    if (m.power > in.max_power + power_tracker::tolerance) return out;

    const int d = m.latency;
    auto [la, ha] = window_of(in, a);
    std::tie(la, ha) = clamp_by_neighbors(in, a, d, la, ha);
    auto [lb, hb] = window_of(in, b);
    std::tie(lb, hb) = clamp_by_neighbors(in, b, d, lb, hb);

    // Dependency forces the order; otherwise try both and keep the one
    // finishing earlier.
    std::pair<int, int> times{-1, -1};
    node_id first = a, second = b;
    if (in.reach->reaches(a, b)) {
        times = time_pair(in, la, ha, lb, hb, d, m.power);
    } else if (in.reach->reaches(b, a)) {
        first = b;
        second = a;
        times = time_pair(in, lb, hb, la, ha, d, m.power);
    } else {
        const std::pair<int, int> ab = time_pair(in, la, ha, lb, hb, d, m.power);
        const std::pair<int, int> ba = time_pair(in, lb, hb, la, ha, d, m.power);
        if (ab.first >= 0 && (ba.first < 0 || ab.second <= ba.second)) {
            times = ab;
        } else if (ba.first >= 0) {
            first = b;
            second = a;
            times = ba;
        }
    }
    if (times.first < 0) return out;

    merge_candidate c;
    c.type = merge_candidate::merge_type::pair;
    c.a = first;
    c.b = second;
    c.module = mid;
    c.t_a = times.first;
    c.t_b = times.second;
    c.saving = standalone_area(in, a) + standalone_area(in, b) - m.area -
               mux_penalty(m, *in.costs);
    out.cand = c;
    out.ok = true;
    return out;
}

candidate_score score_join(const compat_inputs& in, node_id a, const fu_instance& inst,
                           const std::vector<std::pair<int, int>>& busy)
{
    candidate_score out;
    const fu_module& m = in.lib->module(inst.module);
    if (!m.supports(in.g->kind(a))) return out;

    // Dependency bounds: direct fixed neighbours (the window assumed the
    // prospect delay) plus transitive ordering against the instance's
    // committed operations.
    auto [lo, hi] = window_of(in, a);
    std::tie(lo, hi) = clamp_by_neighbors(in, a, m.latency, lo, hi);
    for (node_id o : inst.ops) {
        const int to = (*in.fixed)[o.index()];
        if (in.reach->reaches(o, a)) lo = std::max(lo, to + m.latency);
        if (in.reach->reaches(a, o)) hi = std::min(hi, to - m.latency);
    }
    if (lo > hi) return out;
    const int t = find_slot(in, lo, hi, m.latency, m.power, busy);
    if (t < 0) return out;

    merge_candidate c;
    c.type = merge_candidate::merge_type::join;
    c.a = a;
    c.instance = inst.index;
    c.module = inst.module;
    c.t_a = t;
    c.saving = standalone_area(in, a) - mux_penalty(m, *in.costs);
    out.cand = c;
    out.ok = true;
    return out;
}

std::vector<merge_candidate> enumerate_candidates(const compat_inputs& in)
{
    check(in.g && in.lib && in.costs && in.reach && in.windows && in.fixed &&
              in.committed && in.instances && in.committed_power && in.assignment,
          "compat_inputs is incomplete");

    std::vector<merge_candidate> out;
    std::vector<node_id> free_ops;
    for (node_id v : in.g->node_ids())
        if (!(*in.committed)[v.index()]) free_ops.push_back(v);

    // Busy intervals are a function of the instance alone: build each
    // once per call instead of once per (op, instance) candidate.
    std::vector<std::vector<std::pair<int, int>>> busy;
    busy.reserve(in.instances->size());
    for (const fu_instance& inst : *in.instances) busy.push_back(busy_intervals(in, inst));

    for (std::size_t i = 0; i < free_ops.size(); ++i) {
        for (std::size_t j = i + 1; j < free_ops.size(); ++j) {
            for (int mi = 0; mi < in.lib->size(); ++mi) {
                const candidate_score s =
                    score_pair(in, free_ops[i], free_ops[j], module_id(mi));
                if (s.ok) out.push_back(s.cand);
            }
        }
        for (const fu_instance& inst : *in.instances) {
            const candidate_score s =
                score_join(in, free_ops[i], inst, busy[static_cast<std::size_t>(inst.index)]);
            if (s.ok) out.push_back(s.cand);
        }
    }
    return out;
}

int best_candidate(const std::vector<merge_candidate>& candidates)
{
    int best = -1;
    for (int i = 0; i < static_cast<int>(candidates.size()); ++i) {
        if (best < 0) {
            best = i;
            continue;
        }
        const merge_candidate& c = candidates[static_cast<std::size_t>(i)];
        const merge_candidate& b = candidates[static_cast<std::size_t>(best)];
        const bool c_join = c.type == merge_candidate::merge_type::join;
        const bool b_join = b.type == merge_candidate::merge_type::join;
        if (c.saving > b.saving ||
            (c.saving == b.saving &&
             (c_join > b_join ||
              (c_join == b_join && (c.a < b.a || (c.a == b.a && c.b < b.b))))))
            best = i;
    }
    return best;
}

} // namespace phls
