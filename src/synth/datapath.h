// Synthesis result: allocated FU instances, operation binding, schedule,
// and the area breakdown.
#pragma once

#include <string>
#include <vector>

#include "library/cost_model.h"
#include "sched/schedule.h"

namespace phls {

/// One allocated functional unit.
struct fu_instance {
    int index = 0;
    module_id module;
    std::vector<node_id> ops; ///< operations bound to this instance
};

/// Area accounting (see cost_model.h for the interconnect model).
struct area_breakdown {
    double fu = 0.0;
    double registers = 0.0;
    double muxes = 0.0;

    double total() const { return fu + registers + muxes; }
};

/// A complete datapath: schedule + allocation + binding + area.
struct datapath {
    std::string name;
    schedule sched;
    std::vector<fu_instance> instances;
    std::vector<int> instance_of; ///< per node; -1 = unbound
    area_breakdown area;

    datapath() = default;
    datapath(std::string design_name, int node_count)
        : name(std::move(design_name)), sched(node_count),
          instance_of(static_cast<std::size_t>(node_count), -1)
    {
    }

    /// Allocates a new instance of `m`; returns its flat index.
    int add_instance(module_id m);

    /// Binds `v` to instance `inst` with start time `start`; also records
    /// the module in the schedule.
    void bind(node_id v, int inst, int start);

    /// Module types per instance, aligned with instance indices.
    std::vector<module_id> instance_modules() const;

    /// Recomputes the area breakdown (FU + registers + muxes) from the
    /// current schedule and binding.
    void compute_area(const graph& g, const module_library& lib, const cost_model& costs);

    /// Peak per-cycle power of the scheduled design.
    double peak_power(const module_library& lib) const { return sched.profile(lib).peak(); }

    /// Latency in cycles.
    int latency(const module_library& lib) const { return sched.latency(lib); }

    /// Multi-line human-readable report (instances, ops, times, area).
    std::string report(const graph& g, const module_library& lib) const;
};

} // namespace phls
