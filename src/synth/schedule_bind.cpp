#include "synth/schedule_bind.h"

#include <algorithm>

#include "support/errors.h"

namespace phls {

datapath bind_schedule(const std::string& name, const graph& g, const module_library& lib,
                       const schedule& s, const cost_model& costs)
{
    check(s.complete(), "bind_schedule needs a complete schedule");
    validate_schedule(g, lib, s);

    datapath dp(name, g.node_count());

    // Bind in start-time order (ties by id) so packing is deterministic.
    std::vector<node_id> order = g.nodes();
    std::sort(order.begin(), order.end(), [&](node_id a, node_id b) {
        if (s.start(a) != s.start(b)) return s.start(a) < s.start(b);
        return a < b;
    });

    // busy[i] = intervals already committed on instance i.
    std::vector<std::vector<std::pair<int, int>>> busy;
    for (node_id v : order) {
        const module_id m = s.module_of(v);
        const int t = s.start(v);
        const int e = s.finish(v, lib);
        int chosen = -1;
        for (const fu_instance& inst : dp.instances) {
            if (!(inst.module == m)) continue;
            const auto& iv = busy[static_cast<std::size_t>(inst.index)];
            const bool clash = std::any_of(iv.begin(), iv.end(), [&](const auto& b) {
                return t < b.second && b.first < e;
            });
            if (!clash) {
                chosen = inst.index;
                break;
            }
        }
        if (chosen < 0) {
            chosen = dp.add_instance(m);
            busy.emplace_back();
        }
        dp.bind(v, chosen, t);
        busy[static_cast<std::size_t>(chosen)].emplace_back(t, e);
    }
    dp.compute_area(g, lib, costs);
    return dp;
}

} // namespace phls
