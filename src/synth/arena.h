// Struct-of-arrays scoring arena for the merge loop's hot path
// (kernel_tuning::soa_arena).
//
// Candidate scoring (synth/compat.h) reads the same per-node facts over
// and over: the dependency bounds clamp_by_neighbors() folds from a
// node's neighbours, the standalone area of each operation, and the
// free operations grouped by kind.  The reference path re-derives all
// of them per combo through graph adjacency vectors and module-library
// lookups -- O(degree) pointer chases and an O(|lib|) module scan per
// scored candidate.  The arena flattens them into contiguous arrays
// indexed by the dense node id, refreshed once per scheduling-state
// change by sync():
//
//   * CSR adjacency (one offsets array + one flat neighbour array per
//     direction), built once per partitioning run;
//   * pred_bound[v]  = max over preds p of (earliest(p) + delay(p)) --
//     the lo side of clamp_by_neighbors, which does not depend on the
//     candidate module, so one cached int replaces the pred walk;
//   * succ_latest[v] = min over succs s of latest(s) -- the hi side is
//     succ_latest[v] - d for candidate delay d (integer min commutes
//     with the constant subtraction, so the fold is exact);
//   * standalone[v]  = standalone_area(v), the same min over the same
//     module set, cached per node instead of recomputed per combo;
//   * free_of_kind buckets, ascending node id, so candidate_store can
//     enumerate pairs per (kind, kind) block and skip blocks whose
//     module screen is empty.
//
// Everything the arena serves is a value the reference path computes
// from identical inputs with identical arithmetic, so scoring through
// the arena is byte-identical -- tests assert it across the knob matrix
// and via kernel_tuning::cross_check.
#pragma once

#include <vector>

#include "synth/compat.h"

namespace phls {

/// Flattened per-node scoring state; owned by run_clique_partitioning,
/// attached to compat_inputs::arena.
class synth_arena {
public:
    /// Captures the static structure: CSR adjacency, kinds, per-module
    /// latencies and per-kind feasibility lists.  Call once per run.
    void build(const graph& g, const module_library& lib);

    /// Refreshes every state-derived array (dependency bounds,
    /// standalone areas, free-op buckets) from the current scheduling
    /// state.  O(V + E + V * |lib per kind|); call after any change to
    /// fixed / windows / assignment / committed -- in the merge loop
    /// that is before a store rebuild and before apply_accept.
    void sync(const compat_inputs& in);

    /// max over preds p of (earliest(p) + delay(p)); INT_MIN when none.
    int pred_bound(node_id v) const { return pred_bound_[v.index()]; }

    /// min over succs s of latest(s); INT_MAX when none.
    int succ_latest(node_id v) const { return succ_latest_[v.index()]; }

    /// Cached standalone_area(in, v) of the last sync.
    double standalone(node_id v) const { return standalone_[v.index()]; }

    /// Free (uncommitted) operations of kind index `k`, ascending id.
    const std::vector<node_id>& free_of_kind(int k) const
    {
        return buckets_[static_cast<std::size_t>(k)];
    }

private:
    int n_ = 0;
    // CSR adjacency: neighbours of v are adj[off[v] .. off[v + 1]).
    std::vector<int> pred_off_, pred_adj_;
    std::vector<int> succ_off_, succ_adj_;
    std::vector<int> kind_;        ///< op_kind_index per node
    std::vector<int> mod_latency_; ///< latency per module id
    std::vector<double> mod_area_; ///< area per module id (standalone fallback)
    /// Supporting modules per kind as (latency, area), screened by the
    /// power cap at sync time (the cap is constant within a run, so the
    /// screen rebuild is a one-off).
    struct mod_fit {
        int latency;
        double area;
        double power;
    };
    std::vector<std::vector<mod_fit>> support_;  ///< per kind, all supporting
    std::vector<std::vector<mod_fit>> feasible_; ///< per kind, power-screened
    double screened_cap_ = 0.0;
    bool screened_ = false;

    // State-derived, refreshed by sync().
    std::vector<int> earliest_, latest_, delay_;
    std::vector<int> pred_bound_, succ_latest_;
    std::vector<double> standalone_;
    std::vector<std::vector<node_id>> buckets_;
};

} // namespace phls
