#include "synth/explore.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/errors.h"

namespace phls {

std::vector<sweep_point> sweep_power(const graph& g, const module_library& lib,
                                     int latency, const std::vector<double>& caps,
                                     const synthesis_options& options)
{
    std::vector<sweep_point> out;
    out.reserve(caps.size());
    for (double cap : caps) {
        sweep_point pt;
        pt.cap = cap;
        pt.latency_bound = latency;
        const synthesis_result r =
            synthesize(g, lib, {latency, cap}, options);
        pt.feasible = r.feasible;
        pt.stats = r.stats;
        if (r.feasible) {
            pt.area = r.dp.area.total();
            pt.peak = r.dp.peak_power(lib);
            pt.latency = r.dp.latency(lib);
        }
        out.push_back(pt);
    }
    return out;
}

std::vector<double> default_power_grid(const graph& g, const module_library& lib,
                                       int latency, int points,
                                       const synthesis_options& options)
{
    check(points >= 2, "power grid needs at least two points");

    // Lower edge: no operation can run below the min per-cycle power of
    // its kind, so the sweep starts just under that necessary bound.
    double low = 0.0;
    for (node_id v : g.nodes()) {
        const std::optional<double> p = lib.min_power_for(g.kind(v));
        check(p.has_value(), "library does not cover the graph");
        low = std::max(low, *p);
    }

    // Upper edge: the unconstrained design's peak; everything above it is
    // a plateau.
    const synthesis_result unconstrained =
        synthesize(g, lib, {latency, unbounded_power}, options);
    double high = unconstrained.feasible ? unconstrained.dp.peak_power(lib) : low * 4.0;
    high = std::max(high, low + 1.0);

    std::vector<double> caps;
    caps.reserve(static_cast<std::size_t>(points));
    const double start = std::max(0.5, low - 1.0);
    const double stop = high * 1.15;
    for (int i = 0; i < points; ++i)
        caps.push_back(start + (stop - start) * i / (points - 1));
    return caps;
}

std::vector<sweep_point> monotone_envelope(const std::vector<sweep_point>& points)
{
    std::vector<sweep_point> out = points;
    for (sweep_point& p : out) {
        for (const sweep_point& q : points) {
            if (!q.feasible || q.peak > p.cap + 1e-9) continue;
            if (!p.feasible || q.area < p.area ||
                (q.area == p.area && q.peak < p.peak)) {
                p.feasible = true;
                p.area = q.area;
                p.peak = q.peak;
                p.latency = q.latency;
            }
        }
    }
    return out;
}

std::vector<sweep_point> pareto_front(const std::vector<sweep_point>& points)
{
    std::vector<sweep_point> feasible;
    for (const sweep_point& p : points)
        if (p.feasible) feasible.push_back(p);
    std::sort(feasible.begin(), feasible.end(), [](const sweep_point& a, const sweep_point& b) {
        if (a.peak != b.peak) return a.peak < b.peak;
        return a.area < b.area;
    });
    std::vector<sweep_point> front;
    double best_area = std::numeric_limits<double>::infinity();
    for (const sweep_point& p : feasible) {
        if (p.area < best_area - 1e-12) {
            front.push_back(p);
            best_area = p.area;
        }
    }
    return front;
}

} // namespace phls
