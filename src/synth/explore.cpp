#include "synth/explore.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "flow/flow.h"
#include "support/errors.h"

namespace phls {

sweep_point to_sweep_point(const flow_report& report)
{
    sweep_point pt;
    pt.cap = report.constraints.max_power;
    pt.latency_bound = report.constraints.latency;
    pt.feasible = report.st.ok();
    pt.stats = report.stats;
    if (report.st.ok()) {
        pt.area = report.area;
        pt.peak = report.peak;
        pt.latency = report.latency;
    }
    return pt;
}

std::vector<sweep_point> monotone_envelope(const std::vector<sweep_point>& points)
{
    std::vector<sweep_point> out = points;
    for (sweep_point& p : out) {
        for (const sweep_point& q : points) {
            if (!q.feasible || q.peak > p.cap + 1e-9) continue;
            if (!p.feasible || q.area < p.area ||
                (q.area == p.area && q.peak < p.peak)) {
                p.feasible = true;
                p.area = q.area;
                p.peak = q.peak;
                p.latency = q.latency;
            }
        }
    }
    return out;
}

std::vector<sweep_point> pareto_front(const std::vector<sweep_point>& points)
{
    std::vector<sweep_point> feasible;
    for (const sweep_point& p : points)
        if (p.feasible) feasible.push_back(p);
    std::sort(feasible.begin(), feasible.end(), [](const sweep_point& a, const sweep_point& b) {
        if (a.peak != b.peak) return a.peak < b.peak;
        return a.area < b.area;
    });
    std::vector<sweep_point> front;
    double best_area = std::numeric_limits<double>::infinity();
    for (const sweep_point& p : feasible) {
        if (p.area < best_area - 1e-12) {
            front.push_back(p);
            best_area = p.area;
        }
    }
    return front;
}

} // namespace phls
