#include "synth/synthesizer.h"

#include "synth/clique.h"
#include "synth/verify.h"

namespace phls {

namespace {

synthesis_result synthesize_one(const graph& g, const module_library& lib,
                                const synthesis_constraints& constraints,
                                const synthesis_options& options)
{
    synthesis_result result = run_clique_partitioning(g, lib, constraints, options);
    if (!result.feasible) return result;

    result.dp.compute_area(g, lib, options.costs);
    if (options.verify_result)
        check_datapath(g, lib, result.dp, constraints, options.costs);
    return result;
}

} // namespace

synthesis_result synthesize(const graph& g, const module_library& lib,
                            const synthesis_constraints& constraints,
                            const synthesis_options& options)
{
    g.validate();
    lib.check_covers(g);

    if (!options.try_both_prospects) return synthesize_one(g, lib, constraints, options);

    synthesis_options fast = options;
    fast.try_both_prospects = false;
    fast.policy = prospect_policy::fastest_fit;
    synthesis_options cheap = fast;
    cheap.policy = prospect_policy::cheapest_fit;

    synthesis_result a = synthesize_one(g, lib, constraints, fast);
    synthesis_result b = synthesize_one(g, lib, constraints, cheap);
    if (!a.feasible && !b.feasible) {
        a.reason = "fastest_fit: " + a.reason + "; cheapest_fit: " + b.reason;
        return a;
    }
    if (!a.feasible) return b;
    if (!b.feasible) return a;
    const double area_a = a.dp.area.total();
    const double area_b = b.dp.area.total();
    if (area_b < area_a ||
        (area_b == area_a && b.dp.peak_power(lib) < a.dp.peak_power(lib)))
        return b;
    return a;
}

} // namespace phls
