#include "synth/synthesizer.h"

#include "flow/explore_cache.h"
#include "synth/clique.h"
#include "synth/verify.h"

namespace phls {

namespace {

synthesis_result synthesize_one(const graph& g, const module_library& lib,
                                const synthesis_constraints& constraints,
                                const synthesis_options& options,
                                const explore_cache* cache)
{
    synthesis_result result =
        run_clique_partitioning(g, lib, constraints, options, cache);
    if (!result.feasible) return result;

    result.dp.compute_area(g, lib, options.costs);
    if (options.verify_result)
        check_datapath(g, lib, result.dp, constraints, options.costs);
    return result;
}

} // namespace

synthesis_result synthesize(const graph& g, const module_library& lib,
                            const synthesis_constraints& constraints,
                            const synthesis_options& options,
                            const explore_cache* cache)
{
    g.validate();
    lib.check_covers(g);

    if (!options.try_both_prospects)
        return synthesize_one(g, lib, constraints, options, cache);

    synthesis_options fast = options;
    fast.try_both_prospects = false;
    fast.policy = prospect_policy::fastest_fit;
    synthesis_options cheap = fast;
    cheap.policy = prospect_policy::cheapest_fit;

    // Under many caps the two policies resolve to the same module per
    // operation (e.g. Table 1 below the parallel multiplier's power:
    // both pick mult_ser, and add/sub/comp have a unique best module).
    // Synthesis is a deterministic function of the prospect table, so
    // the second run would reproduce the first bit for bit -- skip it.
    const double cap = constraints.max_power;
    const prospect_result pf =
        cache ? cache->prospect(prospect_policy::fastest_fit, cap)
              : make_prospect(g, lib, prospect_policy::fastest_fit, cap);
    const prospect_result pc =
        cache ? cache->prospect(prospect_policy::cheapest_fit, cap)
              : make_prospect(g, lib, prospect_policy::cheapest_fit, cap);
    const bool same_prospects =
        pf.ok == pc.ok && pf.assignment == pc.assignment && pf.reason == pc.reason;

    const synthesis_result a = synthesize_one(g, lib, constraints, fast, cache);
    const synthesis_result b =
        same_prospects ? a : synthesize_one(g, lib, constraints, cheap, cache);
    if (!a.feasible && !b.feasible) {
        synthesis_result out = a;
        out.reason = "fastest_fit: " + a.reason + "; cheapest_fit: " + b.reason;
        return out;
    }
    if (!a.feasible) return b;
    if (!b.feasible) return a;
    const double area_a = a.dp.area.total();
    const double area_b = b.dp.area.total();
    if (area_b < area_a ||
        (area_b == area_a && b.dp.peak_power(lib) < a.dp.peak_power(lib)))
        return b;
    return a;
}

} // namespace phls
