#include "synth/verify.h"

#include <algorithm>
#include <cmath>

#include "support/errors.h"
#include "support/strings.h"

namespace phls {

std::vector<std::string> verify_datapath(const graph& g, const module_library& lib,
                                         const datapath& dp,
                                         const synthesis_constraints& constraints,
                                         const cost_model& costs)
{
    std::vector<std::string> bad;
    const auto complain = [&](std::string msg) { bad.push_back(std::move(msg)); };

    if (dp.sched.node_count() != g.node_count() ||
        static_cast<int>(dp.instance_of.size()) != g.node_count()) {
        complain("datapath size does not match the graph");
        return bad;
    }

    // Binding structure.
    for (node_id v : g.node_ids()) {
        const int inst = dp.instance_of[v.index()];
        if (inst < 0 || inst >= static_cast<int>(dp.instances.size())) {
            complain("operation '" + g.label(v) + "' is unbound");
            continue;
        }
        const fu_instance& fi = dp.instances[static_cast<std::size_t>(inst)];
        if (std::find(fi.ops.begin(), fi.ops.end(), v) == fi.ops.end())
            complain("instance u" + std::to_string(inst) + " does not list '" +
                     g.label(v) + "'");
        if (!dp.sched.scheduled(v)) {
            complain("operation '" + g.label(v) + "' is unscheduled");
            continue;
        }
        if (dp.sched.start(v) < 0)
            complain("operation '" + g.label(v) + "' starts before cycle 0");
        if (!(dp.sched.module_of(v) == fi.module))
            complain("operation '" + g.label(v) + "' module disagrees with its instance");
        if (!lib.module(fi.module).supports(g.kind(v)))
            complain("module '" + lib.module(fi.module).name + "' cannot execute '" +
                     g.label(v) + "'");
    }
    if (!bad.empty()) return bad; // later checks assume a complete binding

    // Instance op lists point back.
    for (const fu_instance& fi : dp.instances)
        for (node_id v : fi.ops)
            if (dp.instance_of[v.index()] != fi.index)
                complain("instance u" + std::to_string(fi.index) + " lists '" + g.label(v) +
                         "' which is bound elsewhere");

    // Data dependencies.
    for (node_id v : g.node_ids())
        for (node_id s : g.succs(v))
            if (dp.sched.start(s) < dp.sched.finish(v, lib))
                complain(strf("dependency violated: '%s' finishes at %d but '%s' starts at %d",
                              g.label(v).c_str(), dp.sched.finish(v, lib),
                              g.label(s).c_str(), dp.sched.start(s)));

    // Exclusive use of instances.
    for (const fu_instance& fi : dp.instances) {
        std::vector<node_id> ops = fi.ops;
        std::sort(ops.begin(), ops.end(), [&](node_id x, node_id y) {
            return dp.sched.start(x) < dp.sched.start(y);
        });
        for (std::size_t i = 1; i < ops.size(); ++i)
            if (dp.sched.start(ops[i]) < dp.sched.finish(ops[i - 1], lib))
                complain(strf("instance u%d executes '%s' and '%s' concurrently", fi.index,
                              g.label(ops[i - 1]).c_str(), g.label(ops[i]).c_str()));
    }

    // Latency.
    const int latency = dp.sched.latency(lib);
    if (latency > constraints.latency)
        complain(strf("latency %d exceeds constraint %d", latency, constraints.latency));

    // Power per clock cycle.
    const double peak = dp.sched.profile(lib).peak();
    if (peak > constraints.max_power + power_tracker::tolerance)
        complain(strf("peak power %.3f exceeds constraint %.3f", peak, constraints.max_power));

    // Area bookkeeping.
    datapath copy = dp;
    copy.compute_area(g, lib, costs);
    if (std::abs(copy.area.total() - dp.area.total()) > 1e-6)
        complain(strf("recorded area %.3f differs from recomputed %.3f", dp.area.total(),
                      copy.area.total()));

    return bad;
}

void check_datapath(const graph& g, const module_library& lib, const datapath& dp,
                    const synthesis_constraints& constraints, const cost_model& costs)
{
    const std::vector<std::string> bad = verify_datapath(g, lib, dp, constraints, costs);
    if (bad.empty()) return;
    std::string msg = "datapath verification failed:";
    for (const std::string& b : bad) msg += "\n  - " + b;
    throw error(msg);
}

} // namespace phls
