// Greedy partial clique partitioning over the power-aware compatibility
// graph (the paper's §2 synthesis loop).  Internal to synthesize(); split
// out so tests can drive the partitioner directly.
#pragma once

#include "synth/synthesizer.h"

namespace phls {

/// Runs prospect selection, window computation, the greedy merge loop
/// with backtrack-and-lock, and finalisation.  Does not compute area or
/// verify (synthesize() adds those).  `cache` (optional) serves the
/// reachability relation, the prospect table and the initial windows;
/// see synthesize() for the contract.
synthesis_result run_clique_partitioning(const graph& g, const module_library& lib,
                                         const synthesis_constraints& constraints,
                                         const synthesis_options& options,
                                         const explore_cache* cache = nullptr);

} // namespace phls
