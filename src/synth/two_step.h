// Two-step baseline (paper §1): first synthesise under the time
// constraint only ("a traditional time constrained schedule"), then
// reorder the schedule to reduce the power peak while keeping the
// allocation and binding fixed.  The paper's integrated algorithm is
// compared against this in experiment E5/E7: the baseline cannot change
// its FU mix, so it may fail caps the integrated method meets.
#pragma once

#include "synth/synthesizer.h"

namespace phls {

/// Outcome of the two-step flow.
struct two_step_result {
    bool feasible = false; ///< step one produced a design
    std::string reason;
    datapath dp;               ///< final (reordered) design
    double peak_before = 0.0;  ///< peak power after step one
    double peak_after = 0.0;   ///< peak power after reordering
    bool meets_power = false;  ///< peak_after <= constraints.max_power
    int moves = 0;             ///< accepted reordering moves
};

class explore_cache;

/// Runs the baseline under `constraints`; step one ignores
/// constraints.max_power, step two tries to reach it by moving operations
/// within their slack (allocation/binding unchanged).  `cache` (optional)
/// serves step one's window computations during batch exploration: the
/// time-only first step is the same scheduling problem for every cap, so
/// a power sweep recomputes it once.  Results are byte-identical with or
/// without the cache.
two_step_result two_step_synthesize(const graph& g, const module_library& lib,
                                    const synthesis_constraints& constraints,
                                    const synthesis_options& options = {},
                                    const explore_cache* cache = nullptr);

/// Step two alone: greedy peak-power reduction on an existing datapath by
/// retiming operations within dependency and instance-exclusivity slack.
/// Returns the number of accepted moves; mutates dp.sched (and its area,
/// which is recomputed because value lifetimes shift).
int reduce_peak_power(const graph& g, const module_library& lib, datapath& dp,
                      int latency, const cost_model& costs, int max_moves = 10000);

} // namespace phls
