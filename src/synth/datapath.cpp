#include "synth/datapath.h"

#include <algorithm>
#include <sstream>

#include "rtl/interconnect.h"
#include "support/errors.h"
#include "support/strings.h"
#include "support/table.h"

namespace phls {

int datapath::add_instance(module_id m)
{
    fu_instance inst;
    inst.index = static_cast<int>(instances.size());
    inst.module = m;
    instances.push_back(std::move(inst));
    return instances.back().index;
}

void datapath::bind(node_id v, int inst, int start)
{
    check(inst >= 0 && inst < static_cast<int>(instances.size()),
          "datapath::bind: invalid instance index");
    check(instance_of[v.index()] < 0, "datapath::bind: node is already bound");
    instance_of[v.index()] = inst;
    instances[static_cast<std::size_t>(inst)].ops.push_back(v);
    sched.set_start(v, start);
    sched.set_module(v, instances[static_cast<std::size_t>(inst)].module);
}

std::vector<module_id> datapath::instance_modules() const
{
    std::vector<module_id> out;
    out.reserve(instances.size());
    for (const fu_instance& inst : instances) out.push_back(inst.module);
    return out;
}

void datapath::compute_area(const graph& g, const module_library& lib,
                            const cost_model& costs)
{
    area = area_breakdown{};
    for (const fu_instance& inst : instances) area.fu += lib.module(inst.module).area;
    const interconnect_stats stats =
        estimate_interconnect(g, lib, sched, instance_of, costs);
    area.registers = stats.register_area;
    area.muxes = stats.mux_area;
}

std::string datapath::report(const graph& g, const module_library& lib) const
{
    std::ostringstream os;
    os << "datapath " << name << '\n';
    ascii_table t({"instance", "module", "area", "ops (op@start)"});
    t.set_align(3, align::left);
    for (const fu_instance& inst : instances) {
        std::vector<node_id> ops = inst.ops;
        std::sort(ops.begin(), ops.end(),
                  [&](node_id a, node_id b) { return sched.start(a) < sched.start(b); });
        std::string ops_text;
        for (node_id v : ops) {
            if (!ops_text.empty()) ops_text += ' ';
            ops_text += strf("%s@%d", g.label(v).c_str(), sched.start(v));
        }
        t.add_row({strf("u%d", inst.index), lib.module(inst.module).name,
                   strf("%.0f", lib.module(inst.module).area), ops_text});
    }
    t.print(os);
    os << strf("area: fu %.1f + registers %.1f + muxes %.1f = %.1f\n", area.fu,
               area.registers, area.muxes, area.total());
    os << strf("latency: %d cycles, peak power: %.2f, energy: %.2f\n", latency(lib),
               peak_power(lib), sched.profile(lib).energy());
    (void)g;
    return os.str();
}

} // namespace phls
