// Exact reference synthesiser (branch-and-bound).
//
// Enumerates module choice, start time and instance binding per operation
// in topological order, pruning on a lower area bound, and returns a
// provably minimal-area datapath under (T, Pmax) — for small graphs.
// This gives the repository something the paper could not: a measured
// optimality gap for the greedy clique partitioner (bench_exact_gap).
//
// Complexity is exponential; `node_limit` bounds the search, and
// `solved == false` reports an exhausted budget (the incumbent, if any,
// is still a valid design).
#pragma once

#include "synth/synthesizer.h"

namespace phls {

/// Search budget and scope limits.
struct exact_options {
    int max_operations = 24;      ///< refuse larger graphs outright
    long node_limit = 5'000'000;  ///< search-tree nodes before giving up
    cost_model costs;
};

/// Outcome of the exact search.
struct exact_result {
    bool solved = false;   ///< search completed (result is optimal)
    bool feasible = false; ///< an incumbent design exists
    std::string reason;
    datapath dp;           ///< best design found
    long explored = 0;     ///< search-tree nodes visited
};

/// Minimises total area (FU + interconnect, evaluated exactly at leaves;
/// FU area is used as the admissible bound during search).
exact_result exact_synthesize(const graph& g, const module_library& lib,
                              const synthesis_constraints& constraints,
                              const exact_options& options = {});

} // namespace phls
