// Incremental candidate maintenance for the greedy merge loop.
//
// The reference merge loop re-runs enumerate_candidates() -- every free
// op pair x module plus every (free op, instance) join, each fully
// re-timed and re-scored -- after every accepted merge.  Almost all of
// that work is unchanged between iterations: an accepted merge commits
// one or two operations, adds power reservations over their execution
// intervals, and (through the window recompute) moves some operators'
// pasap/palap windows.  A candidate's score is a pure function of
//
//   * the windows / fixed times / module assignment of its own ops and
//     their direct graph neighbours,
//   * (joins) the target instance's committed ops,
//   * the committed power profile over the cycles its slots occupy --
//     within one run the profile only grows, so a cached minimal slot
//     stays minimal unless a new reservation lands on it,
//
// so after an accepted merge only candidates touching a changed node or
// a changed instance are re-scored; candidates whose cached slots a new
// reservation overlaps are revalidated with one fits() probe and
// re-scored only when the slot actually broke.  candidate_store keeps
// every currently valid candidate in a best-first map ordered exactly
// like best_candidate() (saving desc, joins before pairs, smaller ops,
// then enumeration order) and serves the next pick in O(log n).
//
// The win therefore scales with merge locality.  It is largest in the
// locked regimes (after the paper's backtrack-and-lock, or under
// lock_from_start), where windows stop moving altogether and an
// accepted merge touches only the merged ops' neighbourhood; with free
// windows under heavy power contention a commit can ripple through most
// windows and the store degrades gracefully towards one reference
// enumeration per accept.
//
// The store is an internal engine of run_clique_partitioning (knob:
// kernel_knobs().incremental_candidates); results are bit-identical to
// the reference enumeration, which tests assert via
// kernel_tuning::cross_check.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "synth/compat.h"

namespace phls {

/// Best-first store of the currently valid merge candidates.
class candidate_store {
public:
    /// Discards everything and scores every candidate of the current
    /// state (used initially and after backtrack-and-lock, which moves
    /// every free operator's fixed time at once).
    void rebuild(const compat_inputs& in);

    bool built() const { return built_; }
    void invalidate() { built_ = false; }

    /// The candidate the reference pipeline -- enumerate_candidates(),
    /// erase saving < 0 and blacklisted keys, best_candidate() -- would
    /// choose now; nullptr when none.  `blacklist` holds packed_key()s
    /// of rejected candidates (cleared by the caller on accept, exactly
    /// like the reference loop).
    const merge_candidate* best(const std::unordered_set<std::uint64_t>& blacklist) const;

    /// Incremental update after `chosen` was committed (state mutated,
    /// windows advanced from `before` to *in.windows): drops candidates
    /// of the committed ops, re-scores candidates whose inputs changed,
    /// and scores joins onto a pair's newly created instance.  Rejected
    /// decisions need no call -- the rollback restores the scored state
    /// bit-exactly.
    void apply_accept(const compat_inputs& in, const merge_candidate& chosen,
                      const time_windows& before);

private:
    struct entry {
        std::uint64_t key = 0; ///< combo key (see combo_key)
        bool is_pair = true;
        node_id x, y;      ///< pair ops, x < y; joins use x only
        int instance = -1; ///< join target
        module_id module;  ///< pair module; joins: the instance module
        candidate_score score;
    };

    /// Total order equal to best_candidate() + enumeration-order ties:
    /// within equal (saving, type, a, b) the reference keeps the first
    /// enumerated candidate, which is ascending module id for pairs and
    /// ascending instance index for joins.
    struct pick_key {
        double saving = 0.0;
        bool is_join = false;
        int a = -1;
        int b = -1;  ///< pairs: cand.b; joins: -1
        int tie = 0; ///< pairs: module id; joins: instance index

        bool operator<(const pick_key& o) const
        {
            if (saving != o.saving) return saving > o.saving;
            if (is_join != o.is_join) return is_join;
            if (a != o.a) return a < o.a;
            if (b != o.b) return b < o.b;
            return tie < o.tie;
        }
    };

    /// Identity of a combo independent of the dependency-chosen op order
    /// inside the scored candidate (packed_key() orders by (first,
    /// second), which can flip when the state changes).
    static std::uint64_t combo_key(bool is_pair, int x, int second, int module);

    static pick_key key_of(const entry& e);

    /// Modules that can execute both kinds under the cap -- the exact
    /// static prechecks of score_pair(), hoisted so unsupported combos
    /// cost nothing per iteration.
    void build_module_screen(const compat_inputs& in);
    const std::vector<module_id>& pair_modules(op_kind a, op_kind b) const;

    /// One combo to (re-)score: a pair (x < y, module) or a join
    /// (x onto instance).
    struct combo {
        bool is_pair = true;
        node_id x, y;      ///< pair ops, x < y; joins use x only
        int instance = -1; ///< join target
        module_id module;  ///< pair module; joins: the instance module
    };

    /// Scored outcome of one combo.  keep == false means "erase any
    /// stored entry for this key" -- the reference outcome for both an
    /// untimeable combo and a negative saving.
    struct scored {
        std::uint64_t key = 0;
        bool keep = false;
        entry e;
    };

    /// Pure scoring of one combo against the current state: touches no
    /// store state beyond reads of the (frozen during scoring) busy
    /// table, so batches score concurrently.  With an arena attached, a
    /// time-independent negative-saving precheck skips the slot probes
    /// of combos the reference path times and then erases.
    scored score_combo(const compat_inputs& in, const combo& c) const;

    /// Installs / updates / removes the entry for one scored combo.
    void apply_scored(scored&& s);

    /// Scores every queued combo -- inline, or fanned out over
    /// kernel_tuning::intra_threads when the arena path is active --
    /// then applies the results in combo order (scoring is pure, so the
    /// deferred application is byte-identical to the sequential
    /// score-then-apply interleaving at any thread count).  Clears the
    /// batch.
    void score_batch(const compat_inputs& in, std::vector<combo>& combos);

    /// Re-scores one combo against the current state and installs /
    /// updates / removes its entry.
    void score_pair_combo(const compat_inputs& in, node_id x, node_id y, module_id m);
    void score_join_combo(const compat_inputs& in, node_id x, const fu_instance& inst);

    void erase_at(std::size_t pos);
    void store_entry(entry e);

    /// pick_key packed into two words whose lexicographic order equals
    /// pick_key::operator< exactly (saving's sign-flip trick plus 21-bit
    /// integer fields), so the flat core sorts on machine compares
    /// instead of a five-field comparator.
    struct pick128 {
        std::uint64_t hi = 0;
        std::uint64_t lo = 0;
        bool operator<(const pick128& o) const
        {
            return hi != o.hi ? hi < o.hi : lo < o.lo;
        }
    };
    static pick128 pack_pick(const pick_key& k);

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /// Flat-mode position of `key` (overlay first, then the sorted core,
    /// dead entries excluded); npos when absent.
    std::size_t flat_lookup(std::uint64_t key) const;
    /// Flat-mode erasure: tombstones a core entry, fully removes an
    /// overlay entry.
    void kill(std::size_t pos);

    bool built_ = false;
    /// Flat mode (arena attached at rebuild): the rebuild appends every
    /// kept entry to `pool_` (combo generation emits each key exactly
    /// once, so no lookups run), then bulk-sorts two flat indices over
    /// the frozen core: `sorted_` (best-first pick order) and `keys_`
    /// (binary-searchable key -> position).  Post-rebuild mutations
    /// never reorder the core: an update tombstones the old position via
    /// `alive_` and appends to an overlay indexed by the classic
    /// `order_`/`index_` maps, and best() merges the core and overlay
    /// streams.  Classic mode keeps every entry in the maps directly.
    bool flat_ = false;
    /// True while a flat rebuild is generating entries (append-only).
    bool rebuilding_ = false;
    std::size_t core_size_ = 0;
    /// First possibly-alive core rank; dead prefixes are skipped once.
    mutable std::size_t cursor_ = 0;
    std::vector<std::pair<pick128, std::uint32_t>> sorted_; ///< core pick order
    std::vector<std::pair<std::uint64_t, std::uint32_t>> keys_; ///< core key index
    std::vector<char> alive_;
    /// Dense entry pool (swap-pop erasure in classic mode, tombstones in
    /// flat mode) + key index; contiguous so the per-accept sweep is a
    /// linear scan, not a node-chasing walk.
    std::vector<entry> pool_;
    std::unordered_map<std::uint64_t, std::size_t> index_;
    std::map<pick_key, std::uint64_t> order_; ///< best first
    std::vector<std::vector<module_id>> screen_; ///< kind x kind module lists
    /// Per-instance sorted busy intervals, maintained on bind instead of
    /// rebuilt per candidate per iteration.
    std::vector<std::vector<std::pair<int, int>>> busy_;
};

} // namespace phls
