#include "synth/two_step.h"

#include <algorithm>

#include "support/errors.h"

namespace phls {

namespace {

/// Legal start-time range of `v` holding everything else fixed.
std::pair<int, int> slack_range(const graph& g, const module_library& lib,
                                const datapath& dp, node_id v, int latency)
{
    const int d = dp.sched.delay(v, lib);
    int lo = 0;
    int hi = latency - d;
    for (node_id p : g.preds(v)) lo = std::max(lo, dp.sched.finish(p, lib));
    for (node_id s : g.succs(v)) hi = std::min(hi, dp.sched.start(s) - d);
    return {lo, hi};
}

/// True if moving `v` to `t` keeps its instance exclusive.
bool instance_free(const module_library& lib, const datapath& dp, node_id v, int t)
{
    const fu_instance& fi = dp.instances[static_cast<std::size_t>(dp.instance_of[v.index()])];
    const int d = lib.module(fi.module).latency;
    for (node_id o : fi.ops) {
        if (o == v) continue;
        const int os = dp.sched.start(o);
        const int oe = dp.sched.finish(o, lib);
        if (t < oe && os < t + d) return false;
    }
    return true;
}

} // namespace

int reduce_peak_power(const graph& g, const module_library& lib, datapath& dp, int latency,
                      const cost_model& costs, int max_moves)
{
    int moves = 0;
    while (moves < max_moves) {
        const power_profile profile = dp.sched.profile(lib);
        const double peak = profile.peak();

        // Try every op whose execution covers a peak cycle; take the move
        // that lowers the global peak the most.
        double best_peak = peak;
        node_id best_v;
        int best_t = -1;
        for (node_id v : g.nodes()) {
            const int d = dp.sched.delay(v, lib);
            const double p = lib.module(dp.sched.module_of(v)).power;
            bool covers_peak = false;
            for (int c = dp.sched.start(v); c < dp.sched.start(v) + d; ++c)
                if (profile.at(c) >= peak - power_tracker::tolerance) covers_peak = true;
            if (!covers_peak) continue;

            const auto [lo, hi] = slack_range(g, lib, dp, v, latency);
            for (int t = lo; t <= hi; ++t) {
                if (t == dp.sched.start(v)) continue;
                if (!instance_free(lib, dp, v, t)) continue;
                // Peak if v moves to t.
                power_profile moved = profile;
                moved.withdraw(dp.sched.start(v), d, p);
                moved.deposit(t, d, p);
                const double new_peak = moved.peak();
                if (new_peak < best_peak - power_tracker::tolerance) {
                    best_peak = new_peak;
                    best_v = v;
                    best_t = t;
                }
            }
        }
        if (best_t < 0) break;
        dp.sched.set_start(best_v, best_t);
        ++moves;
    }
    dp.compute_area(g, lib, costs);
    return moves;
}

two_step_result two_step_synthesize(const graph& g, const module_library& lib,
                                    const synthesis_constraints& constraints,
                                    const synthesis_options& options,
                                    const explore_cache* cache)
{
    two_step_result result;

    // Step one: time-constrained only.  Every point of a power sweep
    // shares this exact sub-problem (the cap is relaxed away), so a batch
    // cache serves its window recomputes after the first point.
    synthesis_constraints step1 = constraints;
    step1.max_power = unbounded_power;
    synthesis_options opts = options;
    opts.verify_result = false; // verified below with the relaxed cap
    const synthesis_result s1 = synthesize(g, lib, step1, opts, cache);
    if (!s1.feasible) {
        result.reason = "step one (time-constrained synthesis) failed: " + s1.reason;
        return result;
    }
    result.dp = s1.dp;
    result.peak_before = result.dp.peak_power(lib);

    // Step two: reorder within slack.
    result.moves =
        reduce_peak_power(g, lib, result.dp, constraints.latency, options.costs);
    result.peak_after = result.dp.peak_power(lib);
    result.meets_power =
        result.peak_after <= constraints.max_power + power_tracker::tolerance;
    result.feasible = true;
    return result;
}

} // namespace phls
