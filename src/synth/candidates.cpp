#include "synth/candidates.h"

#include <algorithm>
#include <bit>

#include "support/errors.h"
#include "support/kernels.h"
#include "support/parallel.h"
#include "synth/arena.h"

namespace phls {

namespace {

/// Combos per flush of the bucketed rebuild: bounds the batch buffer
/// (a 10k-op rebuild visits ~10^8 combos -- far too many to gather at
/// once) while keeping each parallel fan-out coarse enough to amortise
/// thread startup.
constexpr std::size_t combo_chunk = 1 << 16;

/// Below this batch size the fan-out overhead dominates: score inline.
constexpr std::size_t min_parallel_batch = 128;

} // namespace

std::uint64_t candidate_store::combo_key(bool is_pair, int x, int second, int module)
{
    return pack_candidate_key(is_pair, x, second, module);
}

candidate_store::pick_key candidate_store::key_of(const entry& e)
{
    pick_key k;
    k.saving = e.score.cand.saving;
    k.is_join = !e.is_pair;
    k.a = e.score.cand.a.value();
    k.b = e.is_pair ? e.score.cand.b.value() : -1;
    k.tie = e.is_pair ? e.module.value() : e.instance;
    return k;
}

candidate_store::pick128 candidate_store::pack_pick(const pick_key& k)
{
    // Finite-double ordering trick: flip the sign bit of non-negatives
    // and all bits of negatives to get an order-preserving uint64, then
    // complement for the descending saving order.  Savings are sums and
    // differences of module areas, never NaN; -0.0 is normalised so the
    // two zero encodings cannot split.
    const double s = k.saving == 0.0 ? 0.0 : k.saving;
    std::uint64_t u = std::bit_cast<std::uint64_t>(s);
    u = (u >> 63) != 0 ? ~u : (u | 0x8000000000000000ull);

    // 1 + 3 x 21 bits: joins sort before pairs; a, b, tie ascend.  b and
    // tie are offset by one so the join sentinel -1 packs smallest.
    constexpr int field_bits = 21;
    constexpr std::uint64_t field_max = (1ull << field_bits) - 1;
    const std::uint64_t a = static_cast<std::uint64_t>(k.a + 1);
    const std::uint64_t b = static_cast<std::uint64_t>(k.b + 1);
    const std::uint64_t tie = static_cast<std::uint64_t>(k.tie + 1);
    check(a <= field_max && b <= field_max && tie <= field_max,
          "candidate_store: graph exceeds the flat pick-index field width");

    pick128 p;
    p.hi = ~u;
    p.lo = (static_cast<std::uint64_t>(k.is_join ? 0 : 1) << 63) |
           (a << (2 * field_bits)) | (b << field_bits) | tie;
    return p;
}

std::size_t candidate_store::flat_lookup(std::uint64_t key) const
{
    const auto it = index_.find(key);
    if (it != index_.end()) return it->second;
    const auto kit = std::lower_bound(
        keys_.begin(), keys_.end(), key,
        [](const std::pair<std::uint64_t, std::uint32_t>& e, std::uint64_t k) {
            return e.first < k;
        });
    if (kit != keys_.end() && kit->first == key && alive_[kit->second] != 0)
        return kit->second;
    return npos;
}

void candidate_store::kill(std::size_t pos)
{
    alive_[pos] = 0;
    if (pos >= core_size_) {
        order_.erase(key_of(pool_[pos]));
        index_.erase(pool_[pos].key);
    }
}

void candidate_store::build_module_screen(const compat_inputs& in)
{
    screen_.assign(static_cast<std::size_t>(op_kind_count * op_kind_count), {});
    for (const op_kind a : all_op_kinds()) {
        for (const op_kind b : all_op_kinds()) {
            std::vector<module_id>& mods =
                screen_[static_cast<std::size_t>(op_kind_index(a) * op_kind_count +
                                                 op_kind_index(b))];
            for (int mi = 0; mi < in.lib->size(); ++mi) {
                const fu_module& m = in.lib->module(module_id(mi));
                // Exactly score_pair()'s static prechecks: modules that
                // fail them can never yield a candidate and are skipped
                // without touching the store.
                if (!m.supports(a) || !m.supports(b)) continue;
                if (m.power > in.max_power + power_tracker::tolerance) continue;
                mods.push_back(module_id(mi));
            }
        }
    }
}

const std::vector<module_id>& candidate_store::pair_modules(op_kind a, op_kind b) const
{
    return screen_[static_cast<std::size_t>(op_kind_index(a) * op_kind_count +
                                            op_kind_index(b))];
}

void candidate_store::erase_at(std::size_t pos)
{
    order_.erase(key_of(pool_[pos]));
    index_.erase(pool_[pos].key);
    if (pos + 1 != pool_.size()) {
        pool_[pos] = std::move(pool_.back());
        index_[pool_[pos].key] = pos;
    }
    pool_.pop_back();
}

void candidate_store::store_entry(entry e)
{
    if (flat_) {
        const std::size_t pos = flat_lookup(e.key);
        if (pos != npos) {
            entry& slot = pool_[pos];
            const pick_key before = key_of(slot);
            const pick_key after = key_of(e);
            if (!(before < after) && !(after < before)) {
                // Same rank: the core pick order (resp. the overlay map
                // key) stays valid, so replace in place.
                slot = std::move(e);
                return;
            }
            kill(pos);
        }
        const std::size_t np = pool_.size();
        order_.emplace(key_of(e), e.key);
        index_.emplace(e.key, np);
        pool_.push_back(std::move(e));
        alive_.push_back(1);
        return;
    }

    const auto [it, inserted] = index_.try_emplace(e.key, pool_.size());
    if (inserted) {
        order_.emplace(key_of(e), e.key);
        pool_.push_back(std::move(e));
        return;
    }
    entry& slot = pool_[it->second];
    const pick_key before = key_of(slot);
    const pick_key after = key_of(e);
    if (before < after || after < before) {
        order_.erase(before);
        order_.emplace(after, e.key);
    }
    slot = std::move(e);
}

candidate_store::scored candidate_store::score_combo(const compat_inputs& in,
                                                     const combo& c) const
{
    scored out;
    if (c.is_pair) {
        out.key = combo_key(true, c.x.value(), c.y.value(), c.module.value());
        if (in.arena != nullptr) {
            // A pair's saving does not depend on its times, and both
            // reference paths erase saving < 0 after timing it -- the
            // identical expression decides before the slot probes run.
            const fu_module& m = in.lib->module(c.module);
            const double saving = standalone_area(in, c.x) + standalone_area(in, c.y) -
                                  m.area - mux_penalty(m, *in.costs);
            if (saving < 0.0) return out;
        }
        const candidate_score s = score_pair(in, c.x, c.y, c.module);
        if (!s.ok || s.cand.saving < 0.0) return out;
        out.keep = true;
        out.e.key = out.key;
        out.e.is_pair = true;
        out.e.x = c.x;
        out.e.y = c.y;
        out.e.module = c.module;
        out.e.score = s;
        return out;
    }
    const fu_instance& inst = (*in.instances)[static_cast<std::size_t>(c.instance)];
    out.key = combo_key(false, c.x.value(), inst.index, inst.module.value());
    if (in.arena != nullptr) {
        const fu_module& m = in.lib->module(inst.module);
        const double saving = standalone_area(in, c.x) - mux_penalty(m, *in.costs);
        if (saving < 0.0) return out;
    }
    const candidate_score s =
        score_join(in, c.x, inst, busy_[static_cast<std::size_t>(inst.index)]);
    if (!s.ok || s.cand.saving < 0.0) return out;
    out.keep = true;
    out.e.key = out.key;
    out.e.is_pair = false;
    out.e.x = c.x;
    out.e.instance = inst.index;
    out.e.module = inst.module;
    out.e.score = s;
    return out;
}

void candidate_store::apply_scored(scored&& s)
{
    if (flat_ && rebuilding_) {
        // The bucketed generation emits every combo key exactly once, so
        // the rebuild appends without lookups; the flat indices are
        // bulk-sorted once afterwards.
        if (s.keep) {
            pool_.push_back(std::move(s.e));
            alive_.push_back(1);
        }
        return;
    }
    if (!s.keep) {
        if (flat_) {
            const std::size_t pos = flat_lookup(s.key);
            if (pos != npos) kill(pos);
            return;
        }
        const auto it = index_.find(s.key);
        if (it != index_.end()) erase_at(it->second);
        return;
    }
    store_entry(std::move(s.e));
}

void candidate_store::score_batch(const compat_inputs& in, std::vector<combo>& combos)
{
    const kernel_tuning& knobs = kernel_knobs();
    const int threads =
        in.arena != nullptr && knobs.intra_threads > 1 ? knobs.intra_threads : 1;
    if (threads <= 1 || combos.size() < min_parallel_batch) {
        for (const combo& c : combos) apply_scored(score_combo(in, c));
    } else {
        // Scoring is read-only over the scheduling state and the busy
        // table; the only lazily built structure it touches is the power
        // tracker's headroom tree, forced here before the fan-out.
        in.committed_power->prepare_probes();
        std::vector<scored> results(combos.size());
        parallel_for(combos.size(), threads,
                     [&](std::size_t i) { results[i] = score_combo(in, combos[i]); });
        for (scored& s : results) apply_scored(std::move(s));
    }
    combos.clear();
}

void candidate_store::score_pair_combo(const compat_inputs& in, node_id x, node_id y,
                                       module_id m)
{
    combo c;
    c.is_pair = true;
    c.x = x;
    c.y = y;
    c.module = m;
    apply_scored(score_combo(in, c));
}

void candidate_store::score_join_combo(const compat_inputs& in, node_id x,
                                       const fu_instance& inst)
{
    combo c;
    c.is_pair = false;
    c.x = x;
    c.instance = inst.index;
    c.module = inst.module;
    apply_scored(score_combo(in, c));
}

void candidate_store::rebuild(const compat_inputs& in)
{
    check(in.g && in.lib && in.costs && in.reach && in.windows && in.fixed &&
              in.committed && in.instances && in.committed_power && in.assignment,
          "compat_inputs is incomplete");
    pool_.clear();
    index_.clear();
    order_.clear();
    sorted_.clear();
    keys_.clear();
    alive_.clear();
    core_size_ = 0;
    cursor_ = 0;
    flat_ = in.arena != nullptr;
    build_module_screen(in);

    busy_.clear();
    busy_.reserve(in.instances->size());
    for (const fu_instance& inst : *in.instances) busy_.push_back(busy_intervals(in, inst));

    if (in.arena != nullptr) {
        // Bucketed generation: one block per unordered kind pair, with
        // blocks whose module screen is empty skipped wholesale.  The
        // store is keyed, so landing the same combo set in a different
        // order from the reference free_ops^2 sweep yields the same
        // content; batches flush in chunks to bound the buffer and feed
        // the intra-point fan-out.
        rebuilding_ = true;
        std::vector<combo> combos;
        combos.reserve(combo_chunk);
        const auto queue = [&](combo c) {
            combos.push_back(c);
            if (combos.size() >= combo_chunk) score_batch(in, combos);
        };
        for (int ka = 0; ka < op_kind_count; ++ka) {
            const std::vector<node_id>& bucket_a = in.arena->free_of_kind(ka);
            if (bucket_a.empty()) continue;
            for (int kb = ka; kb < op_kind_count; ++kb) {
                const std::vector<module_id>& mods =
                    screen_[static_cast<std::size_t>(ka * op_kind_count + kb)];
                if (mods.empty()) continue;
                const std::vector<node_id>& bucket_b = in.arena->free_of_kind(kb);
                combo c;
                c.is_pair = true;
                if (ka == kb) {
                    for (std::size_t i = 0; i < bucket_a.size(); ++i)
                        for (std::size_t j = i + 1; j < bucket_a.size(); ++j) {
                            c.x = bucket_a[i];
                            c.y = bucket_a[j];
                            for (const module_id m : mods) {
                                c.module = m;
                                queue(c);
                            }
                        }
                } else {
                    for (const node_id u : bucket_a)
                        for (const node_id w : bucket_b) {
                            c.x = u < w ? u : w;
                            c.y = u < w ? w : u;
                            for (const module_id m : mods) {
                                c.module = m;
                                queue(c);
                            }
                        }
                }
            }
        }
        combo c;
        c.is_pair = false;
        for (node_id v : in.g->node_ids()) {
            if ((*in.committed)[v.index()]) continue;
            c.x = v;
            for (const fu_instance& inst : *in.instances) {
                c.instance = inst.index;
                c.module = inst.module;
                queue(c);
            }
        }
        score_batch(in, combos);
        rebuilding_ = false;

        // Freeze the core: two bulk sorts over flat arrays replace one
        // tree/hash insert per entry -- the dominant cost of the classic
        // rebuild at 10k ops.
        core_size_ = pool_.size();
        check(core_size_ <= 0xFFFFFFFFull, "candidate_store: flat core too large");
        sorted_.resize(core_size_);
        keys_.resize(core_size_);
        for (std::size_t i = 0; i < core_size_; ++i) {
            sorted_[i] = {pack_pick(key_of(pool_[i])), static_cast<std::uint32_t>(i)};
            keys_[i] = {pool_[i].key, static_cast<std::uint32_t>(i)};
        }
        std::sort(sorted_.begin(), sorted_.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        std::sort(keys_.begin(), keys_.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        built_ = true;
        return;
    }

    std::vector<node_id> free_ops;
    for (node_id v : in.g->node_ids())
        if (!(*in.committed)[v.index()]) free_ops.push_back(v);

    for (std::size_t i = 0; i < free_ops.size(); ++i) {
        const op_kind ki = in.g->kind(free_ops[i]);
        for (std::size_t j = i + 1; j < free_ops.size(); ++j)
            for (const module_id m : pair_modules(ki, in.g->kind(free_ops[j])))
                score_pair_combo(in, free_ops[i], free_ops[j], m);
        for (const fu_instance& inst : *in.instances)
            score_join_combo(in, free_ops[i], inst);
    }
    built_ = true;
}

const merge_candidate*
candidate_store::best(const std::unordered_set<std::uint64_t>& blacklist) const
{
    if (flat_) {
        // Merge the frozen core (best-first, dead entries skipped) with
        // the overlay map.  Ranks are unique across both -- an update
        // tombstones the core copy before the overlay copy exists -- so
        // the strict comparison below decides every head-to-head.
        while (cursor_ < sorted_.size() && alive_[sorted_[cursor_].second] == 0)
            ++cursor_;
        std::size_t ci = cursor_;
        auto oit = order_.begin();
        while (true) {
            while (ci < sorted_.size() && alive_[sorted_[ci].second] == 0) ++ci;
            const bool have_core = ci < sorted_.size();
            const bool have_overlay = oit != order_.end();
            if (!have_core && !have_overlay) return nullptr;
            bool take_core = have_core;
            if (have_core && have_overlay)
                take_core = sorted_[ci].first < pack_pick(oit->first);
            const entry& e = take_core ? pool_[sorted_[ci].second]
                                       : pool_[index_.at(oit->second)];
            if (blacklist.empty() || blacklist.count(e.score.cand.packed_key()) == 0)
                return &e.score.cand;
            if (take_core)
                ++ci;
            else
                ++oit;
        }
    }
    for (const auto& [pick, key] : order_) {
        const entry& e = pool_[index_.at(key)];
        if (!blacklist.empty() && blacklist.count(e.score.cand.packed_key()) > 0) continue;
        return &e.score.cand;
    }
    return nullptr;
}

void candidate_store::apply_accept(const compat_inputs& in, const merge_candidate& chosen,
                                   const time_windows& before)
{
    const int n = in.g->node_count();
    const bool pair = chosen.type == merge_candidate::merge_type::pair;
    const int d = in.lib->module(chosen.module).latency;

    // 1. Per-instance busy intervals, maintained on bind: a pair merge
    // created one instance (the last one), a join extended an existing
    // one.
    const auto insert_sorted = [](std::vector<std::pair<int, int>>& busy, int t, int e) {
        busy.insert(std::lower_bound(busy.begin(), busy.end(), std::make_pair(t, e)),
                    {t, e});
    };
    int changed_instance = -1;
    if (pair) {
        check(!in.instances->empty(), "pair merge without a created instance");
        changed_instance = in.instances->back().index;
        std::vector<std::pair<int, int>> busy;
        insert_sorted(busy, chosen.t_a, chosen.t_a + d);
        insert_sorted(busy, chosen.t_b, chosen.t_b + d);
        check(static_cast<int>(busy_.size()) == changed_instance,
              "busy table out of sync with the instance list");
        busy_.push_back(std::move(busy));
    } else {
        changed_instance = chosen.instance;
        insert_sorted(busy_[static_cast<std::size_t>(changed_instance)], chosen.t_a,
                      chosen.t_a + d);
    }

    // 2. Changed-node closure: the committed ops plus every operator
    // whose window moved; a candidate reads at most its own ops and
    // their direct neighbours, so `affected` (changed or adjacent to a
    // change) is exactly the re-score trigger set.  After the backtrack
    // lock every operator is pinned, windows stop moving and this set
    // collapses to the merged ops' neighbourhood.
    std::vector<char> touched(static_cast<std::size_t>(n), 0);
    for (int v = 0; v < n; ++v)
        if (before.s_min[static_cast<std::size_t>(v)] !=
                in.windows->s_min[static_cast<std::size_t>(v)] ||
            before.s_max[static_cast<std::size_t>(v)] !=
                in.windows->s_max[static_cast<std::size_t>(v)])
            touched[static_cast<std::size_t>(v)] = 1;
    touched[chosen.a.index()] = 1;
    if (pair) touched[chosen.b.index()] = 1;
    std::vector<char> affected(static_cast<std::size_t>(n), 0);
    for (node_id v : in.g->node_ids()) {
        char hit = touched[v.index()];
        if (!hit)
            for (node_id p : in.g->preds(v))
                if (touched[p.index()]) { hit = 1; break; }
        if (!hit)
            for (node_id s : in.g->succs(v))
                if (touched[s.index()]) { hit = 1; break; }
        affected[v.index()] = hit;
    }

    // 3. One linear sweep of the dense pool: drop candidates of the
    // now-committed ops; revalidate survivors whose cached slots the new
    // reservations overlap.  The revalidation is one fits() probe per
    // cached slot, not a re-score: the profile only grows, so slots
    // before a cached minimum stay infeasible, the losing pair order can
    // only get worse, and a slot that still fits leaves the whole cached
    // result unchanged.  Only broken slots go to the re-score list.
    const std::pair<int, int> res_a{chosen.t_a, chosen.t_a + d};
    const std::pair<int, int> res_b =
        pair ? std::pair<int, int>{chosen.t_b, chosen.t_b + d} : std::pair<int, int>{0, 0};
    const auto hits_interval = [&](int lo, int hi) {
        if (lo < res_a.second && res_a.first < hi) return true;
        return pair && lo < res_b.second && res_b.first < hi;
    };
    const auto generation_covers = [&](const entry& e) {
        if (e.is_pair) return affected[e.x.index()] || affected[e.y.index()] ? true : false;
        return (affected[e.x.index()] ? true : false) || e.instance == changed_instance;
    };
    const auto slot_broke = [&](const entry& e) {
        const fu_module& m = in.lib->module(e.score.cand.module);
        const bool hit_a = hits_interval(e.score.cand.t_a, e.score.cand.t_a + m.latency);
        const bool hit_b =
            e.is_pair && hits_interval(e.score.cand.t_b, e.score.cand.t_b + m.latency);
        return (hit_a && !in.committed_power->fits(e.score.cand.t_a, m.latency, m.power)) ||
               (hit_b && !in.committed_power->fits(e.score.cand.t_b, m.latency, m.power));
    };
    std::vector<entry> broken;
    if (flat_) {
        // Tombstone sweep: positions are stable in flat mode, so dead
        // entries are skipped rather than swap-popped.
        for (std::size_t i = 0; i < pool_.size(); ++i) {
            if (alive_[i] == 0) continue;
            const entry& e = pool_[i];
            if ((*in.committed)[e.x.index()] ||
                (e.is_pair && (*in.committed)[e.y.index()])) {
                kill(i);
                continue;
            }
            if (!generation_covers(e) && slot_broke(e)) broken.push_back(e);
        }
    } else {
        for (std::size_t i = 0; i < pool_.size();) {
            const entry& e = pool_[i];
            if ((*in.committed)[e.x.index()] ||
                (e.is_pair && (*in.committed)[e.y.index()])) {
                erase_at(i); // swap-pop: the swapped-in entry is re-examined
                continue;
            }
            if (!generation_covers(e) && slot_broke(e)) broken.push_back(e);
            ++i;
        }
    }

    // 4. Generative re-score of everything touching an affected node or
    // the changed instance -- including combos with no stored entry (a
    // window move can make a previously infeasible candidate valid).
    // O(|affected| * free), so a post-lock accept (affected = the merged
    // ops' neighbourhood) costs a sliver of one full enumeration.
    std::vector<node_id> free_ops;
    for (node_id v : in.g->node_ids())
        if (!(*in.committed)[v.index()]) free_ops.push_back(v);
    const fu_instance& changed =
        (*in.instances)[static_cast<std::size_t>(changed_instance)];
    // The re-score set is gathered first and scored as one batch: every
    // combo is distinct (pairs are claimed by their smaller affected op,
    // broken slots are unaffected by construction), so scoring is pure
    // and fans out over intra_threads with a fixed application order.
    std::vector<combo> combos;
    const auto queue_pair = [&](node_id x, node_id y, module_id m) {
        combo c;
        c.is_pair = true;
        c.x = x;
        c.y = y;
        c.module = m;
        combos.push_back(c);
    };
    const auto queue_join = [&](node_id x, const fu_instance& inst) {
        combo c;
        c.is_pair = false;
        c.x = x;
        c.instance = inst.index;
        c.module = inst.module;
        combos.push_back(c);
    };
    for (const node_id u : free_ops) {
        if (!affected[u.index()]) {
            queue_join(u, changed);
            continue;
        }
        for (const node_id w : free_ops) {
            if (w == u) continue;
            // A both-affected pair is handled once, by its smaller op.
            if (affected[w.index()] && w < u) continue;
            const node_id x = u < w ? u : w;
            const node_id y = u < w ? w : u;
            for (const module_id m : pair_modules(in.g->kind(x), in.g->kind(y)))
                queue_pair(x, y, m);
        }
        for (const fu_instance& inst : *in.instances) queue_join(u, inst);
    }

    // 5. The broken-slot stragglers (disjoint from step 4 by construction).
    for (const entry& e : broken) {
        if (e.is_pair)
            queue_pair(e.x, e.y, e.module);
        else
            queue_join(e.x, (*in.instances)[static_cast<std::size_t>(e.instance)]);
    }
    score_batch(in, combos);
}

} // namespace phls
