#include "synth/candidates.h"

#include <algorithm>

#include "support/errors.h"

namespace phls {

std::uint64_t candidate_store::combo_key(bool is_pair, int x, int second, int module)
{
    return pack_candidate_key(is_pair, x, second, module);
}

candidate_store::pick_key candidate_store::key_of(const entry& e)
{
    pick_key k;
    k.saving = e.score.cand.saving;
    k.is_join = !e.is_pair;
    k.a = e.score.cand.a.value();
    k.b = e.is_pair ? e.score.cand.b.value() : -1;
    k.tie = e.is_pair ? e.module.value() : e.instance;
    return k;
}

void candidate_store::build_module_screen(const compat_inputs& in)
{
    screen_.assign(static_cast<std::size_t>(op_kind_count * op_kind_count), {});
    for (const op_kind a : all_op_kinds()) {
        for (const op_kind b : all_op_kinds()) {
            std::vector<module_id>& mods =
                screen_[static_cast<std::size_t>(op_kind_index(a) * op_kind_count +
                                                 op_kind_index(b))];
            for (int mi = 0; mi < in.lib->size(); ++mi) {
                const fu_module& m = in.lib->module(module_id(mi));
                // Exactly score_pair()'s static prechecks: modules that
                // fail them can never yield a candidate and are skipped
                // without touching the store.
                if (!m.supports(a) || !m.supports(b)) continue;
                if (m.power > in.max_power + power_tracker::tolerance) continue;
                mods.push_back(module_id(mi));
            }
        }
    }
}

const std::vector<module_id>& candidate_store::pair_modules(op_kind a, op_kind b) const
{
    return screen_[static_cast<std::size_t>(op_kind_index(a) * op_kind_count +
                                            op_kind_index(b))];
}

void candidate_store::erase_at(std::size_t pos)
{
    order_.erase(key_of(pool_[pos]));
    index_.erase(pool_[pos].key);
    if (pos + 1 != pool_.size()) {
        pool_[pos] = std::move(pool_.back());
        index_[pool_[pos].key] = pos;
    }
    pool_.pop_back();
}

void candidate_store::store_entry(entry e)
{
    const auto [it, inserted] = index_.try_emplace(e.key, pool_.size());
    if (inserted) {
        order_.emplace(key_of(e), e.key);
        pool_.push_back(std::move(e));
        return;
    }
    entry& slot = pool_[it->second];
    const pick_key before = key_of(slot);
    const pick_key after = key_of(e);
    if (before < after || after < before) {
        order_.erase(before);
        order_.emplace(after, e.key);
    }
    slot = std::move(e);
}

void candidate_store::score_pair_combo(const compat_inputs& in, node_id x, node_id y,
                                       module_id m)
{
    const std::uint64_t key = combo_key(true, x.value(), y.value(), m.value());
    const candidate_score s = score_pair(in, x, y, m);
    if (!s.ok || s.cand.saving < 0.0) {
        const auto it = index_.find(key);
        if (it != index_.end()) erase_at(it->second);
        return;
    }
    entry e;
    e.key = key;
    e.is_pair = true;
    e.x = x;
    e.y = y;
    e.module = m;
    e.score = s;
    store_entry(std::move(e));
}

void candidate_store::score_join_combo(const compat_inputs& in, node_id x,
                                       const fu_instance& inst)
{
    const std::uint64_t key = combo_key(false, x.value(), inst.index, inst.module.value());
    const candidate_score s =
        score_join(in, x, inst, busy_[static_cast<std::size_t>(inst.index)]);
    if (!s.ok || s.cand.saving < 0.0) {
        const auto it = index_.find(key);
        if (it != index_.end()) erase_at(it->second);
        return;
    }
    entry e;
    e.key = key;
    e.is_pair = false;
    e.x = x;
    e.instance = inst.index;
    e.module = inst.module;
    e.score = s;
    store_entry(std::move(e));
}

void candidate_store::rebuild(const compat_inputs& in)
{
    check(in.g && in.lib && in.costs && in.reach && in.windows && in.fixed &&
              in.committed && in.instances && in.committed_power && in.assignment,
          "compat_inputs is incomplete");
    pool_.clear();
    index_.clear();
    order_.clear();
    build_module_screen(in);

    busy_.clear();
    busy_.reserve(in.instances->size());
    for (const fu_instance& inst : *in.instances) busy_.push_back(busy_intervals(in, inst));

    std::vector<node_id> free_ops;
    for (node_id v : in.g->nodes())
        if (!(*in.committed)[v.index()]) free_ops.push_back(v);

    for (std::size_t i = 0; i < free_ops.size(); ++i) {
        const op_kind ki = in.g->kind(free_ops[i]);
        for (std::size_t j = i + 1; j < free_ops.size(); ++j)
            for (const module_id m : pair_modules(ki, in.g->kind(free_ops[j])))
                score_pair_combo(in, free_ops[i], free_ops[j], m);
        for (const fu_instance& inst : *in.instances)
            score_join_combo(in, free_ops[i], inst);
    }
    built_ = true;
}

const merge_candidate*
candidate_store::best(const std::unordered_set<std::uint64_t>& blacklist) const
{
    for (const auto& [pick, key] : order_) {
        const entry& e = pool_[index_.at(key)];
        if (!blacklist.empty() && blacklist.count(e.score.cand.packed_key()) > 0) continue;
        return &e.score.cand;
    }
    return nullptr;
}

void candidate_store::apply_accept(const compat_inputs& in, const merge_candidate& chosen,
                                   const time_windows& before)
{
    const int n = in.g->node_count();
    const bool pair = chosen.type == merge_candidate::merge_type::pair;
    const int d = in.lib->module(chosen.module).latency;

    // 1. Per-instance busy intervals, maintained on bind: a pair merge
    // created one instance (the last one), a join extended an existing
    // one.
    const auto insert_sorted = [](std::vector<std::pair<int, int>>& busy, int t, int e) {
        busy.insert(std::lower_bound(busy.begin(), busy.end(), std::make_pair(t, e)),
                    {t, e});
    };
    int changed_instance = -1;
    if (pair) {
        check(!in.instances->empty(), "pair merge without a created instance");
        changed_instance = in.instances->back().index;
        std::vector<std::pair<int, int>> busy;
        insert_sorted(busy, chosen.t_a, chosen.t_a + d);
        insert_sorted(busy, chosen.t_b, chosen.t_b + d);
        check(static_cast<int>(busy_.size()) == changed_instance,
              "busy table out of sync with the instance list");
        busy_.push_back(std::move(busy));
    } else {
        changed_instance = chosen.instance;
        insert_sorted(busy_[static_cast<std::size_t>(changed_instance)], chosen.t_a,
                      chosen.t_a + d);
    }

    // 2. Changed-node closure: the committed ops plus every operator
    // whose window moved; a candidate reads at most its own ops and
    // their direct neighbours, so `affected` (changed or adjacent to a
    // change) is exactly the re-score trigger set.  After the backtrack
    // lock every operator is pinned, windows stop moving and this set
    // collapses to the merged ops' neighbourhood.
    std::vector<char> touched(static_cast<std::size_t>(n), 0);
    for (int v = 0; v < n; ++v)
        if (before.s_min[static_cast<std::size_t>(v)] !=
                in.windows->s_min[static_cast<std::size_t>(v)] ||
            before.s_max[static_cast<std::size_t>(v)] !=
                in.windows->s_max[static_cast<std::size_t>(v)])
            touched[static_cast<std::size_t>(v)] = 1;
    touched[chosen.a.index()] = 1;
    if (pair) touched[chosen.b.index()] = 1;
    std::vector<char> affected(static_cast<std::size_t>(n), 0);
    for (node_id v : in.g->nodes()) {
        char hit = touched[v.index()];
        if (!hit)
            for (node_id p : in.g->preds(v))
                if (touched[p.index()]) { hit = 1; break; }
        if (!hit)
            for (node_id s : in.g->succs(v))
                if (touched[s.index()]) { hit = 1; break; }
        affected[v.index()] = hit;
    }

    // 3. One linear sweep of the dense pool: drop candidates of the
    // now-committed ops; revalidate survivors whose cached slots the new
    // reservations overlap.  The revalidation is one fits() probe per
    // cached slot, not a re-score: the profile only grows, so slots
    // before a cached minimum stay infeasible, the losing pair order can
    // only get worse, and a slot that still fits leaves the whole cached
    // result unchanged.  Only broken slots go to the re-score list.
    const std::pair<int, int> res_a{chosen.t_a, chosen.t_a + d};
    const std::pair<int, int> res_b =
        pair ? std::pair<int, int>{chosen.t_b, chosen.t_b + d} : std::pair<int, int>{0, 0};
    const auto hits_interval = [&](int lo, int hi) {
        if (lo < res_a.second && res_a.first < hi) return true;
        return pair && lo < res_b.second && res_b.first < hi;
    };
    const auto generation_covers = [&](const entry& e) {
        if (e.is_pair) return affected[e.x.index()] || affected[e.y.index()] ? true : false;
        return (affected[e.x.index()] ? true : false) || e.instance == changed_instance;
    };
    std::vector<entry> broken;
    for (std::size_t i = 0; i < pool_.size();) {
        const entry& e = pool_[i];
        if ((*in.committed)[e.x.index()] ||
            (e.is_pair && (*in.committed)[e.y.index()])) {
            erase_at(i); // swap-pop: the swapped-in entry is re-examined
            continue;
        }
        if (!generation_covers(e)) {
            const fu_module& m = in.lib->module(e.score.cand.module);
            const bool hit_a = hits_interval(e.score.cand.t_a, e.score.cand.t_a + m.latency);
            const bool hit_b = e.is_pair && hits_interval(e.score.cand.t_b,
                                                          e.score.cand.t_b + m.latency);
            if ((hit_a &&
                 !in.committed_power->fits(e.score.cand.t_a, m.latency, m.power)) ||
                (hit_b &&
                 !in.committed_power->fits(e.score.cand.t_b, m.latency, m.power)))
                broken.push_back(e);
        }
        ++i;
    }

    // 4. Generative re-score of everything touching an affected node or
    // the changed instance -- including combos with no stored entry (a
    // window move can make a previously infeasible candidate valid).
    // O(|affected| * free), so a post-lock accept (affected = the merged
    // ops' neighbourhood) costs a sliver of one full enumeration.
    std::vector<node_id> free_ops;
    for (node_id v : in.g->nodes())
        if (!(*in.committed)[v.index()]) free_ops.push_back(v);
    const fu_instance& changed =
        (*in.instances)[static_cast<std::size_t>(changed_instance)];
    for (const node_id u : free_ops) {
        if (!affected[u.index()]) {
            score_join_combo(in, u, changed);
            continue;
        }
        for (const node_id w : free_ops) {
            if (w == u) continue;
            // A both-affected pair is handled once, by its smaller op.
            if (affected[w.index()] && w < u) continue;
            const node_id x = u < w ? u : w;
            const node_id y = u < w ? w : u;
            for (const module_id m : pair_modules(in.g->kind(x), in.g->kind(y)))
                score_pair_combo(in, x, y, m);
        }
        for (const fu_instance& inst : *in.instances) score_join_combo(in, u, inst);
    }

    // 5. The broken-slot stragglers (disjoint from step 4 by construction).
    for (const entry& e : broken) {
        if (e.is_pair)
            score_pair_combo(in, e.x, e.y, e.module);
        else
            score_join_combo(in, e.x,
                             (*in.instances)[static_cast<std::size_t>(e.instance)]);
    }
}

} // namespace phls
