// Design-space exploration: the (T, Pmax) sweeps behind Figure 2 and the
// DSE example, plus Pareto-front extraction.
#pragma once

#include <vector>

#include "synth/synthesizer.h"

namespace phls {

/// One synthesis run inside a sweep.
struct sweep_point {
    double cap = 0.0;   ///< Pmax used
    int latency_bound = 0;
    bool feasible = false;
    double area = 0.0;
    double peak = 0.0;  ///< achieved peak power
    int latency = 0;    ///< achieved latency
    synthesis_stats stats;
};

/// Synthesises once per cap in `caps` at fixed latency bound.
std::vector<sweep_point> sweep_power(const graph& g, const module_library& lib,
                                     int latency, const std::vector<double>& caps,
                                     const synthesis_options& options = {});

/// A power grid for Figure-2-style curves: `points` values spanning from
/// just below the infeasibility threshold to just above the design's
/// unconstrained peak (so the sweep shows both the cliff and the plateau).
std::vector<double> default_power_grid(const graph& g, const module_library& lib,
                                       int latency, int points,
                                       const synthesis_options& options = {});

/// Monotone envelope of a cap-ascending sweep: every design whose
/// *achieved* peak fits under a looser cap is also a valid solution
/// there, so each point is replaced by the smallest-area such design.
/// This reports "the best design found satisfying the constraint" and
/// makes the area curve non-increasing in the cap; the raw per-cap
/// greedy outcome stays available in the input (the greedy can genuinely
/// produce *better* designs under a mild cap than under none, because
/// power-feasible windows guide its decisions -- see EXPERIMENTS.md).
std::vector<sweep_point> monotone_envelope(const std::vector<sweep_point>& points);

/// Pareto-minimal subset of feasible points in the (peak, area) plane:
/// keeps points where no other feasible point has both a lower-or-equal
/// peak and a lower area.  Sorted by peak ascending.
std::vector<sweep_point> pareto_front(const std::vector<sweep_point>& points);

} // namespace phls
