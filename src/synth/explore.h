// Design-space exploration: the (T, Pmax) sweeps behind Figure 2 and the
// DSE example, plus Pareto-front extraction.
//
// DEPRECATED (kept as shims for one release): `sweep_power` and
// `default_power_grid` are thin wrappers over the flow engine --
// `flow::run_batch` and `flow::power_grid` (see flow/flow.h) -- and now
// evaluate sweep points on a worker pool.  New code should use the flow
// API directly; `monotone_envelope` and `pareto_front` remain the
// canonical post-processing helpers.
#pragma once

#include <vector>

#include "synth/synthesizer.h"

namespace phls {

/// One synthesis run inside a sweep.
struct sweep_point {
    double cap = 0.0;   ///< Pmax used
    int latency_bound = 0;
    bool feasible = false;
    double area = 0.0;
    double peak = 0.0;  ///< achieved peak power
    int latency = 0;    ///< achieved latency
    synthesis_stats stats;
};

/// Synthesises once per cap in `caps` at fixed latency bound, on
/// `threads` workers (0 = hardware concurrency; results are identical
/// for every thread count).  Deprecated shim over flow::run_batch.
std::vector<sweep_point> sweep_power(const graph& g, const module_library& lib,
                                     int latency, const std::vector<double>& caps,
                                     const synthesis_options& options = {},
                                     int threads = 0);

/// A power grid for Figure-2-style curves: `points` values spanning from
/// just below the infeasibility threshold to just above the design's
/// unconstrained peak (so the sweep shows both the cliff and the plateau).
/// Deprecated shim over flow::power_grid.
std::vector<double> default_power_grid(const graph& g, const module_library& lib,
                                       int latency, int points,
                                       const synthesis_options& options = {});

/// Monotone envelope of a cap-ascending sweep: every design whose
/// *achieved* peak fits under a looser cap is also a valid solution
/// there, so each point is replaced by the smallest-area such design.
/// This reports "the best design found satisfying the constraint" and
/// makes the area curve non-increasing in the cap; the raw per-cap
/// greedy outcome stays available in the input (the greedy can genuinely
/// produce *better* designs under a mild cap than under none, because
/// power-feasible windows guide its decisions -- see EXPERIMENTS.md).
/// Empty input yields an empty envelope.
std::vector<sweep_point> monotone_envelope(const std::vector<sweep_point>& points);

/// Pareto-minimal subset of feasible points in the (peak, area) plane:
/// keeps points where no other feasible point has both a lower-or-equal
/// peak and a lower area.  Sorted by peak ascending.  Empty or
/// all-infeasible input yields an empty front.
std::vector<sweep_point> pareto_front(const std::vector<sweep_point>& points);

/// Maps one flow batch report to the legacy sweep_point shape.
sweep_point to_sweep_point(const struct flow_report& report);

} // namespace phls
