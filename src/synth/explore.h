// Design-space exploration post-processing: the envelope and Pareto
// helpers behind Figure 2 and the DSE example.
//
// The sweeps themselves run through the flow engine -- build a grid with
// `flow::power_grid`, evaluate it with `flow::run_batch` (or stream it
// with `flow::run_batch_stream`), then map each flow_report to the
// sweep_point shape with `to_sweep_point` and post-process here.  The
// legacy sweep free functions were removed after one release as
// deprecated shims; see docs/FLOW_API.md for the migration.
#pragma once

#include <vector>

#include "synth/synthesizer.h"

namespace phls {

/// One synthesis run inside a sweep.
struct sweep_point {
    double cap = 0.0;      ///< Pmax used
    int latency_bound = 0; ///< T used
    bool feasible = false; ///< a design satisfying (T, Pmax) exists
    double area = 0.0;     ///< total datapath area
    double peak = 0.0;     ///< achieved peak power
    int latency = 0;       ///< achieved latency
    synthesis_stats stats; ///< heuristic counters of the run
};

/// Monotone envelope of a cap-ascending sweep: every design whose
/// *achieved* peak fits under a looser cap is also a valid solution
/// there, so each point is replaced by the smallest-area such design.
/// This reports "the best design found satisfying the constraint" and
/// makes the area curve non-increasing in the cap; the raw per-cap
/// greedy outcome stays available in the input (the greedy can genuinely
/// produce *better* designs under a mild cap than under none, because
/// power-feasible windows guide its decisions -- see EXPERIMENTS.md).
/// Empty input yields an empty envelope.
std::vector<sweep_point> monotone_envelope(const std::vector<sweep_point>& points);

/// Pareto-minimal subset of feasible points in the (peak, area) plane:
/// keeps points where no other feasible point has both a lower-or-equal
/// peak and a lower area.  Sorted by peak ascending.  Empty or
/// all-infeasible input yields an empty front.
std::vector<sweep_point> pareto_front(const std::vector<sweep_point>& points);

/// Maps one flow batch report to the sweep_point shape consumed by
/// monotone_envelope / pareto_front.
sweep_point to_sweep_point(const struct flow_report& report);

} // namespace phls
