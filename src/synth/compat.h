// Power-aware time-extended compatibility graph (the paper's V1).
//
// Following Jou/Kuang/Chen's integrated formulation, a synthesis decision
// is either
//   * pair    — two unbound operations share one *new* FU instance of a
//               common module type, or
//   * join    — an unbound operation joins an already allocated instance.
//
// Two operations are compatible w.r.t. a module type m when m implements
// both kinds under the power cap AND their power-feasible windows (from
// pasap/palap — this is the paper's enhancement of V1) admit sequential,
// dependency-consistent, power-feasible execution.  Each candidate
// carries concrete start times and the estimated area saving; the greedy
// partitioner (clique.h) picks the best one.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cdfg/analysis.h"
#include "library/cost_model.h"
#include "power/tracker.h"
#include "sched/mobility.h"
#include "synth/datapath.h"

namespace phls {

class synth_arena;

/// Field widths of the packed candidate identity used by the merge
/// loop's blacklist and the incremental candidate store:
/// [pair-bit | a | b-or-instance | module].  run_clique_partitioning
/// rejects problems that do not fit these widths, so packed keys never
/// collide silently.
inline constexpr int packed_node_bits = 24;
inline constexpr int packed_module_bits = 15;

/// Packs one candidate identity.  `second` is the b node for pairs and
/// the instance index for joins.
constexpr std::uint64_t pack_candidate_key(bool is_pair, int a, int second, int module)
{
    constexpr std::uint64_t node_mask = (1ull << packed_node_bits) - 1;
    constexpr std::uint64_t module_mask = (1ull << packed_module_bits) - 1;
    return (static_cast<std::uint64_t>(is_pair ? 1 : 0) << 63) |
           ((static_cast<std::uint64_t>(a) & node_mask)
            << (packed_node_bits + packed_module_bits)) |
           ((static_cast<std::uint64_t>(second) & node_mask) << packed_module_bits) |
           (static_cast<std::uint64_t>(module) & module_mask);
}

/// One synthesis decision in the compatibility graph.
struct merge_candidate {
    enum class merge_type { pair, join };

    merge_type type = merge_type::pair;
    node_id a;          ///< first operation (always set)
    node_id b;          ///< second operation (pair only)
    int instance = -1;  ///< target instance (join only)
    module_id module;   ///< module type the ops will execute on
    double saving = 0.0; ///< estimated area saved by this decision
    int t_a = -1;       ///< committed start time for a
    int t_b = -1;       ///< committed start time for b (pair only)

    /// Stable identity, human-readable (used by debug logging).
    std::string key() const;

    /// Stable identity packed into one integer (pack_candidate_key over
    /// the dependency-ordered (a, b) / (a, instance) fields).
    std::uint64_t packed_key() const;
};

/// State the enumeration works from (owned by the partitioner).
struct compat_inputs {
    const graph* g = nullptr;
    const module_library* lib = nullptr;
    const cost_model* costs = nullptr;
    const reachability* reach = nullptr;
    double max_power = unbounded_power;
    const time_windows* windows = nullptr;   ///< current pasap/palap windows
    const std::vector<int>* fixed = nullptr; ///< committed/locked start times (-1 = free)
    const std::vector<char>* committed = nullptr; ///< per node: bound to an instance
    const std::vector<fu_instance>* instances = nullptr;
    const power_tracker* committed_power = nullptr; ///< reservations of committed ops
    const module_assignment* assignment = nullptr;  ///< current per-node modules
    bool locked = false; ///< all free ops pinned to their pasap times
    /// Optional struct-of-arrays fast path (kernel_tuning::soa_arena):
    /// when set, clamp_by_neighbors and standalone_area answer from the
    /// arena's O(1) per-node caches instead of walking the graph.  The
    /// owner must arena->sync() after every scheduling-state change;
    /// results are byte-identical either way.
    const synth_arena* arena = nullptr;
};

/// Standalone area of one operation: the cheapest module for its kind
/// that is power-feasible *and* slow enough to still fit the operation's
/// window (latency <= prospect delay + mobility).  A critical
/// multiplication cannot fall back to the serial multiplier, so its
/// realistic standalone cost is the parallel one -- without this the
/// greedy under-values sharing expensive fast units.
double standalone_area(const compat_inputs& in, node_id v);

/// Mux-penalty estimate for adding one more operation to an instance of
/// module `m`: one extra source per data port.
double mux_penalty(const fu_module& m, const cost_model& costs);

/// Busy intervals [start, end) of the operations bound to `inst`, sorted.
/// The incremental candidate store maintains these per instance on bind;
/// enumerate_candidates rebuilds them once per instance per call.
std::vector<std::pair<int, int>> busy_intervals(const compat_inputs& in,
                                                const fu_instance& inst);

/// One scored decision.  The incremental store's power-dirtiness test
/// needs no extra footprint: within one partitioning run the committed
/// power profile only grows, so a cached candidate's minimal slots can
/// only move later -- its score changes iff a new reservation overlaps
/// the execution intervals of its cached start times (candidates that
/// failed to time stay failed until a window / neighbour / instance
/// change re-scores them anyway).
struct candidate_score {
    bool ok = false; ///< a timed candidate exists (saving may still be < 0)
    merge_candidate cand;
};

/// Scores the pair decision (a, b, module) exactly as enumerate_candidates
/// would (a must be the smaller node id, matching enumeration order).
candidate_score score_pair(const compat_inputs& in, node_id a, node_id b, module_id m);

/// Scores joining `a` onto `inst`; `busy` must equal
/// busy_intervals(in, inst).
candidate_score score_join(const compat_inputs& in, node_id a, const fu_instance& inst,
                           const std::vector<std::pair<int, int>>& busy);

/// Enumerates all currently valid decisions, each with concrete times and
/// saving.  Deterministic order.
std::vector<merge_candidate> enumerate_candidates(const compat_inputs& in);

/// Picks the best candidate: max saving, then joins before pairs, then
/// smaller operation ids.  Returns index into `candidates`, or -1 if empty.
int best_candidate(const std::vector<merge_candidate>& candidates);

} // namespace phls
