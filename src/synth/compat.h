// Power-aware time-extended compatibility graph (the paper's V1).
//
// Following Jou/Kuang/Chen's integrated formulation, a synthesis decision
// is either
//   * pair    — two unbound operations share one *new* FU instance of a
//               common module type, or
//   * join    — an unbound operation joins an already allocated instance.
//
// Two operations are compatible w.r.t. a module type m when m implements
// both kinds under the power cap AND their power-feasible windows (from
// pasap/palap — this is the paper's enhancement of V1) admit sequential,
// dependency-consistent, power-feasible execution.  Each candidate
// carries concrete start times and the estimated area saving; the greedy
// partitioner (clique.h) picks the best one.
#pragma once

#include <string>
#include <vector>

#include "cdfg/analysis.h"
#include "library/cost_model.h"
#include "power/tracker.h"
#include "sched/mobility.h"
#include "synth/datapath.h"

namespace phls {

/// One synthesis decision in the compatibility graph.
struct merge_candidate {
    enum class merge_type { pair, join };

    merge_type type = merge_type::pair;
    node_id a;          ///< first operation (always set)
    node_id b;          ///< second operation (pair only)
    int instance = -1;  ///< target instance (join only)
    module_id module;   ///< module type the ops will execute on
    double saving = 0.0; ///< estimated area saved by this decision
    int t_a = -1;       ///< committed start time for a
    int t_b = -1;       ///< committed start time for b (pair only)

    /// Stable identity for blacklist bookkeeping.
    std::string key() const;
};

/// State the enumeration works from (owned by the partitioner).
struct compat_inputs {
    const graph* g = nullptr;
    const module_library* lib = nullptr;
    const cost_model* costs = nullptr;
    const reachability* reach = nullptr;
    double max_power = unbounded_power;
    const time_windows* windows = nullptr;   ///< current pasap/palap windows
    const std::vector<int>* fixed = nullptr; ///< committed/locked start times (-1 = free)
    const std::vector<char>* committed = nullptr; ///< per node: bound to an instance
    const std::vector<fu_instance>* instances = nullptr;
    const power_tracker* committed_power = nullptr; ///< reservations of committed ops
    const module_assignment* assignment = nullptr;  ///< current per-node modules
    bool locked = false; ///< all free ops pinned to their pasap times
};

/// Standalone area of one operation: the cheapest module for its kind
/// that is power-feasible *and* slow enough to still fit the operation's
/// window (latency <= prospect delay + mobility).  A critical
/// multiplication cannot fall back to the serial multiplier, so its
/// realistic standalone cost is the parallel one -- without this the
/// greedy under-values sharing expensive fast units.
double standalone_area(const compat_inputs& in, node_id v);

/// Mux-penalty estimate for adding one more operation to an instance of
/// module `m`: one extra source per data port.
double mux_penalty(const fu_module& m, const cost_model& costs);

/// Enumerates all currently valid decisions, each with concrete times and
/// saving.  Deterministic order.
std::vector<merge_candidate> enumerate_candidates(const compat_inputs& in);

/// Picks the best candidate: max saving, then joins before pairs, then
/// smaller operation ids.  Returns index into `candidates`, or -1 if empty.
int best_candidate(const std::vector<merge_candidate>& candidates);

} // namespace phls
