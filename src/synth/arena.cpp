#include "synth/arena.h"

#include <algorithm>
#include <climits>

#include "support/errors.h"

namespace phls {

void synth_arena::build(const graph& g, const module_library& lib)
{
    n_ = g.node_count();
    const std::size_t n = static_cast<std::size_t>(n_);

    kind_.resize(n);
    pred_off_.assign(n + 1, 0);
    succ_off_.assign(n + 1, 0);
    for (node_id v : g.node_ids()) {
        kind_[v.index()] = op_kind_index(g.kind(v));
        pred_off_[v.index() + 1] = static_cast<int>(g.preds(v).size());
        succ_off_[v.index() + 1] = static_cast<int>(g.succs(v).size());
    }
    for (std::size_t i = 1; i <= n; ++i) {
        pred_off_[i] += pred_off_[i - 1];
        succ_off_[i] += succ_off_[i - 1];
    }
    pred_adj_.resize(static_cast<std::size_t>(pred_off_[n]));
    succ_adj_.resize(static_cast<std::size_t>(succ_off_[n]));
    for (node_id v : g.node_ids()) {
        int pe = pred_off_[v.index()];
        for (node_id p : g.preds(v)) pred_adj_[static_cast<std::size_t>(pe++)] = p.value();
        int se = succ_off_[v.index()];
        for (node_id s : g.succs(v)) succ_adj_[static_cast<std::size_t>(se++)] = s.value();
    }

    mod_latency_.resize(static_cast<std::size_t>(lib.size()));
    mod_area_.resize(static_cast<std::size_t>(lib.size()));
    for (int mi = 0; mi < lib.size(); ++mi) {
        mod_latency_[static_cast<std::size_t>(mi)] = lib.module(module_id(mi)).latency;
        mod_area_[static_cast<std::size_t>(mi)] = lib.module(module_id(mi)).area;
    }
    support_.assign(static_cast<std::size_t>(op_kind_count), {});
    for (const op_kind k : all_op_kinds()) {
        std::vector<mod_fit>& mods = support_[static_cast<std::size_t>(op_kind_index(k))];
        // Library order, exactly the iteration order of the reference
        // standalone_area loop.
        for (const fu_module& m : lib.modules())
            if (m.supports(k)) mods.push_back({m.latency, m.area, m.power});
    }
    screened_ = false;

    buckets_.assign(static_cast<std::size_t>(op_kind_count), {});
}

void synth_arena::sync(const compat_inputs& in)
{
    check(n_ == in.g->node_count(), "synth_arena: graph changed under the arena");
    const std::size_t n = static_cast<std::size_t>(n_);
    const std::vector<int>& fixed = *in.fixed;
    const time_windows& w = *in.windows;
    const module_assignment& assign = *in.assignment;
    const std::vector<char>& committed = *in.committed;

    // Power screen per kind: the cap is fixed for the whole run, so this
    // triggers once.  The comparison is the exact precheck of the
    // reference standalone_area loop.
    if (!screened_ || screened_cap_ != in.max_power) {
        feasible_.assign(support_.size(), {});
        for (std::size_t k = 0; k < support_.size(); ++k)
            for (const mod_fit& m : support_[k])
                if (!(m.power > in.max_power + power_tracker::tolerance))
                    feasible_[k].push_back(m);
        screened_cap_ = in.max_power;
        screened_ = true;
    }

    earliest_.resize(n);
    latest_.resize(n);
    delay_.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
        const int f = fixed[v];
        earliest_[v] = f >= 0 ? f : w.s_min[v];
        latest_[v] = f >= 0 ? f : w.s_max[v];
        delay_[v] = mod_latency_[static_cast<std::size_t>(assign[v].value())];
    }

    pred_bound_.assign(n, INT_MIN);
    succ_latest_.assign(n, INT_MAX);
    for (std::size_t v = 0; v < n; ++v) {
        for (int e = pred_off_[v]; e < pred_off_[v + 1]; ++e) {
            const std::size_t p = static_cast<std::size_t>(pred_adj_[static_cast<std::size_t>(e)]);
            pred_bound_[v] = std::max(pred_bound_[v], earliest_[p] + delay_[p]);
        }
        for (int e = succ_off_[v]; e < succ_off_[v + 1]; ++e) {
            const std::size_t s = static_cast<std::size_t>(succ_adj_[static_cast<std::size_t>(e)]);
            succ_latest_[v] = std::min(succ_latest_[v], latest_[s]);
        }
    }

    // Standalone areas: the same (power, latency-budget, min-area) fold
    // as the reference, over the power-screened per-kind list.  min is
    // order- and grouping-independent over exact doubles, so caching is
    // value-identical.
    standalone_.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
        const int mobility = fixed[v] >= 0 ? 0 : w.s_max[v] - w.s_min[v];
        const int budget = delay_[v] + mobility;
        double best = -1.0;
        for (const mod_fit& m : feasible_[static_cast<std::size_t>(kind_[v])]) {
            if (m.latency > budget) continue;
            if (best < 0.0 || m.area < best) best = m.area;
        }
        if (best < 0.0) best = mod_area_[static_cast<std::size_t>(assign[v].value())];
        standalone_[v] = best;
    }

    for (std::vector<node_id>& b : buckets_) b.clear();
    for (std::size_t v = 0; v < n; ++v)
        if (!committed[v])
            buckets_[static_cast<std::size_t>(kind_[v])].push_back(
                node_id(static_cast<int>(v)));
}

} // namespace phls
