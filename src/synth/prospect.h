// Prospect module policy (DESIGN.md §5).
//
// Before any binding decision, pasap/palap need a delay/power estimate per
// operation.  The prospect policy picks, per operation kind, a
// *power-feasible* module: under a cap below the parallel multiplier's
// 8.1 power units the policy automatically falls back to the serial
// multiplier — the speed/power/area trade the paper highlights.
#pragma once

#include <string>

#include "sched/schedule.h"

namespace phls {

/// Which power-feasible module to assume for unbound operations.
enum class prospect_policy {
    fastest_fit,  ///< fastest module with power <= cap (default)
    cheapest_fit, ///< cheapest-area module with power <= cap
};

std::string to_string(prospect_policy policy);

/// Outcome of prospect selection.
struct prospect_result {
    bool ok = false;
    std::string reason;
    module_assignment assignment;
};

/// Builds the per-operation assignment under `policy` and cap `max_power`.
prospect_result make_prospect(const graph& g, const module_library& lib,
                              prospect_policy policy, double max_power);

} // namespace phls
