// Top-level synthesis API: simultaneous scheduling, allocation and
// binding minimising area under a latency constraint T and a maximum
// power-per-clock-cycle constraint Pmax (the paper's problem statement).
#pragma once

#include <string>

#include "library/cost_model.h"
#include "power/tracker.h"
#include "sched/pasap.h"
#include "synth/datapath.h"
#include "synth/prospect.h"

namespace phls {

/// The (T, Pmax) constraint pair.
struct synthesis_constraints {
    int latency = 0;                      ///< max schedule length, cycles
    double max_power = unbounded_power;   ///< max power per clock cycle
};

/// Heuristic knobs (defaults reproduce the paper's algorithm; the
/// non-default settings exist for the ablation experiments, E5).
struct synthesis_options {
    prospect_policy policy = prospect_policy::fastest_fit;
    /// Explore both prospect policies (fastest_fit and cheapest_fit) and
    /// keep the smaller-area feasible design.  This is how the library
    /// realises the paper's "speed and energy usage of an operator can be
    /// traded versus the area" exploration; disable to study one policy
    /// (ablation E5), in which case `policy` is used alone.
    bool try_both_prospects = true;
    pasap_order order = pasap_order::critical_path;
    cost_model costs;
    /// Paper's feasibility mechanism: on a failed decision, backtrack one
    /// step and lock all unscheduled operators to the last valid pasap
    /// schedule.  When disabled, failed decisions are simply skipped.
    bool enable_backtrack_lock = true;
    /// Ablation: lock every operator to the initial pasap schedule before
    /// any binding decision (turns the method into schedule-then-bind).
    bool lock_from_start = false;
    /// Finalisation: try to rebind leftover singleton operators to the
    /// cheapest power-feasible module (e.g. serial instead of parallel
    /// multiplier) when the constraints still hold.
    bool allow_cheapest_rebind = true;
    /// Run the independent verifier on the result (throws on violation).
    bool verify_result = true;
    /// Benchmark/ablation: stop the greedy merge loop after this many
    /// attempted decisions (accepted + rejected); -1 = unlimited (the
    /// paper's algorithm).  bench_kernels uses it to compare the
    /// reference and optimised candidate kernels over an identical
    /// bounded prefix of large synthetic runs.
    int max_merge_attempts = -1;
};

/// Counters describing what the heuristic did.
struct synthesis_stats {
    int merges = 0;           ///< accepted decisions
    int pair_merges = 0;      ///< new shared instances
    int join_merges = 0;      ///< ops added to existing instances
    int rejected = 0;         ///< decisions rolled back
    int window_recomputes = 0;
    bool locked = false;      ///< backtrack-and-lock triggered
    int merges_before_lock = -1;
    int finalize_rebinds = 0; ///< singletons moved to a cheaper module
    int finalize_fallbacks = 0;
};

/// Synthesis outcome.  `feasible == false` is an expected result for
/// tight (T, Pmax) combinations; `reason` explains which stage failed.
struct synthesis_result {
    bool feasible = false;
    std::string reason;
    datapath dp;
    synthesis_stats stats;
};

class explore_cache;

/// Runs the full algorithm: prospect modules -> pasap/palap windows ->
/// greedy power-aware clique partitioning with backtrack-and-lock ->
/// finalisation -> area accounting.  `cache` (optional) serves the
/// per-(graph, lib) invariants -- reachability, prospect tables, initial
/// windows -- during batch exploration; it must have been built for
/// exactly (g, lib), and the result is byte-identical with or without
/// it.  When `options.try_both_prospects` resolves both policies to the
/// same module table (any cap below the point where they diverge), the
/// second synthesis run is skipped outright.
synthesis_result synthesize(const graph& g, const module_library& lib,
                            const synthesis_constraints& constraints,
                            const synthesis_options& options = {},
                            const explore_cache* cache = nullptr);

} // namespace phls
