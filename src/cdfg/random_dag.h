// Random layered DAG generator.
//
// Property-based tests and the runtime benchmarks need arbitrarily sized
// CDFGs with the same structural invariants as the paper benchmarks
// (acyclic, inputs feed operations, every operation is consumed, outputs
// close all sinks).  Generation is deterministic in the seed.
#pragma once

#include <cstdint>

#include "cdfg/graph.h"

namespace phls {

/// Parameters for random_dag().
struct random_dag_params {
    int operations = 20;     ///< arithmetic/comparison op count (>= 1)
    int inputs = 4;          ///< input node count (>= 1)
    int layers = 5;          ///< target dependency depth (>= 1)
    double mult_fraction = 0.3; ///< probability an op is a multiplication
    double comp_fraction = 0.05; ///< probability an op is a comparison
    double second_operand_probability = 0.8; ///< chance of a second data edge
};

/// Generates a valid CDFG; the result always passes graph::validate().
graph random_dag(const random_dag_params& params, std::uint64_t seed);

} // namespace phls
