#include "cdfg/builder.h"

#include "support/errors.h"

namespace phls {

node_id graph_builder::input(const std::string& label)
{
    return g_.add_node(op_kind::input, label);
}

node_id graph_builder::output(const std::string& label, node_id src)
{
    const node_id n = g_.add_node(op_kind::output, label);
    g_.add_edge(src, n);
    return n;
}

node_id graph_builder::op(op_kind kind, const std::string& label,
                          const std::vector<node_id>& operands)
{
    check(is_binary(kind), "graph_builder::op is for arithmetic kinds");
    check(operands.size() >= 1 && operands.size() <= 2,
          "operation '" + label + "' needs one or two operands");
    const node_id n = g_.add_node(kind, label);
    for (node_id a : operands) g_.add_edge(a, n);
    return n;
}

node_id graph_builder::add(const std::string& label, node_id a, node_id b)
{
    return op(op_kind::add, label, {a, b});
}
node_id graph_builder::sub(const std::string& label, node_id a, node_id b)
{
    return op(op_kind::sub, label, {a, b});
}
node_id graph_builder::mul(const std::string& label, node_id a, node_id b)
{
    return op(op_kind::mult, label, {a, b});
}
node_id graph_builder::cmp(const std::string& label, node_id a, node_id b)
{
    return op(op_kind::comp, label, {a, b});
}

node_id graph_builder::add(const std::string& label, node_id a)
{
    return op(op_kind::add, label, {a});
}
node_id graph_builder::sub(const std::string& label, node_id a)
{
    return op(op_kind::sub, label, {a});
}
node_id graph_builder::mul(const std::string& label, node_id a)
{
    return op(op_kind::mult, label, {a});
}
node_id graph_builder::cmp(const std::string& label, node_id a)
{
    return op(op_kind::comp, label, {a});
}

graph graph_builder::build()
{
    g_.validate();
    graph out = std::move(g_);
    g_ = graph();
    return out;
}

} // namespace phls
