#include "cdfg/textio.h"

#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "support/errors.h"
#include "support/strings.h"

namespace phls {

graph parse_cdfg(std::istream& is)
{
    std::string name = "unnamed";
    struct pending_node {
        std::string label;
        op_kind kind;
    };
    struct pending_edge {
        std::string from, to;
        int line;
    };
    std::vector<pending_node> nodes;
    std::vector<pending_edge> edges;

    std::string line;
    int lineno = 0;
    bool saw_header = false;
    while (std::getline(is, line)) {
        ++lineno;
        if (is_blank_or_comment(line)) continue;
        const std::vector<std::string> tok = split_ws(line);
        try {
            if (tok[0] == "cdfg") {
                check(tok.size() == 2, "expected: cdfg <name>");
                name = tok[1];
                saw_header = true;
            } else if (tok[0] == "node") {
                check(tok.size() == 3, "expected: node <label> <kind>");
                nodes.push_back({tok[1], parse_op_kind(tok[2])});
            } else if (tok[0] == "edge") {
                check(tok.size() == 3, "expected: edge <from> <to>");
                edges.push_back({tok[1], tok[2], lineno});
            } else {
                throw error("unknown directive '" + tok[0] + "'");
            }
        } catch (const parse_error&) {
            throw;
        } catch (const error& e) {
            throw parse_error(e.what(), lineno);
        }
    }
    check(saw_header, "missing 'cdfg <name>' header");

    graph g(name);
    std::map<std::string, node_id> by_label;
    for (const pending_node& n : nodes) by_label[n.label] = g.add_node(n.kind, n.label);
    for (const pending_edge& e : edges) {
        const auto from = by_label.find(e.from);
        const auto to = by_label.find(e.to);
        if (from == by_label.end())
            throw parse_error("edge references unknown node '" + e.from + "'", e.line);
        if (to == by_label.end())
            throw parse_error("edge references unknown node '" + e.to + "'", e.line);
        g.add_edge(from->second, to->second);
    }
    g.validate();
    return g;
}

graph parse_cdfg_string(const std::string& text)
{
    std::istringstream is(text);
    return parse_cdfg(is);
}

void write_cdfg(const graph& g, std::ostream& os)
{
    os << "cdfg " << g.name() << '\n';
    for (node_id v : g.nodes())
        os << "node " << g.label(v) << ' ' << op_kind_name(g.kind(v)) << '\n';
    for (node_id v : g.nodes())
        for (node_id s : g.succs(v)) os << "edge " << g.label(v) << ' ' << g.label(s) << '\n';
}

std::string write_cdfg_string(const graph& g)
{
    std::ostringstream os;
    write_cdfg(g, os);
    return os.str();
}

} // namespace phls
