#include "cdfg/graph.h"

#include <algorithm>
#include <queue>

#include "support/errors.h"

namespace phls {

const graph::node& graph::at(node_id n) const
{
    check(n.valid() && n.index() < nodes_.size(), "invalid node id");
    return nodes_[n.index()];
}

graph::node& graph::at(node_id n)
{
    check(n.valid() && n.index() < nodes_.size(), "invalid node id");
    return nodes_[n.index()];
}

node_id graph::add_node(op_kind kind, const std::string& label)
{
    check(!label.empty(), "node label must be non-empty");
    check(!find(label).has_value(), "duplicate node label '" + label + "'");
    nodes_.push_back(node{kind, label, {}, {}});
    return node_id(static_cast<int>(nodes_.size()) - 1);
}

void graph::add_edge(node_id from, node_id to)
{
    check(from != to, "self-loop on node '" + at(from).label + "'");
    at(from).succs.push_back(to);
    at(to).preds.push_back(from);
    ++edge_count_;
}

std::vector<node_id> graph::nodes() const
{
    std::vector<node_id> out;
    out.reserve(nodes_.size());
    for (int i = 0; i < node_count(); ++i) out.push_back(node_id(i));
    return out;
}

std::optional<node_id> graph::find(const std::string& label) const
{
    for (int i = 0; i < node_count(); ++i)
        if (nodes_[static_cast<std::size_t>(i)].label == label) return node_id(i);
    return std::nullopt;
}

std::vector<node_id> graph::nodes_of_kind(op_kind k) const
{
    std::vector<node_id> out;
    for (int i = 0; i < node_count(); ++i)
        if (nodes_[static_cast<std::size_t>(i)].kind == k) out.push_back(node_id(i));
    return out;
}

int graph::count_of_kind(op_kind k) const
{
    int count = 0;
    for (const node& nd : nodes_)
        if (nd.kind == k) ++count;
    return count;
}

bool graph::is_acyclic() const
{
    // Kahn's algorithm: the graph is acyclic iff all nodes drain.
    std::vector<int> indegree(static_cast<std::size_t>(node_count()), 0);
    for (int i = 0; i < node_count(); ++i)
        indegree[static_cast<std::size_t>(i)] =
            static_cast<int>(nodes_[static_cast<std::size_t>(i)].preds.size());

    std::queue<int> ready;
    for (int i = 0; i < node_count(); ++i)
        if (indegree[static_cast<std::size_t>(i)] == 0) ready.push(i);
    int drained = 0;
    while (!ready.empty()) {
        const int v = ready.front();
        ready.pop();
        ++drained;
        for (node_id s : nodes_[static_cast<std::size_t>(v)].succs)
            if (--indegree[s.index()] == 0) ready.push(s.value());
    }
    return drained == node_count();
}

std::vector<node_id> graph::topo_order() const
{
    std::vector<int> indegree(static_cast<std::size_t>(node_count()), 0);
    for (int i = 0; i < node_count(); ++i)
        indegree[static_cast<std::size_t>(i)] =
            static_cast<int>(nodes_[static_cast<std::size_t>(i)].preds.size());

    // Min-heap over node ids gives a deterministic order independent of
    // insertion history.
    std::priority_queue<int, std::vector<int>, std::greater<int>> ready;
    for (int i = 0; i < node_count(); ++i)
        if (indegree[static_cast<std::size_t>(i)] == 0) ready.push(i);

    std::vector<node_id> order;
    order.reserve(nodes_.size());
    while (!ready.empty()) {
        const int v = ready.top();
        ready.pop();
        order.push_back(node_id(v));
        for (node_id s : nodes_[static_cast<std::size_t>(v)].succs)
            if (--indegree[s.index()] == 0) ready.push(s.value());
    }
    check(static_cast<int>(order.size()) == node_count(),
          "graph '" + name_ + "' contains a cycle");
    return order;
}

void graph::validate() const
{
    check(is_acyclic(), "graph '" + name_ + "' contains a cycle");
    for (int i = 0; i < node_count(); ++i) {
        const node& nd = nodes_[static_cast<std::size_t>(i)];
        const auto where = "node '" + nd.label + "' in graph '" + name_ + "'";
        const int np = static_cast<int>(nd.preds.size());
        const int ns = static_cast<int>(nd.succs.size());
        switch (nd.kind) {
        case op_kind::input:
            check(np == 0, where + ": input must have no predecessors");
            break;
        case op_kind::output:
            check(np == 1, where + ": output must have exactly one predecessor");
            check(ns == 0, where + ": output must have no successors");
            break;
        default:
            check(np >= 1 && np <= 2,
                  where + ": binary operation must have one or two predecessors");
            check(ns >= 1, where + ": operation result is never consumed");
            break;
        }
    }
}

} // namespace phls
