// Structural analyses over CDFGs: longest paths under a delay model,
// reachability (needed by the compatibility graph), and kind histograms.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "cdfg/graph.h"

namespace phls {

/// Per-node execution delay in clock cycles; must be >= 1.
using delay_fn = std::function<int(node_id)>;

/// Earliest start time of every node when every operation starts as soon
/// as its predecessors finish (classic unconstrained ASAP times).
std::vector<int> earliest_starts(const graph& g, const delay_fn& delay);

/// Length of the critical path in cycles: max over nodes of
/// earliest_start + delay.  Equals the minimum feasible latency of any
/// schedule under this delay model.
int critical_path_length(const graph& g, const delay_fn& delay);

/// Latest start times for a target latency `T` (classic ALAP).  Returns an
/// empty vector if T is below the critical path length (infeasible).
std::vector<int> latest_starts(const graph& g, const delay_fn& delay, int latency);

/// Number of nodes of each kind.
std::map<op_kind, int> op_histogram(const graph& g);

/// Transitive reachability: reaches(a, b) is true iff there is a directed
/// path from a to b (a != b).  O(V*E) construction, O(1) queries; CDFG
/// benchmark sizes make the dense representation cheap.
class reachability {
public:
    explicit reachability(const graph& g);

    bool reaches(node_id a, node_id b) const
    {
        return matrix_[a.index()][b.index()] != 0;
    }

    /// True if neither node reaches the other.
    bool independent(node_id a, node_id b) const
    {
        return a != b && !reaches(a, b) && !reaches(b, a);
    }

private:
    std::vector<std::vector<char>> matrix_;
};

} // namespace phls
