// Structural analyses over CDFGs: longest paths under a delay model,
// reachability (needed by the compatibility graph), and kind histograms.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "cdfg/graph.h"

namespace phls {

/// Per-node execution delay in clock cycles; must be >= 1.
using delay_fn = std::function<int(node_id)>;

/// Earliest start time of every node when every operation starts as soon
/// as its predecessors finish (classic unconstrained ASAP times).
std::vector<int> earliest_starts(const graph& g, const delay_fn& delay);

/// Length of the critical path in cycles: max over nodes of
/// earliest_start + delay.  Equals the minimum feasible latency of any
/// schedule under this delay model.
int critical_path_length(const graph& g, const delay_fn& delay);

/// Latest start times for a target latency `T` (classic ALAP).  Returns an
/// empty vector if T is below the critical path length (infeasible).
std::vector<int> latest_starts(const graph& g, const delay_fn& delay, int latency);

/// Number of nodes of each kind.
std::map<op_kind, int> op_histogram(const graph& g);

/// Transitive reachability: reaches(a, b) is true iff there is a directed
/// path from a to b (a != b).  Rows are packed 64-bit words in one flat
/// contiguous array (n * ceil(n/64) words), so construction is
/// O(V*E/64) word-ORs over reverse topological order and a 10k-node
/// graph costs ~12 MB instead of the ~100 MB (plus per-row allocations)
/// of a char matrix.  Queries are O(1) bit tests.
class reachability {
public:
    explicit reachability(const graph& g);

    bool reaches(node_id a, node_id b) const
    {
        return (bits_[a.index() * words_ + b.index() / 64] >>
                (b.index() % 64)) &
               1u;
    }

    /// True if neither node reaches the other.
    bool independent(node_id a, node_id b) const
    {
        return a != b && !reaches(a, b) && !reaches(b, a);
    }

private:
    std::size_t words_ = 0; ///< 64-bit words per row
    std::vector<std::uint64_t> bits_;
};

} // namespace phls
