#include "cdfg/dot.h"

#include <sstream>

namespace phls {

namespace {

const char* shape_for(op_kind k)
{
    switch (k) {
    case op_kind::input: return "invtriangle";
    case op_kind::output: return "triangle";
    case op_kind::mult: return "box";
    default: return "ellipse";
    }
}

} // namespace

std::string to_dot(const graph& g, const dot_options& options)
{
    std::ostringstream os;
    os << "digraph \"" << g.name() << "\" {\n";
    os << "  rankdir=TB;\n";
    for (node_id v : g.nodes()) {
        os << "  n" << v.value() << " [label=\"" << g.label(v);
        if (options.show_kind) os << "\\n" << op_kind_symbol(g.kind(v));
        if (v.index() < options.start_times.size())
            os << "\\nt=" << options.start_times[v.index()];
        if (v.index() < options.clusters.size() && !options.clusters[v.index()].empty())
            os << "\\n" << options.clusters[v.index()];
        os << "\", shape=" << shape_for(g.kind(v)) << "];\n";
    }
    for (node_id v : g.nodes())
        for (node_id s : g.succs(v)) os << "  n" << v.value() << " -> n" << s.value() << ";\n";
    os << "}\n";
    return os.str();
}

} // namespace phls
