#include "cdfg/benchmarks.h"

#include "cdfg/builder.h"
#include "support/errors.h"
#include "support/strings.h"

namespace phls {

graph make_hal()
{
    // One Euler step of y'' + 3xy' + 3y = 0 (De Micheli, "Synthesis and
    // Optimization of Digital Circuits", diffeq example):
    //   xl = x + dx
    //   ul = u - (3*x)*(u*dx) - (3*y)*dx
    //   yl = y + u*dx
    //   c  = xl < a
    // The literal constant 3 is not a graph node; multiplications by it
    // have a single data predecessor.
    graph_builder b("hal");
    const node_id x = b.input("x");
    const node_id dx = b.input("dx");
    const node_id u = b.input("u");
    const node_id y = b.input("y");
    const node_id a = b.input("a");

    const node_id m1 = b.mul("m1", x);       // 3*x
    const node_id m2 = b.mul("m2", u, dx);   // u*dx
    const node_id m3 = b.mul("m3", y);       // 3*y
    const node_id m4 = b.mul("m4", m1, m2);  // (3x)*(u dx)
    const node_id m5 = b.mul("m5", m3, dx);  // (3y)*dx
    const node_id m6 = b.mul("m6", u, dx);   // u*dx (recomputed for yl)

    const node_id s1 = b.sub("s1", u, m4);   // u - 3x*u*dx
    const node_id s2 = b.sub("s2", s1, m5);  // ul
    const node_id a1 = b.add("a1", x, dx);   // xl
    const node_id a2 = b.add("a2", y, m6);   // yl
    const node_id c1 = b.cmp("c1", a1, a);   // xl < a

    b.output("xl", a1);
    b.output("ul", s2);
    b.output("yl", a2);
    b.output("c", c1);
    return b.build();
}

namespace {

/// Emits a Loeffler 3-multiplier plane rotation:
///   out1 = u*cos + v*sin,  out2 = -u*sin + v*cos
/// factored as t = u+v; ms = sin*t; mu = (cos-sin)*u; mv = (cos+sin)*v;
/// out1 = mu + ms; out2 = mv - ms.  Constant coefficients are implicit.
struct rotator_result {
    node_id out1;
    node_id out2;
};

rotator_result rotate(graph_builder& b, const std::string& prefix, node_id u, node_id v)
{
    const node_id t = b.add(prefix + "_t", u, v);
    const node_id ms = b.mul(prefix + "_ms", t);
    const node_id mu = b.mul(prefix + "_mu", u);
    const node_id mv = b.mul(prefix + "_mv", v);
    const node_id o1 = b.add(prefix + "_o1", mu, ms);
    const node_id o2 = b.sub(prefix + "_o2", mv, ms);
    return {o1, o2};
}

} // namespace

graph make_cosine()
{
    graph_builder b("cosine");
    std::vector<node_id> x;
    for (int i = 0; i < 8; ++i) x.push_back(b.input(strf("x%d", i)));

    // Stage 1: input butterflies.
    const node_id a0 = b.add("a0", x[0], x[7]);
    const node_id a1 = b.add("a1", x[1], x[6]);
    const node_id a2 = b.add("a2", x[2], x[5]);
    const node_id a3 = b.add("a3", x[3], x[4]);
    const node_id a4 = b.sub("a4", x[3], x[4]);
    const node_id a5 = b.sub("a5", x[2], x[5]);
    const node_id a6 = b.sub("a6", x[1], x[6]);
    const node_id a7 = b.sub("a7", x[0], x[7]);

    // Stage 2 even: second butterfly level.
    const node_id b0 = b.add("b0", a0, a3);
    const node_id b1 = b.add("b1", a1, a2);
    const node_id b2 = b.sub("b2", a1, a2);
    const node_id b3 = b.sub("b3", a0, a3);

    // Stage 2 odd: two rotators (angles 3pi/16 and pi/16).
    const rotator_result r47 = rotate(b, "r47", a4, a7); // -> (b4, b7)
    const rotator_result r56 = rotate(b, "r56", a5, a6); // -> (b5, b6)

    // Stage 3 even: c4 scalings and the pi/8 rotator.
    const node_id e0 = b.add("e0", b0, b1);
    const node_id y0m = b.mul("y0m", e0); // c4*(b0+b1)
    const node_id e1 = b.sub("e1", b0, b1);
    const node_id y4m = b.mul("y4m", e1); // c4*(b0-b1)
    const rotator_result r26 = rotate(b, "r26", b2, b3); // -> (y2, y6)

    // Stage 3 odd: butterflies on the rotator outputs.
    const node_id c4n = b.add("c4n", r47.out1, r56.out2); // b4+b6
    const node_id c5n = b.sub("c5n", r47.out2, r56.out1); // b7-b5
    const node_id c6n = b.sub("c6n", r47.out1, r56.out2); // b4-b6
    const node_id c7n = b.add("c7n", r47.out2, r56.out1); // b7+b5

    // Stage 4 odd: sqrt2 scalings and final butterflies.
    const node_id t5 = b.mul("t5", c5n); // sqrt2*c5n
    const node_id t6 = b.mul("t6", c6n); // sqrt2*c6n
    const node_id y1a = b.add("y1a", c7n, t6);
    const node_id y7s = b.sub("y7s", c7n, t6);
    const node_id y3a = b.add("y3a", c4n, t5);
    const node_id y5s = b.sub("y5s", c4n, t5);

    b.output("y0", y0m);
    b.output("y1", y1a);
    b.output("y2", r26.out1);
    b.output("y3", y3a);
    b.output("y4", y4m);
    b.output("y5", y5s);
    b.output("y6", r26.out2);
    b.output("y7", y7s);
    return b.build();
}

graph make_elliptic()
{
    // 5th-order elliptic wave digital filter in its standard HLS shape:
    // 26 additions, 8 constant multiplications; state variables enter as
    // inputs (s2..s39, named after the classic sv* registers) and leave as
    // outputs.  Critical path: 8 adds + 3 mults (+ input + output), i.e.
    // 16 cycles with the parallel multiplier and 22 with the serial one.
    graph_builder b("elliptic");
    const node_id x = b.input("x");
    const node_id s2 = b.input("s2");
    const node_id s13 = b.input("s13");
    const node_id s18 = b.input("s18");
    const node_id s26 = b.input("s26");
    const node_id s33 = b.input("s33");
    const node_id s38 = b.input("s38");
    const node_id s39 = b.input("s39");

    // Left adaptor chain.
    const node_id a1 = b.add("a1", x, s2);
    const node_id a2 = b.add("a2", a1, s13);
    const node_id m1 = b.mul("m1", a2);
    const node_id a3 = b.add("a3", m1, a1);
    const node_id a4 = b.add("a4", m1, s18);
    const node_id m2 = b.mul("m2", a3);
    const node_id a5 = b.add("a5", m2, a4);
    const node_id a6 = b.add("a6", m2, a2);

    // Right adaptor chain (mirror).
    const node_id a7 = b.add("a7", s39, s38);
    const node_id a8 = b.add("a8", a7, s33);
    const node_id m3 = b.mul("m3", a8);
    const node_id a9 = b.add("a9", m3, a7);
    const node_id a10 = b.add("a10", m3, s26);
    const node_id m4 = b.mul("m4", a9);
    const node_id a11 = b.add("a11", m4, a10);
    const node_id a12 = b.add("a12", m4, a8);

    // Middle adaptor joining the halves.
    const node_id a13 = b.add("a13", a5, a11);
    const node_id m5 = b.mul("m5", a13);
    const node_id a14 = b.add("a14", m5, a6);
    const node_id a15 = b.add("a15", m5, a12);
    const node_id a16 = b.add("a16", a14, a15); // filter output y

    // Reflected waves back into the state registers.
    const node_id a17 = b.add("a17", a14, a5);
    const node_id a18 = b.add("a18", a17, a1); // s2'
    const node_id a19 = b.add("a19", a15, a11);
    const node_id a20 = b.add("a20", a19, a7); // s39'
    const node_id m6 = b.mul("m6", a6);
    const node_id a21 = b.add("a21", m6, a3); // s13'
    const node_id m7 = b.mul("m7", a12);
    const node_id a22 = b.add("a22", m7, a9); // s33'
    const node_id m8 = b.mul("m8", a13);
    const node_id a23 = b.add("a23", m8, a14); // s18'
    const node_id a24 = b.add("a24", a4, a10);
    const node_id a25 = b.add("a25", a23, a24); // s26'
    const node_id a26 = b.add("a26", a21, a22); // s38'

    b.output("y", a16);
    b.output("s2n", a18);
    b.output("s13n", a21);
    b.output("s18n", a23);
    b.output("s26n", a25);
    b.output("s33n", a22);
    b.output("s38n", a26);
    b.output("s39n", a20);
    return b.build();
}

graph make_fir16()
{
    graph_builder b("fir16");
    std::vector<node_id> taps;
    for (int i = 0; i < 16; ++i) {
        const node_id x = b.input(strf("x%d", i));
        taps.push_back(b.mul(strf("m%d", i), x)); // c_i * x_i
    }
    // Balanced reduction tree: 15 additions.
    int level = 0;
    while (taps.size() > 1) {
        std::vector<node_id> next;
        for (std::size_t i = 0; i + 1 < taps.size(); i += 2)
            next.push_back(b.add(strf("s%d_%zu", level, i / 2), taps[i], taps[i + 1]));
        if (taps.size() % 2 == 1) next.push_back(taps.back());
        taps = std::move(next);
        ++level;
    }
    b.output("y", taps.front());
    return b.build();
}

graph make_ar_lattice()
{
    // Four normalised lattice stages (4 mult + 2 add each), taps after
    // stages 2 and 4, plus an input pre-add: 16 mult, 12 add.
    graph_builder b("ar_lattice");
    const node_id x = b.input("x");
    const node_id s0 = b.input("s0");
    const node_id g0 = b.input("g0");

    node_id f = b.add("f0", x, s0);
    node_id g = g0;
    std::vector<node_id> taps;
    for (int stage = 1; stage <= 4; ++stage) {
        const node_id p1 = b.mul(strf("p%da", stage), f);
        const node_id p2 = b.mul(strf("p%db", stage), g);
        const node_id p3 = b.mul(strf("p%dc", stage), f);
        const node_id p4 = b.mul(strf("p%dd", stage), g);
        f = b.add(strf("f%d", stage), p1, p2);
        g = b.add(strf("g%d", stage), p3, p4);
        if (stage % 2 == 0) taps.push_back(b.add(strf("tap%d", stage), f, g));
    }
    const node_id y = b.add("y", taps[0], taps[1]);
    b.output("yout", y);
    b.output("fout", f);
    b.output("gout", g);
    return b.build();
}

graph make_iir_biquad()
{
    // Two direct-form-II biquad sections in cascade; each section is
    //   w = x + a1*w1 + a2*w2 ;  y = b0*w + b1*w1 + b2*w2
    // with 5 constant multiplications and 4 additions.
    graph_builder b("iir_biquad");
    node_id signal = b.input("x");
    for (int sec = 1; sec <= 2; ++sec) {
        const node_id w1 = b.input(strf("w1_%d", sec));
        const node_id w2 = b.input(strf("w2_%d", sec));
        const node_id ma1 = b.mul(strf("ma1_%d", sec), w1);
        const node_id ma2 = b.mul(strf("ma2_%d", sec), w2);
        const node_id s1 = b.add(strf("s1_%d", sec), signal, ma1);
        const node_id w = b.add(strf("w_%d", sec), s1, ma2);
        const node_id mb0 = b.mul(strf("mb0_%d", sec), w);
        const node_id mb1 = b.mul(strf("mb1_%d", sec), w1);
        const node_id mb2 = b.mul(strf("mb2_%d", sec), w2);
        const node_id s2 = b.add(strf("s2_%d", sec), mb0, mb1);
        const node_id ysec = b.add(strf("y_%d", sec), s2, mb2);
        b.output(strf("w1n_%d", sec), w);  // w1' = w
        b.output(strf("w2n_%d", sec), w1); // w2' = w1 (register shift)
        signal = ysec;
    }
    b.output("y", signal);
    return b.build();
}

graph make_fft8()
{
    // Radix-2 decimation-in-time butterflies over 8 real samples
    // (teaching form: one twiddle multiplication per butterfly):
    //   top    = a + w*b
    //   bottom = a - w*b
    graph_builder b("fft8");
    std::vector<node_id> stage;
    for (int i = 0; i < 8; ++i) stage.push_back(b.input(strf("x%d", i)));

    const int strides[3] = {1, 2, 4};
    for (int s = 0; s < 3; ++s) {
        const int stride = strides[s];
        std::vector<node_id> next(8);
        std::vector<char> done(8, 0);
        for (int i = 0; i < 8; ++i) {
            if (done[static_cast<std::size_t>(i)]) continue;
            const int j = i + stride;
            const node_id tw = b.mul(strf("w%d_%d", s, i), stage[static_cast<std::size_t>(j)]);
            next[static_cast<std::size_t>(i)] =
                b.add(strf("bt%d_%d", s, i), stage[static_cast<std::size_t>(i)], tw);
            next[static_cast<std::size_t>(j)] =
                b.sub(strf("bb%d_%d", s, i), stage[static_cast<std::size_t>(i)], tw);
            done[static_cast<std::size_t>(i)] = 1;
            done[static_cast<std::size_t>(j)] = 1;
        }
        stage = std::move(next);
    }
    for (int i = 0; i < 8; ++i) b.output(strf("y%d", i), stage[static_cast<std::size_t>(i)]);
    return b.build();
}

std::vector<std::string> benchmark_names()
{
    return {"hal", "cosine", "elliptic", "fir16", "ar_lattice", "iir_biquad", "fft8"};
}

std::vector<std::string> paper_benchmark_names()
{
    return {"hal", "cosine", "elliptic"};
}

graph benchmark_by_name(const std::string& name)
{
    if (name == "hal") return make_hal();
    if (name == "cosine") return make_cosine();
    if (name == "elliptic") return make_elliptic();
    if (name == "fir16") return make_fir16();
    if (name == "ar_lattice") return make_ar_lattice();
    if (name == "iir_biquad") return make_iir_biquad();
    if (name == "fft8") return make_fft8();
    throw error("unknown benchmark '" + name + "'");
}

} // namespace phls
