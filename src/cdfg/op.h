// Operation kinds appearing in control/data-flow graphs.
//
// The set matches the DATE'03 paper's functional-unit library (Table 1):
// arithmetic {+, -, *, >} plus explicit input (`imp`) and output (`xpt`)
// interface operations, which the paper models as library modules with
// their own area and power.
#pragma once

#include <array>
#include <iosfwd>
#include <string>
#include <string_view>

namespace phls {

/// Kind of a CDFG operation node.
enum class op_kind {
    input,  ///< value import (paper module `input`/`imp`)
    output, ///< value export (paper module `output`/`xpt`)
    add,    ///< addition
    sub,    ///< subtraction
    mult,   ///< multiplication
    comp,   ///< comparison (>)
};

/// Number of distinct op kinds (for dense tables keyed by kind).
inline constexpr int op_kind_count = 6;

/// All kinds, in declaration order.
constexpr std::array<op_kind, op_kind_count> all_op_kinds()
{
    return {op_kind::input, op_kind::output, op_kind::add,
            op_kind::sub,   op_kind::mult,  op_kind::comp};
}

/// Dense index of `k` in [0, op_kind_count).
constexpr int op_kind_index(op_kind k) { return static_cast<int>(k); }

/// Canonical lower-case name ("input", "add", ...).
std::string_view op_kind_name(op_kind k);

/// Operator symbol as used by the paper's Table 1 ("+", "-", "*", ">",
/// "imp", "xpt").
std::string_view op_kind_symbol(op_kind k);

/// Parses a kind from either its name or its symbol; throws phls::error on
/// unknown text.
op_kind parse_op_kind(std::string_view text);

/// True for the two interface kinds.
constexpr bool is_io(op_kind k) { return k == op_kind::input || k == op_kind::output; }

/// True for two-operand arithmetic/comparison kinds.
constexpr bool is_binary(op_kind k)
{
    return k == op_kind::add || k == op_kind::sub || k == op_kind::mult || k == op_kind::comp;
}

std::ostream& operator<<(std::ostream& os, op_kind k);

} // namespace phls
