// Graphviz export of CDFGs, optionally annotated with a schedule (start
// times become rank labels) for visual debugging of the heuristics.
#pragma once

#include <string>
#include <vector>

#include "cdfg/graph.h"

namespace phls {

/// Options controlling the DOT rendering.
struct dot_options {
    bool show_kind = true;             ///< append the op symbol to labels
    std::vector<int> start_times;      ///< optional, per node; shown if sized
    std::vector<std::string> clusters; ///< optional, per node: FU instance name
};

/// Renders the graph in Graphviz DOT syntax.
std::string to_dot(const graph& g, const dot_options& options = {});

} // namespace phls
