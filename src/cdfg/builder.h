// Fluent construction of CDFGs.
//
//   graph_builder b("hal");
//   auto x  = b.input("x");
//   auto dx = b.input("dx");
//   auto t1 = b.mul("t1", x, dx);
//   b.output("out", t1);
//   graph g = b.build();          // validates
//
// Single-operand arithmetic overloads model a constant second operand
// (e.g. `3 * x` in the HAL benchmark).
#pragma once

#include <string>

#include "cdfg/graph.h"

namespace phls {

/// Incrementally builds and finally validates a graph.
class graph_builder {
public:
    explicit graph_builder(std::string name) : g_(std::move(name)) {}

    node_id input(const std::string& label);
    node_id output(const std::string& label, node_id src);

    node_id add(const std::string& label, node_id a, node_id b);
    node_id sub(const std::string& label, node_id a, node_id b);
    node_id mul(const std::string& label, node_id a, node_id b);
    node_id cmp(const std::string& label, node_id a, node_id b);

    /// Arithmetic with one constant operand.
    node_id add(const std::string& label, node_id a);
    node_id sub(const std::string& label, node_id a);
    node_id mul(const std::string& label, node_id a);
    node_id cmp(const std::string& label, node_id a);

    /// Generic form.
    node_id op(op_kind kind, const std::string& label, const std::vector<node_id>& operands);

    /// Validates and returns the finished graph; the builder is left empty.
    graph build();

    /// Access to the graph under construction (e.g. for queries mid-build).
    const graph& peek() const { return g_; }

private:
    graph g_;
};

} // namespace phls
