// Control/data-flow graph (CDFG) container.
//
// A CDFG is a DAG of operations.  Edges are data dependencies; parallel
// edges are allowed (an operation may consume the same value on both
// operand ports, e.g. x*x).  Constant operands are *not* represented as
// nodes, matching the classic HLS benchmark encodings, so a binary
// operation may legally have a single predecessor.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cdfg/op.h"
#include "support/ids.h"

namespace phls {

/// Allocation-free range over the dense node ids [0, count).  The hot
/// synthesis loops iterate nodes thousands of times per point;
/// graph::nodes() materialises a fresh vector per call, node_ids() is a
/// pair of integers.
class node_id_range {
public:
    class iterator {
    public:
        explicit constexpr iterator(int i) : i_(i) {}
        constexpr node_id operator*() const { return node_id(i_); }
        constexpr iterator& operator++()
        {
            ++i_;
            return *this;
        }
        constexpr bool operator!=(iterator o) const { return i_ != o.i_; }
        constexpr bool operator==(iterator o) const { return i_ == o.i_; }

    private:
        int i_;
    };

    explicit constexpr node_id_range(int count) : count_(count) {}
    constexpr iterator begin() const { return iterator(0); }
    constexpr iterator end() const { return iterator(count_); }
    constexpr int size() const { return count_; }

private:
    int count_;
};

/// Directed acyclic data-flow graph of operations.
class graph {
public:
    graph() = default;
    explicit graph(std::string name) : name_(std::move(name)) {}

    const std::string& name() const { return name_; }
    void set_name(std::string name) { name_ = std::move(name); }

    /// Adds a node; labels must be unique and non-empty.
    node_id add_node(op_kind kind, const std::string& label);

    /// Adds a data edge from producer `from` to consumer `to`.
    /// Parallel edges are allowed; self-loops are rejected.
    void add_edge(node_id from, node_id to);

    int node_count() const { return static_cast<int>(nodes_.size()); }
    int edge_count() const { return edge_count_; }

    op_kind kind(node_id n) const { return at(n).kind; }
    const std::string& label(node_id n) const { return at(n).label; }

    /// Predecessors (producers) of `n`, in insertion order, with multiplicity.
    const std::vector<node_id>& preds(node_id n) const { return at(n).preds; }
    /// Successors (consumers) of `n`, in insertion order, with multiplicity.
    const std::vector<node_id>& succs(node_id n) const { return at(n).succs; }

    /// All node ids, 0..node_count-1 (materialised; prefer node_ids()
    /// on hot paths).
    std::vector<node_id> nodes() const;

    /// All node ids as an allocation-free range.
    node_id_range node_ids() const { return node_id_range(node_count()); }

    /// Node with the given label, if any.
    std::optional<node_id> find(const std::string& label) const;

    /// Nodes of the given kind, in id order.
    std::vector<node_id> nodes_of_kind(op_kind k) const;

    /// Number of nodes of the given kind.
    int count_of_kind(op_kind k) const;

    /// True if the graph contains no cycle.
    bool is_acyclic() const;

    /// Deterministic topological order (smallest ready id first).
    /// Throws phls::error if the graph is cyclic.
    std::vector<node_id> topo_order() const;

    /// Structural validation; throws phls::error describing the first
    /// problem found.  Checks: acyclicity; inputs have no predecessors;
    /// outputs have exactly one predecessor and no successors; binary
    /// operations have one or two predecessors; no dead (unconsumed)
    /// non-output operation.
    void validate() const;

private:
    struct node {
        op_kind kind;
        std::string label;
        std::vector<node_id> preds;
        std::vector<node_id> succs;
    };

    const node& at(node_id n) const;
    node& at(node_id n);

    std::string name_;
    std::vector<node> nodes_;
    int edge_count_ = 0;
};

} // namespace phls
