// Reconstruction of the paper's CDFG benchmark set.
//
// The DATE'03 paper names three "traditional synthesis benchmark" CDFGs
// (hal, cosine, elliptic) without listing them; this module reconstructs
// them from the classic HLS literature (see DESIGN.md §2):
//
//  * hal      — the Paulin/Knight "HAL" differential-equation solver
//               (y'' + 3xy' + 3y = 0, one Euler step): 6 mult, 2 add,
//               2 sub, 1 comp; 5 inputs, 4 outputs.
//  * cosine   — an 8-point DCT-II in Loeffler style (three 3-multiplier
//               rotators + two c4 scalings + two sqrt2 scalings):
//               13 mult, 31 add/sub; 8 inputs, 8 outputs.
//  * elliptic — the 5th-order elliptic wave digital filter in its
//               standard HLS shape: 26 add, 8 mult; 8 inputs, 8 outputs.
//
// Delay sanity (input/output/add = 1 cycle; parallel mult = 2, serial
// mult = 4, per Table 1): critical paths are
//
//              all-parallel   all-serial      paper's T values
//   hal              8            12            10, 17
//   cosine          11            15            12, 15, 19
//   elliptic        16            22            22
//
// i.e. each of the paper's latency constraints is achievable, and the
// tightest one per benchmark forces parallel multipliers on the critical
// path — the area/power trade the paper investigates (cosine T=15 and
// elliptic T=22 equal the all-serial critical path exactly).
//
// Three extra benchmarks (fir16, ar_lattice, iir_biquad) extend the suite
// for tests, examples and the runtime bench.
#pragma once

#include <string>
#include <vector>

#include "cdfg/graph.h"

namespace phls {

/// HAL differential-equation benchmark (11 operations).
graph make_hal();

/// 8-point DCT-II, Loeffler style (44 operations).
graph make_cosine();

/// 5th-order elliptic wave filter (34 operations).
graph make_elliptic();

/// 16-tap FIR filter: 16 mult + 15-add reduction tree.
graph make_fir16();

/// 4-stage normalised AR lattice filter: 16 mult, 12 add.
graph make_ar_lattice();

/// Two cascaded direct-form-II biquad IIR sections: 10 mult, 8 add.
graph make_iir_biquad();

/// 8-point radix-2 FFT butterfly network (real-valued teaching form):
/// 12 butterflies in 3 stages, each 1 mult + 1 add + 1 sub.
graph make_fft8();

/// Names accepted by benchmark_by_name, in canonical order.
std::vector<std::string> benchmark_names();

/// Paper benchmarks only (hal, cosine, elliptic).
std::vector<std::string> paper_benchmark_names();

/// Builds a benchmark by name; throws phls::error for unknown names.
graph benchmark_by_name(const std::string& name);

} // namespace phls
