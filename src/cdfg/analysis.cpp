#include "cdfg/analysis.h"

#include <algorithm>

#include "support/errors.h"

namespace phls {

std::vector<int> earliest_starts(const graph& g, const delay_fn& delay)
{
    std::vector<int> start(static_cast<std::size_t>(g.node_count()), 0);
    for (node_id v : g.topo_order()) {
        int t = 0;
        for (node_id p : g.preds(v)) t = std::max(t, start[p.index()] + delay(p));
        start[v.index()] = t;
    }
    return start;
}

int critical_path_length(const graph& g, const delay_fn& delay)
{
    const std::vector<int> start = earliest_starts(g, delay);
    int length = 0;
    for (node_id v : g.node_ids()) length = std::max(length, start[v.index()] + delay(v));
    return length;
}

std::vector<int> latest_starts(const graph& g, const delay_fn& delay, int latency)
{
    if (latency < critical_path_length(g, delay)) return {};
    std::vector<int> start(static_cast<std::size_t>(g.node_count()), 0);
    const std::vector<node_id> order = g.topo_order();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const node_id v = *it;
        int latest = latency - delay(v);
        for (node_id s : g.succs(v)) latest = std::min(latest, start[s.index()] - delay(v));
        start[v.index()] = latest;
    }
    return start;
}

std::map<op_kind, int> op_histogram(const graph& g)
{
    std::map<op_kind, int> hist;
    for (node_id v : g.node_ids()) ++hist[g.kind(v)];
    return hist;
}

reachability::reachability(const graph& g)
{
    const std::size_t n = static_cast<std::size_t>(g.node_count());
    words_ = (n + 63) / 64;
    bits_.assign(n * words_, 0);
    // Process in reverse topological order: reach(v) = succs(v) plus their
    // reach sets, one word-wise OR per edge.
    const std::vector<node_id> order = g.topo_order();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const node_id v = *it;
        std::uint64_t* row = bits_.data() + v.index() * words_;
        for (node_id s : g.succs(v)) {
            row[s.index() / 64] |= std::uint64_t{1} << (s.index() % 64);
            const std::uint64_t* srow = bits_.data() + s.index() * words_;
            for (std::size_t w = 0; w < words_; ++w) row[w] |= srow[w];
        }
    }
}

} // namespace phls
