#include "cdfg/random_dag.h"

#include <string>
#include <vector>

#include "support/errors.h"
#include "support/rng.h"
#include "support/strings.h"

namespace phls {

graph random_dag(const random_dag_params& params, std::uint64_t seed)
{
    check(params.operations >= 1, "random_dag: need at least one operation");
    check(params.inputs >= 1, "random_dag: need at least one input");
    check(params.layers >= 1, "random_dag: need at least one layer");

    rng r(seed);
    graph g("random_" + std::to_string(seed));

    std::vector<node_id> inputs;
    for (int i = 0; i < params.inputs; ++i)
        inputs.push_back(g.add_node(op_kind::input, strf("in%d", i)));

    // Ops are assigned to layers 1..layers; an op in layer L draws its
    // operands from inputs or ops in layers < L, biased towards the
    // previous layer so the generated depth tracks `layers`.
    std::vector<std::vector<node_id>> by_layer(static_cast<std::size_t>(params.layers) + 1);
    by_layer[0] = inputs;

    std::vector<node_id> ops;
    for (int i = 0; i < params.operations; ++i) {
        const int layer = 1 + i * params.layers / params.operations;
        op_kind kind = op_kind::add;
        const double roll = r.uniform();
        if (roll < params.mult_fraction)
            kind = op_kind::mult;
        else if (roll < params.mult_fraction + params.comp_fraction)
            kind = op_kind::comp;
        else if (r.chance(0.4))
            kind = op_kind::sub;

        const node_id v = g.add_node(kind, strf("op%d", i));
        const auto pick_pred = [&]() -> node_id {
            // 70 % of operands come from the immediately preceding
            // non-empty layer, the rest from any earlier layer.
            int from_layer = layer - 1;
            if (!r.chance(0.7)) from_layer = r.uniform_int(0, layer - 1);
            while (by_layer[static_cast<std::size_t>(from_layer)].empty()) --from_layer;
            const std::vector<node_id>& pool = by_layer[static_cast<std::size_t>(from_layer)];
            return pool[static_cast<std::size_t>(
                r.uniform_int(0, static_cast<int>(pool.size()) - 1))];
        };
        g.add_edge(pick_pred(), v);
        if (r.chance(params.second_operand_probability)) g.add_edge(pick_pred(), v);
        by_layer[static_cast<std::size_t>(layer)].push_back(v);
        ops.push_back(v);
    }

    // Make sure every input feeds something: rewire unused inputs into the
    // earliest ops (as an extra operand if the op has only one).
    int next_op = 0;
    for (node_id in : inputs) {
        if (!g.succs(in).empty()) continue;
        // find an op with a free operand slot
        while (next_op < static_cast<int>(ops.size()) &&
               g.preds(ops[static_cast<std::size_t>(next_op)]).size() >= 2)
            ++next_op;
        if (next_op < static_cast<int>(ops.size()))
            g.add_edge(in, ops[static_cast<std::size_t>(next_op)]);
        else
            // no free slot anywhere: export the input through a dedicated op
            g.add_edge(in, g.add_node(op_kind::add, "pad_" + g.label(in)));
    }

    // Close every sink op with an output node.
    int out_index = 0;
    for (node_id v : g.nodes()) {
        if (g.kind(v) == op_kind::input || g.kind(v) == op_kind::output) continue;
        if (g.succs(v).empty()) {
            const node_id o = g.add_node(op_kind::output, strf("out%d", out_index++));
            g.add_edge(v, o);
        }
    }

    g.validate();
    return g;
}

} // namespace phls
