#include "cdfg/op.h"

#include <ostream>

#include "support/errors.h"
#include "support/strings.h"

namespace phls {

std::string_view op_kind_name(op_kind k)
{
    switch (k) {
    case op_kind::input: return "input";
    case op_kind::output: return "output";
    case op_kind::add: return "add";
    case op_kind::sub: return "sub";
    case op_kind::mult: return "mult";
    case op_kind::comp: return "comp";
    }
    return "?";
}

std::string_view op_kind_symbol(op_kind k)
{
    switch (k) {
    case op_kind::input: return "imp";
    case op_kind::output: return "xpt";
    case op_kind::add: return "+";
    case op_kind::sub: return "-";
    case op_kind::mult: return "*";
    case op_kind::comp: return ">";
    }
    return "?";
}

op_kind parse_op_kind(std::string_view text)
{
    const std::string t = to_lower(trim(text));
    for (op_kind k : all_op_kinds()) {
        if (t == op_kind_name(k) || t == op_kind_symbol(k)) return k;
    }
    // Accepted aliases seen in other HLS tool formats.
    if (t == "mul" || t == "mpy") return op_kind::mult;
    if (t == "cmp" || t == "lt" || t == "gt") return op_kind::comp;
    if (t == "in") return op_kind::input;
    if (t == "out") return op_kind::output;
    throw error("unknown operation kind '" + std::string(text) + "'");
}

std::ostream& operator<<(std::ostream& os, op_kind k) { return os << op_kind_name(k); }

} // namespace phls
