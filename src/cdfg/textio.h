// Plain-text CDFG format, so benchmarks and regression inputs can live as
// data files:
//
//   cdfg hal
//   node x input
//   node t1 mult
//   node out output
//   edge x t1
//   edge t1 out
//
// Lines starting with '#' and blank lines are ignored.  Edges may appear
// before both endpoints are declared only if declared later in the file;
// the parser resolves labels after reading everything.
#pragma once

#include <iosfwd>
#include <string>

#include "cdfg/graph.h"

namespace phls {

/// Parses a graph; throws phls::parse_error with a line number on bad input.
graph parse_cdfg(std::istream& is);

/// Parses from a string (convenience for tests).
graph parse_cdfg_string(const std::string& text);

/// Serialises in the format accepted by parse_cdfg.
void write_cdfg(const graph& g, std::ostream& os);

/// Serialises to a string.
std::string write_cdfg_string(const graph& g);

} // namespace phls
