// Deterministic fault injection for recovery-path testing.
//
// A *fault site* is a named probe compiled into a failure-prone code
// path (worker spawn, wire send/receive, cache save/load, manifest
// I/O).  Production code calls fault_fire("site.name") and, when the
// site is armed and the call is the site's nth hit, receives `true`
// exactly once — the caller then simulates the failure the site stands
// for (kill the worker, truncate the frame, tear the file).  Unarmed
// sites cost one relaxed atomic load, so the probes stay compiled in
// always: the recovery paths they exercise are ordinary ctest cases,
// not luck.
//
// Arming:
//
//   * environment — PHLS_FAULT="site:nth[,site:nth...]" parsed once at
//     process start (the CI chaos smoke drives the CLI this way);
//   * API — fault_arm("site:nth") from tests, replacing any previous
//     arming and resetting every hit counter.
//
// `nth` is 1-based: "shard.worker.kill:3" fires on the third hit of
// that site and never again.  Counters are per process — a forked
// child inherits the arming and the counts at fork time, then counts
// its own hits.  The armed site list is append-only while armed (no
// site is ever disarmed individually), so tests reset with
// fault_clear().
//
// The site names in use are documented in docs/SERVE.md ("Fault
// tolerance"); tests assert on fault_hits() to prove an injection
// actually happened rather than silently missing its path.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>

namespace phls {

namespace detail {
/// Number of armed fault sites; 0 keeps every probe on the fast path.
extern std::atomic<int> fault_armed_sites;
bool fault_fire_slow(const char* site);
} // namespace detail

/// Probes the named site.  Returns true exactly on the armed nth hit
/// (once); false always when the site is unarmed.  Thread-safe.
inline bool fault_fire(const char* site)
{
    if (detail::fault_armed_sites.load(std::memory_order_relaxed) == 0) return false;
    return detail::fault_fire_slow(site);
}

/// Arms sites from a spec: "site:nth" or a comma-separated list, where
/// nth >= 1 is the hit that fires.  Replaces any previous arming and
/// zeroes every counter; an empty spec is fault_clear().
/// @throws phls::error on a malformed spec.
void fault_arm(const std::string& spec);

/// Disarms every site and zeroes every counter.
void fault_clear();

/// Hits recorded for `site` since the last (re)arming.  Counts are only
/// kept while at least one site is armed; unarmed processes return 0.
std::size_t fault_hits(const std::string& site);

/// True iff `site` already fired its injection.
bool fault_fired(const std::string& site);

} // namespace phls
