// Small string utilities used by the text front-ends and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace phls {

/// printf-style formatting into a std::string.
std::string strf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Removes leading and trailing whitespace.
std::string_view trim(std::string_view s);

/// Splits on `sep`, trimming each piece; empty pieces are kept.
std::vector<std::string> split(std::string_view s, char sep);

/// Splits on runs of whitespace; empty pieces are dropped.
std::vector<std::string> split_ws(std::string_view s);

/// True if `s` consists only of whitespace or starts (after whitespace)
/// with the comment character '#'.
bool is_blank_or_comment(std::string_view s);

/// Lower-cases ASCII characters.
std::string to_lower(std::string_view s);

/// True if `s` ends with `suffix` (used for file-extension dispatch:
/// ".cdfg", ".csv", ".dot", ".v").  Empty suffixes match.
inline bool ends_with(std::string_view s, std::string_view suffix)
{
    return s.ends_with(suffix);
}

/// Parses an integer; throws phls::error naming `what` on failure.
int parse_int(std::string_view s, const std::string& what);

/// Parses a double; throws phls::error naming `what` on failure.
double parse_double(std::string_view s, const std::string& what);

} // namespace phls
