// Error types and precondition checks shared by every phls module.
//
// Policy (see DESIGN.md): malformed *inputs* (cyclic graphs, unknown
// operation names, negative areas, ...) throw phls::error; *infeasible*
// synthesis constraint combinations are expected outcomes and are reported
// through result objects, never through exceptions.
#pragma once

#include <stdexcept>
#include <string>

namespace phls {

/// Base class of every exception thrown by the library.
class error : public std::runtime_error {
public:
    explicit error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a text file (CDFG or module library) fails to parse.
class parse_error : public error {
public:
    parse_error(const std::string& what, int line)
        : error("line " + std::to_string(line) + ": " + what), line_(line) {}

    int line() const { return line_; }

private:
    int line_;
};

/// Throws phls::error with `what` unless `condition` holds.
inline void check(bool condition, const std::string& what)
{
    if (!condition) throw error(what);
}

} // namespace phls
