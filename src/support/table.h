// ASCII table rendering for reports and benchmark output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace phls {

/// Column alignment inside an ascii_table.
enum class align { left, right };

/// Accumulates rows of strings and renders them as an aligned ASCII table.
///
/// Used by the bench binaries to regenerate the paper's Table 1 and by the
/// datapath/report printers.
class ascii_table {
public:
    /// Creates a table with the given column headers (all right-aligned by
    /// default except the first column).
    explicit ascii_table(std::vector<std::string> headers);

    /// Overrides the alignment of column `col`.
    void set_align(std::size_t col, align a);

    /// Appends a row; must have exactly as many cells as there are headers.
    void add_row(std::vector<std::string> cells);

    /// Appends a horizontal separator line.
    void add_separator();

    std::size_t row_count() const { return rows_.size(); }

    /// Renders the table (header, separator, rows).
    void print(std::ostream& os) const;

    /// Renders to a string, for tests.
    std::string to_string() const;

private:
    struct row {
        bool separator = false;
        std::vector<std::string> cells;
    };

    std::vector<std::string> headers_;
    std::vector<align> aligns_;
    std::vector<row> rows_;
};

} // namespace phls
