// Minimal deterministic fork/join helper for the intra-point parallel
// kernels (kernel_tuning::intra_threads).
//
// The design constraint is determinism, not peak throughput: callers
// score independent work items into pre-sized result slots and then
// apply the results sequentially in item order, so the outcome is
// byte-identical for every thread count (including 1).  A static block
// partition keeps the item -> thread mapping a pure function of
// (count, threads); there is no work stealing and no shared mutable
// state beyond the disjoint result slots.
#pragma once

#include <algorithm>
#include <cstddef>
#include <thread>
#include <vector>

namespace phls {

/// Runs fn(i) for every i in [0, count), fanning out over `threads`
/// std::threads in contiguous index blocks (thread k owns one block).
/// fn must only write state private to item i (e.g. results[i]); it is
/// called exactly once per index.  threads <= 1 runs inline.  Joins all
/// workers before returning; exceptions escaping fn on a worker thread
/// terminate, so callers keep fallible work on the sequential path.
template <typename Fn> void parallel_for(std::size_t count, int threads, Fn&& fn)
{
    if (threads <= 1 || count < 2) {
        for (std::size_t i = 0; i < count; ++i) fn(i);
        return;
    }
    const std::size_t workers = std::min<std::size_t>(static_cast<std::size_t>(threads), count);
    const std::size_t chunk = (count + workers - 1) / workers;
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t k = 0; k < workers; ++k) {
        const std::size_t lo = k * chunk;
        const std::size_t hi = std::min(count, lo + chunk);
        if (lo >= hi) break;
        pool.emplace_back([lo, hi, &fn] {
            for (std::size_t i = lo; i < hi; ++i) fn(i);
        });
    }
    for (std::thread& t : pool) t.join();
}

} // namespace phls
