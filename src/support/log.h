// Tiny leveled logger.  The synthesis heuristics can trace every greedy
// decision at `debug` level, which the ablation bench and the tests use to
// inspect behaviour without coupling to internals.
#pragma once

#include <sstream>
#include <string>

namespace phls {

enum class log_level { debug, info, warning, error, off };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(log_level level);
log_level get_log_level();

/// Emits one log line to stderr if `level` passes the threshold.
void log_message(log_level level, const std::string& message);

namespace detail {

class log_line {
public:
    explicit log_line(log_level level) : level_(level) {}
    log_line(const log_line&) = delete;
    log_line& operator=(const log_line&) = delete;
    ~log_line() { log_message(level_, stream_.str()); }

    template <typename T>
    log_line& operator<<(const T& value)
    {
        stream_ << value;
        return *this;
    }

private:
    log_level level_;
    std::ostringstream stream_;
};

} // namespace detail

inline detail::log_line log_debug() { return detail::log_line(log_level::debug); }
inline detail::log_line log_info() { return detail::log_line(log_level::info); }
inline detail::log_line log_warning() { return detail::log_line(log_level::warning); }

} // namespace phls
