// Strongly typed integer identifiers.
//
// The library indexes nodes, modules and functional-unit instances by
// dense integers.  Wrapping them in distinct types prevents the classic
// bug of passing a node id where an instance id is expected.
#pragma once

#include <cstddef>
#include <functional>

namespace phls {

/// A dense integer id tagged with a phantom type.
template <typename Tag>
class typed_id {
public:
    constexpr typed_id() = default;
    constexpr explicit typed_id(int value) : value_(value) {}

    constexpr int value() const { return value_; }
    constexpr bool valid() const { return value_ >= 0; }

    /// Index into a std::vector keyed by this id family.
    constexpr std::size_t index() const { return static_cast<std::size_t>(value_); }

    friend constexpr bool operator==(typed_id a, typed_id b) { return a.value_ == b.value_; }
    friend constexpr bool operator!=(typed_id a, typed_id b) { return a.value_ != b.value_; }
    friend constexpr bool operator<(typed_id a, typed_id b) { return a.value_ < b.value_; }
    friend constexpr bool operator>(typed_id a, typed_id b) { return a.value_ > b.value_; }
    friend constexpr bool operator<=(typed_id a, typed_id b) { return a.value_ <= b.value_; }
    friend constexpr bool operator>=(typed_id a, typed_id b) { return a.value_ >= b.value_; }

private:
    int value_ = -1;
};

struct node_tag {};
struct module_tag {};
struct instance_tag {};
struct register_tag {};

/// Identifies an operation node in a CDFG.
using node_id = typed_id<node_tag>;
/// Identifies a module type in a functional-unit library.
using module_id = typed_id<module_tag>;
/// Identifies an allocated functional-unit instance in a datapath.
using instance_id = typed_id<instance_tag>;
/// Identifies a register allocated by the RTL back-end.
using register_id = typed_id<register_tag>;

} // namespace phls

template <typename Tag>
struct std::hash<phls::typed_id<Tag>> {
    std::size_t operator()(phls::typed_id<Tag> id) const
    {
        return std::hash<int>()(id.value());
    }
};
