#include "support/log.h"

#include <iostream>

namespace phls {

namespace {

log_level g_level = log_level::warning;

const char* level_name(log_level level)
{
    switch (level) {
    case log_level::debug: return "debug";
    case log_level::info: return "info";
    case log_level::warning: return "warning";
    case log_level::error: return "error";
    case log_level::off: return "off";
    }
    return "?";
}

} // namespace

void set_log_level(log_level level) { g_level = level; }

log_level get_log_level() { return g_level; }

void log_message(log_level level, const std::string& message)
{
    if (level < g_level || g_level == log_level::off) return;
    std::cerr << "[phls:" << level_name(level) << "] " << message << '\n';
}

} // namespace phls
