#include "support/argparse.h"

#include <sstream>

#include "support/errors.h"
#include "support/strings.h"

namespace phls {

void arg_parser::add_flag(const std::string& name, const std::string& short_name,
                          const std::string& help)
{
    spec s;
    s.name = name;
    s.short_name = short_name;
    s.help = help;
    s.is_flag = true;
    specs_.push_back(std::move(s));
}

void arg_parser::add_option(const std::string& name, const std::string& short_name,
                            const std::string& help, const std::string& fallback)
{
    spec s;
    s.name = name;
    s.short_name = short_name;
    s.help = help;
    s.fallback = fallback;
    specs_.push_back(std::move(s));
}

arg_parser::spec* arg_parser::find(const std::string& token)
{
    for (spec& s : specs_)
        if (token == s.name || (!s.short_name.empty() && token == s.short_name)) return &s;
    return nullptr;
}

const arg_parser::spec* arg_parser::find_registered(const std::string& name) const
{
    for (const spec& s : specs_)
        if (name == s.name || (!s.short_name.empty() && name == s.short_name)) return &s;
    return nullptr;
}

bool arg_parser::parse(const std::vector<std::string>& args)
{
    error_.clear();
    positionals_.clear();
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& token = args[i];
        if (token.size() >= 1 && token[0] == '-' && token != "-") {
            // Support --name=value in one token.
            const std::size_t eq = token.find('=');
            const std::string name = eq == std::string::npos ? token : token.substr(0, eq);
            spec* s = find(name);
            if (!s) {
                error_ = "unknown option '" + name + "'";
                return false;
            }
            s->present = true;
            if (s->is_flag) {
                if (eq != std::string::npos) {
                    error_ = "flag '" + name + "' does not take a value";
                    return false;
                }
                continue;
            }
            if (eq != std::string::npos) {
                s->value = token.substr(eq + 1);
            } else {
                if (i + 1 >= args.size()) {
                    error_ = "option '" + name + "' needs a value";
                    return false;
                }
                s->value = args[++i];
            }
        } else {
            positionals_.push_back(token);
        }
    }
    return true;
}

bool arg_parser::has(const std::string& name) const
{
    const spec* s = find_registered(name);
    check(s != nullptr, "argparse: '" + name + "' was never registered");
    return s->present;
}

std::string arg_parser::get(const std::string& name) const
{
    const spec* s = find_registered(name);
    check(s != nullptr, "argparse: '" + name + "' was never registered");
    check(!s->is_flag, "argparse: '" + name + "' is a flag, not an option");
    return s->present ? s->value : s->fallback;
}

int arg_parser::get_int(const std::string& name) const
{
    return parse_int(get(name), name);
}

double arg_parser::get_double(const std::string& name) const
{
    return parse_double(get(name), name);
}

std::string arg_parser::usage() const
{
    std::ostringstream os;
    os << "usage: " << program_ << " [options]\n";
    for (const spec& s : specs_) {
        os << "  " << s.name;
        if (!s.short_name.empty()) os << ", " << s.short_name;
        if (!s.is_flag) os << " <value>";
        os << "  " << s.help;
        if (!s.is_flag && !s.fallback.empty()) os << " (default: " << s.fallback << ")";
        os << '\n';
    }
    return os.str();
}

} // namespace phls
