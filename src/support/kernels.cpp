#include "support/kernels.h"

namespace phls {

kernel_tuning& kernel_knobs()
{
    static kernel_tuning knobs;
    return knobs;
}

kernel_timers& kernel_timing()
{
    static kernel_timers timers;
    return timers;
}

} // namespace phls
