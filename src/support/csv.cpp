#include "support/csv.h"

#include <fstream>
#include <ostream>

#include "support/errors.h"

namespace phls {

csv_writer::csv_writer(std::vector<std::string> header) : header_(std::move(header))
{
    check(!header_.empty(), "csv_writer needs at least one column");
}

void csv_writer::add_row(std::vector<std::string> cells)
{
    check(cells.size() == header_.size(), "csv_writer::add_row: cell count mismatch");
    rows_.push_back(std::move(cells));
}

std::string csv_writer::escape(const std::string& cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"') out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void csv_writer::print(std::ostream& os) const
{
    const auto print_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i > 0) os << ',';
            os << escape(cells[i]);
        }
        os << '\n';
    };
    print_row(header_);
    for (const auto& r : rows_) print_row(r);
}

void csv_writer::save(const std::string& path) const
{
    std::ofstream os(path);
    check(static_cast<bool>(os), "cannot open '" + path + "' for writing");
    print(os);
}

} // namespace phls
