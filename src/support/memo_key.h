// Canonical byte-encoding helpers for memoisation keys.
//
// The explore_cache keys its deeper memo levels by exact values: doubles
// by bit pattern (two caps differing in the 17th digit are different
// scheduling problems) and strings length-prefixed (so adjacent fields
// cannot run together and collide).  Both the committed-window key
// (explore_cache.cpp) and the report fingerprint (flow.cpp) use these,
// so the encoding cannot silently diverge between levels.
#pragma once

#include <cstring>
#include <string>

namespace phls {

/// Appends the raw bytes of `v` (widened to long) to `key`.
inline void key_int(std::string& key, long v)
{
    char bytes[sizeof v];
    std::memcpy(bytes, &v, sizeof v);
    key.append(bytes, sizeof v);
}

/// Appends the bit pattern of `v` to `key`.
inline void key_double(std::string& key, double v)
{
    char bytes[sizeof v];
    std::memcpy(bytes, &v, sizeof v);
    key.append(bytes, sizeof v);
}

/// Appends `s` length-prefixed to `key`.
inline void key_str(std::string& key, const std::string& s)
{
    key_int(key, static_cast<long>(s.size()));
    key += s;
}

} // namespace phls
