// Canonical byte-encoding helpers for memoisation keys and cache files.
//
// The explore_cache keys its deeper memo levels by exact values: doubles
// by bit pattern (two caps differing in the 17th digit are different
// scheduling problems) and strings length-prefixed (so adjacent fields
// cannot run together and collide).  Both the committed-window key
// (explore_cache.cpp) and the report fingerprint (flow.cpp) use these,
// so the encoding cannot silently diverge between levels; the persisted
// cache file (explore_cache::save/load) reuses the same encoding via the
// key_reader decoders below, so what is a valid key in memory is a valid
// record on disk.
//
// Degenerate doubles are *normalised* before encoding so fingerprints
// are well-defined on them:
//
//   * -0.0 encodes as +0.0 — the two compare equal everywhere the
//     library reads a cap or cost, so they are the same scheduling
//     problem and must collide (a distinct key would only cost a
//     redundant recompute, but a collision is the correct semantics);
//   * every NaN encodes as one canonical quiet NaN — all NaN payloads
//     behave identically in comparisons (always false), so two NaN caps
//     describe the same (degenerate) problem and must collide;
//   * +inf and -inf keep their (distinct) bit patterns — they compare
//     differently and are genuinely different inputs (+inf is the
//     canonical `unbounded_power`).
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>

#include "support/errors.h"

namespace phls {

/// Appends the raw bytes of `v` (widened to long) to `key`.
inline void key_int(std::string& key, long v)
{
    char bytes[sizeof v];
    std::memcpy(bytes, &v, sizeof v);
    key.append(bytes, sizeof v);
}

/// The canonical bit pattern `key_double` encodes for `v`: the value's
/// own bits, except that -0.0 maps to +0.0 and every NaN maps to the
/// default quiet NaN (see the normalisation rules above).
inline std::uint64_t key_double_bits(double v)
{
    if (std::isnan(v)) v = std::numeric_limits<double>::quiet_NaN();
    if (v == 0.0) v = 0.0; // -0.0 == 0.0, so this canonicalises the sign
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    return bits;
}

/// Appends the normalised bit pattern of `v` to `key`.
inline void key_double(std::string& key, double v)
{
    const std::uint64_t bits = key_double_bits(v);
    char bytes[sizeof bits];
    std::memcpy(bytes, &bits, sizeof bits);
    key.append(bytes, sizeof bits);
}

/// Appends `s` length-prefixed to `key`.
inline void key_str(std::string& key, const std::string& s)
{
    key_int(key, static_cast<long>(s.size()));
    key += s;
}

/// Sequential decoder for byte strings built with key_int/key_double/
/// key_str — the read half of the canonical encoding, used by
/// explore_cache::load.  Every read throws phls::error on truncation
/// instead of returning garbage, so a cut-short cache file fails loudly.
class key_reader {
public:
    explicit key_reader(const std::string& bytes) : bytes_(bytes) {}
    /// The reader only borrows the bytes; a temporary would dangle.
    explicit key_reader(std::string&&) = delete;

    long read_int()
    {
        long v = 0;
        raw(&v, sizeof v);
        return v;
    }

    double read_double()
    {
        std::uint64_t bits = 0;
        raw(&bits, sizeof bits);
        double v = 0.0;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    std::string read_str()
    {
        const long n = read_int();
        check(n >= 0 && static_cast<std::size_t>(n) <= bytes_.size() - pos_,
              "memo record truncated: string runs past the end");
        std::string s = bytes_.substr(pos_, static_cast<std::size_t>(n));
        pos_ += static_cast<std::size_t>(n);
        return s;
    }

    /// Bytes not yet consumed.
    std::size_t remaining() const { return bytes_.size() - pos_; }

private:
    void raw(void* out, std::size_t n)
    {
        check(n <= bytes_.size() - pos_, "memo record truncated");
        std::memcpy(out, bytes_.data() + pos_, n);
        pos_ += n;
    }

    const std::string& bytes_;
    std::size_t pos_ = 0;
};

} // namespace phls
