// Ablation knobs and region timers for the synthesis inner kernels.
//
// PR 5 optimised three inner loops -- power-feasibility probing
// (power_tracker::next_fit), candidate enumeration across merge-loop
// iterations (synth/candidates.h) and merge rollback (the undo log in
// clique.cpp).  PR 8 rearchitected the candidate hot path around a
// struct-of-arrays arena (synth/arena.h): CSR adjacency, per-kind node
// buckets and O(1) per-node clamp bounds replace the per-combo pointer
// chases, the power ledger answers probes from contiguous cycle slabs
// with branch-free tree descents, and candidate scoring can fan out
// over intra-point worker threads with a fixed application order.
// Every optimised path is gated byte-identical to the reference
// implementation it replaced; the reference paths are retained behind
// these knobs so tests and bench_kernels can compare results and wall
// time (the same pattern as explore_cache::set_committed_memo /
// set_report_memo for the memo levels).
//
// The knobs are process-global mutable state: set them *before* starting
// any flow/batch work and leave them alone while synthesis runs (they
// are read concurrently by worker threads, never written by the
// library).  Results are byte-identical in every combination -- only
// wall time and the kernel timers change.
#pragma once

namespace phls {

/// Selects the optimised or the reference implementation per kernel.
struct kernel_tuning {
    /// power_tracker::next_fit skip-ahead probing in pasap and in the
    /// compatibility graph's find_slot.  Off = the seed-era linear
    /// `++offset` / `++t` probes.
    bool skip_probe = true;
    /// Incremental candidate maintenance across merge-loop iterations
    /// (synth/candidates.h).  Off = full enumerate_candidates() per
    /// iteration.
    bool incremental_candidates = true;
    /// O(changes) undo-log rollback of a failed merge decision.  Off =
    /// the full `partition_state` deep copy per attempt.
    bool undo_log = true;
    /// Struct-of-arrays candidate scoring (synth/arena.h): CSR
    /// adjacency + per-kind buckets + O(1) precomputed clamp bounds and
    /// standalone areas, and a negative-saving precheck that skips the
    /// slot probes of combos the reference path times and then erases.
    /// Only takes effect together with incremental_candidates (the
    /// arena is an engine of the candidate store).  Off = the PR-5
    /// per-combo neighbour walks.
    bool soa_arena = true;
    /// Dense power-ledger queries: fits() scans the contiguous
    /// per-cycle slab directly and the headroom-tree descents run
    /// iteratively (branch-free child steps) instead of recursing.
    /// Off = the PR-5 at()-per-cycle scan and recursive descents.
    bool dense_power = true;
    /// Intra-point parallelism: candidate (re-)scoring inside ONE
    /// partitioning run fans out over this many worker threads.
    /// Scoring is pure and results are applied in the fixed sequential
    /// combo order, so every thread count produces byte-identical
    /// decisions.  1 = sequential (default); requires soa_arena +
    /// incremental_candidates to take effect.
    int intra_threads = 1;
    /// Debug/testing: with incremental_candidates on, ALSO run the
    /// reference enumeration every iteration and throw phls::error if
    /// the two paths would pick different candidates.  Slow; tests only.
    bool cross_check = false;
};

/// The process-global knob block (defaults: everything optimised).
kernel_tuning& kernel_knobs();

/// Wall-time accumulators for the kernel regions inside the merge loop,
/// filled only while `collect` is true.  Single-threaded use only (the
/// bench drives one partitioning at a time); reset() between runs.
/// run_clique_partitioning samples `collect` ONCE per synthesis run --
/// flipping it while a run is in flight affects the next run, and the
/// disabled-timing path costs exactly one branch per region.
struct kernel_timers {
    bool collect = false;
    long long candidates_ns = 0; ///< enumeration / store maintenance + pick
    long long rollback_ns = 0;   ///< state capture + restore (both paths)
    void reset() { candidates_ns = rollback_ns = 0; }
};

/// The process-global timer block.
kernel_timers& kernel_timing();

} // namespace phls
