#include "support/strings.h"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

#include "support/errors.h"

namespace phls {

std::string strf(const char* fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::va_list args_copy;
    va_copy(args_copy, args);
    const int n = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<std::size_t>(n));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    }
    va_end(args_copy);
    return out;
}

std::string_view trim(std::string_view s)
{
    std::size_t begin = 0;
    while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
    std::size_t end = s.size();
    while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
    return s.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = s.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(trim(s.substr(start)));
            break;
        }
        out.emplace_back(trim(s.substr(start, pos - start)));
        start = pos + 1;
    }
    return out;
}

std::vector<std::string> split_ws(std::string_view s)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
        std::size_t j = i;
        while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
        if (j > i) out.emplace_back(s.substr(i, j - i));
        i = j;
    }
    return out;
}

bool is_blank_or_comment(std::string_view s)
{
    const std::string_view t = trim(s);
    return t.empty() || t.front() == '#';
}

std::string to_lower(std::string_view s)
{
    std::string out(s);
    for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

int parse_int(std::string_view s, const std::string& what)
{
    s = trim(s);
    int value = 0;
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
    check(ec == std::errc() && ptr == s.data() + s.size(),
          "expected integer for " + what + ", got '" + std::string(s) + "'");
    return value;
}

double parse_double(std::string_view s, const std::string& what)
{
    s = trim(s);
    // std::from_chars<double> is available in libstdc++ 11+, but accept a
    // strtod fallback-free implementation for clarity.
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
    check(ec == std::errc() && ptr == s.data() + s.size(),
          "expected number for " + what + ", got '" + std::string(s) + "'");
    return value;
}

} // namespace phls
