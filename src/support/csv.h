// Minimal CSV writer; the Figure-2 bench emits machine-readable series
// next to its human-readable output so the curves can be re-plotted.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace phls {

/// Writes rows of cells as RFC-4180-style CSV (quoting only when needed).
class csv_writer {
public:
    explicit csv_writer(std::vector<std::string> header);

    void add_row(std::vector<std::string> cells);

    std::size_t row_count() const { return rows_.size(); }

    void print(std::ostream& os) const;

    /// Writes to `path`; throws phls::error if the file cannot be opened.
    void save(const std::string& path) const;

private:
    static std::string escape(const std::string& cell);

    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace phls
