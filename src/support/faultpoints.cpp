#include "support/faultpoints.h"

#include <cstdlib>
#include <map>
#include <mutex>

#include "support/errors.h"

namespace phls {

namespace {

struct site_state {
    std::size_t fire_on = 0; ///< 1-based hit that fires; 0 = observe only
    std::size_t hits = 0;
    bool fired = false;
};

struct fault_registry {
    std::mutex mutex;
    std::map<std::string, site_state> sites;
};

fault_registry& registry()
{
    static fault_registry r;
    return r;
}

void arm_locked(fault_registry& r, const std::string& spec)
{
    r.sites.clear();
    std::size_t armed = 0;
    std::size_t start = 0;
    while (start <= spec.size()) {
        const std::size_t comma = spec.find(',', start);
        const std::string entry =
            spec.substr(start, comma == std::string::npos ? spec.size() - start
                                                          : comma - start);
        start = comma == std::string::npos ? spec.size() + 1 : comma + 1;
        if (entry.empty()) continue;
        const std::size_t colon = entry.rfind(':');
        check(colon != std::string::npos && colon > 0 && colon + 1 < entry.size(),
              "malformed fault spec '" + entry + "' (want site:nth)");
        const std::string site = entry.substr(0, colon);
        char* end = nullptr;
        const long nth = std::strtol(entry.c_str() + colon + 1, &end, 10);
        check(end && *end == '\0' && nth >= 1,
              "malformed fault spec '" + entry + "': nth must be an integer >= 1");
        r.sites[site].fire_on = static_cast<std::size_t>(nth);
        ++armed;
    }
    detail::fault_armed_sites.store(static_cast<int>(armed),
                                    std::memory_order_relaxed);
}

/// Arms from $PHLS_FAULT once, before main() — the CLI chaos path.  A
/// malformed env spec aborts loudly here rather than silently running
/// the sweep fault-free.
const bool env_armed = [] {
    const char* spec = std::getenv("PHLS_FAULT");
    if (spec && *spec) arm_locked(registry(), spec);
    return true;
}();

} // namespace

namespace detail {

std::atomic<int> fault_armed_sites{0};

bool fault_fire_slow(const char* site)
{
    fault_registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.sites.find(site);
    if (it == r.sites.end()) {
        // Record the hit anyway: tests can assert a probe was reached
        // even when arming a different site.
        ++r.sites[site].hits;
        return false;
    }
    site_state& s = it->second;
    ++s.hits;
    if (s.fired || s.fire_on == 0 || s.hits != s.fire_on) return false;
    s.fired = true;
    return true;
}

} // namespace detail

void fault_arm(const std::string& spec)
{
    fault_registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    arm_locked(r, spec);
}

void fault_clear()
{
    fault_registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.sites.clear();
    detail::fault_armed_sites.store(0, std::memory_order_relaxed);
}

std::size_t fault_hits(const std::string& site)
{
    fault_registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.sites.find(site);
    return it == r.sites.end() ? 0 : it->second.hits;
}

bool fault_fired(const std::string& site)
{
    fault_registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.sites.find(site);
    return it != r.sites.end() && it->second.fired;
}

} // namespace phls
