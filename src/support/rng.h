// Deterministic random number generation for property tests and the
// random-DAG workload generator.  splitmix64 keeps results identical
// across standard libraries (std::mt19937 would too, but the distribution
// adaptors are not portable).
#pragma once

#include <cstdint>

namespace phls {

/// Deterministic 64-bit generator (splitmix64).
class rng {
public:
    explicit rng(std::uint64_t seed) : state_(seed) {}

    std::uint64_t next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
    int uniform_int(int lo, int hi)
    {
        const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<int>(next() % span);
    }

    /// Uniform double in [0, 1).
    double uniform()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /// Bernoulli draw with probability p.
    bool chance(double p) { return uniform() < p; }

private:
    std::uint64_t state_;
};

} // namespace phls
