// Minimal command-line argument parser for the phls CLI tool.
//
// Supports long/short named options with values (--latency 17, -T 17),
// boolean flags (--verbose), and positional arguments.  Unknown options
// and missing required values are reported, not ignored.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace phls {

/// Declarative option set + parsed values.
class arg_parser {
public:
    explicit arg_parser(std::string program) : program_(std::move(program)) {}

    /// Registers a boolean flag, e.g. add_flag("--verify", "-v", "run checks").
    /// `short_name` may be empty.
    void add_flag(const std::string& name, const std::string& short_name,
                  const std::string& help);

    /// Registers an option that takes a value; `fallback` (may be empty)
    /// is returned by get() when the option is absent.
    void add_option(const std::string& name, const std::string& short_name,
                    const std::string& help, const std::string& fallback = "");

    /// Parses argv-style tokens (without the program name).  Returns
    /// false and sets error() on unknown options or missing values.
    bool parse(const std::vector<std::string>& args);

    const std::string& error() const { return error_; }

    /// True if the flag/option appeared on the command line.
    bool has(const std::string& name) const;

    /// Value of an option (or its fallback).  Throws phls::error for
    /// unregistered names (programming error).
    std::string get(const std::string& name) const;
    int get_int(const std::string& name) const;
    double get_double(const std::string& name) const;

    const std::vector<std::string>& positionals() const { return positionals_; }

    /// Usage text listing all registered options.
    std::string usage() const;

private:
    struct spec {
        std::string name;
        std::string short_name;
        std::string help;
        std::string fallback;
        bool is_flag = false;
        bool present = false;
        std::string value;
    };

    spec* find(const std::string& token);
    const spec* find_registered(const std::string& name) const;

    std::string program_;
    std::vector<spec> specs_;
    std::vector<std::string> positionals_;
    std::string error_;
};

} // namespace phls
