#include "support/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "support/errors.h"

namespace phls {

ascii_table::ascii_table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    check(!headers_.empty(), "ascii_table needs at least one column");
    aligns_.assign(headers_.size(), align::right);
    aligns_[0] = align::left;
}

void ascii_table::set_align(std::size_t col, align a)
{
    check(col < aligns_.size(), "ascii_table::set_align: column out of range");
    aligns_[col] = a;
}

void ascii_table::add_row(std::vector<std::string> cells)
{
    check(cells.size() == headers_.size(),
          "ascii_table::add_row: expected " + std::to_string(headers_.size()) + " cells, got " +
              std::to_string(cells.size()));
    rows_.push_back(row{false, std::move(cells)});
}

void ascii_table::add_separator()
{
    rows_.push_back(row{true, {}});
}

void ascii_table::print(std::ostream& os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const row& r : rows_) {
        if (r.separator) continue;
        for (std::size_t c = 0; c < r.cells.size(); ++c)
            widths[c] = std::max(widths[c], r.cells[c].size());
    }

    const auto print_cells = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c > 0) os << "  ";
            const std::size_t pad = widths[c] - cells[c].size();
            if (aligns_[c] == align::right) os << std::string(pad, ' ');
            os << cells[c];
            if (aligns_[c] == align::left && c + 1 < cells.size()) os << std::string(pad, ' ');
        }
        os << '\n';
    };
    const auto print_rule = [&] {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            if (c > 0) os << "  ";
            os << std::string(widths[c], '-');
        }
        os << '\n';
    };

    print_cells(headers_);
    print_rule();
    for (const row& r : rows_) {
        if (r.separator)
            print_rule();
        else
            print_cells(r.cells);
    }
}

std::string ascii_table::to_string() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

} // namespace phls
