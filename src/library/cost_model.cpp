#include "library/cost_model.h"

#include "support/strings.h"

namespace phls {

std::string describe(const cost_model& cm)
{
    if (!cm.include_interconnect) return "cost model: FU area only";
    return strf("cost model: FU area + %.1f/register + %.1f/extra mux input",
                cm.register_area, cm.mux_area_per_extra_input);
}

} // namespace phls
