#include "library/library.h"

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "support/errors.h"
#include "support/strings.h"

namespace phls {

module_id module_library::add(fu_module m)
{
    validate_module(m);
    check(!find(m.name).has_value(), "duplicate module name '" + m.name + "'");
    modules_.push_back(std::move(m));
    return module_id(static_cast<int>(modules_.size()) - 1);
}

const fu_module& module_library::module(module_id id) const
{
    check(id.valid() && id.index() < modules_.size(), "invalid module id");
    return modules_[id.index()];
}

std::optional<module_id> module_library::find(const std::string& name) const
{
    for (int i = 0; i < size(); ++i)
        if (modules_[static_cast<std::size_t>(i)].name == name) return module_id(i);
    return std::nullopt;
}

std::vector<module_id> module_library::candidates_for(op_kind k) const
{
    std::vector<module_id> out;
    for (int i = 0; i < size(); ++i)
        if (modules_[static_cast<std::size_t>(i)].supports(k)) out.push_back(module_id(i));
    return out;
}

std::optional<module_id> module_library::fastest_for(op_kind k, double max_power) const
{
    std::optional<module_id> best;
    for (int i = 0; i < size(); ++i) {
        const fu_module& m = modules_[static_cast<std::size_t>(i)];
        if (!m.supports(k) || m.power > max_power) continue;
        if (!best) {
            best = module_id(i);
            continue;
        }
        const fu_module& b = module(*best);
        if (m.latency < b.latency ||
            (m.latency == b.latency &&
             (m.power < b.power || (m.power == b.power && m.area < b.area))))
            best = module_id(i);
    }
    return best;
}

std::optional<module_id> module_library::cheapest_for(op_kind k, double max_power) const
{
    std::optional<module_id> best;
    for (int i = 0; i < size(); ++i) {
        const fu_module& m = modules_[static_cast<std::size_t>(i)];
        if (!m.supports(k) || m.power > max_power) continue;
        if (!best) {
            best = module_id(i);
            continue;
        }
        const fu_module& b = module(*best);
        if (m.area < b.area ||
            (m.area == b.area &&
             (m.power < b.power || (m.power == b.power && m.latency < b.latency))))
            best = module_id(i);
    }
    return best;
}

std::optional<double> module_library::min_power_for(op_kind k) const
{
    std::optional<double> best;
    for (const fu_module& m : modules_)
        if (m.supports(k) && (!best || m.power < *best)) best = m.power;
    return best;
}

void module_library::check_covers(const graph& g) const
{
    for (node_id v : g.nodes()) {
        const op_kind k = g.kind(v);
        check(!candidates_for(k).empty(),
              "library '" + name_ + "' has no module for operation kind '" +
                  std::string(op_kind_name(k)) + "' (node '" + g.label(v) + "')");
    }
}

module_library table1_library()
{
    module_library lib("date03_table1");
    lib.add(make_module("add", {op_kind::add}, 87, 1, 2.5));
    lib.add(make_module("sub", {op_kind::sub}, 87, 1, 2.5));
    lib.add(make_module("comp", {op_kind::comp}, 8, 1, 2.5));
    lib.add(make_module("ALU", {op_kind::add, op_kind::sub, op_kind::comp}, 97, 1, 2.5));
    lib.add(make_module("mult_ser", {op_kind::mult}, 103, 4, 2.7));
    lib.add(make_module("mult_par", {op_kind::mult}, 339, 2, 8.1));
    lib.add(make_module("input", {op_kind::input}, 16, 1, 0.2));
    lib.add(make_module("output", {op_kind::output}, 16, 1, 1.7));
    return lib;
}

module_library parse_library(std::istream& is)
{
    module_library lib;
    std::string line;
    int lineno = 0;
    bool saw_header = false;
    std::string lib_name = "unnamed";
    while (std::getline(is, line)) {
        ++lineno;
        if (is_blank_or_comment(line)) continue;
        const std::vector<std::string> tok = split_ws(line);
        try {
            if (tok[0] == "library") {
                check(tok.size() == 2, "expected: library <name>");
                lib_name = tok[1];
                saw_header = true;
            } else if (tok[0] == "module") {
                // module <name> <op>... area <a> cycles <c> power <p>
                check(tok.size() >= 8, "expected: module <name> <ops...> area <a> cycles <c> power <p>");
                fu_module m;
                m.name = tok[1];
                std::size_t i = 2;
                while (i < tok.size() && tok[i] != "area") {
                    m.ops.set(static_cast<std::size_t>(op_kind_index(parse_op_kind(tok[i]))));
                    ++i;
                }
                check(i + 6 <= tok.size(), "truncated module line");
                check(tok[i] == "area" && tok[i + 2] == "cycles" && tok[i + 4] == "power",
                      "expected 'area <a> cycles <c> power <p>'");
                m.area = parse_double(tok[i + 1], "area");
                m.latency = parse_int(tok[i + 3], "cycles");
                m.power = parse_double(tok[i + 5], "power");
                lib.add(std::move(m));
            } else {
                throw error("unknown directive '" + tok[0] + "'");
            }
        } catch (const parse_error&) {
            throw;
        } catch (const error& e) {
            throw parse_error(e.what(), lineno);
        }
    }
    check(saw_header, "missing 'library <name>' header");
    module_library named(lib_name);
    for (const fu_module& m : lib.modules()) named.add(m);
    return named;
}

module_library parse_library_string(const std::string& text)
{
    std::istringstream is(text);
    return parse_library(is);
}

void write_library(const module_library& lib, std::ostream& os)
{
    os << "library " << (lib.name().empty() ? "unnamed" : lib.name()) << '\n';
    for (const fu_module& m : lib.modules()) {
        os << "module " << m.name;
        for (op_kind k : m.supported_kinds()) os << ' ' << op_kind_name(k);
        os << " area " << m.area << " cycles " << m.latency << " power " << m.power << '\n';
    }
}

std::string write_library_string(const module_library& lib)
{
    std::ostringstream os;
    write_library(lib, os);
    return os.str();
}

} // namespace phls
