// Functional-unit library container and selection queries, plus the
// paper's Table 1 as the default library and a text (de)serialisation.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "cdfg/graph.h"
#include "library/module.h"
#include "support/ids.h"

namespace phls {

/// An ordered collection of fu_module types.
class module_library {
public:
    module_library() = default;
    explicit module_library(std::string name) : name_(std::move(name)) {}

    const std::string& name() const { return name_; }

    /// Adds a validated module; names must be unique.
    module_id add(fu_module m);

    int size() const { return static_cast<int>(modules_.size()); }
    const fu_module& module(module_id id) const;
    const std::vector<fu_module>& modules() const { return modules_; }

    std::optional<module_id> find(const std::string& name) const;

    /// All module ids able to execute `k`, in library order.
    std::vector<module_id> candidates_for(op_kind k) const;

    /// Fastest module for `k` whose per-cycle power is <= max_power
    /// (ties: lower power, then lower area, then library order).
    /// Unconstrained when max_power is infinity.
    std::optional<module_id> fastest_for(op_kind k, double max_power) const;

    /// Cheapest-area module for `k` with power <= max_power
    /// (ties: lower power, then faster, then library order).
    std::optional<module_id> cheapest_for(op_kind k, double max_power) const;

    /// Smallest per-cycle power over all candidates for `k`; nullopt if
    /// the kind is not covered at all.
    std::optional<double> min_power_for(op_kind k) const;

    /// Throws phls::error if some operation of `g` has no candidate module.
    void check_covers(const graph& g) const;

private:
    std::string name_;
    std::vector<fu_module> modules_;
};

/// The paper's Table 1 functional-unit library:
///
///   add  {+}      area  87, 1 cycle,  P 2.5
///   sub  {-}      area  87, 1 cycle,  P 2.5
///   comp {>}      area   8, 1 cycle,  P 2.5
///   ALU  {+,-,>}  area  97, 1 cycle,  P 2.5
///   mult_ser {*}  area 103, 4 cycles, P 2.7
///   mult_par {*}  area 339, 2 cycles, P 8.1
///   input  {imp}  area  16, 1 cycle,  P 0.2
///   output {xpt}  area  16, 1 cycle,  P 1.7
module_library table1_library();

/// Parses the text form; throws phls::parse_error on bad input.
///
///   library date03
///   module ALU + - > area 97 cycles 1 power 2.5
module_library parse_library(std::istream& is);
module_library parse_library_string(const std::string& text);

/// Serialises in the format accepted by parse_library.
void write_library(const module_library& lib, std::ostream& os);
std::string write_library_string(const module_library& lib);

} // namespace phls
