// Area cost model beyond raw functional-unit area.
//
// The paper minimises area "using least interconnect" (via Jou et al.'s
// clique formulation) but does not publish register or multiplexer area
// constants.  This reconstruction charges:
//
//   area = sum of FU instance areas
//        + registers * register_area            (left-edge allocation)
//        + extra mux inputs * mux_area_per_extra_input
//
// where an FU input port driven by k distinct sources costs (k-1) extra
// mux inputs.  Defaults are chosen so that the reproduced `hal` designs
// land in the paper's 500-1000 area band (Figure 2); see EXPERIMENTS.md.
#pragma once

#include <string>

namespace phls {

/// Interconnect and storage area constants.
struct cost_model {
    double register_area = 12.0;
    double mux_area_per_extra_input = 4.0;
    /// When false, area is FU area only (used by ablation E5).
    bool include_interconnect = true;

    /// Cost of an FU input port with `sources` distinct drivers.
    double mux_cost(int sources) const
    {
        if (!include_interconnect || sources <= 1) return 0.0;
        return mux_area_per_extra_input * (sources - 1);
    }
};

/// Human-readable one-line summary, for reports.
std::string describe(const cost_model& cm);

} // namespace phls
