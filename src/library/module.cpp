#include "library/module.h"

#include "support/errors.h"

namespace phls {

std::vector<op_kind> fu_module::supported_kinds() const
{
    std::vector<op_kind> out;
    for (op_kind k : all_op_kinds())
        if (supports(k)) out.push_back(k);
    return out;
}

std::string fu_module::ops_string() const
{
    std::string out = "{";
    bool first = true;
    for (op_kind k : supported_kinds()) {
        if (!first) out += ",";
        out += std::string(op_kind_symbol(k));
        first = false;
    }
    out += "}";
    return out;
}

fu_module make_module(const std::string& name, std::initializer_list<op_kind> kinds,
                      double area, int latency, double power)
{
    fu_module m;
    m.name = name;
    for (op_kind k : kinds) m.ops.set(static_cast<std::size_t>(op_kind_index(k)));
    m.area = area;
    m.latency = latency;
    m.power = power;
    validate_module(m);
    return m;
}

void validate_module(const fu_module& m)
{
    check(!m.name.empty(), "module name must be non-empty");
    check(m.ops.any(), "module '" + m.name + "' implements no operation kind");
    check(m.latency >= 1, "module '" + m.name + "' must take at least one cycle");
    check(m.area >= 0.0, "module '" + m.name + "' has negative area");
    check(m.power >= 0.0, "module '" + m.name + "' has negative power");
    const bool has_io = m.supports(op_kind::input) || m.supports(op_kind::output);
    const bool has_arith = m.supports(op_kind::add) || m.supports(op_kind::sub) ||
                           m.supports(op_kind::mult) || m.supports(op_kind::comp);
    check(!(has_io && has_arith),
          "module '" + m.name + "' mixes interface and arithmetic kinds");
    check(!(m.supports(op_kind::input) && m.supports(op_kind::output)),
          "module '" + m.name + "' mixes input and output kinds");
}

} // namespace phls
