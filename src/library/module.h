// Functional-unit module descriptors (rows of the paper's Table 1).
//
// A module type implements a set of operation kinds with a fixed area, a
// fixed execution delay in clock cycles, and a fixed per-cycle power draw
// while executing.  Energy per operation is therefore delay * power; the
// serial multiplier (4 cycles @ 2.7) is both lower-power and lower-energy
// than the parallel one (2 cycles @ 8.1), which is exactly the trade the
// paper's design-space exploration exercises.
#pragma once

#include <bitset>
#include <string>
#include <vector>

#include "cdfg/op.h"

namespace phls {

/// One functional-unit module type.
struct fu_module {
    std::string name;                   ///< unique within a library
    std::bitset<op_kind_count> ops;     ///< kinds this module implements
    double area = 0.0;                  ///< area units
    int latency = 1;                    ///< execution delay, clock cycles
    double power = 0.0;                 ///< power per executing clock cycle

    bool supports(op_kind k) const { return ops.test(static_cast<std::size_t>(op_kind_index(k))); }

    /// Energy of one operation execution.
    double energy() const { return latency * power; }

    /// Kinds supported, in canonical order.
    std::vector<op_kind> supported_kinds() const;

    /// "{+,-,>}"-style rendering of the supported set (Table 1 notation).
    std::string ops_string() const;
};

/// Convenience constructor.
fu_module make_module(const std::string& name, std::initializer_list<op_kind> kinds,
                      double area, int latency, double power);

/// Structural validation; throws phls::error on nonsense (empty name, no
/// ops, latency < 1, negative area/power, io kinds mixed with arithmetic).
void validate_module(const fu_module& m);

} // namespace phls
