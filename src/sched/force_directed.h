// Force-directed scheduling (Paulin & Knight), a classic time-constrained
// scheduler that balances expected resource usage.  Serves as step one of
// the two-step baseline and as an independent comparison point (E7).
// Power-oblivious by construction.
#pragma once

#include <string>

#include "sched/schedule.h"

namespace phls {

/// Outcome of force-directed scheduling.
struct fds_result {
    bool feasible = false;
    std::string reason;
    schedule sched;
};

/// Schedules `g` within `latency` cycles, minimising the expected number
/// of concurrently busy instances per module type via the classic force
/// heuristic.  Infeasible when `latency` is below the critical path.
fds_result force_directed_schedule(const graph& g, const module_library& lib,
                                   const module_assignment& assignment, int latency);

} // namespace phls
