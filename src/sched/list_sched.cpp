#include "sched/list_sched.h"

#include <algorithm>

#include "support/errors.h"

namespace phls {

allocation minimal_allocation(const module_library& lib, const module_assignment& assignment)
{
    allocation alloc(static_cast<std::size_t>(lib.size()), 0);
    for (module_id m : assignment) alloc[m.index()] = 1;
    return alloc;
}

list_sched_result list_schedule(const graph& g, const module_library& lib,
                                const module_assignment& assignment, const allocation& alloc)
{
    const int n = g.node_count();
    check(static_cast<int>(assignment.size()) == n, "assignment size does not match graph");
    check(static_cast<int>(alloc.size()) == lib.size(), "allocation size does not match library");

    list_sched_result result;
    result.sched = schedule(n);
    result.instance_of.assign(static_cast<std::size_t>(n), -1);
    for (node_id v : g.node_ids()) result.sched.set_module(v, assignment[v.index()]);

    for (node_id v : g.node_ids()) {
        if (alloc[assignment[v.index()].index()] <= 0) {
            result.reason = "allocation has no instance of module '" +
                            lib.module(assignment[v.index()]).name + "' needed by '" +
                            g.label(v) + "'";
            return result;
        }
    }

    // Flat instance numbering: instances of module m start at base[m].
    std::vector<int> base(static_cast<std::size_t>(lib.size()) + 1, 0);
    for (int m = 0; m < lib.size(); ++m)
        base[static_cast<std::size_t>(m) + 1] =
            base[static_cast<std::size_t>(m)] + alloc[static_cast<std::size_t>(m)];
    result.total_instances = base.back();
    // busy_until[i] = first cycle instance i is free again.
    std::vector<int> busy_until(static_cast<std::size_t>(result.total_instances), 0);

    // Longest delay-weighted path to a sink, as list priority.
    std::vector<long> priority(static_cast<std::size_t>(n), 0);
    const std::vector<node_id> topo = g.topo_order();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const node_id v = *it;
        long below = 0;
        for (node_id s : g.succs(v)) below = std::max(below, priority[s.index()]);
        priority[v.index()] = below + lib.module(assignment[v.index()]).latency;
    }

    std::vector<int> unscheduled_preds(static_cast<std::size_t>(n), 0);
    for (node_id v : g.node_ids())
        unscheduled_preds[v.index()] = static_cast<int>(g.preds(v).size());
    std::vector<int> data_ready(static_cast<std::size_t>(n), 0);

    int remaining = n;
    int cycle = 0;
    long guard = 0;
    for (node_id v : g.node_ids()) guard += lib.module(assignment[v.index()]).latency;
    guard += n + 1;

    while (remaining > 0) {
        check(cycle <= guard, "list_schedule failed to converge");
        // Ready ops whose data arrived by `cycle`, best priority first.
        std::vector<node_id> ready;
        for (node_id v : g.node_ids())
            if (!result.sched.scheduled(v) && unscheduled_preds[v.index()] == 0 &&
                data_ready[v.index()] <= cycle)
                ready.push_back(v);
        std::sort(ready.begin(), ready.end(), [&](node_id a, node_id b) {
            if (priority[a.index()] != priority[b.index()])
                return priority[a.index()] > priority[b.index()];
            return a < b;
        });
        for (node_id v : ready) {
            const module_id m = assignment[v.index()];
            // First free instance of this module type.
            int chosen = -1;
            for (int i = base[m.index()]; i < base[m.index() + 1]; ++i) {
                if (busy_until[static_cast<std::size_t>(i)] <= cycle) {
                    chosen = i;
                    break;
                }
            }
            if (chosen < 0) continue; // all instances busy this cycle
            const int d = lib.module(m).latency;
            result.sched.set_start(v, cycle);
            result.instance_of[v.index()] = chosen;
            busy_until[static_cast<std::size_t>(chosen)] = cycle + d;
            --remaining;
            for (node_id s : g.succs(v)) {
                --unscheduled_preds[s.index()];
                data_ready[s.index()] = std::max(data_ready[s.index()], cycle + d);
            }
        }
        ++cycle;
    }
    result.feasible = true;
    return result;
}

} // namespace phls
