#include "sched/force_directed.h"

#include <algorithm>
#include <map>

#include "sched/mobility.h"
#include "support/errors.h"

namespace phls {

namespace {

// Execution probability table: prob[v][c] = probability operator v is
// executing in cycle c, assuming a uniform start distribution over its
// window [s_min, s_max].
std::vector<std::vector<double>> probabilities(const graph& g, const module_library& lib,
                                               const module_assignment& assignment,
                                               const time_windows& w, int latency)
{
    std::vector<std::vector<double>> prob(static_cast<std::size_t>(g.node_count()),
                                          std::vector<double>(static_cast<std::size_t>(latency), 0.0));
    for (node_id v : g.node_ids()) {
        const int d = lib.module(assignment[v.index()]).latency;
        const int lo = w.s_min[v.index()];
        const int hi = w.s_max[v.index()];
        const double weight = 1.0 / (hi - lo + 1);
        for (int s = lo; s <= hi; ++s)
            for (int c = s; c < s + d && c < latency; ++c)
                prob[v.index()][static_cast<std::size_t>(c)] += weight;
    }
    return prob;
}

// Distribution graphs per module type: dg[m][c] = sum of probabilities of
// operators assigned to module type m.
std::map<int, std::vector<double>> distribution_graphs(
    const graph& g, const module_assignment& assignment,
    const std::vector<std::vector<double>>& prob, int latency)
{
    std::map<int, std::vector<double>> dg;
    for (node_id v : g.node_ids()) {
        std::vector<double>& row = dg.try_emplace(assignment[v.index()].value(),
                                                  std::vector<double>(
                                                      static_cast<std::size_t>(latency), 0.0))
                                       .first->second;
        for (int c = 0; c < latency; ++c)
            row[static_cast<std::size_t>(c)] += prob[v.index()][static_cast<std::size_t>(c)];
    }
    return dg;
}

} // namespace

fds_result force_directed_schedule(const graph& g, const module_library& lib,
                                   const module_assignment& assignment, int latency)
{
    fds_result result;
    result.sched = schedule(g.node_count());
    for (node_id v : g.node_ids()) result.sched.set_module(v, assignment[v.index()]);

    std::vector<int> fixed(static_cast<std::size_t>(g.node_count()), -1);
    time_windows w = classic_windows(g, lib, assignment, latency, fixed);
    if (!w.feasible) {
        result.reason = w.reason;
        return result;
    }

    int remaining = g.node_count();
    while (remaining > 0) {
        // Pin all zero-mobility operators for free.
        bool pinned_any = false;
        for (node_id v : g.node_ids()) {
            if (fixed[v.index()] < 0 && w.s_min[v.index()] == w.s_max[v.index()]) {
                fixed[v.index()] = w.s_min[v.index()];
                --remaining;
                pinned_any = true;
            }
        }
        if (remaining == 0) break;
        if (pinned_any) {
            w = classic_windows(g, lib, assignment, latency, fixed);
            check(w.feasible, "force-directed: windows collapsed after zero-mobility pins");
            continue;
        }

        const std::vector<std::vector<double>> prob =
            probabilities(g, lib, assignment, w, latency);
        const std::map<int, std::vector<double>> dg =
            distribution_graphs(g, assignment, prob, latency);

        // Evaluate every (operator, start) candidate by total force.
        double best_force = 0.0;
        node_id best_v;
        int best_t = -1;
        for (node_id v : g.node_ids()) {
            if (fixed[v.index()] >= 0) continue;
            for (int t = w.s_min[v.index()]; t <= w.s_max[v.index()]; ++t) {
                fixed[v.index()] = t;
                const time_windows w2 = classic_windows(g, lib, assignment, latency, fixed);
                fixed[v.index()] = -1;
                if (!w2.feasible) continue;
                const std::vector<std::vector<double>> prob2 =
                    probabilities(g, lib, assignment, w2, latency);
                double force = 0.0;
                for (node_id u : g.node_ids()) {
                    const std::vector<double>& weights =
                        dg.at(assignment[u.index()].value());
                    for (int c = 0; c < latency; ++c)
                        force += weights[static_cast<std::size_t>(c)] *
                                 (prob2[u.index()][static_cast<std::size_t>(c)] -
                                  prob[u.index()][static_cast<std::size_t>(c)]);
                }
                if (best_t < 0 || force < best_force ||
                    (force == best_force && (v < best_v || (v == best_v && t < best_t)))) {
                    best_force = force;
                    best_v = v;
                    best_t = t;
                }
            }
        }
        check(best_t >= 0, "force-directed: no candidate placement found");
        fixed[best_v.index()] = best_t;
        --remaining;
        w = classic_windows(g, lib, assignment, latency, fixed);
        check(w.feasible, "force-directed: windows collapsed after pinning");
    }

    for (node_id v : g.node_ids()) result.sched.set_start(v, fixed[v.index()]);
    result.feasible = true;
    return result;
}

} // namespace phls
