#include "sched/mobility.h"

#include <algorithm>

#include "support/errors.h"
#include "support/strings.h"

namespace phls {

time_windows power_windows(const graph& g, const module_library& lib,
                           const module_assignment& assignment, double max_power,
                           int latency, const pasap_options& options)
{
    time_windows w;
    const pasap_result lo = pasap(g, lib, assignment, max_power, options);
    if (!lo.feasible) {
        w.reason = "pasap: " + lo.reason;
        return w;
    }
    if (lo.sched.latency(lib) > latency) {
        w.reason = strf("pasap schedule needs %d cycles, latency bound is %d",
                        lo.sched.latency(lib), latency);
        return w;
    }
    // The pasap schedule is a complete valid solution, so the problem is
    // feasible; palap can only *widen* windows.  Because both are greedy
    // heuristics they may disagree (palap may fail or place an operator
    // before its pasap time under power contention); in that case the
    // operator's window degenerates to its pasap time, which is always a
    // usable witness.
    const pasap_result hi = palap(g, lib, assignment, max_power, latency, options);
    w.s_min.resize(static_cast<std::size_t>(g.node_count()));
    w.s_max.resize(static_cast<std::size_t>(g.node_count()));
    for (node_id v : g.node_ids()) {
        w.s_min[v.index()] = lo.sched.start(v);
        w.s_max[v.index()] =
            hi.feasible ? std::max(lo.sched.start(v), hi.sched.start(v)) : lo.sched.start(v);
    }
    w.feasible = true;
    return w;
}

std::vector<int> constrained_earliest(const graph& g, const module_library& lib,
                                      const module_assignment& assignment,
                                      const std::vector<int>& fixed)
{
    const int n = g.node_count();
    check(static_cast<int>(assignment.size()) == n, "assignment size does not match graph");
    check(fixed.empty() || static_cast<int>(fixed.size()) == n,
          "fixed size does not match graph");
    std::vector<int> start(static_cast<std::size_t>(n), 0);
    for (node_id v : g.topo_order()) {
        int t = 0;
        for (node_id p : g.preds(v))
            t = std::max(t, start[p.index()] + lib.module(assignment[p.index()]).latency);
        if (!fixed.empty() && fixed[v.index()] >= 0) {
            if (fixed[v.index()] < t) return {}; // pin violates a dependency
            t = fixed[v.index()];
        }
        start[v.index()] = t;
    }
    return start;
}

std::vector<int> constrained_latest(const graph& g, const module_library& lib,
                                    const module_assignment& assignment, int latency,
                                    const std::vector<int>& fixed)
{
    const int n = g.node_count();
    check(static_cast<int>(assignment.size()) == n, "assignment size does not match graph");
    check(fixed.empty() || static_cast<int>(fixed.size()) == n,
          "fixed size does not match graph");
    std::vector<int> start(static_cast<std::size_t>(n), 0);
    const std::vector<node_id> order = g.topo_order();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const node_id v = *it;
        const int d = lib.module(assignment[v.index()]).latency;
        int t = latency - d;
        for (node_id s : g.succs(v)) t = std::min(t, start[s.index()] - d);
        if (!fixed.empty() && fixed[v.index()] >= 0) {
            if (fixed[v.index()] > t) return {};
            t = fixed[v.index()];
        }
        if (t < 0) return {};
        start[v.index()] = t;
    }
    // A pinned op may also be unreachable from below: verify pins held.
    if (!fixed.empty())
        for (node_id v : g.node_ids())
            if (fixed[v.index()] >= 0 && start[v.index()] != fixed[v.index()]) return {};
    return start;
}

time_windows classic_windows(const graph& g, const module_library& lib,
                             const module_assignment& assignment, int latency,
                             const std::vector<int>& fixed_starts)
{
    time_windows w;
    const std::vector<int> lo = constrained_earliest(g, lib, assignment, fixed_starts);
    if (lo.empty()) {
        w.reason = "pinned operator violates a data dependency";
        return w;
    }
    const std::vector<int> hi = constrained_latest(g, lib, assignment, latency, fixed_starts);
    if (hi.empty()) {
        w.reason = strf("latency bound %d is below the critical path", latency);
        return w;
    }
    for (node_id v : g.node_ids()) {
        if (lo[v.index()] > hi[v.index()]) {
            w.reason = strf("operator '%s' has crossing window [%d, %d]",
                            g.label(v).c_str(), lo[v.index()], hi[v.index()]);
            return w;
        }
    }
    w.s_min = lo;
    w.s_max = hi;
    w.feasible = true;
    return w;
}

} // namespace phls
