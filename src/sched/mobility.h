// Start-time windows.
//
// The paper derives each operator's feasible start window from pasap
// (earliest power-feasible start) and palap (latest power-feasible start
// under the latency bound); the compatibility graph is built from these
// windows, "bounding the design space to those of power feasible
// schedules".  power_windows() packages that computation.
//
// constrained_earliest/latest are the power-oblivious counterparts with
// support for pinned operators; they serve force-directed scheduling and
// the two-step baseline.
#pragma once

#include <string>
#include <vector>

#include "sched/pasap.h"

namespace phls {

/// Per-operator start-time windows [s_min, s_max].
struct time_windows {
    bool feasible = false;
    std::string reason;
    std::vector<int> s_min;
    std::vector<int> s_max;

    int mobility(node_id v) const { return s_max[v.index()] - s_min[v.index()]; }
};

/// Windows from pasap/palap under power cap `max_power` and latency bound
/// `latency`.  Feasibility is decided by pasap alone: its schedule is a
/// complete valid witness (the paper's "deleted operator" event therefore
/// reduces to pasap failing or overrunning the latency bound).  palap,
/// being an independent greedy pass, only *widens* a window beyond the
/// pasap time when it agrees; where it disagrees the window degenerates
/// to the pasap time.  `options.fixed_starts` carries committed operators.
time_windows power_windows(const graph& g, const module_library& lib,
                           const module_assignment& assignment, double max_power,
                           int latency, const pasap_options& options = {});

/// Classic windows (no power cap) under `latency`, same reporting.
time_windows classic_windows(const graph& g, const module_library& lib,
                             const module_assignment& assignment, int latency,
                             const std::vector<int>& fixed_starts = {});

/// ASAP start times with pinned operators: fixed[v] >= 0 forces start(v).
/// Returns an empty vector if a pin violates a data dependency.
std::vector<int> constrained_earliest(const graph& g, const module_library& lib,
                                      const module_assignment& assignment,
                                      const std::vector<int>& fixed);

/// ALAP start times with pinned operators under `latency`; empty vector if
/// infeasible.
std::vector<int> constrained_latest(const graph& g, const module_library& lib,
                                    const module_assignment& assignment, int latency,
                                    const std::vector<int>& fixed);

} // namespace phls
