// Classic (power-oblivious) ASAP and ALAP scheduling under a module
// assignment.  These are the schedules the paper's pasap/palap "stretch";
// they also drive the two-step baseline and force-directed scheduling.
#pragma once

#include "sched/schedule.h"

namespace phls {

/// Earliest-start schedule; always feasible for a DAG.
schedule asap_schedule(const graph& g, const module_library& lib,
                       const module_assignment& assignment);

/// Latest-start schedule for latency `T`.  Returns an incomplete schedule
/// (no starts set) when T is below the critical path length; check with
/// schedule::complete().
schedule alap_schedule(const graph& g, const module_library& lib,
                       const module_assignment& assignment, int latency);

} // namespace phls
