#include "sched/schedule.h"

#include <algorithm>

#include "power/tracker.h"
#include "support/errors.h"
#include "support/strings.h"

namespace phls {

namespace {

module_assignment assignment_by_policy(const graph& g, const module_library& lib,
                                       double max_power, bool fastest)
{
    lib.check_covers(g);
    module_assignment out(static_cast<std::size_t>(g.node_count()));
    for (node_id v : g.node_ids()) {
        const std::optional<module_id> m = fastest
                                               ? lib.fastest_for(g.kind(v), max_power)
                                               : lib.cheapest_for(g.kind(v), max_power);
        if (!m) return {};
        out[v.index()] = *m;
    }
    return out;
}

} // namespace

module_assignment fastest_assignment(const graph& g, const module_library& lib,
                                     double max_power)
{
    return assignment_by_policy(g, lib, max_power, true);
}

module_assignment cheapest_assignment(const graph& g, const module_library& lib,
                                      double max_power)
{
    return assignment_by_policy(g, lib, max_power, false);
}

bool schedule::complete() const
{
    return std::all_of(start_.begin(), start_.end(), [](int t) { return t >= 0; });
}

int schedule::latency(const module_library& lib) const
{
    int max_finish = 0;
    for (int i = 0; i < node_count(); ++i) {
        if (start_[static_cast<std::size_t>(i)] < 0) continue;
        max_finish = std::max(max_finish, finish(node_id(i), lib));
    }
    return max_finish;
}

power_profile schedule::profile(const module_library& lib) const
{
    power_profile p;
    for (int i = 0; i < node_count(); ++i) {
        const node_id v(i);
        if (!scheduled(v)) continue;
        const fu_module& m = lib.module(module_of(v));
        p.deposit(start(v), m.latency, m.power);
    }
    return p;
}

void validate_schedule(const graph& g, const module_library& lib, const schedule& s,
                       int max_latency, double max_power)
{
    check(s.node_count() == g.node_count(), "schedule size does not match graph");
    for (node_id v : g.node_ids()) {
        check(s.scheduled(v), "operation '" + g.label(v) + "' is unscheduled");
        const module_id m = s.module_of(v);
        check(m.valid(), "operation '" + g.label(v) + "' has no module");
        check(lib.module(m).supports(g.kind(v)),
              "module '" + lib.module(m).name + "' cannot execute '" + g.label(v) + "'");
    }
    for (node_id v : g.node_ids())
        for (node_id succ : g.succs(v))
            check(s.start(succ) >= s.finish(v, lib),
                  strf("dependency violated: '%s' (finish %d) -> '%s' (start %d)",
                       g.label(v).c_str(), s.finish(v, lib), g.label(succ).c_str(),
                       s.start(succ)));
    if (max_latency >= 0)
        check(s.latency(lib) <= max_latency,
              strf("latency %d exceeds constraint %d", s.latency(lib), max_latency));
    const double peak = s.profile(lib).peak();
    check(peak <= max_power + power_tracker::tolerance,
          strf("peak power %.3f exceeds constraint %.3f", peak, max_power));
}

} // namespace phls
