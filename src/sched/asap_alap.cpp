#include "sched/asap_alap.h"

#include "cdfg/analysis.h"
#include "support/errors.h"

namespace phls {

namespace {

delay_fn make_delay(const module_library& lib, const module_assignment& assignment)
{
    return [&lib, &assignment](node_id v) { return lib.module(assignment[v.index()]).latency; };
}

} // namespace

schedule asap_schedule(const graph& g, const module_library& lib,
                       const module_assignment& assignment)
{
    check(static_cast<int>(assignment.size()) == g.node_count(),
          "assignment size does not match graph");
    schedule s(g.node_count());
    const std::vector<int> starts = earliest_starts(g, make_delay(lib, assignment));
    for (node_id v : g.node_ids()) {
        s.set_start(v, starts[v.index()]);
        s.set_module(v, assignment[v.index()]);
    }
    return s;
}

schedule alap_schedule(const graph& g, const module_library& lib,
                       const module_assignment& assignment, int latency)
{
    check(static_cast<int>(assignment.size()) == g.node_count(),
          "assignment size does not match graph");
    schedule s(g.node_count());
    for (node_id v : g.node_ids()) s.set_module(v, assignment[v.index()]);
    const std::vector<int> starts = latest_starts(g, make_delay(lib, assignment), latency);
    if (starts.empty()) return s; // infeasible: left incomplete
    for (node_id v : g.node_ids()) s.set_start(v, starts[v.index()]);
    return s;
}

} // namespace phls
