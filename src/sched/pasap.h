// pasap / palap: the paper's power-constrained ASAP scheduling algorithm
// and its time-reversed dual (DATE'03, section 2).
//
// The paper's pseudo-code:
//
//   Initialize: schedule source start-time to zero and initialize the
//   execution offset oi (cycles) to zero for all operators.
//   step 1: Pick an unscheduled operator vi
//   step 2: If vi has unscheduled predecessors, goto 4.
//   step 3: If there is power available in the execution time interval
//           [(ti+oi) .. (ti+oi+di)], where di is the execution delay of
//           vi and ti = max{tj+dj} for all vj -> vi, schedule operation i
//           at time ti+oi, otherwise increase oi by one.
//   step 4: If unscheduled operators, goto step 1.
//
// The pick order in step 1 is left open by the paper; we implement two
// deterministic instantiations (an ablation compares them):
//   * topological   — operators in topological rank order, each driven to
//                     completion before the next is considered;
//   * critical_path — among data-ready operators, longest path to a sink
//                     first (list-scheduling style packing).
//
// Committed operators (already scheduled/bound by the clique partitioner)
// enter through `fixed_starts`: their power is reserved up front and they
// act as scheduled predecessors.  If a free operator cannot be placed
// early enough to satisfy a *fixed* successor, the heuristic reports
// infeasibility — this is exactly the "deletion of unscheduled operators"
// event the paper handles by backtrack-and-lock.
#pragma once

#include <string>
#include <vector>

#include "sched/schedule.h"

namespace phls {

/// Pick order for step 1 (see file comment).
enum class pasap_order { topological, critical_path };

/// Optional inputs for pasap/palap.
struct pasap_options {
    pasap_order order = pasap_order::critical_path;
    /// Per-node fixed start times (-1 = free).  Empty = all free.
    std::vector<int> fixed_starts;
    /// Optional pre-built reversed_graph() of the graph palap runs on --
    /// a pure graph invariant that palap otherwise rebuilds on every
    /// call.  Non-owning; must outlive the call and must equal
    /// reversed_graph(g) exactly (explore_cache caches it per problem,
    /// run_clique_partitioning hoists it per uncached partitioning).
    /// Null = compute per call.  Ignored by pasap().
    const graph* reversed = nullptr;
};

/// Outcome of pasap/palap.
struct pasap_result {
    bool feasible = false;
    std::string reason; ///< set when infeasible
    schedule sched;     ///< complete iff feasible
};

/// Power-constrained ASAP: minimises start times greedily subject to the
/// per-cycle power cap.  Latency is *not* bounded here; the caller
/// compares the result against its latency constraint.
pasap_result pasap(const graph& g, const module_library& lib,
                   const module_assignment& assignment, double max_power,
                   const pasap_options& options = {});

/// Power-constrained ALAP: the time-reverse of pasap anchored at
/// `latency`; maximises start times subject to the power cap.  Infeasible
/// when an operator cannot fit within [0, latency).
pasap_result palap(const graph& g, const module_library& lib,
                   const module_assignment& assignment, double max_power, int latency,
                   const pasap_options& options = {});

/// The edge-reversed copy of `g` (same nodes/kinds/labels, every edge
/// flipped) that palap schedules on.  Exposed so callers evaluating many
/// points on one graph can build it once and pass it through
/// pasap_options::reversed.
graph reversed_graph(const graph& g);

} // namespace phls
