// Schedule representation: per-operation start times plus the module type
// each operation is assumed to execute on (the module determines delay
// and per-cycle power; instance binding lives in synth/datapath.h).
#pragma once

#include <limits>
#include <vector>

#include "cdfg/graph.h"
#include "library/library.h"
#include "power/profile.h"
#include "support/ids.h"

namespace phls {

/// Per-operation module-type choice (delay/power model for scheduling).
using module_assignment = std::vector<module_id>;

/// Builds an assignment that maps every node to the same policy choice:
/// the fastest module with power <= max_power.  Throws phls::error when a
/// kind has no candidate at all; returns an empty vector when a kind
/// exists but no candidate fits under max_power (caller decides how to
/// report infeasibility).
module_assignment fastest_assignment(const graph& g, const module_library& lib,
                                     double max_power);

/// Cheapest-area counterpart of fastest_assignment.
module_assignment cheapest_assignment(const graph& g, const module_library& lib,
                                      double max_power);

/// Start times + module types for every operation of one graph.
class schedule {
public:
    schedule() = default;
    explicit schedule(int node_count)
        : start_(static_cast<std::size_t>(node_count), -1),
          module_(static_cast<std::size_t>(node_count))
    {
    }

    int node_count() const { return static_cast<int>(start_.size()); }

    bool scheduled(node_id v) const { return start_[v.index()] >= 0; }
    int start(node_id v) const { return start_[v.index()]; }
    void set_start(node_id v, int t) { start_[v.index()] = t; }
    void clear_start(node_id v) { start_[v.index()] = -1; }

    module_id module_of(node_id v) const { return module_[v.index()]; }
    void set_module(node_id v, module_id m) { module_[v.index()] = m; }

    /// Delay of `v` under its assigned module.
    int delay(node_id v, const module_library& lib) const
    {
        return lib.module(module_[v.index()]).latency;
    }

    /// First cycle after `v` finishes.
    int finish(node_id v, const module_library& lib) const
    {
        return start_[v.index()] + delay(v, lib);
    }

    bool complete() const;

    /// Max finish over all (scheduled) operations.
    int latency(const module_library& lib) const;

    /// Per-cycle power: each scheduled op deposits its module power over
    /// its execution interval.
    power_profile profile(const module_library& lib) const;

    const std::vector<int>& starts() const { return start_; }
    const module_assignment& modules() const { return module_; }

private:
    std::vector<int> start_;
    module_assignment module_;
};

/// Validates a complete schedule: every op scheduled at t >= 0, modules
/// support the op kinds, and every data dependency v -> s satisfies
/// start(s) >= finish(v).  Optionally also checks latency <= max_latency
/// and peak power <= max_power.  Throws phls::error describing the first
/// violation.
void validate_schedule(const graph& g, const module_library& lib, const schedule& s,
                       int max_latency = -1,
                       double max_power = std::numeric_limits<double>::infinity());

} // namespace phls
