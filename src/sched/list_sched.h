// Resource-constrained list scheduling (baseline, experiment E7).
//
// Given a fixed allocation (how many instances of each module type exist)
// and a module assignment, schedules operations cycle by cycle: among
// data-ready operations, the one with the longest path to a sink grabs a
// free instance first.  Power is ignored — the resulting peak power is
// what the paper's integrated algorithm improves on.
#pragma once

#include <string>
#include <vector>

#include "sched/schedule.h"

namespace phls {

/// Instance counts per module type (indexed by module_id).
using allocation = std::vector<int>;

/// Builds the minimal allocation that makes `assignment` schedulable:
/// one instance of every module type used.
allocation minimal_allocation(const module_library& lib, const module_assignment& assignment);

/// Result of list scheduling.
struct list_sched_result {
    bool feasible = false;
    std::string reason;
    schedule sched;
    /// Flat instance index per node (instances numbered per module type,
    /// then flattened in library order); the verifier and reuse stats use it.
    std::vector<int> instance_of;
    int total_instances = 0;
};

/// Schedules `g` under `alloc`; infeasible only if some used module type
/// has zero instances.
list_sched_result list_schedule(const graph& g, const module_library& lib,
                                const module_assignment& assignment, const allocation& alloc);

} // namespace phls
