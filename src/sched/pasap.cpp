#include "sched/pasap.h"

#include <algorithm>
#include <optional>

#include "power/tracker.h"
#include "support/errors.h"
#include "support/kernels.h"
#include "support/strings.h"

namespace phls {

namespace {

struct core_inputs {
    const graph& g;
    const module_library& lib;
    const module_assignment& assignment;
    double max_power;
    pasap_order order;
    std::vector<int> fixed; // -1 = free
};

pasap_result run_core(const core_inputs& in)
{
    const int n = in.g.node_count();
    check(static_cast<int>(in.assignment.size()) == n, "assignment size does not match graph");
    check(in.fixed.empty() || static_cast<int>(in.fixed.size()) == n,
          "fixed_starts size does not match graph");

    pasap_result result;
    result.sched = schedule(n);
    for (node_id v : in.g.node_ids()) result.sched.set_module(v, in.assignment[v.index()]);

    std::vector<int> delay(static_cast<std::size_t>(n));
    std::vector<double> power(static_cast<std::size_t>(n));
    long total_delay = 0;
    for (node_id v : in.g.node_ids()) {
        const fu_module& m = in.lib.module(in.assignment[v.index()]);
        check(m.supports(in.g.kind(v)),
              "module '" + m.name + "' cannot execute '" + in.g.label(v) + "'");
        delay[v.index()] = m.latency;
        power[v.index()] = m.power;
        total_delay += m.latency;
        if (m.power > in.max_power + power_tracker::tolerance) {
            result.reason = strf("operator '%s' needs %.3f power per cycle, cap is %.3f",
                                 in.g.label(v).c_str(), m.power, in.max_power);
            return result;
        }
    }

    const std::vector<int> fixed =
        in.fixed.empty() ? std::vector<int>(static_cast<std::size_t>(n), -1) : in.fixed;

    power_tracker tracker(in.max_power);
    std::vector<int> start(static_cast<std::size_t>(n), -1);
    int max_fixed_finish = 0;
    for (node_id v : in.g.node_ids()) {
        if (fixed[v.index()] < 0) continue;
        if (!tracker.fits(fixed[v.index()], delay[v.index()], power[v.index()])) {
            result.reason = "committed reservations exceed the power cap at operator '" +
                            in.g.label(v) + "'";
            return result;
        }
        tracker.reserve(fixed[v.index()], delay[v.index()], power[v.index()]);
        start[v.index()] = fixed[v.index()];
        result.sched.set_start(v, fixed[v.index()]);
        max_fixed_finish = std::max(max_fixed_finish, fixed[v.index()] + delay[v.index()]);
    }

    // Committed operations must already respect precedence among
    // themselves (a later module change can stretch a delay past a
    // committed successor -- that makes the commitment set invalid).
    for (node_id v : in.g.node_ids()) {
        if (fixed[v.index()] < 0) continue;
        for (node_id s : in.g.succs(v)) {
            if (fixed[s.index()] < 0) continue;
            if (fixed[v.index()] + delay[v.index()] > fixed[s.index()]) {
                result.reason = strf(
                    "committed operator '%s' (finish %d) overlaps committed successor "
                    "'%s' (start %d)",
                    in.g.label(v).c_str(), fixed[v.index()] + delay[v.index()],
                    in.g.label(s).c_str(), fixed[s.index()]);
                return result;
            }
        }
    }

    const long horizon = total_delay + max_fixed_finish + n + 2;

    // Priority: longest delay-weighted path to any sink (used in
    // critical_path order; also a useful diagnostic).
    std::vector<long> priority(static_cast<std::size_t>(n), 0);
    const std::vector<node_id> topo = in.g.topo_order();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const node_id v = *it;
        long below = 0;
        for (node_id s : in.g.succs(v)) below = std::max(below, priority[s.index()]);
        priority[v.index()] = below + delay[v.index()];
    }

    // Places one operator: earliest data-ready time + smallest offset at
    // which the whole execution interval has power available (paper
    // step 3).  Returns false and sets `reason` on heuristic failure.
    const bool skip_probe = kernel_knobs().skip_probe;
    const auto place = [&](node_id v) -> bool {
        int ready = 0;
        for (node_id p : in.g.preds(v))
            ready = std::max(ready, start[p.index()] + delay[p.index()]);
        int t;
        if (skip_probe) {
            // Skip-ahead: jump directly past the last violating cycle of
            // each failed interval instead of advancing one offset at a
            // time.  Bit-identical to the linear probe below (every op's
            // power fits the cap, so a feasible slot always exists; the
            // horizon check reports the same overrun).
            t = tracker.next_fit(ready, delay[v.index()], power[v.index()]);
            if (t > horizon) {
                result.reason = "internal: no power-feasible slot below horizon for '" +
                                in.g.label(v) + "'";
                return false;
            }
        } else {
            int offset = 0;
            while (!tracker.fits(ready + offset, delay[v.index()], power[v.index()])) {
                ++offset;
                if (ready + offset > horizon) {
                    result.reason =
                        "internal: no power-feasible slot below horizon for '" +
                        in.g.label(v) + "'";
                    return false;
                }
            }
            t = ready + offset;
        }
        tracker.reserve(t, delay[v.index()], power[v.index()]);
        start[v.index()] = t;
        result.sched.set_start(v, t);
        // A committed (fixed) successor that would now start before this
        // operator finishes makes the partial schedule invalid -- the
        // paper's "deletion of unscheduled operators" event.
        for (node_id s : in.g.succs(v)) {
            if (fixed[s.index()] >= 0 && t + delay[v.index()] > fixed[s.index()]) {
                result.reason = strf(
                    "operator '%s' finishes at %d, after committed successor '%s' starts (%d)",
                    in.g.label(v).c_str(), t + delay[v.index()], in.g.label(s).c_str(),
                    fixed[s.index()]);
                return false;
            }
        }
        return true;
    };

    if (in.order == pasap_order::topological) {
        for (node_id v : topo) {
            if (fixed[v.index()] >= 0) continue;
            if (!place(v)) return result;
        }
    } else {
        // critical_path: among data-ready operators, place the one with
        // the longest path to a sink first.
        std::vector<int> unscheduled_preds(static_cast<std::size_t>(n), 0);
        for (node_id v : in.g.node_ids())
            for (node_id p : in.g.preds(v))
                if (start[p.index()] < 0) ++unscheduled_preds[v.index()];
        std::vector<node_id> ready;
        for (node_id v : in.g.node_ids())
            if (start[v.index()] < 0 && unscheduled_preds[v.index()] == 0) ready.push_back(v);
        while (!ready.empty()) {
            std::size_t best = 0;
            for (std::size_t i = 1; i < ready.size(); ++i) {
                const node_id a = ready[i], b = ready[best];
                if (priority[a.index()] > priority[b.index()] ||
                    (priority[a.index()] == priority[b.index()] && a < b))
                    best = i;
            }
            const node_id v = ready[best];
            ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best));
            if (!place(v)) return result;
            for (node_id s : in.g.succs(v)) {
                if (start[s.index()] >= 0) continue; // fixed ops are pre-scheduled
                if (--unscheduled_preds[s.index()] == 0) ready.push_back(s);
            }
        }
    }

    for (node_id v : in.g.node_ids()) {
        if (start[v.index()] < 0) {
            result.reason = "internal: operator '" + in.g.label(v) + "' was never scheduled";
            return result;
        }
    }
    result.feasible = true;
    return result;
}

} // namespace

graph reversed_graph(const graph& g)
{
    graph r(g.name() + "_rev");
    for (node_id v : g.node_ids()) r.add_node(g.kind(v), g.label(v));
    for (node_id v : g.node_ids())
        for (node_id s : g.succs(v)) r.add_edge(s, v);
    return r;
}

pasap_result pasap(const graph& g, const module_library& lib,
                   const module_assignment& assignment, double max_power,
                   const pasap_options& options)
{
    return run_core(
        {g, lib, assignment, max_power, options.order, options.fixed_starts});
}

pasap_result palap(const graph& g, const module_library& lib,
                   const module_assignment& assignment, double max_power, int latency,
                   const pasap_options& options)
{
    check(latency >= 1, "palap needs a positive latency bound");
    const int n = g.node_count();
    check(static_cast<int>(assignment.size()) == n, "assignment size does not match graph");

    pasap_result result;
    result.sched = schedule(n);
    for (node_id v : g.node_ids()) result.sched.set_module(v, assignment[v.index()]);

    // Convert committed times into the reversed clock: a fixed start f of
    // an operator with delay d becomes latency - f - d.
    std::vector<int> rfixed;
    if (!options.fixed_starts.empty()) {
        check(static_cast<int>(options.fixed_starts.size()) == n,
              "fixed_starts size does not match graph");
        rfixed.assign(static_cast<std::size_t>(n), -1);
        for (node_id v : g.node_ids()) {
            const int f = options.fixed_starts[v.index()];
            if (f < 0) continue;
            const int d = lib.module(assignment[v.index()]).latency;
            if (f + d > latency) {
                result.reason = strf("committed operator '%s' (start %d, delay %d) "
                                     "exceeds the latency bound %d",
                                     g.label(v).c_str(), f, d, latency);
                return result;
            }
            rfixed[v.index()] = latency - f - d;
        }
    }

    // The reversed graph is a pure invariant of `g`; callers sweeping
    // many points pass a pre-built copy through options.reversed
    // (explore_cache keeps one per problem) instead of paying the
    // rebuild on every palap call.
    std::optional<graph> local_rev;
    if (options.reversed == nullptr) local_rev.emplace(reversed_graph(g));
    const graph& rg = options.reversed ? *options.reversed : *local_rev;
    pasap_result rres = run_core({rg, lib, assignment, max_power, options.order, rfixed});
    if (!rres.feasible) {
        result.reason = "reversed pasap: " + rres.reason;
        return result;
    }

    for (node_id v : g.node_ids()) {
        const int d = lib.module(assignment[v.index()]).latency;
        const int s = latency - rres.sched.start(v) - d;
        if (s < 0) {
            result.reason = strf("operator '%s' cannot fit within latency %d under the "
                                 "power cap",
                                 g.label(v).c_str(), latency);
            return result;
        }
        result.sched.set_start(v, s);
    }
    result.feasible = true;
    return result;
}

} // namespace phls
