// Exploration sessions: the stateful owner of a design-space sweep.
//
// A dse::session binds a configured flow (the *prototype*: graph,
// library, strategy, options, enabled stages — its own constraint point
// is ignored) to a long-lived two-level explore_cache, and evaluates
// dse::space point sets against it:
//
//   dse::session s(flow::on(g).latency(17), {.memo_limit = 4096});
//   s.load("sweep.phlscache");              // warm-start, if the file exists
//   const dse::explore_summary sum = s.explore(
//       dse::grid({17, 21, 2}, {2.0, 9.0, 40}),
//       {.on_result = ..., .on_front = ...});
//   s.save("sweep.phlscache");              // persist for the next process
//
// explore() unifies the three flow::run_batch* shapes behind one sink:
// the result channel streams each finished report (what
// run_batch_stream's callback delivered), and the front channel streams
// *envelope deltas* — the points that entered and left the incremental
// Pareto front — instead of re-sending the whole front per completion
// (what run_batch_pareto did).  The run_batch* functions remain as thin
// wrappers over the same executor for eager vector callers; see
// docs/FLOW_API.md for the migration table.
//
// The session's cache is bounded (memo_limit full reports, LRU) and
// persistent: save()/load() serialise the memo tables, so a repeated CLI
// sweep warm-starts across processes.  Warm-started (and evicted) points
// are served as *metric-only* reports — status and achieved
// (peak, area, latency, lifetime) without the datapath — which is
// everything a sweep table, front or envelope reads; disable
// metric_answers to force full recomputes.
//
// Reuse across heterogeneous jobs: a session is pinned to ONE design
// problem — the (graph, library, strategies, options, enabled stages)
// of its prototype — because its cache keys sub-results by exactly that
// configuration.  Re-running a space on the same session warm-starts;
// pointing the same session at a *different* problem is a logic error
// (the level-1 invariants would be wrong for the new graph).  When a
// workload mixes problems (e.g. many tasks, each its own CDFG), hold
// one session per problem.  serve::session_pool (src/serve/server.h)
// does that keying for you: acquire(job) canonicalises the job minus
// its space/threads and returns a shared slot, so duplicate problems
// map to one warm session while distinct ones stay isolated — the task
// engine (src/task/candidates.h) and `phls serve` both reuse it.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dse/space.h"
#include "dse/surrogate.h"
#include "flow/explore_cache.h"
#include "flow/flow.h"
#include "flow/pareto_stream.h"

namespace phls::dse {

/// Session-construction knobs.
struct session_options {
    /// Level-2 memo bound: max *full* reports held (LRU-evicted down to
    /// metric records beyond it); 0 = unbounded.
    std::size_t memo_limit = 0;
    /// Max points materialised per executor call: a space is walked in
    /// chunks of this size, so a 10^5-point plane never exists as one
    /// eager vector.  Must be >= 1.
    std::size_t chunk = 1024;
    /// Serve points whose full report is gone (warm-started from a cache
    /// file, or LRU-evicted) as metric-only reports instead of
    /// recomputing.  Metric reports carry status and achieved
    /// (peak, area, latency, lifetime) but an empty datapath.
    bool metric_answers = true;
};

/// The unified delivery interface of session::explore.  Both channels
/// are optional; calls are serialised (never concurrent).  A throwing
/// callback aborts the exploration and rethrows to the caller.
struct sink {
    /// Per-point channel: (space index, finished report), in completion
    /// order — memo-served points complete instantly, computed points as
    /// their worker finishes.
    stream_callback on_result;
    /// Pareto channel: invoked only when a report *changed* the
    /// incremental front, with exactly the points that entered and left.
    /// Replaying the deltas reconstructs the final front.
    std::function<void(const front_delta&)> on_front;
};

/// Outcome of one explore() call.
struct explore_summary {
    std::size_t space_size = 0; ///< points the space describes
    std::size_t evaluated = 0;  ///< points delivered (< space_size when refine pruned)
    std::size_t feasible = 0;   ///< delivered points with an ok status
    std::size_t metric_served = 0; ///< points answered as metric-only reports
    std::vector<front_point> front; ///< final Pareto front over the delivered points
    double wall_ms = 0.0;           ///< wall-clock time of the exploration
};

/// Knobs of one explore_guided() call.
struct guided_options {
    /// Prune margin, in prediction-sigma units: a pending point is
    /// skipped only while its *optimistic* prediction (mean shifted
    /// `margin` sigmas in the point's favour) is predicted infeasible or
    /// dominated by the running exact front.  Larger margins widen the
    /// exact-verify band (safer, more evaluations); must be >= 0.
    double margin = 3.0;
    /// Hard cap on exact evaluations; 0 = unbounded.  A binding budget
    /// deliberately trades the front-identity guarantee for cost — the
    /// points left unevaluated are reported as skipped.
    std::size_t eval_budget = 0;
    /// Exact evaluations per guided round; the model refits and every
    /// pending point is re-audited between rounds.  Must be >= 1.
    /// Larger batches spread coverage faster (signature brackets form
    /// sooner), smaller ones audit more often; 256 measures best on
    /// 10^4-point planes.
    std::size_t batch = 256;
    /// Training rows before the surrogate may prune at all (forwarded
    /// to surrogate_options::min_rows).
    std::size_t min_train = 24;
    /// Ridge strength of the linear models; must be > 0.
    double ridge = 1e-6;
    /// Seed the model from this session's warm metric records (loaded
    /// cache files / previous explorations of the same configuration)
    /// before the walk starts.
    bool pretrain_from_cache = true;
};

/// Outcome of one explore_guided() call.  The base counters keep their
/// explore() meaning: `evaluated` counts *delivered* points — exact
/// computations plus memo serves; skipped points are never delivered.
struct guided_summary : explore_summary {
    std::size_t computed = 0;    ///< points evaluated exactly (executor or refine corner)
    std::size_t memo_served = 0; ///< points answered from the memo during the scan
    std::size_t skipped = 0;     ///< points pruned by the surrogate, never delivered
    std::size_t verified = 0;    ///< exact evaluations ordered by a *ready* model
    std::size_t rounds = 0;      ///< guided refit/audit rounds run
    std::size_t trained_rows = 0; ///< rows folded into the model (incl. pretraining)
};

/// One design problem + one cache + many explorations.  Not thread-safe
/// itself (one explore() at a time); the evaluation inside fans out over
/// the worker pool.
class session {
public:
    /// Binds `prototype` (its constraint point is irrelevant) to a fresh
    /// cache built for its (graph, library).  @throws phls::error on a
    /// malformed problem or invalid options.
    explicit session(const flow& prototype, const session_options& opts = {});

    /// The session's cache; shareable with plain flow::reuse() callers.
    const std::shared_ptr<explore_cache>& cache() const { return cache_; }

    /// Persists the cache's memo tables (committed windows + metric
    /// records); returns the number of records written — what load()
    /// into a fresh session reports.  @throws phls::error when the file
    /// cannot be written.
    std::size_t save(const std::string& path) const { return cache_->save(path); }

    /// Warm-starts the cache from a save()d file; returns records
    /// loaded.  @throws cache_file_error carrying the path and failure
    /// kind (missing / truncated / corrupt / version or problem
    /// mismatch) — never silently degrades.  Call before explore().
    std::size_t load(const std::string& path) { return cache_->load(path); }

    /// Unions a save()d cache file into this session's (possibly warm)
    /// cache: novel committed-window and metric records are inserted,
    /// keys the cache already holds keep their in-memory value.  This is
    /// how per-shard sweep caches combine into one warm session; merging
    /// every shard file then behaves like the single cache that computed
    /// all shards.  Returns the number of new records.
    /// @throws cache_file_error like load().
    std::size_t merge(const std::string& path) { return cache_->merge(path); }

    /// Evaluates every point of `s` (adaptively, when s.adaptive()) on
    /// `threads` workers (0 = hardware concurrency), delivering through
    /// `sk` and folding the incremental Pareto front.  Reports of a
    /// cold, unbounded session are byte-identical to
    /// flow::run_batch(s.materialize()); warm or evicted points are
    /// served as metric-only reports when metric_answers allows.
    explore_summary explore(const space& s, const sink& sk = {}, int threads = 0);

    /// Like explore(), but steered by an incremental surrogate: pending
    /// points are evaluated best-predicted-first in rounds, and points
    /// whose optimistic prediction stays dominated by the running front
    /// by `g.margin` sigmas — or that sit strictly inside a
    /// constant-signature run of evaluated neighbours (the 1-D analogue
    /// of refine's uniform-cell rule) — are skipped without ever being
    /// delivered.
    /// Every surviving point is evaluated *exactly* — the surrogate
    /// steers, never decides — and with an unbounded eval_budget the
    /// returned front is gated byte-identical to explore()'s.
    /// Counters satisfy computed + memo_served + skipped == space_size.
    /// Adaptive (refine) spaces run the refine walk with every corner
    /// training the model but no surrogate pruning (refine owns its own
    /// skip decisions), so refine+guided == refine+eager.
    guided_summary explore_guided(const space& s, const guided_options& g = {},
                                  const sink& sk = {}, int threads = 0);

private:
    struct delivery_state;

    /// Evaluates `indices` (space indices into `s`), serving memo hits
    /// and batching the rest through the flow executor.  When the state
    /// carries a surrogate, the freshly delivered rows are trained in
    /// space-index order before returning.
    void evaluate(const space& s, const std::vector<std::size_t>& indices,
                  delivery_state& state, int threads);

    /// Serves `index` from the level-2 memo if possible; returns false
    /// when the point must be computed.
    bool serve_from_memo(const space& s, std::size_t index,
                         delivery_state& state);

    explore_summary explore_exhaustive(const space& s, delivery_state& state,
                                       int threads);
    explore_summary explore_adaptive(const space& s, delivery_state& state,
                                     int threads);

    flow flow_;
    session_options opts_;
    std::shared_ptr<explore_cache> cache_;
};

} // namespace phls::dse
