#include "dse/surrogate.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/errors.h"

namespace phls::dse {

namespace {

/// Guard below which a feature column counts as constant and is left
/// unscaled (its centred values are ~0, so its weight is killed by the
/// ridge instead of blowing up under a ~0 divisor).
constexpr double scale_floor = 1e-12;

bool finite(double v) { return std::isfinite(v); }

} // namespace

// ---------------------------------------------------------------- model

linear_model::linear_model(std::size_t dim, double lambda, double prior_sd)
    : dim_(dim), lambda_(lambda), prior_sd_(prior_sd), sx_(dim, 0.0),
      sxx_(dim * dim, 0.0), sxy_(dim, 0.0)
{
    check(dim_ >= 1, "linear_model needs at least one feature");
    check(lambda_ > 0.0, "linear_model ridge strength must be > 0");
    check(prior_sd_ >= 0.0 && finite(prior_sd_),
          "linear_model prior_sd must be finite and >= 0");
}

void linear_model::observe(const std::vector<double>& x, double y)
{
    check(x.size() == dim_, "linear_model row has the wrong feature count");
    for (const double v : x)
        check(finite(v), "linear_model rejects non-finite feature values");
    check(finite(y), "linear_model rejects non-finite target values");
    ++n_;
    for (std::size_t i = 0; i < dim_; ++i) {
        sx_[i] += x[i];
        sxy_[i] += x[i] * y;
        for (std::size_t j = 0; j < dim_; ++j) sxx_[i * dim_ + j] += x[i] * x[j];
    }
    sy_ += y;
    syy_ += y * y;
    dirty_ = true;
}

/// Rebuilds the standardised ridge fit from the raw moments: centre and
/// scale analytically (C = Σxxᵀ - n μμᵀ, s_i = sqrt(C_ii / n)), solve
/// (Ã + λnI) w̃ = b̃ by Cholesky.  Identical to batch-fitting the same
/// rows, whatever order they arrived in.
void linear_model::refit() const
{
    dirty_ = false;
    const double n = static_cast<double>(n_);
    mean_.assign(dim_, 0.0);
    scale_.assign(dim_, 1.0);
    w_.assign(dim_, 0.0);
    chol_.assign(dim_ * dim_, 0.0);
    ybar_ = n_ > 0 ? sy_ / n : 0.0;
    sigma2_ = 0.0;
    if (n_ == 0) return;

    for (std::size_t i = 0; i < dim_; ++i) mean_[i] = sx_[i] / n;
    std::vector<double> cov(dim_ * dim_, 0.0); // centred Gram C
    for (std::size_t i = 0; i < dim_; ++i)
        for (std::size_t j = 0; j < dim_; ++j)
            cov[i * dim_ + j] = sxx_[i * dim_ + j] - n * mean_[i] * mean_[j];
    for (std::size_t i = 0; i < dim_; ++i) {
        const double var = std::max(0.0, cov[i * dim_ + i] / n);
        const double s = std::sqrt(var);
        scale_[i] = s > scale_floor ? s : 1.0;
    }

    // Standardised normal equations with the ridge on the diagonal.
    std::vector<double> a(dim_ * dim_, 0.0);
    std::vector<double> b(dim_, 0.0);
    for (std::size_t i = 0; i < dim_; ++i) {
        for (std::size_t j = 0; j < dim_; ++j)
            a[i * dim_ + j] = cov[i * dim_ + j] / (scale_[i] * scale_[j]);
        a[i * dim_ + i] += lambda_ * n;
        b[i] = (sxy_[i] - mean_[i] * sy_) / scale_[i];
    }

    // Cholesky a = L Lᵀ; the ridge keeps `a` positive definite.
    for (std::size_t i = 0; i < dim_; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double sum = a[i * dim_ + j];
            for (std::size_t k = 0; k < j; ++k)
                sum -= chol_[i * dim_ + k] * chol_[j * dim_ + k];
            if (i == j)
                chol_[i * dim_ + i] = std::sqrt(std::max(sum, scale_floor));
            else
                chol_[i * dim_ + j] = sum / chol_[j * dim_ + j];
        }
    }
    // Solve L z = b, then Lᵀ w = z.
    std::vector<double> z(dim_, 0.0);
    for (std::size_t i = 0; i < dim_; ++i) {
        double sum = b[i];
        for (std::size_t k = 0; k < i; ++k) sum -= chol_[i * dim_ + k] * z[k];
        z[i] = sum / chol_[i * dim_ + i];
    }
    for (std::size_t ii = dim_; ii-- > 0;) {
        double sum = z[ii];
        for (std::size_t k = ii + 1; k < dim_; ++k)
            sum -= chol_[k * dim_ + ii] * w_[k];
        w_[ii] = sum / chol_[ii * dim_ + ii];
    }

    // Residual variance from the moments: RSS = Sỹỹ - w̃·b̃ with
    // Sỹỹ = Σy² - n ȳ², degrees of freedom n - dim - 1 (clamped).
    const double syy_centred = std::max(0.0, syy_ - n * ybar_ * ybar_);
    double fit = 0.0;
    for (std::size_t i = 0; i < dim_; ++i) fit += w_[i] * b[i];
    const double rss = std::max(0.0, syy_centred - fit);
    const double dof =
        std::max(1.0, n - static_cast<double>(dim_) - 1.0);
    sigma2_ = rss / dof;
    // A perfect (or degenerate all-equal-target) fit still carries
    // parameter uncertainty ~ var(y)/n — without this floor, RSS = 0
    // would zero the band and leverage could no longer widen it.
    var_floor_ = std::max(syy_centred / n, prior_sd_ * prior_sd_) / n;
}

prediction linear_model::predict(const std::vector<double>& x) const
{
    check(x.size() == dim_, "linear_model query has the wrong feature count");
    prediction p;
    if (n_ == 0) {
        p.sigma = std::numeric_limits<double>::infinity();
        return p;
    }
    if (dirty_) refit();
    std::vector<double> xs(dim_, 0.0);
    for (std::size_t i = 0; i < dim_; ++i) {
        check(finite(x[i]), "linear_model rejects non-finite feature values");
        xs[i] = (x[i] - mean_[i]) / scale_[i];
    }
    double mean = ybar_;
    for (std::size_t i = 0; i < dim_; ++i) mean += w_[i] * xs[i];
    // Leverage h = x̃ᵀ (Ã + λnI)⁻¹ x̃ via the stored factor: solve
    // L z = x̃ and take |z|².  Points far outside the training cloud get
    // large h and therefore honest, wide sigma bands.
    std::vector<double> z(dim_, 0.0);
    double h = 0.0;
    for (std::size_t i = 0; i < dim_; ++i) {
        double sum = xs[i];
        for (std::size_t k = 0; k < i; ++k) sum -= chol_[i * dim_ + k] * z[k];
        z[i] = sum / chol_[i * dim_ + i];
        h += z[i] * z[i];
    }
    p.mean = mean;
    p.sigma = std::sqrt(std::max(sigma2_, var_floor_) * (1.0 + h)) +
              1e-9 * (1.0 + std::abs(mean));
    return p;
}

std::vector<double> linear_model::weights() const
{
    if (dirty_) refit();
    return w_;
}

double linear_model::residual_rms() const
{
    if (dirty_) refit();
    return std::sqrt(sigma2_);
}

// ------------------------------------------------------------ surrogate

namespace {
constexpr std::size_t feature_count = 8;
}

surrogate::surrogate(const module_library& lib, bool with_lifetime,
                     const surrogate_options& opts)
    : opts_(opts), with_lifetime_(with_lifetime),
      // The feasibility target is Bernoulli: its prior floor keeps the
      // band honest even when every row seen so far agrees.
      feasible_(feature_count, opts.ridge, 0.5),
      peak_(feature_count, opts.ridge), area_(feature_count, opts.ridge),
      lifetime_(feature_count, opts.ridge)
{
    check(opts_.min_rows >= 2, "surrogate min_rows must be >= 2");
    double total = 0.0;
    for (const fu_module& m : lib.modules()) {
        power_levels_.push_back(m.power);
        total += m.power;
    }
    std::sort(power_levels_.begin(), power_levels_.end());
    power_levels_.erase(
        std::unique(power_levels_.begin(), power_levels_.end()),
        power_levels_.end());
    // Any cap above the sum of every module's power behaves like "no
    // cap"; clamping there keeps the unbounded_power sentinel (+inf)
    // out of the z-scored feature columns without conflating it with
    // reachable caps.
    cap_ceiling_ = 1.0 + 2.0 * total;
}

std::vector<double> surrogate::features(const synthesis_constraints& c) const
{
    const double t = static_cast<double>(c.latency);
    const double p = std::min(c.max_power, cap_ceiling_);
    const double bucket = static_cast<double>(
        std::upper_bound(power_levels_.begin(), power_levels_.end(), p) -
        power_levels_.begin());
    return {t,
            p,
            std::log1p(std::max(0.0, t)),
            std::log1p(std::max(0.0, p)),
            1.0 / (1.0 + std::max(0.0, t)),
            1.0 / (1.0 + std::max(0.0, p)),
            t * p,
            bucket};
}

void surrogate::train(const metric_record& row)
{
    const std::vector<double> x = features(row.constraints);
    const bool ok = row.st.ok() && row.has_design;
    if (ok) {
        check(finite(row.peak) && finite(row.area),
              "surrogate rejects a feasible training row with non-finite "
              "metrics");
        check(!row.has_lifetime || finite(row.lifetime_seconds),
              "surrogate rejects a training row with a non-finite lifetime");
    }
    feasible_.observe(x, ok ? 1.0 : 0.0);
    ++rows_;
    if (!ok) return;
    peak_.observe(x, row.peak);
    area_.observe(x, row.area);
    ++ok_rows_;
    if (with_lifetime_ && row.has_lifetime) {
        lifetime_.observe(x, row.lifetime_seconds);
        ++lifetime_rows_;
    }
}

bool surrogate::ready() const { return rows_ >= opts_.min_rows; }

estimate surrogate::predict(const synthesis_constraints& c) const
{
    const std::vector<double> x = features(c);
    estimate e;
    e.ready = ready();
    e.feasible = feasible_.predict(x);
    e.metrics_ready = ok_rows_ >= opts_.min_rows &&
                      (!with_lifetime_ || lifetime_rows_ >= opts_.min_rows);
    if (ok_rows_ > 0) {
        e.peak = peak_.predict(x);
        e.area = area_.predict(x);
    }
    if (with_lifetime_ && lifetime_rows_ > 0) e.lifetime = lifetime_.predict(x);
    return e;
}

} // namespace phls::dse
