// Declarative (T, Pmax) point spaces for design-space exploration.
//
// A dse::space describes a set of constraint points *lazily*: grids and
// crosses store only their axes, so a 10^5-point Figure-2 plane costs a
// few hundred bytes until a session actually walks it, and enumeration
// streams points in a deterministic order (row-major, latency outer)
// without ever materialising an eager vector.  Spaces compose: concat()
// chains two spaces, list() wraps an explicit point vector, and
// refine() marks a lattice for *adaptive* evaluation — dse::session
// evaluates its cells coarse-to-fine and subdivides only where the
// corner outcomes land on different Pareto-front regions, skipping the
// interiors of uniform cells entirely.
//
// The space layer knows nothing about flows or caches; dse::session
// (session.h) owns evaluation.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "synth/synthesizer.h"

namespace phls::dse {

/// Inclusive integer latency axis {lo, lo+step, ..., <= hi}.
struct latency_range {
    int lo = 0;   ///< first latency bound, cycles
    int hi = 0;   ///< last latency bound (inclusive), cycles
    int step = 1; ///< stride between bounds; must be positive

    /// The axis values; @throws phls::error on a non-positive step or
    /// an empty range (hi < lo).
    std::vector<int> values() const;
};

/// Evenly spaced power-cap axis: `count` caps from lo to hi inclusive,
/// spaced like flow::power_grid spaces its Figure-2 grid.
struct power_range {
    double lo = 0.0; ///< first cap
    double hi = 0.0; ///< last cap (inclusive)
    int count = 2;   ///< number of caps; must be >= 1

    /// The axis values; @throws phls::error when count < 1.
    std::vector<double> values() const;
};

/// A lazily-enumerated set of (T, Pmax) constraint points.  Cheap to
/// copy (axis vectors and shared children); immutable once built.
class space {
public:
    /// Number of points the space describes, computed from the axes —
    /// never by materialisation.  For an adaptive (refine) space this is
    /// the full lattice size, the upper bound of what a session may
    /// evaluate.
    std::size_t size() const;

    /// Streams every point as (index, point) in the deterministic space
    /// order — row-major with the latency axis outer, concatenation
    /// left-to-right.  `fn` returns false to stop early (laziness: a
    /// consumer of the first k points of a 10^5-point grid pays for k).
    void enumerate(
        const std::function<bool(std::size_t, const synthesis_constraints&)>& fn) const;

    /// The point at `index` in space order.  O(1) for lattices and
    /// lists, O(depth) for concatenations.  @throws phls::error when
    /// index >= size().
    synthesis_constraints at(std::size_t index) const;

    /// Materialises the first `limit` points (all, by default) into a
    /// vector — for tests and small spaces; sessions never call this.
    std::vector<synthesis_constraints>
    materialize(std::size_t limit = static_cast<std::size_t>(-1)) const;

    /// True iff this space was built by refine(): a session evaluates it
    /// adaptively instead of exhaustively.
    bool adaptive() const { return adaptive_; }

    /// True iff this space is a 2-D lattice (grid/cross/refine): the
    /// latency/cap axes below are meaningful.
    bool is_lattice() const { return kind_ == kind::lattice; }

    /// Lattice axes (ascending construction order preserved).
    /// @throws phls::error when !is_lattice().
    const std::vector<int>& latencies() const;
    const std::vector<double>& caps() const;

    // Factories (free-function style, the declarative surface).
    friend space grid(const latency_range& T, const power_range& P);
    friend space list(std::vector<synthesis_constraints> points);
    friend space cross(std::vector<int> latencies, std::vector<double> caps);
    friend space refine(std::vector<int> latencies, std::vector<double> caps);
    friend space concat(space a, space b);

private:
    enum class kind { list, lattice, concat };

    space() = default;

    kind kind_ = kind::list;
    bool adaptive_ = false;
    std::vector<synthesis_constraints> points_; ///< kind::list
    std::vector<int> latencies_;                ///< kind::lattice
    std::vector<double> caps_;                  ///< kind::lattice
    std::shared_ptr<const space> left_, right_; ///< kind::concat
};

/// The cartesian lattice of a latency range and a power range, row-major
/// (latency outer).  Lazy: stores the axes, never the product.
space grid(const latency_range& T, const power_range& P);

/// An explicit point vector, enumerated in the given order.
space list(std::vector<synthesis_constraints> points);

/// The cartesian lattice of two explicit axis vectors, row-major
/// (latency outer).  @throws phls::error when an axis is empty.
space cross(std::vector<int> latencies, std::vector<double> caps);

/// The lattice of cross(), marked for adaptive evaluation: a session
/// starts from the cell corners and subdivides only cells whose corner
/// reports land on different Pareto-front regions (different status or
/// achieved metrics), so uniform plateaus of a dense plane are never
/// exhaustively synthesised.  Point indices are lattice indices, so the
/// refined front is directly comparable to the eager grid's.
/// @throws phls::error when an axis is empty.
space refine(std::vector<int> latencies, std::vector<double> caps);

/// The concatenation of two spaces: a's points first, then b's, indices
/// running straight through.  @throws phls::error when either side is
/// adaptive (refine spaces own their whole lattice and cannot be
/// chained).
space concat(space a, space b);

} // namespace phls::dse
