#include "dse/session.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <unordered_map>

#include "support/errors.h"
#include "support/memo_key.h"

namespace phls::dse {

namespace {

/// The Pareto-region signature refine() compares across cell corners:
/// the outcome class and the achieved metrics, canonically encoded.
/// The constraint point itself and diagnostic text (which embeds the
/// point) are deliberately excluded — two corners are "the same region"
/// iff the synthesis *outcome* is identical.
std::string region_signature(const flow_report& r)
{
    std::string sig;
    key_int(sig, static_cast<long>(r.st.code));
    key_int(sig, r.has_design ? 1 : 0);
    key_int(sig, r.optimal ? 1 : 0);
    key_double(sig, r.area);
    key_double(sig, r.peak);
    key_int(sig, r.latency);
    key_int(sig, r.has_lifetime ? 1 : 0);
    key_double(sig, r.lifetime_seconds);
    return sig;
}

double elapsed_ms(std::chrono::steady_clock::time_point since)
{
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(now - since).count();
}

/// Where a delivered report came from — the guided walk's counters tell
/// exact computations and memo serves apart.
enum class delivery_source { computed, memo_report, memo_metric };

/// The surrogate may skip a point only while it is predicted infeasible
/// by `margin` sigmas, or while its *optimistic* estimate (every
/// objective shifted `margin` sigmas in the point's favour) is still
/// dominated by the running exact front.  Anything less clear-cut lands
/// in the exact-verify band and is evaluated.
bool prunable(const estimate& e, std::size_t index, const synthesis_constraints& c,
              const std::vector<front_point>& front, bool want_lifetime,
              double margin)
{
    if (!e.ready) return false;
    if (e.feasible.mean + margin * e.feasible.sigma < 0.5) return true;
    if (!e.metrics_ready) return false;
    front_point cand;
    cand.index = index;
    cand.latency_bound = c.latency;
    cand.cap = c.max_power;
    cand.peak = e.peak.mean - margin * e.peak.sigma;
    cand.area = e.area.mean - margin * e.area.sigma;
    cand.latency = c.latency;
    cand.has_lifetime = want_lifetime;
    cand.lifetime_seconds = e.lifetime.mean + margin * e.lifetime.sigma;
    for (const front_point& a : front)
        if (front_dominates(a, cand)) return true;
    return false;
}

/// Region signatures of the evaluated points, addressable along both
/// constraint axes: latency bound -> cap -> signature and its
/// transpose.  This is what lets the guided walk prune the interiors of
/// constant-outcome runs a regression band can never rule out.
struct signature_grid {
    std::map<int, std::map<double, std::string>> by_latency;
    std::map<double, std::map<int, std::string>> by_cap;

    void record(const flow_report& r)
    {
        const std::string sig = region_signature(r);
        by_latency[r.constraints.latency][r.constraints.max_power] = sig;
        by_cap[r.constraints.max_power][r.constraints.latency] = sig;
    }

    /// True when the nearest evaluated points strictly either side of
    /// `key` in `row` landed on the same Pareto region.
    template <typename Map, typename Key>
    static bool run_interior(const Map& row, Key key)
    {
        const auto hi = row.upper_bound(key); // first strictly above
        if (hi == row.end()) return false;
        auto lo = row.lower_bound(key); // first not-below
        if (lo == row.begin()) return false;
        --lo; // largest strictly below
        return lo->second == hi->second;
    }

    /// A metric plateau's interior cannot change the front: whichever
    /// exact-tie representative survives the front's index collapse
    /// sits on a run *boundary* (its lower neighbour differs), so the
    /// interior points are skippable.  The 1-D analogue of refine's
    /// uniform-cell rule: a heuristic (a pocket strictly between two
    /// same-signature evaluations would be missed, like refine's
    /// interior pockets), enforced byte-identical by the test and bench
    /// gates.  Exact-duplicate points are deliberately NOT treated as
    /// brackets — they are served from the memo instead, keeping the
    /// lowest-index representative exact.
    bool bracketed(const synthesis_constraints& c) const
    {
        const auto row = by_latency.find(c.latency);
        if (row != by_latency.end() && run_interior(row->second, c.max_power))
            return true;
        const auto col = by_cap.find(c.max_power);
        return col != by_cap.end() && run_interior(col->second, c.latency);
    }
};

} // namespace

/// Per-explore() mutable state: the incremental front, the summary under
/// construction, and (for adaptive spaces) the corner signatures.
struct session::delivery_state {
    const sink* sk = nullptr;
    pareto_stream front;
    explore_summary summary;
    bool want_signatures = false;
    std::unordered_map<std::size_t, std::string> signatures; ///< space index -> region
    surrogate* model = nullptr;   ///< set only by explore_guided
    signature_grid* grid = nullptr; ///< set only by the guided walk
    std::size_t computed = 0;     ///< deliveries from the executor
    std::size_t memo_served = 0;  ///< deliveries from the level-2 memo scan
    std::size_t trained_rows = 0; ///< rows folded into the surrogate
    /// Freshly delivered rows awaiting training, drained by train_fresh().
    std::vector<std::pair<std::size_t, metric_record>> fresh;

    /// Folds one finished report in and fans it out to the sink.  Called
    /// serialised (scan loop or the executor's serialised callback).
    void deliver(std::size_t index, const flow_report& report, delivery_source src)
    {
        ++summary.evaluated;
        if (report.st.ok()) ++summary.feasible;
        if (src == delivery_source::memo_metric) ++summary.metric_served;
        if (src == delivery_source::computed)
            ++computed;
        else
            ++memo_served;
        if (model != nullptr) fresh.emplace_back(index, metric_of(report));
        if (grid != nullptr) grid->record(report);
        if (want_signatures) signatures.emplace(index, region_signature(report));
        front_delta delta;
        front.add(index, report, &delta);
        if (sk->on_result) sk->on_result(index, report);
        if (delta.changed() && sk->on_front) sk->on_front(delta);
    }

    /// Trains the pending fresh rows in *space-index* order, so the
    /// model state (and therefore every prune decision downstream) is
    /// independent of worker-completion order and thread count.
    void train_fresh()
    {
        if (model == nullptr) {
            fresh.clear();
            return;
        }
        std::sort(fresh.begin(), fresh.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        for (const auto& [index, m] : fresh) {
            (void)index;
            model->train(m);
            ++trained_rows;
        }
        fresh.clear();
    }
};

session::session(const flow& prototype, const session_options& opts)
    : flow_(prototype), opts_(opts), cache_(flow_.build_cache())
{
    check(opts_.chunk >= 1, "session chunk size must be >= 1");
    cache_->set_report_capacity(opts_.memo_limit);
    flow_.reuse(cache_);
}

bool session::serve_from_memo(const space& s, std::size_t index,
                              delivery_state& state)
{
    const synthesis_constraints c = s.at(index);
    const std::string fp = flow_.fingerprint(c);
    flow_report full;
    if (cache_->report_lookup(fp, &full)) {
        state.deliver(index, full, delivery_source::memo_report);
        return true;
    }
    // Metric-only entries exist only after an eviction or a cache-file
    // load; skip the per-point probe (one mutex round-trip each) when
    // there are none.
    if (opts_.metric_answers && cache_->report_metric_size() > 0) {
        metric_record m;
        if (cache_->metric_lookup(fp, &m)) {
            state.deliver(index, metric_report(m), delivery_source::memo_metric);
            return true;
        }
    }
    return false;
}

void session::evaluate(const space& s, const std::vector<std::size_t>& indices,
                       delivery_state& state, int threads)
{
    // Scan: duplicate points whose full report is memoised are served as
    // run_point would serve them (so a cold session is byte-identical to
    // run_batch); points evicted to — or warm-started as — metric
    // records answer at the metric level; everything else batches
    // through the flow executor.
    // A malformed worker count must fail *every* point with
    // invalid_argument (the run_batch contract) — memo-warm points
    // included, so skip the scan and let the executor fail them all.
    const bool malformed = threads < 0;
    std::vector<synthesis_constraints> compute_points;
    std::vector<std::size_t> compute_indices;
    for (const std::size_t index : indices) {
        if (!malformed && serve_from_memo(s, index, state)) continue;
        compute_points.push_back(s.at(index));
        compute_indices.push_back(index);
    }
    if (!compute_points.empty())
        flow_.run_batch_stream(
            compute_points,
            [&](std::size_t local, const flow_report& r) {
                state.deliver(compute_indices[local], r, delivery_source::computed);
            },
            threads);
    // Fresh rows train *after* the batch in space-index order, so the
    // model is a function of the evaluated set alone, not of completion
    // order — adaptive (refine) corner evaluations flow through here
    // too, which is what makes refine+guided == refine+eager.
    state.train_fresh();
}

explore_summary session::explore(const space& s, const sink& sk, int threads)
{
    const auto started = std::chrono::steady_clock::now();
    delivery_state state;
    state.sk = &sk;
    state.summary.space_size = s.size();

    explore_summary summary = s.adaptive() ? explore_adaptive(s, state, threads)
                                           : explore_exhaustive(s, state, threads);
    summary.front = state.front.front();
    summary.wall_ms = elapsed_ms(started);
    return summary;
}

guided_summary session::explore_guided(const space& s, const guided_options& g,
                                       const sink& sk, int threads)
{
    check(g.margin >= 0.0, "guided prune margin must be >= 0");
    check(g.batch >= 1, "guided batch size must be >= 1");
    const auto started = std::chrono::steady_clock::now();
    delivery_state state;
    state.sk = &sk;
    state.summary.space_size = s.size();

    surrogate model(flow_.library(), flow_.wants_lifetime(),
                    {g.ridge, g.min_train});
    // Seed the model from every warm record of this exact configuration
    // (loaded cache files, previous explorations).  When pretraining
    // runs, the scan below must not re-train its memo hits — they are
    // the same records — so the model is attached only afterwards.
    if (g.pretrain_from_cache) {
        cache_->each_metric([&](const std::string& fp, const metric_record& m) {
            if (fp != flow_.fingerprint(m.constraints)) return;
            model.train(m);
            ++state.trained_rows;
        });
    } else {
        state.model = &model;
    }

    std::size_t verified = 0;
    std::size_t rounds = 0;
    std::size_t skipped = 0;

    if (s.adaptive()) {
        // refine owns the skip decisions on an adaptive lattice; the
        // surrogate only trains (through evaluate()), so refine+guided
        // delivers exactly what refine+eager delivers.
        state.model = &model;
        explore_adaptive(s, state, threads);
        skipped = state.summary.space_size - state.summary.evaluated;
    } else if (threads < 0) {
        // run_batch contract: a malformed worker count fails every
        // point — nothing may be pruned or memo-served.
        state.model = &model;
        explore_exhaustive(s, state, threads);
    } else {
        // Scan every point once: memo hits deliver (and count) now, the
        // rest become the pending pool the surrogate steers through.
        signature_grid grid;
        state.grid = &grid;
        std::vector<std::size_t> pending;
        s.enumerate([&](std::size_t index, const synthesis_constraints&) {
            if (!serve_from_memo(s, index, state)) pending.push_back(index);
            return true;
        });
        state.train_fresh();
        state.model = &model;

        const bool want_lifetime = flow_.wants_lifetime();
        struct scored {
            std::size_t index;
            double area;
            double peak;
        };
        while (!pending.empty()) {
            if (g.eval_budget != 0 && state.computed >= g.eval_budget) break;
            ++rounds;
            const bool steering = model.ready();
            const std::vector<front_point>& front = state.front.front();
            std::vector<std::size_t> keep_raw;
            std::vector<scored> ranked;
            std::vector<std::size_t> pruned;
            for (const std::size_t index : pending) {
                const synthesis_constraints c = s.at(index);
                if (grid.bracketed(c)) {
                    pruned.push_back(index);
                    continue;
                }
                if (!steering) {
                    keep_raw.push_back(index);
                    continue;
                }
                const estimate e = model.predict(c);
                if (prunable(e, index, c, front, want_lifetime, g.margin))
                    pruned.push_back(index);
                else
                    ranked.push_back({index, e.area.mean, e.peak.mean});
            }
            std::vector<std::size_t> keep;
            if (!steering) {
                // Seed rounds sample the pending pool with a stride, so
                // the first g.batch evaluations *span* the space instead
                // of piling into one corner — the model's first fit (and
                // its leverage bands) then rest on a covering design.
                const std::size_t stride =
                    std::max<std::size_t>(1, keep_raw.size() / g.batch);
                keep.reserve(keep_raw.size());
                for (std::size_t offset = 0; offset < stride; ++offset)
                    for (std::size_t k = offset; k < keep_raw.size(); k += stride)
                        keep.push_back(keep_raw[k]);
            } else {
                // Best-predicted-first: the points the model expects on
                // the front evaluate early, so later audits prune
                // against a tight exact front.
                std::sort(ranked.begin(), ranked.end(),
                          [](const scored& a, const scored& b) {
                              if (a.area != b.area) return a.area < b.area;
                              if (a.peak != b.peak) return a.peak < b.peak;
                              return a.index < b.index;
                          });
                keep.reserve(ranked.size());
                for (const scored& r : ranked) keep.push_back(r.index);
            }
            if (keep.empty()) {
                // Fixpoint: every pending point stays prunable against
                // the final model and the final exact front.
                pending = std::move(pruned);
                break;
            }
            std::size_t take = std::min<std::size_t>(g.batch, keep.size());
            if (g.eval_budget != 0)
                take = std::min<std::size_t>(take, g.eval_budget - state.computed);
            const std::vector<std::size_t> block(
                keep.begin(), keep.begin() + static_cast<std::ptrdiff_t>(take));
            const std::size_t computed_before = state.computed;
            evaluate(s, block, state, threads);
            if (steering) verified += state.computed - computed_before;
            // Everything not in this round's block stays pending and is
            // re-audited against the refit model and the grown front.
            std::vector<std::size_t> rest(
                keep.begin() + static_cast<std::ptrdiff_t>(take), keep.end());
            rest.insert(rest.end(), pruned.begin(), pruned.end());
            std::sort(rest.begin(), rest.end());
            pending = std::move(rest);
        }
        skipped = pending.size();
    }

    guided_summary summary;
    static_cast<explore_summary&>(summary) = state.summary;
    summary.front = state.front.front();
    summary.computed = state.computed;
    summary.memo_served = state.memo_served;
    summary.skipped = skipped;
    summary.verified = verified;
    summary.rounds = rounds;
    summary.trained_rows = state.trained_rows;
    summary.wall_ms = elapsed_ms(started);
    return summary;
}

explore_summary session::explore_exhaustive(const space& s, delivery_state& state,
                                            int threads)
{
    // Walk the space in bounded chunks: at most opts_.chunk points (plus
    // the executor's result slots for the computed subset) exist at
    // once, however large the space is.
    std::vector<std::size_t> chunk;
    chunk.reserve(std::min<std::size_t>(opts_.chunk, s.size()));
    s.enumerate([&](std::size_t index, const synthesis_constraints&) {
        chunk.push_back(index);
        if (chunk.size() >= opts_.chunk) {
            evaluate(s, chunk, state, threads);
            chunk.clear();
        }
        return true;
    });
    if (!chunk.empty()) evaluate(s, chunk, state, threads);
    return state.summary;
}

explore_summary session::explore_adaptive(const space& s, delivery_state& state,
                                          int threads)
{
    const std::vector<int>& ts = s.latencies();
    const std::vector<double>& ps = s.caps();
    const std::size_t np = ps.size();
    const auto lin = [np](std::size_t i, std::size_t j) { return i * np + j; };

    state.want_signatures = true;

    // Coarse-to-fine cell subdivision over the index lattice.  Each wave
    // batch-evaluates every corner it is missing (one executor call, so
    // the worker pool stays busy), then splits exactly the cells whose
    // corners landed on different Pareto-front regions.
    struct cell {
        std::size_t i0, i1, j0, j1;
    };
    std::vector<cell> wave = {{0, ts.size() - 1, 0, np - 1}};
    while (!wave.empty()) {
        std::vector<std::size_t> need;
        std::set<std::size_t> queued;
        for (const cell& c : wave)
            for (const std::size_t index :
                 {lin(c.i0, c.j0), lin(c.i0, c.j1), lin(c.i1, c.j0), lin(c.i1, c.j1)})
                if (!state.signatures.count(index) && queued.insert(index).second)
                    need.push_back(index);
        std::sort(need.begin(), need.end()); // deterministic input order
        // The chunk bound holds for adaptive walks too: a wave of a
        // large non-uniform lattice can need most of its corners.
        for (std::size_t pos = 0; pos < need.size(); pos += opts_.chunk) {
            const std::vector<std::size_t> block(
                need.begin() + static_cast<std::ptrdiff_t>(pos),
                need.begin() + static_cast<std::ptrdiff_t>(
                                   std::min(pos + opts_.chunk, need.size())));
            evaluate(s, block, state, threads);
        }

        std::vector<cell> next;
        for (const cell& c : wave) {
            const bool can_t = c.i1 - c.i0 > 1;
            const bool can_p = c.j1 - c.j0 > 1;
            if (!can_t && !can_p) continue; // no interior points to decide on
            const std::string& sig = state.signatures.at(lin(c.i0, c.j0));
            if (sig == state.signatures.at(lin(c.i0, c.j1)) &&
                sig == state.signatures.at(lin(c.i1, c.j0)) &&
                sig == state.signatures.at(lin(c.i1, c.j1)))
                continue; // uniform cell: its interior cannot change the front
            const std::size_t im = (c.i0 + c.i1) / 2;
            const std::size_t jm = (c.j0 + c.j1) / 2;
            if (can_t && can_p) {
                next.push_back({c.i0, im, c.j0, jm});
                next.push_back({c.i0, im, jm, c.j1});
                next.push_back({im, c.i1, c.j0, jm});
                next.push_back({im, c.i1, jm, c.j1});
            } else if (can_t) {
                next.push_back({c.i0, im, c.j0, c.j1});
                next.push_back({im, c.i1, c.j0, c.j1});
            } else {
                next.push_back({c.i0, c.i1, c.j0, jm});
                next.push_back({c.i0, c.i1, jm, c.j1});
            }
        }
        wave = std::move(next);
    }
    return state.summary;
}

} // namespace phls::dse
