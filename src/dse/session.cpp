#include "dse/session.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <unordered_map>

#include "support/errors.h"
#include "support/memo_key.h"

namespace phls::dse {

namespace {

/// The Pareto-region signature refine() compares across cell corners:
/// the outcome class and the achieved metrics, canonically encoded.
/// The constraint point itself and diagnostic text (which embeds the
/// point) are deliberately excluded — two corners are "the same region"
/// iff the synthesis *outcome* is identical.
std::string region_signature(const flow_report& r)
{
    std::string sig;
    key_int(sig, static_cast<long>(r.st.code));
    key_int(sig, r.has_design ? 1 : 0);
    key_int(sig, r.optimal ? 1 : 0);
    key_double(sig, r.area);
    key_double(sig, r.peak);
    key_int(sig, r.latency);
    key_int(sig, r.has_lifetime ? 1 : 0);
    key_double(sig, r.lifetime_seconds);
    return sig;
}

double elapsed_ms(std::chrono::steady_clock::time_point since)
{
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(now - since).count();
}

} // namespace

/// Per-explore() mutable state: the incremental front, the summary under
/// construction, and (for adaptive spaces) the corner signatures.
struct session::delivery_state {
    const sink* sk = nullptr;
    pareto_stream front;
    explore_summary summary;
    bool want_signatures = false;
    std::unordered_map<std::size_t, std::string> signatures; ///< space index -> region

    /// Folds one finished report in and fans it out to the sink.  Called
    /// serialised (scan loop or the executor's serialised callback).
    void deliver(std::size_t index, const flow_report& report, bool metric)
    {
        ++summary.evaluated;
        if (report.st.ok()) ++summary.feasible;
        if (metric) ++summary.metric_served;
        if (want_signatures) signatures.emplace(index, region_signature(report));
        front_delta delta;
        front.add(index, report, &delta);
        if (sk->on_result) sk->on_result(index, report);
        if (delta.changed() && sk->on_front) sk->on_front(delta);
    }
};

session::session(const flow& prototype, const session_options& opts)
    : flow_(prototype), opts_(opts), cache_(flow_.build_cache())
{
    check(opts_.chunk >= 1, "session chunk size must be >= 1");
    cache_->set_report_capacity(opts_.memo_limit);
    flow_.reuse(cache_);
}

void session::evaluate(const space& s, const std::vector<std::size_t>& indices,
                       delivery_state& state, int threads)
{
    // Scan: duplicate points whose full report is memoised are served as
    // run_point would serve them (so a cold session is byte-identical to
    // run_batch); points evicted to — or warm-started as — metric
    // records answer at the metric level; everything else batches
    // through the flow executor.
    // A malformed worker count must fail *every* point with
    // invalid_argument (the run_batch contract) — memo-warm points
    // included, so skip the scan and let the executor fail them all.
    const bool malformed = threads < 0;
    // Metric-only entries exist only after an eviction or a cache-file
    // load; skip the per-point probe (one mutex round-trip each) when
    // there are none.
    const bool try_metrics =
        opts_.metric_answers && cache_->report_metric_size() > 0;
    std::vector<synthesis_constraints> compute_points;
    std::vector<std::size_t> compute_indices;
    for (const std::size_t index : indices) {
        const synthesis_constraints c = s.at(index);
        if (!malformed) {
            const std::string fp = flow_.fingerprint(c);
            flow_report full;
            if (cache_->report_lookup(fp, &full)) {
                state.deliver(index, full, false);
                continue;
            }
            if (try_metrics) {
                metric_record m;
                if (cache_->metric_lookup(fp, &m)) {
                    state.deliver(index, metric_report(m), true);
                    continue;
                }
            }
        }
        compute_points.push_back(c);
        compute_indices.push_back(index);
    }
    if (compute_points.empty()) return;
    flow_.run_batch_stream(
        compute_points,
        [&](std::size_t local, const flow_report& r) {
            state.deliver(compute_indices[local], r, false);
        },
        threads);
}

explore_summary session::explore(const space& s, const sink& sk, int threads)
{
    const auto started = std::chrono::steady_clock::now();
    delivery_state state;
    state.sk = &sk;
    state.summary.space_size = s.size();

    explore_summary summary = s.adaptive() ? explore_adaptive(s, state, threads)
                                           : explore_exhaustive(s, state, threads);
    summary.front = state.front.front();
    summary.wall_ms = elapsed_ms(started);
    return summary;
}

explore_summary session::explore_exhaustive(const space& s, delivery_state& state,
                                            int threads)
{
    // Walk the space in bounded chunks: at most opts_.chunk points (plus
    // the executor's result slots for the computed subset) exist at
    // once, however large the space is.
    std::vector<std::size_t> chunk;
    chunk.reserve(std::min<std::size_t>(opts_.chunk, s.size()));
    s.enumerate([&](std::size_t index, const synthesis_constraints&) {
        chunk.push_back(index);
        if (chunk.size() >= opts_.chunk) {
            evaluate(s, chunk, state, threads);
            chunk.clear();
        }
        return true;
    });
    if (!chunk.empty()) evaluate(s, chunk, state, threads);
    return state.summary;
}

explore_summary session::explore_adaptive(const space& s, delivery_state& state,
                                          int threads)
{
    const std::vector<int>& ts = s.latencies();
    const std::vector<double>& ps = s.caps();
    const std::size_t np = ps.size();
    const auto lin = [np](std::size_t i, std::size_t j) { return i * np + j; };

    state.want_signatures = true;

    // Coarse-to-fine cell subdivision over the index lattice.  Each wave
    // batch-evaluates every corner it is missing (one executor call, so
    // the worker pool stays busy), then splits exactly the cells whose
    // corners landed on different Pareto-front regions.
    struct cell {
        std::size_t i0, i1, j0, j1;
    };
    std::vector<cell> wave = {{0, ts.size() - 1, 0, np - 1}};
    while (!wave.empty()) {
        std::vector<std::size_t> need;
        std::set<std::size_t> queued;
        for (const cell& c : wave)
            for (const std::size_t index :
                 {lin(c.i0, c.j0), lin(c.i0, c.j1), lin(c.i1, c.j0), lin(c.i1, c.j1)})
                if (!state.signatures.count(index) && queued.insert(index).second)
                    need.push_back(index);
        std::sort(need.begin(), need.end()); // deterministic input order
        // The chunk bound holds for adaptive walks too: a wave of a
        // large non-uniform lattice can need most of its corners.
        for (std::size_t pos = 0; pos < need.size(); pos += opts_.chunk) {
            const std::vector<std::size_t> block(
                need.begin() + static_cast<std::ptrdiff_t>(pos),
                need.begin() + static_cast<std::ptrdiff_t>(
                                   std::min(pos + opts_.chunk, need.size())));
            evaluate(s, block, state, threads);
        }

        std::vector<cell> next;
        for (const cell& c : wave) {
            const bool can_t = c.i1 - c.i0 > 1;
            const bool can_p = c.j1 - c.j0 > 1;
            if (!can_t && !can_p) continue; // no interior points to decide on
            const std::string& sig = state.signatures.at(lin(c.i0, c.j0));
            if (sig == state.signatures.at(lin(c.i0, c.j1)) &&
                sig == state.signatures.at(lin(c.i1, c.j0)) &&
                sig == state.signatures.at(lin(c.i1, c.j1)))
                continue; // uniform cell: its interior cannot change the front
            const std::size_t im = (c.i0 + c.i1) / 2;
            const std::size_t jm = (c.j0 + c.j1) / 2;
            if (can_t && can_p) {
                next.push_back({c.i0, im, c.j0, jm});
                next.push_back({c.i0, im, jm, c.j1});
                next.push_back({im, c.i1, c.j0, jm});
                next.push_back({im, c.i1, jm, c.j1});
            } else if (can_t) {
                next.push_back({c.i0, im, c.j0, c.j1});
                next.push_back({im, c.i1, c.j0, c.j1});
            } else {
                next.push_back({c.i0, c.i1, c.j0, jm});
                next.push_back({c.i0, c.i1, jm, c.j1});
            }
        }
        wave = std::move(next);
    }
    return state.summary;
}

} // namespace phls::dse
