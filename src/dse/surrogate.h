// Incremental surrogate model for guided exploration.
//
// A hand-rolled, dependency-free regularised linear model over features
// derived from a constraint point (latency cap, power cap, their logs,
// inverses and product, plus the library's power-level bucket of the
// cap), fitted online from the metric records a dse::session already
// accumulates.  One model per target:
//
//   * feasibility — P(point synthesises), trained on every row;
//   * peak / area / lifetime — achieved metrics, trained on ok rows.
//
// The model is the *steering* half of session::explore_guided: it
// orders unevaluated points best-predicted-first and nominates points
// whose optimistic (mean - margin * sigma) prediction is still
// dominated by the running front for skipping.  It never decides the
// front — every point the model cannot confidently rule out is exactly
// re-evaluated, so the guided front is gated byte-identical to the
// eager walk ("surrogate steers, never decides").
//
// Numerics: linear_model accumulates *raw* moments (n, Σx, Σxxᵀ, Σxy,
// Σy, Σy²) and standardises analytically at solve time — the fit after
// n observe() calls is exactly the batch z-scored ridge solution over
// the same n rows, whatever the arrival order.  That equivalence is
// pinned by a differential test against a closed-form least-squares
// oracle to 1e-9.
#pragma once

#include <cstddef>
#include <vector>

#include "flow/explore_cache.h"
#include "library/library.h"
#include "synth/synthesizer.h"

namespace phls::dse {

/// One prediction: mean and a conservative 1-sigma half-width
/// (residual RMS inflated by the point's leverage, so extrapolated
/// points get wider bands).
struct prediction {
    double mean = 0.0;
    double sigma = 0.0;
};

/// Incremental ridge regression on z-scored features.  observe() costs
/// O(d^2); the (lazy) refit costs O(d^3) with d fixed and small.
/// @throws phls::error when an observed row carries a non-finite
/// feature or target value.
class linear_model {
public:
    /// `dim` features, ridge strength `lambda` (> 0) applied to the
    /// standardised normal equations as lambda * n * I.  `prior_sd`
    /// floors the residual-variance estimate at
    /// max(var(y), prior_sd^2) / n: a degenerate fit (e.g. every target
    /// identical, RSS = 0) still reports honest parameter uncertainty
    /// instead of a zero band.
    explicit linear_model(std::size_t dim, double lambda = 1e-6,
                          double prior_sd = 0.0);

    /// Folds one (features, target) row into the raw moments.
    void observe(const std::vector<double>& x, double y);

    /// Rows observed so far.
    std::size_t rows() const { return n_; }

    /// Mean and leverage-inflated sigma at `x`; refits lazily when rows
    /// arrived since the last fit.  With zero rows the prediction is
    /// mean 0 with an infinite sigma.
    prediction predict(const std::vector<double>& x) const;

    /// The fitted standardised weights (for tests and benches).
    std::vector<double> weights() const;
    /// Residual RMS of the current fit (for tests and benches).
    double residual_rms() const;

private:
    void refit() const;
    std::size_t dim_;
    double lambda_;
    double prior_sd_;
    std::size_t n_ = 0;
    std::vector<double> sx_;  ///< Σ x_i
    std::vector<double> sxx_; ///< Σ x_i x_j, row-major dim_ x dim_
    std::vector<double> sxy_; ///< Σ x_i y
    double sy_ = 0.0;         ///< Σ y
    double syy_ = 0.0;        ///< Σ y²

    // Fit state, rebuilt lazily from the moments.
    mutable bool dirty_ = true;
    mutable std::vector<double> mean_;   ///< feature means
    mutable std::vector<double> scale_;  ///< feature standard deviations (>= tiny)
    mutable std::vector<double> chol_;   ///< Cholesky factor of (Ã + λnI)
    mutable std::vector<double> w_;      ///< standardised weights
    mutable double ybar_ = 0.0;
    mutable double sigma2_ = 0.0;        ///< residual variance estimate
    mutable double var_floor_ = 0.0;     ///< max(var(y), prior_sd^2) / n
};

/// Surrogate-construction knobs (forwarded from guided_options).
struct surrogate_options {
    double ridge = 1e-6;        ///< linear_model lambda; must be > 0
    std::size_t min_rows = 24;  ///< rows before any model claims readiness
};

/// What the surrogate says about one constraint point.
struct estimate {
    bool ready = false;         ///< the feasibility model has enough rows
    bool metrics_ready = false; ///< the metric models have enough ok rows
    prediction feasible;        ///< P(point synthesises), roughly in [0, 1]
    prediction peak;
    prediction area;
    prediction lifetime;        ///< meaningful only when trained with lifetimes
};

/// The per-target model bundle used by session::explore_guided: builds
/// the feature vector from a constraint point and the module library,
/// and trains from the metric projection of finished reports.
class surrogate {
public:
    /// `lib` supplies the power-level bucket feature and a finite
    /// stand-in ceiling for unbounded power caps; `with_lifetime`
    /// enables the lifetime target.
    surrogate(const module_library& lib, bool with_lifetime,
              const surrogate_options& opts = {});

    /// Folds one finished row in.  Every row trains the feasibility
    /// model; ok rows additionally train the metric models.
    /// @throws phls::error on non-finite metrics — a poisoned training
    /// row must fail loudly, not silently skew the fit.
    void train(const metric_record& row);

    /// Predicts the outcome at `c`; `ready` / `metrics_ready` flag
    /// whether enough rows arrived for the bands to mean anything.
    estimate predict(const synthesis_constraints& c) const;

    /// The feasibility model has at least min_rows rows.
    bool ready() const;

    /// Rows train()ed so far (all / with an ok status).
    std::size_t rows() const { return rows_; }
    std::size_t ok_rows() const { return ok_rows_; }

    /// The feature vector of a point (for tests).
    std::vector<double> features(const synthesis_constraints& c) const;

private:
    surrogate_options opts_;
    bool with_lifetime_;
    std::vector<double> power_levels_; ///< sorted distinct module powers
    double cap_ceiling_;               ///< finite stand-in for unbounded caps
    std::size_t rows_ = 0;
    std::size_t ok_rows_ = 0;
    std::size_t lifetime_rows_ = 0;
    linear_model feasible_;
    linear_model peak_;
    linear_model area_;
    linear_model lifetime_;
};

} // namespace phls::dse
