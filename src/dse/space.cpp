#include "dse/space.h"

#include <algorithm>

#include "support/errors.h"
#include "support/strings.h"

namespace phls::dse {

std::vector<int> latency_range::values() const
{
    check(step > 0, strf("latency_range step must be positive, got %d", step));
    check(hi >= lo, strf("latency_range is empty: lo %d > hi %d", lo, hi));
    std::vector<int> out;
    for (int t = lo; t <= hi; t += step) out.push_back(t);
    return out;
}

std::vector<double> power_range::values() const
{
    check(count >= 1, strf("power_range count must be >= 1, got %d", count));
    std::vector<double> out;
    out.reserve(static_cast<std::size_t>(count));
    if (count == 1) {
        out.push_back(lo);
        return out;
    }
    // Same spacing formula as flow::power_grid, so a grid built over a
    // power_grid's end points reproduces its caps bit-for-bit.
    for (int i = 0; i < count; ++i) out.push_back(lo + (hi - lo) * i / (count - 1));
    return out;
}

std::size_t space::size() const
{
    switch (kind_) {
    case kind::list: return points_.size();
    case kind::lattice: return latencies_.size() * caps_.size();
    case kind::concat: return left_->size() + right_->size();
    }
    return 0;
}

void space::enumerate(
    const std::function<bool(std::size_t, const synthesis_constraints&)>& fn) const
{
    // The recursion carries the running base index through concat nodes;
    // the bool result doubles as the early-stop signal.
    const std::function<bool(const space&, std::size_t)> walk =
        [&](const space& s, std::size_t base) -> bool {
        switch (s.kind_) {
        case kind::list:
            for (std::size_t i = 0; i < s.points_.size(); ++i)
                if (!fn(base + i, s.points_[i])) return false;
            return true;
        case kind::lattice:
            for (std::size_t ti = 0; ti < s.latencies_.size(); ++ti)
                for (std::size_t ci = 0; ci < s.caps_.size(); ++ci)
                    if (!fn(base + ti * s.caps_.size() + ci,
                            {s.latencies_[ti], s.caps_[ci]}))
                        return false;
            return true;
        case kind::concat:
            return walk(*s.left_, base) && walk(*s.right_, base + s.left_->size());
        }
        return true;
    };
    walk(*this, 0);
}

synthesis_constraints space::at(std::size_t index) const
{
    switch (kind_) {
    case kind::list:
        check(index < points_.size(), "space::at: index out of range");
        return points_[index];
    case kind::lattice: {
        check(index < size(), "space::at: index out of range");
        const std::size_t np = caps_.size();
        return {latencies_[index / np], caps_[index % np]};
    }
    case kind::concat:
        if (index < left_->size()) return left_->at(index);
        return right_->at(index - left_->size());
    }
    throw error("space::at: index out of range");
}

std::vector<synthesis_constraints> space::materialize(std::size_t limit) const
{
    std::vector<synthesis_constraints> out;
    out.reserve(std::min(limit, size()));
    enumerate([&](std::size_t, const synthesis_constraints& c) {
        if (out.size() >= limit) return false;
        out.push_back(c);
        return true;
    });
    return out;
}

const std::vector<int>& space::latencies() const
{
    check(is_lattice(), "space::latencies: not a lattice space");
    return latencies_;
}

const std::vector<double>& space::caps() const
{
    check(is_lattice(), "space::caps: not a lattice space");
    return caps_;
}

space grid(const latency_range& T, const power_range& P)
{
    return cross(T.values(), P.values());
}

space list(std::vector<synthesis_constraints> points)
{
    space s;
    s.kind_ = space::kind::list;
    s.points_ = std::move(points);
    return s;
}

space cross(std::vector<int> latencies, std::vector<double> caps)
{
    check(!latencies.empty() && !caps.empty(),
          "cross: both axes must be non-empty");
    space s;
    s.kind_ = space::kind::lattice;
    s.latencies_ = std::move(latencies);
    s.caps_ = std::move(caps);
    return s;
}

space refine(std::vector<int> latencies, std::vector<double> caps)
{
    space s = cross(std::move(latencies), std::move(caps));
    s.adaptive_ = true;
    return s;
}

space concat(space a, space b)
{
    check(!a.adaptive() && !b.adaptive(),
          "concat: refine spaces cannot be concatenated");
    space s;
    s.kind_ = space::kind::concat;
    s.left_ = std::make_shared<const space>(std::move(a));
    s.right_ = std::make_shared<const space>(std::move(b));
    return s;
}

} // namespace phls::dse
