#include "flow/explore_cache.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <list>
#include <sstream>

#include "cdfg/textio.h"
#include "flow/flow.h"
#include "sched/schedule.h"
#include "support/errors.h"
#include "support/memo_key.h"

namespace phls {

namespace {

/// Validates the problem before any derived structure is built, so a
/// malformed graph fails with the validate() diagnostic.
const graph& checked(const graph& g, const module_library& lib)
{
    g.validate();
    lib.check_covers(g);
    return g;
}

/// The metric projection stored beside every level-2 entry.
metric_record project(const flow_report& r)
{
    metric_record m;
    m.st = r.st;
    m.strategy = r.strategy;
    m.constraints = r.constraints;
    m.has_design = r.has_design;
    m.optimal = r.optimal;
    m.note = r.note;
    m.area = r.area;
    m.peak = r.peak;
    m.latency = r.latency;
    m.has_lifetime = r.has_lifetime;
    m.lifetime_seconds = r.lifetime_seconds;
    m.battery_alpha = r.battery_alpha;
    return m;
}

/// Cache-file identity and integrity framing.
constexpr const char* cache_file_magic = "phls-explore-cache";
constexpr long cache_file_version = 1;

std::uint64_t fnv1a(const std::string& bytes)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const unsigned char c : bytes) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace

/// Level-2 store.  Lives behind a pimpl so explore_cache.h does not pull
/// in flow.h (the flow layer sits above this one).  It has its own lock:
/// copying a whole flow_report (datapath, netlist, note strings) in or
/// out is far heavier than the level-0/1 lookups, and must not stall
/// workers queued on the shared mutex_ for those.
///
/// Every entry carries the metric projection of its report; the full
/// report itself is optional — LRU eviction under a configured capacity
/// and cache-file loads leave metric-only entries behind, which keep
/// serving metric_lookup() while report_lookup() falls through to a
/// recompute.
struct explore_cache::report_memo {
    struct entry {
        std::unique_ptr<flow_report> full; ///< null = metric-only entry
        metric_record metrics;
        /// Position in `lru`; meaningful only while `full` is held.
        std::list<std::string>::iterator lru_pos;
    };

    std::mutex mutex;
    std::map<std::string, entry> entries;
    std::list<std::string> lru; ///< keys holding full reports; front = MRU
    std::size_t capacity = 0;   ///< max full reports; 0 = unbounded
    std::size_t full_count = 0; ///< entries currently holding a full report

    /// Installs `report` as `it`'s full report and makes it MRU.
    void install(std::map<std::string, entry>::iterator it, const flow_report& report)
    {
        it->second.full.reset(new flow_report(report));
        it->second.metrics = project(report);
        lru.push_front(it->first);
        it->second.lru_pos = lru.begin();
        ++full_count;
    }

    /// Drops least-recently-used full reports down to their metric
    /// records until the capacity bound holds (with the lock held).
    void evict_over_capacity()
    {
        while (capacity > 0 && full_count > capacity) {
            const auto victim = entries.find(lru.back());
            victim->second.full.reset();
            lru.pop_back();
            --full_count;
        }
    }
};

explore_cache::explore_cache(const graph& g, const module_library& lib)
    : g_(g), lib_(lib), reach_(checked(g_, lib_)), rev_(reversed_graph(g_)),
      graph_text_(write_cdfg_string(g_)), lib_text_(write_library_string(lib_)),
      reports_(new report_memo)
{
    misses_.store(1, std::memory_order_relaxed); // the eager reachability build

    for (const fu_module& m : lib_.modules()) power_levels_.push_back(m.power);
    std::sort(power_levels_.begin(), power_levels_.end());
    power_levels_.erase(std::unique(power_levels_.begin(), power_levels_.end()),
                        power_levels_.end());
}

explore_cache::~explore_cache() = default;

bool explore_cache::compatible(const graph& g, const module_library& lib) const
{
    return write_cdfg_string(g) == graph_text_ && write_library_string(lib) == lib_text_;
}

int explore_cache::bucket(double cap) const
{
    // Selection queries exclude a module iff m.power > cap, so the result
    // depends on cap only through the count of power levels <= cap.
    return static_cast<int>(
        std::upper_bound(power_levels_.begin(), power_levels_.end(), cap) -
        power_levels_.begin());
}

prospect_result explore_cache::prospect(prospect_policy policy, double cap) const
{
    const std::pair<int, int> key{static_cast<int>(policy), bucket(cap)};
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = prospects_.find(key);
        if (it != prospects_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    // Computed outside the lock; concurrent misses compute the same value.
    // The insert decides who counts the miss: exactly one racing thread
    // wins the emplace and counts it, every loser counts a hit, so the
    // counters are exact on multicore (hits + misses == lookups).
    prospect_result result = make_prospect(g_, lib_, policy, cap);
    if (result.ok) {
        const std::lock_guard<std::mutex> lock(mutex_);
        const bool inserted = prospects_.emplace(key, result).second;
        (inserted ? misses_ : hits_).fetch_add(1, std::memory_order_relaxed);
    } else {
        // Failures are not memoised: their reason text embeds the exact
        // cap, which varies within one admissible-module bucket.  Every
        // failing computation is a genuine miss.
        misses_.fetch_add(1, std::memory_order_relaxed);
    }
    return result;
}

module_assignment explore_cache::fastest(double cap) const
{
    const int key = bucket(cap);
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = fastest_.find(key);
        if (it != fastest_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    module_assignment result = fastest_assignment(g_, lib_, cap);
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const bool inserted = fastest_.emplace(key, result).second;
        (inserted ? misses_ : hits_).fetch_add(1, std::memory_order_relaxed);
    }
    return result;
}

time_windows explore_cache::initial_windows(prospect_policy policy, double cap,
                                            int latency, pasap_order order) const
{
    const std::tuple<int, double, int, int> key{static_cast<int>(policy), cap, latency,
                                                static_cast<int>(order)};
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = windows_.find(key);
        if (it != windows_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    const prospect_result p = prospect(policy, cap);
    time_windows result;
    if (!p.ok) {
        result.reason = p.reason;
    } else {
        pasap_options opts;
        opts.order = order;
        opts.reversed = &rev_;
        result = power_windows(g_, lib_, p.assignment, cap, latency, opts);
    }
    if (p.ok) {
        // Same rule as prospect(): infeasibility text embeds the exact
        // point, but here the exact point IS the key, so a feasible-input
        // failure (e.g. latency below the pasap length) is memoisable;
        // only the prospect-failure path (cap-text via a shared bucket)
        // must stay uncached.
        const std::lock_guard<std::mutex> lock(mutex_);
        const bool inserted = windows_.emplace(key, result).second;
        (inserted ? misses_ : hits_).fetch_add(1, std::memory_order_relaxed);
    } else {
        misses_.fetch_add(1, std::memory_order_relaxed);
    }
    return result;
}

time_windows explore_cache::committed_windows(const module_assignment& assignment,
                                              double cap, int latency, pasap_order order,
                                              const std::vector<int>& fixed_starts) const
{
    pasap_options opts;
    opts.order = order;
    opts.fixed_starts = fixed_starts;
    opts.reversed = &rev_;
    if (!committed_memo_)
        return power_windows(g_, lib_, assignment, cap, latency, opts);

    // Canonical key over the full scheduling state; every quantity the
    // window computation reads (beyond the cached problem itself) is in
    // it, so even infeasible results are safely memoisable.
    std::string key;
    key.reserve((assignment.size() + fixed_starts.size() + 4) * sizeof(long));
    key_int(key, static_cast<int>(order));
    key_int(key, latency);
    key_double(key, cap);
    key_int(key, static_cast<int>(assignment.size()));
    for (const module_id m : assignment) key_int(key, m.value());
    for (const int t : fixed_starts) key_int(key, t);

    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = committed_.find(key);
        if (it != committed_.end()) {
            committed_hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    const time_windows result = power_windows(g_, lib_, assignment, cap, latency, opts);
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const bool inserted = committed_.emplace(std::move(key), result).second;
        (inserted ? committed_misses_ : committed_hits_)
            .fetch_add(1, std::memory_order_relaxed);
    }
    return result;
}

bool explore_cache::report_lookup(const std::string& fingerprint, flow_report* out) const
{
    if (!report_memo_) return false;
    const std::lock_guard<std::mutex> lock(reports_->mutex);
    const auto it = reports_->entries.find(fingerprint);
    if (it == reports_->entries.end() || !it->second.full) return false;
    report_hits_.fetch_add(1, std::memory_order_relaxed);
    // Touch: a served report moves to the front of the eviction order.
    reports_->lru.splice(reports_->lru.begin(), reports_->lru, it->second.lru_pos);
    it->second.lru_pos = reports_->lru.begin();
    *out = *it->second.full;
    return true;
}

void explore_cache::report_store(const std::string& fingerprint,
                                 const flow_report& report) const
{
    if (!report_memo_) return;
    const std::lock_guard<std::mutex> lock(reports_->mutex);
    const auto [it, inserted] = reports_->entries.try_emplace(fingerprint);
    if (!inserted && it->second.full) {
        // A concurrent computation of the same key won the insert race;
        // this store is the loser and counts the hit.
        report_hits_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    // Fresh key, or a metric-only entry (evicted or loaded from a cache
    // file) whose full report was genuinely recomputed: either way a
    // real computation happened, so it counts as the miss.
    reports_->install(it, report);
    report_misses_.fetch_add(1, std::memory_order_relaxed);
    reports_->evict_over_capacity();
}

bool explore_cache::metric_lookup(const std::string& fingerprint,
                                  metric_record* out) const
{
    if (!report_memo_) return false;
    const std::lock_guard<std::mutex> lock(reports_->mutex);
    const auto it = reports_->entries.find(fingerprint);
    if (it == reports_->entries.end()) return false;
    metric_hits_.fetch_add(1, std::memory_order_relaxed);
    *out = it->second.metrics;
    return true;
}

void explore_cache::set_report_capacity(std::size_t max_full_reports)
{
    const std::lock_guard<std::mutex> lock(reports_->mutex);
    reports_->capacity = max_full_reports;
    reports_->evict_over_capacity();
}

std::size_t explore_cache::report_capacity() const
{
    const std::lock_guard<std::mutex> lock(reports_->mutex);
    return reports_->capacity;
}

std::size_t explore_cache::report_full_size() const
{
    const std::lock_guard<std::mutex> lock(reports_->mutex);
    return reports_->full_count;
}

std::size_t explore_cache::report_metric_size() const
{
    const std::lock_guard<std::mutex> lock(reports_->mutex);
    return reports_->entries.size() - reports_->full_count;
}

// ------------------------------------------------------------ persistence

std::size_t explore_cache::save(const std::string& path) const
{
    std::string payload;
    key_str(payload, cache_file_magic);
    key_int(payload, cache_file_version);
    key_str(payload, graph_text_);
    key_str(payload, lib_text_);
    std::size_t records = 0;

    {
        // Level 1: the committed-window table, exact values — a warm run
        // serves the partitioner's recomputes without re-deriving them.
        const std::lock_guard<std::mutex> lock(mutex_);
        key_int(payload, static_cast<long>(committed_.size()));
        records += committed_.size();
        for (const auto& [key, w] : committed_) {
            key_str(payload, key);
            key_int(payload, w.feasible ? 1 : 0);
            key_str(payload, w.reason);
            key_int(payload, static_cast<long>(w.s_min.size()));
            for (const int t : w.s_min) key_int(payload, t);
            key_int(payload, static_cast<long>(w.s_max.size()));
            for (const int t : w.s_max) key_int(payload, t);
        }
    }
    {
        // Level 2: every entry's metric record (full datapaths and
        // netlists are deliberately not persisted — a warm start answers
        // metric queries instantly and recomputes designs on demand).
        const std::lock_guard<std::mutex> lock(reports_->mutex);
        key_int(payload, static_cast<long>(reports_->entries.size()));
        records += reports_->entries.size();
        for (const auto& [fp, e] : reports_->entries) {
            key_str(payload, fp);
            const metric_record& m = e.metrics;
            key_int(payload, static_cast<long>(m.st.code));
            key_str(payload, m.st.message);
            key_str(payload, m.strategy);
            key_int(payload, m.constraints.latency);
            key_double(payload, m.constraints.max_power);
            key_int(payload, m.has_design ? 1 : 0);
            key_int(payload, m.optimal ? 1 : 0);
            key_str(payload, m.note);
            key_double(payload, m.area);
            key_double(payload, m.peak);
            key_int(payload, m.latency);
            key_int(payload, m.has_lifetime ? 1 : 0);
            key_double(payload, m.lifetime_seconds);
            key_double(payload, m.battery_alpha);
        }
    }

    // The checksum frame is a fixed 8-byte field on both sides (not
    // key_int, whose width is sizeof(long) and ABI-dependent).
    const std::uint64_t sum = fnv1a(payload);
    char sum_bytes[sizeof sum];
    std::memcpy(sum_bytes, &sum, sizeof sum);
    payload.append(sum_bytes, sizeof sum);

    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    check(static_cast<bool>(os), "cannot write cache file '" + path + "'");
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    os.flush();
    check(static_cast<bool>(os), "failed writing cache file '" + path + "'");
    return records;
}

std::size_t explore_cache::load(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    check(static_cast<bool>(is), "cannot open cache file '" + path + "'");
    std::ostringstream buffer;
    buffer << is.rdbuf();
    const std::string content = buffer.str();

    check(content.size() >= sizeof(std::uint64_t),
          "cache file '" + path + "' is truncated");
    const std::string payload =
        content.substr(0, content.size() - sizeof(std::uint64_t));
    std::uint64_t stored_sum = 0;
    std::memcpy(&stored_sum, content.data() + payload.size(), sizeof stored_sum);
    check(stored_sum == fnv1a(payload),
          "cache file '" + path + "' is corrupt (checksum mismatch)");

    key_reader r(payload);
    check(r.read_str() == cache_file_magic,
          "'" + path + "' is not a phls cache file");
    check(r.read_int() == cache_file_version,
          "cache file '" + path + "' has an unsupported version");
    check(r.read_str() == graph_text_ && r.read_str() == lib_text_,
          "cache file '" + path + "' was saved for a different graph or library");

    std::size_t loaded = 0;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const long n = r.read_int();
        check(n >= 0, "cache file '" + path + "' is corrupt (negative table size)");
        for (long i = 0; i < n; ++i) {
            std::string key = r.read_str();
            time_windows w;
            w.feasible = r.read_int() != 0;
            w.reason = r.read_str();
            const long n_min = r.read_int();
            check(n_min >= 0, "cache file '" + path + "' is corrupt");
            w.s_min.reserve(static_cast<std::size_t>(n_min));
            for (long j = 0; j < n_min; ++j)
                w.s_min.push_back(static_cast<int>(r.read_int()));
            const long n_max = r.read_int();
            check(n_max >= 0, "cache file '" + path + "' is corrupt");
            w.s_max.reserve(static_cast<std::size_t>(n_max));
            for (long j = 0; j < n_max; ++j)
                w.s_max.push_back(static_cast<int>(r.read_int()));
            loaded += committed_.emplace(std::move(key), std::move(w)).second ? 1 : 0;
        }
    }
    {
        const std::lock_guard<std::mutex> lock(reports_->mutex);
        const long n = r.read_int();
        check(n >= 0, "cache file '" + path + "' is corrupt (negative table size)");
        for (long i = 0; i < n; ++i) {
            std::string fp = r.read_str();
            metric_record m;
            m.st.code = static_cast<status_code>(r.read_int());
            m.st.message = r.read_str();
            m.strategy = r.read_str();
            m.constraints.latency = static_cast<int>(r.read_int());
            m.constraints.max_power = r.read_double();
            m.has_design = r.read_int() != 0;
            m.optimal = r.read_int() != 0;
            m.note = r.read_str();
            m.area = r.read_double();
            m.peak = r.read_double();
            m.latency = static_cast<int>(r.read_int());
            m.has_lifetime = r.read_int() != 0;
            m.lifetime_seconds = r.read_double();
            m.battery_alpha = r.read_double();
            // Existing entries win: a live full report is strictly more
            // informative than a loaded metric record.
            const auto [it, inserted] = reports_->entries.try_emplace(std::move(fp));
            if (!inserted) continue;
            it->second.metrics = std::move(m);
            ++loaded;
        }
    }
    check(r.remaining() == 0,
          "cache file '" + path + "' is corrupt (trailing bytes)");
    return loaded;
}

} // namespace phls
