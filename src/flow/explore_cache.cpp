#include "flow/explore_cache.h"

#include <algorithm>

#include "cdfg/textio.h"
#include "flow/flow.h"
#include "sched/schedule.h"
#include "support/memo_key.h"

namespace phls {

namespace {

/// Validates the problem before any derived structure is built, so a
/// malformed graph fails with the validate() diagnostic.
const graph& checked(const graph& g, const module_library& lib)
{
    g.validate();
    lib.check_covers(g);
    return g;
}

} // namespace

/// Level-2 store.  Lives behind a pimpl so explore_cache.h does not pull
/// in flow.h (the flow layer sits above this one).  It has its own lock:
/// copying a whole flow_report (datapath, netlist, note strings) in or
/// out is far heavier than the level-0/1 lookups, and must not stall
/// workers queued on the shared mutex_ for those.
struct explore_cache::report_memo {
    std::mutex mutex;
    std::map<std::string, flow_report> reports;
};

explore_cache::explore_cache(const graph& g, const module_library& lib)
    : g_(g), lib_(lib), reach_(checked(g_, lib_)),
      graph_text_(write_cdfg_string(g_)), lib_text_(write_library_string(lib_)),
      reports_(new report_memo)
{
    misses_.store(1, std::memory_order_relaxed); // the eager reachability build

    for (const fu_module& m : lib_.modules()) power_levels_.push_back(m.power);
    std::sort(power_levels_.begin(), power_levels_.end());
    power_levels_.erase(std::unique(power_levels_.begin(), power_levels_.end()),
                        power_levels_.end());
}

explore_cache::~explore_cache() = default;

bool explore_cache::compatible(const graph& g, const module_library& lib) const
{
    return write_cdfg_string(g) == graph_text_ && write_library_string(lib) == lib_text_;
}

int explore_cache::bucket(double cap) const
{
    // Selection queries exclude a module iff m.power > cap, so the result
    // depends on cap only through the count of power levels <= cap.
    return static_cast<int>(
        std::upper_bound(power_levels_.begin(), power_levels_.end(), cap) -
        power_levels_.begin());
}

prospect_result explore_cache::prospect(prospect_policy policy, double cap) const
{
    const std::pair<int, int> key{static_cast<int>(policy), bucket(cap)};
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = prospects_.find(key);
        if (it != prospects_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    // Computed outside the lock; concurrent misses compute the same value.
    // The insert decides who counts the miss: exactly one racing thread
    // wins the emplace and counts it, every loser counts a hit, so the
    // counters are exact on multicore (hits + misses == lookups).
    prospect_result result = make_prospect(g_, lib_, policy, cap);
    if (result.ok) {
        const std::lock_guard<std::mutex> lock(mutex_);
        const bool inserted = prospects_.emplace(key, result).second;
        (inserted ? misses_ : hits_).fetch_add(1, std::memory_order_relaxed);
    } else {
        // Failures are not memoised: their reason text embeds the exact
        // cap, which varies within one admissible-module bucket.  Every
        // failing computation is a genuine miss.
        misses_.fetch_add(1, std::memory_order_relaxed);
    }
    return result;
}

module_assignment explore_cache::fastest(double cap) const
{
    const int key = bucket(cap);
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = fastest_.find(key);
        if (it != fastest_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    module_assignment result = fastest_assignment(g_, lib_, cap);
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const bool inserted = fastest_.emplace(key, result).second;
        (inserted ? misses_ : hits_).fetch_add(1, std::memory_order_relaxed);
    }
    return result;
}

time_windows explore_cache::initial_windows(prospect_policy policy, double cap,
                                            int latency, pasap_order order) const
{
    const std::tuple<int, double, int, int> key{static_cast<int>(policy), cap, latency,
                                                static_cast<int>(order)};
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = windows_.find(key);
        if (it != windows_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    const prospect_result p = prospect(policy, cap);
    time_windows result;
    if (!p.ok) {
        result.reason = p.reason;
    } else {
        pasap_options opts;
        opts.order = order;
        result = power_windows(g_, lib_, p.assignment, cap, latency, opts);
    }
    if (p.ok) {
        // Same rule as prospect(): infeasibility text embeds the exact
        // point, but here the exact point IS the key, so a feasible-input
        // failure (e.g. latency below the pasap length) is memoisable;
        // only the prospect-failure path (cap-text via a shared bucket)
        // must stay uncached.
        const std::lock_guard<std::mutex> lock(mutex_);
        const bool inserted = windows_.emplace(key, result).second;
        (inserted ? misses_ : hits_).fetch_add(1, std::memory_order_relaxed);
    } else {
        misses_.fetch_add(1, std::memory_order_relaxed);
    }
    return result;
}

time_windows explore_cache::committed_windows(const module_assignment& assignment,
                                              double cap, int latency, pasap_order order,
                                              const std::vector<int>& fixed_starts) const
{
    pasap_options opts;
    opts.order = order;
    opts.fixed_starts = fixed_starts;
    if (!committed_memo_)
        return power_windows(g_, lib_, assignment, cap, latency, opts);

    // Canonical key over the full scheduling state; every quantity the
    // window computation reads (beyond the cached problem itself) is in
    // it, so even infeasible results are safely memoisable.
    std::string key;
    key.reserve((assignment.size() + fixed_starts.size() + 4) * sizeof(long));
    key_int(key, static_cast<int>(order));
    key_int(key, latency);
    key_double(key, cap);
    key_int(key, static_cast<int>(assignment.size()));
    for (const module_id m : assignment) key_int(key, m.value());
    for (const int t : fixed_starts) key_int(key, t);

    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = committed_.find(key);
        if (it != committed_.end()) {
            committed_hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    const time_windows result = power_windows(g_, lib_, assignment, cap, latency, opts);
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const bool inserted = committed_.emplace(std::move(key), result).second;
        (inserted ? committed_misses_ : committed_hits_)
            .fetch_add(1, std::memory_order_relaxed);
    }
    return result;
}

bool explore_cache::report_lookup(const std::string& fingerprint, flow_report* out) const
{
    if (!report_memo_) return false;
    const std::lock_guard<std::mutex> lock(reports_->mutex);
    const auto it = reports_->reports.find(fingerprint);
    if (it == reports_->reports.end()) return false;
    report_hits_.fetch_add(1, std::memory_order_relaxed);
    *out = it->second;
    return true;
}

void explore_cache::report_store(const std::string& fingerprint,
                                 const flow_report& report) const
{
    if (!report_memo_) return;
    const std::lock_guard<std::mutex> lock(reports_->mutex);
    const bool inserted = reports_->reports.emplace(fingerprint, report).second;
    (inserted ? report_misses_ : report_hits_).fetch_add(1, std::memory_order_relaxed);
}

} // namespace phls
