#include "flow/explore_cache.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <list>
#include <sstream>
#include <vector>

#include "cdfg/textio.h"
#include "flow/flow.h"
#include "sched/schedule.h"
#include "support/errors.h"
#include "support/faultpoints.h"
#include "support/memo_key.h"

namespace phls {

namespace {

/// Validates the problem before any derived structure is built, so a
/// malformed graph fails with the validate() diagnostic.
const graph& checked(const graph& g, const module_library& lib)
{
    g.validate();
    lib.check_covers(g);
    return g;
}

/// The metric projection stored beside every level-2 entry.
metric_record project(const flow_report& r)
{
    metric_record m;
    m.st = r.st;
    m.strategy = r.strategy;
    m.constraints = r.constraints;
    m.has_design = r.has_design;
    m.optimal = r.optimal;
    m.note = r.note;
    m.area = r.area;
    m.peak = r.peak;
    m.latency = r.latency;
    m.has_lifetime = r.has_lifetime;
    m.lifetime_seconds = r.lifetime_seconds;
    m.battery_alpha = r.battery_alpha;
    return m;
}

/// Cache-file identity and integrity framing.  Version 2 declares the
/// body length in the (unchecksummed) header, so a torn tail is
/// reported as `truncated` while a flipped byte is `corrupt`.
constexpr const char* cache_file_magic = "phls-explore-cache";
constexpr long cache_file_version = 2;

std::uint64_t fnv1a(const std::string& bytes)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const unsigned char c : bytes) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

/// One record of each table, in file order.
struct parsed_cache_file {
    std::string graph_text;
    std::string lib_text;
    std::vector<std::pair<std::string, time_windows>> committed;
    std::vector<std::pair<std::string, metric_record>> metrics;
};

void append_committed_record(std::string& body, const std::string& key,
                             const time_windows& w)
{
    key_str(body, key);
    key_int(body, w.feasible ? 1 : 0);
    key_str(body, w.reason);
    key_int(body, static_cast<long>(w.s_min.size()));
    for (const int t : w.s_min) key_int(body, t);
    key_int(body, static_cast<long>(w.s_max.size()));
    for (const int t : w.s_max) key_int(body, t);
}

void append_metric_record(std::string& body, const std::string& fp,
                          const metric_record& m)
{
    key_str(body, fp);
    key_int(body, static_cast<long>(m.st.code));
    key_str(body, m.st.message);
    key_str(body, m.strategy);
    key_int(body, m.constraints.latency);
    key_double(body, m.constraints.max_power);
    key_int(body, m.has_design ? 1 : 0);
    key_int(body, m.optimal ? 1 : 0);
    key_str(body, m.note);
    key_double(body, m.area);
    key_double(body, m.peak);
    key_int(body, m.latency);
    key_int(body, m.has_lifetime ? 1 : 0);
    key_double(body, m.lifetime_seconds);
    key_double(body, m.battery_alpha);
}

/// Serialises and atomically writes one cache file: the bytes go to
/// `path + ".tmp"` in the same directory, then rename() — which POSIX
/// guarantees atomic — replaces `path`, so a reader (or a crash) never
/// sees a torn file.
void write_cache_file(const std::string& path, const std::string& graph_text,
                      const std::string& lib_text,
                      const std::vector<std::pair<std::string, time_windows>>& committed,
                      const std::vector<std::pair<std::string, metric_record>>& metrics)
{
    std::string body;
    key_str(body, graph_text);
    key_str(body, lib_text);
    key_int(body, static_cast<long>(committed.size()));
    for (const auto& [key, w] : committed) append_committed_record(body, key, w);
    key_int(body, static_cast<long>(metrics.size()));
    for (const auto& [fp, m] : metrics) append_metric_record(body, fp, m);

    std::string payload;
    key_str(payload, cache_file_magic);
    key_int(payload, cache_file_version);
    key_int(payload, static_cast<long>(body.size()));
    payload += body;
    // The checksum frame is a fixed 8-byte field on both sides (not
    // key_int, whose width is sizeof(long) and ABI-dependent).
    const std::uint64_t sum = fnv1a(body);
    char sum_bytes[sizeof sum];
    std::memcpy(sum_bytes, &sum, sizeof sum);
    payload.append(sum_bytes, sizeof sum);

    // Fault site: silent on-disk corruption — a body byte flipped after
    // the checksum was computed, so the save "succeeds" but every later
    // load rejects the file as corrupt instead of misreading it.
    if (fault_fire("cache.save.corrupt") && !body.empty()) {
        const std::size_t body_at = payload.size() - sizeof sum - body.size();
        payload[body_at + body.size() / 2] ^= 0x40;
    }

    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) throw cache_file_error(cache_file_error::failure::io, path,
                                        "cannot write temporary file '" + tmp + "'");
        // Fault site: a crash halfway through the temporary file.  The
        // rename below never runs, so `path` keeps its previous complete
        // contents — this is the atomicity the tmp+rename scheme buys.
        if (fault_fire("cache.save.tear")) {
            os.write(payload.data(), static_cast<std::streamsize>(payload.size() / 2));
            os.flush();
            throw cache_file_error(cache_file_error::failure::io, path,
                                   "fault injected: crash during cache save");
        }
        os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
        os.flush();
        if (!os) {
            os.close();
            std::remove(tmp.c_str());
            throw cache_file_error(cache_file_error::failure::io, path,
                                   "failed writing temporary file '" + tmp + "'");
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw cache_file_error(cache_file_error::failure::io, path,
                               "cannot rename '" + tmp + "' into place");
    }
}

/// Reads and fully validates one cache file, classifying every way it
/// can be unusable (see cache_file_error::failure).  The identity check
/// against a particular (graph, library) is the caller's.
parsed_cache_file parse_cache_file(const std::string& path)
{
    using failure = cache_file_error::failure;

    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw cache_file_error(failure::missing, path, "cannot open cache file");
    std::ostringstream buffer;
    buffer << is.rdbuf();
    std::string content = buffer.str();

    // Fault site: in-memory corruption of what was read — exercises the
    // checksum rejection without touching the on-disk file.
    if (fault_fire("cache.load.corrupt") && !content.empty())
        content[content.size() / 2] ^= 0x40;

    // Header: magic, version and the declared body length are outside
    // the checksum, so they classify a damaged file precisely.
    key_reader header(content);
    std::string magic;
    long version = 0;
    long body_size = 0;
    try {
        magic = header.read_str();
    } catch (const error&) {
        throw cache_file_error(failure::truncated, path,
                               "shorter than the cache-file header");
    }
    if (magic != cache_file_magic)
        throw cache_file_error(failure::corrupt, path, "not a phls cache file");
    try {
        version = header.read_int();
        body_size = header.read_int();
    } catch (const error&) {
        throw cache_file_error(failure::truncated, path,
                               "shorter than the cache-file header");
    }
    if (version != cache_file_version)
        throw cache_file_error(failure::version_mismatch, path,
                               "format version " + std::to_string(version) +
                                   " (this build reads version " +
                                   std::to_string(cache_file_version) + ")");
    if (body_size < 0)
        throw cache_file_error(failure::corrupt, path, "negative body length");
    const std::size_t body_bytes = static_cast<std::size_t>(body_size);
    if (header.remaining() < body_bytes + sizeof(std::uint64_t))
        throw cache_file_error(failure::truncated, path,
                               "body cut short (declared " +
                                   std::to_string(body_bytes) + " bytes, " +
                                   std::to_string(header.remaining()) + " remain)");
    if (header.remaining() > body_bytes + sizeof(std::uint64_t))
        throw cache_file_error(failure::corrupt, path, "trailing bytes after the body");

    const std::string body =
        content.substr(content.size() - header.remaining(), body_bytes);
    std::uint64_t stored_sum = 0;
    std::memcpy(&stored_sum, content.data() + content.size() - sizeof stored_sum,
                sizeof stored_sum);
    if (stored_sum != fnv1a(body))
        throw cache_file_error(failure::corrupt, path, "checksum mismatch");

    // The checksum held, so any decode failure below is real corruption
    // (or an encoder bug), never mere truncation.
    try {
        parsed_cache_file parsed;
        key_reader r(body);
        parsed.graph_text = r.read_str();
        parsed.lib_text = r.read_str();
        const long n_committed = r.read_int();
        check(n_committed >= 0, "negative table size");
        parsed.committed.reserve(static_cast<std::size_t>(n_committed));
        for (long i = 0; i < n_committed; ++i) {
            std::string key = r.read_str();
            time_windows w;
            w.feasible = r.read_int() != 0;
            w.reason = r.read_str();
            const long n_min = r.read_int();
            check(n_min >= 0, "negative window size");
            w.s_min.reserve(static_cast<std::size_t>(n_min));
            for (long j = 0; j < n_min; ++j)
                w.s_min.push_back(static_cast<int>(r.read_int()));
            const long n_max = r.read_int();
            check(n_max >= 0, "negative window size");
            w.s_max.reserve(static_cast<std::size_t>(n_max));
            for (long j = 0; j < n_max; ++j)
                w.s_max.push_back(static_cast<int>(r.read_int()));
            parsed.committed.emplace_back(std::move(key), std::move(w));
        }
        const long n_metrics = r.read_int();
        check(n_metrics >= 0, "negative table size");
        parsed.metrics.reserve(static_cast<std::size_t>(n_metrics));
        for (long i = 0; i < n_metrics; ++i) {
            std::string fp = r.read_str();
            metric_record m;
            m.st.code = static_cast<status_code>(r.read_int());
            m.st.message = r.read_str();
            m.strategy = r.read_str();
            m.constraints.latency = static_cast<int>(r.read_int());
            m.constraints.max_power = r.read_double();
            m.has_design = r.read_int() != 0;
            m.optimal = r.read_int() != 0;
            m.note = r.read_str();
            m.area = r.read_double();
            m.peak = r.read_double();
            m.latency = static_cast<int>(r.read_int());
            m.has_lifetime = r.read_int() != 0;
            m.lifetime_seconds = r.read_double();
            m.battery_alpha = r.read_double();
            parsed.metrics.emplace_back(std::move(fp), std::move(m));
        }
        check(r.remaining() == 0, "trailing bytes inside the body");
        return parsed;
    } catch (const cache_file_error&) {
        throw;
    } catch (const error& e) {
        throw cache_file_error(failure::corrupt, path, e.what());
    }
}

} // namespace

cache_file_error::cache_file_error(failure kind, std::string path,
                                   const std::string& detail)
    : error("cache file '" + path + "': " + detail + " [" + kind_name(kind) + "]"),
      kind_(kind), path_(std::move(path))
{
}

const char* cache_file_error::kind_name(failure kind)
{
    switch (kind) {
    case failure::missing: return "missing";
    case failure::truncated: return "truncated";
    case failure::corrupt: return "corrupt";
    case failure::version_mismatch: return "version-mismatch";
    case failure::problem_mismatch: return "problem-mismatch";
    case failure::io: return "io";
    }
    return "unknown";
}

flow_report metric_report(const metric_record& m)
{
    flow_report r;
    r.st = m.st;
    r.strategy = m.strategy;
    r.constraints = m.constraints;
    r.has_design = m.has_design;
    r.optimal = m.optimal;
    r.note = m.note;
    r.area = m.area;
    r.peak = m.peak;
    r.latency = m.latency;
    r.has_lifetime = m.has_lifetime;
    r.lifetime_seconds = m.lifetime_seconds;
    r.battery_alpha = m.battery_alpha;
    return r;
}

metric_record metric_of(const flow_report& r) { return project(r); }

/// Level-2 store.  Lives behind a pimpl so explore_cache.h does not pull
/// in flow.h (the flow layer sits above this one).  It has its own lock:
/// copying a whole flow_report (datapath, netlist, note strings) in or
/// out is far heavier than the level-0/1 lookups, and must not stall
/// workers queued on the shared mutex_ for those.
///
/// Every entry carries the metric projection of its report; the full
/// report itself is optional — LRU eviction under a configured capacity
/// and cache-file loads leave metric-only entries behind, which keep
/// serving metric_lookup() while report_lookup() falls through to a
/// recompute.
struct explore_cache::report_memo {
    struct entry {
        std::unique_ptr<flow_report> full; ///< null = metric-only entry
        metric_record metrics;
        /// Position in `lru`; meaningful only while `full` is held.
        std::list<std::string>::iterator lru_pos;
    };

    std::mutex mutex;
    std::map<std::string, entry> entries;
    std::list<std::string> lru; ///< keys holding full reports; front = MRU
    std::size_t capacity = 0;   ///< max full reports; 0 = unbounded
    std::size_t full_count = 0; ///< entries currently holding a full report

    /// Installs `report` as `it`'s full report and makes it MRU.
    void install(std::map<std::string, entry>::iterator it, const flow_report& report)
    {
        it->second.full.reset(new flow_report(report));
        it->second.metrics = project(report);
        lru.push_front(it->first);
        it->second.lru_pos = lru.begin();
        ++full_count;
    }

    /// Drops least-recently-used full reports down to their metric
    /// records until the capacity bound holds (with the lock held).
    void evict_over_capacity()
    {
        while (capacity > 0 && full_count > capacity) {
            const auto victim = entries.find(lru.back());
            victim->second.full.reset();
            lru.pop_back();
            --full_count;
        }
    }
};

explore_cache::explore_cache(const graph& g, const module_library& lib)
    : g_(g), lib_(lib), reach_(checked(g_, lib_)), rev_(reversed_graph(g_)),
      graph_text_(write_cdfg_string(g_)), lib_text_(write_library_string(lib_)),
      reports_(new report_memo)
{
    misses_.store(1, std::memory_order_relaxed); // the eager reachability build

    kind_buckets_.assign(static_cast<std::size_t>(op_kind_count), {});
    for (node_id v : g_.node_ids())
        kind_buckets_[static_cast<std::size_t>(op_kind_index(g_.kind(v)))].push_back(v);

    for (const fu_module& m : lib_.modules()) power_levels_.push_back(m.power);
    std::sort(power_levels_.begin(), power_levels_.end());
    power_levels_.erase(std::unique(power_levels_.begin(), power_levels_.end()),
                        power_levels_.end());
}

explore_cache::~explore_cache() = default;

bool explore_cache::compatible(const graph& g, const module_library& lib) const
{
    return write_cdfg_string(g) == graph_text_ && write_library_string(lib) == lib_text_;
}

int explore_cache::bucket(double cap) const
{
    // Selection queries exclude a module iff m.power > cap, so the result
    // depends on cap only through the count of power levels <= cap.
    return static_cast<int>(
        std::upper_bound(power_levels_.begin(), power_levels_.end(), cap) -
        power_levels_.begin());
}

prospect_result explore_cache::prospect(prospect_policy policy, double cap) const
{
    const std::pair<int, int> key{static_cast<int>(policy), bucket(cap)};
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = prospects_.find(key);
        if (it != prospects_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    // Computed outside the lock; concurrent misses compute the same value.
    // The insert decides who counts the miss: exactly one racing thread
    // wins the emplace and counts it, every loser counts a hit, so the
    // counters are exact on multicore (hits + misses == lookups).
    prospect_result result = make_prospect(g_, lib_, policy, cap);
    if (result.ok) {
        const std::lock_guard<std::mutex> lock(mutex_);
        const bool inserted = prospects_.emplace(key, result).second;
        (inserted ? misses_ : hits_).fetch_add(1, std::memory_order_relaxed);
    } else {
        // Failures are not memoised: their reason text embeds the exact
        // cap, which varies within one admissible-module bucket.  Every
        // failing computation is a genuine miss.
        misses_.fetch_add(1, std::memory_order_relaxed);
    }
    return result;
}

module_assignment explore_cache::fastest(double cap) const
{
    const int key = bucket(cap);
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = fastest_.find(key);
        if (it != fastest_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    module_assignment result = fastest_assignment(g_, lib_, cap);
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const bool inserted = fastest_.emplace(key, result).second;
        (inserted ? misses_ : hits_).fetch_add(1, std::memory_order_relaxed);
    }
    return result;
}

time_windows explore_cache::initial_windows(prospect_policy policy, double cap,
                                            int latency, pasap_order order) const
{
    const std::tuple<int, double, int, int> key{static_cast<int>(policy), cap, latency,
                                                static_cast<int>(order)};
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = windows_.find(key);
        if (it != windows_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    const prospect_result p = prospect(policy, cap);
    time_windows result;
    if (!p.ok) {
        result.reason = p.reason;
    } else {
        pasap_options opts;
        opts.order = order;
        opts.reversed = &rev_;
        result = power_windows(g_, lib_, p.assignment, cap, latency, opts);
    }
    if (p.ok) {
        // Same rule as prospect(): infeasibility text embeds the exact
        // point, but here the exact point IS the key, so a feasible-input
        // failure (e.g. latency below the pasap length) is memoisable;
        // only the prospect-failure path (cap-text via a shared bucket)
        // must stay uncached.
        const std::lock_guard<std::mutex> lock(mutex_);
        const bool inserted = windows_.emplace(key, result).second;
        (inserted ? misses_ : hits_).fetch_add(1, std::memory_order_relaxed);
    } else {
        misses_.fetch_add(1, std::memory_order_relaxed);
    }
    return result;
}

time_windows explore_cache::committed_windows(const module_assignment& assignment,
                                              double cap, int latency, pasap_order order,
                                              const std::vector<int>& fixed_starts) const
{
    pasap_options opts;
    opts.order = order;
    opts.fixed_starts = fixed_starts;
    opts.reversed = &rev_;
    if (!committed_memo_)
        return power_windows(g_, lib_, assignment, cap, latency, opts);

    // Canonical key over the full scheduling state; every quantity the
    // window computation reads (beyond the cached problem itself) is in
    // it, so even infeasible results are safely memoisable.
    std::string key;
    key.reserve((assignment.size() + fixed_starts.size() + 4) * sizeof(long));
    key_int(key, static_cast<int>(order));
    key_int(key, latency);
    key_double(key, cap);
    key_int(key, static_cast<int>(assignment.size()));
    for (const module_id m : assignment) key_int(key, m.value());
    for (const int t : fixed_starts) key_int(key, t);

    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = committed_.find(key);
        if (it != committed_.end()) {
            committed_hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    const time_windows result = power_windows(g_, lib_, assignment, cap, latency, opts);
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const bool inserted = committed_.emplace(std::move(key), result).second;
        (inserted ? committed_misses_ : committed_hits_)
            .fetch_add(1, std::memory_order_relaxed);
    }
    return result;
}

bool explore_cache::report_lookup(const std::string& fingerprint, flow_report* out) const
{
    if (!report_memo_) return false;
    const std::lock_guard<std::mutex> lock(reports_->mutex);
    const auto it = reports_->entries.find(fingerprint);
    if (it == reports_->entries.end() || !it->second.full) return false;
    report_hits_.fetch_add(1, std::memory_order_relaxed);
    // Touch: a served report moves to the front of the eviction order.
    reports_->lru.splice(reports_->lru.begin(), reports_->lru, it->second.lru_pos);
    it->second.lru_pos = reports_->lru.begin();
    *out = *it->second.full;
    return true;
}

void explore_cache::report_store(const std::string& fingerprint,
                                 const flow_report& report) const
{
    if (!report_memo_) return;
    const std::lock_guard<std::mutex> lock(reports_->mutex);
    const auto [it, inserted] = reports_->entries.try_emplace(fingerprint);
    if (!inserted && it->second.full) {
        // A concurrent computation of the same key won the insert race;
        // this store is the loser and counts the hit.
        report_hits_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    // Fresh key, or a metric-only entry (evicted or loaded from a cache
    // file) whose full report was genuinely recomputed: either way a
    // real computation happened, so it counts as the miss.
    reports_->install(it, report);
    report_misses_.fetch_add(1, std::memory_order_relaxed);
    reports_->evict_over_capacity();
}

bool explore_cache::metric_lookup(const std::string& fingerprint,
                                  metric_record* out) const
{
    if (!report_memo_) return false;
    const std::lock_guard<std::mutex> lock(reports_->mutex);
    const auto it = reports_->entries.find(fingerprint);
    if (it == reports_->entries.end()) return false;
    metric_hits_.fetch_add(1, std::memory_order_relaxed);
    *out = it->second.metrics;
    return true;
}

void explore_cache::set_report_capacity(std::size_t max_full_reports)
{
    const std::lock_guard<std::mutex> lock(reports_->mutex);
    reports_->capacity = max_full_reports;
    reports_->evict_over_capacity();
}

std::size_t explore_cache::report_capacity() const
{
    const std::lock_guard<std::mutex> lock(reports_->mutex);
    return reports_->capacity;
}

std::size_t explore_cache::report_full_size() const
{
    const std::lock_guard<std::mutex> lock(reports_->mutex);
    return reports_->full_count;
}

std::size_t explore_cache::report_metric_size() const
{
    const std::lock_guard<std::mutex> lock(reports_->mutex);
    return reports_->entries.size() - reports_->full_count;
}

void explore_cache::each_metric(
    const std::function<void(const std::string&, const metric_record&)>& fn) const
{
    // Snapshot under the lock, call back outside it: the visitor may
    // probe (or store into) this cache without deadlocking.  std::map
    // iteration makes the order the canonical fingerprint order.
    std::vector<std::pair<std::string, metric_record>> snapshot;
    {
        const std::lock_guard<std::mutex> lock(reports_->mutex);
        snapshot.reserve(reports_->entries.size());
        for (const auto& [fp, e] : reports_->entries)
            snapshot.emplace_back(fp, e.metrics);
    }
    for (const auto& [fp, m] : snapshot) fn(fp, m);
}

// ------------------------------------------------------------ persistence

std::size_t explore_cache::save(const std::string& path) const
{
    std::vector<std::pair<std::string, time_windows>> committed;
    std::vector<std::pair<std::string, metric_record>> metrics;
    {
        // Level 1: the committed-window table, exact values — a warm run
        // serves the partitioner's recomputes without re-deriving them.
        const std::lock_guard<std::mutex> lock(mutex_);
        committed.assign(committed_.begin(), committed_.end());
    }
    {
        // Level 2: every entry's metric record (full datapaths and
        // netlists are deliberately not persisted — a warm start answers
        // metric queries instantly and recomputes designs on demand).
        const std::lock_guard<std::mutex> lock(reports_->mutex);
        metrics.reserve(reports_->entries.size());
        for (const auto& [fp, e] : reports_->entries) metrics.emplace_back(fp, e.metrics);
    }
    write_cache_file(path, graph_text_, lib_text_, committed, metrics);
    return committed.size() + metrics.size();
}

std::size_t explore_cache::load(const std::string& path)
{
    const parsed_cache_file parsed = parse_cache_file(path);
    if (parsed.graph_text != graph_text_ || parsed.lib_text != lib_text_)
        throw cache_file_error(cache_file_error::failure::problem_mismatch, path,
                               "saved for a different graph or library");

    std::size_t loaded = 0;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        for (const auto& [key, w] : parsed.committed)
            loaded += committed_.emplace(key, w).second ? 1 : 0;
    }
    {
        const std::lock_guard<std::mutex> lock(reports_->mutex);
        for (const auto& [fp, m] : parsed.metrics) {
            // Existing entries win: a live full report is strictly more
            // informative than a loaded metric record.
            const auto [it, inserted] = reports_->entries.try_emplace(fp);
            if (!inserted) continue;
            it->second.metrics = m;
            ++loaded;
        }
    }
    return loaded;
}

std::size_t explore_cache::merge(const std::string& path)
{
    // load() already has union semantics (present keys win, novel keys
    // insert); merge() is the documented name for doing that to a warm
    // cache.
    return load(path);
}

cache_merge_stats explore_cache::merge_files(const std::string& out,
                                             const std::vector<std::string>& inputs,
                                             bool skip_bad)
{
    check(!inputs.empty(), "cache merge needs at least one input file");

    cache_merge_stats stats;
    std::string graph_text;
    std::string lib_text;
    std::string identity_path; ///< the first good input, the problem anchor
    bool have_identity = false;
    // std::map keeps the merged tables in sorted key order, the same
    // order save() writes, so merged files are deterministic whatever
    // the input order (only first-wins value choice depends on it).
    std::map<std::string, time_windows> committed;
    std::map<std::string, metric_record> metrics;

    for (std::size_t i = 0; i < inputs.size(); ++i) {
        cache_merge_stats::input in;
        in.path = inputs[i];
        try {
            const parsed_cache_file parsed = parse_cache_file(inputs[i]);
            if (!have_identity) {
                graph_text = parsed.graph_text;
                lib_text = parsed.lib_text;
                identity_path = inputs[i];
                have_identity = true;
            } else if (parsed.graph_text != graph_text ||
                       parsed.lib_text != lib_text) {
                throw cache_file_error(cache_file_error::failure::problem_mismatch,
                                       inputs[i],
                                       "saved for a different graph or library than '" +
                                           identity_path + "'");
            }
            in.committed = parsed.committed.size();
            in.metrics = parsed.metrics.size();
            for (const auto& [key, w] : parsed.committed)
                in.new_committed += committed.emplace(key, w).second ? 1 : 0;
            for (const auto& [fp, m] : parsed.metrics)
                in.new_metrics += metrics.emplace(fp, m).second ? 1 : 0;
        } catch (const cache_file_error& e) {
            if (!skip_bad) throw;
            in.skipped = true;
            in.skip_reason = cache_file_error::kind_name(e.kind());
            ++stats.skipped_inputs;
        }
        stats.inputs.push_back(std::move(in));
    }
    // Every input bad is still an error — an empty merged file would
    // silently launder total data loss into a "successful" merge.
    check(have_identity, "cache merge: every input file was rejected");

    write_cache_file(out, graph_text, lib_text,
                     {committed.begin(), committed.end()},
                     {metrics.begin(), metrics.end()});
    stats.committed_total = committed.size();
    stats.metric_total = metrics.size();
    return stats;
}

} // namespace phls
