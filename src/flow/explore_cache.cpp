#include "flow/explore_cache.h"

#include <algorithm>

#include "cdfg/textio.h"
#include "sched/schedule.h"

namespace phls {

namespace {

/// Validates the problem before any derived structure is built, so a
/// malformed graph fails with the validate() diagnostic.
const graph& checked(const graph& g, const module_library& lib)
{
    g.validate();
    lib.check_covers(g);
    return g;
}

} // namespace

explore_cache::explore_cache(const graph& g, const module_library& lib)
    : g_(g), lib_(lib), reach_(checked(g_, lib_)),
      graph_text_(write_cdfg_string(g_)), lib_text_(write_library_string(lib_))
{
    misses_.store(1, std::memory_order_relaxed); // the eager reachability build

    for (const fu_module& m : lib_.modules()) power_levels_.push_back(m.power);
    std::sort(power_levels_.begin(), power_levels_.end());
    power_levels_.erase(std::unique(power_levels_.begin(), power_levels_.end()),
                        power_levels_.end());
}

bool explore_cache::compatible(const graph& g, const module_library& lib) const
{
    return write_cdfg_string(g) == graph_text_ && write_library_string(lib) == lib_text_;
}

int explore_cache::bucket(double cap) const
{
    // Selection queries exclude a module iff m.power > cap, so the result
    // depends on cap only through the count of power levels <= cap.
    return static_cast<int>(
        std::upper_bound(power_levels_.begin(), power_levels_.end(), cap) -
        power_levels_.begin());
}

prospect_result explore_cache::prospect(prospect_policy policy, double cap) const
{
    const std::pair<int, int> key{static_cast<int>(policy), bucket(cap)};
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = prospects_.find(key);
        if (it != prospects_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    // Computed outside the lock; concurrent misses compute the same value.
    prospect_result result = make_prospect(g_, lib_, policy, cap);
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (result.ok) {
        // Failures are not memoised: their reason text embeds the exact
        // cap, which varies within one admissible-module bucket.
        const std::lock_guard<std::mutex> lock(mutex_);
        prospects_.emplace(key, result);
    }
    return result;
}

module_assignment explore_cache::fastest(double cap) const
{
    const int key = bucket(cap);
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = fastest_.find(key);
        if (it != fastest_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    module_assignment result = fastest_assignment(g_, lib_, cap);
    misses_.fetch_add(1, std::memory_order_relaxed);
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        fastest_.emplace(key, result);
    }
    return result;
}

time_windows explore_cache::initial_windows(prospect_policy policy, double cap,
                                            int latency, pasap_order order) const
{
    const std::tuple<int, double, int, int> key{static_cast<int>(policy), cap, latency,
                                                static_cast<int>(order)};
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = windows_.find(key);
        if (it != windows_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    const prospect_result p = prospect(policy, cap);
    time_windows result;
    if (!p.ok) {
        result.reason = p.reason;
    } else {
        pasap_options opts;
        opts.order = order;
        result = power_windows(g_, lib_, p.assignment, cap, latency, opts);
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (p.ok) {
        // Same rule as prospect(): infeasibility text embeds the exact
        // point, but here the exact point IS the key, so a feasible-input
        // failure (e.g. latency below the pasap length) is memoisable;
        // only the prospect-failure path (cap-text via a shared bucket)
        // must stay uncached.
        const std::lock_guard<std::mutex> lock(mutex_);
        windows_.emplace(key, result);
    }
    return result;
}

} // namespace phls
