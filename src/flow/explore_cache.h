// Shared sub-results for batch design-space exploration.
//
// A (T, Pmax) sweep evaluates many constraint points over ONE graph and
// ONE module library, yet large parts of every evaluation depend only on
// that (graph, library) pair: the transitive reachability relation behind
// the compatibility graph, the per-cap prospect module tables, the
// fastest-assignment tables used by the schedulers, and the initial
// (unpinned) pasap/palap start-time windows.  explore_cache computes each
// of those once and serves it to every batch point and worker thread;
// flow::run_batch builds one automatically, and callers can share a cache
// across several flows/batches with flow::reuse().
#pragma once

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "cdfg/analysis.h"
#include "sched/mobility.h"
#include "synth/prospect.h"

namespace phls {

/// Memoised per-(graph, library) invariants of design-space exploration.
///
/// The cache owns copies of the graph and library it was built for, so it
/// outlives the flows that share it.  All lookups are thread-safe and all
/// returned values are deterministic pure functions of the constructor
/// inputs and the lookup key — a batch run with a cache is byte-identical
/// to one without.  Failed prospect selections are recomputed rather than
/// memoised because their diagnostic text embeds the exact power cap.
///
/// @see flow::reuse(), flow::build_cache(), flow::run_batch()
class explore_cache {
public:
    /// Builds the cache for one design problem: validates `g`, checks
    /// `lib` covers it, and computes the reachability relation eagerly.
    /// @throws phls::error when the graph is malformed or uncovered.
    explore_cache(const graph& g, const module_library& lib);

    /// The graph this cache was built for (a private copy).
    const graph& design() const { return g_; }
    /// The library this cache was built for (a private copy).
    const module_library& library() const { return lib_; }

    /// True iff (g, lib) serialise identically to the constructor inputs,
    /// i.e. every cached value is valid for this problem.  flow checks
    /// this once per run()/run_batch() before trusting a shared cache.
    bool compatible(const graph& g, const module_library& lib) const;

    /// The transitive reachability relation of the graph (computed once
    /// at construction; every call counts as a cache hit).
    const reachability& reach() const
    {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return reach_;
    }

    /// Prospect module table under `policy` and power cap `cap` —
    /// identical to make_prospect() on the cached problem.  Successful
    /// tables are memoised per (policy, admissible-module set); the set
    /// only changes when `cap` crosses a module's per-cycle power, so a
    /// dense Figure-2 grid resolves to a handful of distinct tables.
    prospect_result prospect(prospect_policy policy, double cap) const;

    /// fastest_assignment() on the cached problem, memoised the same way.
    module_assignment fastest(double cap) const;

    /// The initial (no operator committed) pasap/palap windows for one
    /// constraint point — identical to power_windows() over the `policy`
    /// prospect table with no fixed starts.  Memoised per exact
    /// (policy, cap, latency, order) key.
    time_windows initial_windows(prospect_policy policy, double cap, int latency,
                                 pasap_order order) const;

    /// Hit/miss counters across all lookups (reach/prospect/fastest/
    /// windows).  `misses` starts at 1 for the eager reachability build.
    struct counters {
        long hits = 0;
        long misses = 0;
    };

    /// Snapshot of the counters; safe to call concurrently with lookups.
    counters stats() const
    {
        return {hits_.load(std::memory_order_relaxed),
                misses_.load(std::memory_order_relaxed)};
    }

private:
    /// Index of the admissible-module set for `cap`: the number of
    /// distinct per-cycle power levels <= cap.  Module selection depends
    /// on `cap` only through this value.
    int bucket(double cap) const;

    graph g_;
    module_library lib_;
    reachability reach_;
    std::string graph_text_;
    std::string lib_text_;
    std::vector<double> power_levels_; ///< sorted distinct module powers

    mutable std::mutex mutex_;
    mutable std::map<std::pair<int, int>, prospect_result> prospects_;
    mutable std::map<int, module_assignment> fastest_;
    mutable std::map<std::tuple<int, double, int, int>, time_windows> windows_;
    mutable std::atomic<long> hits_{0};
    mutable std::atomic<long> misses_{0};
};

} // namespace phls
