// Shared sub-results for batch design-space exploration.
//
// A (T, Pmax) sweep evaluates many constraint points over ONE graph and
// ONE module library, yet large parts of every evaluation depend only on
// that (graph, library) pair: the transitive reachability relation behind
// the compatibility graph, the per-cap prospect module tables, the
// fastest-assignment tables used by the schedulers, and the initial
// (unpinned) pasap/palap windows.  explore_cache computes each of those
// once and serves it to every batch point and worker thread; flow::
// run_batch builds one automatically, and callers can share a cache
// across several flows/batches with flow::reuse().
//
// The cache is two-level:
//
//   * level 1 -- per-(graph, lib) invariants plus *committed-window*
//     recomputes: the pasap/palap windows the greedy partitioner
//     re-derives after every merge, keyed by the full scheduling state
//     (module assignment, cap, latency, order, fixed-start vector).
//     Identical states recur inside one point (joins after the backtrack
//     lock leave the state unchanged), across the two prospect policies,
//     and across points (two_step's time-only first step is the same for
//     every cap).
//   * level 2 -- whole-flow_report memoisation for exactly-duplicate
//     constraint points, keyed by a fingerprint of the complete flow
//     configuration (strategy, every option, enabled stages) plus the
//     (T, Pmax) point, so distinct configurations never collide.  Dense
//     2-D grids and repeated CLI sweeps hit this level.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "cdfg/analysis.h"
#include "flow/status.h"
#include "sched/mobility.h"
#include "support/errors.h"
#include "synth/prospect.h"
#include "synth/synthesizer.h"

namespace phls {

struct flow_report;

/// Thrown by explore_cache::load/merge/merge_files when a cache file
/// cannot be used.  Carries the offending path and a machine-readable
/// failure kind, so callers (and tests) can distinguish a missing file
/// (the normal first cold run) from a genuinely damaged one.
class cache_file_error : public error {
public:
    /// Why the file was rejected.
    enum class failure {
        missing,          ///< the file does not exist / cannot be opened
        truncated,        ///< shorter than its own framing declares
        corrupt,          ///< bad magic, failed checksum or trailing bytes
        version_mismatch, ///< written by an incompatible format version
        problem_mismatch, ///< saved for a different (graph, library)
        io,               ///< the file cannot be written/renamed
    };

    cache_file_error(failure kind, std::string path, const std::string& detail);

    /// The machine-readable failure class.
    failure kind() const { return kind_; }
    /// The file the failure is about.
    const std::string& path() const { return path_; }
    /// Short stable name of a failure kind ("missing", "corrupt", ...).
    static const char* kind_name(failure kind);

private:
    failure kind_;
    std::string path_;
};

/// The metric projection of one memoised flow_report: everything a sweep
/// table, Pareto front or Figure-2 envelope reads — status, achieved
/// (peak, area, latency) and battery lifetime — without the datapath,
/// netlist or heuristic counters.  This is what remains of a level-2
/// entry after LRU eviction, and what explore_cache::save persists, so
/// evicted and warm-started points still answer metric queries without a
/// resynthesis.  dse::session turns these back into metric-only
/// flow_reports; callers that need the design itself recompute.
struct metric_record {
    status st;                         ///< outcome of the memoised run
    std::string strategy;              ///< synthesis strategy used
    synthesis_constraints constraints{0, unbounded_power}; ///< the (T, Pmax) point
    bool has_design = false;           ///< the run produced a design
    bool optimal = false;              ///< design proven minimal-area
    std::string note;                  ///< strategy remark
    double area = 0.0;                 ///< achieved total area
    double peak = 0.0;                 ///< achieved peak per-cycle power
    int latency = 0;                   ///< achieved latency, cycles
    bool has_lifetime = false;         ///< the lifetime stage ran
    double lifetime_seconds = 0.0;     ///< battery lifetime of the design
    double battery_alpha = 0.0;        ///< battery capacity used by the model
};

/// A metric record turned back into a (metric-only) flow_report: status
/// and achieved metrics are exact, the datapath/netlist/stats are empty.
/// This is the shape dse::session serves warm points in and the shape
/// the serve layer streams over the wire.
flow_report metric_report(const metric_record& m);

/// The metric projection of a finished report — the inverse direction:
/// exactly the fields a metric_record (and therefore a cache file or a
/// wire report frame) carries.  metric_report(metric_of(r)) preserves
/// status and every achieved metric of `r`.
metric_record metric_of(const flow_report& r);

/// What one cache-file merge did, per input and in total — the
/// `phls cache merge` summary table renders this.
struct cache_merge_stats {
    /// Per-input record counts, in merge order (first occurrence of a
    /// key wins, so later inputs contribute only their novel records).
    struct input {
        std::string path;              ///< the merged file
        std::size_t committed = 0;     ///< committed-window records in the file
        std::size_t metrics = 0;       ///< metric records in the file
        std::size_t new_committed = 0; ///< committed records not seen before
        std::size_t new_metrics = 0;   ///< metric records not seen before
        bool skipped = false;          ///< rejected and skipped (merge_files
                                       ///< with skip_bad; counts are zero)
        std::string skip_reason;       ///< failure kind name when skipped
    };
    std::vector<input> inputs;
    std::size_t committed_total = 0;  ///< committed records in the merged file
    std::size_t metric_total = 0;     ///< metric records in the merged file
    std::size_t skipped_inputs = 0;   ///< inputs rejected under skip_bad
};

/// Memoised per-(graph, library) invariants of design-space exploration.
///
/// The cache owns copies of the graph and library it was built for, so it
/// outlives the flows that share it.  All lookups are thread-safe and all
/// returned values are deterministic pure functions of the constructor
/// inputs and the lookup key — a batch run with a cache is byte-identical
/// to one without.  Failed prospect selections are recomputed rather than
/// memoised because their diagnostic text embeds the exact power cap.
///
/// @see flow::reuse(), flow::build_cache(), flow::run_batch()
class explore_cache {
public:
    /// Builds the cache for one design problem: validates `g`, checks
    /// `lib` covers it, and computes the reachability relation eagerly.
    /// @throws phls::error when the graph is malformed or uncovered.
    explore_cache(const graph& g, const module_library& lib);
    ~explore_cache();

    /// The graph this cache was built for (a private copy).
    const graph& design() const { return g_; }
    /// The library this cache was built for (a private copy).
    const module_library& library() const { return lib_; }

    /// True iff (g, lib) serialise identically to the constructor inputs,
    /// i.e. every cached value is valid for this problem.  flow checks
    /// this once per run()/run_batch() before trusting a shared cache.
    bool compatible(const graph& g, const module_library& lib) const;

    /// The transitive reachability relation of the graph (computed once
    /// at construction; every call counts as a cache hit).
    const reachability& reach() const
    {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return reach_;
    }

    /// The edge-reversed graph palap schedules on -- like reach(), a
    /// pure graph invariant built once at construction and served to
    /// every window computation (it is part of the same eager invariant
    /// build, so it does not move the hit/miss counters).
    const graph& reversed_design() const { return rev_; }

    /// Nodes of the design of kind `k`, ascending id -- the
    /// graph::nodes_of_kind() buckets materialised once at construction
    /// (a level-0 invariant like reach()/reversed_design()), so
    /// per-point code reads a stable vector instead of allocating a
    /// fresh one per call.
    const std::vector<node_id>& nodes_of_kind(op_kind k) const
    {
        return kind_buckets_[static_cast<std::size_t>(op_kind_index(k))];
    }

    /// Prospect module table under `policy` and power cap `cap` —
    /// identical to make_prospect() on the cached problem.  Successful
    /// tables are memoised per (policy, admissible-module set); the set
    /// only changes when `cap` crosses a module's per-cycle power, so a
    /// dense Figure-2 grid resolves to a handful of distinct tables.
    prospect_result prospect(prospect_policy policy, double cap) const;

    /// fastest_assignment() on the cached problem, memoised the same way.
    module_assignment fastest(double cap) const;

    /// The initial (no operator committed) pasap/palap windows for one
    /// constraint point — identical to power_windows() over the `policy`
    /// prospect table with no fixed starts.  Memoised per exact
    /// (policy, cap, latency, order) key.
    time_windows initial_windows(prospect_policy policy, double cap, int latency,
                                 pasap_order order) const;

    /// Level 1: the committed-operator pasap/palap windows — identical to
    /// power_windows(design(), library(), assignment, cap, latency,
    /// {order, fixed_starts}).  Memoised per exact state: the key is the
    /// canonical (assignment, cap, latency, order, fixed-start) tuple, so
    /// infeasible results are memoisable too (their diagnostic text can
    /// only mention quantities that are part of the key).  Served to the
    /// greedy partitioner's per-merge recomputes; counted in the
    /// committed_hits/committed_misses counters.
    time_windows committed_windows(const module_assignment& assignment, double cap,
                                   int latency, pasap_order order,
                                   const std::vector<int>& fixed_starts) const;

    /// Level 2: whole-report memoisation for exactly-duplicate constraint
    /// points.  `fingerprint` must encode the complete flow configuration
    /// and the (T, Pmax) point (flow::fingerprint builds it); the stored
    /// report is a deterministic pure function of that fingerprint on the
    /// cached problem.  Returns true and fills `*out` on a full-report
    /// hit (entries evicted down to metric records do not answer here —
    /// see metric_lookup); a hit refreshes the entry's LRU position.
    bool report_lookup(const std::string& fingerprint, flow_report* out) const;

    /// Stores `report` under `fingerprint` together with its metric
    /// projection.  The first writer of a key counts the miss; a
    /// concurrent loser of the insert race counts a hit instead, so
    /// report_hits + report_misses always equals the number of level-2
    /// lookups that found or stored a full report — flow::run_point's
    /// memoised calls plus dse::session's scan-time probes.  (flow::
    /// run_point skips the store for status
    /// `internal` — an escaped, possibly transient exception must not
    /// become permanent for every duplicate point.)  When a report
    /// capacity is configured and the store exceeds it, the
    /// least-recently-used full report is evicted down to its metric
    /// record, so the number of held reports never passes the bound.
    void report_store(const std::string& fingerprint, const flow_report& report) const;

    /// Metric-level lookup: serves the (status, peak, area, latency,
    /// lifetime) projection of a memoised point from a live full report,
    /// an evicted entry, or a record loaded from a cache file.  Returns
    /// true and fills `*out` on a hit (counted in metric_hits; the full
    /// report's LRU position is not refreshed — metric readers do not
    /// keep heavy entries alive).
    bool metric_lookup(const std::string& fingerprint, metric_record* out) const;

    /// Bounds the number of *full* reports the level-2 memo holds;
    /// 0 (the default) means unbounded.  Beyond the bound the
    /// least-recently-used report is dropped to its metric record, which
    /// is retained (metric records are ~100 bytes, so a 10^5-point plane
    /// costs megabytes, not the gigabytes of full datapaths).  Shrinking
    /// the capacity evicts immediately.  Not thread-safe: call before
    /// sharing the cache, like the memo-level knobs.
    void set_report_capacity(std::size_t max_full_reports);
    /// The configured full-report bound (0 = unbounded).
    std::size_t report_capacity() const;
    /// Full reports currently held by the level-2 memo.
    std::size_t report_full_size() const;
    /// Metric-only records currently held (evicted or loaded entries).
    std::size_t report_metric_size() const;

    /// Visits the metric projection of every level-2 entry (full or
    /// metric-only) as (fingerprint, record), in canonical fingerprint
    /// order.  The entries are snapshotted first, so the callback may
    /// probe or mutate the cache.  This is how dse::session pretrains
    /// its guided-exploration surrogate from a warm cache.
    void each_metric(
        const std::function<void(const std::string& fingerprint,
                                 const metric_record& record)>& fn) const;

    /// Persists the memo tables to `path`: the level-1 committed-window
    /// table (exact values — warm runs recompute nothing and stay
    /// byte-identical) and the level-2 entries as metric records, all in
    /// the canonical memo_key.h byte encoding, prefixed with the
    /// (graph, library) identity and suffixed with a checksum.  Returns
    /// the number of records written — what load() into a *fresh* cache
    /// reports (a load into a non-empty cache counts only new keys).
    /// Cache files inherit the in-memory key encoding and are therefore
    /// host-ABI-specific (sizeof(long) field widths); a file from a
    /// different ABI fails load() loudly, it is never misread.
    /// The write is atomic: the bytes go to a temporary file in the same
    /// directory which is then renamed over `path`, so a killed process
    /// can never leave a torn file that load() rejects — readers see the
    /// old complete file or the new complete file, nothing in between.
    /// @throws cache_file_error (kind io) when the file cannot be
    /// written or renamed.
    std::size_t save(const std::string& path) const;

    /// Warm-starts the memo tables from a file written by save().
    /// Returns the number of records loaded.  @throws cache_file_error
    /// carrying the path and the failure kind when the file is missing,
    /// truncated, corrupt (bad magic, checksum mismatch or trailing
    /// bytes), of an unknown version, or was saved for a different
    /// (graph, library) — a bad cache file never silently degrades to
    /// wrong answers.  Not thread-safe: call before sharing the cache.
    std::size_t load(const std::string& path);

    /// Unions the tables of a save()d file into this (possibly warm)
    /// cache: keys already present keep their in-memory value (a live
    /// full report is strictly more informative than a loaded metric
    /// record, and committed windows are deterministic so first-wins is
    /// value-neutral), novel keys are inserted.  Returns the number of
    /// records that were new.  This is how per-shard caches combine into
    /// one warm cache.  @throws cache_file_error like load().
    /// Not thread-safe: call between explorations, not during one.
    std::size_t merge(const std::string& path);

    /// File-level merge, no cache instance needed: reads every input
    /// (each fully validated like load()), requires them all to be for
    /// the same (graph, library), unions their committed-window and
    /// metric tables (first occurrence of a key wins, inputs processed
    /// in order) and atomically writes the union to `out` in the same
    /// format — loading the merged file behaves like loading every input
    /// in order.  @throws cache_file_error on an unreadable/invalid
    /// input, mismatched problems or an unwritable output; phls::error
    /// when `inputs` is empty.
    ///
    /// With `skip_bad`, an input that fails validation (missing,
    /// truncated, corrupt, wrong version, or saved for a different
    /// problem than the first *good* input) is skipped instead: its
    /// stats entry records `skipped` and the failure kind, and the merge
    /// proceeds with the remaining files — the crash-recovery path for
    /// combining shard caches when one worker died mid-save.  All inputs
    /// bad still throws (there is nothing to merge).
    static cache_merge_stats merge_files(const std::string& out,
                                         const std::vector<std::string>& inputs,
                                         bool skip_bad = false);

    /// Benchmark/ablation knobs: selectively disable the deeper memo
    /// levels to reproduce the initial-windows-only (PR 2) cache.
    /// Results are byte-identical either way; only wall time and the
    /// counters change.  Not thread-safe: call before sharing the cache.
    void set_committed_memo(bool enabled) { committed_memo_ = enabled; }
    void set_report_memo(bool enabled) { report_memo_ = enabled; }

    /// Per-level hit/miss counters.
    ///
    ///   * hits/misses — the shared per-(graph, lib) invariants:
    ///     reach/prospect/fastest/initial windows.  `misses` starts at 1
    ///     for the eager reachability build.
    ///   * committed_hits/committed_misses — level-1 committed-window
    ///     lookups (see committed_windows()).
    ///   * report_hits/report_misses — level-2 whole-report lookups.
    ///   * metric_hits — metric_lookup() successes (served from a full
    ///     report, an evicted entry or a loaded record; misses fall
    ///     through to a real computation, which the other counters see).
    ///
    /// Counting is exact even under concurrent misses of one key: the
    /// thread whose insert wins counts the miss, every racing loser
    /// counts a hit, so for each level hits + misses equals the number
    /// of lookups and misses equals the number of stored entries (plus,
    /// for the invariant level, recomputed prospect failures).
    struct counters {
        long hits = 0;
        long misses = 0;
        long committed_hits = 0;
        long committed_misses = 0;
        long report_hits = 0;
        long report_misses = 0;
        long metric_hits = 0;
    };

    /// Snapshot of the counters; safe to call concurrently with lookups.
    counters stats() const
    {
        return {hits_.load(std::memory_order_relaxed),
                misses_.load(std::memory_order_relaxed),
                committed_hits_.load(std::memory_order_relaxed),
                committed_misses_.load(std::memory_order_relaxed),
                report_hits_.load(std::memory_order_relaxed),
                report_misses_.load(std::memory_order_relaxed),
                metric_hits_.load(std::memory_order_relaxed)};
    }

private:
    /// Index of the admissible-module set for `cap`: the number of
    /// distinct per-cycle power levels <= cap.  Module selection depends
    /// on `cap` only through this value.
    int bucket(double cap) const;

    graph g_;
    module_library lib_;
    reachability reach_;
    graph rev_; ///< reversed_graph(g_), served via pasap_options::reversed
    std::vector<std::vector<node_id>> kind_buckets_; ///< nodes per op kind
    std::string graph_text_;
    std::string lib_text_;
    std::vector<double> power_levels_; ///< sorted distinct module powers
    bool committed_memo_ = true;
    bool report_memo_ = true;

    mutable std::mutex mutex_;
    mutable std::map<std::pair<int, int>, prospect_result> prospects_;
    mutable std::map<int, module_assignment> fastest_;
    mutable std::map<std::tuple<int, double, int, int>, time_windows> windows_;
    mutable std::map<std::string, time_windows> committed_;
    /// Level-2 store, behind a pimpl so this header does not depend on
    /// flow.h (flow_report is incomplete here).
    struct report_memo;
    mutable std::unique_ptr<report_memo> reports_;
    mutable std::atomic<long> hits_{0};
    mutable std::atomic<long> misses_{0};
    mutable std::atomic<long> committed_hits_{0};
    mutable std::atomic<long> committed_misses_{0};
    mutable std::atomic<long> report_hits_{0};
    mutable std::atomic<long> report_misses_{0};
    mutable std::atomic<long> metric_hits_{0};
};

} // namespace phls
