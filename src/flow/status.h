// Uniform outcome type for the flow engine.
//
// The lower-layer functions report failure three different ways: bools
// (`synthesis_result::feasible`), empty results (`fastest_assignment`)
// and exceptions (`check`).  Every flow stage instead returns a
// phls::status: `ok` on success, `infeasible` for constraint
// combinations with no solution (an *expected* outcome, per DESIGN.md),
// `invalid_argument` for malformed requests, `unsupported` for unknown
// strategy names, and `internal` for escaped exceptions inside a batch
// worker.
#pragma once

#include <string>

namespace phls {

/// Machine-readable outcome class of a flow stage.
enum class status_code {
    ok,               ///< the stage succeeded
    infeasible,       ///< no design exists under the constraints
    invalid_argument, ///< malformed request (bad latency, empty library, ...)
    unsupported,      ///< unknown strategy / feature not available
    internal,         ///< unexpected failure (exception inside a worker)
};

/// Short stable name of a code ("ok", "infeasible", ...).
const char* status_code_name(status_code code);

/// Outcome + human-readable detail.  Default-constructed status is ok.
struct status {
    status_code code = status_code::ok; ///< machine-readable outcome class
    std::string message;                ///< human-readable detail (empty when ok)

    /// True iff code == status_code::ok.
    bool ok() const { return code == status_code::ok; }
    /// Same as ok(), for use in conditions.
    explicit operator bool() const { return ok(); }

    /// "ok" or "<code>: <message>".
    std::string to_string() const;

    /// An ok status.
    static status success() { return {}; }
    /// An infeasible status carrying the reason.
    static status infeasible(std::string why)
    {
        return {status_code::infeasible, std::move(why)};
    }
    /// An invalid_argument status carrying the reason.
    static status invalid(std::string why)
    {
        return {status_code::invalid_argument, std::move(why)};
    }
    /// An unsupported status carrying the reason.
    static status unsupported(std::string why)
    {
        return {status_code::unsupported, std::move(why)};
    }
    /// An internal-failure status carrying the reason.
    static status internal(std::string why)
    {
        return {status_code::internal, std::move(why)};
    }
};

/// Statuses compare equal when both code and message match.
inline bool operator==(const status& a, const status& b)
{
    return a.code == b.code && a.message == b.message;
}

} // namespace phls
