#include "flow/pareto_stream.h"

#include <algorithm>

namespace phls {

namespace {

/// The tolerance of the envelope's cap test, matching monotone_envelope.
constexpr double cap_tolerance = 1e-9;

front_point to_front_point(std::size_t index, const flow_report& r)
{
    front_point p;
    p.index = index;
    p.latency_bound = r.constraints.latency;
    p.cap = r.constraints.max_power;
    p.area = r.area;
    p.peak = r.peak;
    p.latency = r.latency;
    p.has_lifetime = r.has_lifetime;
    p.lifetime_seconds = r.lifetime_seconds;
    return p;
}

/// Canonical front order: peak, then area, then input index.
bool front_less(const front_point& a, const front_point& b)
{
    if (a.peak != b.peak) return a.peak < b.peak;
    if (a.area != b.area) return a.area < b.area;
    return a.index < b.index;
}

} // namespace

bool operator==(const front_point& a, const front_point& b)
{
    return a.index == b.index && a.latency_bound == b.latency_bound && a.cap == b.cap &&
           a.area == b.area && a.peak == b.peak && a.latency == b.latency &&
           a.has_lifetime == b.has_lifetime && a.lifetime_seconds == b.lifetime_seconds;
}

bool front_dominates(const front_point& a, const front_point& b)
{
    if (a.peak > b.peak || a.area > b.area) return false;
    bool strict = a.peak < b.peak || a.area < b.area;
    if (a.has_lifetime && b.has_lifetime) {
        if (a.lifetime_seconds < b.lifetime_seconds) return false;
        strict = strict || a.lifetime_seconds > b.lifetime_seconds;
    }
    // Exact objective ties collapse to the lower input index, so the
    // front is a deterministic function of the point *set* (duplicate
    // constraint points keep exactly one representative).  The tiebreak
    // only applies between points measured on the same objectives:
    // across differing has_lifetime it could chain into a dominance
    // cycle (a beats b on lifetime, b edges out c by index, c edges out
    // a by index), so such pairs tie only on strict peak/area grounds.
    return strict || (a.has_lifetime == b.has_lifetime && a.index < b.index);
}

bool pareto_stream::add(std::size_t index, const flow_report& report, front_delta* delta)
{
    if (delta != nullptr) {
        delta->index = index;
        delta->entered.clear();
        delta->left.clear();
    }
    ++seen_;
    if (!report.st.ok() || !report.has_design) return false;
    ++feasible_;

    const front_point p = to_front_point(index, report);
    for (const front_point& q : front_)
        if (front_dominates(q, p)) return false;
    std::erase_if(front_, [&](const front_point& q) {
        if (!front_dominates(p, q)) return false;
        if (delta != nullptr) delta->left.push_back(q);
        return true;
    });
    front_.insert(std::upper_bound(front_.begin(), front_.end(), p, front_less), p);
    if (delta != nullptr) delta->entered.push_back(p);
    return true;
}

const front_point* pareto_stream::best_under(double cap) const
{
    const front_point* best = nullptr;
    for (const front_point& p : front_) {
        if (p.peak > cap + cap_tolerance) continue;
        if (best == nullptr || p.area < best->area ||
            (p.area == best->area &&
             (p.peak < best->peak || (p.peak == best->peak && p.index < best->index))))
            best = &p;
    }
    return best;
}

std::vector<front_point> pareto_points(const std::vector<flow_report>& reports)
{
    std::vector<front_point> feasible;
    for (std::size_t i = 0; i < reports.size(); ++i)
        if (reports[i].st.ok() && reports[i].has_design)
            feasible.push_back(to_front_point(i, reports[i]));

    std::vector<front_point> front;
    for (const front_point& p : feasible) {
        const bool dominated = std::any_of(
            feasible.begin(), feasible.end(),
            [&](const front_point& q) { return q.index != p.index && front_dominates(q, p); });
        if (!dominated) front.push_back(p);
    }
    std::sort(front.begin(), front.end(), front_less);
    return front;
}

} // namespace phls
