#include "flow/status.h"

namespace phls {

const char* status_code_name(status_code code)
{
    switch (code) {
    case status_code::ok: return "ok";
    case status_code::infeasible: return "infeasible";
    case status_code::invalid_argument: return "invalid_argument";
    case status_code::unsupported: return "unsupported";
    case status_code::internal: return "internal";
    }
    return "?";
}

std::string status::to_string() const
{
    if (ok()) return "ok";
    std::string out = status_code_name(code);
    if (!message.empty()) {
        out += ": ";
        out += message;
    }
    return out;
}

} // namespace phls
