// Pluggable strategy interfaces behind the flow engine.
//
// The repository ships several schedulers (asap/alap, pasap/palap,
// force-directed) and synthesizers (the paper's integrated greedy clique
// partitioner, the two-step baseline, schedule-then-bind, the exact
// branch-and-bound).  Each is exposed here behind a small named
// interface and a process-wide registry, so callers select backends by
// name ("pasap", "greedy", "exact", ...) and new backends register
// without touching any caller.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "flow/status.h"
#include "power/tracker.h"
#include "sched/pasap.h"
#include "synth/exact.h"
#include "synth/synthesizer.h"

namespace phls {

class explore_cache;

// ------------------------------------------------------------ schedulers

/// Inputs to a scheduler strategy.  `assignment` may be empty, in which
/// case the strategy picks the fastest module per operation that fits
/// under `power_cap`.  `latency == 0` means unbounded.
struct sched_request {
    const graph* g = nullptr;              ///< the design to schedule
    const module_library* lib = nullptr;   ///< functional-unit library
    module_assignment assignment;          ///< per-node module (may be empty)
    double power_cap = unbounded_power;    ///< per-cycle power cap
    int latency = 0;                       ///< latency bound (0 = unbounded)
    pasap_order order = pasap_order::critical_path; ///< pasap pick order
    /// Shared (graph, lib) invariants for batch exploration; may be null.
    /// When set, it must have been built for (*g, *lib) -- the flow
    /// engine guarantees this; direct callers own the contract.
    const explore_cache* cache = nullptr;
};

/// Scheduler outcome: `sched` is complete iff `st.ok()`.
struct sched_outcome {
    status st;      ///< ok, infeasible, invalid_argument, ...
    schedule sched; ///< complete schedule (see st)
};

/// A named scheduling backend.  Implementations must be stateless /
/// thread-safe: `run` is called concurrently from batch workers.
class scheduler_strategy {
public:
    virtual ~scheduler_strategy() = default;
    /// Stable registry name ("asap", "pasap", ...).
    virtual std::string name() const = 0;
    /// One-line human description (shown by `phls strategies`).
    virtual std::string description() const = 0;
    /// Runs the scheduler; never throws for expected failures.
    virtual sched_outcome run(const sched_request& request) const = 0;
};

// ----------------------------------------------------------- synthesizers

/// Inputs to a synthesis strategy.
struct synth_request {
    const graph* g = nullptr;            ///< the design to synthesise
    const module_library* lib = nullptr; ///< functional-unit library
    synthesis_constraints constraints;   ///< the (T, Pmax) point
    synthesis_options options;           ///< heuristic knobs
    exact_options exact; ///< budget, used by the "exact" strategy only
    /// Shared (graph, lib) invariants for batch exploration; may be null.
    /// Same contract as sched_request::cache.
    const explore_cache* cache = nullptr;
};

/// Synthesis outcome.  `dp` holds a design whenever one was produced --
/// for baseline strategies that can miss the power cap (two-step), `st`
/// is infeasible but `has_design` is still true so callers can report
/// the achieved peak.
struct synth_outcome {
    status st;               ///< ok, infeasible, invalid_argument, ...
    bool has_design = false; ///< dp holds a design (may violate the cap)
    datapath dp;             ///< schedule + allocation + binding
    synthesis_stats stats;   ///< heuristic counters
    bool optimal = false; ///< design proven minimal-area ("exact" strategy)
    std::string note;     ///< e.g. "optimal" or "search budget exhausted"
};

/// A named synthesis backend (schedule + allocation + binding under
/// (T, Pmax)).  Implementations must be stateless / thread-safe.
class synth_strategy {
public:
    virtual ~synth_strategy() = default;
    /// Stable registry name ("greedy", "exact", ...).
    virtual std::string name() const = 0;
    /// One-line human description (shown by `phls strategies`).
    virtual std::string description() const = 0;
    /// Runs the synthesis; never throws for expected failures.
    virtual synth_outcome run(const synth_request& request) const = 0;
};

// --------------------------------------------------------------- registry

/// Process-wide name -> strategy table.  Built-in strategies are
/// registered on first use; user backends may be added at any time.
/// Lookup returns borrowed pointers that stay valid for the process
/// lifetime (strategies are never unregistered).
class strategy_registry {
public:
    /// The singleton, with built-ins registered.
    static strategy_registry& instance();

    /// Registers a backend; replaces any existing strategy of the same
    /// name (latest wins).  Thread-safe.
    void add(std::shared_ptr<scheduler_strategy> s);
    void add(std::shared_ptr<synth_strategy> s);

    /// nullptr when the name is unknown.
    const scheduler_strategy* scheduler(const std::string& name) const;
    const synth_strategy* synthesizer(const std::string& name) const;

    /// Registered names, sorted.
    std::vector<std::string> scheduler_names() const;
    std::vector<std::string> synthesizer_names() const;

private:
    strategy_registry();

    struct impl;
    std::unique_ptr<impl> impl_;
};

} // namespace phls
