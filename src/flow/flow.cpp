#include "flow/flow.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "battery/lifetime.h"
#include "flow/explore_cache.h"
#include "flow/pareto_stream.h"
#include "support/errors.h"
#include "support/memo_key.h"
#include "support/strings.h"

namespace phls {
namespace {

double elapsed_ms(std::chrono::steady_clock::time_point since)
{
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(now - since).count();
}

} // namespace

std::string flow_report::to_string() const
{
    // Canonical rendering of every *result* field; wall_ms is timing
    // noise and deliberately excluded so identical outcomes serialise
    // identically regardless of machine load, thread count or caching.
    std::string out;
    out += "status: " + st.to_string() + '\n';
    out += "strategy: " + strategy + '\n';
    out += strf("point: T=%d Pmax=%.6f\n", constraints.latency, constraints.max_power);
    if (!note.empty()) out += "note: " + note + '\n';
    if (has_design) {
        out += strf("design: area %.4f peak %.4f latency %d instances %zu optimal %d\n",
                    area, peak, latency, dp.instances.size(), optimal ? 1 : 0);
        out += strf("stats: merges=%d pair=%d join=%d rejected=%d recomputes=%d "
                    "locked=%d lock_at=%d rebinds=%d fallbacks=%d\n",
                    stats.merges, stats.pair_merges, stats.join_merges, stats.rejected,
                    stats.window_recomputes, stats.locked ? 1 : 0,
                    stats.merges_before_lock, stats.finalize_rebinds,
                    stats.finalize_fallbacks);
        out += "binding:";
        for (int v = 0; v < dp.sched.node_count(); ++v) {
            const node_id id(v);
            out += strf(" %d@%d:m%d/u%d", v, dp.sched.start(id),
                        dp.sched.module_of(id).value(), dp.instance_of[id.index()]);
        }
        out += '\n';
    }
    if (has_netlist)
        out += strf("netlist: fus %zu registers %zu connections %zu\n", nl.fus.size(),
                    nl.registers.size(), nl.connections.size());
    if (has_lifetime)
        out += strf("lifetime: %.6f s (alpha %.6f)\n", lifetime_seconds, battery_alpha);
    return out;
}

flow::flow(const graph& g) : graph_(g), lib_(table1_library()) {}

flow flow::on(const graph& g) { return flow(g); }

flow& flow::with_library(const module_library& lib)
{
    lib_ = lib;
    return *this;
}

flow& flow::latency(int cycles)
{
    constraints_.latency = cycles;
    return *this;
}

flow& flow::power_cap(double max_power)
{
    constraints_.max_power = max_power;
    return *this;
}

flow& flow::constraints(const synthesis_constraints& c)
{
    constraints_ = c;
    return *this;
}

flow& flow::synthesizer(std::string name)
{
    synth_name_ = std::move(name);
    return *this;
}

flow& flow::scheduler(std::string name)
{
    sched_name_ = std::move(name);
    return *this;
}

flow& flow::options(const synthesis_options& o)
{
    options_ = o;
    return *this;
}

flow& flow::exact_budget(const exact_options& o)
{
    exact_ = o;
    return *this;
}

flow& flow::emit_netlist(bool enabled)
{
    want_netlist_ = enabled;
    return *this;
}

flow& flow::estimate_lifetime(const lifetime_spec& spec)
{
    want_lifetime_ = true;
    lifetime_ = spec;
    return *this;
}

flow& flow::reuse(std::shared_ptr<const explore_cache> cache)
{
    cache_ = std::move(cache);
    return *this;
}

flow& flow::caching(bool enabled)
{
    caching_ = enabled;
    return *this;
}

std::shared_ptr<explore_cache> flow::build_cache() const
{
    return std::make_shared<explore_cache>(graph_, lib_);
}

status flow::shared_cache(const explore_cache** out) const
{
    *out = nullptr;
    if (!cache_) return status::success();
    if (!cache_->compatible(graph_, lib_))
        return status::invalid(
            "explore_cache was built for a different graph or library");
    *out = cache_.get();
    return status::success();
}

std::string flow::fingerprint(const synthesis_constraints& c) const
{
    // Every field that influences run_point's outcome (beyond the graph
    // and library, which are the cache's identity) is encoded, so flows
    // with distinct configurations never collide; the scheduler name is
    // included for future-proofing even though run_point ignores it.
    std::string key;
    key_str(key, synth_name_);
    key_str(key, sched_name_);
    key_int(key, static_cast<int>(options_.policy));
    key_int(key, options_.try_both_prospects ? 1 : 0);
    key_int(key, static_cast<int>(options_.order));
    key_double(key, options_.costs.register_area);
    key_double(key, options_.costs.mux_area_per_extra_input);
    key_int(key, options_.costs.include_interconnect ? 1 : 0);
    key_int(key, options_.enable_backtrack_lock ? 1 : 0);
    key_int(key, options_.lock_from_start ? 1 : 0);
    key_int(key, options_.allow_cheapest_rebind ? 1 : 0);
    key_int(key, options_.verify_result ? 1 : 0);
    key_int(key, options_.max_merge_attempts);
    key_int(key, exact_.max_operations);
    key_int(key, exact_.node_limit);
    key_double(key, exact_.costs.register_area);
    key_double(key, exact_.costs.mux_area_per_extra_input);
    key_int(key, exact_.costs.include_interconnect ? 1 : 0);
    key_int(key, want_netlist_ ? 1 : 0);
    key_int(key, want_lifetime_ ? 1 : 0);
    key_double(key, lifetime_.voltage);
    key_double(key, lifetime_.cycle_seconds);
    key_int(key, lifetime_.idle_cycles);
    key_double(key, lifetime_.beta);
    key_double(key, lifetime_.alpha);
    key_double(key, lifetime_.max_seconds);
    key_int(key, c.latency);
    key_double(key, c.max_power);
    return key;
}

flow_report flow::run_point(const synthesis_constraints& c,
                            const explore_cache* cache) const
{
    const auto started = std::chrono::steady_clock::now();

    // Level 2: exactly-duplicate points (dense 2-D grids, repeated
    // sweeps over a shared cache) are served whole.  The stored report
    // is a deterministic pure function of the fingerprint, so serving it
    // is byte-identical to recomputing; only wall_ms (excluded from the
    // canonical rendering) reflects the lookup instead.
    std::string memo_key;
    if (cache != nullptr) {
        memo_key = fingerprint(c);
        flow_report memo;
        if (cache->report_lookup(memo_key, &memo)) {
            memo.wall_ms = elapsed_ms(started);
            return memo;
        }
    }

    flow_report report;
    report.strategy = synth_name_;
    report.constraints = c;
    try {
        const synth_strategy* strategy =
            strategy_registry::instance().synthesizer(synth_name_);
        if (strategy == nullptr) {
            report.st = status::unsupported("unknown synthesizer strategy '" +
                                            synth_name_ + "'");
            report.wall_ms = elapsed_ms(started);
            return report;
        }

        synth_request request;
        request.g = &graph_;
        request.lib = &lib_;
        request.constraints = c;
        request.options = options_;
        request.exact = exact_;
        request.cache = cache;
        synth_outcome outcome = strategy->run(request);

        report.st = outcome.st;
        report.has_design = outcome.has_design;
        report.stats = outcome.stats;
        report.optimal = outcome.optimal;
        report.note = std::move(outcome.note);
        if (outcome.has_design) {
            report.dp = std::move(outcome.dp);
            report.area = report.dp.area.total();
            report.peak = report.dp.peak_power(lib_);
            report.latency = report.dp.latency(lib_);
        }

        if (report.st.ok() && want_netlist_) {
            report.nl = build_netlist(report.dp.name, graph_, lib_, report.dp.sched,
                                      report.dp.instance_of,
                                      report.dp.instance_modules());
            report.has_netlist = true;
        }

        if (report.st.ok() && want_lifetime_) {
            const power_profile profile = report.dp.sched.profile(lib_);
            const load_profile load = to_load(profile, lifetime_.voltage,
                                              lifetime_.cycle_seconds,
                                              lifetime_.idle_cycles);
            report.battery_alpha =
                lifetime_.alpha > 0.0
                    ? lifetime_.alpha
                    : profile.energy() * lifetime_.cycle_seconds * 100.0;
            const auto cell =
                make_rakhmatov_battery(report.battery_alpha, lifetime_.beta);
            report.lifetime_seconds =
                cell->lifetime(load, lifetime_.max_seconds).seconds;
            report.has_lifetime = true;
        }
    } catch (const error& e) {
        report.st = status::invalid(e.what());
    } catch (const std::exception& e) {
        report.st = status::internal(e.what());
    }
    report.wall_ms = elapsed_ms(started);
    // internal means an escaped exception (possibly transient, e.g. an
    // allocation failure): memoising it would make one bad run permanent
    // for every duplicate of this point on a shared cache.  The other
    // codes are deterministic outcomes and safe to store.
    if (cache != nullptr && report.st.code != status_code::internal)
        cache->report_store(memo_key, report);
    return report;
}

flow_report flow::run() const
{
    const explore_cache* cache = nullptr;
    if (const status st = shared_cache(&cache); !st.ok()) {
        flow_report report;
        report.strategy = synth_name_;
        report.constraints = constraints_;
        report.st = st;
        return report;
    }
    return run_point(constraints_, cache);
}

std::vector<flow_report>
flow::run_batch(const std::vector<synthesis_constraints>& points, int threads) const
{
    return run_batch_stream(points, {}, threads);
}

std::vector<flow_report>
flow::run_batch_stream(const std::vector<synthesis_constraints>& points,
                       const stream_callback& on_result, int threads) const
{
    std::vector<flow_report> reports(points.size());
    if (points.empty()) return reports;

    // Malformed batch requests fail every point loudly with the same
    // status instead of computing on wrong assumptions.  Callback
    // semantics match the worker-pool path: a throwing consumer cancels
    // further deliveries, every report is still filled in, and the
    // exception is rethrown at the end.
    const auto fail_all = [&](const status& st) {
        std::exception_ptr consumer_error;
        for (std::size_t i = 0; i < points.size(); ++i) {
            reports[i].strategy = synth_name_;
            reports[i].constraints = points[i];
            reports[i].st = st;
            if (!on_result || consumer_error) continue;
            try {
                on_result(i, reports[i]);
            } catch (...) {
                consumer_error = std::current_exception();
            }
        }
        if (consumer_error) std::rethrow_exception(consumer_error);
        return reports;
    };

    // A negative worker count is a malformed request, not "use all
    // cores" (that is spelled 0).
    if (threads < 0)
        return fail_all(status::invalid(
            strf("thread count must be >= 0 (0 = hardware concurrency), got %d",
                 threads)));

    // One compatibility check per batch, not per point.
    const explore_cache* cache = nullptr;
    if (const status st = shared_cache(&cache); !st.ok()) return fail_all(st);

    // Without a shared cache, build one for this batch so every point
    // reuses the (graph, lib) invariants.  A malformed problem cannot be
    // cached; each point then reports invalid_argument through the
    // normal uncached path.
    std::shared_ptr<const explore_cache> batch_cache;
    if (cache == nullptr && caching_) {
        try {
            batch_cache = build_cache();
            cache = batch_cache.get();
        } catch (const std::exception&) {
            cache = nullptr;
        }
    }

    std::size_t workers = threads > 0
                              ? static_cast<std::size_t>(threads)
                              : std::max(1u, std::thread::hardware_concurrency());
    workers = std::min(workers, points.size());

    // Each point is claimed by exactly one worker and written to its own
    // slot, so results are in input order and independent of the worker
    // count; run_point never throws, but the extra catch keeps even an
    // allocation failure isolated to one point's report.  Streaming
    // callbacks are serialised under `stream_mutex` and delivered in
    // completion order; the first callback exception cancels the rest
    // and is rethrown once every worker has drained.
    std::atomic<std::size_t> next{0};
    std::mutex stream_mutex;
    std::exception_ptr stream_error;
    const auto deliver = [&](std::size_t i) {
        if (!on_result) return;
        const std::lock_guard<std::mutex> lock(stream_mutex);
        if (stream_error) return;
        try {
            on_result(i, reports[i]);
        } catch (...) {
            stream_error = std::current_exception();
        }
    };
    const auto drain = [&]() {
        for (std::size_t i = next.fetch_add(1); i < points.size();
             i = next.fetch_add(1)) {
            try {
                reports[i] = run_point(points[i], cache);
            } catch (const std::exception& e) {
                reports[i] = flow_report{};
                reports[i].strategy = synth_name_;
                reports[i].constraints = points[i];
                reports[i].st = status::internal(e.what());
            }
            deliver(i);
        }
    };

    if (workers == 1) {
        drain();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(drain);
        for (std::thread& t : pool) t.join();
    }
    if (stream_error) std::rethrow_exception(stream_error);
    return reports;
}

std::vector<flow_report>
flow::run_batch_pareto(const std::vector<synthesis_constraints>& points,
                       const pareto_callback& on_progress, int threads) const
{
    if (!on_progress) return run_batch(points, threads);
    // run_batch_stream serialises callbacks, so the fold needs no lock;
    // the front state is complete w.r.t. every previously delivered
    // report when on_progress observes it.
    pareto_stream front;
    return run_batch_stream(
        points,
        [&front, &on_progress](std::size_t i, const flow_report& r) {
            const bool changed = front.add(i, r);
            on_progress(i, r, front, changed);
        },
        threads);
}

sched_outcome flow::run_schedule() const
{
    const explore_cache* cache = nullptr;
    if (const status st = shared_cache(&cache); !st.ok()) return {st, {}};
    const scheduler_strategy* strategy =
        strategy_registry::instance().scheduler(sched_name_);
    if (strategy == nullptr)
        return {status::unsupported("unknown scheduler strategy '" + sched_name_ + "'"),
                {}};
    sched_request request;
    request.g = &graph_;
    request.lib = &lib_;
    request.power_cap = constraints_.max_power;
    request.latency = constraints_.latency;
    request.order = options_.order;
    request.cache = cache;
    return strategy->run(request);
}

std::vector<double> flow::power_grid(int points) const
{
    check(points >= 2, "power grid needs at least two points");
    const explore_cache* cache = nullptr;
    if (const status st = shared_cache(&cache); !st.ok()) throw error(st.message);

    // Lower edge: no operation can run below the min per-cycle power of
    // its kind, so the sweep starts just under that necessary bound.
    // One min_power_for query per kind present (the cache's level-0 kind
    // buckets when available), not one per node.
    double low = 0.0;
    for (const op_kind k : all_op_kinds()) {
        const bool present = cache != nullptr ? !cache->nodes_of_kind(k).empty()
                                              : graph_.count_of_kind(k) > 0;
        if (!present) continue;
        const std::optional<double> p = lib_.min_power_for(k);
        check(p.has_value(), "library does not cover the graph");
        low = std::max(low, *p);
    }

    // Upper edge: the unconstrained design's peak; everything above it is
    // a plateau.  When even the unconstrained probe fails (e.g. the
    // latency bound is below the critical path) there is no meaningful
    // grid to build -- propagate that run's diagnostic instead of
    // fabricating one.
    const flow_report unconstrained =
        run_point({constraints_.latency, unbounded_power}, cache);
    if (!unconstrained.st.ok())
        throw error("power_grid: unconstrained probe failed: " +
                    unconstrained.st.to_string());
    const double high = std::max(unconstrained.peak, low + 1.0);

    std::vector<double> caps;
    caps.reserve(static_cast<std::size_t>(points));
    const double start = std::max(0.5, low - 1.0);
    const double stop = high * 1.15;
    for (int i = 0; i < points; ++i)
        caps.push_back(start + (stop - start) * i / (points - 1));
    return caps;
}

} // namespace phls
