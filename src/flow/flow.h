// The flow engine: single entry point to the whole pipeline.
//
// A phls::flow owns one design problem -- a CDFG, a module library and
// the (T, Pmax) constraints -- and runs the paper's pipeline as
// composable stages: scheduling -> synthesis (allocation + binding) ->
// RTL netlist -> battery lifetime.  Stages are selected fluently and
// every outcome is reported through phls::status (no bools, no
// exceptions for expected infeasibility):
//
//   const flow_report r = flow::on(g)
//                             .with_library(lib)
//                             .latency(17)
//                             .power_cap(7.0)
//                             .emit_netlist()
//                             .run();
//   if (r.st.ok()) use(r.dp, r.nl);
//
// Backends are pluggable by name through the strategy registry
// (`.synthesizer("exact")`, `.scheduler("fds")` -- see strategy.h).
// Batch exploration runs through `run_batch` / `run_batch_stream`: many
// (T, Pmax) points on a worker pool with per-point isolation,
// deterministic input-ordered results, per-(graph, lib) sub-results
// shared through an explore_cache, and (for the streaming variant) a
// callback that delivers each report as its point completes.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "flow/strategy.h"
#include "rtl/netlist.h"

namespace phls {

class explore_cache;
class pareto_stream;

/// Battery-lifetime stage parameters (see battery/battery.h for the
/// underlying Rakhmatov-Vrudhula model).
struct lifetime_spec {
    double voltage = 1.0;       ///< converts power to current
    double cycle_seconds = 0.5; ///< wall-clock length of one cycle
    int idle_cycles = 0;        ///< sleep cycles appended per period
    double beta = 0.1;          ///< diffusion parameter (smaller = worse cell)
    /// Battery capacity alpha; <= 0 derives it from the design itself as
    /// `energy * cycle_seconds * 100` (roughly 100 iterations of margin),
    /// which keeps lifetimes comparable across designs of one graph.
    double alpha = 0.0;
    double max_seconds = 1e9; ///< simulation horizon
};

/// Structured outcome of one flow run.
struct flow_report {
    status st;            ///< ok, infeasible, invalid_argument, ...
    std::string strategy; ///< synthesis strategy used
    synthesis_constraints constraints; ///< the (T, Pmax) point evaluated

    /// A design was produced.  True for every ok() report; also true for
    /// baseline strategies that produced a design violating the cap (the
    /// status is infeasible but the datapath is still inspectable).
    bool has_design = false;
    datapath dp;           ///< schedule + allocation + binding (see has_design)
    synthesis_stats stats; ///< heuristic counters (greedy strategy)
    bool optimal = false;  ///< design proven minimal-area ("exact" strategy)
    std::string note;      ///< strategy remark ("optimal", peak trace, ...)

    double area = 0.0;  ///< dp.area.total()
    double peak = 0.0;  ///< achieved peak per-cycle power
    int latency = 0;    ///< achieved latency, cycles

    bool has_netlist = false; ///< emit_netlist() stage ran
    netlist nl;               ///< structural netlist (see has_netlist)

    bool has_lifetime = false;       ///< estimate_lifetime() stage ran
    double lifetime_seconds = 0.0;   ///< battery lifetime of this design
    double battery_alpha = 0.0;      ///< capacity used by the model

    double wall_ms = 0.0; ///< wall-clock time of this run

    /// Shorthand for st.ok().
    bool feasible() const { return st.ok(); }

    /// Canonical multi-line rendering of every result field (used by the
    /// determinism tests: identical reports must serialise identically).
    std::string to_string() const;
};

/// Streaming report channel for run_batch_stream: invoked once per batch
/// point, with the point's input index and its finished report, in
/// completion order.  Calls are serialised (never concurrent), so the
/// callback may touch shared state without locking; it must not block
/// for long (it stalls the worker pool) and should not throw -- a thrown
/// exception cancels further callbacks and rethrows to the caller after
/// the batch finishes.
using stream_callback = std::function<void(std::size_t index, const flow_report& report)>;

/// Progress channel for run_batch_pareto: like stream_callback, plus the
/// incremental Pareto-front state after folding this report in and
/// whether the front changed.  Same serialisation and exception
/// semantics as stream_callback; `front` (and any pointer obtained from
/// it) is only valid during the call.
using pareto_callback = std::function<void(std::size_t index, const flow_report& report,
                                           const pareto_stream& front, bool front_changed)>;

/// Fluent builder + executor for one design problem.  The graph and
/// library are copied in, so a flow outlives its inputs; a configured
/// flow is immutable under run()/run_batch() and safe to share across
/// threads.
class flow {
public:
    /// Starts a flow on a copy of `g` with the paper's Table 1 library.
    static flow on(const graph& g);

    /// Replaces the module library (default: the paper's Table 1).
    flow& with_library(const module_library& lib);
    /// Sets the latency constraint T in cycles.
    flow& latency(int cycles);
    /// Sets the per-cycle power cap Pmax (default: unbounded).
    flow& power_cap(double max_power);
    /// Sets both constraints at once.
    flow& constraints(const synthesis_constraints& c);

    /// Selects the synthesis backend by registry name (default "greedy").
    flow& synthesizer(std::string name);
    /// Selects the scheduler backend used by run_schedule (default "pasap").
    flow& scheduler(std::string name);
    /// Heuristic knobs forwarded to the synthesis strategy.
    flow& options(const synthesis_options& o);
    /// Search budget for the "exact" strategy.
    flow& exact_budget(const exact_options& o);

    /// Enables the RTL stage: flow_report::nl is filled on success.
    flow& emit_netlist(bool enabled = true);
    /// Enables the battery stage: lifetime of the synthesised design.
    flow& estimate_lifetime(const lifetime_spec& spec = {});

    /// Shares a pre-built explore_cache with this flow: run(), batch runs
    /// and run_schedule() serve reachability, prospect tables, initial
    /// and committed windows, and whole reports of exactly-duplicate
    /// points from it instead of recomputing per point (see
    /// explore_cache for the two levels).  The cache must have been
    /// built for this flow's (graph, library) -- see build_cache(); a
    /// mismatched cache makes every run report invalid_argument rather
    /// than silently computing on the wrong problem.
    flow& reuse(std::shared_ptr<const explore_cache> cache);

    /// Enables/disables the automatic per-batch cache (default enabled).
    /// run_batch builds a fresh explore_cache per call when no shared one
    /// was installed with reuse(); pass false to benchmark the uncached
    /// path.  Results are byte-identical either way.
    flow& caching(bool enabled);

    /// Builds an explore_cache for this flow's (graph, library), ready to
    /// pass to reuse() -- on this flow and on any other flow over the
    /// same problem.  @throws phls::error on a malformed problem.
    std::shared_ptr<explore_cache> build_cache() const;

    /// Runs scheduling -> synthesis -> netlist -> lifetime for the
    /// configured constraint point.  Never throws: malformed inputs come
    /// back as status invalid_argument, impossible constraints as
    /// status infeasible.
    flow_report run() const;

    /// Runs the configured pipeline once per (T, Pmax) point on a pool
    /// of `threads` workers.  `threads == 0` means hardware concurrency;
    /// a negative count is a malformed request and is reported as
    /// invalid_argument on every point (like a stale cache).  Results
    /// are in input order and bit-identical to `threads == 1`; a failure
    /// in one point (including an escaped exception) is isolated to that
    /// point's report.  Sub-results are shared across points through an
    /// explore_cache (see reuse()/caching()).
    std::vector<flow_report> run_batch(const std::vector<synthesis_constraints>& points,
                                       int threads = 0) const;

    /// run_batch with a streaming report channel: `on_result` is invoked
    /// once per point as it completes (completion order, serialised --
    /// see stream_callback), and the full input-ordered vector is still
    /// returned at the end, byte-identical to run_batch.  An empty
    /// callback degrades to plain run_batch.
    std::vector<flow_report>
    run_batch_stream(const std::vector<synthesis_constraints>& points,
                     const stream_callback& on_result, int threads = 0) const;

    /// run_batch_stream with an incremental Pareto front folded in: each
    /// completed report is added to a pareto_stream over (peak, area,
    /// lifetime when estimated) before `on_progress` sees it, so
    /// consumers can render the partial front / Figure-2 envelope while
    /// the sweep runs.  After the last point the front equals
    /// pareto_points() of the returned vector, whatever the completion
    /// order.  An empty callback degrades to plain run_batch.
    std::vector<flow_report>
    run_batch_pareto(const std::vector<synthesis_constraints>& points,
                     const pareto_callback& on_progress, int threads = 0) const;

    /// Runs only the scheduling stage with the selected scheduler
    /// strategy (assignment: fastest modules under the cap).
    sched_outcome run_schedule() const;

    /// The level-2 memo key for point `c`: every configuration field
    /// that influences run()'s outcome (strategy names, options, enabled
    /// stages, lifetime spec) plus the (T, Pmax) point, canonically
    /// encoded via support/memo_key.h, so two flows share a stored
    /// report iff they would compute identical ones.  dse::session uses
    /// this for metric lookups against a warm-started cache.
    std::string fingerprint(const synthesis_constraints& c) const;

    /// A Figure-2-style power grid for this problem: `points` caps from
    /// just below the feasibility threshold to just above the
    /// unconstrained design's peak.  @throws phls::error when points < 2,
    /// the library does not cover the graph, or the unconstrained probe
    /// run fails (e.g. the latency bound is below the critical path) --
    /// the error carries that run's diagnostic instead of fabricating a
    /// grid.
    std::vector<double> power_grid(int points) const;

    // Accessors (used by reporting, the CLI and the serve layer, which
    // serialises a configured flow into a wire job request).
    /// The graph this flow was built on.
    const graph& design() const { return graph_; }
    /// The module library in use.
    const module_library& library() const { return lib_; }
    /// The configured (T, Pmax) point.
    const synthesis_constraints& point() const { return constraints_; }
    /// The selected synthesis strategy name.
    const std::string& synthesizer_name() const { return synth_name_; }
    /// The selected scheduler strategy name.
    const std::string& scheduler_name() const { return sched_name_; }
    /// The heuristic knobs forwarded to the synthesis strategy.
    const synthesis_options& synthesis_opts() const { return options_; }
    /// The "exact" strategy's search budget.
    const exact_options& exact_opts() const { return exact_; }
    /// True iff the RTL netlist stage is enabled.
    bool wants_netlist() const { return want_netlist_; }
    /// True iff the battery-lifetime stage is enabled.
    bool wants_lifetime() const { return want_lifetime_; }
    /// The battery-lifetime stage parameters.
    const lifetime_spec& lifetime() const { return lifetime_; }

private:
    explicit flow(const graph& g);

    flow_report run_point(const synthesis_constraints& c,
                          const explore_cache* cache) const;

    /// The shared cache when it is installed and matches this problem;
    /// a non-ok status when it is installed but stale.
    status shared_cache(const explore_cache** out) const;

    graph graph_;
    module_library lib_;
    synthesis_constraints constraints_{0, unbounded_power};
    std::string synth_name_ = "greedy";
    std::string sched_name_ = "pasap";
    synthesis_options options_;
    exact_options exact_;
    bool want_netlist_ = false;
    bool want_lifetime_ = false;
    lifetime_spec lifetime_;
    std::shared_ptr<const explore_cache> cache_;
    bool caching_ = true;
};

} // namespace phls
