// The flow engine: single entry point to the whole pipeline.
//
// A phls::flow owns one design problem -- a CDFG, a module library and
// the (T, Pmax) constraints -- and runs the paper's pipeline as
// composable stages: scheduling -> synthesis (allocation + binding) ->
// RTL netlist -> battery lifetime.  Stages are selected fluently and
// every outcome is reported through phls::status (no bools, no
// exceptions for expected infeasibility):
//
//   const flow_report r = flow::on(g)
//                             .with_library(lib)
//                             .latency(17)
//                             .power_cap(7.0)
//                             .emit_netlist()
//                             .run();
//   if (r.st.ok()) use(r.dp, r.nl);
//
// Backends are pluggable by name through the strategy registry
// (`.synthesizer("exact")`, `.scheduler("fds")` -- see strategy.h), and
// `run_batch` evaluates many (T, Pmax) points across a worker pool with
// per-point isolation and deterministic, input-ordered results.  The
// legacy free functions (synthesize, sweep_power, ...) remain as thin
// deprecated shims over this engine for one release.
#pragma once

#include <string>
#include <vector>

#include "flow/strategy.h"
#include "rtl/netlist.h"

namespace phls {

/// Battery-lifetime stage parameters (see battery/battery.h for the
/// underlying Rakhmatov-Vrudhula model).
struct lifetime_spec {
    double voltage = 1.0;       ///< converts power to current
    double cycle_seconds = 0.5; ///< wall-clock length of one cycle
    int idle_cycles = 0;        ///< sleep cycles appended per period
    double beta = 0.1;          ///< diffusion parameter (smaller = worse cell)
    /// Battery capacity alpha; <= 0 derives it from the design itself as
    /// `energy * cycle_seconds * 100` (roughly 100 iterations of margin),
    /// which keeps lifetimes comparable across designs of one graph.
    double alpha = 0.0;
    double max_seconds = 1e9; ///< simulation horizon
};

/// Structured outcome of one flow run.
struct flow_report {
    status st;            ///< ok, infeasible, invalid_argument, ...
    std::string strategy; ///< synthesis strategy used
    synthesis_constraints constraints; ///< the (T, Pmax) point evaluated

    /// A design was produced.  True for every ok() report; also true for
    /// baseline strategies that produced a design violating the cap (the
    /// status is infeasible but the datapath is still inspectable).
    bool has_design = false;
    datapath dp;           ///< schedule + allocation + binding (see has_design)
    synthesis_stats stats; ///< heuristic counters (greedy strategy)
    bool optimal = false;  ///< design proven minimal-area ("exact" strategy)
    std::string note;      ///< strategy remark ("optimal", peak trace, ...)

    double area = 0.0;  ///< dp.area.total()
    double peak = 0.0;  ///< achieved peak per-cycle power
    int latency = 0;    ///< achieved latency, cycles

    bool has_netlist = false; ///< emit_netlist() stage ran
    netlist nl;

    bool has_lifetime = false;       ///< estimate_lifetime() stage ran
    double lifetime_seconds = 0.0;   ///< battery lifetime of this design
    double battery_alpha = 0.0;      ///< capacity used by the model

    double wall_ms = 0.0; ///< wall-clock time of this run

    bool feasible() const { return st.ok(); }

    /// Canonical multi-line rendering of every result field (used by the
    /// determinism tests: identical reports must serialise identically).
    std::string to_string() const;
};

/// Fluent builder + executor for one design problem.  The graph and
/// library are copied in, so a flow outlives its inputs; a configured
/// flow is immutable under run()/run_batch() and safe to share across
/// threads.
class flow {
public:
    /// Starts a flow on a copy of `g` with the paper's Table 1 library.
    static flow on(const graph& g);

    flow& with_library(const module_library& lib);
    flow& latency(int cycles);
    flow& power_cap(double max_power);
    flow& constraints(const synthesis_constraints& c);

    /// Selects the synthesis backend by registry name (default "greedy").
    flow& synthesizer(std::string name);
    /// Selects the scheduler backend used by run_schedule (default "pasap").
    flow& scheduler(std::string name);
    /// Heuristic knobs forwarded to the synthesis strategy.
    flow& options(const synthesis_options& o);
    /// Search budget for the "exact" strategy.
    flow& exact_budget(const exact_options& o);

    /// Enables the RTL stage: flow_report::nl is filled on success.
    flow& emit_netlist(bool enabled = true);
    /// Enables the battery stage: lifetime of the synthesised design.
    flow& estimate_lifetime(const lifetime_spec& spec = {});

    /// Runs scheduling -> synthesis -> netlist -> lifetime for the
    /// configured constraint point.  Never throws: malformed inputs come
    /// back as status invalid_argument, impossible constraints as
    /// status infeasible.
    flow_report run() const;

    /// Runs the configured pipeline once per (T, Pmax) point on a pool
    /// of `threads` workers (0 = hardware concurrency).  Results are in
    /// input order and bit-identical to `threads == 1`; a failure in one
    /// point (including an escaped exception) is isolated to that
    /// point's report.
    std::vector<flow_report> run_batch(const std::vector<synthesis_constraints>& points,
                                       int threads = 0) const;

    /// Runs only the scheduling stage with the selected scheduler
    /// strategy (assignment: fastest modules under the cap).
    sched_outcome run_schedule() const;

    /// A Figure-2-style power grid for this problem: `points` caps from
    /// just below the feasibility threshold to just above the
    /// unconstrained design's peak.
    std::vector<double> power_grid(int points) const;

    // Accessors (used by shims and reporting).
    const graph& design() const { return graph_; }
    const module_library& library() const { return lib_; }
    const synthesis_constraints& point() const { return constraints_; }

private:
    explicit flow(const graph& g);

    flow_report run_point(const synthesis_constraints& c) const;

    graph graph_;
    module_library lib_;
    synthesis_constraints constraints_{0, unbounded_power};
    std::string synth_name_ = "greedy";
    std::string sched_name_ = "pasap";
    synthesis_options options_;
    exact_options exact_;
    bool want_netlist_ = false;
    bool want_lifetime_ = false;
    lifetime_spec lifetime_;
};

} // namespace phls
