// Built-in scheduler and synthesizer strategies + the registry.
#include "flow/strategy.h"

#include <algorithm>
#include <map>
#include <mutex>

#include "flow/explore_cache.h"
#include "sched/asap_alap.h"
#include "sched/force_directed.h"
#include "support/errors.h"
#include "support/strings.h"
#include "synth/schedule_bind.h"
#include "synth/two_step.h"

namespace phls {
namespace {

status validate(const sched_request& r)
{
    if (r.g == nullptr || r.lib == nullptr)
        return status::invalid("sched_request needs a graph and a library");
    return status::success();
}

status validate(const synth_request& r)
{
    if (r.g == nullptr || r.lib == nullptr)
        return status::invalid("synth_request needs a graph and a library");
    if (r.constraints.latency <= 0)
        return status::invalid("latency constraint must be positive");
    return status::success();
}

/// Fills `a` from the request (explicit assignment, or the fastest
/// modules that fit under the power cap, served by the explore_cache
/// when one is attached).
status resolve_assignment(const sched_request& r, module_assignment& a)
{
    if (!r.assignment.empty()) {
        a = r.assignment;
        return status::success();
    }
    a = r.cache ? r.cache->fastest(r.power_cap)
                : fastest_assignment(*r.g, *r.lib, r.power_cap);
    if (a.empty())
        return status::infeasible("no module fits under the power cap");
    return status::success();
}

/// Maps phls::error (malformed inputs, per the error policy) to an
/// invalid_argument status so strategy callers never see exceptions.
template <typename Fn>
auto guarded(Fn&& fn) -> decltype(fn())
{
    try {
        return fn();
    } catch (const error& e) {
        decltype(fn()) out{};
        out.st = status::invalid(e.what());
        return out;
    }
}

status check_latency_bound(const schedule& s, const module_library& lib, int bound,
                           const char* who)
{
    if (bound > 0 && s.latency(lib) > bound)
        return status::infeasible(strf("%s latency %d exceeds the bound %d", who,
                                       s.latency(lib), bound));
    return status::success();
}

// ------------------------------------------------------------ schedulers

class asap_strategy final : public scheduler_strategy {
public:
    std::string name() const override { return "asap"; }
    std::string description() const override
    {
        return "classical earliest-start scheduling (power-oblivious)";
    }
    sched_outcome run(const sched_request& r) const override
    {
        return guarded([&]() -> sched_outcome {
            sched_outcome out{validate(r), {}};
            if (!out.st.ok()) return out;
            module_assignment a;
            if (out.st = resolve_assignment(r, a); !out.st.ok()) return out;
            out.sched = asap_schedule(*r.g, *r.lib, a);
            out.st = check_latency_bound(out.sched, *r.lib, r.latency, name().c_str());
            return out;
        });
    }
};

class alap_strategy final : public scheduler_strategy {
public:
    std::string name() const override { return "alap"; }
    std::string description() const override
    {
        return "classical latest-start scheduling anchored at the latency bound";
    }
    sched_outcome run(const sched_request& r) const override
    {
        return guarded([&]() -> sched_outcome {
            sched_outcome out{validate(r), {}};
            if (!out.st.ok()) return out;
            if (r.latency <= 0) {
                out.st = status::invalid("alap needs a positive latency bound");
                return out;
            }
            module_assignment a;
            if (out.st = resolve_assignment(r, a); !out.st.ok()) return out;
            out.sched = alap_schedule(*r.g, *r.lib, a, r.latency);
            if (!out.sched.complete())
                out.st = status::infeasible(
                    strf("latency bound %d is below the critical path", r.latency));
            return out;
        });
    }
};

class pasap_strategy final : public scheduler_strategy {
public:
    std::string name() const override { return "pasap"; }
    std::string description() const override
    {
        return "the paper's power-constrained ASAP (DATE'03, section 2)";
    }
    sched_outcome run(const sched_request& r) const override
    {
        return guarded([&]() -> sched_outcome {
            sched_outcome out{validate(r), {}};
            if (!out.st.ok()) return out;
            module_assignment a;
            if (out.st = resolve_assignment(r, a); !out.st.ok()) return out;
            pasap_options opts;
            opts.order = r.order;
            const pasap_result pr = pasap(*r.g, *r.lib, a, r.power_cap, opts);
            if (!pr.feasible) {
                out.st = status::infeasible(pr.reason);
                return out;
            }
            out.sched = pr.sched;
            out.st = check_latency_bound(out.sched, *r.lib, r.latency, name().c_str());
            return out;
        });
    }
};

class palap_strategy final : public scheduler_strategy {
public:
    std::string name() const override { return "palap"; }
    std::string description() const override
    {
        return "power-constrained ALAP, the time-reverse of pasap";
    }
    sched_outcome run(const sched_request& r) const override
    {
        return guarded([&]() -> sched_outcome {
            sched_outcome out{validate(r), {}};
            if (!out.st.ok()) return out;
            if (r.latency <= 0) {
                out.st = status::invalid("palap needs a positive latency bound");
                return out;
            }
            module_assignment a;
            if (out.st = resolve_assignment(r, a); !out.st.ok()) return out;
            pasap_options opts;
            opts.order = r.order;
            const pasap_result pr = palap(*r.g, *r.lib, a, r.power_cap, r.latency, opts);
            if (!pr.feasible) {
                out.st = status::infeasible(pr.reason);
                return out;
            }
            out.sched = pr.sched;
            return out;
        });
    }
};

class fds_strategy final : public scheduler_strategy {
public:
    std::string name() const override { return "fds"; }
    std::string description() const override
    {
        return "force-directed scheduling (Paulin & Knight), power-oblivious";
    }
    sched_outcome run(const sched_request& r) const override
    {
        return guarded([&]() -> sched_outcome {
            sched_outcome out{validate(r), {}};
            if (!out.st.ok()) return out;
            if (r.latency <= 0) {
                out.st = status::invalid("fds needs a positive latency bound");
                return out;
            }
            module_assignment a;
            if (out.st = resolve_assignment(r, a); !out.st.ok()) return out;
            const fds_result fr = force_directed_schedule(*r.g, *r.lib, a, r.latency);
            if (!fr.feasible) {
                out.st = status::infeasible(fr.reason);
                return out;
            }
            out.sched = fr.sched;
            return out;
        });
    }
};

// ----------------------------------------------------------- synthesizers

class greedy_strategy final : public synth_strategy {
public:
    std::string name() const override { return "greedy"; }
    std::string description() const override
    {
        return "the paper's integrated power-aware clique partitioner";
    }
    synth_outcome run(const synth_request& r) const override
    {
        return guarded([&]() -> synth_outcome {
            synth_outcome out;
            if (out.st = validate(r); !out.st.ok()) return out;
            const synthesis_result sr =
                synthesize(*r.g, *r.lib, r.constraints, r.options, r.cache);
            out.stats = sr.stats;
            if (!sr.feasible) {
                out.st = status::infeasible(sr.reason);
                return out;
            }
            out.has_design = true;
            out.dp = sr.dp;
            return out;
        });
    }
};

class two_step_strategy final : public synth_strategy {
public:
    std::string name() const override { return "two_step"; }
    std::string description() const override
    {
        return "baseline: time-constrained synthesis, then peak-reducing reorder";
    }
    synth_outcome run(const synth_request& r) const override
    {
        return guarded([&]() -> synth_outcome {
            synth_outcome out;
            if (out.st = validate(r); !out.st.ok()) return out;
            const two_step_result ts =
                two_step_synthesize(*r.g, *r.lib, r.constraints, r.options, r.cache);
            if (!ts.feasible) {
                out.st = status::infeasible(ts.reason);
                return out;
            }
            out.has_design = true;
            out.dp = ts.dp;
            out.note = strf("peak %.2f -> %.2f after %d moves", ts.peak_before,
                            ts.peak_after, ts.moves);
            if (!ts.meets_power)
                out.st = status::infeasible(
                    strf("reordering stopped at peak %.2f, above the cap %.2f",
                         ts.peak_after, r.constraints.max_power));
            return out;
        });
    }
};

class fds_bind_strategy final : public synth_strategy {
public:
    std::string name() const override { return "fds_bind"; }
    std::string description() const override
    {
        return "baseline: force-directed schedule, then greedy instance binding";
    }
    synth_outcome run(const synth_request& r) const override
    {
        return guarded([&]() -> synth_outcome {
            synth_outcome out;
            if (out.st = validate(r); !out.st.ok()) return out;
            const module_assignment a =
                r.cache ? r.cache->fastest(r.constraints.max_power)
                        : fastest_assignment(*r.g, *r.lib, r.constraints.max_power);
            if (a.empty()) {
                out.st = status::infeasible("no module fits under the power cap");
                return out;
            }
            const fds_result fr =
                force_directed_schedule(*r.g, *r.lib, a, r.constraints.latency);
            if (!fr.feasible) {
                out.st = status::infeasible(fr.reason);
                return out;
            }
            out.dp = bind_schedule(r.g->name() + "_fds", *r.g, *r.lib, fr.sched,
                                   r.options.costs);
            out.has_design = true;
            const double peak = out.dp.peak_power(*r.lib);
            if (peak > r.constraints.max_power + power_tracker::tolerance)
                out.st = status::infeasible(
                    strf("power-oblivious schedule peaks at %.2f, above the cap %.2f",
                         peak, r.constraints.max_power));
            return out;
        });
    }
};

class exact_strategy final : public synth_strategy {
public:
    std::string name() const override { return "exact"; }
    std::string description() const override
    {
        return "exact branch-and-bound (provably minimal area, small graphs)";
    }
    synth_outcome run(const synth_request& r) const override
    {
        return guarded([&]() -> synth_outcome {
            synth_outcome out;
            if (out.st = validate(r); !out.st.ok()) return out;
            const exact_result er = exact_synthesize(*r.g, *r.lib, r.constraints, r.exact);
            if (!er.feasible) {
                out.st = status::infeasible(
                    er.reason.empty() ? "no design within the constraints" : er.reason);
                out.note = strf("explored %ld nodes", er.explored);
                return out;
            }
            out.has_design = true;
            out.dp = er.dp;
            out.optimal = er.solved;
            out.note = strf("%s; explored %ld nodes",
                            er.solved ? "optimal" : er.reason.c_str(), er.explored);
            return out;
        });
    }
};

} // namespace

// --------------------------------------------------------------- registry

struct strategy_registry::impl {
    mutable std::mutex mutex;
    std::map<std::string, std::shared_ptr<scheduler_strategy>> schedulers;
    std::map<std::string, std::shared_ptr<synth_strategy>> synthesizers;
};

strategy_registry::strategy_registry() : impl_(new impl)
{
    add(std::make_shared<asap_strategy>());
    add(std::make_shared<alap_strategy>());
    add(std::make_shared<pasap_strategy>());
    add(std::make_shared<palap_strategy>());
    add(std::make_shared<fds_strategy>());
    add(std::make_shared<greedy_strategy>());
    add(std::make_shared<two_step_strategy>());
    add(std::make_shared<fds_bind_strategy>());
    add(std::make_shared<exact_strategy>());
}

strategy_registry& strategy_registry::instance()
{
    static strategy_registry registry;
    return registry;
}

void strategy_registry::add(std::shared_ptr<scheduler_strategy> s)
{
    check(s != nullptr && !s->name().empty(), "scheduler strategy must have a name");
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->schedulers[s->name()] = std::move(s);
}

void strategy_registry::add(std::shared_ptr<synth_strategy> s)
{
    check(s != nullptr && !s->name().empty(), "synth strategy must have a name");
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->synthesizers[s->name()] = std::move(s);
}

const scheduler_strategy* strategy_registry::scheduler(const std::string& name) const
{
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    const auto it = impl_->schedulers.find(name);
    return it == impl_->schedulers.end() ? nullptr : it->second.get();
}

const synth_strategy* strategy_registry::synthesizer(const std::string& name) const
{
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    const auto it = impl_->synthesizers.find(name);
    return it == impl_->synthesizers.end() ? nullptr : it->second.get();
}

std::vector<std::string> strategy_registry::scheduler_names() const
{
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    std::vector<std::string> names;
    for (const auto& [name, s] : impl_->schedulers) names.push_back(name);
    return names;
}

std::vector<std::string> strategy_registry::synthesizer_names() const
{
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    std::vector<std::string> names;
    for (const auto& [name, s] : impl_->synthesizers) names.push_back(name);
    return names;
}

} // namespace phls
