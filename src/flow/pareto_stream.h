// Incremental Pareto front / Figure-2 envelope over streamed reports.
//
// A batch sweep's interesting output is rarely the raw per-point vector:
// it is the Pareto front in the (peak power, area, battery lifetime)
// space and the paper's Figure-2 envelope (best area achievable under
// each cap).  pareto_stream folds finished flow_reports in one at a time
// — the shape run_batch_stream delivers them in — and maintains the
// exact front incrementally, so a consumer can render partial results
// while the sweep is still running.  The incremental front after the
// last point equals the front computed post-hoc from the final vector
// (pareto_points) regardless of completion order.
//
// flow::run_batch_pareto wires this into the batch executor: the
// progress callback receives each report plus the front state the moment
// the point completes.
#pragma once

#include <cstddef>
#include <vector>

#include "flow/flow.h"

namespace phls {

/// One feasible design on the streamed front.
struct front_point {
    std::size_t index = 0;         ///< input index of the originating report
    int latency_bound = 0;         ///< T of the constraint point
    double cap = 0.0;              ///< Pmax of the constraint point
    double area = 0.0;             ///< achieved total area (minimised)
    double peak = 0.0;             ///< achieved peak per-cycle power (minimised)
    int latency = 0;               ///< achieved latency, cycles
    bool has_lifetime = false;     ///< the lifetime stage ran for this report
    double lifetime_seconds = 0.0; ///< battery lifetime (maximised when present)
};

/// Field-wise equality (used by the incremental == post-hoc assertions).
bool operator==(const front_point& a, const front_point& b);

/// True iff `a` renders `b` redundant: `a` is no worse on every objective
/// — peak and area lower-or-equal, lifetime greater-or-equal (compared
/// only when both reports ran the lifetime stage) — and either strictly
/// better somewhere or an exact objective tie with the lower input index
/// (so duplicate points keep one representative, deterministically).
/// The index tiebreak is restricted to points with matching
/// has_lifetime, keeping the relation a strict partial order even on
/// mixed report sets; run_batch_pareto always feeds a uniform
/// configuration, where every pair is fully comparable.
bool front_dominates(const front_point& a, const front_point& b);

/// The change one report made to the front: the points that entered and
/// the points it displaced.  Replaying a delta sequence onto an empty
/// front reconstructs the final front exactly, so a consumer (the CLI's
/// progress channel, a future multi-process aggregator) can mirror the
/// envelope without ever being sent the whole front per completion —
/// the dse::session sink delivers these.
struct front_delta {
    std::size_t index = 0;            ///< input index of the folded report
    std::vector<front_point> entered; ///< points added (0 or 1 per fold)
    std::vector<front_point> left;    ///< points the entrant displaced
    /// True iff the fold changed the front (equivalently: entered or
    /// left is non-empty).
    bool changed() const { return !entered.empty() || !left.empty(); }
};

/// Incremental Pareto-front accumulator.  Not thread-safe by itself;
/// run_batch_stream serialises callbacks, which is where it is meant to
/// be fed.
class pareto_stream {
public:
    /// Folds one finished report in; infeasible reports only advance the
    /// seen counters.  Returns true iff the front changed.  When `delta`
    /// is non-null it receives exactly the points that entered and left
    /// on this fold (empty vectors when nothing changed).
    bool add(std::size_t index, const flow_report& report, front_delta* delta = nullptr);

    /// The current front: non-dominated feasible points, sorted by
    /// (peak, area, index) ascending.
    const std::vector<front_point>& front() const { return front_; }

    /// The Figure-2 envelope value at `cap`: the design with the
    /// smallest area (ties: lower peak, then lower index) whose achieved
    /// peak fits under `cap`, among all points seen so far.  Returns
    /// nullptr when nothing feasible fits; the pointer is invalidated by
    /// the next add().  Agrees with monotone_envelope on the selected
    /// area and peak; when the lifetime objective is streamed, ties in
    /// (area, peak) resolve to the longest-lived surviving front point
    /// rather than monotone_envelope's (lifetime-blind) first occurrence.
    const front_point* best_under(double cap) const;

    /// Reports folded in so far (feasible or not).
    std::size_t seen() const { return seen_; }
    /// Feasible reports folded in so far.
    std::size_t feasible_seen() const { return feasible_; }

private:
    std::vector<front_point> front_;
    std::size_t seen_ = 0;
    std::size_t feasible_ = 0;
};

/// Post-hoc reference: the same front computed from a finished report
/// vector (index = position).  pareto_stream fed with any permutation of
/// the vector ends on exactly this front.
std::vector<front_point> pareto_points(const std::vector<flow_report>& reports);

} // namespace phls
