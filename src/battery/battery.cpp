#include "battery/battery.h"

#include "support/errors.h"

namespace phls {

void check_load(const load_profile& load)
{
    check(!load.current.empty(), "load profile is empty");
    check(load.dt > 0.0, "load profile dt must be positive");
    for (double i : load.current) check(i >= 0.0, "load profile has negative current");
}

namespace {

class ideal_battery final : public battery_model {
public:
    explicit ideal_battery(double capacity) : capacity_(capacity)
    {
        check(capacity > 0.0, "battery capacity must be positive");
    }

    std::string name() const override { return "ideal"; }

    lifetime_result lifetime(const load_profile& load, double max_seconds) const override
    {
        check_load(load);
        lifetime_result r;
        double charge = 0.0;
        double t = 0.0;
        std::size_t i = 0;
        while (t < max_seconds) {
            const double current = load.current[i];
            const double step_charge = current * load.dt;
            if (charge + step_charge >= capacity_) {
                // Death occurs inside this step; interpolate.
                const double frac =
                    step_charge > 0.0 ? (capacity_ - charge) / step_charge : 1.0;
                r.seconds = t + frac * load.dt;
                r.charge_delivered = capacity_;
                r.exhausted = true;
                return r;
            }
            charge += step_charge;
            t += load.dt;
            ++i;
            if (i == load.current.size()) {
                if (!load.periodic) break;
                i = 0;
            }
        }
        r.seconds = t;
        r.charge_delivered = charge;
        r.exhausted = false;
        return r;
    }

private:
    double capacity_;
};

} // namespace

std::unique_ptr<battery_model> make_ideal_battery(double capacity)
{
    return std::make_unique<ideal_battery>(capacity);
}

} // namespace phls
