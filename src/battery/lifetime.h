// Bridging schedules to battery loads and comparing design alternatives.
#pragma once

#include <memory>

#include "battery/battery.h"
#include "power/profile.h"

namespace phls {

/// Converts a per-cycle power profile into a periodic current load:
/// current = power / voltage, one step per clock cycle of `cycle_seconds`.
/// `idle_cycles` appends zero-current cycles after each iteration,
/// modelling a system that runs the kernel once per period and sleeps.
load_profile to_load(const power_profile& profile, double voltage,
                     double cycle_seconds, int idle_cycles = 0);

/// Relative lifetime gain of `candidate` over `baseline` under `model`:
/// (lifetime(candidate) - lifetime(baseline)) / lifetime(baseline).
double lifetime_gain(const battery_model& model, const load_profile& baseline,
                     const load_profile& candidate, double max_seconds = 1e9);

} // namespace phls
