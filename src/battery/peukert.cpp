#include <cmath>

#include "battery/battery.h"
#include "support/errors.h"

namespace phls {

namespace {

class peukert_battery final : public battery_model {
public:
    peukert_battery(double capacity, double exponent)
        : capacity_(capacity), exponent_(exponent)
    {
        check(capacity > 0.0, "battery capacity must be positive");
        check(exponent >= 1.0, "Peukert exponent must be >= 1");
    }

    std::string name() const override { return "peukert"; }

    lifetime_result lifetime(const load_profile& load, double max_seconds) const override
    {
        check_load(load);
        lifetime_result r;
        double effective = 0.0; // integral of I^k
        double charge = 0.0;    // integral of I (what the circuit received)
        double t = 0.0;
        std::size_t i = 0;
        while (t < max_seconds) {
            const double current = load.current[i];
            const double step_eff = std::pow(current, exponent_) * load.dt;
            if (effective + step_eff >= capacity_) {
                const double frac = step_eff > 0.0 ? (capacity_ - effective) / step_eff : 1.0;
                r.seconds = t + frac * load.dt;
                r.charge_delivered = charge + current * frac * load.dt;
                r.exhausted = true;
                return r;
            }
            effective += step_eff;
            charge += current * load.dt;
            t += load.dt;
            ++i;
            if (i == load.current.size()) {
                if (!load.periodic) break;
                i = 0;
            }
        }
        r.seconds = t;
        r.charge_delivered = charge;
        r.exhausted = false;
        return r;
    }

private:
    double capacity_;
    double exponent_;
};

} // namespace

std::unique_ptr<battery_model> make_peukert_battery(double capacity, double exponent)
{
    return std::make_unique<peukert_battery>(capacity, exponent);
}

} // namespace phls
