// Battery lifetime models.
//
// The paper's motivation (its §1, citing Luo/Jha DAC'01 and Lahiri et al.
// DATE'02) is that battery lifetime depends strongly on the *current
// profile*, not just total energy: peak currents above a threshold cost
// disproportionate charge, especially for low-quality cells, and
// flattening the profile has been reported to extend lifetime by 20-30 %.
// We have no physical battery, so this substrate simulates one (DESIGN.md
// §2): an ideal charge bucket (profile-insensitive control), Peukert's
// law, and a Rakhmatov-Vrudhula-style diffusion model (profile-sensitive).
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace phls {

/// A discretised current demand: current[i] amps over the i-th step of
/// `dt` seconds.  When `periodic`, the pattern repeats until the battery
/// is exhausted.
struct load_profile {
    std::vector<double> current; ///< amps drawn during step i
    double dt = 1.0;             ///< seconds per step
    bool periodic = true;        ///< repeat the pattern until exhaustion
};

/// Result of a lifetime simulation.
struct lifetime_result {
    double seconds = 0.0;        ///< time until exhaustion (or horizon)
    double charge_delivered = 0.0; ///< integral of current until death
    bool exhausted = false;      ///< false if the simulation horizon ended first
};

/// Abstract battery.
class battery_model {
public:
    virtual ~battery_model() = default;

    /// Short stable model name ("ideal", "peukert", "rakhmatov").
    virtual std::string name() const = 0;

    /// Simulates `load` until the battery is exhausted or `max_seconds`
    /// elapses; throws phls::error on malformed loads (negative currents,
    /// dt <= 0, empty profile).
    virtual lifetime_result lifetime(const load_profile& load,
                                     double max_seconds = 1e9) const = 0;
};

/// Ideal charge bucket: lifetime depends only on total charge drawn.
/// capacity is in ampere-seconds.
std::unique_ptr<battery_model> make_ideal_battery(double capacity);

/// Peukert's law, generalised to time-varying loads: the battery is
/// exhausted when the integral of I(t)^exponent dt reaches `capacity`
/// (exponent 1 reduces to the ideal bucket; real cells are 1.1-1.3).
std::unique_ptr<battery_model> make_peukert_battery(double capacity, double exponent);

/// Rakhmatov-Vrudhula diffusion model: apparent charge lost is
///   sigma(t) = integral i + 2 * sum_{m=1..terms} y_m(t),
///   y_m' = i - beta^2 m^2 y_m,
/// exhausted when sigma reaches `alpha`.  Smaller `beta` = worse
/// (low-quality) cell, i.e. stronger rate sensitivity.
std::unique_ptr<battery_model> make_rakhmatov_battery(double alpha, double beta,
                                                      int terms = 10);

/// Validates a load profile (shared by all models).
void check_load(const load_profile& load);

} // namespace phls
