#include "battery/lifetime.h"

#include "support/errors.h"

namespace phls {

load_profile to_load(const power_profile& profile, double voltage, double cycle_seconds,
                     int idle_cycles)
{
    check(voltage > 0.0, "voltage must be positive");
    check(cycle_seconds > 0.0, "cycle time must be positive");
    check(idle_cycles >= 0, "idle cycle count must be non-negative");
    load_profile load;
    load.dt = cycle_seconds;
    load.periodic = true;
    load.current.reserve(static_cast<std::size_t>(profile.cycle_count() + idle_cycles));
    for (double p : profile.values()) load.current.push_back(p / voltage);
    for (int i = 0; i < idle_cycles; ++i) load.current.push_back(0.0);
    check(!load.current.empty(), "profile has no cycles");
    return load;
}

double lifetime_gain(const battery_model& model, const load_profile& baseline,
                     const load_profile& candidate, double max_seconds)
{
    const lifetime_result b = model.lifetime(baseline, max_seconds);
    const lifetime_result c = model.lifetime(candidate, max_seconds);
    check(b.seconds > 0.0, "baseline lifetime is zero");
    return (c.seconds - b.seconds) / b.seconds;
}

} // namespace phls
