#include <cmath>
#include <vector>

#include "battery/battery.h"
#include "support/errors.h"

namespace phls {

namespace {

// Discrete-time integration of the Rakhmatov-Vrudhula diffusion model.
// For piecewise-constant current I over a step of length dt, each
// diffusion mode y_m obeys y_m' = I - beta^2 m^2 y_m, giving the exact
// update y_m <- y_m * e^{-lambda dt} + I * (1 - e^{-lambda dt}) / lambda
// with lambda = beta^2 m^2.  The apparent charge lost is
// sigma = charge_drawn + 2 * sum_m y_m; death at sigma >= alpha.
class rakhmatov_battery final : public battery_model {
public:
    rakhmatov_battery(double alpha, double beta, int terms)
        : alpha_(alpha), beta_(beta), terms_(terms)
    {
        check(alpha > 0.0, "Rakhmatov alpha must be positive");
        check(beta > 0.0, "Rakhmatov beta must be positive");
        check(terms >= 1, "Rakhmatov model needs at least one diffusion term");
    }

    std::string name() const override { return "rakhmatov"; }

    lifetime_result lifetime(const load_profile& load, double max_seconds) const override
    {
        check_load(load);

        std::vector<double> lambda(static_cast<std::size_t>(terms_));
        std::vector<double> decay(static_cast<std::size_t>(terms_));
        std::vector<double> gain(static_cast<std::size_t>(terms_));
        for (int m = 1; m <= terms_; ++m) {
            const double l = beta_ * beta_ * m * m;
            lambda[static_cast<std::size_t>(m - 1)] = l;
            decay[static_cast<std::size_t>(m - 1)] = std::exp(-l * load.dt);
            gain[static_cast<std::size_t>(m - 1)] =
                (1.0 - decay[static_cast<std::size_t>(m - 1)]) / l;
        }

        std::vector<double> y(static_cast<std::size_t>(terms_), 0.0);
        lifetime_result r;
        double charge = 0.0;
        double t = 0.0;
        std::size_t i = 0;
        double prev_sigma = 0.0;
        while (t < max_seconds) {
            const double current = load.current[i];
            charge += current * load.dt;
            double unavailable = 0.0;
            for (int m = 0; m < terms_; ++m) {
                const std::size_t mi = static_cast<std::size_t>(m);
                y[mi] = y[mi] * decay[mi] + current * gain[mi];
                unavailable += y[mi];
            }
            const double sigma = charge + 2.0 * unavailable;
            t += load.dt;
            if (sigma >= alpha_) {
                // Interpolate the death time within the step.
                const double span = sigma - prev_sigma;
                const double frac = span > 0.0 ? (alpha_ - prev_sigma) / span : 1.0;
                r.seconds = t - load.dt + frac * load.dt;
                r.charge_delivered = charge - current * load.dt * (1.0 - frac);
                r.exhausted = true;
                return r;
            }
            prev_sigma = sigma;
            ++i;
            if (i == load.current.size()) {
                if (!load.periodic) break;
                i = 0;
            }
        }
        r.seconds = t;
        r.charge_delivered = charge;
        r.exhausted = false;
        return r;
    }

private:
    double alpha_;
    double beta_;
    int terms_;
};

} // namespace

std::unique_ptr<battery_model> make_rakhmatov_battery(double alpha, double beta, int terms)
{
    return std::make_unique<rakhmatov_battery>(alpha, beta, terms);
}

} // namespace phls
