#include "power/tracker.h"

#include "support/errors.h"

namespace phls {

bool power_tracker::fits(int start, int duration, double power) const
{
    if (power > cap_ + tolerance) return false;
    for (int c = start; c < start + duration; ++c)
        if (profile_.at(c) + power > cap_ + tolerance) return false;
    return true;
}

void power_tracker::reserve(int start, int duration, double power)
{
    check(fits(start, duration, power), "power_tracker::reserve would exceed the cap");
    profile_.deposit(start, duration, power);
}

void power_tracker::release(int start, int duration, double power)
{
    profile_.withdraw(start, duration, power);
}

} // namespace phls
